(* A distributed key generation ceremony for the random beacon (paper §3.1:
   keys "must either be set up by a trusted party or a secure distributed
   key generation protocol").

   Seven parties run Pedersen's joint-Feldman DKG; one dealer hands out a
   corrupted share, is exposed by complaints, and is disqualified once the
   complaint count passes t.  The resulting key then drives a live beacon
   chain, and we check it matches what any t+1 subset derives.

     dune exec examples/dkg_ceremony.exe *)

let n = 7
let t = 2

let () =
  let rng = Icc_sim.Rng.create 0xce7e in
  let rand_bits () = Icc_sim.Rng.bits61 rng in
  Printf.printf "=== DKG ceremony: n=%d parties, t=%d ===\n\n" n t;

  (* Phase 1: everyone deals. Dealer 4 corrupts the shares for parties 2,3,6. *)
  let dealings =
    List.init n (fun i ->
        let d = Icc_crypto.Dkg.deal ~threshold_t:t ~n ~dealer:(i + 1) rand_bits in
        if i + 1 = 4 then begin
          let shares = Array.copy d.Icc_crypto.Dkg.shares in
          List.iter
            (fun j ->
              shares.(j - 1) <- Icc_crypto.Group.scalar_add shares.(j - 1) 1)
            [ 2; 3; 6 ];
          { d with Icc_crypto.Dkg.shares }
        end
        else d)
  in
  Printf.printf "phase 1: %d dealings broadcast (dealer 4 is corrupt)\n"
    (List.length dealings);

  (* Phase 2: every receiver verifies every dealing against the Feldman
     commitments and complains when its private share fails. *)
  let complaints =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun j -> Icc_crypto.Dkg.verify_dealing ~receiver:(j + 1) d)
          (List.init n Fun.id))
      dealings
  in
  Printf.printf "phase 2: complaints:";
  List.iter
    (fun c ->
      Printf.printf " P%d->dealer%d" c.Icc_crypto.Dkg.complainer
        c.Icc_crypto.Dkg.against)
    complaints;
  print_newline ();

  (* Phase 3: disqualify over-complained dealers, derive the key. *)
  match Icc_crypto.Dkg.finalize ~threshold_t:t ~n ~dealings ~complaints with
  | Error e -> print_endline ("ceremony failed: " ^ e)
  | Ok (params, secrets) ->
      Printf.printf "phase 3: qualified key derived (dealer 4 excluded: %b)\n\n"
        (List.length complaints > t);

      (* Drive a beacon chain with the ceremony's key. *)
      let rec beacon round prev limit =
        if round <= limit then begin
          let msg = Icc_core.Types.beacon_text ~round ~prev_sigma:prev in
          let shares =
            List.filteri (fun i _ -> i <= t)
              (List.map
                 (fun sk -> Icc_crypto.Threshold_vuf.sign_share params sk msg)
                 secrets)
          in
          match Icc_crypto.Threshold_vuf.combine params msg shares with
          | Some sig_ ->
              let rand = Icc_crypto.Threshold_vuf.randomness msg sig_ in
              let perm =
                Icc_core.Beacon.permutation_of_randomness ~n rand
              in
              Printf.printf
                "beacon round %d: randomness %s  leader P%d  ranks [%s]\n"
                round
                (String.sub (Icc_crypto.Sha256.to_hex rand) 0 12)
                perm.(0)
                (String.concat ";"
                   (Array.to_list (Array.map string_of_int perm)));
              beacon (round + 1)
                (string_of_int sig_.Icc_crypto.Threshold_vuf.sigma)
                limit
          | None -> print_endline "combine failed"
        end
      in
      beacon 1 Icc_core.Types.beacon_genesis 5;

      (* Uniqueness: a different t+1 subset combines to the same value. *)
      let msg = Icc_core.Types.beacon_text ~round:1 ~prev_sigma:Icc_core.Types.beacon_genesis in
      let all =
        List.map
          (fun sk -> Icc_crypto.Threshold_vuf.sign_share params sk msg)
          secrets
      in
      let subset l = List.filteri (fun i _ -> List.mem i l) all in
      let sigma idxs =
        match Icc_crypto.Threshold_vuf.combine params msg (subset idxs) with
        | Some s -> s.Icc_crypto.Threshold_vuf.sigma
        | None -> -1
      in
      Printf.printf
        "\nuniqueness: subsets {1,2,3} and {5,6,7} agree on R_1: %b\n"
        (sigma [ 0; 1; 2 ] = sigma [ 4; 5; 6 ])
