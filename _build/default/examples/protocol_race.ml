(* The whole family side by side: ICC0, ICC1 (gossip), ICC2 (erasure-coded
   reliable broadcast), and the baselines PBFT and chained HotStuff, on one
   identical network and block size.

   Watch three columns: latency (ICC 3–4 delta vs HotStuff 6–7 delta),
   block rate, and the maximum per-party traffic (the leader bottleneck
   that ICC1/ICC2 attack).

     dune exec examples/protocol_race.exe *)

let delta = 0.04
let n = 10
let block = 300_000 (* 300 KB blocks: dissemination dominates *)

let row name ~rounds ~latency ~max_bytes ~safety ~duration =
  Printf.printf "%-18s %8.2f %10.3f %12.1f %9b\n" name
    (float_of_int rounds /. duration)
    latency
    (float_of_int max_bytes /. duration /. 1e6 *. 8.)
    safety

let () =
  Printf.printf "=== protocol race: n=%d, one-way delay %.0f ms, %d KB blocks ===\n"
    n (delta *. 1000.) (block / 1000);
  Printf.printf "%-18s %8s %10s %12s %9s\n" "protocol" "blk/s" "latency(s)"
    "max Mb/s/node" "safety";

  let icc_scenario =
    {
      (Icc_core.Runner.default_scenario ~n ~seed:31415) with
      Icc_core.Runner.duration = 20.;
      delay = Icc_core.Runner.Fixed_delay delta;
      epsilon = 0.01;
      delta_bnd = 0.3;
      workload = Icc_core.Runner.Fixed_block_size block;
    }
  in
  let r0 = Icc_core.Runner.run icc_scenario in
  row "ICC0 (direct)" ~rounds:r0.rounds_decided ~latency:r0.mean_latency
    ~max_bytes:(Icc_sim.Metrics.max_bytes_per_party r0.metrics)
    ~safety:r0.safety_ok ~duration:r0.duration;

  let r1 = Icc_gossip.Icc1.run ~fanout:4 icc_scenario in
  row "ICC1 (gossip)" ~rounds:r1.rounds_decided ~latency:r1.mean_latency
    ~max_bytes:(Icc_sim.Metrics.max_bytes_per_party r1.metrics)
    ~safety:r1.safety_ok ~duration:r1.duration;

  let r2 = Icc_rbc.Icc2.run icc_scenario in
  row "ICC2 (erasure)" ~rounds:r2.rounds_decided ~latency:r2.mean_latency
    ~max_bytes:(Icc_sim.Metrics.max_bytes_per_party r2.metrics)
    ~safety:r2.safety_ok ~duration:r2.duration;

  let baseline_scenario =
    {
      (Icc_baselines.Harness.default_scenario ~n ~seed:31415) with
      Icc_baselines.Harness.duration = 20.;
      delay = Icc_core.Runner.Fixed_delay delta;
      block_size = block;
      timeout = 1.0;
    }
  in
  let p = Icc_baselines.Pbft.run baseline_scenario in
  row "PBFT" ~rounds:p.blocks_committed ~latency:p.mean_latency
    ~max_bytes:(Icc_sim.Metrics.max_bytes_per_party p.metrics)
    ~safety:p.safety_ok ~duration:p.duration;

  let h = Icc_baselines.Hotstuff.run baseline_scenario in
  row "HotStuff (chained)" ~rounds:h.blocks_committed ~latency:h.mean_latency
    ~max_bytes:(Icc_sim.Metrics.max_bytes_per_party h.metrics)
    ~safety:h.safety_ok ~duration:h.duration;

  let tm = Icc_baselines.Tendermint.run baseline_scenario in
  row "Tendermint" ~rounds:tm.blocks_committed ~latency:tm.mean_latency
    ~max_bytes:(Icc_sim.Metrics.max_bytes_per_party tm.metrics)
    ~safety:tm.safety_ok ~duration:tm.duration;

  print_endline
    "\nexpected shape: ICC0/ICC1 and HotStuff sustain ~1 block per 2 delta\n\
     (PBFT 3 delta at window 1, Tendermint 3 delta + its timeout); ICC\n\
     latency ~3-4 delta vs HotStuff ~6-7 delta; gossip and erasure coding\n\
     cut the per-node peak bandwidth."
