examples/quickstart.mli:
