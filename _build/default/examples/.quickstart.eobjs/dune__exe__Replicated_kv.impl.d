examples/replicated_kv.ml: Icc_core Icc_smr List Printf String
