examples/dkg_ceremony.ml: Array Fun Icc_core Icc_crypto Icc_sim List Printf String
