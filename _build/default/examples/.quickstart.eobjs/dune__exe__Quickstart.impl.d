examples/quickstart.ml: Icc_core Icc_crypto Icc_sim List Printf String
