examples/protocol_race.ml: Icc_baselines Icc_core Icc_gossip Icc_rbc Icc_sim Printf
