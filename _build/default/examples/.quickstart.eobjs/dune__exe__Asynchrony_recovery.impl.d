examples/asynchrony_recovery.ml: Icc_core Icc_sim List Printf String
