examples/dkg_ceremony.mli:
