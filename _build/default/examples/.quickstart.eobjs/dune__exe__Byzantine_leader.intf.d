examples/byzantine_leader.mli:
