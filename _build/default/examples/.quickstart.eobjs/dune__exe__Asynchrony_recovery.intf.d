examples/asynchrony_recovery.mli:
