examples/protocol_race.mli:
