examples/byzantine_leader.ml: Array Icc_core List Printf
