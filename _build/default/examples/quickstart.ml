(* Quickstart: a 4-party ICC0 deployment on a simulated LAN.

   Builds keys for n = 4 parties (t = 1), runs the protocol for 10 simulated
   seconds under a 100 req/s client workload, and prints the committed chain
   prefix together with the headline metrics.

     dune exec examples/quickstart.exe *)

let () =
  let scenario =
    {
      (Icc_core.Runner.default_scenario ~n:4 ~seed:42) with
      Icc_core.Runner.duration = 10.;
      delay = Icc_core.Runner.Fixed_delay 0.05; (* 50 ms one-way *)
      epsilon = 0.2; (* governor: keeps the chain at ~3 blocks/s *)
      delta_bnd = 0.5; (* partial-synchrony bound *)
      workload = Icc_core.Runner.Load { rate_per_s = 100.; cmd_size = 1024 };
    }
  in
  let result = Icc_core.Runner.run scenario in

  print_endline "=== ICC0 quickstart: 4 parties, 50 ms network ===";
  Printf.printf "simulated time        %.1f s\n" result.duration;
  Printf.printf "rounds decided        %d\n" result.rounds_decided;
  Printf.printf "block rate            %.2f blocks/s\n" result.blocks_per_s;
  Printf.printf "commit latency        %.3f s (propose -> all parties commit)\n"
    result.mean_latency;
  Printf.printf "commands committed    %d (mean latency %.3f s)\n"
    result.commands_committed result.mean_command_latency;
  Printf.printf "safety (P2 + prefix)  %b\n" result.safety_ok;
  Printf.printf "deadlock-freeness P1  %b\n" result.p1_ok;
  Printf.printf "total traffic         %.2f MB (%d messages)\n"
    (float_of_int (Icc_sim.Metrics.total_bytes result.metrics) /. 1e6)
    (Icc_sim.Metrics.total_msgs result.metrics);

  print_endline "\nfirst 10 committed blocks (party 1's output):";
  (match result.outputs with
  | (_, chain) :: _ ->
      List.iteri
        (fun i (b : Icc_core.Block.t) ->
          if i < 10 then
            Printf.printf "  round %-3d proposer P%d  %d commands  %6d bytes  %s\n"
              b.Icc_core.Block.round b.Icc_core.Block.proposer
              (List.length b.Icc_core.Block.payload.Icc_core.Types.commands)
              (Icc_core.Types.payload_size b.Icc_core.Block.payload)
              (String.sub
                 (Icc_crypto.Sha256.to_hex (Icc_core.Block.hash b))
                 0 12))
        chain
  | [] -> print_endline "  (no output)");

  print_endline "\nall parties committed identical chains:";
  List.iter
    (fun (id, chain) ->
      Printf.printf "  party %d: %d blocks\n" id (List.length chain))
    result.outputs
