(** Shared identifiers, commands, and the canonical signed-text encodings of
    the ICC protocols (paper §3.4).

    Every protocol signature is over one of the strings built here, so
    authenticators, notarizations, finalizations and beacon shares are
    domain-separated and bound to (round, proposer, block hash). *)

type party_id = int
(** 1-based party index. *)

type round = int
(** Rounds are ≥ 1; 0 denotes the root. *)

type rank = int
(** 0 is the round's leader. *)

type command = {
  cmd_id : int;
  cmd_size : int;  (** Modeled payload bytes. *)
  submitted_at : float;
  tag : string;  (** Opaque application data (e.g. an SMR operation). *)
}

val command :
  ?tag:string -> cmd_id:int -> cmd_size:int -> submitted_at:float -> unit ->
  command

type payload = {
  commands : command list;
  filler_size : int;  (** Additional modeled bytes (management data). *)
}

val empty_payload : payload
val payload_size : payload -> int
val payload_digest : payload -> Icc_crypto.Sha256.t

(** {1 Signed-text encodings} *)

val authenticator_text :
  round:round -> proposer:party_id -> block_hash:Icc_crypto.Sha256.t -> string

val notarization_text :
  round:round -> proposer:party_id -> block_hash:Icc_crypto.Sha256.t -> string

val finalization_text :
  round:round -> proposer:party_id -> block_hash:Icc_crypto.Sha256.t -> string

val beacon_genesis : string
(** The fixed value R_0 of the random-beacon chain. *)

val beacon_text : round:round -> prev_sigma:string -> string
(** The message whose unique threshold signature is R_[round]. *)

(** {1 Wire objects} *)

type cert = {
  c_round : round;
  c_proposer : party_id;
  c_block_hash : Icc_crypto.Sha256.t;
  c_multisig : Icc_crypto.Multisig.signature;
}
(** A notarization or finalization: an (n-t)-multisignature on the
    corresponding text. *)

type share_msg = {
  s_round : round;
  s_proposer : party_id;
  s_block_hash : Icc_crypto.Sha256.t;
  s_share : Icc_crypto.Multisig.share;
}
(** A single party's notarization or finalization share. *)
