(** Global correctness oracles evaluated over the honest parties' state
    after a simulation: the paper's P1, P2 and atomic-broadcast safety. *)

val outputs_consistent : (int * Block.t list) list -> bool
(** For every pair of honest parties, one committed chain is a prefix of
    the other (§1 safety). *)

val no_conflicting_notarization : Pool.t list -> bool
(** P2 across all honest pools: a finalized round-k block excludes any
    other notarized round-k block. *)

val every_round_notarized : Pool.t list -> limit:int -> bool
(** P1 up to [limit]: every finished round has a notarized block in some
    honest pool. *)
