(* Blocks and the special root (paper §3.4).

   A round-k block is (block, k, alpha, phash, payload); its hash commits to
   all four fields.  The root is its own notarization and finalization. *)

type t = {
  round : Types.round;
  proposer : Types.party_id;
  parent_hash : Icc_crypto.Sha256.t;
  payload : Types.payload;
}

let root_hash = Icc_crypto.Sha256.digest_string "icc-root"

let hash (b : t) =
  Icc_crypto.Sha256.digest_string
    (Printf.sprintf "block|%d|%d|%s|%s" b.round b.proposer
       (Icc_crypto.Sha256.to_hex b.parent_hash)
       (Icc_crypto.Sha256.to_hex (Types.payload_digest b.payload)))

let create ~round ~proposer ~parent_hash ~payload =
  if round < 1 then invalid_arg "Block.create: rounds start at 1";
  { round; proposer; parent_hash; payload }

let is_child_of_root (b : t) =
  b.round = 1 && Icc_crypto.Sha256.equal b.parent_hash root_hash

(* Modeled wire size: fixed header (round, proposer, parent hash, framing)
   plus declared payload bytes. *)
let header_wire_size = 64
let wire_size (b : t) = header_wire_size + Types.payload_size b.payload

let pp fmt (b : t) =
  Format.fprintf fmt "B(k=%d p=%d h=%s)" b.round b.proposer
    (String.sub (Icc_crypto.Sha256.to_hex (hash b)) 0 8)
