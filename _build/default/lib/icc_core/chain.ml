(* Walking the block-tree: chains from the root to a block.  A valid block's
   ancestors are always present in the pool (paper §3.4). *)

let parent pool (b : Block.t) =
  Pool.find_block pool (b.Block.round - 1, b.Block.parent_hash)

(* Blocks from round 1 up to [b] inclusive (the root is omitted).
   Raises if an ancestor is missing, which cannot happen for valid blocks. *)
let to_root pool (b : Block.t) =
  let rec go acc (b : Block.t) =
    if b.Block.round = 1 then b :: acc
    else
      match parent pool b with
      | Some p -> go (b :: acc) p
      | None -> invalid_arg "Chain.to_root: missing ancestor"
  in
  go [] b

(* The last [b.round - from_round] blocks of the chain ending at [b]:
   what Fig. 2 outputs when advancing kmax from [from_round]. *)
let segment pool (b : Block.t) ~from_round =
  let rec go acc (b : Block.t) =
    if b.Block.round <= from_round then acc
    else if b.Block.round = 1 then b :: acc
    else
      match parent pool b with
      | Some p -> go (b :: acc) p
      | None -> invalid_arg "Chain.segment: missing ancestor"
  in
  go [] b

let command_ids pool (b : Block.t) =
  List.concat_map
    (fun (blk : Block.t) ->
      List.map (fun c -> c.Types.cmd_id) blk.Block.payload.Types.commands)
    (to_root pool b)
