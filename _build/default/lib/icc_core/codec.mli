(** Binary wire codec for {!Message.t}: deterministic, length-prefixed,
    bounds-checked.  This is the format the ICC2 reliable broadcast
    fragments and reassembles, so {!decode} is total on adversarial bytes
    (returns [None], never raises). *)

val encode : Message.t -> string

val decode : string -> Message.t option
(** [None] on any malformed, truncated or over-long input. *)
