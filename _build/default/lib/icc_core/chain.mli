(** Walking the block-tree: chains from the root to a block.  Ancestors of
    valid blocks are always present in the pool (paper §3.4). *)

val parent : Pool.t -> Block.t -> Block.t option

val to_root : Pool.t -> Block.t -> Block.t list
(** Blocks from round 1 to the given block inclusive (root omitted).
    Raises [Invalid_argument] on a missing ancestor. *)

val segment : Pool.t -> Block.t -> from_round:Types.round -> Block.t list
(** The last [round - from_round] blocks of the chain ending at the given
    block — what Fig. 2 outputs when advancing kmax. *)

val command_ids : Pool.t -> Block.t -> int list
(** All command ids on the chain from the root. *)
