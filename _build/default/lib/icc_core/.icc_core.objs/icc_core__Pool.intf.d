lib/icc_core/pool.mli: Block Icc_crypto Types
