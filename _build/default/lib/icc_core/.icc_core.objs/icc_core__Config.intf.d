lib/icc_core/config.mli: Types
