lib/icc_core/message.ml: Block Icc_crypto Types
