lib/icc_core/runner.mli: Block Icc_crypto Icc_sim Message Party
