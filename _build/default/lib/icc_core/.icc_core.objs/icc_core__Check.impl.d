lib/icc_core/check.ml: Block Hashtbl Icc_crypto List Pool String
