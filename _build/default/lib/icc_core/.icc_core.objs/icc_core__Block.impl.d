lib/icc_core/block.ml: Format Icc_crypto Printf String Types
