lib/icc_core/types.ml: Icc_crypto List Printf String
