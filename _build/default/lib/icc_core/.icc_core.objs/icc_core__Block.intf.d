lib/icc_core/block.mli: Format Icc_crypto Types
