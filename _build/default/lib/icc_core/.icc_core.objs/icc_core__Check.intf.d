lib/icc_core/check.mli: Block Pool
