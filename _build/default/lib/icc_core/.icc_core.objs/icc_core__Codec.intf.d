lib/icc_core/codec.mli: Message
