lib/icc_core/beacon.mli: Icc_crypto Pool Types
