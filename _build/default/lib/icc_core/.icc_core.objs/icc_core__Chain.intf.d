lib/icc_core/chain.mli: Block Pool Types
