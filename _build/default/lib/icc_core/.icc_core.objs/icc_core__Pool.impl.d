lib/icc_core/pool.ml: Array Block Hashtbl Icc_crypto List Types
