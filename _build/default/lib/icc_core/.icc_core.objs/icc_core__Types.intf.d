lib/icc_core/types.mli: Icc_crypto
