lib/icc_core/beacon.ml: Array Hashtbl Icc_crypto Icc_sim List Option Pool Types
