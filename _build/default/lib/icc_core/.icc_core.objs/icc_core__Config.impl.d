lib/icc_core/config.ml: Types
