lib/icc_core/party.ml: Beacon Block Chain Config Icc_crypto Icc_sim List Message Pool Types
