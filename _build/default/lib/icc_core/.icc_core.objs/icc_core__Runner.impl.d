lib/icc_core/runner.ml: Array Block Check Config Hashtbl Icc_crypto Icc_sim Int List Message Option Party Pool Set Types
