lib/icc_core/message.mli: Block Icc_crypto Types
