lib/icc_core/party.mli: Block Config Icc_crypto Icc_sim Message Pool Types
