lib/icc_core/codec.ml: Block Buffer Char Icc_crypto Int64 List Message String Types
