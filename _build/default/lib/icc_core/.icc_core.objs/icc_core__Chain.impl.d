lib/icc_core/chain.ml: Block List Pool Types
