(* Shared identifiers, commands, wire messages and signed-text encodings for
   the ICC protocols (paper §3.4).

   Every signature in the protocol is over one of the canonical strings
   built here, so authenticators, notarizations, finalizations and beacon
   shares are domain-separated and bound to (round, proposer, block hash)
   exactly as in the paper. *)

type party_id = int (* 1-based *)
type round = int (* >= 1 for real blocks; 0 is the root *)
type rank = int (* 0 = leader *)

type command = {
  cmd_id : int;
  cmd_size : int; (* modeled payload bytes *)
  submitted_at : float;
  tag : string; (* opaque application data, e.g. an SMR operation *)
}

let command ?(tag = "") ~cmd_id ~cmd_size ~submitted_at () =
  { cmd_id; cmd_size; submitted_at; tag }

type payload = {
  commands : command list;
  filler_size : int; (* extra modeled bytes (management data) *)
}

let empty_payload = { commands = []; filler_size = 0 }

let payload_size p =
  List.fold_left (fun acc c -> acc + c.cmd_size) p.filler_size p.commands

let payload_digest p =
  Icc_crypto.Sha256.digest_string
    (String.concat ","
       (string_of_int p.filler_size
       :: List.map
            (fun c -> Printf.sprintf "%d:%s" c.cmd_id c.tag)
            p.commands))

(* Signed-text encodings (paper §3.4): the tuples
   (authenticator|notarization|finalization, k, alpha, H(B)). *)

let authenticator_text ~round ~proposer ~block_hash =
  Printf.sprintf "authenticator|%d|%d|%s" round proposer
    (Icc_crypto.Sha256.to_hex block_hash)

let notarization_text ~round ~proposer ~block_hash =
  Printf.sprintf "notarization|%d|%d|%s" round proposer
    (Icc_crypto.Sha256.to_hex block_hash)

let finalization_text ~round ~proposer ~block_hash =
  Printf.sprintf "finalization|%d|%d|%s" round proposer
    (Icc_crypto.Sha256.to_hex block_hash)

(* The random beacon chain: R_k is the unique threshold signature on a text
   binding round number and R_{k-1} (paper §2.3). *)

let beacon_genesis = "icc-beacon-genesis"

let beacon_text ~round ~prev_sigma =
  Printf.sprintf "beacon|%d|%s" round prev_sigma

(* Certificates and shares carried on the wire. *)

type cert = {
  c_round : round;
  c_proposer : party_id;
  c_block_hash : Icc_crypto.Sha256.t;
  c_multisig : Icc_crypto.Multisig.signature;
}

type share_msg = {
  s_round : round;
  s_proposer : party_id;
  s_block_hash : Icc_crypto.Sha256.t;
  s_share : Icc_crypto.Multisig.share;
}
