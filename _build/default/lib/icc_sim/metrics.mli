(** Per-party traffic and protocol metrics for one simulation run.
    Traffic is accounted at modeled wire sizes supplied by the caller. *)

type t = {
  n : int;
  msgs_sent : int array;
  bytes_sent : int array;
  msgs_by_kind : (string, int) Hashtbl.t;
  mutable finalized_blocks : int;
  mutable finalization_times : (int * float) list;
  mutable proposal_times : (int * float) list;
  mutable latencies : float list;
  mutable round_entry_times : (int * float) list;
}

val create : int -> t

val record_send : t -> src:int -> size:int -> kind:string -> copies:int -> unit
(** [copies] is the number of unicast transmissions (e.g. [n-1] for a
    broadcast). *)

val record_finalization : t -> round:int -> time:float -> unit
val record_proposal : t -> round:int -> time:float -> unit
val record_latency : t -> float -> unit
val record_round_entry : t -> round:int -> time:float -> unit

val total_msgs : t -> int
val total_bytes : t -> int
val max_bytes_per_party : t -> int
val msgs_of_kind : t -> string -> int

val mean : float list -> float
val percentile : float -> float list -> float
val mean_latency : t -> float
val blocks_per_second : t -> window:float -> float
val mean_bytes_per_party_per_second : t -> window:float -> float
