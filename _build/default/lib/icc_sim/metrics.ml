(* Per-party traffic and protocol metrics for one simulation run.

   Traffic is accounted at modeled wire sizes (see DESIGN.md): callers pass
   the byte size of each message explicitly. *)

type t = {
  n : int;
  msgs_sent : int array; (* per party, network messages (unicast count) *)
  bytes_sent : int array;
  msgs_by_kind : (string, int) Hashtbl.t;
  mutable finalized_blocks : int;
  mutable finalization_times : (int * float) list; (* round, time *)
  mutable proposal_times : (int * float) list; (* round, first proposal time *)
  mutable latencies : float list; (* propose -> finalize, per finalized block *)
  mutable round_entry_times : (int * float) list; (* round, first party entry *)
}

let create n =
  {
    n;
    msgs_sent = Array.make (n + 1) 0;
    bytes_sent = Array.make (n + 1) 0;
    msgs_by_kind = Hashtbl.create 16;
    finalized_blocks = 0;
    finalization_times = [];
    proposal_times = [];
    latencies = [];
    round_entry_times = [];
  }

let record_send t ~src ~size ~kind ~copies =
  if src >= 1 && src <= t.n then begin
    t.msgs_sent.(src) <- t.msgs_sent.(src) + copies;
    t.bytes_sent.(src) <- t.bytes_sent.(src) + (size * copies)
  end;
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.msgs_by_kind kind) in
  Hashtbl.replace t.msgs_by_kind kind (cur + copies)

let record_finalization t ~round ~time =
  t.finalized_blocks <- t.finalized_blocks + 1;
  t.finalization_times <- (round, time) :: t.finalization_times

let record_proposal t ~round ~time =
  if not (List.mem_assoc round t.proposal_times) then
    t.proposal_times <- (round, time) :: t.proposal_times

let record_latency t dt = t.latencies <- dt :: t.latencies

let record_round_entry t ~round ~time =
  if not (List.mem_assoc round t.round_entry_times) then
    t.round_entry_times <- (round, time) :: t.round_entry_times

let total_msgs t = Array.fold_left ( + ) 0 t.msgs_sent
let total_bytes t = Array.fold_left ( + ) 0 t.bytes_sent

let max_bytes_per_party t = Array.fold_left max 0 t.bytes_sent

let msgs_of_kind t kind =
  Option.value ~default:0 (Hashtbl.find_opt t.msgs_by_kind kind)

let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let percentile p l =
  match List.sort compare l with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      let idx = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
      List.nth sorted (max 0 (min (n - 1) idx))

let mean_latency t = mean t.latencies

let blocks_per_second t ~window =
  if window <= 0. then nan else float_of_int t.finalized_blocks /. window

let mean_bytes_per_party_per_second t ~window =
  if window <= 0. || t.n = 0 then nan
  else float_of_int (total_bytes t) /. float_of_int t.n /. window
