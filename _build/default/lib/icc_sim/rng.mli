(** Deterministic SplitMix64 pseudo-random stream.  All randomness in the
    repository flows from seeded instances, making every experiment
    reproducible. *)

type t

val create : int -> t
val next_int64 : t -> int64

val bits61 : t -> int
(** Uniform in [\[0, 2^61)]; the source shape expected by
    [Icc_crypto] key generation. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)], rejection-sampled. *)

val float : t -> float -> float
val float_range : t -> float -> float -> float
val bool : t -> bool
val shuffle_in_place : t -> 'a array -> unit

val split : t -> t
(** An independent child stream. *)

val of_string_seed : string -> t
(** Seed from the first 8 bytes of a string (e.g. a hash digest). *)

val pick : t -> 'a list -> 'a
