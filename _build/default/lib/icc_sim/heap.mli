(** Binary min-heap keyed by [(time, seq)]; ties in time break by insertion
    order for deterministic executions. *)

type 'a entry = { time : float; seq : int; payload : 'a }
type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> time:float -> seq:int -> 'a -> unit
val peek : 'a t -> 'a entry option
val pop : 'a t -> 'a entry option
