lib/icc_sim/engine.mli:
