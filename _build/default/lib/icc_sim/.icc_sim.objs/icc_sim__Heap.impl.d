lib/icc_sim/heap.ml: Array
