lib/icc_sim/rng.ml: Array Char Int64 List String
