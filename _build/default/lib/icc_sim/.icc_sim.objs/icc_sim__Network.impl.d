lib/icc_sim/network.ml: Array Engine Metrics Rng
