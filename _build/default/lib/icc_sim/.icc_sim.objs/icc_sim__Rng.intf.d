lib/icc_sim/rng.mli:
