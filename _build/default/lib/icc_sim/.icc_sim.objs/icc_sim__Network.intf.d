lib/icc_sim/network.mli: Engine Metrics Rng
