lib/icc_sim/metrics.mli: Hashtbl
