lib/icc_sim/metrics.ml: Array Hashtbl List Option
