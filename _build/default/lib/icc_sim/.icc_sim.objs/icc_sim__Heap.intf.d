lib/icc_sim/heap.mli:
