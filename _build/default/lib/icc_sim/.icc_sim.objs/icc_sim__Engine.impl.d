lib/icc_sim/engine.ml: Heap Printf
