(* Deterministic SplitMix64 pseudo-random stream.

   Every source of randomness in the repository (key generation, delay
   sampling, workloads, adversary choices) flows from one of these, so any
   experiment is reproducible bit-for-bit from its seed. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform non-negative 61-bit int; the shape {!Icc_crypto} key generation
   expects. *)
let bits61 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 3)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let limit = (1 lsl 61) / bound * bound in
  let rec draw () =
    let v = bits61 t in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let float t bound =
  if bound < 0. then invalid_arg "Rng.float: bound must be non-negative";
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  /. 9007199254740992. (* 2^53 *)
  *. bound

let float_range t lo hi =
  if hi < lo then invalid_arg "Rng.float_range: empty range";
  lo +. float t (hi -. lo)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = create (Int64.to_int (next_int64 t))

(* Derive a stream deterministically from a 32-byte digest prefix; used to
   turn a beacon output into a rank permutation. *)
let of_string_seed s =
  let v = ref 0L in
  String.iteri
    (fun i c ->
      if i < 8 then v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c)))
    s;
  { state = !v }

let pick t l =
  match l with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))
