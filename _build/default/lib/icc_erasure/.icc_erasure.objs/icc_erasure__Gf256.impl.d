lib/icc_erasure/gf256.ml: Array
