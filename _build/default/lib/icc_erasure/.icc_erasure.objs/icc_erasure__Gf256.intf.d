lib/icc_erasure/gf256.mli:
