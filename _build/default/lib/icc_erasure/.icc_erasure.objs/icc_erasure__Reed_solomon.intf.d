lib/icc_erasure/reed_solomon.mli:
