lib/icc_erasure/matrix.ml: Array Gf256
