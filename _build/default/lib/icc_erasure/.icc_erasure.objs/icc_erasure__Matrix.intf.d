lib/icc_erasure/matrix.mli:
