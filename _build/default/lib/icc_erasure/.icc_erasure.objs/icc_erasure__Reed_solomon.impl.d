lib/icc_erasure/reed_solomon.ml: Array Bytes Char Gf256 List Matrix String
