(** Dense matrices over GF(2^8). *)

type t = int array array

val make : rows:int -> cols:int -> t
val identity : int -> t
val rows : t -> int
val cols : t -> int
val copy : t -> t

val vandermonde : points:int array -> cols:int -> t
(** Row [i] is [[x_i^0; x_i^1; ...]]; any [cols] rows with distinct points
    form an invertible square matrix. *)

val mul_vec : t -> int array -> int array
val mul : t -> t -> t

exception Singular

val invert : t -> t
(** Gauss–Jordan inverse; raises {!Singular} when the matrix has none. *)
