(* Systematic Reed–Solomon erasure coding over GF(2^8): k data fragments are
   extended to n total fragments, any k of which reconstruct the data.

   Encoding evaluates, per byte position, the degree-(k-1) polynomial that
   interpolates the k data bytes at points 1..k, producing parity at points
   k+1..n.  Fragments are column slices; fragment i (0-based) is the
   evaluation at point i+1.  Decoding inverts the Vandermonde submatrix of
   the k available points.

   Limits: n <= 255 (points must be distinct and nonzero in GF(256)). *)

type coded = {
  k : int; (* data fragments needed to reconstruct *)
  n : int; (* total fragments *)
  fragment_size : int;
  data_size : int; (* original byte length, for exact truncation *)
  fragments : string array; (* length n, each fragment_size bytes *)
}

let point_of_index i = i + 1 (* fragment i evaluates the polynomial at i+1 *)

(* The encoding matrix: n rows of a Vandermonde over points 1..n, transformed
   so the first k rows are the identity (systematic form): E = V * V_k^-1. *)
let encoding_matrix ~k ~n =
  let v =
    Matrix.vandermonde
      ~points:(Array.init n (fun i -> point_of_index i))
      ~cols:k
  in
  let top = Array.sub v 0 k in
  let top_inv = Matrix.invert top in
  Matrix.mul v top_inv

let encode ~k ~n (data : string) : coded =
  if not (k >= 1 && k <= n && n <= 255) then
    invalid_arg "Reed_solomon.encode: need 1 <= k <= n <= 255";
  let data_size = String.length data in
  let fragment_size = (data_size + k - 1) / k in
  let fragment_size = max fragment_size 1 in
  let e = encoding_matrix ~k ~n in
  let byte row pos =
    (* data bytes of fragment [row], zero-padded *)
    let idx = (row * fragment_size) + pos in
    if idx < data_size then Char.code data.[idx] else 0
  in
  let fragments =
    Array.init n (fun i ->
        let buf = Bytes.create fragment_size in
        for pos = 0 to fragment_size - 1 do
          let acc = ref 0 in
          for j = 0 to k - 1 do
            acc := Gf256.add !acc (Gf256.mul e.(i).(j) (byte j pos))
          done;
          Bytes.set buf pos (Char.chr !acc)
        done;
        Bytes.unsafe_to_string buf)
  in
  { k; n; fragment_size; data_size; fragments }

(* Reconstruct from any >= k of the n fragments, given as (index, bytes)
   pairs with 0-based indices.  Returns [None] on malformed input. *)
let decode ~k ~n ~data_size (available : (int * string) list) : string option =
  let available = List.sort_uniq (fun (i, _) (j, _) -> compare i j) available in
  let fragment_size = max ((data_size + k - 1) / k) 1 in
  let usable =
    List.filter
      (fun (i, frag) ->
        i >= 0 && i < n && String.length frag = fragment_size)
      available
  in
  if List.length usable < k then None
  else
    let chosen = List.filteri (fun idx _ -> idx < k) usable in
    let e = encoding_matrix ~k ~n in
    let rows = Array.of_list (List.map (fun (i, _) -> e.(i)) chosen) in
    let frags = Array.of_list (List.map snd chosen) in
    match Matrix.invert rows with
    | exception Matrix.Singular -> None
    | inv ->
        let out = Bytes.create (fragment_size * k) in
        for pos = 0 to fragment_size - 1 do
          let v = Array.init k (fun r -> Char.code frags.(r).[pos]) in
          let decoded = Matrix.mul_vec inv v in
          for j = 0 to k - 1 do
            Bytes.set out ((j * fragment_size) + pos) (Char.chr decoded.(j))
          done
        done;
        Some (Bytes.sub_string out 0 data_size)

(* Deterministic re-encoding check used by the reliable-broadcast protocol:
   encode the reconstructed data again and compare fragments. *)
let reencode_matches ~k ~n ~data (fragments : (int * string) list) =
  let coded = encode ~k ~n data in
  List.for_all
    (fun (i, frag) ->
      i >= 0 && i < n && String.equal coded.fragments.(i) frag)
    fragments
