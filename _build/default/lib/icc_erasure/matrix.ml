(* Dense matrices over GF(2^8), with the Gaussian-elimination inverse used
   by Reed–Solomon decoding. *)

type t = int array array (* row-major *)

let make ~rows ~cols = Array.make_matrix rows cols 0

let identity n =
  let m = make ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    m.(i).(i) <- 1
  done;
  m

let rows m = Array.length m
let cols m = if Array.length m = 0 then 0 else Array.length m.(0)

let copy m = Array.map Array.copy m

(* Vandermonde matrix: entry (i, j) = x_i ^ j.  Any k distinct evaluation
   points give an invertible k x k submatrix, the property erasure decoding
   relies on. *)
let vandermonde ~points ~cols =
  Array.map (fun x -> Array.init cols (fun j -> Gf256.pow x j)) points

let mul_vec m v =
  Array.init (rows m) (fun i ->
      let acc = ref 0 in
      for j = 0 to cols m - 1 do
        acc := Gf256.add !acc (Gf256.mul m.(i).(j) v.(j))
      done;
      !acc)

let mul a b =
  let n = rows a and k = cols a and p = cols b in
  if rows b <> k then invalid_arg "Matrix.mul: dimension mismatch";
  let c = make ~rows:n ~cols:p in
  for i = 0 to n - 1 do
    for j = 0 to p - 1 do
      let acc = ref 0 in
      for l = 0 to k - 1 do
        acc := Gf256.add !acc (Gf256.mul a.(i).(l) b.(l).(j))
      done;
      c.(i).(j) <- !acc
    done
  done;
  c

exception Singular

(* Gauss–Jordan inversion; raises [Singular] when no inverse exists. *)
let invert m =
  let n = rows m in
  if cols m <> n then invalid_arg "Matrix.invert: not square";
  let a = copy m and inv = identity n in
  for col = 0 to n - 1 do
    (* find pivot *)
    let pivot = ref (-1) in
    (let r = ref col in
     while !pivot < 0 && !r < n do
       if a.(!r).(col) <> 0 then pivot := !r;
       incr r
    done);
    if !pivot < 0 then raise Singular;
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tmp = inv.(col) in
      inv.(col) <- inv.(!pivot);
      inv.(!pivot) <- tmp
    end;
    (* normalise pivot row *)
    let s = Gf256.inv a.(col).(col) in
    for j = 0 to n - 1 do
      a.(col).(j) <- Gf256.mul a.(col).(j) s;
      inv.(col).(j) <- Gf256.mul inv.(col).(j) s
    done;
    (* eliminate the column elsewhere *)
    for r = 0 to n - 1 do
      if r <> col && a.(r).(col) <> 0 then begin
        let factor = a.(r).(col) in
        for j = 0 to n - 1 do
          a.(r).(j) <- Gf256.sub a.(r).(j) (Gf256.mul factor a.(col).(j));
          inv.(r).(j) <- Gf256.sub inv.(r).(j) (Gf256.mul factor inv.(col).(j))
        done
      end
    done
  done;
  inv
