(** GF(2^8) arithmetic (AES polynomial 0x11b). Values are ints in [\[0,255]]. *)

val order : int
val check : int -> unit
val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int
val inv : int -> int
val div : int -> int -> int
val pow : int -> int -> int
