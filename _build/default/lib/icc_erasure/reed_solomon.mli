(** Systematic Reed–Solomon erasure coding over GF(2^8): [k]-of-[n]
    reconstruction, [n <= 255]. *)

type coded = {
  k : int;
  n : int;
  fragment_size : int;
  data_size : int;
  fragments : string array;
}

val encode : k:int -> n:int -> string -> coded

val decode :
  k:int -> n:int -> data_size:int -> (int * string) list -> string option
(** [decode ~k ~n ~data_size fragments] reconstructs from any [k] distinct
    [(index, bytes)] pairs (0-based indices); [None] if fewer than [k]
    usable fragments are supplied or the system is inconsistent. *)

val reencode_matches :
  k:int -> n:int -> data:string -> (int * string) list -> bool
(** Consistency check for reliable broadcast: re-encode [data] and verify
    the given fragments match. *)
