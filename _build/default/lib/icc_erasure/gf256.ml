(* GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11b),
   via log/antilog tables over the generator 3. *)

let order = 256

let exp_table = Array.make 512 0
let log_table = Array.make 256 0

let () =
  (* Build tables by repeated multiplication by the generator 0x03:
     x*3 = x*2 xor x, where x*2 is a shift with conditional reduction. *)
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    let x2 = !x lsl 1 in
    let x2 = if x2 land 0x100 <> 0 then x2 lxor 0x11b else x2 in
    x := x2 lxor !x
  done;
  (* duplicate for index arithmetic without mod *)
  for i = 255 to 511 do
    exp_table.(i) <- exp_table.(i - 255)
  done

let check v =
  if v < 0 || v > 255 then invalid_arg "Gf256: value out of range"

let add a b = a lxor b
let sub = add

let mul a b =
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  if a = 0 then invalid_arg "Gf256.inv: zero" else exp_table.(255 - log_table.(a))

let div a b = if a = 0 then 0 else mul a (inv b)

let pow a e =
  if e < 0 then invalid_arg "Gf256.pow: negative exponent"
  else if a = 0 then if e = 0 then 1 else 0
  else exp_table.(log_table.(a) * e mod 255)
