lib/icc_rbc/rbc.mli: Icc_core Icc_crypto Icc_sim
