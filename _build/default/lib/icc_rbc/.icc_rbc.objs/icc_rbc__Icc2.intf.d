lib/icc_rbc/icc2.mli: Icc_core
