lib/icc_rbc/icc2.ml: Icc_core Rbc
