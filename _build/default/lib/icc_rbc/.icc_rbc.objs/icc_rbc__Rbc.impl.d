lib/icc_rbc/rbc.ml: Array Hashtbl Icc_core Icc_crypto Icc_erasure Icc_sim List Option Printf
