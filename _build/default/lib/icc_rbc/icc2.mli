(** Protocol ICC2: the ICC round logic over the erasure-coded reliable
    broadcast of {!Rbc} (paper §1).  Expected versus ICC0 under an honest
    leader and synchrony: reciprocal throughput 3δ (one extra δ for the
    fragment echo), latency 4δ, and O(S) per-party dissemination bits for
    blocks of size S = Ω(n·λ·log n). *)

val transport : unit -> Icc_core.Runner.transport
val run : Icc_core.Runner.scenario -> Icc_core.Runner.result
