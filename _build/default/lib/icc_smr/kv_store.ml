(* The replicated state machine: a deterministic key-value store.  Replicas
   that apply the same command sequence end in the same state; the state
   digest makes that checkable. *)

module String_map = Map.Make (String)

type t = {
  mutable data : string String_map.t;
  mutable applied : int; (* commands applied *)
}

let create () = { data = String_map.empty; applied = 0 }

let get t k = String_map.find_opt k t.data

let apply t (op : Command.op) =
  (match op with
  | Command.Set (k, v) -> t.data <- String_map.add k v t.data
  | Command.Delete k -> t.data <- String_map.remove k t.data
  | Command.Increment k ->
      let v =
        match String_map.find_opt k t.data with
        | Some s -> ( match int_of_string_opt s with Some i -> i | None -> 0)
        | None -> 0
      in
      t.data <- String_map.add k (string_of_int (v + 1)) t.data
  | Command.Noop -> ());
  t.applied <- t.applied + 1

let size t = String_map.cardinal t.data
let applied t = t.applied

let digest t =
  let buf = Buffer.create 256 in
  String_map.iter
    (fun k v ->
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf v;
      Buffer.add_char buf ';')
    t.data;
  Icc_crypto.Sha256.to_hex (Icc_crypto.Sha256.digest_string (Buffer.contents buf))
