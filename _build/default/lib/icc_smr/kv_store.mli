(** The replicated state machine: a deterministic key-value store.
    Replicas applying the same command sequence end in the same state,
    checkable via {!digest}. *)

type t

val create : unit -> t
val get : t -> string -> string option
val apply : t -> Command.op -> unit
val size : t -> int
val applied : t -> int
val digest : t -> string
