(* State-machine commands carried in block payloads.

   The atomic-broadcast layer treats command tags as opaque strings; this
   module defines the encoding used by the replicated key-value store. *)

type op =
  | Set of string * string
  | Delete of string
  | Increment of string
  | Noop

let encode = function
  | Set (k, v) -> Printf.sprintf "set|%s|%s" k v
  | Delete k -> Printf.sprintf "del|%s" k
  | Increment k -> Printf.sprintf "inc|%s" k
  | Noop -> "noop"

let decode s =
  match String.split_on_char '|' s with
  | [ "set"; k; v ] -> Some (Set (k, v))
  | [ "del"; k ] -> Some (Delete k)
  | [ "inc"; k ] -> Some (Increment k)
  | [ "noop" ] -> Some Noop
  | _ -> None

let wire_size op = 16 + String.length (encode op)
