(** Binding atomic broadcast to the state machine: a replica folds a
    committed block chain into a {!Kv_store}, skipping duplicate command
    ids defensively. *)

type t = {
  store : Kv_store.t;
  mutable seen : Set.Make(Int).t;
  mutable blocks_applied : int;
  mutable skipped : int;  (** Commands with undecodable tags. *)
}

val create : unit -> t
val apply_command : t -> Icc_core.Types.command -> unit
val apply_block : t -> Icc_core.Block.t -> unit
val apply_chain : t -> Icc_core.Block.t list -> unit
val state_digest : t -> string

val states_consistent : (int * Icc_core.Block.t list) list -> bool
(** Replay every honest party's chain; states must agree on common
    prefixes. *)
