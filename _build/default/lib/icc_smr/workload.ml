(* Client workload generators for the replicated key-value store. *)

let key_space = 64

(* A deterministic mixed workload: mostly writes with some deletes and
   counters, keyed by command id so every replica-side decode is stable. *)
let kv_tag cmd_id =
  let key = Printf.sprintf "k%d" (cmd_id mod key_space) in
  match cmd_id mod 10 with
  | 0 -> Command.encode (Command.Delete key)
  | 1 | 2 -> Command.encode (Command.Increment key)
  | _ -> Command.encode (Command.Set (key, Printf.sprintf "v%d" cmd_id))

(* An Icc_core workload clause submitting KV operations at [rate_per_s]. *)
let kv_load ~rate_per_s ~cmd_size =
  Icc_core.Runner.Tagged_load { rate_per_s; cmd_size; make_tag = kv_tag }

(* Run a full replicated-KV deployment over ICC0 and replay the committed
   chains into state machines. *)
type smr_result = {
  consensus : Icc_core.Runner.result;
  replicas : (int * Replica.t) list;
  states_agree : bool;
}

let run_kv (scenario : Icc_core.Runner.scenario) ~rate_per_s ~cmd_size =
  let scenario =
    { scenario with Icc_core.Runner.workload = kv_load ~rate_per_s ~cmd_size }
  in
  let consensus = Icc_core.Runner.run scenario in
  let replicas =
    List.map
      (fun (id, chain) ->
        let r = Replica.create () in
        Replica.apply_chain r chain;
        (id, r))
      consensus.Icc_core.Runner.outputs
  in
  {
    consensus;
    replicas;
    states_agree = Replica.states_consistent consensus.Icc_core.Runner.outputs;
  }
