(** Operations of the replicated key-value state machine, encoded into the
    opaque command tags of the atomic-broadcast layer. *)

type op =
  | Set of string * string
  | Delete of string
  | Increment of string
  | Noop

val encode : op -> string
val decode : string -> op option
val wire_size : op -> int
