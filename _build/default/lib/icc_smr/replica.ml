(* Binding atomic broadcast to the state machine (the paper's §1 framing:
   replicated state machines deterministically execute the command sequence
   the consensus layer outputs).

   A replica folds a committed block chain into a {!Kv_store}, skipping
   duplicate command ids defensively (the getPayload deduplication already
   prevents duplicates on one chain). *)

module Int_set = Set.Make (Int)

type t = {
  store : Kv_store.t;
  mutable seen : Int_set.t;
  mutable blocks_applied : int;
  mutable skipped : int; (* commands with undecodable tags *)
}

let create () =
  { store = Kv_store.create (); seen = Int_set.empty; blocks_applied = 0;
    skipped = 0 }

let apply_command t (c : Icc_core.Types.command) =
  if not (Int_set.mem c.Icc_core.Types.cmd_id t.seen) then begin
    t.seen <- Int_set.add c.Icc_core.Types.cmd_id t.seen;
    match Command.decode c.Icc_core.Types.tag with
    | Some op -> Kv_store.apply t.store op
    | None -> t.skipped <- t.skipped + 1
  end

let apply_block t (b : Icc_core.Block.t) =
  List.iter (apply_command t) b.Icc_core.Block.payload.Icc_core.Types.commands;
  t.blocks_applied <- t.blocks_applied + 1

let apply_chain t chain = List.iter (apply_block t) chain

let state_digest t = Kv_store.digest t.store

(* Replay every honest party's committed chain and confirm the replicated
   states agree up to chain-length differences (the shorter chain's state
   must equal replaying the longer chain truncated to that length). *)
let states_consistent (outputs : (int * Icc_core.Block.t list) list) =
  let digest_of_prefix chain len =
    let r = create () in
    List.iteri (fun i b -> if i < len then apply_block r b) chain;
    state_digest r
  in
  let rec pairs = function
    | [] -> true
    | (_, c1) :: rest ->
        List.for_all
          (fun (_, c2) ->
            let l = min (List.length c1) (List.length c2) in
            String.equal (digest_of_prefix c1 l) (digest_of_prefix c2 l))
          rest
        && pairs rest
  in
  pairs outputs
