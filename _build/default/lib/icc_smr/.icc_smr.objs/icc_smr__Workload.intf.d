lib/icc_smr/workload.mli: Icc_core Replica
