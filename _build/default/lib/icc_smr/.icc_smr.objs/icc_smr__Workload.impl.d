lib/icc_smr/workload.ml: Command Icc_core List Printf Replica
