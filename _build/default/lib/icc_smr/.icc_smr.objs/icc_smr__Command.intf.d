lib/icc_smr/command.mli:
