lib/icc_smr/command.ml: Printf String
