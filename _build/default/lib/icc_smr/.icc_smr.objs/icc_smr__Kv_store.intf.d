lib/icc_smr/kv_store.mli: Command
