lib/icc_smr/replica.mli: Icc_core Int Kv_store Set
