lib/icc_smr/replica.ml: Command Icc_core Int Kv_store List Set String
