lib/icc_smr/kv_store.ml: Buffer Command Icc_crypto Map String
