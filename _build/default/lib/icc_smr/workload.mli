(** Client workload generators for the replicated key-value store, and a
    one-call replicated-KV deployment over ICC0. *)

val key_space : int

val kv_tag : int -> string
(** Deterministic mixed workload (sets, deletes, counters) keyed by command
    id. *)

val kv_load : rate_per_s:float -> cmd_size:int -> Icc_core.Runner.workload

type smr_result = {
  consensus : Icc_core.Runner.result;
  replicas : (int * Replica.t) list;
  states_agree : bool;
}

val run_kv :
  Icc_core.Runner.scenario -> rate_per_s:float -> cmd_size:int -> smr_result
