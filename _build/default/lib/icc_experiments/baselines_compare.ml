(* Experiment E6 — comparison against the related-work baselines (paper
   §1.1): PBFT [13] and chained HotStuff [36] on the identical simulated
   network.

   Claims to reproduce in shape:
     - HotStuff matches ICC's 2-delta reciprocal throughput but pays ~6-7
       delta commit latency versus ICC0's 3 delta;
     - PBFT commits in 3 delta but (unpipelined) sustains one batch per
       3 delta;
     - Tendermint's height duration is timeout-governed (~3 delta + T), so
       it is not optimistically responsive;
     - under a crashed leader, PBFT stalls for its view-change timeout and
       HotStuff for its pacemaker timeout on every rotation hit, while ICC0
       keeps one block per round with only per-round delay inflation. *)

type row = {
  protocol : string;
  condition : string;
  blocks_per_s : float;
  latency : float;
  latency_in_delta : float;
}

let delta = 0.04
let n = 7

let icc_scenario ~quick ~behaviors ~seed =
  {
    (Icc_core.Runner.default_scenario ~n ~seed) with
    Icc_core.Runner.duration = (if quick then 20. else 60.);
    delay = Icc_core.Runner.Fixed_delay delta;
    epsilon = 1e-3;
    delta_bnd = 0.5;
    behaviors;
  }

let baseline_scenario ~quick ~crashed ~seed =
  {
    (Icc_baselines.Harness.default_scenario ~n ~seed) with
    Icc_baselines.Harness.duration = (if quick then 20. else 60.);
    delay = Icc_core.Runner.Fixed_delay delta;
    block_size = 512;
    timeout = 1.0;
    crashed;
  }

let run ?(quick = false) () =
  let fault_free =
    let icc = Icc_core.Runner.run (icc_scenario ~quick ~behaviors:[] ~seed:3) in
    let pbft = Icc_baselines.Pbft.run (baseline_scenario ~quick ~crashed:[] ~seed:3) in
    let hs = Icc_baselines.Hotstuff.run (baseline_scenario ~quick ~crashed:[] ~seed:3) in
    let tm = Icc_baselines.Tendermint.run (baseline_scenario ~quick ~crashed:[] ~seed:3) in
    [
      { protocol = "ICC0"; condition = "fault-free";
        blocks_per_s = icc.Icc_core.Runner.blocks_per_s;
        latency = icc.Icc_core.Runner.mean_latency;
        latency_in_delta = icc.Icc_core.Runner.mean_latency /. delta };
      { protocol = "PBFT"; condition = "fault-free";
        blocks_per_s = pbft.Icc_baselines.Harness.blocks_per_s;
        latency = pbft.Icc_baselines.Harness.mean_latency;
        latency_in_delta = pbft.Icc_baselines.Harness.mean_latency /. delta };
      { protocol = "HotStuff"; condition = "fault-free";
        blocks_per_s = hs.Icc_baselines.Harness.blocks_per_s;
        latency = hs.Icc_baselines.Harness.mean_latency;
        latency_in_delta = hs.Icc_baselines.Harness.mean_latency /. delta };
      { protocol = "Tendermint"; condition = "fault-free";
        blocks_per_s = tm.Icc_baselines.Harness.blocks_per_s;
        latency = tm.Icc_baselines.Harness.mean_latency;
        latency_in_delta = tm.Icc_baselines.Harness.mean_latency /. delta };
    ]
  in
  let crashed_leader =
    (* PBFT's leader is static (replica 1 in view 1), so to make the fault
       comparable we crash a party that actually leads: replica 1 for PBFT
       (forcing a view change), a rotation member for HotStuff and ICC0. *)
    let icc =
      Icc_core.Runner.run
        (icc_scenario ~quick ~behaviors:[ (2, Icc_core.Party.crashed) ] ~seed:4)
    in
    let pbft = Icc_baselines.Pbft.run (baseline_scenario ~quick ~crashed:[ 1 ] ~seed:4) in
    let hs = Icc_baselines.Hotstuff.run (baseline_scenario ~quick ~crashed:[ 2 ] ~seed:4) in
    let tm = Icc_baselines.Tendermint.run (baseline_scenario ~quick ~crashed:[ 2 ] ~seed:4) in
    [
      { protocol = "ICC0"; condition = "one crashed";
        blocks_per_s = icc.Icc_core.Runner.blocks_per_s;
        latency = icc.Icc_core.Runner.mean_latency;
        latency_in_delta = icc.Icc_core.Runner.mean_latency /. delta };
      { protocol = "PBFT"; condition = "one crashed";
        blocks_per_s = pbft.Icc_baselines.Harness.blocks_per_s;
        latency = pbft.Icc_baselines.Harness.mean_latency;
        latency_in_delta = pbft.Icc_baselines.Harness.mean_latency /. delta };
      { protocol = "HotStuff"; condition = "one crashed";
        blocks_per_s = hs.Icc_baselines.Harness.blocks_per_s;
        latency = hs.Icc_baselines.Harness.mean_latency;
        latency_in_delta = hs.Icc_baselines.Harness.mean_latency /. delta };
      { protocol = "Tendermint"; condition = "one crashed";
        blocks_per_s = tm.Icc_baselines.Harness.blocks_per_s;
        latency = tm.Icc_baselines.Harness.mean_latency;
        latency_in_delta = tm.Icc_baselines.Harness.mean_latency /. delta };
    ]
  in
  fault_free @ crashed_leader

let print rows =
  Printf.printf
    "== E6: ICC0 vs PBFT vs HotStuff vs Tendermint (n=%d, delta=%.0f ms) ==\n" n
    (delta *. 1000.);
  Printf.printf "%-10s %-13s %10s %12s %15s\n" "protocol" "condition"
    "blocks/s" "latency(s)" "latency/delta";
  List.iter
    (fun r ->
      Printf.printf "%-10s %-13s %10.2f %12.3f %15.1f\n" r.protocol
        r.condition r.blocks_per_s r.latency r.latency_in_delta)
    rows;
  print_endline
    "  claims: latency ICC0 ~3 delta, PBFT ~3 delta, HotStuff ~6-7 delta;\n\
    \  Tendermint commits in ~3 delta but paces heights on its timeout\n\
    \  (non-responsive, ~1/(3 delta + T) blocks/s);\n\
    \  throughput ICC0/HotStuff ~1/(2 delta), PBFT ~1/(3 delta); with one\n\
    \  crashed replica the baselines repeatedly stall on pacemaker/view\n\
    \  timeouts while ICC0 degrades only by the per-round delay functions."
