(** Experiment E6 — ICC0 against PBFT, chained HotStuff and Tendermint on
    an identical network, fault-free and with a crashed leader.  See
    EXPERIMENTS.md §E6. *)

type row = {
  protocol : string;
  condition : string;
  blocks_per_s : float;
  latency : float;
  latency_in_delta : float;
}

val delta : float
val n : int
val run : ?quick:bool -> unit -> row list
val print : row list -> unit
