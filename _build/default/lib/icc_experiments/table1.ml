(* Experiment E1 — the paper's Table 1: average block rate and sent traffic
   per node, for a small (13-node) and a large (40-node) subnet under three
   scenarios: no client load, 100 state-changing requests/s of 1 KB each,
   and the same load with one third of the nodes refusing to participate.

   Parametrization: the paper notes "the current parametrization leads to
   1.1 blocks/s on small subnets and about 0.4 blocks/s on large subnets" —
   a deployment choice.  We mirror it through the governor epsilon (larger
   subnets pace rounds slower) and the delay bound delta_bnd, with the
   observed 6–110 ms inter-datacenter RTT range.  ICC1 (gossip transport,
   fanout 4) is used, matching the Internet Computer's dissemination layer.

   What must reproduce (shape): the small/large block-rate ratio; the drop
   to ~0.4x block rate with n/3 failures; traffic that grows by roughly the
   gossip-amplified payload rate under load and *falls* under failures.
   Absolute Mb/s are lower than the paper's: its numbers include client
   traffic, key resharing, logs and metrics, which are out of protocol
   scope (see EXPERIMENTS.md). *)

type row = {
  subnet : int;
  scenario : string;
  blocks_per_s : float;
  mbit_per_node_s : float;
}

let paper =
  [
    (13, "without load", 1.09, 1.64);
    (13, "with load", 1.10, 4.72);
    (13, "load + failures", 0.45, 4.39);
    (40, "without load", 0.41, 4.63);
    (40, "with load", 0.41, 7.32);
    (40, "load + failures", 0.16, 5.06);
  ]

let subnet_params = function
  | 13 -> (0.80, 1.3) (* epsilon, delta_bnd *)
  | 40 -> (2.30, 3.5)
  | n -> (0.1 *. float_of_int n, 0.1 *. float_of_int n)

let run_one ~quick ~n ~scenario_name =
  let epsilon, delta_bnd = subnet_params n in
  let duration = if quick then 60. else 180. in
  let base =
    {
      (Icc_core.Runner.default_scenario ~n ~seed:(1000 + n)) with
      Icc_core.Runner.duration;
      delay = Icc_core.Runner.Wan { rtt_lo = 0.006; rtt_hi = 0.110 };
      epsilon;
      delta_bnd;
      t_corrupt = Icc_crypto.Keygen.max_corrupt ~n;
    }
  in
  let scenario =
    match scenario_name with
    | "without load" -> base
    | "with load" ->
        { base with
          Icc_core.Runner.workload =
            Icc_core.Runner.Load { rate_per_s = 100.; cmd_size = 1024 } }
    | "load + failures" ->
        let failed = n / 3 in
        {
          base with
          Icc_core.Runner.workload =
            Icc_core.Runner.Load { rate_per_s = 100.; cmd_size = 1024 };
          behaviors =
            List.init failed (fun i -> (3 * (i + 1), Icc_core.Party.crashed));
        }
    | s -> invalid_arg ("Table1.run_one: unknown scenario " ^ s)
  in
  let r = Icc_gossip.Icc1.run ~fanout:4 scenario in
  {
    subnet = n;
    scenario = scenario_name;
    blocks_per_s = r.Icc_core.Runner.blocks_per_s;
    mbit_per_node_s =
      Icc_sim.Metrics.mean_bytes_per_party_per_second
        r.Icc_core.Runner.metrics ~window:r.Icc_core.Runner.duration
      *. 8. /. 1e6;
  }

let run ?(quick = false) () =
  List.concat_map
    (fun n ->
      List.map
        (fun s -> run_one ~quick ~n ~scenario_name:s)
        [ "without load"; "with load"; "load + failures" ])
    [ 13; 40 ]

let print rows =
  print_endline
    "== E1 / Table 1: block rate and consensus traffic per node (ICC1, WAN) ==";
  Printf.printf "%-8s %-17s %14s %14s %16s %16s\n" "subnet" "scenario"
    "blocks/s" "paper blk/s" "Mb/s per node" "paper Mb/s*";
  List.iter
    (fun r ->
      let _, _, pb, pm =
        List.find
          (fun (n, s, _, _) -> n = r.subnet && String.equal s r.scenario)
          paper
      in
      Printf.printf "%-8d %-17s %14.2f %14.2f %16.2f %16.2f\n" r.subnet
        r.scenario r.blocks_per_s pb r.mbit_per_node_s pm)
    rows;
  print_endline
    "  (*) paper traffic includes non-consensus flows (client requests, key\n\
    \      resharing, logs, metrics); this harness accounts consensus-layer\n\
    \      traffic only, so compare deltas and ratios, not absolutes."
