(* Experiment E4 — reciprocal throughput, latency and optimistic
   responsiveness (paper §1):

     "Protocols ICC0 and ICC1 will finish a round once every 2 delta units
      of time ... the latency ... is 3 delta.  For Protocol ICC2, the
      reciprocal throughput is 3 delta and the latency is 4 delta."

     "the ICC protocols enjoy ... optimistic responsiveness — the protocol
      will run as fast as the network will allow in those rounds where the
      leader is honest."

   We sweep the one-way delay delta with a fixed large delta_bnd and report
   round time and commit latency in units of delta.  A responsive protocol
   tracks delta (constant normalized columns); the deliberately
   non-responsive variant (Tendermint-style Delta_ntry(0) = delta_bnd)
   stays pinned at delta_bnd regardless. *)

type row = {
  protocol : string;
  delta : float;
  round_time : float;
  latency : float;
  round_time_in_delta : float;
  latency_in_delta : float;
}

let delta_bnd = 1.0

let measure ~label ~delta (r : Icc_core.Runner.result) =
  let round_time =
    r.Icc_core.Runner.duration /. float_of_int (max 1 r.Icc_core.Runner.rounds_decided)
  in
  {
    protocol = label;
    delta;
    round_time;
    latency = r.Icc_core.Runner.mean_latency;
    round_time_in_delta = round_time /. delta;
    latency_in_delta = r.Icc_core.Runner.mean_latency /. delta;
  }

let scenario ~quick ~delta ~seed =
  {
    (Icc_core.Runner.default_scenario ~n:7 ~seed) with
    Icc_core.Runner.duration =
      (if quick then max (50. *. delta) 5. else max (400. *. delta) 12.);
    delay = Icc_core.Runner.Fixed_delay delta;
    epsilon = 1e-4;
    delta_bnd;
  }

let run ?(quick = false) () =
  let deltas = if quick then [ 0.02; 0.05 ] else [ 0.01; 0.025; 0.05; 0.1 ] in
  List.concat_map
    (fun delta ->
      let sc = scenario ~quick ~delta ~seed:5 in
      [
        measure ~label:"ICC0" ~delta (Icc_core.Runner.run sc);
        measure ~label:"ICC1 (fanout 4)" ~delta (Icc_gossip.Icc1.run ~fanout:4 sc);
        measure ~label:"ICC2" ~delta (Icc_rbc.Icc2.run sc);
        measure ~label:"non-responsive" ~delta
          (Icc_core.Runner.run { sc with Icc_core.Runner.non_responsive = true });
      ])
    deltas

let print rows =
  print_endline
    "== E4: reciprocal throughput / latency vs network delay (delta_bnd = 1 s) ==";
  Printf.printf "%-17s %9s %12s %12s %13s %13s\n" "protocol" "delta(s)"
    "round(s)" "latency(s)" "round/delta" "latency/delta";
  List.iter
    (fun r ->
      Printf.printf "%-17s %9.3f %12.4f %12.4f %13.1f %13.1f\n" r.protocol
        r.delta r.round_time r.latency r.round_time_in_delta r.latency_in_delta)
    rows;
  print_endline
    "  claims: ICC0 rounds ~2 delta with latency ~3 delta; ICC2 ~3 delta and\n\
    \  ~4 delta; responsive protocols track delta (columns constant across\n\
    \  the sweep) while the non-responsive variant stays at delta_bnd."
