(** Experiment E5 — the dissemination bottleneck: max per-party bytes per
    round in units of the block size S for ICC0 (~n·S), ICC1 (~fanout·S)
    and ICC2 (~3·S).  See EXPERIMENTS.md §E5. *)

type row = {
  protocol : string;
  block_size : int;
  max_bytes_per_round : float;
  in_units_of_s : float;
  total_bytes_per_round : float;
}

val n : int
val run : ?quick:bool -> unit -> row list
val print : row list -> unit
