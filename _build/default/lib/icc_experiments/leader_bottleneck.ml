(* Experiment E5 — the leader/dissemination bottleneck (paper §1, §1.1):

     "such a gossip sub-layer can reduce the communication bottleneck at
      the leader. Instead of a gossip sub-layer, Protocol ICC2 relies on a
      subprotocol for reliable broadcast that uses erasure codes to reduce
      both the overall communication complexity and the communication
      bottleneck at the leader."

     "the total number of bits transmitted by each party in each round of
      ICC2 is O(S)" for blocks of size S = Omega(n lambda log n).

   Sweep the block size S and report the maximum per-party sent traffic per
   round, in units of S, for ICC0 (direct broadcast: everyone retransmits,
   so ~n S), ICC1 (gossip: ~fanout S) and ICC2 (erasure-coded RBC: ~3 S +
   echo overhead). *)

type row = {
  protocol : string;
  block_size : int;
  max_bytes_per_round : float;
  in_units_of_s : float;
  total_bytes_per_round : float;
}

let n = 13

let measure ~label ~block_size (r : Icc_core.Runner.result) =
  let rounds = float_of_int (max 1 r.Icc_core.Runner.rounds_decided) in
  let maxb =
    float_of_int (Icc_sim.Metrics.max_bytes_per_party r.Icc_core.Runner.metrics)
    /. rounds
  in
  {
    protocol = label;
    block_size;
    max_bytes_per_round = maxb;
    in_units_of_s = maxb /. float_of_int block_size;
    total_bytes_per_round =
      float_of_int (Icc_sim.Metrics.total_bytes r.Icc_core.Runner.metrics)
      /. rounds;
  }

let run ?(quick = false) () =
  let sizes =
    if quick then [ 100_000 ] else [ 10_000; 100_000; 1_000_000 ]
  in
  List.concat_map
    (fun block_size ->
      let sc =
        {
          (Icc_core.Runner.default_scenario ~n ~seed:77) with
          Icc_core.Runner.duration = (if quick then 8. else 12.);
          delay = Icc_core.Runner.Fixed_delay 0.03;
          epsilon = 0.05;
          delta_bnd = 0.3;
          workload = Icc_core.Runner.Fixed_block_size block_size;
        }
      in
      [
        measure ~label:"ICC0" ~block_size (Icc_core.Runner.run sc);
        measure ~label:"ICC1 (fanout 4)" ~block_size
          (Icc_gossip.Icc1.run ~fanout:4 sc);
        measure ~label:"ICC2" ~block_size (Icc_rbc.Icc2.run sc);
      ])
    sizes

let print rows =
  Printf.printf
    "== E5: per-party dissemination cost vs block size S (n=%d) ==\n" n;
  Printf.printf "%-17s %10s %20s %12s %20s\n" "protocol" "S(KB)"
    "max bytes/round" "in S units" "total bytes/round";
  List.iter
    (fun r ->
      Printf.printf "%-17s %10d %20.0f %12.1f %20.0f\n" r.protocol
        (r.block_size / 1000) r.max_bytes_per_round r.in_units_of_s
        r.total_bytes_per_round)
    rows;
  print_endline
    "  claims: ICC0's worst sender carries ~n*S per round (every party\n\
    \  rebroadcasts the leader block); gossip caps it near fanout*S; the\n\
    \  erasure-coded RBC caps it near 3*S (k = t+1), the paper's O(S)."
