(** Experiment E1 — the paper's Table 1: average block rate and consensus
    traffic per node for 13- and 40-node subnets under no load, 100 req/s
    of 1 KB, and the same load with n/3 failed nodes; ICC1 over the WAN
    delay model.  See EXPERIMENTS.md §E1. *)

type row = {
  subnet : int;
  scenario : string;
  blocks_per_s : float;
  mbit_per_node_s : float;
}

val paper : (int * string * float * float) list
(** The paper's Table 1 values: (subnet, scenario, blocks/s, Mb/s). *)

val subnet_params : int -> float * float
(** The deployment constants (epsilon, delta_bnd) mirroring "the current
    parametrization" per subnet size. *)

val run_one : quick:bool -> n:int -> scenario_name:string -> row
val run : ?quick:bool -> unit -> row list
val print : row list -> unit
