(** Experiment E9 (extension) — adapting to an unknown delay bound: a
    static bound 10x below the true delay starves finalization entirely
    while the tree keeps growing; the adaptive variant recovers commits and
    the normal message rate.  See EXPERIMENTS.md §E9. *)

type row = {
  variant : string;
  delta : float;
  delta_bnd : float;
  rounds_decided : int;
  proposals_per_round : float;
  msgs_per_round : float;
  safety : bool;
}

val run_one : quick:bool -> adaptive:bool -> delta:float -> delta_bnd:float -> row
val run : ?quick:bool -> unit -> row list
val print : row list -> unit
