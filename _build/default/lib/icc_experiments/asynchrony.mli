(** Experiment E8 — intermittent synchrony: adversarial asynchrony for the
    first third of the run; commits resume at full rate within one round of
    synchrony returning, safety throughout.  See EXPERIMENTS.md §E8. *)

type row = { window_start : float; window_end : float; finalizations : int }

type outcome = {
  rows : row list;
  safety : bool;
  p1 : bool;
  async_until : float;
}

val run : ?quick:bool -> unit -> outcome
val print : outcome -> unit
