lib/icc_experiments/table1.mli:
