lib/icc_experiments/robustness.ml: Icc_core Icc_sim List Printf
