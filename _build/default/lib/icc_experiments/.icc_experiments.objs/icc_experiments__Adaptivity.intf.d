lib/icc_experiments/adaptivity.mli:
