lib/icc_experiments/msg_complexity.mli:
