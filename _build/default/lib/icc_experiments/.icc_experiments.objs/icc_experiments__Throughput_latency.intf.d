lib/icc_experiments/throughput_latency.mli:
