lib/icc_experiments/asynchrony.ml: Icc_core Icc_sim List Printf String
