lib/icc_experiments/asynchrony.mli:
