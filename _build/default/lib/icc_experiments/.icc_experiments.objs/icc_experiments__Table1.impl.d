lib/icc_experiments/table1.ml: Icc_core Icc_crypto Icc_gossip Icc_sim List Printf String
