lib/icc_experiments/round_complexity.mli:
