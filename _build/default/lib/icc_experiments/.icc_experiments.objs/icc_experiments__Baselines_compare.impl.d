lib/icc_experiments/baselines_compare.ml: Icc_baselines Icc_core List Printf
