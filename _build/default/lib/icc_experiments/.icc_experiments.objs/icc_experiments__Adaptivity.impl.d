lib/icc_experiments/adaptivity.ml: Icc_core Icc_sim List Printf
