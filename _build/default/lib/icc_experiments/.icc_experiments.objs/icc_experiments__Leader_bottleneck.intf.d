lib/icc_experiments/leader_bottleneck.mli:
