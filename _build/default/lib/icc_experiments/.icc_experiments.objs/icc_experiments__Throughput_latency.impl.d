lib/icc_experiments/throughput_latency.ml: Icc_core Icc_gossip Icc_rbc List Printf
