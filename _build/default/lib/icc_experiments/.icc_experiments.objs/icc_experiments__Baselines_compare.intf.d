lib/icc_experiments/baselines_compare.mli:
