lib/icc_experiments/leader_bottleneck.ml: Icc_core Icc_gossip Icc_rbc Icc_sim List Printf
