lib/icc_experiments/round_complexity.ml: Icc_core Icc_crypto List Printf
