lib/icc_experiments/msg_complexity.ml: Icc_core Icc_crypto Icc_sim List Printf
