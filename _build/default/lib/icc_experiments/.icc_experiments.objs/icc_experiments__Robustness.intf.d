lib/icc_experiments/robustness.mli:
