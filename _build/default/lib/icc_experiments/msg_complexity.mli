(** Experiment E2 — message complexity per round: O(n^2) w.h.p. in
    synchronous rounds (worst case O(n^3)).  See EXPERIMENTS.md §E2. *)

type row = {
  n : int;
  scenario : string;
  msgs_per_round : float;
  normalized_n2 : float;
}

val run_one : quick:bool -> n:int -> adversarial:bool -> row
val run : ?quick:bool -> unit -> row list
val print : row list -> unit
