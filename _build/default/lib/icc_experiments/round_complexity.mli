(** Experiment E3 — round complexity: O(1) expected rounds to decision
    under a static adversary; rounds led by stealthy equivocators decide
    only later.  See EXPERIMENTS.md §E3. *)

type row = {
  n : int;
  beta : float;
  rounds : int;
  finalized_fraction : float;
  max_gap : int;
  blocks_per_s : float;
}

val run_one : quick:bool -> n:int -> beta:float -> row
val run : ?quick:bool -> unit -> row list
val print : row list -> unit
