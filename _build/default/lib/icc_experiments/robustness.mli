(** Experiment E7 — robust consensus: n/3 parties crash mid-run; the block
    rate degrades to roughly the honest-leader fraction and never to zero.
    See EXPERIMENTS.md §E7. *)

type row = {
  protocol : string;
  before_blocks_per_s : float;
  after_blocks_per_s : float;
  degradation : float;
  safety : bool;
}

val n : int
val run : ?quick:bool -> unit -> row list
val print : row list -> unit
