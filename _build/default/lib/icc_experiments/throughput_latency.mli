(** Experiment E4 — reciprocal throughput (2δ ICC0/ICC1, 3δ ICC2), commit
    latency (3δ / 4δ) and optimistic responsiveness across a network-delay
    sweep.  See EXPERIMENTS.md §E4. *)

type row = {
  protocol : string;
  delta : float;
  round_time : float;
  latency : float;
  round_time_in_delta : float;
  latency_in_delta : float;
}

val delta_bnd : float
val run : ?quick:bool -> unit -> row list
val print : row list -> unit
