(* Experiment E9 (extension ablation) — adapting to an unknown delay bound
   (paper §1):

     "the ICC protocols can be modified to adaptively adjust to an unknown
      communication-delay bound.  However, some care must be taken in this."

   With the configured delta_bnd an order of magnitude below the true
   network delay, every party notarization-shares its own block before the
   leader's arrives, N stops being a singleton, and no finalization share is
   ever cast: the tree grows (P1) but nothing commits — P3 needs the
   delay-function requirement.  The adaptive variant scales its local bound
   up whenever N wasn't a singleton and decays it otherwise, recovering
   commits and the normal message rate within a few rounds. *)

type row = {
  variant : string;
  delta : float;
  delta_bnd : float;
  rounds_decided : int;
  proposals_per_round : float;
  msgs_per_round : float;
  safety : bool;
}

let run_one ~quick ~adaptive ~delta ~delta_bnd =
  let scenario =
    {
      (Icc_core.Runner.default_scenario ~n:7 ~seed:23) with
      Icc_core.Runner.duration = (if quick then 30. else 90.);
      delay = Icc_core.Runner.Fixed_delay delta;
      delta_bnd;
      epsilon = 0.02;
      adaptive;
    }
  in
  let r = Icc_core.Runner.run scenario in
  (* normalise by wall rounds (the tree keeps growing even when nothing
     commits), approximated by the max pool round across honest parties via
     finalization times when available, else message volume *)
  let rounds =
    max r.Icc_core.Runner.rounds_decided
      (int_of_float (r.Icc_core.Runner.duration /. (2. *. delta)))
  in
  {
    variant = (if adaptive then "adaptive" else "static");
    delta;
    delta_bnd;
    rounds_decided = r.Icc_core.Runner.rounds_decided;
    proposals_per_round =
      float_of_int (Icc_sim.Metrics.msgs_of_kind r.Icc_core.Runner.metrics "proposal")
      /. 6. /. float_of_int (max 1 rounds);
    msgs_per_round =
      float_of_int (Icc_sim.Metrics.total_msgs r.Icc_core.Runner.metrics)
      /. float_of_int (max 1 rounds);
    safety = r.Icc_core.Runner.safety_ok;
  }

let run ?(quick = false) () =
  List.concat_map
    (fun (delta, delta_bnd) ->
      [
        run_one ~quick ~adaptive:false ~delta ~delta_bnd;
        run_one ~quick ~adaptive:true ~delta ~delta_bnd;
      ])
    [ (0.1, 0.01) (* bound 10x too small *); (0.05, 0.1) (* bound adequate *) ]

let print rows =
  print_endline
    "== E9 (extension): adapting to an unknown delay bound ==";
  Printf.printf "%-10s %9s %11s %10s %12s %12s %8s\n" "variant" "delta(s)"
    "bound(s)" "decided" "props/round" "msgs/round" "safety";
  List.iter
    (fun r ->
      Printf.printf "%-10s %9.3f %11.3f %10d %12.1f %12.0f %8b\n" r.variant
        r.delta r.delta_bnd r.rounds_decided r.proposals_per_round
        r.msgs_per_round r.safety)
    rows;
  print_endline
    "  claim: a static bound far below the true delay starves finalization\n\
    \  entirely (0 decided) while the tree still grows; the adaptive variant\n\
    \  recovers commits and the ~1 proposal/round steady state.  With an\n\
    \  adequate bound both behave identically."
