lib/icc_baselines/tendermint.ml: Array Harness Hashtbl Icc_crypto Icc_sim List Printf String
