lib/icc_baselines/hotstuff.ml: Array Harness Hashtbl Icc_crypto Icc_sim List Printf String
