lib/icc_baselines/harness.mli: Hashtbl Icc_core Icc_sim
