lib/icc_baselines/pbft.mli: Harness
