lib/icc_baselines/tendermint.mli: Harness
