lib/icc_baselines/harness.ml: Hashtbl Icc_core Icc_crypto Icc_sim List Option String
