lib/icc_baselines/pbft.ml: Array Harness Hashtbl Icc_crypto Icc_sim List Printf String
