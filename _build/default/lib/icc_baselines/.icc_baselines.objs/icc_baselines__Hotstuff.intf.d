lib/icc_baselines/hotstuff.mli: Harness
