(** Tendermint [8] (simplified) on the shared simulator substrate: heights
    with rounds, round-robin proposers, propose/prevote/precommit with
    2t+1 quorums, value locking, nil votes on step timeouts, and the fixed
    commit wait before each next height.

    Baseline characteristic reproduced: Tendermint is {e not}
    optimistically responsive — height duration is ~3δ + timeout, so the
    block rate is governed by the timeout parameter even on a fast network
    with honest proposers (the paper's §1.1 contrast). *)

val run : Harness.scenario -> Harness.result
