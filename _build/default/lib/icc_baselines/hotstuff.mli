(** Chained (pipelined) HotStuff [36] on the shared simulator substrate:
    one block per view, votes as multisignature shares to the next leader,
    QCs by aggregation, the two-chain lock / three-chain commit rule with
    consecutive views, and a timeout pacemaker.

    Baseline characteristics reproduced: 2δ reciprocal throughput, ~6–7δ
    commit latency, and pacemaker stalls when a rotation leader has
    crashed — including the n=4 pathology where one crashed replica leaves
    alive-leader runs shorter than the four consecutive views a commit
    needs, so nothing ever commits (cf. the paper's §1.1 remark on
    fixed-rotation HotStuff under repeated leader failure). *)

val run : Harness.scenario -> Harness.result
