(** PBFT (Castro–Liskov [13]) on the shared simulator substrate: the
    three-phase happy path (pre-prepare / prepare / commit with quorums 2t
    and n−t), in-order execution, and a view-change subprotocol carrying
    prepared certificates.  Simplifications: no checkpointing or watermark
    garbage collection (the log is unbounded, like the ICC pools).

    Baseline characteristics reproduced: 3δ commit latency; the leader
    transmits full batches to all n−1 replicas (the bottleneck the ICC
    protocols attack); a crashed leader stalls progress for the view-change
    timeout. *)

val run : Harness.scenario -> Harness.result
