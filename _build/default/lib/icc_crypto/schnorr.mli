(** Schnorr signatures over {!Group}: the ordinary digital signature scheme
    [S_auth] used to authenticate block proposals (paper §2.2, §3.2).

    Deterministic (derandomised) signing: the nonce is derived from the
    secret key and the message, so equal inputs yield equal signatures. *)

type secret_key
type public_key = { pk : Group.elt }

type signature = {
  challenge : Group.scalar;
  response : Group.scalar;
}

val keygen : (unit -> int) -> secret_key * public_key
(** [keygen rand_bits] draws a fresh key pair from a source of uniform
    61-bit non-negative ints. *)

val public_key_of_secret : secret_key -> public_key
val sign : secret_key -> string -> signature
val verify : public_key -> string -> signature -> bool

val signature_wire_size : int
(** Modeled production wire size in bytes, used by traffic accounting. *)
