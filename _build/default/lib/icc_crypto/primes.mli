(** Deterministic primality testing for the 62-bit range. *)

val is_prime : int -> bool
(** Deterministic Miller–Rabin with the 12 smallest prime witnesses
    (a proven certificate for all inputs below 3.3e24). *)

val is_safe_prime : int -> bool
(** [is_safe_prime p] holds when both [p] and [(p-1)/2] are prime. *)

val next_safe_prime_below : int -> int
(** Largest safe prime ≤ the given odd bound. *)
