(** Chaum–Pedersen non-interactive discrete-log-equality proofs, used to
    verify random-beacon signature shares. *)

type proof = {
  challenge : Group.scalar;
  response : Group.scalar;
}

val prove :
  base1:Group.elt ->
  base2:Group.elt ->
  exponent:int ->
  msg_tag:string ->
  proof
(** [prove ~base1 ~base2 ~exponent ~msg_tag] proves that
    [base1^exponent] and [base2^exponent] share the exponent.  [msg_tag]
    only seeds the deterministic nonce. *)

val verify :
  base1:Group.elt -> base2:Group.elt -> a:Group.elt -> b:Group.elt ->
  proof -> bool
(** [verify ~base1 ~base2 ~a ~b proof] checks that [a = base1^x] and
    [b = base2^x] for a common (unknown) [x]. *)
