(** Distributed key generation for the random-beacon scheme [S_beacon]
    (paper §3.1): Pedersen's joint-Feldman DKG.  Produces the same
    {!Threshold_vuf} parameters and secret shares as the trusted dealer in
    {!Keygen}, but from [n] mutually distrusting dealers: every party deals
    a Shamir sharing with Feldman commitments, invalid shares draw
    complaints, dealers with more than [t] complaints are disqualified, and
    the key is the sum over the qualified set. *)

type dealing = {
  dealer : int;
  commitments : Group.elt array;
      (** Broadcast: [C_k = g^(a_k)] for the dealer's polynomial. *)
  shares : Group.scalar array;
      (** PRIVATE: entry [j-1] must be sent only to party [j]. *)
}

val deal : threshold_t:int -> n:int -> dealer:int -> (unit -> int) -> dealing

val share_valid :
  commitments:Group.elt array -> receiver:int -> share:Group.scalar -> bool
(** Feldman check: [g^share = prod_k C_k^(receiver^k)]. *)

type complaint = { complainer : int; against : int }

val verify_dealing : receiver:int -> dealing -> complaint option
(** [None] when the receiver's share verifies; a complaint otherwise. *)

val finalize :
  threshold_t:int -> n:int -> dealings:dealing list ->
  complaints:complaint list ->
  (Threshold_vuf.params * Threshold_vuf.secret_share list, string) result
(** Disqualify over-complained dealers, then derive parameters (from
    broadcast commitments alone) and per-party secrets.  [Error] when fewer
    than [t+1] dealers qualify. *)

val run :
  threshold_t:int -> n:int -> (unit -> int) ->
  Threshold_vuf.params * Threshold_vuf.secret_share list
(** One-call honest execution. *)
