(* The cyclic group used by every signature scheme in this library: the
   subgroup of quadratic residues of Z_p^* for a safe prime p = 2q + 1.
   The subgroup has prime order q, so every non-identity element (such as
   g = 4 = 2^2) generates it.

   Parameters are fixed, simulation-scale (61-bit) values; see DESIGN.md
   §1.3 for why production-scale curves are substituted. *)

let p = 2305843009213691579
let q = (p - 1) / 2
let g = 4

let () =
  (* Cheap self-checks at module initialisation. *)
  Fp.check_modulus p;
  assert (p = (2 * q) + 1);
  assert (Fp.pow g q p = 1)

type elt = int (* canonical representative in [1, p), member of QR(p) *)
type scalar = int (* canonical representative in [0, q) *)

let one = 1
let generator = g

let elt_equal = Int.equal
let scalar_equal = Int.equal

let is_element x = x > 0 && x < p && Fp.pow x q p = 1

let mul a b = Fp.mul a b p
let elt_inv a = Fp.inv a p
let pow base e = Fp.pow base (Fp.reduce e q) p
let base_pow e = pow g e

(* Scalar field Z_q helpers. *)
let scalar_add a b = Fp.add a b q
let scalar_sub a b = Fp.sub a b q
let scalar_mul a b = Fp.mul a b q
let scalar_inv a = Fp.inv a q
let scalar_reduce a = Fp.reduce a q

let scalar_of_hash (d : Sha256.t) = Fp.reduce (Sha256.to_int61 d) q

(* Hash a message into the group: square the hash-derived residue.  Squaring
   maps Z_p^* onto the QR subgroup, giving a proper hash-to-group for the
   threshold-VUF beacon (the CKS-style coin needs H2G with unknown dlog). *)
let hash_to_group (d : Sha256.t) : elt =
  let x = 2 + (Sha256.to_int61 d mod (p - 3)) in
  (* x in [2, p-1]: never 0, never 1, so x^2 is a non-identity QR unless
     x = p - 1; nudge that single bad case. *)
  let x = if x = p - 1 then 2 else x in
  Fp.mul x x p

let random_scalar rand_bits : scalar =
  (* rand_bits yields uniformly random 61-bit non-negative ints. *)
  let rec draw () =
    let v = rand_bits () in
    if v >= 0 && v < q then v else draw ()
  in
  draw ()

let elt_to_string (e : elt) = string_of_int e
let pp_elt fmt (e : elt) = Format.pp_print_int fmt e
