(* Merkle trees over SHA-256, used to authenticate erasure-code fragments in
   the ICC2 reliable-broadcast subprotocol.

   Leaves and internal nodes use distinct domain separators so a leaf can
   never be reinterpreted as an internal node.  Odd nodes are promoted
   unpaired to the next level (no duplication). *)

type proof_step = { sibling : Sha256.t option; left : bool }
(* [left = true] means the running hash is the left child at this level;
   [sibling = None] records an unpaired promotion. *)

type proof = proof_step list

let leaf_hash data = Sha256.digest_string ("leaf|" ^ data)

let node_hash l r =
  Sha256.digest_string ("node|" ^ (l : Sha256.t :> string) ^ (r : Sha256.t :> string))

let root_of_leaves (leaves : string list) : Sha256.t =
  if leaves = [] then invalid_arg "Merkle.root_of_leaves: empty";
  let rec up = function
    | [ h ] -> h
    | level ->
        let rec pair = function
          | l :: r :: rest -> node_hash l r :: pair rest
          | [ odd ] -> [ odd ]
          | [] -> []
        in
        up (pair level)
  in
  up (List.map leaf_hash leaves)

let prove (leaves : string list) (index : int) : proof =
  let n = List.length leaves in
  if index < 0 || index >= n then invalid_arg "Merkle.prove: index out of range";
  let rec up level pos acc =
    match level with
    | [ _ ] -> List.rev acc
    | _ ->
        let arr = Array.of_list level in
        let len = Array.length arr in
        let step =
          if pos land 1 = 0 then
            if pos + 1 < len then { sibling = Some arr.(pos + 1); left = true }
            else { sibling = None; left = true }
          else { sibling = Some arr.(pos - 1); left = false }
        in
        let rec pair = function
          | l :: r :: rest -> node_hash l r :: pair rest
          | [ odd ] -> [ odd ]
          | [] -> []
        in
        up (pair level) (pos / 2) (step :: acc)
  in
  up (List.map leaf_hash leaves) index []

let verify ~root ~leaf (proof : proof) : bool =
  let final =
    List.fold_left
      (fun h { sibling; left } ->
        match (sibling, left) with
        | Some s, true -> node_hash h s
        | Some s, false -> node_hash s h
        | None, _ -> h)
      (leaf_hash leaf) proof
  in
  Sha256.equal final root

(* Modeled wire size of a proof for an n-leaf tree: 32 bytes per level. *)
let proof_wire_size ~n_leaves =
  let rec levels n acc = if n <= 1 then acc else levels ((n + 1) / 2) (acc + 1) in
  32 * levels n_leaves 0
