(* Deterministic Miller–Rabin for the 62-bit range used by this library.

   The witness set {2,3,5,7,11,13,17,19,23,29,31,37} is known to be a
   deterministic primality certificate for all n < 3.3 * 10^24, which covers
   every value representable here. *)

let witnesses = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ]

let is_prime n =
  if n < 2 then false
  else if List.mem n witnesses then true
  else if List.exists (fun p -> n mod p = 0) witnesses then false
  else begin
    (* n - 1 = d * 2^r with d odd *)
    let d = ref (n - 1) and r = ref 0 in
    while !d land 1 = 0 do
      d := !d lsr 1;
      incr r
    done;
    let composite_witness a =
      let x = Fp.pow a !d n in
      if x = 1 || x = n - 1 then false
      else begin
        let x = ref x and still_composite = ref true in
        (let i = ref 1 in
         while !still_composite && !i < !r do
           x := Fp.mul !x !x n;
           if !x = n - 1 then still_composite := false;
           incr i
        done);
        !still_composite
      end
    in
    not (List.exists composite_witness witnesses)
  end

let is_safe_prime p = p > 5 && is_prime p && is_prime ((p - 1) / 2)

let next_safe_prime_below start =
  let p = ref (if start land 1 = 0 then start - 1 else start) in
  while not (is_safe_prime !p) do
    p := !p - 2;
    if !p < 7 then invalid_arg "Primes.next_safe_prime_below: exhausted"
  done;
  !p
