(* Shamir secret sharing over the scalar field Z_q of {!Group} (paper §2.3,
   approach (iii); Shamir [34]).

   A degree-t polynomial f with f(0) = secret is sampled; party i (1-based)
   receives the share f(i).  Any t+1 shares reconstruct by Lagrange
   interpolation at 0; t shares reveal nothing. *)

type share = {
  index : int; (* 1-based party index, the evaluation point *)
  value : Group.scalar;
}

let eval_poly coeffs x =
  (* Horner evaluation over Z_q; coeffs.(0) is the constant term. *)
  let q = Group.q in
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := Fp.add (Fp.mul !acc x q) coeffs.(i) q
  done;
  !acc

let deal ~threshold_t ~n ~secret rand_bits =
  if threshold_t < 0 || n < 1 || threshold_t >= n then
    invalid_arg "Shamir.deal: need 0 <= t < n";
  let coeffs = Array.make (threshold_t + 1) 0 in
  coeffs.(0) <- Group.scalar_reduce secret;
  for i = 1 to threshold_t do
    coeffs.(i) <- Group.random_scalar rand_bits
  done;
  (coeffs, List.init n (fun i -> { index = i + 1; value = eval_poly coeffs (i + 1) }))

(* Lagrange coefficient λ_i at x = 0 for the set of indices [idxs]:
   λ_i = Π_{j ≠ i} j / (j - i)  (mod q). *)
let lagrange_coeff_at_zero idxs i =
  let q = Group.q in
  let num, den =
    List.fold_left
      (fun (num, den) j ->
        if j = i then (num, den)
        else
          ( Fp.mul num (Fp.reduce j q) q,
            Fp.mul den (Fp.reduce (j - i) q) q ))
      (1, 1) idxs
  in
  Fp.divide num den q

let reconstruct shares =
  let idxs = List.map (fun s -> s.index) shares in
  let distinct = List.sort_uniq compare idxs in
  if List.length distinct <> List.length idxs then
    invalid_arg "Shamir.reconstruct: duplicate share indices";
  List.fold_left
    (fun acc s ->
      Group.scalar_add acc
        (Group.scalar_mul (lagrange_coeff_at_zero idxs s.index) s.value))
    0 shares
