(* Distributed key generation for the random-beacon scheme S_beacon.

   The paper (§3.1) requires the correlated beacon keys to be "set up by a
   trusted party or a secure distributed key generation protocol"; {!Keygen}
   implements the trusted dealer, this module the DKG — a joint-Feldman
   construction (Pedersen's DKG):

     1. Deal: every party i samples a degree-t polynomial f_i, broadcasts
        Feldman commitments C_{i,k} = g^{a_{i,k}} to its coefficients, and
        privately sends party j the share s_{i,j} = f_i(j).
     2. Verify/complain: party j checks each received share against the
        dealer's commitments (g^{s_{i,j}} = prod_k C_{i,k}^{j^k}) and
        broadcasts a complaint against dealers whose share fails.
     3. Qualify: dealers with more than t complaints are disqualified; the
        qualified set Q must contain at least t+1 dealers.
     4. Derive: party j's beacon key is sk_j = sum_{i in Q} s_{i,j}; the
        global public key is prod_{i in Q} C_{i,0} and each verification
        key vk_j = prod_{i in Q} prod_k C_{i,k}^{j^k} — all computable from
        broadcast data alone, so every party derives identical parameters.

   The secret is the sum of the qualified dealers' secrets: as long as one
   qualified dealer is honest, no coalition of at most t parties learns it.
   (The full Gennaro et al. fix for biased key distribution — Pedersen
   commitments in phase 1 — is out of scope here, as it is for the paper.)

   The module is written in explicit message-passing style (deal/receive/
   complain/finalize) so it can be driven over the simulated network, plus
   a one-call [run] for in-process setup. *)

type dealing = {
  dealer : int; (* 1-based *)
  commitments : Group.elt array; (* C_{i,k} = g^{a_{i,k}}, k = 0..t *)
  shares : Group.scalar array; (* s_{i,j} for j = 1..n; PRIVATE: entry j-1
                                  must only be sent to party j *)
}

let deal ~threshold_t ~n ~dealer rand_bits =
  let secret = Group.random_scalar rand_bits in
  let coeffs, shares = Shamir.deal ~threshold_t ~n ~secret rand_bits in
  {
    dealer;
    commitments = Array.map Group.base_pow coeffs;
    shares = Array.of_list (List.map (fun (s : Shamir.share) -> s.value) shares);
  }

(* Evaluate the commitment polynomial at point j in the exponent:
   prod_k C_k^(j^k) = g^(f(j)). *)
let commitment_eval commitments j =
  let q = Group.q in
  let acc = ref Group.one and power = ref 1 in
  Array.iter
    (fun c ->
      acc := Group.mul !acc (Group.pow c !power);
      power := Fp.mul !power (Fp.reduce j q) q)
    commitments;
  !acc

(* Party j's check of dealer i's share (step 2). *)
let share_valid ~commitments ~receiver ~share =
  Group.elt_equal (Group.base_pow share) (commitment_eval commitments receiver)

type complaint = { complainer : int; against : int }

let verify_dealing ~receiver (d : dealing) : complaint option =
  if
    receiver >= 1
    && receiver <= Array.length d.shares
    && share_valid ~commitments:d.commitments ~receiver
         ~share:d.shares.(receiver - 1)
  then None
  else Some { complainer = receiver; against = d.dealer }

(* Step 3/4: given all broadcast commitments and each party's received
   shares, compute the qualified set and derive parameters and secrets. *)
let finalize ~threshold_t ~n ~(dealings : dealing list)
    ~(complaints : complaint list) :
    (Threshold_vuf.params * Threshold_vuf.secret_share list, string) result =
  let complaint_count dealer =
    List.length
      (List.sort_uniq compare
         (List.filter_map
            (fun c -> if c.against = dealer then Some c.complainer else None)
            complaints))
  in
  let qualified =
    List.filter (fun d -> complaint_count d.dealer <= threshold_t) dealings
  in
  if List.length qualified < threshold_t + 1 then
    Error "Dkg.finalize: fewer than t+1 qualified dealers"
  else begin
    let global_pk =
      List.fold_left
        (fun acc (d : dealing) -> Group.mul acc d.commitments.(0))
        Group.one qualified
    in
    let verification_keys =
      Array.init n (fun j ->
          List.fold_left
            (fun acc (d : dealing) ->
              Group.mul acc (commitment_eval d.commitments (j + 1)))
            Group.one qualified)
    in
    let secrets =
      List.init n (fun j ->
          {
            Threshold_vuf.owner = j + 1;
            sk_i =
              List.fold_left
                (fun acc (d : dealing) -> Group.scalar_add acc d.shares.(j))
                0 qualified;
          })
    in
    Ok
      ( { Threshold_vuf.threshold_t; n; global_pk; verification_keys },
        secrets )
  end

(* One-call honest execution (every party deals, verifies, no complaints). *)
let run ~threshold_t ~n rand_bits =
  let dealings =
    List.init n (fun i -> deal ~threshold_t ~n ~dealer:(i + 1) rand_bits)
  in
  let complaints =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun j -> verify_dealing ~receiver:(j + 1) d)
          (List.init n Fun.id))
      dealings
  in
  match finalize ~threshold_t ~n ~dealings ~complaints with
  | Ok r -> r
  | Error e -> failwith e
