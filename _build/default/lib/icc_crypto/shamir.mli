(** Shamir secret sharing over the scalar field [Z_q] of {!Group}. *)

type share = {
  index : int;  (** 1-based party index (the evaluation point). *)
  value : Group.scalar;
}

val deal :
  threshold_t:int ->
  n:int ->
  secret:int ->
  (unit -> int) ->
  Group.scalar array * share list
(** [deal ~threshold_t ~n ~secret rand_bits] samples a random degree-
    [threshold_t] polynomial with constant term [secret] and returns the
    coefficient vector together with the [n] shares [f(1) .. f(n)].
    Any [threshold_t + 1] shares reconstruct; [threshold_t] reveal nothing. *)

val eval_poly : Group.scalar array -> int -> Group.scalar

val lagrange_coeff_at_zero : int list -> int -> Group.scalar
(** [lagrange_coeff_at_zero idxs i] is the Lagrange basis coefficient of
    index [i] for interpolation at 0 over the index set [idxs]. *)

val reconstruct : share list -> Group.scalar
(** Interpolates at 0.  Raises [Invalid_argument] on duplicate indices. *)
