lib/icc_crypto/primes.mli:
