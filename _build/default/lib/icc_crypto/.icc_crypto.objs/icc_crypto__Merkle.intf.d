lib/icc_crypto/merkle.mli: Sha256
