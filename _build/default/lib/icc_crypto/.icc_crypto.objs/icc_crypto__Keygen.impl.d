lib/icc_crypto/keygen.ml: Array List Multisig Schnorr Threshold_vuf
