lib/icc_crypto/group.ml: Format Fp Int Sha256
