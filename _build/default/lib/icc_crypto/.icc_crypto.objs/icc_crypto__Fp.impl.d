lib/icc_crypto/fp.ml:
