lib/icc_crypto/dleq.mli: Group
