lib/icc_crypto/threshold_vuf.ml: Array Dleq Group List Printf Sha256 Shamir
