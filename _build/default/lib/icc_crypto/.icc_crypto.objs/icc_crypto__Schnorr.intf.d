lib/icc_crypto/schnorr.mli: Group
