lib/icc_crypto/shamir.mli: Group
