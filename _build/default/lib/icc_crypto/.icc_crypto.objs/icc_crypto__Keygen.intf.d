lib/icc_crypto/keygen.mli: Multisig Schnorr Threshold_vuf
