lib/icc_crypto/dleq.ml: Group Printf Sha256
