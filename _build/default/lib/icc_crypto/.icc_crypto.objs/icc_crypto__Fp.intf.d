lib/icc_crypto/fp.mli:
