lib/icc_crypto/merkle.ml: Array List Sha256
