lib/icc_crypto/shamir.ml: Array Fp Group List
