lib/icc_crypto/group.mli: Format Sha256
