lib/icc_crypto/dkg.mli: Group Threshold_vuf
