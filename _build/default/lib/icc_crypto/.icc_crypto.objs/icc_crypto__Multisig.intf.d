lib/icc_crypto/multisig.mli: Schnorr
