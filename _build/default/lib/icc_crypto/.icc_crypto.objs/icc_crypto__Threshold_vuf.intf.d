lib/icc_crypto/threshold_vuf.mli: Dleq Group Sha256
