lib/icc_crypto/sha256.ml: Array Buffer Bytes Char Format Int32 Printf String
