lib/icc_crypto/dkg.ml: Array Fp Fun Group List Shamir Threshold_vuf
