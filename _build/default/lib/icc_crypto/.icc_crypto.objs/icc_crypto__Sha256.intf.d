lib/icc_crypto/sha256.mli: Bytes Format
