lib/icc_crypto/primes.ml: Fp List
