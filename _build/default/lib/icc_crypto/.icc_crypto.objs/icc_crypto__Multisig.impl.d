lib/icc_crypto/multisig.ml: Array List Schnorr
