lib/icc_crypto/schnorr.ml: Group Printf Sha256
