(** Merkle trees over SHA-256, authenticating erasure-code fragments in the
    ICC2 reliable-broadcast subprotocol. *)

type proof_step = { sibling : Sha256.t option; left : bool }
type proof = proof_step list

val leaf_hash : string -> Sha256.t
val root_of_leaves : string list -> Sha256.t

val prove : string list -> int -> proof
(** [prove leaves index] builds the inclusion proof for [List.nth leaves
    index].  Raises [Invalid_argument] on an out-of-range index. *)

val verify : root:Sha256.t -> leaf:string -> proof -> bool

val proof_wire_size : n_leaves:int -> int
(** Modeled wire size in bytes (32 per tree level). *)
