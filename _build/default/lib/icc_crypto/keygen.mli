(** Trusted-dealer key generation for all four schemes of an ICC deployment
    (paper §3.2): [S_auth], [S_notary], [S_final], [S_beacon]. *)

type system = {
  n : int;
  t : int;
  auth_pub : Schnorr.public_key array;
  notary : Multisig.params;
  final : Multisig.params;
  beacon : Threshold_vuf.params;
}

type party_keys = {
  index : int;
  auth : Schnorr.secret_key;
  notary_key : Multisig.secret;
  final_key : Multisig.secret;
  beacon_key : Threshold_vuf.secret_share;
}

val max_corrupt : n:int -> int
(** Largest [t] with [3t < n]. *)

val generate : n:int -> t:int -> (unit -> int) -> system * party_keys list
(** Raises [Invalid_argument] unless [3t < n]. *)
