(* Trusted-dealer key generation for a full ICC deployment (paper §3.1–3.2):
   per-party authentication keys (S_auth) plus the three threshold schemes
   S_notary and S_final (both (t, n-t, n)) and S_beacon ((t, t+1, n), unique
   signatures).  The paper allows either a trusted dealer or a distributed
   key generation protocol; the dealer is implemented here, the DKG being
   outside the paper's scope. *)

type system = {
  n : int;
  t : int; (* maximum number of corrupt parties; t < n/3 *)
  auth_pub : Schnorr.public_key array; (* index 0 = party 1 *)
  notary : Multisig.params;
  final : Multisig.params;
  beacon : Threshold_vuf.params;
}

type party_keys = {
  index : int; (* 1-based *)
  auth : Schnorr.secret_key;
  notary_key : Multisig.secret;
  final_key : Multisig.secret;
  beacon_key : Threshold_vuf.secret_share;
}

let max_corrupt ~n = (n - 1) / 3

let generate ~n ~t rand_bits =
  if not (n >= 1 && t >= 0 && 3 * t < n) then
    invalid_arg "Keygen.generate: need 3t < n";
  let auth_pairs = List.init n (fun _ -> Schnorr.keygen rand_bits) in
  let notary, notary_secrets = Multisig.setup ~threshold_h:(n - t) ~n rand_bits in
  let final, final_secrets = Multisig.setup ~threshold_h:(n - t) ~n rand_bits in
  let beacon, beacon_secrets = Threshold_vuf.setup ~threshold_t:t ~n rand_bits in
  let system =
    {
      n;
      t;
      auth_pub = Array.of_list (List.map snd auth_pairs);
      notary;
      final;
      beacon;
    }
  in
  let keys =
    List.init n (fun i ->
        {
          index = i + 1;
          auth = fst (List.nth auth_pairs i);
          notary_key = List.nth notary_secrets i;
          final_key = List.nth final_secrets i;
          beacon_key = List.nth beacon_secrets i;
        })
  in
  (system, keys)
