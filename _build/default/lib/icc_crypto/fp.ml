(* Modular arithmetic on native ints for odd moduli below 2^61.

   All values are canonical representatives in [0, m).  Since m < 2^61 and
   OCaml's native int has 63 bits, [a + b] for canonical a, b never wraps,
   so addition-based double-and-add multiplication is exact. *)

let max_modulus_bits = 61

let check_modulus m =
  if m < 3 || m land 1 = 0 || m >= 1 lsl max_modulus_bits then
    invalid_arg "Fp.check_modulus: modulus must be odd, in [3, 2^61)"

let reduce a m =
  let r = a mod m in
  if r < 0 then r + m else r

let add a b m =
  let s = a + b in
  if s >= m then s - m else s

let sub a b m =
  let d = a - b in
  if d < 0 then d + m else d

let neg a m = if a = 0 then 0 else m - a

(* Double-and-add product; O(log b) additions, exact for any m < 2^61. *)
let mul a b m =
  let rec go acc a b =
    if b = 0 then acc
    else
      let acc = if b land 1 = 1 then add acc a m else acc in
      go acc (add a a m) (b lsr 1)
  in
  if a = 0 || b = 0 then 0 else go 0 a b

let pow base e m =
  if e < 0 then invalid_arg "Fp.pow: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc base m else acc in
      go acc (mul base base m) (e lsr 1)
  in
  go 1 (reduce base m) e

(* Extended Euclid; returns x with a*x = gcd(a,m) (mod m). *)
let inv a m =
  let rec go r0 r1 s0 s1 =
    if r1 = 0 then (r0, s0)
    else
      let q = r0 / r1 in
      go r1 (r0 - (q * r1)) s1 (s0 - (q * s1))
  in
  let a = reduce a m in
  if a = 0 then invalid_arg "Fp.inv: zero has no inverse";
  let g, x = go m a 0 1 in
  if g <> 1 then invalid_arg "Fp.inv: element not invertible";
  reduce x m

let divide a b m = mul a (inv b m) m
