lib/icc_gossip/gossip.ml: Array Hashtbl Icc_core Icc_crypto Icc_sim List Printf
