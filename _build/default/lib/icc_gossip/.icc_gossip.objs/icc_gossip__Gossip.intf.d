lib/icc_gossip/gossip.mli: Icc_core Icc_sim
