lib/icc_gossip/icc1.ml: Gossip Icc_core
