lib/icc_gossip/icc1.mli: Icc_core
