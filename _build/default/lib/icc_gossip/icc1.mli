(** Protocol ICC1: the ICC0 round logic running over the peer-to-peer
    gossip sub-layer of {!Gossip}.  Blocks spread by advert/request over
    the peer graph, trading one-hop latency for a bounded per-node
    dissemination cost (the leader-bottleneck relief of paper §1). *)

val default_fanout : int

val transport : ?fanout:int -> unit -> Icc_core.Runner.transport

val run :
  ?fanout:int -> Icc_core.Runner.scenario -> Icc_core.Runner.result
(** Run an ICC0 scenario with gossip dissemination.  The scenario's
    [delta_bnd] should account for multi-hop delivery. *)
