(* Tendermint baseline tests. *)

let base ?(n = 4) ?(seed = 83) () =
  {
    (Icc_baselines.Harness.default_scenario ~n ~seed) with
    Icc_baselines.Harness.duration = 30.;
    delay = Icc_core.Runner.Fixed_delay 0.05;
    timeout = 0.5;
  }

let test_happy_path () =
  let r = Icc_baselines.Tendermint.run (base ()) in
  Alcotest.(check bool) "safety" true r.Icc_baselines.Harness.safety_ok;
  (* height duration ~ 3 delta + timeout = 0.65 s -> ~46 heights *)
  Alcotest.(check bool)
    (Printf.sprintf "throughput (%d)" r.Icc_baselines.Harness.blocks_committed)
    true
    (r.Icc_baselines.Harness.blocks_committed > 35
    && r.Icc_baselines.Harness.blocks_committed < 60);
  (* decision latency is still ~3 delta *)
  Alcotest.(check bool)
    (Printf.sprintf "latency ~3 delta (%.3f)" r.Icc_baselines.Harness.mean_latency)
    true
    (r.Icc_baselines.Harness.mean_latency > 0.13
    && r.Icc_baselines.Harness.mean_latency < 0.18)

let test_not_optimistically_responsive () =
  (* a 5x faster network barely changes the block rate: height pacing is
     timeout-governed.  Contrast: ICC0's rate scales with the network. *)
  let slow = Icc_baselines.Tendermint.run (base ()) in
  let fast =
    Icc_baselines.Tendermint.run
      { (base ()) with Icc_baselines.Harness.delay = Icc_core.Runner.Fixed_delay 0.01 }
  in
  let ratio =
    float_of_int fast.Icc_baselines.Harness.blocks_committed
    /. float_of_int slow.Icc_baselines.Harness.blocks_committed
  in
  Alcotest.(check bool)
    (Printf.sprintf "rate ratio %.2f < 1.5 despite 5x network" ratio)
    true (ratio < 1.5);
  (* ICC0 on the same two networks speeds up by ~4-5x *)
  let icc delta =
    Icc_core.Runner.run
      {
        (Icc_core.Runner.default_scenario ~n:4 ~seed:83) with
        Icc_core.Runner.duration = 30.;
        delay = Icc_core.Runner.Fixed_delay delta;
        epsilon = 1e-3;
        delta_bnd = 0.5;
      }
  in
  let icc_ratio =
    float_of_int (icc 0.01).Icc_core.Runner.rounds_decided
    /. float_of_int (icc 0.05).Icc_core.Runner.rounds_decided
  in
  Alcotest.(check bool)
    (Printf.sprintf "icc0 ratio %.2f > 3" icc_ratio)
    true (icc_ratio > 3.)

let test_crashed_proposer_rounds () =
  let r = Icc_baselines.Tendermint.run { (base ()) with crashed = [ 2 ] } in
  Alcotest.(check bool) "safety" true r.Icc_baselines.Harness.safety_ok;
  let fault_free = Icc_baselines.Tendermint.run (base ()) in
  Alcotest.(check bool)
    (Printf.sprintf "degraded (%d < %d)" r.Icc_baselines.Harness.blocks_committed
       fault_free.Icc_baselines.Harness.blocks_committed)
    true
    (r.Icc_baselines.Harness.blocks_committed > 10
    && r.Icc_baselines.Harness.blocks_committed
       < fault_free.Icc_baselines.Harness.blocks_committed)

let test_two_crashes_at_n7 () =
  let r =
    Icc_baselines.Tendermint.run { (base ~n:7 ()) with crashed = [ 2; 5 ] }
  in
  Alcotest.(check bool) "safety" true r.Icc_baselines.Harness.safety_ok;
  Alcotest.(check bool) "liveness" true
    (r.Icc_baselines.Harness.blocks_committed > 10)

let test_determinism () =
  let a = Icc_baselines.Tendermint.run (base ()) in
  let b = Icc_baselines.Tendermint.run (base ()) in
  Alcotest.(check int) "same heights" a.Icc_baselines.Harness.blocks_committed
    b.Icc_baselines.Harness.blocks_committed

let suite =
  [
    Alcotest.test_case "happy path" `Quick test_happy_path;
    Alcotest.test_case "not responsive" `Quick test_not_optimistically_responsive;
    Alcotest.test_case "crashed proposer" `Quick test_crashed_proposer_rounds;
    Alcotest.test_case "two crashes n=7" `Quick test_two_crashes_at_n7;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
