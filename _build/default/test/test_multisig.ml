(* Multisignature ((t, h, n)-threshold) tests for S_notary / S_final. *)

let rng = Icc_sim.Rng.create 0x0517
let rand_bits () = Icc_sim.Rng.bits61 rng

let take k l = List.filteri (fun i _ -> i < k) l

let setup ?(h = 5) ?(n = 7) () = Icc_crypto.Multisig.setup ~threshold_h:h ~n rand_bits

let test_share_verify () =
  let params, secrets = setup () in
  List.iter
    (fun sk ->
      let s = Icc_crypto.Multisig.sign_share params sk "m" in
      Alcotest.(check bool) "valid" true
        (Icc_crypto.Multisig.verify_share params "m" s))
    secrets

let test_combine_at_threshold () =
  let params, secrets = setup () in
  let shares =
    List.map (fun sk -> Icc_crypto.Multisig.sign_share params sk "m") secrets
  in
  (match Icc_crypto.Multisig.combine params "m" (take 5 shares) with
  | None -> Alcotest.fail "combine at threshold failed"
  | Some s ->
      Alcotest.(check bool) "verifies" true (Icc_crypto.Multisig.verify params "m" s);
      Alcotest.(check int) "5 signers" 5 (List.length s.Icc_crypto.Multisig.signers));
  Alcotest.(check bool) "below threshold" true
    (Icc_crypto.Multisig.combine params "m" (take 4 shares) = None)

let test_duplicates_not_counted () =
  let params, secrets = setup ~h:3 ~n:4 () in
  let s1 = Icc_crypto.Multisig.sign_share params (List.hd secrets) "m" in
  Alcotest.(check bool) "3 copies of one share != 3 shares" true
    (Icc_crypto.Multisig.combine params "m" [ s1; s1; s1 ] = None)

let test_invalid_share_filtered () =
  let params, secrets = setup ~h:3 ~n:4 () in
  let shares =
    List.map (fun sk -> Icc_crypto.Multisig.sign_share params sk "m") secrets
  in
  let forged =
    match shares with
    | a :: b :: _ -> { a with Icc_crypto.Multisig.signer = b.Icc_crypto.Multisig.signer }
    | _ -> assert false
  in
  (* forged share (signature under wrong index) is filtered out *)
  (match Icc_crypto.Multisig.combine params "m" (forged :: take 3 shares) with
  | None -> Alcotest.fail "should still combine from the 3 good shares"
  | Some s ->
      Alcotest.(check bool) "verifies" true (Icc_crypto.Multisig.verify params "m" s))

let test_verify_rejects_subthreshold_object () =
  let params, secrets = setup ~h:3 ~n:4 () in
  let shares =
    List.map (fun sk -> Icc_crypto.Multisig.sign_share params sk "m") secrets
  in
  match Icc_crypto.Multisig.combine params "m" shares with
  | None -> Alcotest.fail "combine"
  | Some s ->
      let stripped =
        {
          Icc_crypto.Multisig.signers = take 2 s.Icc_crypto.Multisig.signers;
          signatures = take 2 s.Icc_crypto.Multisig.signatures;
        }
      in
      Alcotest.(check bool) "stripped rejected" false
        (Icc_crypto.Multisig.verify params "m" stripped)

let test_cross_message_rejected () =
  let params, secrets = setup ~h:2 ~n:3 () in
  let shares =
    List.map (fun sk -> Icc_crypto.Multisig.sign_share params sk "m1") secrets
  in
  match Icc_crypto.Multisig.combine params "m1" shares with
  | None -> Alcotest.fail "combine"
  | Some s ->
      Alcotest.(check bool) "cross-message" false
        (Icc_crypto.Multisig.verify params "m2" s)

let prop_combine_any_h_subset =
  QCheck.Test.make ~name:"multisig any h-subset combines" ~count:30
    (QCheck.pair (QCheck.int_range 1 4) QCheck.small_string) (fun (t, msg) ->
      let n = (3 * t) + 1 in
      let h = n - t in
      let params, secrets = Icc_crypto.Multisig.setup ~threshold_h:h ~n rand_bits in
      let shares =
        Array.of_list
          (List.map (fun sk -> Icc_crypto.Multisig.sign_share params sk msg) secrets)
      in
      Icc_sim.Rng.shuffle_in_place rng shares;
      match
        Icc_crypto.Multisig.combine params msg (Array.to_list (Array.sub shares 0 h))
      with
      | Some s -> Icc_crypto.Multisig.verify params msg s
      | None -> false)

let suite =
  [
    Alcotest.test_case "share verify" `Quick test_share_verify;
    Alcotest.test_case "combine threshold" `Quick test_combine_at_threshold;
    Alcotest.test_case "duplicates" `Quick test_duplicates_not_counted;
    Alcotest.test_case "invalid filtered" `Quick test_invalid_share_filtered;
    Alcotest.test_case "subthreshold rejected" `Quick
      test_verify_rejects_subthreshold_object;
    Alcotest.test_case "cross-message" `Quick test_cross_message_rejected;
    QCheck_alcotest.to_alcotest prop_combine_any_h_subset;
  ]
