(* Merkle tree tests. *)

let leaves n = List.init n (fun i -> Printf.sprintf "fragment-%d" i)

let test_prove_verify_all_sizes () =
  List.iter
    (fun n ->
      let ls = leaves n in
      let root = Icc_crypto.Merkle.root_of_leaves ls in
      List.iteri
        (fun i leaf ->
          let proof = Icc_crypto.Merkle.prove ls i in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d i=%d" n i)
            true
            (Icc_crypto.Merkle.verify ~root ~leaf proof))
        ls)
    [ 1; 2; 3; 4; 5; 7; 8; 13; 16; 31 ]

let test_wrong_leaf_rejected () =
  let ls = leaves 8 in
  let root = Icc_crypto.Merkle.root_of_leaves ls in
  let proof = Icc_crypto.Merkle.prove ls 3 in
  Alcotest.(check bool) "wrong leaf" false
    (Icc_crypto.Merkle.verify ~root ~leaf:"fragment-4" proof)

let test_wrong_position_rejected () =
  let ls = leaves 8 in
  let root = Icc_crypto.Merkle.root_of_leaves ls in
  let proof = Icc_crypto.Merkle.prove ls 3 in
  (* leaf 2's content with leaf 3's proof must fail *)
  Alcotest.(check bool) "wrong position" false
    (Icc_crypto.Merkle.verify ~root ~leaf:"fragment-2" proof)

let test_distinct_roots () =
  let r1 = Icc_crypto.Merkle.root_of_leaves (leaves 4) in
  let r2 = Icc_crypto.Merkle.root_of_leaves ("x" :: leaves 3) in
  Alcotest.(check bool) "distinct" false (Icc_crypto.Sha256.equal r1 r2)

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Merkle.root_of_leaves: empty")
    (fun () -> ignore (Icc_crypto.Merkle.root_of_leaves []))

let test_out_of_range () =
  Alcotest.check_raises "range" (Invalid_argument "Merkle.prove: index out of range")
    (fun () -> ignore (Icc_crypto.Merkle.prove (leaves 3) 3))

let prop_roundtrip =
  QCheck.Test.make ~name:"merkle roundtrip" ~count:60
    (QCheck.pair (QCheck.int_range 1 40) QCheck.small_string) (fun (n, salt) ->
      let ls = List.init n (fun i -> Printf.sprintf "%s-%d" salt i) in
      let root = Icc_crypto.Merkle.root_of_leaves ls in
      List.for_all
        (fun i ->
          Icc_crypto.Merkle.verify ~root ~leaf:(List.nth ls i)
            (Icc_crypto.Merkle.prove ls i))
        (List.init n Fun.id))

let suite =
  [
    Alcotest.test_case "prove/verify sizes" `Quick test_prove_verify_all_sizes;
    Alcotest.test_case "wrong leaf" `Quick test_wrong_leaf_rejected;
    Alcotest.test_case "wrong position" `Quick test_wrong_position_rejected;
    Alcotest.test_case "distinct roots" `Quick test_distinct_roots;
    Alcotest.test_case "empty" `Quick test_empty_rejected;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
