(* Property tests on the pool's promotion cascade.

   The key invariant: classification is a function of the *set* of admitted
   messages, not of their arrival order — the paper's pool semantics (§3.1)
   are declarative, and the event-driven implementation must converge to
   the same fixpoint under any interleaving. *)

let kit = Kit.make ~n:4 ~t:1 ()

(* Build a three-deep certified chain plus an orphan fork, then emit the
   admission steps as first-class operations that can be shuffled. *)
type op = Op of string * (Icc_core.Pool.t -> bool)

let chain_ops () =
  let b1 = Kit.block ~round:1 ~proposer:1 ~parent:None () in
  let b2 = Kit.block ~round:2 ~proposer:2 ~parent:(Some b1) () in
  let b3 = Kit.block ~round:3 ~proposer:3 ~parent:(Some b2) () in
  let fork2 =
    Kit.block
      ~payload:{ Icc_core.Types.commands = []; filler_size = 1 }
      ~round:2 ~proposer:4 ~parent:(Some b1) ()
  in
  let block_ops b =
    [
      Op ( "block", fun pool -> Icc_core.Pool.add_block pool b );
      Op
        ( "auth",
          fun pool ->
            Icc_core.Pool.add_authenticator pool ~round:b.Icc_core.Block.round
              ~proposer:b.Icc_core.Block.proposer
              ~block_hash:(Icc_core.Block.hash b)
              (Kit.authenticator kit b) );
      Op
        ( "cert",
          fun pool ->
            Icc_core.Pool.add_notarization pool
              (Kit.notarization kit b [ 1; 2; 3 ]) );
      Op
        ( "share",
          fun pool ->
            Icc_core.Pool.add_notarization_share pool
              (Kit.notarization_share kit ~signer:4 b) );
    ]
  in
  let final_ops b =
    [
      Op
        ( "final",
          fun pool ->
            Icc_core.Pool.add_finalization pool
              (Kit.finalization kit b [ 1; 2; 4 ]) );
    ]
  in
  ( (b1, b2, b3, fork2),
    block_ops b1 @ block_ops b2 @ block_ops b3 @ block_ops fork2
    @ final_ops b2 )

let classification pool blocks =
  List.map
    (fun b ->
      let key = (b.Icc_core.Block.round, Icc_core.Block.hash b) in
      ( Icc_core.Pool.is_valid pool key,
        Icc_core.Pool.is_notarized pool key,
        Icc_core.Pool.is_finalized pool key,
        Icc_core.Pool.notar_share_count pool key ))
    blocks

let prop_order_invariance =
  QCheck.Test.make ~name:"pool classification is admission-order invariant"
    ~count:60 QCheck.int (fun seed ->
      let (b1, b2, b3, fork2), ops = chain_ops () in
      let blocks = [ b1; b2; b3; fork2 ] in
      (* reference: in-order admission *)
      let reference =
        let pool = Icc_core.Pool.create kit.Kit.system in
        List.iter (fun (Op (_, f)) -> ignore (f pool)) ops;
        classification pool blocks
      in
      (* shuffled admission *)
      let rng = Icc_sim.Rng.create seed in
      let arr = Array.of_list ops in
      Icc_sim.Rng.shuffle_in_place rng arr;
      let pool = Icc_core.Pool.create kit.Kit.system in
      Array.iter (fun (Op (_, f)) -> ignore (f pool)) arr;
      classification pool blocks = reference)

let prop_duplicates_are_noops =
  QCheck.Test.make ~name:"pool duplicate admission changes nothing" ~count:30
    QCheck.int (fun seed ->
      let (b1, b2, b3, fork2), ops = chain_ops () in
      let blocks = [ b1; b2; b3; fork2 ] in
      let rng = Icc_sim.Rng.create seed in
      let pool = Icc_core.Pool.create kit.Kit.system in
      List.iter (fun (Op (_, f)) -> ignore (f pool)) ops;
      let before = classification pool blocks in
      (* re-admit a random half again *)
      List.iter
        (fun (Op (_, f)) -> if Icc_sim.Rng.bool rng then ignore (f pool))
        ops;
      classification pool blocks = before)

let prop_monotone =
  QCheck.Test.make ~name:"pool classification is monotone" ~count:30
    QCheck.int (fun seed ->
      let (b1, b2, b3, fork2), ops = chain_ops () in
      let blocks = [ b1; b2; b3; fork2 ] in
      let rng = Icc_sim.Rng.create seed in
      let arr = Array.of_list ops in
      Icc_sim.Rng.shuffle_in_place rng arr;
      let pool = Icc_core.Pool.create kit.Kit.system in
      let stages =
        Array.to_list
          (Array.map
             (fun (Op (_, f)) ->
               ignore (f pool);
               classification pool blocks)
             arr)
      in
      (* each classification bit only ever turns on *)
      let le a b =
        List.for_all2
          (fun (v1, n1, f1, s1) (v2, n2, f2, s2) ->
            (not v1 || v2) && (not n1 || n2) && (not f1 || f2) && s1 <= s2)
          a b
      in
      let rec pairs = function
        | a :: (b :: _ as rest) -> le a b && pairs rest
        | _ -> true
      in
      pairs stages)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_order_invariance;
    QCheck_alcotest.to_alcotest prop_duplicates_are_noops;
    QCheck_alcotest.to_alcotest prop_monotone;
  ]
