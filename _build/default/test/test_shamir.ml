(* Shamir secret sharing tests. *)

let rng = Icc_sim.Rng.create 0x5a5a
let rand_bits () = Icc_sim.Rng.bits61 rng

let take k l = List.filteri (fun i _ -> i < k) l

let test_reconstruct_exact_threshold () =
  let secret = 123456789 in
  let _, shares = Icc_crypto.Shamir.deal ~threshold_t:3 ~n:10 ~secret rand_bits in
  Alcotest.(check int) "t+1 shares" secret
    (Icc_crypto.Shamir.reconstruct (take 4 shares))

let test_reconstruct_any_subset () =
  let secret = 42 in
  let _, shares = Icc_crypto.Shamir.deal ~threshold_t:2 ~n:7 ~secret rand_bits in
  let arr = Array.of_list shares in
  (* every 3-subset of 7 shares reconstructs *)
  for a = 0 to 4 do
    for b = a + 1 to 5 do
      for c = b + 1 to 6 do
        Alcotest.(check int)
          (Printf.sprintf "subset %d %d %d" a b c)
          secret
          (Icc_crypto.Shamir.reconstruct [ arr.(a); arr.(b); arr.(c) ])
      done
    done
  done

let test_too_few_shares_wrong () =
  (* With t shares interpolation yields some value but (with overwhelming
     probability over the random polynomial) not the secret. *)
  let secret = 77 in
  let _, shares = Icc_crypto.Shamir.deal ~threshold_t:3 ~n:8 ~secret rand_bits in
  Alcotest.(check bool) "t shares don't determine" true
    (Icc_crypto.Shamir.reconstruct (take 3 shares) <> secret)

let test_duplicate_rejected () =
  let _, shares = Icc_crypto.Shamir.deal ~threshold_t:1 ~n:3 ~secret:5 rand_bits in
  match shares with
  | s :: _ ->
      Alcotest.check_raises "dup"
        (Invalid_argument "Shamir.reconstruct: duplicate share indices")
        (fun () -> ignore (Icc_crypto.Shamir.reconstruct [ s; s ]))
  | [] -> Alcotest.fail "no shares"

let test_bad_params () =
  Alcotest.check_raises "t >= n" (Invalid_argument "Shamir.deal: need 0 <= t < n")
    (fun () ->
      ignore (Icc_crypto.Shamir.deal ~threshold_t:3 ~n:3 ~secret:1 rand_bits))

let test_lagrange_partition_of_unity () =
  (* Sum of Lagrange coefficients at 0 equals 1 (interpolating the constant
     polynomial 1). *)
  let idxs = [ 1; 4; 6; 9 ] in
  let sum =
    List.fold_left
      (fun acc i ->
        Icc_crypto.Group.scalar_add acc
          (Icc_crypto.Shamir.lagrange_coeff_at_zero idxs i))
      0 idxs
  in
  Alcotest.(check int) "partition of unity" 1 sum

let prop_deal_reconstruct =
  QCheck.Test.make ~name:"shamir deal/reconstruct" ~count:50
    (QCheck.pair (QCheck.int_range 0 5) (QCheck.int_bound 1_000_000))
    (fun (t, secret) ->
      let n = (3 * t) + 1 + Icc_sim.Rng.int rng 3 in
      let _, shares = Icc_crypto.Shamir.deal ~threshold_t:t ~n ~secret rand_bits in
      (* random (t+1)-subset *)
      let arr = Array.of_list shares in
      Icc_sim.Rng.shuffle_in_place rng arr;
      let subset = Array.to_list (Array.sub arr 0 (t + 1)) in
      Icc_crypto.Shamir.reconstruct subset = secret mod Icc_crypto.Group.q)

let suite =
  [
    Alcotest.test_case "exact threshold" `Quick test_reconstruct_exact_threshold;
    Alcotest.test_case "any subset" `Quick test_reconstruct_any_subset;
    Alcotest.test_case "too few shares" `Quick test_too_few_shares_wrong;
    Alcotest.test_case "duplicates rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "bad params" `Quick test_bad_params;
    Alcotest.test_case "lagrange unity" `Quick test_lagrange_partition_of_unity;
    QCheck_alcotest.to_alcotest prop_deal_reconstruct;
  ]
