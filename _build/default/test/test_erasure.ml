(* GF(256), matrix and Reed–Solomon tests. *)

let rng = Icc_sim.Rng.create 0x8f

let test_gf_tables () =
  Alcotest.(check int) "1*1" 1 (Icc_erasure.Gf256.mul 1 1);
  Alcotest.(check int) "a*0" 0 (Icc_erasure.Gf256.mul 77 0);
  Alcotest.(check int) "2*2" 4 (Icc_erasure.Gf256.mul 2 2);
  (* AES reduction: 0x80 * 2 = 0x1b *)
  Alcotest.(check int) "0x80*2" 0x1b (Icc_erasure.Gf256.mul 0x80 2);
  Alcotest.(check int) "known product" 0xc1 (Icc_erasure.Gf256.mul 0x57 0x83)

let test_gf_inverses () =
  for a = 1 to 255 do
    Alcotest.(check int)
      (Printf.sprintf "inv %d" a)
      1
      (Icc_erasure.Gf256.mul a (Icc_erasure.Gf256.inv a))
  done

let prop_gf_field_axioms =
  QCheck.Test.make ~name:"gf256 field axioms" ~count:300
    (QCheck.triple (QCheck.int_bound 255) (QCheck.int_bound 255)
       (QCheck.int_bound 255)) (fun (a, b, c) ->
      let open Icc_erasure.Gf256 in
      mul a (mul b c) = mul (mul a b) c
      && mul a b = mul b a
      && mul a (add b c) = add (mul a b) (mul a c)
      && add (add a b) b = a)

let test_matrix_invert_roundtrip () =
  let points = [| 1; 2; 3; 4; 5 |] in
  let v = Icc_erasure.Matrix.vandermonde ~points ~cols:5 in
  let vi = Icc_erasure.Matrix.invert v in
  let prod = Icc_erasure.Matrix.mul v vi in
  let id = Icc_erasure.Matrix.identity 5 in
  Alcotest.(check bool) "V * V^-1 = I" true (prod = id)

let test_matrix_singular () =
  let m = [| [| 1; 2 |]; [| 1; 2 |] |] in
  Alcotest.check_raises "singular" Icc_erasure.Matrix.Singular (fun () ->
      ignore (Icc_erasure.Matrix.invert m))

let random_string len =
  String.init len (fun _ -> Char.chr (Icc_sim.Rng.int rng 256))

let test_rs_systematic_roundtrip () =
  let data = random_string 1000 in
  let coded = Icc_erasure.Reed_solomon.encode ~k:3 ~n:9 data in
  Alcotest.(check int) "9 fragments" 9
    (Array.length coded.Icc_erasure.Reed_solomon.fragments);
  (* systematic: fragments 0..k-1 concatenate back to the (padded) data *)
  let rebuilt =
    String.concat ""
      [
        coded.Icc_erasure.Reed_solomon.fragments.(0);
        coded.Icc_erasure.Reed_solomon.fragments.(1);
        coded.Icc_erasure.Reed_solomon.fragments.(2);
      ]
  in
  Alcotest.(check string) "systematic prefix" data (String.sub rebuilt 0 1000)

let test_rs_decode_any_subset () =
  let data = random_string 500 in
  let k = 3 and n = 7 in
  let coded = Icc_erasure.Reed_solomon.encode ~k ~n data in
  let frag i = (i, coded.Icc_erasure.Reed_solomon.fragments.(i)) in
  List.iter
    (fun idxs ->
      match
        Icc_erasure.Reed_solomon.decode ~k ~n ~data_size:500
          (List.map frag idxs)
      with
      | Some d ->
          Alcotest.(check string)
            (Printf.sprintf "subset %s"
               (String.concat "," (List.map string_of_int idxs)))
            data d
      | None -> Alcotest.fail "decode failed")
    [ [ 0; 1; 2 ]; [ 4; 5; 6 ]; [ 0; 3; 6 ]; [ 2; 4; 5 ]; [ 6; 1; 3 ] ]

let test_rs_too_few_fragments () =
  let data = random_string 100 in
  let coded = Icc_erasure.Reed_solomon.encode ~k:3 ~n:5 data in
  let frag i = (i, coded.Icc_erasure.Reed_solomon.fragments.(i)) in
  Alcotest.(check bool) "2 < k" true
    (Icc_erasure.Reed_solomon.decode ~k:3 ~n:5 ~data_size:100 [ frag 0; frag 4 ]
    = None)

let test_rs_duplicate_fragments_dont_count () =
  let data = random_string 100 in
  let coded = Icc_erasure.Reed_solomon.encode ~k:3 ~n:5 data in
  let frag i = (i, coded.Icc_erasure.Reed_solomon.fragments.(i)) in
  Alcotest.(check bool) "dups filtered" true
    (Icc_erasure.Reed_solomon.decode ~k:3 ~n:5 ~data_size:100
       [ frag 0; frag 0; frag 0; frag 1 ]
    = None)

let test_rs_reencode_check () =
  let data = random_string 300 in
  let coded = Icc_erasure.Reed_solomon.encode ~k:2 ~n:6 data in
  let frag i = (i, coded.Icc_erasure.Reed_solomon.fragments.(i)) in
  Alcotest.(check bool) "consistent" true
    (Icc_erasure.Reed_solomon.reencode_matches ~k:2 ~n:6 ~data
       [ frag 0; frag 3; frag 5 ]);
  let corrupted = (3, String.map (fun c -> Char.chr (Char.code c lxor 1))
                       coded.Icc_erasure.Reed_solomon.fragments.(3)) in
  Alcotest.(check bool) "corruption detected" false
    (Icc_erasure.Reed_solomon.reencode_matches ~k:2 ~n:6 ~data
       [ frag 0; corrupted ])

let prop_rs_roundtrip =
  QCheck.Test.make ~name:"reed-solomon roundtrip" ~count:40
    (QCheck.pair (QCheck.int_range 1 5) (QCheck.int_range 0 400))
    (fun (t, len) ->
      let k = t + 1 and n = (3 * t) + 1 in
      let data = random_string len in
      let coded = Icc_erasure.Reed_solomon.encode ~k ~n data in
      (* drop t random fragments, decode from the rest *)
      let all = Array.to_list (Array.mapi (fun i f -> (i, f)) coded.Icc_erasure.Reed_solomon.fragments) in
      let arr = Array.of_list all in
      Icc_sim.Rng.shuffle_in_place rng arr;
      let kept = Array.to_list (Array.sub arr 0 (n - t)) in
      match Icc_erasure.Reed_solomon.decode ~k ~n ~data_size:len kept with
      | Some d -> String.equal d data
      | None -> false)

let test_rs_bad_params () =
  Alcotest.check_raises "k > n"
    (Invalid_argument "Reed_solomon.encode: need 1 <= k <= n <= 255")
    (fun () -> ignore (Icc_erasure.Reed_solomon.encode ~k:5 ~n:4 "x"))

let suite =
  [
    Alcotest.test_case "gf tables" `Quick test_gf_tables;
    Alcotest.test_case "gf inverses" `Quick test_gf_inverses;
    QCheck_alcotest.to_alcotest prop_gf_field_axioms;
    Alcotest.test_case "matrix invert" `Quick test_matrix_invert_roundtrip;
    Alcotest.test_case "matrix singular" `Quick test_matrix_singular;
    Alcotest.test_case "rs systematic" `Quick test_rs_systematic_roundtrip;
    Alcotest.test_case "rs any subset" `Quick test_rs_decode_any_subset;
    Alcotest.test_case "rs too few" `Quick test_rs_too_few_fragments;
    Alcotest.test_case "rs duplicates" `Quick test_rs_duplicate_fragments_dont_count;
    Alcotest.test_case "rs reencode check" `Quick test_rs_reencode_check;
    QCheck_alcotest.to_alcotest prop_rs_roundtrip;
    Alcotest.test_case "rs bad params" `Quick test_rs_bad_params;
  ]
