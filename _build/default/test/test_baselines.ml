(* PBFT and chained-HotStuff baseline tests. *)

let base ?(n = 4) ?(seed = 61) () =
  {
    (Icc_baselines.Harness.default_scenario ~n ~seed) with
    Icc_baselines.Harness.duration = 20.;
    delay = Icc_core.Runner.Fixed_delay 0.05;
    timeout = 1.0;
  }

let test_pbft_happy_path () =
  let r = Icc_baselines.Pbft.run (base ()) in
  Alcotest.(check bool) "safety" true r.Icc_baselines.Harness.safety_ok;
  (* window 1: one batch per 3 delta = 0.15 s -> ~133 in 20 s *)
  Alcotest.(check bool)
    (Printf.sprintf "throughput (%d)" r.Icc_baselines.Harness.blocks_committed)
    true
    (r.Icc_baselines.Harness.blocks_committed > 100);
  Alcotest.(check bool)
    (Printf.sprintf "latency ~3 delta (%.3f)" r.Icc_baselines.Harness.mean_latency)
    true
    (r.Icc_baselines.Harness.mean_latency > 0.14
    && r.Icc_baselines.Harness.mean_latency < 0.17)

let test_pbft_pipelining () =
  let r1 = Icc_baselines.Pbft.run (base ()) in
  let r4 =
    Icc_baselines.Pbft.run { (base ()) with pipeline_window = 4 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "window 4 faster (%d vs %d)"
       r4.Icc_baselines.Harness.blocks_committed
       r1.Icc_baselines.Harness.blocks_committed)
    true
    (r4.Icc_baselines.Harness.blocks_committed
    > 2 * r1.Icc_baselines.Harness.blocks_committed);
  Alcotest.(check bool) "safety" true r4.Icc_baselines.Harness.safety_ok

let test_pbft_view_change_on_leader_crash () =
  let r = Icc_baselines.Pbft.run { (base ()) with kill_at = [ (1, 8.) ] } in
  Alcotest.(check bool) "safety across view change" true
    r.Icc_baselines.Harness.safety_ok;
  (* must make progress both before the crash and after the view change *)
  Alcotest.(check bool)
    (Printf.sprintf "progress (%d)" r.Icc_baselines.Harness.blocks_committed)
    true
    (r.Icc_baselines.Harness.blocks_committed > 60)

let test_pbft_backup_crashes_harmless () =
  let r = Icc_baselines.Pbft.run { (base ~n:7 ()) with crashed = [ 3; 6 ] } in
  Alcotest.(check bool) "safety" true r.Icc_baselines.Harness.safety_ok;
  Alcotest.(check bool) "throughput unaffected" true
    (r.Icc_baselines.Harness.blocks_committed > 100)

let test_hotstuff_happy_path () =
  let r = Icc_baselines.Hotstuff.run (base ()) in
  Alcotest.(check bool) "safety" true r.Icc_baselines.Harness.safety_ok;
  (* one block per view = 2 delta = 0.1 s -> ~190 in 20 s *)
  Alcotest.(check bool)
    (Printf.sprintf "throughput (%d)" r.Icc_baselines.Harness.blocks_committed)
    true
    (r.Icc_baselines.Harness.blocks_committed > 150);
  (* chained three-phase commit: ~6-7 delta *)
  Alcotest.(check bool)
    (Printf.sprintf "latency ~6-7 delta (%.3f)"
       r.Icc_baselines.Harness.mean_latency)
    true
    (r.Icc_baselines.Harness.mean_latency > 0.28
    && r.Icc_baselines.Harness.mean_latency < 0.40)

let test_hotstuff_crash_degrades () =
  (* a crashed replica in the rotation costs a pacemaker timeout per cycle;
     n = 7 keeps alive-leader runs long enough to commit *)
  let r = Icc_baselines.Hotstuff.run { (base ~n:7 ()) with crashed = [ 2 ] } in
  Alcotest.(check bool) "safety" true r.Icc_baselines.Harness.safety_ok;
  Alcotest.(check bool)
    (Printf.sprintf "degraded progress (%d)"
       r.Icc_baselines.Harness.blocks_committed)
    true
    (r.Icc_baselines.Harness.blocks_committed > 20);
  let honest = Icc_baselines.Hotstuff.run (base ~n:7 ()) in
  Alcotest.(check bool) "clearly below fault-free" true
    (r.Icc_baselines.Harness.blocks_committed
    < honest.Icc_baselines.Harness.blocks_committed / 2)

let test_hotstuff_rotation_pathology_n4 () =
  (* a known chained-HotStuff weakness this implementation reproduces (and
     the paper's §1.1 alludes to): with n = 4 round-robin rotation and one
     crashed replica, alive-leader runs are only 3 views long, but a commit
     needs a three-chain plus its carrier — 4 consecutive views — so nothing
     ever commits.  ICC0 under the same fault keeps committing. *)
  let hs = Icc_baselines.Hotstuff.run { (base ~n:4 ()) with crashed = [ 2 ] } in
  Alcotest.(check int) "hotstuff n=4 one crash: no commits" 0
    hs.Icc_baselines.Harness.blocks_committed;
  let icc =
    Icc_core.Runner.run
      {
        (Icc_core.Runner.default_scenario ~n:4 ~seed:61) with
        Icc_core.Runner.duration = 20.;
        delay = Icc_core.Runner.Fixed_delay 0.05;
        epsilon = 0.2;
        delta_bnd = 0.3;
        behaviors = [ (2, Icc_core.Party.crashed) ];
      }
  in
  Alcotest.(check bool) "icc0 same fault keeps committing" true
    (icc.Icc_core.Runner.rounds_decided > 30)

let test_wan_both () =
  let wan =
    { (base ~n:7 ()) with
      Icc_baselines.Harness.delay =
        Icc_core.Runner.Wan { rtt_lo = 0.006; rtt_hi = 0.110 } }
  in
  let p = Icc_baselines.Pbft.run wan in
  let h = Icc_baselines.Hotstuff.run wan in
  Alcotest.(check bool) "pbft wan safety" true p.Icc_baselines.Harness.safety_ok;
  Alcotest.(check bool) "pbft wan progress" true
    (p.Icc_baselines.Harness.blocks_committed > 20);
  Alcotest.(check bool) "hotstuff wan safety" true h.Icc_baselines.Harness.safety_ok;
  Alcotest.(check bool) "hotstuff wan progress" true
    (h.Icc_baselines.Harness.blocks_committed > 20)

let test_determinism () =
  let a = Icc_baselines.Pbft.run (base ~seed:5 ())
  and b = Icc_baselines.Pbft.run (base ~seed:5 ()) in
  Alcotest.(check int) "pbft deterministic" a.Icc_baselines.Harness.blocks_committed
    b.Icc_baselines.Harness.blocks_committed;
  let c = Icc_baselines.Hotstuff.run (base ~seed:5 ())
  and d = Icc_baselines.Hotstuff.run (base ~seed:5 ()) in
  Alcotest.(check int) "hotstuff deterministic"
    c.Icc_baselines.Harness.blocks_committed
    d.Icc_baselines.Harness.blocks_committed

let suite =
  [
    Alcotest.test_case "pbft happy path" `Quick test_pbft_happy_path;
    Alcotest.test_case "pbft pipelining" `Quick test_pbft_pipelining;
    Alcotest.test_case "pbft view change" `Quick test_pbft_view_change_on_leader_crash;
    Alcotest.test_case "pbft backup crashes" `Quick test_pbft_backup_crashes_harmless;
    Alcotest.test_case "hotstuff happy path" `Quick test_hotstuff_happy_path;
    Alcotest.test_case "hotstuff crash degrades" `Quick test_hotstuff_crash_degrades;
    Alcotest.test_case "hotstuff n=4 pathology" `Quick
      test_hotstuff_rotation_pathology_n4;
    Alcotest.test_case "wan both" `Quick test_wan_both;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
