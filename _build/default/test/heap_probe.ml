(* Small helper exposing heap behaviour to the test suite. *)

let make entries =
  let h = Icc_sim.Heap.create () in
  List.iteri
    (fun seq (time, payload) -> Icc_sim.Heap.push h ~time ~seq payload)
    entries;
  h

let drain h =
  let rec go acc =
    match Icc_sim.Heap.pop h with
    | None -> List.rev acc
    | Some e -> go (e.Icc_sim.Heap.payload :: acc)
  in
  go []
