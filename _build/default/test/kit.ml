(* Test kit: a small key-complete deployment plus helpers for crafting
   correctly signed protocol messages outside a running simulation. *)

let rng = Icc_sim.Rng.create 0x717
let rand_bits () = Icc_sim.Rng.bits61 rng

type t = {
  system : Icc_crypto.Keygen.system;
  keys : Icc_crypto.Keygen.party_keys array; (* index 0 = party 1 *)
}

let make ?(n = 4) ?(t = 1) () =
  let system, keys = Icc_crypto.Keygen.generate ~n ~t rand_bits in
  { system; keys = Array.of_list keys }

let key kit i = kit.keys.(i - 1)

let block ?(payload = Icc_core.Types.empty_payload) ~round ~proposer ~parent ()
    =
  let parent_hash =
    match parent with
    | Some b -> Icc_core.Block.hash b
    | None -> Icc_core.Block.root_hash
  in
  Icc_core.Block.create ~round ~proposer ~parent_hash ~payload

let authenticator kit (b : Icc_core.Block.t) =
  Icc_crypto.Schnorr.sign
    (key kit b.Icc_core.Block.proposer).Icc_crypto.Keygen.auth
    (Icc_core.Types.authenticator_text ~round:b.Icc_core.Block.round
       ~proposer:b.Icc_core.Block.proposer
       ~block_hash:(Icc_core.Block.hash b))

let notarization_share kit ~signer (b : Icc_core.Block.t) =
  let block_hash = Icc_core.Block.hash b in
  {
    Icc_core.Types.s_round = b.Icc_core.Block.round;
    s_proposer = b.Icc_core.Block.proposer;
    s_block_hash = block_hash;
    s_share =
      Icc_crypto.Multisig.sign_share kit.system.Icc_crypto.Keygen.notary
        (key kit signer).Icc_crypto.Keygen.notary_key
        (Icc_core.Types.notarization_text ~round:b.Icc_core.Block.round
           ~proposer:b.Icc_core.Block.proposer ~block_hash);
  }

let finalization_share kit ~signer (b : Icc_core.Block.t) =
  let block_hash = Icc_core.Block.hash b in
  {
    Icc_core.Types.s_round = b.Icc_core.Block.round;
    s_proposer = b.Icc_core.Block.proposer;
    s_block_hash = block_hash;
    s_share =
      Icc_crypto.Multisig.sign_share kit.system.Icc_crypto.Keygen.final
        (key kit signer).Icc_crypto.Keygen.final_key
        (Icc_core.Types.finalization_text ~round:b.Icc_core.Block.round
           ~proposer:b.Icc_core.Block.proposer ~block_hash);
  }

let cert_of_shares kit ~kind (b : Icc_core.Block.t) signers =
  let block_hash = Icc_core.Block.hash b in
  let text, params, get_key =
    match kind with
    | `Notarization ->
        ( Icc_core.Types.notarization_text ~round:b.Icc_core.Block.round
            ~proposer:b.Icc_core.Block.proposer ~block_hash,
          kit.system.Icc_crypto.Keygen.notary,
          fun i -> (key kit i).Icc_crypto.Keygen.notary_key )
    | `Finalization ->
        ( Icc_core.Types.finalization_text ~round:b.Icc_core.Block.round
            ~proposer:b.Icc_core.Block.proposer ~block_hash,
          kit.system.Icc_crypto.Keygen.final,
          fun i -> (key kit i).Icc_crypto.Keygen.final_key )
  in
  let shares =
    List.map (fun i -> Icc_crypto.Multisig.sign_share params (get_key i) text)
      signers
  in
  match Icc_crypto.Multisig.combine params text shares with
  | Some multisig ->
      {
        Icc_core.Types.c_round = b.Icc_core.Block.round;
        c_proposer = b.Icc_core.Block.proposer;
        c_block_hash = block_hash;
        c_multisig = multisig;
      }
  | None -> failwith "Kit.cert_of_shares: combine failed"

let notarization kit b signers = cert_of_shares kit ~kind:`Notarization b signers
let finalization kit b signers = cert_of_shares kit ~kind:`Finalization b signers

(* Insert a fully certified block into a pool: block + authenticator +
   notarization by the first n-t parties. *)
let admit_notarized kit pool (b : Icc_core.Block.t) =
  let n = kit.system.Icc_crypto.Keygen.n
  and t = kit.system.Icc_crypto.Keygen.t in
  let signers = List.init (n - t) (fun i -> i + 1) in
  ignore (Icc_core.Pool.add_block pool b);
  ignore
    (Icc_core.Pool.add_authenticator pool ~round:b.Icc_core.Block.round
       ~proposer:b.Icc_core.Block.proposer
       ~block_hash:(Icc_core.Block.hash b)
       (authenticator kit b));
  ignore (Icc_core.Pool.add_notarization pool (notarization kit b signers))
