(* Primality and group-parameter tests. *)

let test_small_primes () =
  let primes = [ 2; 3; 5; 7; 11; 13; 97; 7919; 104729 ] in
  List.iter
    (fun p ->
      Alcotest.(check bool) (string_of_int p) true (Icc_crypto.Primes.is_prime p))
    primes;
  let composites = [ 0; 1; 4; 9; 91; 561; 1105; 8911; 104730 ] in
  List.iter
    (fun c ->
      Alcotest.(check bool) (string_of_int c) false (Icc_crypto.Primes.is_prime c))
    composites

let test_carmichael () =
  (* Carmichael numbers fool Fermat tests but not Miller–Rabin. *)
  List.iter
    (fun c ->
      Alcotest.(check bool) (string_of_int c) false (Icc_crypto.Primes.is_prime c))
    [ 561; 1105; 1729; 2465; 2821; 6601; 8911; 10585; 15841; 29341 ]

let test_large () =
  Alcotest.(check bool) "2^61-1 is prime" true
    (Icc_crypto.Primes.is_prime ((1 lsl 61) - 1));
  Alcotest.(check bool) "2^62-1 composite" false
    (Icc_crypto.Primes.is_prime ((1 lsl 62) - 1))

let test_group_params () =
  Alcotest.(check bool) "p safe prime" true
    (Icc_crypto.Primes.is_safe_prime Icc_crypto.Group.p);
  Alcotest.(check bool) "q prime" true
    (Icc_crypto.Primes.is_prime Icc_crypto.Group.q);
  Alcotest.(check int) "p = 2q+1" Icc_crypto.Group.p
    ((2 * Icc_crypto.Group.q) + 1);
  Alcotest.(check bool) "g in subgroup" true
    (Icc_crypto.Group.is_element Icc_crypto.Group.generator)

let test_next_safe_prime () =
  Alcotest.(check int) "finds group prime" Icc_crypto.Group.p
    (Icc_crypto.Primes.next_safe_prime_below Icc_crypto.Group.p);
  Alcotest.(check int) "small" 23 (Icc_crypto.Primes.next_safe_prime_below 23);
  Alcotest.(check int) "skips" 23 (Icc_crypto.Primes.next_safe_prime_below 45)

let prop_mr_matches_trial_division =
  QCheck.Test.make ~name:"miller-rabin = trial division below 10000" ~count:300
    (QCheck.int_bound 10_000) (fun n ->
      let trial n =
        if n < 2 then false
        else
          let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
          go 2
      in
      Icc_crypto.Primes.is_prime n = trial n)

let suite =
  [
    Alcotest.test_case "small primes/composites" `Quick test_small_primes;
    Alcotest.test_case "carmichael numbers" `Quick test_carmichael;
    Alcotest.test_case "large candidates" `Quick test_large;
    Alcotest.test_case "group parameters" `Quick test_group_params;
    Alcotest.test_case "next_safe_prime_below" `Quick test_next_safe_prime;
    QCheck_alcotest.to_alcotest prop_mr_matches_trial_division;
  ]
