(* Chaum–Pedersen DLEQ proof tests. *)

let rng = Icc_sim.Rng.create 0xd1e0
let rand_bits () = Icc_sim.Rng.bits61 rng

let fresh_bases () =
  let h =
    Icc_crypto.Group.hash_to_group
      (Icc_crypto.Sha256.digest_string (string_of_int (rand_bits ())))
  in
  (Icc_crypto.Group.generator, h)

let test_accepts_honest () =
  let base1, base2 = fresh_bases () in
  let x = Icc_crypto.Group.random_scalar rand_bits in
  let proof = Icc_crypto.Dleq.prove ~base1 ~base2 ~exponent:x ~msg_tag:"t" in
  Alcotest.(check bool) "valid" true
    (Icc_crypto.Dleq.verify ~base1 ~base2
       ~a:(Icc_crypto.Group.pow base1 x)
       ~b:(Icc_crypto.Group.pow base2 x)
       proof)

let test_rejects_mismatched_exponents () =
  let base1, base2 = fresh_bases () in
  let x = Icc_crypto.Group.random_scalar rand_bits in
  let y = Icc_crypto.Group.scalar_add x 1 in
  let proof = Icc_crypto.Dleq.prove ~base1 ~base2 ~exponent:x ~msg_tag:"t" in
  Alcotest.(check bool) "a=g^x, b=h^y rejected" false
    (Icc_crypto.Dleq.verify ~base1 ~base2
       ~a:(Icc_crypto.Group.pow base1 x)
       ~b:(Icc_crypto.Group.pow base2 y)
       proof)

let test_rejects_tampered_proof () =
  let base1, base2 = fresh_bases () in
  let x = Icc_crypto.Group.random_scalar rand_bits in
  let proof = Icc_crypto.Dleq.prove ~base1 ~base2 ~exponent:x ~msg_tag:"t" in
  let bad =
    {
      proof with
      Icc_crypto.Dleq.response =
        Icc_crypto.Group.scalar_add proof.Icc_crypto.Dleq.response 1;
    }
  in
  Alcotest.(check bool) "tampered" false
    (Icc_crypto.Dleq.verify ~base1 ~base2
       ~a:(Icc_crypto.Group.pow base1 x)
       ~b:(Icc_crypto.Group.pow base2 x)
       bad)

let prop_roundtrip =
  QCheck.Test.make ~name:"dleq roundtrip" ~count:60 QCheck.small_string
    (fun tag ->
      let base1, base2 = fresh_bases () in
      let x = Icc_crypto.Group.random_scalar rand_bits in
      let proof = Icc_crypto.Dleq.prove ~base1 ~base2 ~exponent:x ~msg_tag:tag in
      Icc_crypto.Dleq.verify ~base1 ~base2
        ~a:(Icc_crypto.Group.pow base1 x)
        ~b:(Icc_crypto.Group.pow base2 x)
        proof)

let prop_wrong_statement_rejected =
  QCheck.Test.make ~name:"dleq rejects wrong statement" ~count:60
    (QCheck.int_range 1 1_000_000) (fun delta ->
      let base1, base2 = fresh_bases () in
      let x = Icc_crypto.Group.random_scalar rand_bits in
      let proof = Icc_crypto.Dleq.prove ~base1 ~base2 ~exponent:x ~msg_tag:"t" in
      not
        (Icc_crypto.Dleq.verify ~base1 ~base2
           ~a:(Icc_crypto.Group.pow base1 x)
           ~b:(Icc_crypto.Group.pow base2 (Icc_crypto.Group.scalar_add x delta))
           proof))

let suite =
  [
    Alcotest.test_case "accepts honest" `Quick test_accepts_honest;
    Alcotest.test_case "rejects mismatch" `Quick test_rejects_mismatched_exponents;
    Alcotest.test_case "rejects tampered" `Quick test_rejects_tampered_proof;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_wrong_statement_rejected;
  ]
