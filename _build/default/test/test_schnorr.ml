(* Schnorr signature tests. *)

let rng = Icc_sim.Rng.create 0xabc1
let rand_bits () = Icc_sim.Rng.bits61 rng

let test_sign_verify () =
  let sk, pk = Icc_crypto.Schnorr.keygen rand_bits in
  let msg = "propose block 42" in
  let s = Icc_crypto.Schnorr.sign sk msg in
  Alcotest.(check bool) "valid" true (Icc_crypto.Schnorr.verify pk msg s)

let test_wrong_message_rejected () =
  let sk, pk = Icc_crypto.Schnorr.keygen rand_bits in
  let s = Icc_crypto.Schnorr.sign sk "m1" in
  Alcotest.(check bool) "other msg" false (Icc_crypto.Schnorr.verify pk "m2" s)

let test_wrong_key_rejected () =
  let sk, _pk = Icc_crypto.Schnorr.keygen rand_bits in
  let _, pk2 = Icc_crypto.Schnorr.keygen rand_bits in
  let s = Icc_crypto.Schnorr.sign sk "m" in
  Alcotest.(check bool) "other key" false (Icc_crypto.Schnorr.verify pk2 "m" s)

let test_tampered_signature_rejected () =
  let sk, pk = Icc_crypto.Schnorr.keygen rand_bits in
  let s = Icc_crypto.Schnorr.sign sk "m" in
  let bad =
    {
      s with
      Icc_crypto.Schnorr.response =
        Icc_crypto.Group.scalar_add s.Icc_crypto.Schnorr.response 1;
    }
  in
  Alcotest.(check bool) "tampered" false (Icc_crypto.Schnorr.verify pk "m" bad)

let test_deterministic () =
  let sk, _ = Icc_crypto.Schnorr.keygen rand_bits in
  Alcotest.(check bool) "derandomised" true
    (Icc_crypto.Schnorr.sign sk "m" = Icc_crypto.Schnorr.sign sk "m")

let test_public_key_of_secret () =
  let sk, pk = Icc_crypto.Schnorr.keygen rand_bits in
  Alcotest.(check bool) "derivable" true
    (Icc_crypto.Schnorr.public_key_of_secret sk = pk)

let prop_roundtrip =
  QCheck.Test.make ~name:"schnorr sign/verify roundtrip" ~count:60
    QCheck.small_string (fun msg ->
      let sk, pk = Icc_crypto.Schnorr.keygen rand_bits in
      Icc_crypto.Schnorr.verify pk msg (Icc_crypto.Schnorr.sign sk msg))

let prop_cross_message_rejected =
  QCheck.Test.make ~name:"schnorr rejects cross-message" ~count:60
    (QCheck.pair QCheck.small_string QCheck.small_string) (fun (m1, m2) ->
      QCheck.assume (m1 <> m2);
      let sk, pk = Icc_crypto.Schnorr.keygen rand_bits in
      not (Icc_crypto.Schnorr.verify pk m2 (Icc_crypto.Schnorr.sign sk m1)))

let suite =
  [
    Alcotest.test_case "sign/verify" `Quick test_sign_verify;
    Alcotest.test_case "wrong message" `Quick test_wrong_message_rejected;
    Alcotest.test_case "wrong key" `Quick test_wrong_key_rejected;
    Alcotest.test_case "tampered" `Quick test_tampered_signature_rejected;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "pk of sk" `Quick test_public_key_of_secret;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_cross_message_rejected;
  ]
