test/heap_probe.ml: Icc_sim List
