test/kit.ml: Array Icc_core Icc_crypto Icc_sim List
