test/test_erasure.ml: Alcotest Array Char Icc_erasure Icc_sim List Printf QCheck QCheck_alcotest String
