test/test_extensions.ml: Alcotest Icc_core Icc_crypto Icc_sim Kit List Printf
