test/test_pool.ml: Alcotest Icc_core Icc_crypto Kit List
