test/test_beacon.ml: Alcotest Array Icc_core Icc_crypto Kit List Option String
