test/test_schnorr.ml: Alcotest Icc_crypto Icc_sim QCheck QCheck_alcotest
