test/test_primes.ml: Alcotest Icc_crypto List QCheck QCheck_alcotest
