test/test_fp.ml: Alcotest Icc_crypto Printf QCheck QCheck_alcotest
