test/main.mli:
