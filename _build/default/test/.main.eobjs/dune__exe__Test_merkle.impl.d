test/test_merkle.ml: Alcotest Fun Icc_crypto List Printf QCheck QCheck_alcotest
