test/test_smr.ml: Alcotest Icc_core Icc_smr List Printf QCheck QCheck_alcotest String
