test/test_icc0.ml: Alcotest Icc_core Icc_crypto Icc_sim List Printf QCheck QCheck_alcotest
