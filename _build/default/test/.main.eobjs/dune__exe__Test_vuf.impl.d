test/test_vuf.ml: Alcotest Array Icc_crypto Icc_sim List Printf QCheck QCheck_alcotest
