test/test_tendermint.ml: Alcotest Icc_baselines Icc_core Printf
