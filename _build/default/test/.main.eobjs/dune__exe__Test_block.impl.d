test/test_block.ml: Alcotest Icc_core Icc_crypto Kit List QCheck QCheck_alcotest
