test/test_party.ml: Alcotest Icc_core Icc_sim List Printf
