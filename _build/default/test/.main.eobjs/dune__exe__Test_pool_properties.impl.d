test/test_pool_properties.ml: Array Icc_core Icc_sim Kit List QCheck QCheck_alcotest
