test/test_baselines.ml: Alcotest Icc_baselines Icc_core Printf
