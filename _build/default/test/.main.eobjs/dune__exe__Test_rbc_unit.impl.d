test/test_rbc_unit.ml: Alcotest Char Hashtbl Icc_core Icc_erasure Icc_rbc Icc_sim Kit List Printf String
