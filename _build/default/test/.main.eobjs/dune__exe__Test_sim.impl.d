test/test_sim.ml: Alcotest Array Fun Heap_probe Icc_sim List QCheck QCheck_alcotest
