test/test_dkg.ml: Alcotest Array Icc_crypto Icc_sim List Printf QCheck QCheck_alcotest
