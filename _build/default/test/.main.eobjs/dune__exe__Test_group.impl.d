test/test_group.ml: Alcotest Icc_crypto Icc_sim Printf QCheck QCheck_alcotest
