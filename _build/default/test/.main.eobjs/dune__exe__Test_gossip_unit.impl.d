test/test_gossip_unit.ml: Alcotest Hashtbl Icc_core Icc_gossip Icc_sim Kit List Printf
