test/test_multisig.ml: Alcotest Array Icc_crypto Icc_sim List QCheck QCheck_alcotest
