test/test_icc1.ml: Alcotest Array Icc_core Icc_crypto Icc_gossip Icc_sim List Printf Queue
