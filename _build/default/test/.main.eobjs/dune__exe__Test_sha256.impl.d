test/test_sha256.ml: Alcotest Bytes Icc_crypto List QCheck QCheck_alcotest String
