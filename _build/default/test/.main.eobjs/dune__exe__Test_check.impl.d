test/test_check.ml: Alcotest Icc_core Kit
