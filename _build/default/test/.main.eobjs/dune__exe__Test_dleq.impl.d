test/test_dleq.ml: Alcotest Icc_crypto Icc_sim QCheck QCheck_alcotest
