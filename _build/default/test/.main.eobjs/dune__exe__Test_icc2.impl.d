test/test_icc2.ml: Alcotest Icc_core Icc_crypto Icc_rbc Icc_sim Kit List Printf
