test/test_codec.ml: Alcotest Array Bytes Char Icc_core Icc_crypto Kit List Printf QCheck QCheck_alcotest String
