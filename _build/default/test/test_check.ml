(* Unit tests for the global correctness oracles: they must actually detect
   violations, not just bless honest runs. *)

let kit = Kit.make ~n:4 ~t:1 ()

let b1 = Kit.block ~round:1 ~proposer:1 ~parent:None ()

let b1' =
  Kit.block
    ~payload:{ Icc_core.Types.commands = []; filler_size = 9 }
    ~round:1 ~proposer:2 ~parent:None ()

let b2 = Kit.block ~round:2 ~proposer:2 ~parent:(Some b1) ()

let test_outputs_consistent_accepts_prefixes () =
  Alcotest.(check bool) "prefix ok" true
    (Icc_core.Check.outputs_consistent
       [ (1, [ b1; b2 ]); (2, [ b1 ]); (3, [ b1; b2 ]) ]);
  Alcotest.(check bool) "empty ok" true
    (Icc_core.Check.outputs_consistent [ (1, []); (2, [ b1 ]) ])

let test_outputs_consistent_rejects_forks () =
  Alcotest.(check bool) "fork detected" false
    (Icc_core.Check.outputs_consistent [ (1, [ b1 ]); (2, [ b1' ]) ])

let test_no_conflicting_notarization_detects_violation () =
  (* pool A finalizes b1; pool B notarizes the conflicting b1' *)
  let pool_a = Icc_core.Pool.create kit.Kit.system in
  Kit.admit_notarized kit pool_a b1;
  ignore (Icc_core.Pool.add_finalization pool_a (Kit.finalization kit b1 [ 1; 2; 3 ]));
  let pool_b = Icc_core.Pool.create kit.Kit.system in
  Kit.admit_notarized kit pool_b b1';
  Alcotest.(check bool) "single pool fine" true
    (Icc_core.Check.no_conflicting_notarization [ pool_a ]);
  Alcotest.(check bool) "cross-pool violation detected" false
    (Icc_core.Check.no_conflicting_notarization [ pool_a; pool_b ])

let test_no_conflict_when_same_block () =
  let pool_a = Icc_core.Pool.create kit.Kit.system in
  Kit.admit_notarized kit pool_a b1;
  ignore (Icc_core.Pool.add_finalization pool_a (Kit.finalization kit b1 [ 1; 2; 3 ]));
  let pool_b = Icc_core.Pool.create kit.Kit.system in
  Kit.admit_notarized kit pool_b b1;
  Alcotest.(check bool) "same block everywhere" true
    (Icc_core.Check.no_conflicting_notarization [ pool_a; pool_b ])

let test_every_round_notarized () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  Kit.admit_notarized kit pool b1;
  Kit.admit_notarized kit pool b2;
  Alcotest.(check bool) "both rounds" true
    (Icc_core.Check.every_round_notarized [ pool ] ~limit:2);
  Alcotest.(check bool) "beyond horizon fails" false
    (Icc_core.Check.every_round_notarized [ pool ] ~limit:3);
  Alcotest.(check bool) "limit 0 vacuous" true
    (Icc_core.Check.every_round_notarized [ pool ] ~limit:0)

let suite =
  [
    Alcotest.test_case "prefixes accepted" `Quick
      test_outputs_consistent_accepts_prefixes;
    Alcotest.test_case "forks rejected" `Quick test_outputs_consistent_rejects_forks;
    Alcotest.test_case "P2 violation detected" `Quick
      test_no_conflicting_notarization_detects_violation;
    Alcotest.test_case "P2 same block fine" `Quick test_no_conflict_when_same_block;
    Alcotest.test_case "P1 horizon" `Quick test_every_round_notarized;
  ]
