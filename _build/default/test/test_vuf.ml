(* Threshold-VUF (random beacon scheme S_beacon) tests. *)

let rng = Icc_sim.Rng.create 0xbeac
let rand_bits () = Icc_sim.Rng.bits61 rng

let take k l = List.filteri (fun i _ -> i < k) l

let setup ?(t = 2) ?(n = 7) () =
  Icc_crypto.Threshold_vuf.setup ~threshold_t:t ~n rand_bits

let test_share_verify () =
  let params, secrets = setup () in
  let msg = "beacon round 1" in
  List.iter
    (fun sk ->
      let share = Icc_crypto.Threshold_vuf.sign_share params sk msg in
      Alcotest.(check bool) "share valid" true
        (Icc_crypto.Threshold_vuf.verify_share params msg share))
    secrets

let test_share_wrong_message_rejected () =
  let params, secrets = setup () in
  let share =
    Icc_crypto.Threshold_vuf.sign_share params (List.hd secrets) "m1"
  in
  Alcotest.(check bool) "wrong msg" false
    (Icc_crypto.Threshold_vuf.verify_share params "m2" share)

let test_combine_and_verify () =
  let params, secrets = setup () in
  let msg = "beacon" in
  let shares =
    List.map (fun sk -> Icc_crypto.Threshold_vuf.sign_share params sk msg) secrets
  in
  match Icc_crypto.Threshold_vuf.combine params msg (take 3 shares) with
  | None -> Alcotest.fail "combine failed with t+1 shares"
  | Some sig_ ->
      Alcotest.(check bool) "verifies" true
        (Icc_crypto.Threshold_vuf.verify params msg sig_)

let test_uniqueness_across_subsets () =
  (* Any (t+1)-subset of shares combines to the same sigma: the signature is
     unique, the property the random beacon requires. *)
  let params, secrets = setup ~t:2 ~n:8 () in
  let msg = "unique" in
  let shares =
    Array.of_list
      (List.map (fun sk -> Icc_crypto.Threshold_vuf.sign_share params sk msg) secrets)
  in
  let combine_subset idxs =
    match
      Icc_crypto.Threshold_vuf.combine params msg (List.map (fun i -> shares.(i)) idxs)
    with
    | Some s -> s.Icc_crypto.Threshold_vuf.sigma
    | None -> Alcotest.fail "combine failed"
  in
  let reference = combine_subset [ 0; 1; 2 ] in
  List.iter
    (fun idxs ->
      Alcotest.(check int) "same sigma" reference (combine_subset idxs))
    [ [ 1; 2; 3 ]; [ 5; 6; 7 ]; [ 0; 4; 7 ]; [ 2; 3; 5 ] ]

let test_too_few_shares () =
  let params, secrets = setup () in
  let msg = "m" in
  let shares =
    List.map (fun sk -> Icc_crypto.Threshold_vuf.sign_share params sk msg)
      (take 2 secrets)
  in
  Alcotest.(check bool) "t shares insufficient" true
    (Icc_crypto.Threshold_vuf.combine params msg shares = None)

let test_invalid_shares_filtered () =
  let params, secrets = setup () in
  let msg = "m" in
  let good =
    List.map (fun sk -> Icc_crypto.Threshold_vuf.sign_share params sk msg)
      (take 3 secrets)
  in
  let forged =
    match good with
    | s :: _ -> { s with Icc_crypto.Threshold_vuf.signer = 5 }
    | [] -> assert false
  in
  (* 2 good + 1 forged: not enough after filtering *)
  Alcotest.(check bool) "forged filtered" true
    (Icc_crypto.Threshold_vuf.combine params msg (forged :: take 2 good) = None);
  (* 3 good + 1 forged: still combines *)
  Alcotest.(check bool) "good still combine" true
    (Icc_crypto.Threshold_vuf.combine params msg (forged :: good) <> None)

let test_tampered_signature_rejected () =
  let params, secrets = setup () in
  let msg = "m" in
  let shares =
    List.map (fun sk -> Icc_crypto.Threshold_vuf.sign_share params sk msg) secrets
  in
  match Icc_crypto.Threshold_vuf.combine params msg shares with
  | None -> Alcotest.fail "combine"
  | Some s ->
      let bad =
        {
          s with
          Icc_crypto.Threshold_vuf.sigma = Icc_crypto.Group.mul s.sigma 4;
        }
      in
      Alcotest.(check bool) "tampered sigma" false
        (Icc_crypto.Threshold_vuf.verify params msg bad)

let test_randomness_deterministic () =
  let params, secrets = setup () in
  let msg = "m" in
  let shares =
    List.map (fun sk -> Icc_crypto.Threshold_vuf.sign_share params sk msg) secrets
  in
  match
    ( Icc_crypto.Threshold_vuf.combine params msg (take 3 shares),
      Icc_crypto.Threshold_vuf.combine params msg (List.rev shares) )
  with
  | Some a, Some b ->
      Alcotest.(check string) "same randomness"
        (Icc_crypto.Sha256.to_hex (Icc_crypto.Threshold_vuf.randomness msg a))
        (Icc_crypto.Sha256.to_hex (Icc_crypto.Threshold_vuf.randomness msg b))
  | _ -> Alcotest.fail "combine"

let prop_any_threshold_subset_combines =
  QCheck.Test.make ~name:"vuf any (t+1)-subset combines and verifies" ~count:25
    (QCheck.int_range 1 3) (fun t ->
      let n = (3 * t) + 1 in
      let params, secrets =
        Icc_crypto.Threshold_vuf.setup ~threshold_t:t ~n rand_bits
      in
      let msg = Printf.sprintf "msg-%d" t in
      let shares =
        Array.of_list
          (List.map
             (fun sk -> Icc_crypto.Threshold_vuf.sign_share params sk msg)
             secrets)
      in
      Icc_sim.Rng.shuffle_in_place rng shares;
      match
        Icc_crypto.Threshold_vuf.combine params msg
          (Array.to_list (Array.sub shares 0 (t + 1)))
      with
      | Some s -> Icc_crypto.Threshold_vuf.verify params msg s
      | None -> false)

let suite =
  [
    Alcotest.test_case "share verify" `Quick test_share_verify;
    Alcotest.test_case "share wrong msg" `Quick test_share_wrong_message_rejected;
    Alcotest.test_case "combine+verify" `Quick test_combine_and_verify;
    Alcotest.test_case "uniqueness" `Quick test_uniqueness_across_subsets;
    Alcotest.test_case "too few shares" `Quick test_too_few_shares;
    Alcotest.test_case "invalid filtered" `Quick test_invalid_shares_filtered;
    Alcotest.test_case "tampered rejected" `Quick test_tampered_signature_rejected;
    Alcotest.test_case "randomness deterministic" `Quick
      test_randomness_deterministic;
    QCheck_alcotest.to_alcotest prop_any_threshold_subset_combines;
  ]
