(* Distributed key generation tests: the DKG must produce beacon keys
   functionally identical to the trusted dealer's, and survive corrupt
   dealers. *)

let rng = Icc_sim.Rng.create 0xd6
let rand_bits () = Icc_sim.Rng.bits61 rng

let take k l = List.filteri (fun i _ -> i < k) l

let test_honest_run_produces_working_beacon () =
  let params, secrets = Icc_crypto.Dkg.run ~threshold_t:2 ~n:7 rand_bits in
  let msg = "beacon round 1" in
  let shares =
    List.map (fun sk -> Icc_crypto.Threshold_vuf.sign_share params sk msg) secrets
  in
  (* every t+1 subset combines to the same verifying signature *)
  match
    ( Icc_crypto.Threshold_vuf.combine params msg (take 3 shares),
      Icc_crypto.Threshold_vuf.combine params msg (List.rev shares) )
  with
  | Some a, Some b ->
      Alcotest.(check bool) "verifies" true
        (Icc_crypto.Threshold_vuf.verify params msg a);
      Alcotest.(check int) "unique sigma" a.Icc_crypto.Threshold_vuf.sigma
        b.Icc_crypto.Threshold_vuf.sigma
  | _ -> Alcotest.fail "combine failed"

let test_share_validation () =
  let d = Icc_crypto.Dkg.deal ~threshold_t:2 ~n:5 ~dealer:1 rand_bits in
  for j = 1 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "share %d valid" j)
      true
      (Icc_crypto.Dkg.share_valid
         ~commitments:d.Icc_crypto.Dkg.commitments ~receiver:j
         ~share:d.Icc_crypto.Dkg.shares.(j - 1))
  done;
  Alcotest.(check bool) "wrong share rejected" false
    (Icc_crypto.Dkg.share_valid ~commitments:d.Icc_crypto.Dkg.commitments
       ~receiver:1
       ~share:(Icc_crypto.Group.scalar_add d.Icc_crypto.Dkg.shares.(0) 1))

let test_corrupt_dealer_draws_complaints () =
  let d = Icc_crypto.Dkg.deal ~threshold_t:1 ~n:4 ~dealer:2 rand_bits in
  (* corrupt the share destined for party 3 *)
  let bad = { d with Icc_crypto.Dkg.shares = Array.copy d.Icc_crypto.Dkg.shares } in
  bad.Icc_crypto.Dkg.shares.(2) <-
    Icc_crypto.Group.scalar_add bad.Icc_crypto.Dkg.shares.(2) 5;
  (match Icc_crypto.Dkg.verify_dealing ~receiver:3 bad with
  | Some c ->
      Alcotest.(check int) "complainer" 3 c.Icc_crypto.Dkg.complainer;
      Alcotest.(check int) "against" 2 c.Icc_crypto.Dkg.against
  | None -> Alcotest.fail "corruption undetected");
  Alcotest.(check bool) "other receivers fine" true
    (Icc_crypto.Dkg.verify_dealing ~receiver:1 bad = None)

let test_overcomplained_dealer_excluded () =
  let n = 4 and threshold_t = 1 in
  let dealings =
    List.init n (fun i ->
        Icc_crypto.Dkg.deal ~threshold_t ~n ~dealer:(i + 1) rand_bits)
  in
  (* two complaints (> t = 1) against dealer 4: excluded *)
  let complaints =
    [
      { Icc_crypto.Dkg.complainer = 1; against = 4 };
      { Icc_crypto.Dkg.complainer = 2; against = 4 };
    ]
  in
  match Icc_crypto.Dkg.finalize ~threshold_t ~n ~dealings ~complaints with
  | Error e -> Alcotest.fail e
  | Ok (params, secrets) -> (
      (* the beacon built from dealers {1,2,3} still works *)
      let msg = "m" in
      let shares =
        List.map
          (fun sk -> Icc_crypto.Threshold_vuf.sign_share params sk msg)
          secrets
      in
      match Icc_crypto.Threshold_vuf.combine params msg shares with
      | Some s ->
          Alcotest.(check bool) "verifies" true
            (Icc_crypto.Threshold_vuf.verify params msg s);
          (* and differs from the all-qualified key *)
          (match Icc_crypto.Dkg.finalize ~threshold_t ~n ~dealings ~complaints:[] with
          | Ok (params_all, _) ->
              Alcotest.(check bool) "key excludes dealer 4" false
                (params_all.Icc_crypto.Threshold_vuf.global_pk
                = params.Icc_crypto.Threshold_vuf.global_pk)
          | Error e -> Alcotest.fail e)
      | None -> Alcotest.fail "combine failed")

let test_too_few_qualified () =
  let n = 4 and threshold_t = 1 in
  let dealings =
    List.init n (fun i ->
        Icc_crypto.Dkg.deal ~threshold_t ~n ~dealer:(i + 1) rand_bits)
  in
  let complain against =
    List.map (fun c -> { Icc_crypto.Dkg.complainer = c; against }) [ 1; 2; 3 ]
  in
  let complaints = List.concat_map complain [ 1; 2; 3 ] in
  match Icc_crypto.Dkg.finalize ~threshold_t ~n ~dealings ~complaints with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should fail with 1 qualified dealer"

let test_single_complaint_not_disqualifying () =
  (* a lone (possibly malicious) complaint must not evict an honest dealer:
     up to t complaints are tolerated *)
  let n = 7 and threshold_t = 2 in
  let dealings =
    List.init n (fun i ->
        Icc_crypto.Dkg.deal ~threshold_t ~n ~dealer:(i + 1) rand_bits)
  in
  let complaints = [ { Icc_crypto.Dkg.complainer = 5; against = 1 } ] in
  match Icc_crypto.Dkg.finalize ~threshold_t ~n ~dealings ~complaints with
  | Ok (params, _) -> (
      match Icc_crypto.Dkg.finalize ~threshold_t ~n ~dealings ~complaints:[] with
      | Ok (params_all, _) ->
          Alcotest.(check bool) "dealer 1 still included" true
            (params_all.Icc_crypto.Threshold_vuf.global_pk
            = params.Icc_crypto.Threshold_vuf.global_pk)
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

let prop_dkg_equivalent_to_dealer =
  QCheck.Test.make ~name:"dkg params behave like trusted-dealer params"
    ~count:10 (QCheck.int_range 1 3) (fun t ->
      let n = (3 * t) + 1 in
      let params, secrets = Icc_crypto.Dkg.run ~threshold_t:t ~n rand_bits in
      let msg = Printf.sprintf "msg-%d" t in
      let shares =
        List.map
          (fun sk -> Icc_crypto.Threshold_vuf.sign_share params sk msg)
          secrets
      in
      List.for_all
        (fun s -> Icc_crypto.Threshold_vuf.verify_share params msg s)
        shares
      &&
      match Icc_crypto.Threshold_vuf.combine params msg (take (t + 1) shares) with
      | Some s -> Icc_crypto.Threshold_vuf.verify params msg s
      | None -> false)

let suite =
  [
    Alcotest.test_case "honest run" `Quick test_honest_run_produces_working_beacon;
    Alcotest.test_case "share validation" `Quick test_share_validation;
    Alcotest.test_case "corrupt dealer complaint" `Quick
      test_corrupt_dealer_draws_complaints;
    Alcotest.test_case "overcomplained excluded" `Quick
      test_overcomplained_dealer_excluded;
    Alcotest.test_case "too few qualified" `Quick test_too_few_qualified;
    Alcotest.test_case "single complaint tolerated" `Quick
      test_single_complaint_not_disqualifying;
    QCheck_alcotest.to_alcotest prop_dkg_equivalent_to_dealer;
  ]
