(* Random beacon chain tests (paper §2.3, §3.2). *)

let kit = Kit.make ~n:4 ~t:1 ()

let beacon_for i =
  Icc_core.Beacon.create kit.Kit.system (Kit.key kit i).Icc_crypto.Keygen.beacon_key

let feed_round pool ~round ~msg signers =
  List.iter
    (fun i ->
      let share =
        Icc_crypto.Threshold_vuf.sign_share kit.Kit.system.Icc_crypto.Keygen.beacon
          (Kit.key kit i).Icc_crypto.Keygen.beacon_key msg
      in
      ignore (Icc_core.Pool.add_beacon_share pool ~round share))
    signers

let test_round1_computation () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let beacon = beacon_for 1 in
  Alcotest.(check bool) "round0 known" true (Icc_core.Beacon.known beacon 0);
  Alcotest.(check bool) "round1 unknown" false (Icc_core.Beacon.known beacon 1);
  let msg =
    Option.get (Icc_core.Beacon.message_for_round beacon 1)
  in
  (* one share (t = 1 needs t+1 = 2) is not enough *)
  feed_round pool ~round:1 ~msg [ 1 ];
  Alcotest.(check bool) "1 share insufficient" false
    (Icc_core.Beacon.try_compute beacon pool 1);
  feed_round pool ~round:1 ~msg [ 3 ];
  Alcotest.(check bool) "2 shares compute" true
    (Icc_core.Beacon.try_compute beacon pool 1);
  Alcotest.(check bool) "now known" true (Icc_core.Beacon.known beacon 1)

let test_all_parties_agree () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let beacons = List.map beacon_for [ 1; 2; 3; 4 ] in
  let msg = Option.get (Icc_core.Beacon.message_for_round (List.hd beacons) 1) in
  feed_round pool ~round:1 ~msg [ 2; 4 ];
  List.iter
    (fun b -> Alcotest.(check bool) "computes" true (Icc_core.Beacon.try_compute b pool 1))
    beacons;
  let perms =
    List.map (fun b -> Option.get (Icc_core.Beacon.permutation b 1)) beacons
  in
  List.iter
    (fun p ->
      Alcotest.(check (array int)) "same permutation" (List.hd perms) p)
    perms

let test_permutation_is_permutation () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let beacon = beacon_for 2 in
  let msg = Option.get (Icc_core.Beacon.message_for_round beacon 1) in
  feed_round pool ~round:1 ~msg [ 1; 2 ];
  ignore (Icc_core.Beacon.try_compute beacon pool 1);
  let perm = Option.get (Icc_core.Beacon.permutation beacon 1) in
  Alcotest.(check (list int)) "parties 1..4" [ 1; 2; 3; 4 ]
    (List.sort compare (Array.to_list perm));
  (* rank_of inverts the permutation *)
  Array.iteri
    (fun rank party ->
      Alcotest.(check (option int)) "rank_of" (Some rank)
        (Icc_core.Beacon.rank_of beacon 1 party))
    perm;
  Alcotest.(check (option int)) "leader is rank 0" (Some perm.(0))
    (Icc_core.Beacon.leader beacon 1)

let test_chain_dependency () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let beacon = beacon_for 1 in
  (* round-2 message is unavailable before round 1 is computed *)
  Alcotest.(check bool) "round2 message gated" true
    (Icc_core.Beacon.message_for_round beacon 2 = None);
  let msg1 = Option.get (Icc_core.Beacon.message_for_round beacon 1) in
  feed_round pool ~round:1 ~msg:msg1 [ 1; 2 ];
  ignore (Icc_core.Beacon.try_compute beacon pool 1);
  let msg2 = Option.get (Icc_core.Beacon.message_for_round beacon 2) in
  Alcotest.(check bool) "messages differ" false (String.equal msg1 msg2);
  feed_round pool ~round:2 ~msg:msg2 [ 3; 4 ];
  Alcotest.(check bool) "round2 computes" true
    (Icc_core.Beacon.try_compute beacon pool 2)

let test_wrong_message_shares_rejected () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let beacon = beacon_for 1 in
  (* shares signed over garbage do not combine *)
  feed_round pool ~round:1 ~msg:"not the beacon text" [ 1; 2; 3 ];
  Alcotest.(check bool) "refused" false (Icc_core.Beacon.try_compute beacon pool 1)

let test_permutations_differ_across_rounds () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let beacon = beacon_for 1 in
  let rec advance round limit =
    if round <= limit then begin
      let msg = Option.get (Icc_core.Beacon.message_for_round beacon round) in
      feed_round pool ~round ~msg [ 1; 2 ];
      ignore (Icc_core.Beacon.try_compute beacon pool round);
      advance (round + 1) limit
    end
  in
  advance 1 12;
  let perms =
    List.init 12 (fun i ->
        Array.to_list (Option.get (Icc_core.Beacon.permutation beacon (i + 1))))
  in
  (* with 4! = 24 arrangements, 12 rounds must produce at least 2 distinct *)
  Alcotest.(check bool) "not constant" true
    (List.length (List.sort_uniq compare perms) > 1)

let suite =
  [
    Alcotest.test_case "round-1 computation" `Quick test_round1_computation;
    Alcotest.test_case "all parties agree" `Quick test_all_parties_agree;
    Alcotest.test_case "permutation valid" `Quick test_permutation_is_permutation;
    Alcotest.test_case "chain dependency" `Quick test_chain_dependency;
    Alcotest.test_case "wrong-message shares" `Quick
      test_wrong_message_shares_rejected;
    Alcotest.test_case "permutations vary" `Quick
      test_permutations_differ_across_rounds;
  ]
