(* SHA-256 against the NIST FIPS 180-4 / Cryptographic Algorithm Validation
   Program vectors, plus structural properties. *)

let check_vector name input expected_hex =
  Alcotest.(check string)
    name expected_hex
    (Icc_crypto.Sha256.to_hex (Icc_crypto.Sha256.digest_string input))

let test_nist_vectors () =
  check_vector "empty" ""
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check_vector "abc" "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check_vector "two blocks"
    "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  check_vector "four blocks"
    "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"

let test_million_a () =
  check_vector "million a" (String.make 1_000_000 'a')
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"

let test_boundary_lengths () =
  (* Lengths around the 55/56/64-byte padding boundaries must not crash and
     must be distinct. *)
  let digests =
    List.init 130 (fun i ->
        Icc_crypto.Sha256.to_hex
          (Icc_crypto.Sha256.digest_string (String.make i 'x')))
  in
  Alcotest.(check int)
    "all distinct" 130
    (List.length (List.sort_uniq compare digests))

let test_bytes_and_string_agree () =
  let s = "internet computer consensus" in
  Alcotest.(check string)
    "agree"
    (Icc_crypto.Sha256.to_hex (Icc_crypto.Sha256.digest_string s))
    (Icc_crypto.Sha256.to_hex (Icc_crypto.Sha256.digest_bytes (Bytes.of_string s)))

let test_to_int61 () =
  let d = Icc_crypto.Sha256.digest_string "x" in
  let v = Icc_crypto.Sha256.to_int61 d in
  Alcotest.(check bool) "in range" true (v >= 0 && v < 1 lsl 61);
  Alcotest.(check int) "deterministic" v
    (Icc_crypto.Sha256.to_int61 (Icc_crypto.Sha256.digest_string "x"))

let prop_deterministic =
  QCheck.Test.make ~name:"sha256 deterministic" ~count:100
    QCheck.string (fun s ->
      Icc_crypto.Sha256.equal
        (Icc_crypto.Sha256.digest_string s)
        (Icc_crypto.Sha256.digest_string s))

let prop_injective_on_sample =
  QCheck.Test.make ~name:"sha256 no collisions on random pairs" ~count:200
    (QCheck.pair QCheck.string QCheck.string) (fun (a, b) ->
      String.equal a b
      || not
           (Icc_crypto.Sha256.equal
              (Icc_crypto.Sha256.digest_string a)
              (Icc_crypto.Sha256.digest_string b)))

let suite =
  [
    Alcotest.test_case "NIST vectors" `Quick test_nist_vectors;
    Alcotest.test_case "million 'a'" `Slow test_million_a;
    Alcotest.test_case "padding boundaries" `Quick test_boundary_lengths;
    Alcotest.test_case "bytes/string agree" `Quick test_bytes_and_string_agree;
    Alcotest.test_case "to_int61" `Quick test_to_int61;
    QCheck_alcotest.to_alcotest prop_deterministic;
    QCheck_alcotest.to_alcotest prop_injective_on_sample;
  ]
