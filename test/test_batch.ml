(* Batch signature verification (DESIGN.md §3.10): Pippenger multi-exp,
   RLC batch equations for Schnorr and DLEQ, the Dpool parallel verify
   pool, and the crypto-layer bugfix regressions that rode along
   (fixed-base cache saturation, zero-scalar remap bias, hash-to-group
   nudge collapse). *)

module G = Icc_crypto.Group
module Batch = Icc_crypto.Batch
module Schnorr = Icc_crypto.Schnorr
module Dleq = Icc_crypto.Dleq
module Counters = Icc_crypto.Counters
module Registry = Icc_obs.Registry
module Dpool = Icc_obs.Dpool

let rng = Icc_sim.Rng.create 0xba7c
let rand_bits () = Icc_sim.Rng.bits61 rng

(* Every test that flips a toggle restores the defaults, pass or fail —
   later suites (and the golden runs) assume them. *)
let with_toggles f () =
  Fun.protect
    ~finally:(fun () ->
      Batch.set_batch_verify true;
      Batch.set_parallel_verify false;
      Batch.set_max_chunk 64)
    f

(* ------------------------------------------------------- multi_exp *)

let arb_elt =
  QCheck.map (fun x -> G.base_pow (abs x)) QCheck.(int_bound 1_000_000_000)

let prop_multi_exp_naive =
  let arb =
    QCheck.list_of_size (QCheck.Gen.int_bound 40)
      (QCheck.pair arb_elt QCheck.int)
  in
  QCheck.Test.make ~name:"multi_exp = naive product of pows" ~count:100 arb
    (fun pairs ->
      let pairs =
        Array.of_list (List.map (fun (b, e) -> (b, abs e)) pairs)
      in
      let naive =
        Array.fold_left (fun acc (b, e) -> G.mul acc (G.pow b e)) G.one pairs
      in
      G.multi_exp pairs = naive)

let test_multi_exp_edges () =
  Alcotest.(check int) "empty product" G.one (G.multi_exp [||]);
  Alcotest.(check int) "zero exponent" G.one (G.multi_exp [| (G.generator, 0) |]);
  Alcotest.(check int) "exponent reduced mod q"
    (G.pow G.generator 5)
    (G.multi_exp [| (G.generator, G.q + 5) |]);
  (* narrow (32-bit) exponents — the batch-coefficient shape *)
  let pairs = Array.init 9 (fun i -> (G.base_pow (i + 2), 0x1234567 * (i + 1))) in
  Alcotest.(check int) "32-bit exponents"
    (Array.fold_left (fun acc (b, e) -> G.mul acc (G.pow b e)) G.one pairs)
    (G.multi_exp pairs)

(* -------------------------------------------- Schnorr batch verify *)

let keys = Array.init 8 (fun _ -> Schnorr.keygen rand_bits)

(* A signed item with tamper class 0 (honest) .. 4; every non-zero class
   must be rejected, and classes 1/3 keep the challenge hash valid so
   they exercise the combined-equation fallback path specifically. *)
let schnorr_item i tamper =
  let sk, pk = keys.(i mod Array.length keys) in
  let msg = Printf.sprintf "batch message %d" i in
  let sg = Schnorr.sign sk msg in
  match tamper with
  | 1 ->
      (* hash still matches; group equation fails -> chunk fallback *)
      (pk, msg, { sg with Schnorr.response = G.scalar_add sg.Schnorr.response 1 })
  | 2 -> (pk, msg, { sg with Schnorr.challenge = G.scalar_add sg.Schnorr.challenge 1 })
  | 3 ->
      (* signature of one message presented for another *)
      (pk, msg ^ "?", sg)
  | 4 ->
      let _, pk2 = keys.((i + 1) mod Array.length keys) in
      (pk2, msg, sg)
  | _ -> (pk, msg, sg)

let schnorr_singles items =
  List.map (fun (pk, msg, sg) -> Schnorr.verify pk msg sg) items

(* Batch verdicts must equal the one-by-one verdicts for any mix of
   honest and forged signatures, at any chunk size, with batching on or
   off — in particular the batch accepts iff every item verifies
   individually, and any single forgery is flagged exactly. *)
let prop_schnorr_batch_matches_singles =
  let arb =
    QCheck.pair
      (QCheck.list_of_size (QCheck.Gen.int_bound 24) (QCheck.int_bound 4))
      (QCheck.int_range 2 7)
  in
  QCheck.Test.make ~name:"schnorr batch verdicts = single verdicts" ~count:60
    arb (fun (tampers, chunk) ->
      with_toggles
        (fun () ->
          let items = List.mapi schnorr_item tampers in
          let expected = schnorr_singles items in
          Batch.set_max_chunk chunk;
          Batch.set_batch_verify true;
          let batched = Schnorr.verify_batch items in
          Batch.set_batch_verify false;
          let unbatched = Schnorr.verify_batch items in
          batched = expected && unbatched = expected
          && List.for_all Fun.id expected
             = List.for_all Fun.id batched)
        ())

let prop_schnorr_single_forgery_rejected =
  let arb = QCheck.pair (QCheck.int_range 2 30) (QCheck.int_bound 1_000_000) in
  QCheck.Test.make ~name:"schnorr batch flags any single forgery" ~count:60 arb
    (fun (n, seed) ->
      with_toggles
        (fun () ->
          let bad = seed mod n in
          let items =
            List.init n (fun i ->
                schnorr_item i (if i = bad then 1 + (seed mod 4) else 0))
          in
          Batch.set_max_chunk (2 + (seed mod 6));
          let verdicts = Schnorr.verify_batch items in
          List.length verdicts = n
          && List.for_all Fun.id (List.filteri (fun i _ -> i <> bad) verdicts)
          && not (List.nth verdicts bad))
        ())

let test_schnorr_batch_counters () =
  with_toggles
    (fun () ->
      Batch.set_max_chunk 8;
      let honest = List.init 16 (fun i -> schnorr_item i 0) in
      let batched0 = Registry.value Counters.schnorr_batched in
      let fall0 = Registry.value Counters.batch_fallbacks in
      Alcotest.(check (list bool)) "all accepted"
        (List.init 16 (fun _ -> true))
        (Schnorr.verify_batch honest);
      Alcotest.(check int) "16 signatures settled by batch equations"
        (batched0 + 16)
        (Registry.value Counters.schnorr_batched);
      Alcotest.(check int) "no fallback on honest batch" fall0
        (Registry.value Counters.batch_fallbacks);
      (* one equation-level forgery in a chunk forces that chunk's
         per-item fallback — and only that chunk's *)
      let mixed = List.init 16 (fun i -> schnorr_item i (if i = 3 then 1 else 0)) in
      let fall1 = Registry.value Counters.batch_fallbacks in
      Alcotest.(check (list bool)) "culprit identified exactly"
        (List.init 16 (fun i -> i <> 3))
        (Schnorr.verify_batch mixed);
      Alcotest.(check int) "exactly one chunk fell back" (fall1 + 1)
        (Registry.value Counters.batch_fallbacks))
    ()

(* ----------------------------------------------- DLEQ batch verify *)

let beacon_bases () =
  ( G.generator,
    G.hash_to_group (Icc_crypto.Sha256.digest_string "batch test round point") )

let dleq_item ~base1 ~base2 i tamper =
  let x = G.random_scalar rand_bits in
  let proof = Dleq.prove ~base1 ~base2 ~exponent:x ~msg_tag:(string_of_int i) in
  let a = G.pow base1 x and b = G.pow base2 x in
  match tamper with
  | 1 -> (a, b, { proof with Dleq.response = G.scalar_add proof.Dleq.response 1 })
  | 2 -> (a, b, { proof with Dleq.challenge = G.scalar_add proof.Dleq.challenge 1 })
  | 3 -> (a, G.pow base2 (G.scalar_add x 1), proof)
  | 4 -> (G.mul a G.generator, b, proof)
  | _ -> (a, b, proof)

let prop_dleq_batch_matches_singles =
  let arb =
    QCheck.pair
      (QCheck.list_of_size (QCheck.Gen.int_bound 20) (QCheck.int_bound 4))
      (QCheck.int_range 2 7)
  in
  QCheck.Test.make ~name:"dleq batch verdicts = single verdicts" ~count:40 arb
    (fun (tampers, chunk) ->
      with_toggles
        (fun () ->
          let base1, base2 = beacon_bases () in
          let items = List.mapi (dleq_item ~base1 ~base2) tampers in
          let expected =
            List.map (fun (a, b, p) -> Dleq.verify ~base1 ~base2 ~a ~b p) items
          in
          Batch.set_max_chunk chunk;
          Batch.set_batch_verify true;
          let batched = Dleq.verify_batch ~base1 ~base2 items in
          Batch.set_batch_verify false;
          let unbatched = Dleq.verify_batch ~base1 ~base2 items in
          batched = expected && unbatched = expected)
        ())

let prop_dleq_single_forgery_rejected =
  let arb = QCheck.pair (QCheck.int_range 2 24) (QCheck.int_bound 1_000_000) in
  QCheck.Test.make ~name:"dleq batch flags any single forgery" ~count:40 arb
    (fun (n, seed) ->
      with_toggles
        (fun () ->
          let base1, base2 = beacon_bases () in
          let bad = seed mod n in
          let items =
            List.init n (fun i ->
                dleq_item ~base1 ~base2 i (if i = bad then 1 + (seed mod 4) else 0))
          in
          Batch.set_max_chunk (2 + (seed mod 6));
          let verdicts = Dleq.verify_batch ~base1 ~base2 items in
          List.for_all Fun.id (List.filteri (fun i _ -> i <> bad) verdicts)
          && not (List.nth verdicts bad))
        ())

(* --------------------------------------------- parallel verify pool *)

let test_dpool_map_identity () =
  if not Dpool.available then ()
  else begin
    Dpool.set_workers 4;
    let arr = Array.init 257 (fun i -> i) in
    Alcotest.(check (array int)) "parallel map = sequential map"
      (Array.map (fun i -> (i * 31) lxor 7) arr)
      (Dpool.map (fun i -> (i * 31) lxor 7) arr);
    (* nested map from inside a worker stays sequential, not deadlocked *)
    let nested =
      Dpool.map (fun i -> Array.length (Dpool.map (fun j -> j) (Array.make (i + 1) 0)))
        (Array.init 8 (fun i -> i))
    in
    Alcotest.(check (array int)) "nested map runs sequentially"
      (Array.init 8 (fun i -> i + 1))
      nested;
    Dpool.shutdown ()
  end

let test_dpool_exception_lowest_index () =
  if not Dpool.available then ()
  else begin
    Dpool.set_workers 4;
    let boom i = if i mod 3 = 0 && i > 0 then failwith (string_of_int i) else i in
    match Dpool.map boom (Array.init 64 (fun i -> i)) with
    | _ -> Alcotest.fail "expected an exception"
    | exception Failure i ->
        (* deterministic join: always the lowest failing index *)
        Alcotest.(check string) "lowest failing index re-raised" "3" i;
        Dpool.shutdown ()
  end

let test_parallel_batch_matches_sequential () =
  with_toggles
    (fun () ->
      let items = List.init 100 (fun i -> schnorr_item i (if i = 57 then 2 else 0)) in
      let expected = schnorr_singles items in
      Batch.set_max_chunk 4;
      Batch.set_batch_verify true;
      let sequential = Schnorr.verify_batch items in
      Batch.set_parallel_verify true;
      if Dpool.available then Dpool.set_workers 4;
      let parallel = Schnorr.verify_batch items in
      Alcotest.(check (list bool)) "sequential = singles" expected sequential;
      Alcotest.(check (list bool)) "parallel = sequential" sequential parallel;
      (* shutdown joins the workers (idle domains tax the minor GC of
         everything that follows); the pool must respawn on demand *)
      Dpool.shutdown ();
      let again = Schnorr.verify_batch items in
      Alcotest.(check (list bool)) "pool respawns after shutdown" sequential
        again;
      Dpool.shutdown ())
    ()

(* ------------------------------------ fixed-base cache saturation *)

(* Regression for the cache-saturation starvation bug: once 4096 distinct
   bases had tables, every later base — including a brand-new party's key
   after a long run — fell through to generic pow forever.  Now a base
   that keeps missing earns a table through probation (evicting the
   oldest evictable resident), and the generator's table is pinned. *)
let test_fixed_base_saturation () =
  Alcotest.(check bool) "fixed base on" true (G.fixed_base_enabled ());
  (* churn far past the 4096-entry capacity with distinct one-shot bases
     (x -> x^3 permutes the subgroup, so the walk doesn't repeat) *)
  let junk = ref (G.base_pow 12345) in
  for _ = 1 to 4200 do
    junk := G.mul !junk (G.mul !junk !junk);
    ignore (G.pow_cached !junk 3)
  done;
  let hot = G.mul !junk G.generator in
  let e = 987654321 in
  let expect = G.pow hot e in
  let tables0 = Registry.value Counters.fixed_base_tables in
  (* two probation misses: correct results, no table yet *)
  Alcotest.(check int) "probation miss 1 correct" expect (G.pow_cached hot e);
  Alcotest.(check int) "probation miss 2 correct" expect (G.pow_cached hot e);
  Alcotest.(check int) "no table during probation" tables0
    (Registry.value Counters.fixed_base_tables);
  (* third miss promotes: one eviction, one table build *)
  let evict0 = Registry.value Counters.fixed_base_evictions in
  Alcotest.(check int) "promotion call correct" expect (G.pow_cached hot e);
  Alcotest.(check int) "hot base got a table at capacity" (tables0 + 1)
    (Registry.value Counters.fixed_base_tables);
  Alcotest.(check int) "one resident evicted" (evict0 + 1)
    (Registry.value Counters.fixed_base_evictions);
  (* …and subsequent calls are served from it *)
  let fb0 = Registry.value Counters.pow_fixed_base in
  Alcotest.(check int) "served from table" expect (G.pow_cached hot e);
  Alcotest.(check int) "pow_fixed_base bumped" (fb0 + 1)
    (Registry.value Counters.pow_fixed_base);
  (* the generator's pinned table survived the churn *)
  let fb1 = Registry.value Counters.pow_fixed_base in
  ignore (G.base_pow 55555);
  Alcotest.(check int) "generator table pinned through churn" (fb1 + 1)
    (Registry.value Counters.pow_fixed_base)

(* --------------------------------------------- zero-remap bugfixes *)

let test_random_scalar_nonzero () =
  (* a stub RNG whose first draws land on scalar 0: the historical remap
     returned 1 here (doubling its mass); rejection resampling must skip
     to the next draw and count the rederives *)
  let feed = ref [ 0; 0; 42 ] in
  let stub () =
    match !feed with
    | v :: rest ->
        feed := rest;
        v
    | [] -> Alcotest.fail "stub exhausted"
  in
  let z0 = Registry.value Counters.zero_rederives in
  Alcotest.(check int) "skips zero draws" 42 (G.random_scalar_nonzero stub);
  Alcotest.(check int) "two rederives counted" (z0 + 2)
    (Registry.value Counters.zero_rederives);
  (* ordinary draws are passed through untouched *)
  let s = G.random_scalar_nonzero rand_bits in
  Alcotest.(check bool) "in [1, q)" true (s >= 1 && s < G.q)

let test_scalar_of_hash_nonzero_first_derivation () =
  (* the non-zero guarantee must not perturb the ~(1 - 2^-61) of inputs
     that were already fine: first derivation is byte-identical *)
  let z0 = Registry.value Counters.zero_rederives in
  for i = 0 to 199 do
    let d = Icc_crypto.Sha256.digest_string (Printf.sprintf "nz %d" i) in
    Alcotest.(check int)
      (Printf.sprintf "nonzero = plain for digest %d" i)
      (G.scalar_of_hash d)
      (G.scalar_of_hash_nonzero ~tag:"test" d)
  done;
  Alcotest.(check int) "rederive branch never taken" z0
    (Registry.value Counters.zero_rederives)

(* ------------------------------------- hash-to-group nudge classes *)

let test_residue_nudge_classes () =
  (* the degenerate x = p-1 squares to 1; the historical nudge remapped
     it to x = 2, colliding with a live input class.  It now maps to the
     class of 3, distinct from every other class. *)
  Alcotest.(check int) "p-1 remapped to the class of 3"
    (G.residue_to_group 3)
    (G.residue_to_group (G.p - 1));
  Alcotest.(check int) "class of 3 squares to 9" 9 (G.residue_to_group (G.p - 1));
  Alcotest.(check bool) "distinct from the class of 2" true
    (G.residue_to_group (G.p - 1) <> G.residue_to_group 2);
  Alcotest.(check bool) "remapped image in subgroup" true
    (G.is_element (G.residue_to_group (G.p - 1)));
  (* non-degenerate inputs are plainly squared *)
  for x = 2 to 64 do
    Alcotest.(check int)
      (Printf.sprintf "residue %d squared" x)
      (Icc_crypto.Fp.mul x x G.p)
      (G.residue_to_group x);
    Alcotest.(check bool)
      (Printf.sprintf "residue %d in subgroup" x)
      true
      (G.is_element (G.residue_to_group x))
  done

(* --------------------------- toggle trace identity on a golden run *)

let scenario ~seed =
  {
    (Icc_core.Runner.default_scenario ~n:4 ~seed) with
    Icc_core.Runner.duration = 1e6;
    max_rounds = Some 6;
    delay = Icc_core.Runner.Fixed_delay 0.02;
    epsilon = 0.05;
  }

let traced_digest () =
  let tr = Icc_sim.Trace.create () in
  let buf = Buffer.create (1 lsl 16) in
  Icc_sim.Trace.subscribe tr (fun ~time ev ->
      Buffer.add_string buf (Icc_sim.Trace.to_json ~time ev);
      Buffer.add_char buf '\n');
  let r =
    Icc_core.Runner.run
      { (scenario ~seed:31) with Icc_core.Runner.trace = Some tr }
  in
  ( r.Icc_core.Runner.rounds_decided,
    Icc_crypto.Sha256.digest_string (Buffer.contents buf) )

(* Batching and the parallel pool are §3.5 toggles: flipping them may
   change only wall-clock, never a trace byte.  This is the in-tree
   version of the four golden n=16 trace checks run by `bench perf`. *)
let test_toggle_trace_identity () =
  with_toggles
    (fun () ->
      let z0 = Registry.value Counters.zero_rederives in
      Batch.set_batch_verify true;
      let rounds, base = traced_digest () in
      Alcotest.(check bool) "run decided rounds" true (rounds >= 6);
      Batch.set_batch_verify false;
      let _, unbatched = traced_digest () in
      Alcotest.(check string) "batch off: trace byte-identical"
        (base :> string)
        (unbatched :> string);
      Batch.set_batch_verify true;
      Batch.set_max_chunk 4;
      Batch.set_parallel_verify true;
      if Dpool.available then Dpool.set_workers 4;
      let _, parallel = traced_digest () in
      Dpool.shutdown ();
      Alcotest.(check string) "parallel pool: trace byte-identical"
        (base :> string)
        (parallel :> string);
      (* goldens never draw a zero scalar — the rederive branch (whose
         historical remap would have shifted these very bytes) is dead
         on every committed scenario *)
      Alcotest.(check int) "zero_rederives untouched by golden runs" z0
        (Registry.value Counters.zero_rederives))
    ()

let suite =
  [
    QCheck_alcotest.to_alcotest prop_multi_exp_naive;
    Alcotest.test_case "multi_exp edge cases" `Quick test_multi_exp_edges;
    QCheck_alcotest.to_alcotest prop_schnorr_batch_matches_singles;
    QCheck_alcotest.to_alcotest prop_schnorr_single_forgery_rejected;
    Alcotest.test_case "schnorr batch counters + fallback" `Quick
      test_schnorr_batch_counters;
    QCheck_alcotest.to_alcotest prop_dleq_batch_matches_singles;
    QCheck_alcotest.to_alcotest prop_dleq_single_forgery_rejected;
    Alcotest.test_case "dpool map identity" `Quick test_dpool_map_identity;
    Alcotest.test_case "dpool exception order" `Quick
      test_dpool_exception_lowest_index;
    Alcotest.test_case "parallel batch = sequential" `Quick
      test_parallel_batch_matches_sequential;
    Alcotest.test_case "zero-remap: random_scalar_nonzero" `Quick
      test_random_scalar_nonzero;
    Alcotest.test_case "zero-remap: scalar_of_hash_nonzero" `Quick
      test_scalar_of_hash_nonzero_first_derivation;
    Alcotest.test_case "hash-to-group nudge classes" `Quick
      test_residue_nudge_classes;
    Alcotest.test_case "toggle trace identity" `Quick
      test_toggle_trace_identity;
    Alcotest.test_case "fixed-base cache saturation" `Slow
      test_fixed_base_saturation;
  ]
