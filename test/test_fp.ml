(* Unit and property tests for modular arithmetic. *)

let m = Icc_crypto.Group.p

let arb_residue =
  QCheck.map (fun x -> Icc_crypto.Fp.reduce (abs x) m) QCheck.int

let test_reduce () =
  Alcotest.(check int) "positive" 5 (Icc_crypto.Fp.reduce 5 7);
  Alcotest.(check int) "negative" 5 (Icc_crypto.Fp.reduce (-2) 7);
  Alcotest.(check int) "wrap" 1 (Icc_crypto.Fp.reduce 8 7)

let test_small_ops () =
  Alcotest.(check int) "add" 1 (Icc_crypto.Fp.add 5 3 7);
  Alcotest.(check int) "sub" 2 (Icc_crypto.Fp.sub 5 3 7);
  Alcotest.(check int) "sub wrap" 5 (Icc_crypto.Fp.sub 3 5 7);
  Alcotest.(check int) "neg" 2 (Icc_crypto.Fp.neg 5 7);
  Alcotest.(check int) "neg zero" 0 (Icc_crypto.Fp.neg 0 7);
  Alcotest.(check int) "mul" 1 (Icc_crypto.Fp.mul 5 3 7);
  Alcotest.(check int) "pow" 4 (Icc_crypto.Fp.pow 2 2 7);
  Alcotest.(check int) "pow zero exp" 1 (Icc_crypto.Fp.pow 5 0 7)

let test_mul_matches_reference () =
  (* Cross-check double-and-add mul against int64 arithmetic on values whose
     product fits in 62 bits. *)
  let m' = 1 lsl 31 in
  for a = 0 to 40 do
    for b = 0 to 40 do
      let a = a * 52_000_001 mod m' and b = b * 37_000_003 mod m' in
      Alcotest.(check int)
        (Printf.sprintf "mul %d %d" a b)
        (a * b mod m')
        (Icc_crypto.Fp.mul a b m')
    done
  done

let test_check_modulus () =
  Alcotest.check_raises "even" (Invalid_argument
    "Fp.check_modulus: modulus must be odd, in [3, 2^61)") (fun () ->
      Icc_crypto.Fp.check_modulus 8);
  Icc_crypto.Fp.check_modulus m

let test_inv_error () =
  Alcotest.check_raises "zero" (Invalid_argument "Fp.inv: zero has no inverse")
    (fun () -> ignore (Icc_crypto.Fp.inv 0 7));
  Alcotest.check_raises "non-coprime"
    (Invalid_argument "Fp.inv: element not invertible") (fun () ->
      ignore (Icc_crypto.Fp.inv 3 9))

let prop_add_commutes =
  QCheck.Test.make ~name:"fp add commutes" ~count:200
    (QCheck.pair arb_residue arb_residue) (fun (a, b) ->
      Icc_crypto.Fp.add a b m = Icc_crypto.Fp.add b a m)

let prop_mul_commutes =
  QCheck.Test.make ~name:"fp mul commutes" ~count:200
    (QCheck.pair arb_residue arb_residue) (fun (a, b) ->
      Icc_crypto.Fp.mul a b m = Icc_crypto.Fp.mul b a m)

let prop_mul_distributes =
  QCheck.Test.make ~name:"fp mul distributes over add" ~count:200
    (QCheck.triple arb_residue arb_residue arb_residue) (fun (a, b, c) ->
      Icc_crypto.Fp.mul a (Icc_crypto.Fp.add b c m) m
      = Icc_crypto.Fp.add (Icc_crypto.Fp.mul a b m) (Icc_crypto.Fp.mul a c m) m)

let prop_inv_is_inverse =
  QCheck.Test.make ~name:"fp inv" ~count:200 arb_residue (fun a ->
      QCheck.assume (a <> 0);
      Icc_crypto.Fp.mul a (Icc_crypto.Fp.inv a m) m = 1)

let prop_pow_adds_exponents =
  QCheck.Test.make ~name:"fp pow adds exponents" ~count:100
    (QCheck.triple arb_residue (QCheck.int_bound 10_000) (QCheck.int_bound 10_000))
    (fun (a, e1, e2) ->
      Icc_crypto.Fp.pow a (e1 + e2) m
      = Icc_crypto.Fp.mul (Icc_crypto.Fp.pow a e1 m) (Icc_crypto.Fp.pow a e2 m) m)

(* The 31-bit-split fast multiplication (and its automatic fallback for
   moduli whose 2^61 residue is too large) must agree with the reference
   double-and-add path on every odd modulus in range. *)
let arb_odd_modulus =
  QCheck.map
    (fun x ->
      let m = 3 + (abs x mod ((1 lsl 61) - 4)) in
      if m land 1 = 0 then m + 1 else m)
    QCheck.int

let prop_fast_mul_matches_generic =
  QCheck.Test.make ~name:"fast mul = generic mul (random odd moduli)"
    ~count:1000
    (QCheck.triple arb_odd_modulus QCheck.int QCheck.int)
    (fun (m', a, b) ->
      let a = Icc_crypto.Fp.reduce (abs a) m'
      and b = Icc_crypto.Fp.reduce (abs b) m' in
      Icc_crypto.Fp.mul a b m' = Icc_crypto.Fp.mul_generic a b m')

let test_fast_mul_toggle () =
  (* The benchmark toggle only switches implementations, never results. *)
  Alcotest.(check bool) "fast mul on by default" true
    (Icc_crypto.Fp.fast_mul_enabled ());
  let checks () =
    List.iter
      (fun (a, b) ->
        Alcotest.(check int)
          (Printf.sprintf "mul %d %d" a b)
          (Icc_crypto.Fp.mul_generic a b m)
          (Icc_crypto.Fp.mul a b m))
      [ (m - 1, m - 1); (m - 2, m - 1); (1234567890123, 987654321098) ]
  in
  checks ();
  Icc_crypto.Fp.set_fast_mul false;
  checks ();
  Icc_crypto.Fp.set_fast_mul true

let prop_sub_add_roundtrip =
  QCheck.Test.make ~name:"fp sub/add roundtrip" ~count:200
    (QCheck.pair arb_residue arb_residue) (fun (a, b) ->
      Icc_crypto.Fp.add (Icc_crypto.Fp.sub a b m) b m = a)

let suite =
  [
    Alcotest.test_case "reduce" `Quick test_reduce;
    Alcotest.test_case "small ops" `Quick test_small_ops;
    Alcotest.test_case "mul vs reference" `Quick test_mul_matches_reference;
    Alcotest.test_case "check_modulus" `Quick test_check_modulus;
    Alcotest.test_case "inv errors" `Quick test_inv_error;
    QCheck_alcotest.to_alcotest prop_add_commutes;
    QCheck_alcotest.to_alcotest prop_mul_commutes;
    QCheck_alcotest.to_alcotest prop_mul_distributes;
    QCheck_alcotest.to_alcotest prop_inv_is_inverse;
    QCheck_alcotest.to_alcotest prop_pow_adds_exponents;
    QCheck_alcotest.to_alcotest prop_sub_add_roundtrip;
    QCheck_alcotest.to_alcotest prop_fast_mul_matches_generic;
    Alcotest.test_case "fast mul toggle" `Quick test_fast_mul_toggle;
  ]
