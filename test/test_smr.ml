(* State-machine-replication layer tests. *)

let test_command_codec () =
  let ops =
    [
      Icc_smr.Command.Set ("k1", "v1");
      Icc_smr.Command.Delete "k2";
      Icc_smr.Command.Increment "counter";
      Icc_smr.Command.Noop;
    ]
  in
  List.iter
    (fun op ->
      Alcotest.(check bool) "roundtrip" true
        (Icc_smr.Command.decode (Icc_smr.Command.encode op) = Some op))
    ops;
  Alcotest.(check bool) "garbage" true (Icc_smr.Command.decode "???" = None)

let test_kv_apply () =
  let kv = Icc_smr.Kv_store.create () in
  Icc_smr.Kv_store.apply kv (Icc_smr.Command.Set ("a", "1"));
  Icc_smr.Kv_store.apply kv (Icc_smr.Command.Set ("b", "2"));
  Icc_smr.Kv_store.apply kv (Icc_smr.Command.Increment "c");
  Icc_smr.Kv_store.apply kv (Icc_smr.Command.Increment "c");
  Icc_smr.Kv_store.apply kv (Icc_smr.Command.Delete "a");
  Alcotest.(check (option string)) "a deleted" None (Icc_smr.Kv_store.get kv "a");
  Alcotest.(check (option string)) "b" (Some "2") (Icc_smr.Kv_store.get kv "b");
  Alcotest.(check (option string)) "c incremented" (Some "2")
    (Icc_smr.Kv_store.get kv "c");
  Alcotest.(check int) "applied count" 5 (Icc_smr.Kv_store.applied kv);
  Alcotest.(check int) "live keys" 2 (Icc_smr.Kv_store.size kv)

let test_kv_digest_sensitive () =
  let mk ops =
    let kv = Icc_smr.Kv_store.create () in
    List.iter (Icc_smr.Kv_store.apply kv) ops;
    Icc_smr.Kv_store.digest kv
  in
  Alcotest.(check string) "same state same digest"
    (mk [ Icc_smr.Command.Set ("x", "1"); Icc_smr.Command.Set ("y", "2") ])
    (mk [ Icc_smr.Command.Set ("y", "2"); Icc_smr.Command.Set ("x", "1") ]);
  Alcotest.(check bool) "different state" false
    (String.equal
       (mk [ Icc_smr.Command.Set ("x", "1") ])
       (mk [ Icc_smr.Command.Set ("x", "2") ]))

let test_replica_dedup () =
  let r = Icc_smr.Replica.create () in
  let c =
    Icc_core.Types.command
      ~tag:(Icc_smr.Command.encode (Icc_smr.Command.Increment "n"))
      ~cmd_id:9 ~cmd_size:16 ~submitted_at:0. ()
  in
  Icc_smr.Replica.apply_command r c;
  Icc_smr.Replica.apply_command r c;
  Alcotest.(check (option string)) "applied once" (Some "1")
    (Icc_smr.Kv_store.get r.Icc_smr.Replica.store "n")

let test_end_to_end_replicated_kv () =
  let scenario =
    {
      (Icc_core.Runner.default_scenario ~n:4 ~seed:71) with
      Icc_core.Runner.duration = 15.;
      delay = Icc_core.Runner.Fixed_delay 0.05;
      epsilon = 0.2;
      delta_bnd = 0.3;
    }
  in
  let r = Icc_smr.Workload.run_kv scenario ~rate_per_s:30. ~cmd_size:128 in
  Alcotest.(check bool) "consensus safety" true
    r.Icc_smr.Workload.consensus.Icc_core.Runner.safety_ok;
  Alcotest.(check bool) "states agree" true r.Icc_smr.Workload.states_agree;
  List.iter
    (fun (_, replica) ->
      Alcotest.(check bool) "commands applied" true
        (Icc_smr.Kv_store.applied replica.Icc_smr.Replica.store > 200);
      Alcotest.(check int) "no undecodable tags" 0
        replica.Icc_smr.Replica.skipped)
    r.Icc_smr.Workload.replicas

let test_end_to_end_with_byzantine_party () =
  let scenario =
    {
      (Icc_core.Runner.default_scenario ~n:4 ~seed:73) with
      Icc_core.Runner.duration = 15.;
      delay = Icc_core.Runner.Fixed_delay 0.05;
      epsilon = 0.2;
      delta_bnd = 0.3;
      adversary = Some [ Icc_sim.Adversary.equivocate ~noisy:true 2 ];
    }
  in
  let r = Icc_smr.Workload.run_kv scenario ~rate_per_s:30. ~cmd_size:128 in
  Alcotest.(check bool) "states agree under attack" true
    r.Icc_smr.Workload.states_agree

let prop_kv_replay_deterministic =
  QCheck.Test.make ~name:"kv replay deterministic" ~count:30
    (QCheck.list_of_size (QCheck.Gen.int_range 0 50)
       (QCheck.pair (QCheck.int_bound 20) (QCheck.int_bound 3)))
    (fun spec ->
      let ops =
        List.map
          (fun (k, kind) ->
            let key = Printf.sprintf "k%d" k in
            match kind with
            | 0 -> Icc_smr.Command.Delete key
            | 1 -> Icc_smr.Command.Increment key
            | 2 -> Icc_smr.Command.Noop
            | _ -> Icc_smr.Command.Set (key, string_of_int k))
          spec
      in
      let run () =
        let kv = Icc_smr.Kv_store.create () in
        List.iter (Icc_smr.Kv_store.apply kv) ops;
        Icc_smr.Kv_store.digest kv
      in
      String.equal (run ()) (run ()))

let suite =
  [
    Alcotest.test_case "command codec" `Quick test_command_codec;
    Alcotest.test_case "kv apply" `Quick test_kv_apply;
    Alcotest.test_case "kv digest" `Quick test_kv_digest_sensitive;
    Alcotest.test_case "replica dedup" `Quick test_replica_dedup;
    Alcotest.test_case "replicated kv e2e" `Quick test_end_to_end_replicated_kv;
    Alcotest.test_case "byzantine e2e" `Quick test_end_to_end_with_byzantine_party;
    QCheck_alcotest.to_alcotest prop_kv_replay_deterministic;
  ]
