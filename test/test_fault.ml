(* Nemesis-layer tests.

   - a QCheck property: ICC0 stays safe and live (and the online monitor
     stays clean) under random drop (<= 20%) / duplication / reordering
     schedules;
   - trace determinism: the same seed and nemesis script produce a
     byte-identical trace JSONL across two runs, for ICC0, ICC1 and ICC2;
   - the combined acceptance schedule from the issue: 20% drop +
     duplication + a healed two-way partition + crash-recover of f
     parties, with every party (including the recovered ones) committing
     the full chain. *)

let base ?(n = 4) ~seed ~duration () =
  {
    (Icc_core.Runner.default_scenario ~n ~seed) with
    Icc_core.Runner.duration;
    delay = Icc_core.Runner.Fixed_delay 0.05;
    epsilon = 0.2;
    delta_bnd = 0.5;
  }

let monitored (scenario : Icc_core.Runner.scenario) =
  {
    scenario with
    Icc_core.Runner.monitor = Some (Icc_sim.Monitor.default_config ~delta:0.05 ())
  }

let monitor_ok (r : Icc_core.Runner.result) =
  match r.Icc_core.Runner.monitor with
  | Some m -> Icc_sim.Monitor.ok m
  | None -> false

(* ------------------------------------------- random fault schedules *)

(* A schedule is a short list of rule specs drawn from small integers so
   QCheck can shrink a failing case to a minimal schedule.  [kind] picks
   the action, [permille] caps drop probability at 200/1000 = 20%, and the
   window [w0, w0 + w1 + 1) lies inside the 15 s run. *)
let script_of_specs specs =
  List.map
    (fun (kind, permille, w0, w1) ->
      let from_ = float_of_int w0 and until = float_of_int (w0 + w1 + 1) in
      let p = float_of_int permille /. 1000. in
      match kind mod 3 with
      | 0 -> Icc_sim.Fault.drop ~from_ ~until p
      | 1 -> Icc_sim.Fault.duplicate ~from_ ~until ~spread:0.05 (p *. 2.)
      | _ -> Icc_sim.Fault.reorder ~from_ ~until ~max_extra:0.2 (p *. 2.))
    specs

let prop_icc0_safe_under_random_schedules =
  let spec_gen =
    QCheck.Gen.(
      quad (int_bound 2) (int_bound 200) (int_bound 9) (int_bound 5))
  in
  let gen = QCheck.Gen.(pair (int_bound 1000) (list_size (int_range 1 3) spec_gen)) in
  let print (seed, specs) =
    Printf.sprintf "seed=%d specs=[%s]" seed
      (String.concat "; "
         (List.map
            (fun (k, p, w0, w1) -> Printf.sprintf "(%d,%d,%d,%d)" k p w0 w1)
            specs))
  in
  QCheck.Test.make
    ~name:"icc0 safe and live under random drop/dup/reorder schedules"
    ~count:10
    (QCheck.make ~print gen)
    (fun (seed, specs) ->
      let scenario =
        monitored
          { (base ~seed ~duration:15. ()) with
            Icc_core.Runner.nemesis = Some (script_of_specs specs) }
      in
      let r = Icc_core.Runner.run scenario in
      r.Icc_core.Runner.safety_ok && r.Icc_core.Runner.p1_ok
      && monitor_ok r
      && r.Icc_core.Runner.rounds_decided >= 10)

(* --------------------------- random adversary x nemesis compositions *)

(* Random adversary scripts, all targeting party 2 so the corrupt count
   stays at f = 1 = t for n = 4.  The spec tuple mirrors the nemesis one
   so QCheck shrinks both the same way. *)
let adv_script_of_specs specs =
  List.map
    (fun (kind, permille, w0, w1) ->
      let from_ = float_of_int w0 and until = float_of_int (w0 + w1 + 1) in
      let p = float_of_int permille /. 1000. in
      match kind mod 8 with
      | 0 -> Icc_sim.Adversary.equivocate ~noisy:true 2
      | 1 -> Icc_sim.Adversary.equivocate 2
      | 2 -> Icc_sim.Adversary.withhold ~p 2
      | 3 ->
          Icc_sim.Adversary.withhold ~notar:true ~final:true ~p ~from_ ~until 2
      | 4 -> Icc_sim.Adversary.censor ~dsts:[ 1 + (w1 mod 4) ] ~from_ ~until 2
      | 5 -> Icc_sim.Adversary.delay ~by:0.3 ~from_ ~until 2
      | 6 -> Icc_sim.Adversary.crash_window ~from_ ~until 2
      | _ -> Icc_sim.Adversary.straggle ~p:(p *. 0.8) ~from_ ~until 2)
    specs

(* Run a scenario with a trace sink, returning the result and JSONL dump. *)
let jsonl_run scenario =
  let tr = Icc_sim.Trace.create () in
  let buf = Buffer.create (1 lsl 16) in
  Icc_sim.Trace.subscribe ~all:true tr (fun ~time ev ->
      Buffer.add_string buf (Icc_sim.Trace.to_json ~time ev);
      Buffer.add_char buf '\n');
  let r = Icc_core.Runner.run { scenario with Icc_core.Runner.trace = Some tr } in
  (r, Buffer.contents buf)

let prop_safe_under_random_adversary_and_nemesis =
  let spec_gen =
    QCheck.Gen.(
      quad (int_bound 7) (int_bound 1000) (int_bound 9) (int_bound 5))
  in
  let gen =
    QCheck.Gen.(
      triple (int_bound 1000)
        (list_size (int_range 1 3) spec_gen)
        (list_size (int_range 0 2)
           (quad (int_bound 2) (int_bound 200) (int_bound 9) (int_bound 5))))
  in
  let print (seed, advs, nems) =
    let specs l =
      String.concat "; "
        (List.map
           (fun (k, p, w0, w1) -> Printf.sprintf "(%d,%d,%d,%d)" k p w0 w1)
           l)
    in
    Printf.sprintf "seed=%d adv=[%s] nemesis=[%s]" seed (specs advs) (specs nems)
  in
  QCheck.Test.make
    ~name:
      "icc0 safe under random adversary scripts x nemesis schedules (f <= t), \
       traces byte-identical across re-runs"
    ~count:8
    (QCheck.make ~print gen)
    (fun (seed, adv_specs, nem_specs) ->
      let scenario =
        monitored
          {
            (base ~seed ~duration:15. ()) with
            Icc_core.Runner.nemesis =
              (match nem_specs with
              | [] -> None
              | s -> Some (script_of_specs s));
            adversary = Some (adv_script_of_specs adv_specs);
          }
      in
      let r1, jsonl1 = jsonl_run scenario in
      let _r2, jsonl2 = jsonl_run scenario in
      r1.Icc_core.Runner.safety_ok && r1.Icc_core.Runner.p1_ok
      && monitor_ok r1
      && r1.Icc_core.Runner.rounds_decided >= 8
      && String.length jsonl1 > 10_000
      && String.equal jsonl1 jsonl2)

let test_disabled_adversary_is_invisible () =
  (* [adversary = Some []] must not split the RNG or perturb anything:
     the trace is byte-identical to [adversary = None] — the layer is
     invisible until configured. *)
  let scenario = monitored (base ~seed:91 ~duration:10. ()) in
  let _, j_none =
    jsonl_run { scenario with Icc_core.Runner.adversary = None }
  in
  let _, j_empty =
    jsonl_run { scenario with Icc_core.Runner.adversary = Some [] }
  in
  Alcotest.(check bool) "trace non-empty" true (String.length j_none > 10_000);
  Alcotest.(check bool) "None and Some [] byte-identical" true
    (String.equal j_none j_empty)

(* ------------------------------------------- combined acceptance schedule *)

(* 20% loss + duplication over the middle of the run, a healed two-way
   partition, and a crash-recover cycle of f = t parties.  n = 4, t = 1:
   party 2 crashes at 6 s and recovers at 12 s. *)
let combined_script =
  Icc_sim.Fault.drop ~from_:4. ~until:14. 0.2
  :: Icc_sim.Fault.duplicate ~from_:4. ~until:14. 0.3
  :: Icc_sim.Fault.partition ~from_:9. ~until:11. [ [ 1; 3 ]; [ 4 ] ]
  :: Icc_sim.Fault.crash_recover ~party:2 ~down:6. ~up:12.

let combined_scenario ~seed =
  monitored
    { (base ~seed ~duration:25. ()) with
      Icc_core.Runner.nemesis = Some combined_script }

let check_combined name (r : Icc_core.Runner.result) =
  Alcotest.(check bool) (name ^ ": safety ok") true r.Icc_core.Runner.safety_ok;
  Alcotest.(check bool) (name ^ ": p1 ok") true r.Icc_core.Runner.p1_ok;
  Alcotest.(check bool) (name ^ ": monitor clean") true (monitor_ok r);
  Alcotest.(check bool)
    (Printf.sprintf "%s: liveness (%d rounds)" name
       r.Icc_core.Runner.rounds_decided)
    true
    (r.Icc_core.Runner.rounds_decided >= 20);
  (* the crash-recovered party stays in the honest set and commits the
     same chain as everyone else *)
  Alcotest.(check int) (name ^ ": all parties honest") 4
    (List.length r.Icc_core.Runner.outputs);
  match r.Icc_core.Runner.outputs with
  | (_, reference) :: rest ->
      List.iter
        (fun (id, chain) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: party %d chain identical" name id)
            true (chain = reference))
        rest
  | [] -> Alcotest.fail (name ^ ": no outputs")

(* Run a protocol over the combined schedule with a trace sink, returning
   the result and the full JSONL dump. *)
let traced_run run_fn ~seed =
  let tr = Icc_sim.Trace.create () in
  let buf = Buffer.create (1 lsl 16) in
  Icc_sim.Trace.subscribe tr (fun ~time ev ->
      Buffer.add_string buf (Icc_sim.Trace.to_json ~time ev);
      Buffer.add_char buf '\n');
  let r = run_fn { (combined_scenario ~seed) with Icc_core.Runner.trace = Some tr } in
  (r, Buffer.contents buf)

let check_deterministic_combined name run_fn ~seed =
  let r1, jsonl1 = traced_run run_fn ~seed in
  let _r2, jsonl2 = traced_run run_fn ~seed in
  check_combined name r1;
  Alcotest.(check bool) (name ^ ": trace non-empty") true
    (String.length jsonl1 > 10_000);
  Alcotest.(check bool)
    (name ^ ": byte-identical trace JSONL across two runs")
    true
    (String.equal jsonl1 jsonl2);
  (* the nemesis visibly did something: fault events are on the bus *)
  Alcotest.(check bool) (name ^ ": fault events present") true
    (let contains sub =
       let n = String.length jsonl1 and m = String.length sub in
       let rec go i = i + m <= n && (String.sub jsonl1 i m = sub || go (i + 1)) in
       go 0
     in
     contains {|"ev":"fault-drop"|} && contains {|"ev":"fault-crash"|}
     && contains {|"ev":"fault-recover"|})

let test_determinism_icc0 () =
  check_deterministic_combined "icc0" Icc_core.Runner.run ~seed:41

let test_determinism_icc1 () =
  check_deterministic_combined "icc1" Icc_gossip.Icc1.run ~seed:42

let test_determinism_icc2 () =
  check_deterministic_combined "icc2" Icc_rbc.Icc2.run ~seed:43

(* ------------------------------------------- resync heals a partition *)

let test_partition_heals_without_crash () =
  (* a pure two-way partition with no crash: both sides stall (no quorum
     on either side with n=4, t=1), heal, and the resync retransmission
     gets everyone back to one chain *)
  let script =
    [ Icc_sim.Fault.partition ~from_:5. ~until:8. [ [ 1; 2 ]; [ 3; 4 ] ] ]
  in
  let r =
    Icc_core.Runner.run
      (monitored
         { (base ~seed:57 ~duration:20. ()) with
           Icc_core.Runner.nemesis = Some script })
  in
  Alcotest.(check bool) "safety" true r.Icc_core.Runner.safety_ok;
  Alcotest.(check bool) "monitor" true (monitor_ok r);
  Alcotest.(check bool)
    (Printf.sprintf "liveness resumes after healing (%d rounds)"
       r.Icc_core.Runner.rounds_decided)
    true
    (r.Icc_core.Runner.rounds_decided >= 30)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_icc0_safe_under_random_schedules;
    QCheck_alcotest.to_alcotest prop_safe_under_random_adversary_and_nemesis;
    Alcotest.test_case "adversary disabled is invisible" `Quick
      test_disabled_adversary_is_invisible;
    Alcotest.test_case "icc0: combined schedule, deterministic trace" `Quick
      test_determinism_icc0;
    Alcotest.test_case "icc1: combined schedule, deterministic trace" `Quick
      test_determinism_icc1;
    Alcotest.test_case "icc2: combined schedule, deterministic trace" `Quick
      test_determinism_icc2;
    Alcotest.test_case "partition heals via resync" `Quick
      test_partition_heals_without_crash;
  ]
