(* Domain-safety runtime shims and the state they guard: the Dls / Lock
   4.14-compatible wrappers, the Atomic-backed Registry metrics, and the
   domain-local fixed-base cache (pow_cached must agree with pow under
   every toggle combination — the §3.5 byte-identity discipline). *)

module Group = Icc_crypto.Group
module Registry = Icc_obs.Registry

let rng = Icc_sim.Rng.create 0xd00d
let rand_bits () = Icc_sim.Rng.bits61 rng

let test_dls_roundtrip () =
  let key = Icc_obs.Dls.new_key (fun () -> ref 41) in
  let cell = Icc_obs.Dls.get key in
  Alcotest.(check int) "initial" 41 !cell;
  incr cell;
  Alcotest.(check int) "same cell" 42 !(Icc_obs.Dls.get key);
  Icc_obs.Dls.set key (ref 7);
  Alcotest.(check int) "replaced" 7 !(Icc_obs.Dls.get key)

let test_lock_with_lock () =
  let lock = Icc_obs.Lock.create () in
  Alcotest.(check int) "returns" 5 (Icc_obs.Lock.with_lock lock (fun () -> 5));
  (* Released on exception: a second section must still run. *)
  (try Icc_obs.Lock.with_lock lock (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check int) "reentry after raise" 6
    (Icc_obs.Lock.with_lock lock (fun () -> 6))

let test_registry_atomic_counter () =
  let c = Registry.counter "test_domain.counter" in
  let before = Registry.value c in
  for _ = 1 to 100 do
    Registry.inc c
  done;
  Registry.add c 17;
  Alcotest.(check int) "inc+add" (before + 117) (Registry.value c);
  Registry.reset ();
  Alcotest.(check int) "reset" 0 (Registry.value c)

let test_registry_gauge () =
  let g = Registry.gauge "test_domain.gauge" in
  Registry.set_gauge g 2.5;
  Alcotest.(check (float 1e-9)) "set" 2.5 (Registry.gauge_value g)

let test_pow_cached_agrees_with_pow () =
  let bases =
    [ Group.generator; Group.base_pow 123; Group.base_pow 9876543 ]
  in
  List.iter
    (fun base ->
      for _ = 1 to 32 do
        let e = Group.random_scalar rand_bits in
        Alcotest.(check bool)
          "pow_cached = pow" true
          (Group.elt_equal (Group.pow_cached base e) (Group.pow base e))
      done)
    bases

let test_fixed_base_toggle_value_identity () =
  (* The fixed-base cache is an optimization toggle: switching it off
     must not change a single value (§3.5). *)
  let exps = List.init 64 (fun _ -> Group.random_scalar rand_bits) in
  let run () = List.map (fun e -> Group.base_pow e) exps in
  Group.set_fixed_base true;
  let on = run () in
  Group.set_fixed_base false;
  let off = run () in
  Group.set_fixed_base true;
  Alcotest.(check bool)
    "identical results" true
    (List.for_all2 Group.elt_equal on off)

let suite =
  [
    Alcotest.test_case "dls roundtrip" `Quick test_dls_roundtrip;
    Alcotest.test_case "lock with_lock" `Quick test_lock_with_lock;
    Alcotest.test_case "registry atomic counter" `Quick
      test_registry_atomic_counter;
    Alcotest.test_case "registry gauge" `Quick test_registry_gauge;
    Alcotest.test_case "pow_cached agrees with pow" `Quick
      test_pow_cached_agrees_with_pow;
    Alcotest.test_case "fixed-base toggle value identity" `Quick
      test_fixed_base_toggle_value_identity;
  ]
