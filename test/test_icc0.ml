(* End-to-end Protocol ICC0 tests: the paper's properties P1 (deadlock
   freeness), P2 (safety) and P3 (liveness), exercised under honest,
   crashed, Byzantine and asynchronous conditions. *)

let base ?(n = 4) ?(seed = 11) () =
  {
    (Icc_core.Runner.default_scenario ~n ~seed) with
    Icc_core.Runner.duration = 20.;
    delay = Icc_core.Runner.Fixed_delay 0.05;
    epsilon = 0.2;
    delta_bnd = 0.3;
  }

let check_invariants ?(min_rounds = 1) name (r : Icc_core.Runner.result) =
  Alcotest.(check bool) (name ^ ": safety (P2 + prefix)") true r.safety_ok;
  Alcotest.(check bool) (name ^ ": P1") true r.p1_ok;
  Alcotest.(check bool)
    (Printf.sprintf "%s: liveness (decided %d >= %d)" name r.rounds_decided
       min_rounds)
    true
    (r.rounds_decided >= min_rounds)

let test_honest_liveness () =
  let r = Icc_core.Runner.run (base ()) in
  check_invariants ~min_rounds:60 "honest" r;
  (* steady state: one round per (epsilon + 2*delta)-ish; all parties agree *)
  List.iter
    (fun (_, chain) ->
      Alcotest.(check int) "equal chains" r.rounds_decided (List.length chain))
    r.outputs

let test_latency_matches_theory () =
  (* honest leader, synchronous: latency = epsilon + 2 * delta (the governor
     epsilon subsumes Delta_ntry(0); dissemination + shares are 2 delta) *)
  let r = Icc_core.Runner.run (base ()) in
  Alcotest.(check bool)
    (Printf.sprintf "latency %.3f in [0.29, 0.32]" r.mean_latency)
    true
    (r.mean_latency > 0.29 && r.mean_latency < 0.32)

let test_one_crashed () =
  let r =
    Icc_core.Runner.run
      { (base ()) with behaviors = [ (2, Icc_core.Party.crashed) ] }
  in
  check_invariants ~min_rounds:40 "one crashed" r

let test_equivocating_leader_safety () =
  List.iter
    (fun seed ->
      let r =
        Icc_core.Runner.run
          {
            (base ~seed ()) with
            adversary = Some [ Icc_sim.Adversary.equivocate ~noisy:true 1 ];
          }
      in
      check_invariants ~min_rounds:30 (Printf.sprintf "equivocator seed %d" seed) r)
    [ 1; 2; 3; 4; 5 ]

let test_equivocator_and_crash_together () =
  let r =
    Icc_core.Runner.run
      {
        (base ~n:7 ()) with
        t_corrupt = 2;
        behaviors = [ (6, Icc_core.Party.crashed) ];
        adversary = Some [ Icc_sim.Adversary.equivocate ~noisy:true 3 ];
      }
  in
  check_invariants ~min_rounds:20 "equivocator+crash" r

let test_stealthy_equivocator () =
  (* the strongest liveness attack: splits honest shares and withholds its
     own, so its rounds decide only in a later round — still safe, and the
     directly-finalized fraction reflects the 1/n leader probability *)
  let r =
    Icc_core.Runner.run
      {
        (base ()) with
        adversary =
          Some
            [
              Icc_sim.Adversary.equivocate 2;
              Icc_sim.Adversary.withhold ~notar:true ~final:true 2;
            ];
      }
  in
  check_invariants ~min_rounds:40 "stealthy" r;
  let direct = List.length r.directly_finalized in
  Alcotest.(check bool)
    (Printf.sprintf "some rounds decided late (%d/%d direct)" direct
       r.rounds_decided)
    true
    (direct < r.rounds_decided)

let test_lazy_participant () =
  (* consistent failure: never proposes but otherwise follows the protocol *)
  let r =
    Icc_core.Runner.run
      { (base ()) with behaviors = [ (4, Icc_core.Party.lazy_participant) ] }
  in
  check_invariants ~min_rounds:50 "lazy" r

let test_asynchronous_start_recovers () =
  (* the network is adversarially asynchronous for 8 of 20 seconds; the
     protocol must commit the backlog once synchrony returns (P1) *)
  let r = Icc_core.Runner.run { (base ()) with async_until = 8. } in
  check_invariants ~min_rounds:30 "async start" r

let test_mid_run_crash_degrades_gracefully () =
  let r = Icc_core.Runner.run { (base ()) with kill_at = [ (1, 10.) ] } in
  check_invariants ~min_rounds:30 "mid-run crash" r

let test_optimistic_responsiveness () =
  (* delta much smaller than delta_bnd: round time must track delta, not
     delta_bnd.  The non-responsive variant (Tendermint-style) must not. *)
  let fast =
    {
      (base ()) with
      delay = Icc_core.Runner.Fixed_delay 0.005;
      delta_bnd = 1.0;
      epsilon = 0.01;
    }
  in
  let responsive = Icc_core.Runner.run fast in
  let non_responsive =
    Icc_core.Runner.run { fast with non_responsive = true }
  in
  Alcotest.(check bool)
    (Printf.sprintf "responsive fast (%d rounds)" responsive.rounds_decided)
    true
    (responsive.rounds_decided > 300);
  Alcotest.(check bool)
    (Printf.sprintf "non-responsive slow (%d rounds)"
       non_responsive.rounds_decided)
    true
    (non_responsive.rounds_decided < responsive.rounds_decided / 5)

let test_commands_committed_exactly_once () =
  let r =
    Icc_core.Runner.run
      {
        (base ()) with
        workload = Icc_core.Runner.Load { rate_per_s = 40.; cmd_size = 256 };
      }
  in
  check_invariants ~min_rounds:50 "load" r;
  Alcotest.(check bool)
    (Printf.sprintf "most commands committed (%d)" r.commands_committed)
    true
    (r.commands_committed > 600);
  (* no duplicates on any honest chain (getPayload deduplication) *)
  List.iter
    (fun (_, chain) ->
      let ids =
        List.concat_map
          (fun (b : Icc_core.Block.t) ->
            List.map
              (fun c -> c.Icc_core.Types.cmd_id)
              b.Icc_core.Block.payload.Icc_core.Types.commands)
          chain
      in
      Alcotest.(check int) "no duplicate commands" (List.length ids)
        (List.length (List.sort_uniq compare ids)))
    r.outputs

let test_wan_delays () =
  let r =
    Icc_core.Runner.run
      {
        (base ~n:13 ~seed:21 ()) with
        t_corrupt = 4;
        delay = Icc_core.Runner.Wan { rtt_lo = 0.006; rtt_hi = 0.110 };
        delta_bnd = 1.0;
        epsilon = 0.3;
      }
  in
  check_invariants ~min_rounds:20 "wan n=13" r

let test_max_rounds_stops_early () =
  let r =
    Icc_core.Runner.run
      { (base ()) with duration = 1_000.; max_rounds = Some 10 }
  in
  Alcotest.(check bool) "stopped early" true (r.duration < 100.);
  Alcotest.(check bool) "reached target" true (r.rounds_decided >= 10)

let test_determinism () =
  let r1 = Icc_core.Runner.run (base ~seed:99 ())
  and r2 = Icc_core.Runner.run (base ~seed:99 ()) in
  Alcotest.(check int) "same rounds" r1.rounds_decided r2.rounds_decided;
  Alcotest.(check (float 1e-12)) "same latency" r1.mean_latency r2.mean_latency;
  Alcotest.(check int) "same traffic"
    (Icc_sim.Metrics.total_bytes r1.metrics)
    (Icc_sim.Metrics.total_bytes r2.metrics)

let test_message_complexity_synchronous () =
  (* synchronous, honest: expected O(n^2) messages per round — in fact about
     c*n^2 for a small c (beacon + shares + notarization + finalization) *)
  let r = Icc_core.Runner.run { (base ~n:7 ()) with t_corrupt = 2 } in
  let msgs = Icc_sim.Metrics.total_msgs r.metrics in
  let rounds = r.rounds_decided in
  let per_round = float_of_int msgs /. float_of_int rounds in
  let n2 = 49. in
  Alcotest.(check bool)
    (Printf.sprintf "per-round msgs %.0f within [n^2, 8 n^2]" per_round)
    true
    (per_round >= n2 && per_round <= 8. *. n2)

let prop_safety_under_random_adversaries =
  QCheck.Test.make ~name:"icc0 safety under random adversary mixes" ~count:8
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Icc_sim.Rng.create seed in
      let n = 4 + Icc_sim.Rng.int rng 4 in
      let t = Icc_crypto.Keygen.max_corrupt ~n in
      let corrupt =
        List.filteri (fun i _ -> i < t)
          (List.sort_uniq compare
             (List.init t (fun _ -> 1 + Icc_sim.Rng.int rng n)))
      in
      let behaviors, directives =
        List.fold_left
          (fun (bs, ds) id ->
            if Icc_sim.Rng.bool rng then ((id, Icc_core.Party.crashed) :: bs, ds)
            else (bs, Icc_sim.Adversary.equivocate ~noisy:true id :: ds))
          ([], []) corrupt
      in
      let r =
        Icc_core.Runner.run
          {
            (base ~n ~seed ()) with
            t_corrupt = t;
            behaviors;
            adversary = (match directives with [] -> None | ds -> Some ds);
            duration = 10.;
          }
      in
      r.safety_ok && r.p1_ok)

let suite =
  [
    Alcotest.test_case "honest liveness" `Quick test_honest_liveness;
    Alcotest.test_case "latency theory" `Quick test_latency_matches_theory;
    Alcotest.test_case "one crashed" `Quick test_one_crashed;
    Alcotest.test_case "equivocating leader" `Quick test_equivocating_leader_safety;
    Alcotest.test_case "equivocator + crash" `Quick test_equivocator_and_crash_together;
    Alcotest.test_case "stealthy equivocator" `Quick test_stealthy_equivocator;
    Alcotest.test_case "lazy participant" `Quick test_lazy_participant;
    Alcotest.test_case "async start recovers" `Quick test_asynchronous_start_recovers;
    Alcotest.test_case "mid-run crash" `Quick test_mid_run_crash_degrades_gracefully;
    Alcotest.test_case "optimistic responsiveness" `Quick test_optimistic_responsiveness;
    Alcotest.test_case "commands exactly once" `Quick test_commands_committed_exactly_once;
    Alcotest.test_case "wan delays" `Quick test_wan_delays;
    Alcotest.test_case "max rounds stop" `Quick test_max_rounds_stops_early;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "message complexity" `Quick test_message_complexity_synchronous;
    QCheck_alcotest.to_alcotest prop_safety_under_random_adversaries;
  ]
