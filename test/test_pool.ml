(* Pool admission and classification tests (the paper's §3.4 predicates). *)

let kit = Kit.make ~n:4 ~t:1 ()

let key b = (b.Icc_core.Block.round, Icc_core.Block.hash b)

let test_block_without_authenticator_not_valid () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let b = Kit.block ~round:1 ~proposer:1 ~parent:None () in
  Alcotest.(check bool) "added" true (Icc_core.Pool.add_block pool b);
  Alcotest.(check bool) "re-add is no-op" false (Icc_core.Pool.add_block pool b);
  Alcotest.(check bool) "not valid" false (Icc_core.Pool.is_valid pool (key b))

let test_authenticated_round1_block_valid () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let b = Kit.block ~round:1 ~proposer:1 ~parent:None () in
  ignore (Icc_core.Pool.add_block pool b);
  Alcotest.(check bool) "auth accepted" true
    (Icc_core.Pool.add_authenticator pool ~round:1 ~proposer:1
       ~block_hash:(Icc_core.Block.hash b) (Kit.authenticator kit b));
  Alcotest.(check bool) "valid now" true (Icc_core.Pool.is_valid pool (key b));
  Alcotest.(check bool) "not notarized" false
    (Icc_core.Pool.is_notarized pool (key b))

let test_forged_authenticator_rejected () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let b = Kit.block ~round:1 ~proposer:1 ~parent:None () in
  ignore (Icc_core.Pool.add_block pool b);
  (* signature by party 2 claiming party 1's block *)
  let forged =
    Icc_crypto.Schnorr.sign
      (Kit.key kit 2).Icc_crypto.Keygen.auth
      (Icc_core.Types.authenticator_text ~round:1 ~proposer:1
         ~block_hash:(Icc_core.Block.hash b))
  in
  Alcotest.(check bool) "rejected" false
    (Icc_core.Pool.add_authenticator pool ~round:1 ~proposer:1
       ~block_hash:(Icc_core.Block.hash b) forged);
  Alcotest.(check bool) "still not valid" false
    (Icc_core.Pool.is_valid pool (key b))

let test_validity_requires_notarized_parent () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let b1 = Kit.block ~round:1 ~proposer:1 ~parent:None () in
  let b2 = Kit.block ~round:2 ~proposer:2 ~parent:(Some b1) () in
  (* admit child first: orphan until the parent is notarized *)
  ignore (Icc_core.Pool.add_block pool b2);
  ignore
    (Icc_core.Pool.add_authenticator pool ~round:2 ~proposer:2
       ~block_hash:(Icc_core.Block.hash b2) (Kit.authenticator kit b2));
  Alcotest.(check bool) "orphan not valid" false
    (Icc_core.Pool.is_valid pool (key b2));
  (* now bring the parent with a full certificate: cascade must fire *)
  Kit.admit_notarized kit pool b1;
  Alcotest.(check bool) "parent notarized" true
    (Icc_core.Pool.is_notarized pool (key b1));
  Alcotest.(check bool) "child promoted" true
    (Icc_core.Pool.is_valid pool (key b2))

let test_notarization_share_accumulation () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let b = Kit.block ~round:1 ~proposer:1 ~parent:None () in
  ignore (Icc_core.Pool.add_block pool b);
  ignore
    (Icc_core.Pool.add_authenticator pool ~round:1 ~proposer:1
       ~block_hash:(Icc_core.Block.hash b) (Kit.authenticator kit b));
  Alcotest.(check bool) "share 1" true
    (Icc_core.Pool.add_notarization_share pool (Kit.notarization_share kit ~signer:1 b));
  Alcotest.(check bool) "duplicate signer dropped" false
    (Icc_core.Pool.add_notarization_share pool (Kit.notarization_share kit ~signer:1 b));
  ignore (Icc_core.Pool.add_notarization_share pool (Kit.notarization_share kit ~signer:2 b));
  ignore (Icc_core.Pool.add_notarization_share pool (Kit.notarization_share kit ~signer:3 b));
  Alcotest.(check int) "3 distinct" 3
    (Icc_core.Pool.notar_share_count pool (key b));
  (* n - t = 3 shares: completion must report a combinable block *)
  match Icc_core.Pool.round_completion pool 1 with
  | Some (Icc_core.Pool.Combinable (b', shares)) ->
      Alcotest.(check bool) "same block" true
        (Icc_crypto.Sha256.equal (Icc_core.Block.hash b') (Icc_core.Block.hash b));
      Alcotest.(check int) "3 shares" 3 (List.length shares)
  | Some (Icc_core.Pool.Already_notarized _) -> Alcotest.fail "not yet notarized"
  | None -> Alcotest.fail "completion missing"

let test_round_completion_prefers_notarized () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let b = Kit.block ~round:1 ~proposer:1 ~parent:None () in
  Kit.admit_notarized kit pool b;
  match Icc_core.Pool.round_completion pool 1 with
  | Some (Icc_core.Pool.Already_notarized (b', _)) ->
      Alcotest.(check bool) "same block" true
        (Icc_crypto.Sha256.equal (Icc_core.Block.hash b') (Icc_core.Block.hash b))
  | _ -> Alcotest.fail "expected notarized completion"

let test_invalid_share_rejected () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let b = Kit.block ~round:1 ~proposer:1 ~parent:None () in
  ignore (Icc_core.Pool.add_block pool b);
  let share = Kit.notarization_share kit ~signer:1 b in
  let tampered =
    {
      share with
      Icc_core.Types.s_share =
        {
          share.Icc_core.Types.s_share with
          Icc_crypto.Multisig.signer = 2 (* signature won't match signer 2 *);
        };
    }
  in
  Alcotest.(check bool) "tampered rejected" false
    (Icc_core.Pool.add_notarization_share pool tampered)

let test_finalization_flow () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let b1 = Kit.block ~round:1 ~proposer:1 ~parent:None () in
  Kit.admit_notarized kit pool b1;
  Alcotest.(check bool) "not finalized" false
    (Icc_core.Pool.is_finalized pool (key b1));
  (* finalization shares accumulate to a full set *)
  ignore (Icc_core.Pool.add_finalization_share pool (Kit.finalization_share kit ~signer:1 b1));
  ignore (Icc_core.Pool.add_finalization_share pool (Kit.finalization_share kit ~signer:2 b1));
  ignore (Icc_core.Pool.add_finalization_share pool (Kit.finalization_share kit ~signer:4 b1));
  (match Icc_core.Pool.finalization_step pool ~kmax:0 with
  | Some (Icc_core.Pool.Final_combinable (b', shares)) ->
      Alcotest.(check bool) "same block" true
        (Icc_crypto.Sha256.equal (Icc_core.Block.hash b') (Icc_core.Block.hash b1));
      Alcotest.(check int) "3 shares" 3 (List.length shares)
  | _ -> Alcotest.fail "expected combinable finalization");
  (* a certificate flips it to finalized *)
  ignore (Icc_core.Pool.add_finalization pool (Kit.finalization kit b1 [ 1; 2; 4 ]));
  Alcotest.(check bool) "finalized" true (Icc_core.Pool.is_finalized pool (key b1));
  (match Icc_core.Pool.finalization_step pool ~kmax:0 with
  | Some (Icc_core.Pool.Final_cert _) -> ()
  | _ -> Alcotest.fail "expected cert finalization");
  Alcotest.(check bool) "kmax filter" true
    (Icc_core.Pool.finalization_step pool ~kmax:1 = None)

let test_root_is_notarized_and_finalized () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  Alcotest.(check bool) "root notarized" true
    (Icc_core.Pool.is_notarized pool (0, Icc_core.Block.root_hash));
  Alcotest.(check bool) "root finalized" true
    (Icc_core.Pool.is_finalized pool (0, Icc_core.Block.root_hash))

let test_beacon_share_dedup () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let msg = Icc_core.Types.beacon_text ~round:1 ~prev_sigma:Icc_core.Types.beacon_genesis in
  let share =
    Icc_crypto.Threshold_vuf.sign_share kit.Kit.system.Icc_crypto.Keygen.beacon
      (Kit.key kit 1).Icc_crypto.Keygen.beacon_key msg
  in
  Alcotest.(check bool) "added" true (Icc_core.Pool.add_beacon_share pool ~round:1 share);
  Alcotest.(check bool) "dup dropped" false
    (Icc_core.Pool.add_beacon_share pool ~round:1 share);
  Alcotest.(check int) "one share" 1
    (List.length (Icc_core.Pool.beacon_shares pool 1))

(* --- beacon-share spoofing regression ----------------------------------

   Before the fix, [add_beacon_share] deduplicated purely by signer: a
   spoofed share under an honest signer's id occupied the slot, the later
   genuine share was dropped as a "duplicate", and [Beacon.try_compute]
   could starve (liveness) on garbage shares it had no way to evict. *)

let beacon_round1_msg =
  Icc_core.Types.beacon_text ~round:1 ~prev_sigma:Icc_core.Types.beacon_genesis

let beacon_share signer =
  Icc_crypto.Threshold_vuf.sign_share kit.Kit.system.Icc_crypto.Keygen.beacon
    (Kit.key kit signer).Icc_crypto.Keygen.beacon_key beacon_round1_msg

(* A syntactically well-formed share under [signer]'s id that does not
   verify for round 1: signed over a different round's text. *)
let spoofed_share signer =
  Icc_crypto.Threshold_vuf.sign_share kit.Kit.system.Icc_crypto.Keygen.beacon
    (Kit.key kit signer).Icc_crypto.Keygen.beacon_key
    (Icc_core.Types.beacon_text ~round:9
       ~prev_sigma:Icc_core.Types.beacon_genesis)

let beacon_verify share =
  Icc_crypto.Threshold_vuf.verify_share kit.Kit.system.Icc_crypto.Keygen.beacon
    beacon_round1_msg share

let test_spoofed_beacon_share_rejected_at_admission () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  Alcotest.(check bool) "spoof rejected" false
    (Icc_core.Pool.add_beacon_share pool ~round:1 ~verify:beacon_verify
       (spoofed_share 1));
  Alcotest.(check int) "nothing admitted" 0
    (List.length (Icc_core.Pool.beacon_shares pool 1));
  (* the genuine share under the same signer id still gets in *)
  Alcotest.(check bool) "real share admitted" true
    (Icc_core.Pool.add_beacon_share pool ~round:1 ~verify:beacon_verify
       (beacon_share 1))

let test_spoofed_occupant_evicted_by_verifying_newcomer () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  (* previous beacon unknown yet: the spoof is admitted unverified *)
  Alcotest.(check bool) "spoof admitted unverified" true
    (Icc_core.Pool.add_beacon_share pool ~round:1 (spoofed_share 1));
  (* old code: the genuine retransmission would be dropped as a duplicate
     here, permanently wedging the round's beacon on the spoofed share *)
  Alcotest.(check bool) "real share evicts the spoof" true
    (Icc_core.Pool.add_beacon_share pool ~round:1 ~verify:beacon_verify
       (beacon_share 1));
  Alcotest.(check int) "one slot for the signer" 1
    (List.length (Icc_core.Pool.beacon_shares pool 1));
  Alcotest.(check bool) "slot holds the verifying share" true
    (List.for_all beacon_verify (Icc_core.Pool.beacon_shares pool 1))

let test_verified_beacon_shares_evicts_failures () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  ignore (Icc_core.Pool.add_beacon_share pool ~round:1 (spoofed_share 1));
  ignore (Icc_core.Pool.add_beacon_share pool ~round:1 (beacon_share 2));
  let good =
    Icc_core.Pool.verified_beacon_shares pool ~round:1 ~verify:beacon_verify
  in
  Alcotest.(check int) "only the genuine share survives" 1 (List.length good);
  (* the spoofed slot was evicted, so the genuine retransmission refills it
     even without a verifier *)
  Alcotest.(check bool) "slot refillable after eviction" true
    (Icc_core.Pool.add_beacon_share pool ~round:1 (beacon_share 1));
  Alcotest.(check int) "t+1 shares present" 2
    (List.length (Icc_core.Pool.beacon_shares pool 1))

(* --- prune sweeps every per-round table --------------------------------

   A 200-round run with periodic pruning, salted with orphan artifacts
   (shares and beacon shares for blocks that never arrive) which earlier
   prune implementations leaked.  Every internal table must stay bounded
   by the retained window, independent of the run length. *)
let test_prune_keeps_all_tables_bounded () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let depth = 8 in
  let parent = ref None in
  for r = 1 to 200 do
    let b = Kit.block ~round:r ~proposer:((r mod 4) + 1) ~parent:!parent () in
    Kit.admit_notarized kit pool b;
    ignore
      (Icc_core.Pool.add_finalization_share pool
         (Kit.finalization_share kit ~signer:1 b));
    ignore (Icc_core.Pool.add_finalization pool (Kit.finalization kit b [ 1; 2; 3 ]));
    (* orphan notarization share: its block never arrives *)
    let phantom =
      Kit.block ~round:r ~proposer:(((r + 1) mod 4) + 1) ~parent:!parent ()
    in
    ignore
      (Icc_core.Pool.add_notarization_share pool
         (Kit.notarization_share kit ~signer:2 phantom));
    (* unverifiable pipelined beacon share for the round *)
    ignore
      (Icc_core.Pool.add_beacon_share pool ~round:r
         (Icc_crypto.Threshold_vuf.sign_share
            kit.Kit.system.Icc_crypto.Keygen.beacon
            (Kit.key kit ((r mod 4) + 1)).Icc_crypto.Keygen.beacon_key
            (Icc_core.Types.beacon_text ~round:r
               ~prev_sigma:Icc_core.Types.beacon_genesis)));
    parent := Some b;
    if r mod 4 = 0 then Icc_core.Pool.prune pool ~below:(r - depth)
  done;
  (* <= 12 live rounds, a handful of entries per round per table *)
  let bound = 80 in
  List.iter
    (fun (name, size) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s bounded (%d <= %d)" name size bound)
        true (size <= bound))
    (Icc_core.Pool.table_sizes pool);
  Alcotest.(check bool)
    (Printf.sprintf "stored blocks bounded (%d)" (Icc_core.Pool.stored_blocks pool))
    true
    (Icc_core.Pool.stored_blocks pool <= bound);
  (* admissions below the horizon are rejected, not resurrected *)
  let stale = Kit.block ~round:100 ~proposer:1 ~parent:None () in
  Alcotest.(check bool) "below-horizon block rejected" false
    (Icc_core.Pool.add_block pool stale)

(* --- large-n slot ring stays bounded, caches stay fresh ----------------

   Regression for the slot-ring pool at committee sizes in the hundreds:
   the ring and every per-slot structure must stay bounded by the retained
   round window (never by run length or by n²), and the per-slot epoch
   caches must be invalidated by admissions — a stale cache would freeze a
   round's valid/notarized views the moment they were first queried. *)
let test_large_n_bounded_and_caches_invalidated () =
  let n = 200 in
  let big = Kit.make ~n ~t:66 () in
  let pool = Icc_core.Pool.create big.Kit.system in
  let depth = 8 in
  let parent = ref None in
  for r = 1 to 200 do
    let b = Kit.block ~round:r ~proposer:((r mod n) + 1) ~parent:!parent () in
    (* populate the caches first, then check admissions refresh them *)
    Alcotest.(check int)
      (Printf.sprintf "round %d starts empty" r)
      0
      (List.length (Icc_core.Pool.valid_blocks pool r));
    Kit.admit_notarized big pool b;
    Alcotest.(check int)
      (Printf.sprintf "round %d valid view refreshed by admission" r)
      1
      (List.length (Icc_core.Pool.valid_blocks pool r));
    Alcotest.(check bool)
      (Printf.sprintf "round %d notarized view refreshed" r)
      true
      (Icc_core.Pool.notarized_blocks pool r <> []);
    (* orphan share salt from the top of the signer id range *)
    let phantom =
      Kit.block ~round:r ~proposer:(((r + 7) mod n) + 1) ~parent:!parent ()
    in
    ignore
      (Icc_core.Pool.add_notarization_share pool
         (Kit.notarization_share big ~signer:n phantom));
    parent := Some b;
    if r mod 4 = 0 then Icc_core.Pool.prune pool ~below:(r - depth)
  done;
  let bound = 80 in
  List.iter
    (fun (name, size) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s bounded (%d <= %d)" name size bound)
        true (size <= bound))
    (Icc_core.Pool.table_sizes pool)

let test_chain_walk () =
  let pool = Icc_core.Pool.create kit.Kit.system in
  let b1 = Kit.block ~round:1 ~proposer:1 ~parent:None () in
  let b2 = Kit.block ~round:2 ~proposer:2 ~parent:(Some b1) () in
  let b3 = Kit.block ~round:3 ~proposer:3 ~parent:(Some b2) () in
  Kit.admit_notarized kit pool b1;
  Kit.admit_notarized kit pool b2;
  Kit.admit_notarized kit pool b3;
  let chain = Icc_core.Chain.to_root pool b3 in
  Alcotest.(check (list int)) "rounds in order" [ 1; 2; 3 ]
    (List.map (fun b -> b.Icc_core.Block.round) chain);
  let seg = Icc_core.Chain.segment pool b3 ~from_round:1 in
  Alcotest.(check (list int)) "segment (1,3]" [ 2; 3 ]
    (List.map (fun b -> b.Icc_core.Block.round) seg)

let suite =
  [
    Alcotest.test_case "unauthenticated not valid" `Quick
      test_block_without_authenticator_not_valid;
    Alcotest.test_case "authenticated valid" `Quick
      test_authenticated_round1_block_valid;
    Alcotest.test_case "forged authenticator" `Quick
      test_forged_authenticator_rejected;
    Alcotest.test_case "parent notarization cascade" `Quick
      test_validity_requires_notarized_parent;
    Alcotest.test_case "share accumulation" `Quick
      test_notarization_share_accumulation;
    Alcotest.test_case "completion prefers notarized" `Quick
      test_round_completion_prefers_notarized;
    Alcotest.test_case "invalid share rejected" `Quick test_invalid_share_rejected;
    Alcotest.test_case "finalization flow" `Quick test_finalization_flow;
    Alcotest.test_case "root status" `Quick test_root_is_notarized_and_finalized;
    Alcotest.test_case "beacon share dedup" `Quick test_beacon_share_dedup;
    Alcotest.test_case "spoofed beacon share rejected" `Quick
      test_spoofed_beacon_share_rejected_at_admission;
    Alcotest.test_case "spoofed occupant evicted" `Quick
      test_spoofed_occupant_evicted_by_verifying_newcomer;
    Alcotest.test_case "verified_beacon_shares evicts failures" `Quick
      test_verified_beacon_shares_evicts_failures;
    Alcotest.test_case "prune keeps tables bounded" `Quick
      test_prune_keeps_all_tables_bounded;
    Alcotest.test_case "large-n ring bounded, caches invalidated" `Quick
      test_large_n_bounded_and_caches_invalidated;
    Alcotest.test_case "chain walk" `Quick test_chain_walk;
  ]
