(* Tests for the Schnorr group and its hash-to-group/scalar maps. *)

let rng = Icc_sim.Rng.create 0xfeed
let rand_bits () = Icc_sim.Rng.bits61 rng

let test_generator_order () =
  Alcotest.(check int) "g^q = 1" 1
    (Icc_crypto.Fp.pow Icc_crypto.Group.generator Icc_crypto.Group.q
       Icc_crypto.Group.p);
  Alcotest.(check bool) "g != 1" true (Icc_crypto.Group.generator <> 1)

let test_hash_to_group_lands_in_subgroup () =
  for i = 0 to 99 do
    let e =
      Icc_crypto.Group.hash_to_group
        (Icc_crypto.Sha256.digest_string (string_of_int i))
    in
    Alcotest.(check bool)
      (Printf.sprintf "h2g %d in subgroup" i)
      true
      (Icc_crypto.Group.is_element e)
  done

let test_pow_reduces_exponent () =
  let e = Icc_sim.Rng.bits61 rng in
  Alcotest.(check int) "pow mod q"
    (Icc_crypto.Group.pow Icc_crypto.Group.generator e)
    (Icc_crypto.Group.pow Icc_crypto.Group.generator (e mod Icc_crypto.Group.q))

let prop_mul_assoc =
  let arb_elt =
    QCheck.map
      (fun x -> Icc_crypto.Group.base_pow (abs x))
      QCheck.(int_bound 1_000_000_000)
  in
  QCheck.Test.make ~name:"group mul associative" ~count:100
    (QCheck.triple arb_elt arb_elt arb_elt) (fun (a, b, c) ->
      Icc_crypto.Group.mul (Icc_crypto.Group.mul a b) c
      = Icc_crypto.Group.mul a (Icc_crypto.Group.mul b c))

let prop_elt_inv =
  let arb_elt =
    QCheck.map
      (fun x -> Icc_crypto.Group.base_pow (1 + abs x))
      QCheck.(int_bound 1_000_000_000)
  in
  QCheck.Test.make ~name:"group inverse" ~count:100 arb_elt (fun a ->
      Icc_crypto.Group.mul a (Icc_crypto.Group.elt_inv a) = Icc_crypto.Group.one)

(* Fixed-base windowed exponentiation must agree with square-and-multiply
   for every (base, exponent) pair, with the table cache either hot or
   disabled. *)
let prop_pow_cached_matches_pow =
  let arb_elt =
    QCheck.map
      (fun x -> Icc_crypto.Group.base_pow (abs x))
      QCheck.(int_bound 1_000_000_000)
  in
  QCheck.Test.make ~name:"pow_cached = pow" ~count:200
    (QCheck.pair arb_elt QCheck.int) (fun (base, e) ->
      let e = abs e in
      let windowed = Icc_crypto.Group.pow_cached base e in
      Icc_crypto.Group.set_fixed_base false;
      let generic = Icc_crypto.Group.pow_cached base e in
      Icc_crypto.Group.set_fixed_base true;
      windowed = Icc_crypto.Group.pow base e && generic = windowed)

let test_base_pow_uses_generator () =
  Alcotest.(check bool) "fixed base on by default" true
    (Icc_crypto.Group.fixed_base_enabled ());
  for _ = 1 to 50 do
    let e = Icc_sim.Rng.bits61 rng in
    Alcotest.(check int) "base_pow = pow g"
      (Icc_crypto.Group.pow Icc_crypto.Group.generator e)
      (Icc_crypto.Group.base_pow e)
  done;
  (* edge exponents around the subgroup order *)
  List.iter
    (fun e ->
      Alcotest.(check int)
        (Printf.sprintf "base_pow %d" e)
        (Icc_crypto.Group.pow Icc_crypto.Group.generator e)
        (Icc_crypto.Group.base_pow e))
    [ 0; 1; Icc_crypto.Group.q - 1; Icc_crypto.Group.q; Icc_crypto.Group.q + 1 ]

let prop_random_scalar_in_range =
  QCheck.Test.make ~name:"random scalars in range" ~count:100 QCheck.unit
    (fun () ->
      let s = Icc_crypto.Group.random_scalar rand_bits in
      s >= 0 && s < Icc_crypto.Group.q)

let suite =
  [
    Alcotest.test_case "generator order" `Quick test_generator_order;
    Alcotest.test_case "hash-to-group subgroup" `Quick
      test_hash_to_group_lands_in_subgroup;
    Alcotest.test_case "pow reduces exponent" `Quick test_pow_reduces_exponent;
    QCheck_alcotest.to_alcotest prop_mul_assoc;
    QCheck_alcotest.to_alcotest prop_elt_inv;
    QCheck_alcotest.to_alcotest prop_random_scalar_in_range;
    QCheck_alcotest.to_alcotest prop_pow_cached_matches_pow;
    Alcotest.test_case "base_pow vs generator pow" `Quick
      test_base_pow_uses_generator;
  ]
