(* Gossip sub-layer and Protocol ICC1 tests. *)

let base ?(n = 7) ?(seed = 31) () =
  {
    (Icc_core.Runner.default_scenario ~n ~seed) with
    Icc_core.Runner.duration = 20.;
    delay = Icc_core.Runner.Fixed_delay 0.02;
    epsilon = 0.25;
    delta_bnd = 0.5;
    t_corrupt = Icc_crypto.Keygen.max_corrupt ~n;
  }

let test_peer_graph_connected () =
  List.iter
    (fun (n, fanout) ->
      let rng = Icc_sim.Rng.create (n * 100 + fanout) in
      let adj = Icc_gossip.Gossip.build_peer_graph rng ~n ~fanout in
      (* BFS from node 1 *)
      let seen = Array.make (n + 1) false in
      let queue = Queue.create () in
      Queue.add 1 queue;
      seen.(1) <- true;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        List.iter
          (fun w ->
            if not seen.(w) then begin
              seen.(w) <- true;
              Queue.add w queue
            end)
          adj.(v)
      done;
      for i = 1 to n do
        Alcotest.(check bool)
          (Printf.sprintf "n=%d fanout=%d node %d reachable" n fanout i)
          true seen.(i)
      done;
      (* degree at least the ring's 2 *)
      for i = 1 to n do
        Alcotest.(check bool) "degree >= 2" true (List.length adj.(i) >= 2)
      done)
    [ (4, 3); (13, 4); (40, 4); (40, 6) ]

let test_icc1_liveness_and_safety () =
  let r = Icc_gossip.Icc1.run ~fanout:4 (base ()) in
  Alcotest.(check bool) "safety" true r.Icc_core.Runner.safety_ok;
  Alcotest.(check bool) "p1" true r.Icc_core.Runner.p1_ok;
  Alcotest.(check bool)
    (Printf.sprintf "liveness (%d rounds)" r.Icc_core.Runner.rounds_decided)
    true
    (r.Icc_core.Runner.rounds_decided >= 30)

let test_icc1_crash_tolerance () =
  let r =
    Icc_gossip.Icc1.run ~fanout:4
      {
        (base ()) with
        behaviors =
          [ (2, Icc_core.Party.crashed); (5, Icc_core.Party.crashed) ];
      }
  in
  Alcotest.(check bool) "safety" true r.Icc_core.Runner.safety_ok;
  Alcotest.(check bool)
    (Printf.sprintf "liveness (%d rounds)" r.Icc_core.Runner.rounds_decided)
    true
    (r.Icc_core.Runner.rounds_decided >= 10)

let test_icc1_equivocator_safety () =
  let r =
    Icc_gossip.Icc1.run ~fanout:4
      {
        (base ()) with
        adversary = Some [ Icc_sim.Adversary.equivocate ~noisy:true 3 ];
      }
  in
  Alcotest.(check bool) "safety" true r.Icc_core.Runner.safety_ok;
  Alcotest.(check bool) "liveness" true (r.Icc_core.Runner.rounds_decided >= 10)

let test_icc1_reduces_leader_bottleneck () =
  (* 200 KB blocks: the ICC0 proposer unicasts n-1 copies; under gossip each
     party forwards to at most fanout peers.  Max per-party traffic must
     drop substantially. *)
  let big =
    {
      (base ~n:13 ()) with
      Icc_core.Runner.workload = Icc_core.Runner.Fixed_block_size 200_000;
      duration = 15.;
    }
  in
  let direct = Icc_core.Runner.run big in
  let gossip = Icc_gossip.Icc1.run ~fanout:4 big in
  let d = Icc_sim.Metrics.max_bytes_per_party direct.Icc_core.Runner.metrics in
  let g = Icc_sim.Metrics.max_bytes_per_party gossip.Icc_core.Runner.metrics in
  Alcotest.(check bool)
    (Printf.sprintf "gossip max %d < 0.5 * direct max %d" g d)
    true
    (float_of_int g < 0.5 *. float_of_int d)

let test_icc1_latency_overhead () =
  (* gossip spreads blocks over multiple hops: ICC1 latency must exceed
     ICC0's, but stay bounded (within a few hops) *)
  let sc = base () in
  let r0 = Icc_core.Runner.run sc in
  let r1 = Icc_gossip.Icc1.run ~fanout:4 sc in
  Alcotest.(check bool)
    (Printf.sprintf "icc1 %.3f >= icc0 %.3f" r1.Icc_core.Runner.mean_latency
       r0.Icc_core.Runner.mean_latency)
    true
    (r1.Icc_core.Runner.mean_latency >= r0.Icc_core.Runner.mean_latency -. 1e-9);
  Alcotest.(check bool) "bounded" true
    (r1.Icc_core.Runner.mean_latency
    < r0.Icc_core.Runner.mean_latency +. (6. *. 0.02))

let test_gossip_determinism () =
  let r1 = Icc_gossip.Icc1.run ~fanout:4 (base ~seed:77 ()) in
  let r2 = Icc_gossip.Icc1.run ~fanout:4 (base ~seed:77 ()) in
  Alcotest.(check int) "same rounds" r1.Icc_core.Runner.rounds_decided
    r2.Icc_core.Runner.rounds_decided;
  Alcotest.(check int) "same traffic"
    (Icc_sim.Metrics.total_bytes r1.Icc_core.Runner.metrics)
    (Icc_sim.Metrics.total_bytes r2.Icc_core.Runner.metrics)

let suite =
  [
    Alcotest.test_case "peer graph connected" `Quick test_peer_graph_connected;
    Alcotest.test_case "icc1 liveness+safety" `Quick test_icc1_liveness_and_safety;
    Alcotest.test_case "icc1 crash tolerance" `Quick test_icc1_crash_tolerance;
    Alcotest.test_case "icc1 equivocator" `Quick test_icc1_equivocator_safety;
    Alcotest.test_case "icc1 leader bottleneck" `Quick
      test_icc1_reduces_leader_bottleneck;
    Alcotest.test_case "icc1 latency overhead" `Quick test_icc1_latency_overhead;
    Alcotest.test_case "icc1 determinism" `Quick test_gossip_determinism;
  ]
