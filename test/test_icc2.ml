(* Erasure-coded reliable broadcast and Protocol ICC2 tests. *)

let base ?(n = 7) ?(seed = 41) () =
  {
    (Icc_core.Runner.default_scenario ~n ~seed) with
    Icc_core.Runner.duration = 20.;
    delay = Icc_core.Runner.Fixed_delay 0.02;
    epsilon = 0.25;
    delta_bnd = 0.5;
    t_corrupt = Icc_crypto.Keygen.max_corrupt ~n;
  }

let test_icc2_liveness_and_safety () =
  let r = Icc_rbc.Icc2.run (base ()) in
  Alcotest.(check bool) "safety" true r.Icc_core.Runner.safety_ok;
  Alcotest.(check bool) "p1" true r.Icc_core.Runner.p1_ok;
  Alcotest.(check bool)
    (Printf.sprintf "liveness (%d rounds)" r.Icc_core.Runner.rounds_decided)
    true
    (r.Icc_core.Runner.rounds_decided >= 30)

let test_icc2_crash_tolerance () =
  (* t = 2 crashed parties of 7: reconstruction still needs only t+1 = 3
     fragments, supplied by the 5 live parties' echoes *)
  let r =
    Icc_rbc.Icc2.run
      {
        (base ()) with
        behaviors =
          [ (1, Icc_core.Party.crashed); (4, Icc_core.Party.crashed) ];
      }
  in
  Alcotest.(check bool) "safety" true r.Icc_core.Runner.safety_ok;
  Alcotest.(check bool)
    (Printf.sprintf "liveness (%d rounds)" r.Icc_core.Runner.rounds_decided)
    true
    (r.Icc_core.Runner.rounds_decided >= 10)

let test_icc2_equivocator_safety () =
  List.iter
    (fun seed ->
      let r =
        Icc_rbc.Icc2.run
          {
            (base ~seed ()) with
            adversary = Some [ Icc_sim.Adversary.equivocate ~noisy:true 2 ];
          }
      in
      Alcotest.(check bool) "safety" true r.Icc_core.Runner.safety_ok;
      Alcotest.(check bool) "liveness" true
        (r.Icc_core.Runner.rounds_decided >= 10))
    [ 1; 2; 3 ]

let test_icc2_per_party_traffic_linear_in_block_size () =
  (* the headline ICC2 bound: per-party bits O(S).  The proposer's cost must
     not be ~n*S as in ICC0; compare max-party traffic at 500 KB blocks. *)
  let big =
    {
      (base ~n:10 ()) with
      Icc_core.Runner.workload = Icc_core.Runner.Fixed_block_size 500_000;
      duration = 12.;
    }
  in
  let direct = Icc_core.Runner.run big in
  let rbc = Icc_rbc.Icc2.run big in
  let d = Icc_sim.Metrics.max_bytes_per_party direct.Icc_core.Runner.metrics in
  let r = Icc_sim.Metrics.max_bytes_per_party rbc.Icc_core.Runner.metrics in
  Alcotest.(check bool)
    (Printf.sprintf "rbc max %d < 0.7 * direct max %d" r d)
    true
    (float_of_int r < 0.7 *. float_of_int d)

let test_icc2_throughput_latency_shape () =
  (* with epsilon ~ 0 the extra echo hop shows: ICC2 rounds take ~3 delta
     versus ICC0's ~2 delta, latencies ~4 delta vs ~3 delta *)
  let fast =
    {
      (base ()) with
      Icc_core.Runner.delay = Icc_core.Runner.Fixed_delay 0.05;
      epsilon = 0.001;
      delta_bnd = 0.2;
      duration = 30.;
    }
  in
  let r0 = Icc_core.Runner.run fast in
  let r2 = Icc_rbc.Icc2.run fast in
  let lat0 = r0.Icc_core.Runner.mean_latency
  and lat2 = r2.Icc_core.Runner.mean_latency in
  Alcotest.(check bool)
    (Printf.sprintf "icc0 latency ~3d (%.3f)" lat0)
    true
    (lat0 > 0.10 && lat0 < 0.20);
  Alcotest.(check bool)
    (Printf.sprintf "icc2 latency ~4d (%.3f)" lat2)
    true
    (lat2 > lat0 +. 0.03 && lat2 < lat0 +. 0.10);
  Alcotest.(check bool)
    (Printf.sprintf "icc2 throughput below icc0 (%d vs %d rounds)"
       r2.Icc_core.Runner.rounds_decided r0.Icc_core.Runner.rounds_decided)
    true
    (r2.Icc_core.Runner.rounds_decided < r0.Icc_core.Runner.rounds_decided)

let test_rbc_marshalling_roundtrip () =
  let kit = Kit.make ~n:4 ~t:1 ()
  and payload =
    {
      Icc_core.Types.commands =
        [ Icc_core.Types.command ~tag:"set|a|b" ~cmd_id:7 ~cmd_size:64
            ~submitted_at:1.5 () ];
      filler_size = 33;
    }
  in
  let block = Kit.block ~payload ~round:1 ~proposer:2 ~parent:None () in
  let msg =
    Icc_core.Message.Proposal
      {
        p_block = block;
        p_authenticator = Kit.authenticator kit block;
        p_parent_cert = None;
      }
  in
  match Icc_rbc.Rbc.deserialize (Icc_rbc.Rbc.serialize msg) with
  | Some (Icc_core.Message.Proposal p) ->
      Alcotest.(check bool) "same block hash" true
        (Icc_crypto.Sha256.equal
           (Icc_core.Block.hash p.Icc_core.Message.p_block)
           (Icc_core.Block.hash block))
  | _ -> Alcotest.fail "roundtrip failed"

let test_icc2_determinism () =
  let r1 = Icc_rbc.Icc2.run (base ~seed:55 ()) in
  let r2 = Icc_rbc.Icc2.run (base ~seed:55 ()) in
  Alcotest.(check int) "same rounds" r1.Icc_core.Runner.rounds_decided
    r2.Icc_core.Runner.rounds_decided;
  Alcotest.(check int) "same traffic"
    (Icc_sim.Metrics.total_bytes r1.Icc_core.Runner.metrics)
    (Icc_sim.Metrics.total_bytes r2.Icc_core.Runner.metrics)

let suite =
  [
    Alcotest.test_case "icc2 liveness+safety" `Quick test_icc2_liveness_and_safety;
    Alcotest.test_case "icc2 crash tolerance" `Quick test_icc2_crash_tolerance;
    Alcotest.test_case "icc2 equivocator" `Quick test_icc2_equivocator_safety;
    Alcotest.test_case "icc2 per-party traffic" `Quick
      test_icc2_per_party_traffic_linear_in_block_size;
    Alcotest.test_case "icc2 throughput/latency" `Quick
      test_icc2_throughput_latency_shape;
    Alcotest.test_case "rbc serialize roundtrip" `Quick test_rbc_marshalling_roundtrip;
    Alcotest.test_case "icc2 determinism" `Quick test_icc2_determinism;
  ]
