(* Trace bus tests: subscription semantics, core/detail filtering, the
   Metrics consumer, percentile edge cases, JSONL shape, and the
   traced-vs-untraced determinism guarantee across ICC0/1/2. *)

let ev_send ?(src = 1) ?(dst = 2) ?(size = 100) ?(kind = "blk") () =
  Icc_sim.Trace.Net_send { src; dst; kind; size; copies = 1 }

let ev_detail () =
  Icc_sim.Trace.Gossip_publish { party = 1; artifact = "prop|1|aa" }

(* -------------------------------------------------- bus semantics *)

let test_no_sink_inactive () =
  let tr = Icc_sim.Trace.create () in
  Alcotest.(check bool) "inactive" false (Icc_sim.Trace.active tr);
  Alcotest.(check bool) "not detailed" false (Icc_sim.Trace.detailed tr);
  (* emitting with no sink is a no-op, not an error *)
  Icc_sim.Trace.emit tr ~time:0. (ev_send ())

let test_subscription_order () =
  let tr = Icc_sim.Trace.create () in
  let log = ref [] in
  Icc_sim.Trace.subscribe tr (fun ~time:_ _ -> log := "a" :: !log);
  Icc_sim.Trace.subscribe tr (fun ~time:_ _ -> log := "b" :: !log);
  Icc_sim.Trace.emit tr ~time:1. (ev_send ());
  Alcotest.(check (list string)) "sinks fire in subscription order"
    [ "a"; "b" ] (List.rev !log)

let test_event_order_and_time () =
  let tr = Icc_sim.Trace.create () in
  let seen = ref [] in
  Icc_sim.Trace.subscribe tr (fun ~time ev ->
      seen := (time, Icc_sim.Trace.kind_of ev) :: !seen);
  Icc_sim.Trace.emit tr ~time:0. (Icc_sim.Trace.Run_start { n = 4; label = "x" });
  Icc_sim.Trace.emit tr ~time:1.5 (ev_send ());
  Icc_sim.Trace.emit tr ~time:2. (Icc_sim.Trace.Run_end { label = "x" });
  Alcotest.(check (list (pair (float 1e-9) string)))
    "events arrive in emission order with their timestamps"
    [ (0., "run-start"); (1.5, "net-send"); (2., "run-end") ]
    (List.rev !seen)

let test_core_sink_filtering () =
  let tr = Icc_sim.Trace.create () in
  let core = ref 0 and all = ref 0 in
  Icc_sim.Trace.subscribe ~all:false tr (fun ~time:_ _ -> incr core);
  Alcotest.(check bool) "core-only sink does not request detail" false
    (Icc_sim.Trace.detailed tr);
  Icc_sim.Trace.subscribe tr (fun ~time:_ _ -> incr all);
  Alcotest.(check bool) "full sink requests detail" true
    (Icc_sim.Trace.detailed tr);
  Icc_sim.Trace.emit tr ~time:0. (ev_send ());
  Icc_sim.Trace.emit tr ~time:0. (ev_detail ());
  Alcotest.(check int) "core sink got only the core event" 1 !core;
  Alcotest.(check int) "full sink got both" 2 !all

let test_levels () =
  let core_kinds =
    [
      Icc_sim.Trace.Run_start { n = 1; label = "" };
      Run_end { label = "" };
      ev_send ();
      Round_entry { party = 1; round = 1 };
      Propose { party = 1; round = 1 };
      Notarize { party = 1; round = 1; block = "ab" };
      Block_decided { round = 1; block = "ab" };
      Protocol_error { party = 1; round = 1; what = "w" };
      Monitor_violation { round = 1; what = "w"; detail = "d" };
      Monitor_stall { round = 1; stage = "entry"; waited = 1. };
      Monitor_clear { round = 1; stage = "entry"; waited = 1. };
      Fault_crash { party = 1 };
      Fault_recover { party = 1 };
      Adv_corrupt { party = 1; round = 1; strategy = "equivocate" };
      Adv_equivocate { party = 1; round = 1; block_a = "aa"; block_b = "bb" };
    ]
  in
  List.iter
    (fun ev ->
      Alcotest.(check bool)
        (Icc_sim.Trace.kind_of ev ^ " is core")
        true
        (Icc_sim.Trace.level_of ev = Icc_sim.Trace.Core))
    core_kinds;
  List.iter
    (fun ev ->
      Alcotest.(check bool)
        (Icc_sim.Trace.kind_of ev ^ " is detail")
        true
        (Icc_sim.Trace.level_of ev = Icc_sim.Trace.Detail))
    [
      Icc_sim.Trace.Engine_dispatch { seq = 0 };
      Net_deliver { src = 1; dst = 2; kind = "x"; size = 1 };
      Net_hold { src = 1; dst = 2; kind = "x"; release = 1. };
      ev_detail ();
      Finalize { party = 1; round = 1; block = "ab" };
      Beacon_share { party = 1; round = 1 };
      Commit { party = 1; round = 1; block = "ab" };
      Rbc_fragment { party = 1; round = 1; proposer = 1; index = 0 };
      Fault_drop { src = 1; dst = 2; kind = "blk" };
      Fault_link_down { src = 1; dst = 2; kind = "blk"; release = 1. };
      Resync_summary { party = 1; peer = 2; round = 1; kmax = 0 };
      Resync_reply { party = 1; peer = 2; from_round = 1; upto = 1; count = 0 };
      Adv_withhold { party = 1; round = 1; kind = "beacon-share" };
      Adv_censor { src = 1; dst = 2; kind = "blk" };
      Adv_delay { src = 1; dst = 2; kind = "prop"; by = 0.1 };
      Adv_straggle { src = 1; dst = 2; kind = "share" };
    ]

(* -------------------------------------------------- metrics consumer *)

let test_metrics_via_trace () =
  let tr = Icc_sim.Trace.create () in
  let m = Icc_sim.Metrics.create 4 in
  Icc_sim.Metrics.attach m tr;
  Icc_sim.Trace.emit tr ~time:0.
    (Icc_sim.Trace.Net_send { src = 1; dst = 0; kind = "blk"; size = 100; copies = 3 });
  Icc_sim.Trace.emit tr ~time:0.1 (ev_send ~src:2 ~size:50 ~kind:"share" ());
  Icc_sim.Trace.emit tr ~time:0.2
    (Icc_sim.Trace.Round_entry { party = 1; round = 1 });
  Icc_sim.Trace.emit tr ~time:0.3 (Icc_sim.Trace.Propose { party = 1; round = 1 });
  Icc_sim.Trace.emit tr ~time:0.4
    (Icc_sim.Trace.Notarize { party = 1; round = 1; block = "ab" });
  Icc_sim.Trace.emit tr ~time:0.9
    (Icc_sim.Trace.Block_decided { round = 1; block = "ab" });
  Alcotest.(check int) "msgs" 4 (Icc_sim.Metrics.total_msgs m);
  Alcotest.(check int) "bytes" 350 (Icc_sim.Metrics.total_bytes m);
  Alcotest.(check int) "blk msgs" 3 (Icc_sim.Metrics.msgs_of_kind m "blk");
  Alcotest.(check int) "blk bytes" 300 (Icc_sim.Metrics.bytes_of_kind m "blk");
  Alcotest.(check int) "share bytes" 50 (Icc_sim.Metrics.bytes_of_kind m "share");
  Alcotest.(check int) "finalized" 1 (Icc_sim.Metrics.finalized_blocks m);
  Alcotest.(check (option (float 1e-9))) "entry" (Some 0.2)
    (Icc_sim.Metrics.round_entry_time m 1);
  Alcotest.(check (option (float 1e-9))) "propose" (Some 0.3)
    (Icc_sim.Metrics.proposal_time m 1);
  Alcotest.(check (option (float 1e-9))) "notarize" (Some 0.4)
    (Icc_sim.Metrics.notarization_time m 1);
  Alcotest.(check (option (float 1e-9))) "finalize" (Some 0.9)
    (Icc_sim.Metrics.finalization_time m 1);
  (* decide latency measured from the round's first proposal *)
  Alcotest.(check (list (float 1e-9))) "latency" [ 0.6 ]
    (Icc_sim.Metrics.latencies m);
  Alcotest.(check int) "max round" 1 (Icc_sim.Metrics.max_round m)

let test_metrics_first_event_wins () =
  let tr = Icc_sim.Trace.create () in
  let m = Icc_sim.Metrics.create 4 in
  Icc_sim.Metrics.attach m tr;
  Icc_sim.Trace.emit tr ~time:0.2 (Icc_sim.Trace.Propose { party = 1; round = 3 });
  Icc_sim.Trace.emit tr ~time:0.5 (Icc_sim.Trace.Propose { party = 2; round = 3 });
  Alcotest.(check (option (float 1e-9))) "first proposal kept" (Some 0.2)
    (Icc_sim.Metrics.proposal_time m 3)

let test_percentile_edge_cases () =
  let nan_ok x = Alcotest.(check bool) "nan" true (Float.is_nan x) in
  nan_ok (Icc_sim.Metrics.percentile 50. []);
  nan_ok (Icc_sim.Metrics.percentile 50. [ nan; nan ]);
  Alcotest.(check (float 1e-9)) "singleton p0" 7.
    (Icc_sim.Metrics.percentile 0. [ 7. ]);
  Alcotest.(check (float 1e-9)) "singleton p100" 7.
    (Icc_sim.Metrics.percentile 100. [ 7. ]);
  Alcotest.(check (float 1e-9)) "nan values dropped" 2.
    (Icc_sim.Metrics.percentile 50. [ 3.; nan; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "p90 of 1..10" 9.
    (Icc_sim.Metrics.percentile 90. (List.init 10 (fun i -> float_of_int (i + 1))))

(* -------------------------------------------------- json shape *)

let test_json_shape () =
  let json = Icc_sim.Trace.to_json ~time:1.25 (ev_send ()) in
  Alcotest.(check string) "net-send json"
    {|{"t":1.250000,"ev":"net-send","src":1,"dst":2,"kind":"blk","size":100,"copies":1}|}
    json;
  (* artifact ids and labels pass through string escaping *)
  let tricky =
    Icc_sim.Trace.to_json ~time:0.
      (Icc_sim.Trace.Gossip_publish { party = 1; artifact = {|a"b\c|} })
  in
  Alcotest.(check string) "escaped artifact"
    {|{"t":0.000000,"ev":"gossip-publish","party":1,"artifact":"a\"b\\c"}|}
    tricky

(* -------------------------------------------------- json round-trip *)

(* One witness per constructor, with payloads exercising escaping and
   numeric corner cases. *)
let all_constructor_witnesses : Icc_sim.Trace.event list =
  [
    Icc_sim.Trace.Run_start { n = 4; label = {|wan "q" \x|} };
    Run_end { label = "" };
    Engine_dispatch { seq = 123456789 };
    Net_send { src = 1; dst = 0; kind = "blk"; size = 100; copies = 3 };
    Net_deliver { src = 3; dst = 1; kind = "share"; size = 0 };
    Net_hold { src = 2; dst = 4; kind = "prop"; release = 1.75 };
    Gossip_publish { party = 1; artifact = {|prop|1|a"b\c|} };
    Gossip_request { party = 2; peer = 3; artifact = "nz|2|ff" };
    Gossip_acquire { party = 3; peer = 1; artifact = "\ttab\nnewline" };
    Rbc_fragment { party = 1; round = 2; proposer = 3; index = 0 };
    Rbc_echo { party = 2; round = 9; proposer = 1 };
    Rbc_reconstruct { party = 4; round = 7; proposer = 2 };
    Rbc_inconsistent { party = 1; round = 1; proposer = 1 };
    Round_entry { party = 2; round = 5 };
    Propose { party = 1; round = 5 };
    Notarize { party = 3; round = 5; block = "ab12cd34ef56" };
    Finalize { party = 3; round = 5; block = "ab12cd34ef56" };
    Beacon_share { party = 4; round = 6 };
    Commit { party = 2; round = 5; block = "ab12cd34ef56" };
    Block_decided { round = 5; block = "ab12cd34ef56" };
    Protocol_error
      { party = 2; round = 5; what = {|notarization-combine-failed "x"|} };
    Monitor_violation
      { round = 5; what = "conflicting-notarization"; detail = {|"aa" vs "bb"|} };
    Monitor_stall { round = 6; stage = "notarize"; waited = 0.42 };
    Monitor_clear { round = 6; stage = "notarize"; waited = 0.84 };
    Fault_drop { src = 1; dst = 2; kind = {|blk "q"|} };
    Fault_duplicate { src = 2; dst = 3; kind = "share"; copies = 3 };
    Fault_reorder { src = 4; dst = 1; kind = "prop"; extra = 0.125 };
    Fault_link_down { src = 1; dst = 4; kind = "blk"; release = 2.5 };
    Fault_crash { party = 3 };
    Fault_recover { party = 3 };
    Adv_corrupt { party = 2; round = 4; strategy = {|equivocate "noisy"|} };
    Adv_equivocate
      { party = 2; round = 4; block_a = "ab12cd34ef56"; block_b = "fe65dc43" };
    Adv_withhold { party = 3; round = 5; kind = "notarization-share" };
    Adv_censor { src = 1; dst = 4; kind = {|blk "q"|} };
    Adv_delay { src = 2; dst = 3; kind = "prop"; by = 0.375 };
    Adv_straggle { src = 4; dst = 1; kind = "share" };
    Resync_summary { party = 1; peer = 2; round = 9; kmax = 7 };
    Resync_request { party = 2; peer = 1; from_round = 8; upto = 9 };
    Resync_reply { party = 1; peer = 2; from_round = 8; upto = 9; count = 11 };
    Prof_span
      { name = {|engine.dispatch;party.step "x"|}; count = 42;
        total_us = 123456; self_us = 654 };
    Prof_counter { name = "schnorr_verifies"; value = 98765 };
  ]

let test_json_round_trip () =
  List.iteri
    (fun i ev ->
      let time = 0.125 *. float_of_int i in
      let line = Icc_sim.Trace.to_json ~time ev in
      match Icc_sim.Trace.of_json line with
      | Error msg ->
          Alcotest.failf "%s failed to parse back (%s): %s"
            (Icc_sim.Trace.kind_of ev) msg line
      | Ok (t, ev') ->
          Alcotest.(check (float 1e-9))
            (Icc_sim.Trace.kind_of ev ^ " time")
            time t;
          Alcotest.(check bool)
            (Icc_sim.Trace.kind_of ev ^ " payload survives the round trip")
            true (ev = ev'))
    all_constructor_witnesses

let test_json_round_trip_is_exhaustive () =
  (* Every kind the bus can produce appears in the witness list, so adding
     a constructor without extending of_json fails here. *)
  let witnessed =
    List.map Icc_sim.Trace.kind_of all_constructor_witnesses
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "one witness per constructor" 41
    (List.length witnessed)

(* Property: round-tripping holds for arbitrary payload contents, not just
   the hand-picked witnesses — random strings (any bytes), ints, floats. *)
let prop_json_round_trip =
  let gen =
    QCheck.Gen.(
      let str = string_size ~gen:(char_range '\000' '\255') (int_bound 40) in
      let pid = int_range 0 99 and rnd = int_range 0 9999 in
      (* to_json renders floats with %.6f, so only generate values exact at
         six decimals — millisecond multiples. *)
      let fl = map (fun k -> float_of_int k /. 1000.) (int_bound 999_999) in
      oneof
        [
          map2 (fun n label -> Icc_sim.Trace.Run_start { n; label }) pid str;
          map (fun label -> Icc_sim.Trace.Run_end { label }) str;
          map2
            (fun party artifact ->
              Icc_sim.Trace.Gossip_publish { party; artifact })
            pid str;
          map3
            (fun (src, dst) kind (size, copies) ->
              Icc_sim.Trace.Net_send { src; dst; kind; size; copies })
            (pair pid pid) str (pair rnd pid);
          map2
            (fun party round ->
              Icc_sim.Trace.Beacon_share { party; round })
            pid rnd;
          map3
            (fun round what detail ->
              Icc_sim.Trace.Monitor_violation { round; what; detail })
            rnd str str;
          map3
            (fun round stage waited ->
              Icc_sim.Trace.Monitor_stall { round; stage; waited })
            rnd str fl;
        ])
  in
  QCheck.Test.make ~name:"of_json inverts to_json on random payloads"
    ~count:500
    (QCheck.make ~print:(fun ev -> Icc_sim.Trace.to_json ~time:1. ev) gen)
    (fun ev ->
      match Icc_sim.Trace.of_json (Icc_sim.Trace.to_json ~time:1. ev) with
      | Ok (1., ev') -> ev = ev'
      | _ -> false)

let test_json_malformed () =
  let is_error s =
    match Icc_sim.Trace.of_json s with Error _ -> true | Ok _ -> false
  in
  List.iter
    (fun s -> Alcotest.(check bool) ("rejects " ^ s) true (is_error s))
    [
      "";
      "not json";
      "{";
      {|{"t":1.0}|};
      {|{"ev":"propose","party":1,"round":2}|};
      {|{"t":1.0,"ev":"no-such-kind"}|};
      {|{"t":1.0,"ev":"propose","party":1}|};
      {|{"t":1.0,"ev":"propose","party":"one","round":2}|};
      {|{"t":1.0,"ev":"propose","party":1,"round":2} trailing|};
      {|{"t":1.0,"ev":"net-send","src":1,"dst":2,"kind":"blk","size":100,"copies":1|};
    ]

(* ------------------------------------- traced/untraced determinism *)

let scenario ~seed =
  {
    (Icc_core.Runner.default_scenario ~n:4 ~seed) with
    Icc_core.Runner.duration = 1e6;
    max_rounds = Some 6;
    delay = Icc_core.Runner.Fixed_delay 0.02;
    epsilon = 0.05;
  }

let fingerprint (r : Icc_core.Runner.result) =
  ( ( r.Icc_core.Runner.rounds_decided,
      Icc_sim.Metrics.total_msgs r.Icc_core.Runner.metrics,
      Icc_sim.Metrics.total_bytes r.Icc_core.Runner.metrics ),
    (r.Icc_core.Runner.duration, r.Icc_core.Runner.mean_latency) )

let fp_check name expected actual =
  Alcotest.(
    check
      (pair (triple int int int) (pair (float 1e-12) (float 1e-12)))
      name expected actual)

(* Four runs of the same seed — untraced, traced, monitored, traced AND
   monitored — must produce identical results: neither observer may
   influence scheduling. *)
let check_deterministic name run =
  let untraced = run (None, false) in
  let tr = Icc_sim.Trace.create () in
  let events = ref 0 in
  Icc_sim.Trace.subscribe tr (fun ~time:_ _ -> incr events);
  let traced = run (Some tr, false) in
  fp_check
    (name ^ ": traced run identical to untraced")
    (fingerprint untraced) (fingerprint traced);
  Alcotest.(check bool) (name ^ ": trace saw events") true (!events > 1000);
  let monitored = run (None, true) in
  fp_check
    (name ^ ": monitored run identical to unmonitored")
    (fingerprint untraced) (fingerprint monitored);
  let both = run (Some (Icc_sim.Trace.create ()), true) in
  fp_check
    (name ^ ": traced+monitored run identical")
    (fingerprint untraced) (fingerprint both);
  (match (monitored.Icc_core.Runner.monitor, both.Icc_core.Runner.monitor) with
  | Some m1, Some m2 ->
      Alcotest.(check bool) (name ^ ": monitor clean") true
        (Icc_sim.Monitor.ok m1 && Icc_sim.Monitor.ok m2);
      Alcotest.(check bool)
        (name ^ ": monitor saw events")
        true
        (Icc_sim.Monitor.events_seen m1 > 100)
  | _ -> Alcotest.fail (name ^ ": monitor not attached"))

let with_observers (trace, monitored) base =
  {
    base with
    Icc_core.Runner.trace;
    monitor =
      (if monitored then
         Some (Icc_sim.Monitor.default_config ~delta:0.02 ())
       else None);
  }

let test_determinism_icc0 () =
  check_deterministic "icc0" (fun obs ->
      Icc_core.Runner.run (with_observers obs (scenario ~seed:11)))

let test_determinism_icc1 () =
  check_deterministic "icc1" (fun obs ->
      Icc_gossip.Icc1.run (with_observers obs (scenario ~seed:12)))

let test_determinism_icc2 () =
  check_deterministic "icc2" (fun obs ->
      Icc_rbc.Icc2.run (with_observers obs (scenario ~seed:13)))

(* -------------------------------------------------- run coverage *)

let test_run_event_coverage () =
  let tr = Icc_sim.Trace.create () in
  let kinds = Hashtbl.create 16 in
  Icc_sim.Trace.subscribe tr (fun ~time ev ->
      Hashtbl.replace kinds (Icc_sim.Trace.kind_of ev) ();
      (* every event serializes to one well-formed object *)
      let j = Icc_sim.Trace.to_json ~time ev in
      Alcotest.(check bool) "json object" true
        (String.length j > 2 && j.[0] = '{' && j.[String.length j - 1] = '}'));
  ignore (Icc_gossip.Icc1.run { (scenario ~seed:21) with trace = Some tr });
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (Hashtbl.mem kinds k))
    [
      "run-start"; "run-end"; "engine-dispatch"; "net-send"; "net-deliver";
      "gossip-publish"; "gossip-acquire"; "round-entry"; "propose";
      "notarize"; "finalize"; "beacon-share"; "commit"; "block-decided";
    ]

let suite =
  [
    Alcotest.test_case "no sink: inactive, emit is no-op" `Quick
      test_no_sink_inactive;
    Alcotest.test_case "sinks fire in subscription order" `Quick
      test_subscription_order;
    Alcotest.test_case "events keep emission order and time" `Quick
      test_event_order_and_time;
    Alcotest.test_case "core-only sinks skip detail events" `Quick
      test_core_sink_filtering;
    Alcotest.test_case "core/detail level assignment" `Quick test_levels;
    Alcotest.test_case "metrics driven through the bus" `Quick
      test_metrics_via_trace;
    Alcotest.test_case "per-round milestones keep first event" `Quick
      test_metrics_first_event_wins;
    Alcotest.test_case "percentile edge cases" `Quick
      test_percentile_edge_cases;
    Alcotest.test_case "json serialization shape" `Quick test_json_shape;
    Alcotest.test_case "of_json round-trips every constructor" `Quick
      test_json_round_trip;
    Alcotest.test_case "round-trip witness list is exhaustive" `Quick
      test_json_round_trip_is_exhaustive;
    Alcotest.test_case "of_json rejects malformed lines" `Quick
      test_json_malformed;
    QCheck_alcotest.to_alcotest prop_json_round_trip;
    Alcotest.test_case "icc0 traced = untraced" `Quick test_determinism_icc0;
    Alcotest.test_case "icc1 traced = untraced" `Quick test_determinism_icc1;
    Alcotest.test_case "icc2 traced = untraced" `Quick test_determinism_icc2;
    Alcotest.test_case "icc1 trace covers all layers" `Quick
      test_run_event_coverage;
  ]
