(* Tests for the paper's discussed extensions: pool garbage collection
   (§3.1's discard optimisation) and adaptive delay-bound estimation (§1). *)

let base ?(n = 4) ?(seed = 17) () =
  {
    (Icc_core.Runner.default_scenario ~n ~seed) with
    Icc_core.Runner.duration = 20.;
    delay = Icc_core.Runner.Fixed_delay 0.05;
    epsilon = 0.2;
    delta_bnd = 0.3;
  }

(* --- pool pruning ------------------------------------------------------ *)

let test_prune_unit () =
  let kit = Kit.make ~n:4 ~t:1 () in
  let pool = Icc_core.Pool.create kit.Kit.system in
  let rec build parent round =
    if round > 10 then ()
    else begin
      let b = Kit.block ~round ~proposer:1 ~parent () in
      Kit.admit_notarized kit pool b;
      build (Some b) (round + 1)
    end
  in
  build None 1;
  Alcotest.(check int) "ten blocks stored" 10 (Icc_core.Pool.stored_blocks pool);
  Icc_core.Pool.prune pool ~below:8;
  Alcotest.(check int) "three remain" 3 (Icc_core.Pool.stored_blocks pool);
  Alcotest.(check (list int)) "rounds 8..10 remain" [ 8; 9; 10 ]
    (List.sort compare
       (List.concat_map
          (fun r ->
            List.map (fun (b : Icc_core.Block.t) -> b.Icc_core.Block.round)
              (Icc_core.Pool.blocks_of_round pool r))
          [ 6; 7; 8; 9; 10 ]));
  (* new blocks extending the surviving frontier still validate *)
  let frontier =
    match Icc_core.Pool.notarized_blocks pool 10 with
    | b :: _ -> b
    | [] -> Alcotest.fail "frontier missing"
  in
  let b11 = Kit.block ~round:11 ~proposer:2 ~parent:(Some frontier) () in
  Kit.admit_notarized kit pool b11;
  Alcotest.(check bool) "extension notarized" true
    (Icc_core.Pool.is_notarized pool (11, Icc_core.Block.hash b11))

let test_pruned_run_matches_unpruned () =
  let plain = Icc_core.Runner.run (base ()) in
  let pruned =
    Icc_core.Runner.run { (base ()) with Icc_core.Runner.prune_depth = Some 3 }
  in
  Alcotest.(check int) "same rounds decided" plain.Icc_core.Runner.rounds_decided
    pruned.Icc_core.Runner.rounds_decided;
  Alcotest.(check bool) "safety" true pruned.Icc_core.Runner.safety_ok;
  Alcotest.(check (float 1e-12)) "same latency"
    plain.Icc_core.Runner.mean_latency pruned.Icc_core.Runner.mean_latency;
  (* identical committed chains *)
  List.iter2
    (fun (_, c1) (_, c2) ->
      Alcotest.(check (list string)) "same chain"
        (List.map (fun b -> Icc_crypto.Sha256.to_hex (Icc_core.Block.hash b)) c1)
        (List.map (fun b -> Icc_crypto.Sha256.to_hex (Icc_core.Block.hash b)) c2))
    plain.Icc_core.Runner.outputs pruned.Icc_core.Runner.outputs

let test_pruning_under_byzantine_load () =
  let r =
    Icc_core.Runner.run
      {
        (base ()) with
        Icc_core.Runner.prune_depth = Some 2;
        adversary = Some [ Icc_sim.Adversary.equivocate ~noisy:true 2 ];
      }
  in
  Alcotest.(check bool) "safety" true r.Icc_core.Runner.safety_ok;
  Alcotest.(check bool) "liveness" true (r.Icc_core.Runner.rounds_decided > 30)

(* --- adaptive delay bound ---------------------------------------------- *)

let underestimated ?(adaptive = false) () =
  (* true network delay 0.1 s, configured bound 0.01 s: the liveness
     requirement 2*delta <= 2*delta_bnd + epsilon fails badly, so every
     round races through ranks until shares align *)
  {
    (base ~n:7 ~seed:23 ()) with
    Icc_core.Runner.delay = Icc_core.Runner.Fixed_delay 0.1;
    delta_bnd = 0.01;
    epsilon = 0.02;
    duration = 60.;
    adaptive;
  }

let test_static_underestimate_starves_finalization () =
  (* with delta_bnd 10x below the true delay, every party shares its own
     block before hearing better-ranked ones: N is never a singleton, so no
     finalization share is ever cast — the tree grows (P1) but nothing
     commits.  This is exactly why liveness (P3) needs the delay-function
     requirement (paper §3.5), and what adaptivity repairs. *)
  let static = Icc_core.Runner.run (underestimated ()) in
  let adaptive = Icc_core.Runner.run (underestimated ~adaptive:true ()) in
  Alcotest.(check bool) "static safety" true static.Icc_core.Runner.safety_ok;
  Alcotest.(check bool) "static P1 (tree grows)" true static.Icc_core.Runner.p1_ok;
  Alcotest.(check int) "static finalizes nothing" 0
    static.Icc_core.Runner.rounds_decided;
  Alcotest.(check bool) "adaptive safety" true adaptive.Icc_core.Runner.safety_ok;
  Alcotest.(check bool)
    (Printf.sprintf "adaptive recovers (%d rounds)"
       adaptive.Icc_core.Runner.rounds_decided)
    true
    (adaptive.Icc_core.Runner.rounds_decided > 100);
  (* and converges back to ~1-2 proposals per round *)
  let proposals_per_round =
    float_of_int
      (Icc_sim.Metrics.msgs_of_kind adaptive.Icc_core.Runner.metrics "proposal")
    /. 6. (* broadcast = 6 unicasts at n=7 *)
    /. float_of_int (max 1 adaptive.Icc_core.Runner.rounds_decided)
  in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive proposal rate settles (%.1f/round)"
       proposals_per_round)
    true
    (proposals_per_round < 15.)

let test_adaptive_keeps_happy_path_fast () =
  (* when delta_bnd was already right, adaptivity must not slow anything *)
  let plain = Icc_core.Runner.run (base ()) in
  let adaptive =
    Icc_core.Runner.run { (base ()) with Icc_core.Runner.adaptive = true }
  in
  Alcotest.(check int) "same rounds" plain.Icc_core.Runner.rounds_decided
    adaptive.Icc_core.Runner.rounds_decided;
  Alcotest.(check (float 1e-9)) "same latency"
    plain.Icc_core.Runner.mean_latency adaptive.Icc_core.Runner.mean_latency

let test_adaptive_with_crashes () =
  (* crashed leaders also trigger the scale-up path (indistinguishable from
     slow network); correctness must be unaffected *)
  let r =
    Icc_core.Runner.run
      {
        (base ~n:7 ()) with
        Icc_core.Runner.adaptive = true;
        behaviors = [ (1, Icc_core.Party.crashed); (5, Icc_core.Party.crashed) ];
      }
  in
  Alcotest.(check bool) "safety" true r.Icc_core.Runner.safety_ok;
  Alcotest.(check bool) "liveness" true (r.Icc_core.Runner.rounds_decided > 15)

let suite =
  [
    Alcotest.test_case "prune unit" `Quick test_prune_unit;
    Alcotest.test_case "pruned run equivalent" `Quick
      test_pruned_run_matches_unpruned;
    Alcotest.test_case "pruning + byzantine" `Quick
      test_pruning_under_byzantine_load;
    Alcotest.test_case "adaptive vs static underestimate" `Quick
      test_static_underestimate_starves_finalization;
    Alcotest.test_case "adaptive happy path" `Quick
      test_adaptive_keeps_happy_path_fast;
    Alcotest.test_case "adaptive with crashes" `Quick test_adaptive_with_crashes;
  ]
