(* Wire codec tests: roundtrips for every message variant, determinism, and
   robustness on adversarial bytes. *)

let kit = Kit.make ~n:4 ~t:1 ()

let sample_block ?(cmds = 2) () =
  let commands =
    List.init cmds (fun i ->
        Icc_core.Types.command
          ~tag:(Printf.sprintf "set|k%d|v%d" i i)
          ~cmd_id:(100 + i) ~cmd_size:64 ~submitted_at:(1.5 +. float_of_int i)
          ())
  in
  Kit.block
    ~payload:{ Icc_core.Types.commands; filler_size = 77 }
    ~round:3 ~proposer:2
    ~parent:(Some (Kit.block ~round:2 ~proposer:1
                     ~parent:(Some (Kit.block ~round:1 ~proposer:3 ~parent:None ()))
                     ()))
    ()

let sample_messages () =
  let b = sample_block () in
  let b1 = Kit.block ~round:1 ~proposer:1 ~parent:None () in
  [
    Icc_core.Message.Proposal
      {
        p_block = b;
        p_authenticator = Kit.authenticator kit b;
        p_parent_cert = Some (Kit.notarization kit b1 [ 1; 2; 3 ]);
      };
    Icc_core.Message.Proposal
      {
        p_block = b1;
        p_authenticator = Kit.authenticator kit b1;
        p_parent_cert = None;
      };
    Icc_core.Message.Notarization_share (Kit.notarization_share kit ~signer:2 b1);
    Icc_core.Message.Notarization (Kit.notarization kit b1 [ 1; 3; 4 ]);
    Icc_core.Message.Finalization_share (Kit.finalization_share kit ~signer:4 b1);
    Icc_core.Message.Finalization (Kit.finalization kit b1 [ 2; 3; 4 ]);
    Icc_core.Message.Beacon_share
      {
        b_round = 5;
        b_signer = 3;
        b_share =
          Icc_crypto.Threshold_vuf.sign_share
            kit.Kit.system.Icc_crypto.Keygen.beacon
            (Kit.key kit 3).Icc_crypto.Keygen.beacon_key "beacon text";
      };
  ]

let test_roundtrip_all_variants () =
  List.iteri
    (fun i msg ->
      match Icc_core.Codec.decode (Icc_core.Codec.encode msg) with
      | Some msg' ->
          Alcotest.(check bool)
            (Printf.sprintf "variant %d roundtrips" i)
            true (msg = msg')
      | None -> Alcotest.fail (Printf.sprintf "variant %d failed to decode" i))
    (sample_messages ())

let test_roundtrip_preserves_hashes_and_signatures () =
  let b = sample_block () in
  let msg =
    Icc_core.Message.Proposal
      { p_block = b; p_authenticator = Kit.authenticator kit b; p_parent_cert = None }
  in
  match Icc_core.Codec.decode (Icc_core.Codec.encode msg) with
  | Some (Icc_core.Message.Proposal p) ->
      Alcotest.(check bool) "same hash" true
        (Icc_crypto.Sha256.equal
           (Icc_core.Block.hash p.Icc_core.Message.p_block)
           (Icc_core.Block.hash b));
      (* the decoded authenticator still verifies *)
      Alcotest.(check bool) "authenticator verifies" true
        (Icc_crypto.Schnorr.verify
           kit.Kit.system.Icc_crypto.Keygen.auth_pub.(1)
           (Icc_core.Types.authenticator_text ~round:3 ~proposer:2
              ~block_hash:(Icc_core.Block.hash b))
           p.Icc_core.Message.p_authenticator)
  | _ -> Alcotest.fail "roundtrip failed"

let test_deterministic () =
  List.iter
    (fun msg ->
      Alcotest.(check string) "same bytes"
        (Icc_core.Codec.encode msg) (Icc_core.Codec.encode msg))
    (sample_messages ())

let test_garbage_rejected () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" (String.sub s 0 (min 8 (String.length s))))
        true
        (Icc_core.Codec.decode s = None))
    [
      "";
      "\x00";
      "\xff";
      "\x01short";
      String.make 100 '\x07';
      String.make 10_000 '\xff';
    ]

let test_truncations_rejected () =
  let full = Icc_core.Codec.encode (List.hd (sample_messages ())) in
  for cut = 0 to min 64 (String.length full - 1) do
    Alcotest.(check bool)
      (Printf.sprintf "truncated at %d" cut)
      true
      (Icc_core.Codec.decode (String.sub full 0 cut) = None)
  done;
  (* trailing junk is also rejected *)
  Alcotest.(check bool) "over-long" true
    (Icc_core.Codec.decode (full ^ "x") = None)

let prop_bitflips_never_crash =
  QCheck.Test.make ~name:"codec survives random bit flips" ~count:200
    (QCheck.pair (QCheck.int_bound 6) (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun (variant, (pos_seed, bit)) ->
      let msgs = sample_messages () in
      let msg = List.nth msgs (variant mod List.length msgs) in
      let bytes = Bytes.of_string (Icc_core.Codec.encode msg) in
      let pos = pos_seed mod Bytes.length bytes in
      Bytes.set bytes pos
        (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl (bit mod 8))));
      (* decoding flipped bytes either fails or yields some well-formed
         message — it must never raise *)
      match Icc_core.Codec.decode (Bytes.to_string bytes) with
      | Some _ | None -> true)

let prop_random_payload_roundtrip =
  QCheck.Test.make ~name:"codec roundtrips random payloads" ~count:60
    (QCheck.pair QCheck.small_nat (QCheck.list_of_size (QCheck.Gen.int_bound 8) QCheck.printable_string))
    (fun (filler, tags) ->
      let commands =
        List.mapi
          (fun i tag ->
            Icc_core.Types.command ~tag ~cmd_id:i ~cmd_size:(i * 7)
              ~submitted_at:(float_of_int i /. 3.) ())
          tags
      in
      let b =
        Kit.block
          ~payload:{ Icc_core.Types.commands; filler_size = filler }
          ~round:1 ~proposer:1 ~parent:None ()
      in
      let msg =
        Icc_core.Message.Proposal
          {
            p_block = b;
            p_authenticator = Kit.authenticator kit b;
            p_parent_cert = None;
          }
      in
      Icc_core.Codec.decode (Icc_core.Codec.encode msg) = Some msg)

(* --- compact-format properties ----------------------------------------- *)

(* Varint boundary values: 1-byte/2-byte/3-byte/… group edges. *)
let varint_edge =
  QCheck.oneofl
    [ 0; 1; 127; 128; 255; 16383; 16384; 2097151; 1 lsl 30; 1 lsl 40 ]

(* Every compact frame round-trips at varint group boundaries (the
   resync frames carry raw varint triples; the signed frames carry varint
   rounds/ids next to fixed-width digests). *)
let prop_varint_edges_roundtrip =
  QCheck.Test.make ~name:"compact frames roundtrip at varint edges" ~count:100
    (QCheck.pair varint_edge varint_edge) (fun (a, b) ->
      let frames =
        [
          Icc_core.Message.Pool_summary
            { ps_party = a; ps_round = b; ps_kmax = a };
          Icc_core.Message.Pool_request
            { pr_party = b; pr_from = a; pr_upto = b };
        ]
      in
      List.for_all
        (fun msg ->
          Icc_core.Codec.decode (Icc_core.Codec.encode msg) = Some msg)
        frames)

(* A well-formed proposal bundle (parent certificate naming the block's
   parent hash) round-trips through the digest-elided form and saves the
   32 duplicated digest bytes. *)
let test_shared_prefix_digest_elision () =
  let b1 = Kit.block ~round:1 ~proposer:1 ~parent:None () in
  let b2 = Kit.block ~round:2 ~proposer:2 ~parent:(Some b1) () in
  let well_formed =
    Icc_core.Message.Proposal
      {
        p_block = b2;
        p_authenticator = Kit.authenticator kit b2;
        p_parent_cert = Some (Kit.notarization kit b1 [ 1; 2; 3 ]);
      }
  in
  (match Icc_core.Codec.decode (Icc_core.Codec.encode well_formed) with
  | Some msg' ->
      Alcotest.(check bool) "elided bundle roundtrips" true (well_formed = msg')
  | None -> Alcotest.fail "elided bundle failed to decode");
  (* same bundle with a mismatched certificate digest must keep both
     digests on the wire, costing at least the 32 elided bytes *)
  let mismatched =
    Icc_core.Message.Proposal
      {
        p_block = b2;
        p_authenticator = Kit.authenticator kit b2;
        p_parent_cert = Some (Kit.notarization kit b2 [ 1; 2; 3 ]);
      }
  in
  (match Icc_core.Codec.decode (Icc_core.Codec.encode mismatched) with
  | Some msg' ->
      Alcotest.(check bool) "mismatched bundle roundtrips" true
        (mismatched = msg')
  | None -> Alcotest.fail "mismatched bundle failed to decode");
  Alcotest.(check bool) "elision saves the duplicated digest" true
    (String.length (Icc_core.Codec.encode well_formed) + 32
    <= String.length (Icc_core.Codec.encode mismatched))

(* Small frames must actually be small: a resync summary is three varints
   plus the tag, nowhere near the 25 bytes of the old fixed-width layout. *)
let test_compactness () =
  let summary =
    Icc_core.Message.Pool_summary { ps_party = 3; ps_round = 40; ps_kmax = 39 }
  in
  Alcotest.(check bool) "summary fits in 4 bytes" true
    (String.length (Icc_core.Codec.encode summary) <= 4);
  let share =
    Icc_core.Message.Notarization_share
      (Kit.notarization_share kit ~signer:2
         (Kit.block ~round:1 ~proposer:1 ~parent:None ()))
  in
  (* tag + 3 small varints + 32-byte digest + signer + signature ints *)
  Alcotest.(check bool) "share frame under 64 bytes" true
    (String.length (Icc_core.Codec.encode share) <= 64)

(* Each value has exactly one encoding: non-canonical varint padding
   ("0x80 0x00" continuation groups encoding zero) is rejected. *)
let test_non_canonical_varint_rejected () =
  (* tag 7 (pool summary), ps_party as padded zero, then two zeros *)
  let padded = "\x07\x80\x00\x00\x00" in
  Alcotest.(check bool) "padded varint rejected" true
    (Icc_core.Codec.decode padded = None);
  let canonical = "\x07\x00\x00\x00" in
  Alcotest.(check bool) "canonical zero accepted" true
    (Icc_core.Codec.decode canonical
    = Some
        (Icc_core.Message.Pool_summary
           { ps_party = 0; ps_round = 0; ps_kmax = 0 }))

let suite =
  [
    Alcotest.test_case "roundtrip variants" `Quick test_roundtrip_all_variants;
    Alcotest.test_case "shared-prefix digest elision" `Quick
      test_shared_prefix_digest_elision;
    Alcotest.test_case "compact frame sizes" `Quick test_compactness;
    Alcotest.test_case "non-canonical varints rejected" `Quick
      test_non_canonical_varint_rejected;
    QCheck_alcotest.to_alcotest prop_varint_edges_roundtrip;
    Alcotest.test_case "hashes/signatures preserved" `Quick
      test_roundtrip_preserves_hashes_and_signatures;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
    Alcotest.test_case "truncations rejected" `Quick test_truncations_rejected;
    QCheck_alcotest.to_alcotest prop_bitflips_never_crash;
    QCheck_alcotest.to_alcotest prop_random_payload_roundtrip;
  ]
