(* Unit tests for the gossip sub-layer, driven directly. *)

let kit = Kit.make ~n:7 ~t:2 ()

type world = {
  engine : Icc_sim.Engine.t;
  metrics : Icc_sim.Metrics.t;
  gossip : Icc_gossip.Gossip.t;
  delivered : (int, Icc_core.Message.t list ref) Hashtbl.t;
}

let make_world ?(fanout = 3) ?(seed = 9) () =
  let env = Icc_sim.Transport.env ~n:7 () in
  let engine = env.Icc_sim.Transport.engine in
  let metrics = env.Icc_sim.Transport.metrics in
  let delivered = Hashtbl.create 8 in
  for i = 1 to 7 do
    Hashtbl.add delivered i (ref [])
  done;
  let gossip =
    Icc_gossip.Gossip.create ~engine ~trace:env.Icc_sim.Transport.trace ~n:7
      ~rng:(Icc_sim.Rng.create seed)
      ~delay_model:(Icc_sim.Network.Fixed 0.01) ~fanout
      ~is_active:(fun _ -> true)
      ~deliver_up:(fun ~dst msg ->
        let l = Hashtbl.find delivered dst in
        l := msg :: !l)
      ()
  in
  { engine; metrics; gossip; delivered }

let proposal ?(filler = 50_000) ~proposer () =
  let payload = { Icc_core.Types.commands = []; filler_size = filler } in
  let block = Kit.block ~payload ~round:1 ~proposer ~parent:None () in
  Icc_core.Message.Proposal
    {
      p_block = block;
      p_authenticator = Kit.authenticator kit block;
      p_parent_cert = None;
    }

let small_message () =
  Icc_core.Message.Notarization_share
    (Kit.notarization_share kit ~signer:1
       (Kit.block ~round:1 ~proposer:1 ~parent:None ()))

let test_large_artifact_reaches_everyone_once () =
  let w = make_world () in
  Icc_gossip.Gossip.publish w.gossip ~src:1 (proposal ~proposer:1 ());
  Icc_sim.Engine.run w.engine;
  Hashtbl.iter
    (fun party l ->
      Alcotest.(check int)
        (Printf.sprintf "party %d exactly once" party)
        1 (List.length !l))
    w.delivered

let test_small_message_floods () =
  let w = make_world () in
  Icc_gossip.Gossip.publish w.gossip ~src:3 (small_message ());
  Icc_sim.Engine.run w.engine;
  Hashtbl.iter
    (fun party l ->
      Alcotest.(check int)
        (Printf.sprintf "party %d exactly once" party)
        1 (List.length !l))
    w.delivered

let test_republish_is_noop () =
  let w = make_world () in
  let msg = proposal ~proposer:2 () in
  Icc_gossip.Gossip.publish w.gossip ~src:2 msg;
  Icc_sim.Engine.run w.engine;
  let before = Icc_sim.Metrics.total_msgs w.metrics in
  (* the protocol's echo re-broadcast: gossip deduplicates it entirely *)
  Icc_gossip.Gossip.publish w.gossip ~src:5 msg;
  Icc_gossip.Gossip.publish w.gossip ~src:2 msg;
  Icc_sim.Engine.run w.engine;
  Alcotest.(check int) "no extra traffic" before
    (Icc_sim.Metrics.total_msgs w.metrics)

let test_large_artifact_traffic_bounded () =
  (* with advert/request dissemination, total block-byte traffic is ~n
     transfers, not n^2: bytes stay below 3 * n * size *)
  let size = 50_000 in
  let w = make_world () in
  Icc_gossip.Gossip.publish w.gossip ~src:1 (proposal ~proposer:1 ~filler:size ());
  Icc_sim.Engine.run w.engine;
  let total = Icc_sim.Metrics.total_bytes w.metrics in
  Alcotest.(check bool)
    (Printf.sprintf "bytes %d < 3*n*size" total)
    true
    (total < 3 * 7 * size)

let test_inject_reaches_target_then_spreads () =
  let w = make_world () in
  let msg = proposal ~proposer:4 () in
  (* Byzantine split delivery to party 6 only; party 6 re-gossips *)
  Icc_gossip.Gossip.inject w.gossip ~src:4 ~dst:6 msg;
  Icc_sim.Engine.run w.engine;
  let got =
    Hashtbl.fold
      (fun party l acc -> if !l <> [] then party :: acc else acc)
      w.delivered []
  in
  Alcotest.(check bool) "party 6 got it" true (List.mem 6 got);
  (* re-gossip spreads it to everyone except possibly the silent source *)
  Alcotest.(check bool)
    (Printf.sprintf "spread to %d parties" (List.length got))
    true
    (List.length got >= 6)

let suite =
  [
    Alcotest.test_case "large artifact once" `Quick
      test_large_artifact_reaches_everyone_once;
    Alcotest.test_case "small message floods" `Quick test_small_message_floods;
    Alcotest.test_case "republish no-op" `Quick test_republish_is_noop;
    Alcotest.test_case "traffic bounded" `Quick test_large_artifact_traffic_bounded;
    Alcotest.test_case "inject spreads" `Quick test_inject_reaches_target_then_spreads;
  ]
