(* Offline trace analysis: JSONL parsing, the pinned broadcast accounting
   convention in the bandwidth matrices, per-round pipelines, amplification
   and critical paths — plus a live round trip: dump a run through the
   JSONL sink, parse it back, and re-run the monitor offline. *)

let lines_of events =
  List.mapi
    (fun i ev -> Icc_sim.Trace.to_json ~time:(0.1 *. float_of_int i) ev)
    events

let test_parse_lines () =
  let events =
    [
      Icc_sim.Trace.Run_start { n = 4; label = "x" };
      Round_entry { party = 1; round = 1 };
      Run_end { label = "x" };
    ]
  in
  let r = Icc_sim.Replay.parse_lines (lines_of events @ [ "garbage" ]) in
  Alcotest.(check int) "entries" 3 (Array.length r.Icc_sim.Replay.entries);
  (match r.Icc_sim.Replay.errors with
  | [ (3, _) ] -> ()
  | _ -> Alcotest.fail "expected one error on line 3");
  Alcotest.(check int) "line numbers preserved" 2
    r.Icc_sim.Replay.entries.(2).Icc_sim.Replay.line;
  Alcotest.(check bool) "events typed" true
    (r.Icc_sim.Replay.entries.(1).Icc_sim.Replay.event
    = Icc_sim.Trace.Round_entry { party = 1; round = 1 })

(* The broadcast convention (satellite of the Net_send accounting fix): a
   dst = 0 send with [copies] counts as [copies] transmissions, one to each
   of the [copies] lowest-numbered parties other than src. *)
let test_bandwidth_broadcast_convention () =
  let r =
    Icc_sim.Replay.parse_lines
      (lines_of
         [
           Icc_sim.Trace.Run_start { n = 4; label = "" };
           Net_send { src = 1; dst = 0; kind = "blk"; size = 100; copies = 3 };
           Net_send { src = 3; dst = 1; kind = "share"; size = 40; copies = 1 };
         ])
  in
  let bw = Icc_sim.Replay.bandwidth r.Icc_sim.Replay.entries in
  Alcotest.(check int) "n" 4 bw.Icc_sim.Replay.bw_n;
  (* src 1's broadcast spreads to parties 2, 3, 4 — 100 bytes each *)
  Alcotest.(check int) "1->2" 100 bw.Icc_sim.Replay.bw_bytes.(1).(2);
  Alcotest.(check int) "1->3" 100 bw.Icc_sim.Replay.bw_bytes.(1).(3);
  Alcotest.(check int) "1->4" 100 bw.Icc_sim.Replay.bw_bytes.(1).(4);
  Alcotest.(check int) "nothing to self" 0 bw.Icc_sim.Replay.bw_bytes.(1).(1);
  Alcotest.(check int) "broadcast = copies msgs" 3
    (Array.fold_left ( + ) 0 bw.Icc_sim.Replay.bw_msgs.(1));
  Alcotest.(check int) "row total" 300 bw.Icc_sim.Replay.bw_sent_bytes.(1);
  Alcotest.(check int) "unicast cell" 40 bw.Icc_sim.Replay.bw_bytes.(3).(1);
  (* src receives nothing from its own broadcast *)
  Alcotest.(check int) "recv column 1" 40 bw.Icc_sim.Replay.bw_recv_bytes.(1);
  Alcotest.(check int) "recv column 2" 100 bw.Icc_sim.Replay.bw_recv_bytes.(2);
  Alcotest.(check int) "total msgs" 4 bw.Icc_sim.Replay.bw_total_msgs;
  Alcotest.(check int) "total bytes" 340 bw.Icc_sim.Replay.bw_total_bytes;
  (match bw.Icc_sim.Replay.bw_by_kind with
  | [ ("blk", 3, 300); ("share", 1, 40) ] -> ()
  | _ -> Alcotest.fail "per-kind accounting");
  (* a partial broadcast (copies < n - 1) reaches only the lowest ids *)
  let r2 =
    Icc_sim.Replay.parse_lines
      (lines_of
         [
           Icc_sim.Trace.Run_start { n = 4; label = "" };
           Net_send { src = 2; dst = 0; kind = "g"; size = 10; copies = 2 };
         ])
  in
  let bw2 = Icc_sim.Replay.bandwidth r2.Icc_sim.Replay.entries in
  Alcotest.(check int) "2->1" 10 bw2.Icc_sim.Replay.bw_bytes.(2).(1);
  Alcotest.(check int) "2->3" 10 bw2.Icc_sim.Replay.bw_bytes.(2).(3);
  Alcotest.(check int) "2->4 skipped" 0 bw2.Icc_sim.Replay.bw_bytes.(2).(4)

(* Metrics sees the same convention: copies transmissions, copies * size
   bytes, attributed to the sender. *)
let test_metrics_broadcast_convention () =
  let tr = Icc_sim.Trace.create () in
  let m = Icc_sim.Metrics.create 4 in
  Icc_sim.Metrics.attach m tr;
  Icc_sim.Trace.emit tr ~time:0.
    (Icc_sim.Trace.Net_send
       { src = 1; dst = 0; kind = "blk"; size = 100; copies = 3 });
  Alcotest.(check int) "copies transmissions" 3 (Icc_sim.Metrics.total_msgs m);
  Alcotest.(check int) "copies * size bytes" 300
    (Icc_sim.Metrics.total_bytes m)

let test_rounds_and_critical_path () =
  let r =
    Icc_sim.Replay.parse_lines
      (lines_of
         [
           Icc_sim.Trace.Run_start { n = 4; label = "" };
           Round_entry { party = 1; round = 1 };
           Propose { party = 2; round = 1 };
           Notarize { party = 1; round = 1; block = "aa" };
           Notarize { party = 3; round = 1; block = "aa" };
           Finalize { party = 1; round = 1; block = "aa" };
           Block_decided { round = 1; block = "aa" };
           Round_entry { party = 1; round = 2 };
         ])
  in
  (match Icc_sim.Replay.rounds r.Icc_sim.Replay.entries with
  | [ r1; r2 ] ->
      Alcotest.(check int) "round 1 first" 1 r1.Icc_sim.Replay.r_round;
      Alcotest.(check (option (float 1e-9))) "entry" (Some 0.1)
        r1.Icc_sim.Replay.r_entry;
      Alcotest.(check (option (float 1e-9))) "first notarize" (Some 0.3)
        r1.Icc_sim.Replay.r_notarize;
      Alcotest.(check (option (float 1e-9))) "decided" (Some 0.6)
        r1.Icc_sim.Replay.r_decided;
      Alcotest.(check (option (float 1e-9))) "round 2 open" None
        r2.Icc_sim.Replay.r_decided
  | l -> Alcotest.failf "expected 2 rounds, got %d" (List.length l));
  let path = Icc_sim.Replay.critical_path r.Icc_sim.Replay.entries ~round:1 in
  let labels = List.map (fun s -> s.Icc_sim.Replay.ps_label) path in
  Alcotest.(check (list string)) "milestone chain"
    [
      "round-entry"; "propose (party 2)"; "first notarize (party 1)";
      "last notarize (party 3)"; "finalize cert"; "block decided";
    ]
    labels;
  (* deltas chain: each step measured from the previous *)
  let decided = List.nth path 5 in
  Alcotest.(check (float 1e-9)) "decided delta" 0.1
    decided.Icc_sim.Replay.ps_delta;
  Alcotest.(check (list string)) "absent round"
    []
    (List.map
       (fun s -> s.Icc_sim.Replay.ps_label)
       (Icc_sim.Replay.critical_path r.Icc_sim.Replay.entries ~round:9))

(* Live round trip: run ICC1 with a JSONL sink, parse every line back,
   re-run the monitor offline — same event count, clean verdict, and the
   analyzer's aggregates are populated. *)
let test_live_round_trip () =
  let buf = Buffer.create (1 lsl 16) in
  let tr = Icc_sim.Trace.create () in
  Icc_sim.Trace.subscribe tr (fun ~time ev ->
      Buffer.add_string buf (Icc_sim.Trace.to_json ~time ev);
      Buffer.add_char buf '\n');
  let scenario =
    {
      (Icc_core.Runner.default_scenario ~n:4 ~seed:21) with
      Icc_core.Runner.duration = 1e6;
      max_rounds = Some 6;
      delay = Icc_core.Runner.Fixed_delay 0.02;
      epsilon = 0.05;
      trace = Some tr;
    }
  in
  ignore (Icc_gossip.Icc1.run scenario);
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  let r = Icc_sim.Replay.parse_lines lines in
  Alcotest.(check (list (pair int string))) "every line parses" []
    r.Icc_sim.Replay.errors;
  Alcotest.(check int) "all events recovered" (List.length lines)
    (Array.length r.Icc_sim.Replay.entries);
  let m = Icc_sim.Replay.monitor r.Icc_sim.Replay.entries in
  Alcotest.(check bool) "offline monitor clean" true (Icc_sim.Monitor.ok m);
  Alcotest.(check int) "offline monitor saw every event"
    (Array.length r.Icc_sim.Replay.entries)
    (Icc_sim.Monitor.events_seen m);
  Alcotest.(check int) "parties recovered" 4
    (Icc_sim.Replay.parties r.Icc_sim.Replay.entries);
  let rounds = Icc_sim.Replay.rounds r.Icc_sim.Replay.entries in
  Alcotest.(check bool) "six decided rounds" true (List.length rounds >= 6);
  let amp = Icc_sim.Replay.amplification r.Icc_sim.Replay.entries in
  Alcotest.(check bool) "blocks decided" true
    (amp.Icc_sim.Replay.amp_decided >= 6);
  Alcotest.(check bool) "gossip counters populated" true
    (amp.Icc_sim.Replay.amp_gossip_publish > 0
    && amp.Icc_sim.Replay.amp_acquire_per_publish > 0.);
  let bw = Icc_sim.Replay.bandwidth r.Icc_sim.Replay.entries in
  Alcotest.(check bool) "bandwidth populated" true
    (bw.Icc_sim.Replay.bw_total_bytes > 0)

let suite =
  [
    Alcotest.test_case "parse_lines: entries, errors, line numbers" `Quick
      test_parse_lines;
    Alcotest.test_case "bandwidth pins the broadcast convention" `Quick
      test_bandwidth_broadcast_convention;
    Alcotest.test_case "metrics counts broadcasts as copies sends" `Quick
      test_metrics_broadcast_convention;
    Alcotest.test_case "round pipeline and critical path" `Quick
      test_rounds_and_critical_path;
    Alcotest.test_case "live dump parses back and re-verifies" `Quick
      test_live_round_trip;
  ]
