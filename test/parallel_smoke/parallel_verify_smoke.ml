(* Parallel-verify smoke (OCaml 5.x only): drive the exact closure the
   D5-D8 domain-safety lint certifies — Schnorr / DLEQ / multisig
   verification, fixed-base cache and Fp fast path enabled, Registry
   counters and Profile spans live — from several concurrent domains,
   and check every domain agrees with the sequential baseline.

   This is the workload the CI `domain-safety` job runs under a
   ThreadSanitizer compiler variant: any unsynchronized access the
   static pass missed shows up here as a TSan report (and, for the lazy
   / cache hazards, as nondeterministic verdicts). *)

let domains = 4
let sigs_per_domain = 24

let () =
  let rng = Icc_sim.Rng.create 0x5eed in
  let rand_bits () = Icc_sim.Rng.bits61 rng in
  (* Exercise the observability layer concurrently too. *)
  Icc_obs.Profile.set_enabled true;
  (* Fixture material, prepared sequentially before any spawn. *)
  let keys = Array.init domains (fun _ -> Icc_crypto.Schnorr.keygen rand_bits) in
  let msgs =
    Array.init domains (fun d ->
        Array.init sigs_per_domain (Printf.sprintf "block %d/%d" d))
  in
  let sigs =
    Array.mapi
      (fun d (sk, _) -> Array.map (Icc_crypto.Schnorr.sign sk) msgs.(d))
      keys
  in
  let exponent = Icc_crypto.Group.random_scalar rand_bits in
  let base2 =
    Icc_crypto.Group.hash_to_group (Icc_crypto.Sha256.digest_string "beacon")
  in
  let a = Icc_crypto.Group.base_pow exponent in
  let b = Icc_crypto.Group.pow base2 exponent in
  let dleq =
    Icc_crypto.Dleq.prove ~base1:Icc_crypto.Group.generator ~base2 ~exponent
      ~msg_tag:"smoke"
  in
  let mparams, msecrets = Icc_crypto.Multisig.setup ~threshold_h:3 ~n:4 rand_bits in
  let mmsg = "finalize height 7" in
  let msig =
    match
      Icc_crypto.Multisig.combine mparams mmsg
        (List.map
           (fun s -> Icc_crypto.Multisig.sign_share mparams s mmsg)
           msecrets)
    with
    | Some s -> s
    | None -> failwith "combine failed"
  in
  let verify_all d =
    let _, pk = keys.(d) in
    let ok = ref true in
    for i = 0 to sigs_per_domain - 1 do
      ok :=
        !ok
        && Icc_crypto.Schnorr.verify pk msgs.(d).(i) sigs.(d).(i)
        && Icc_crypto.Dleq.verify ~base1:Icc_crypto.Group.generator ~base2 ~a
             ~b dleq
        && Icc_crypto.Multisig.verify mparams mmsg msig
    done;
    !ok
  in
  (* Sequential baseline, then the same work fanned across domains. *)
  let baseline = Array.init domains verify_all in
  let handles =
    Array.init domains (fun d -> Domain.spawn (fun () -> verify_all d))
  in
  let parallel = Array.map Domain.join handles in
  Array.iteri
    (fun d ok ->
      if not (Bool.equal ok baseline.(d)) then
        failwith (Printf.sprintf "domain %d disagrees with baseline" d);
      if not ok then failwith (Printf.sprintf "domain %d: verification failed" d))
    parallel;
  (* Counters kept counting atomically across the fan-out. *)
  let verifies =
    Icc_obs.Registry.value Icc_crypto.Counters.schnorr_verifies
  in
  let expected = 2 * domains * sigs_per_domain in
  if verifies < expected then
    failwith
      (Printf.sprintf "schnorr_verifies counter lost updates: %d < %d" verifies
         expected);
  (* Second leg: the RLC batch path fanned out over the Dpool worker
     domains — the closure the `pool.parallel_join` span wraps in
     production.  Small chunks force many parallel jobs; one planted
     forgery forces a chunk's per-item fallback pass inside a worker. *)
  let items =
    List.concat_map
      (fun d ->
        let _, pk = keys.(d) in
        List.init sigs_per_domain (fun i -> (pk, msgs.(d).(i), sigs.(d).(i))))
      (List.init domains Fun.id)
  in
  let forged =
    match items with
    | (pk, msg, sg) :: rest ->
        (pk, msg,
         { sg with
           Icc_crypto.Schnorr.response =
             Icc_crypto.Group.scalar_add sg.Icc_crypto.Schnorr.response 1 })
        :: rest
    | [] -> assert false
  in
  let singles l =
    List.map (fun (pk, m, s) -> Icc_crypto.Schnorr.verify pk m s) l
  in
  Icc_crypto.Batch.set_batch_verify true;
  Icc_crypto.Batch.set_max_chunk 4;
  Icc_crypto.Batch.set_parallel_verify true;
  Icc_obs.Dpool.set_workers domains;
  List.iter
    (fun l ->
      if Icc_crypto.Schnorr.verify_batch l <> singles l then
        failwith "parallel batch verdicts diverge from singles")
    [ items; forged ];
  let dleq_items = List.init 32 (fun _ -> (a, b, dleq)) in
  let dleq_batch =
    Icc_crypto.Dleq.verify_batch ~base1:Icc_crypto.Group.generator ~base2
      dleq_items
  in
  if not (List.for_all Fun.id dleq_batch && List.length dleq_batch = 32) then
    failwith "parallel dleq batch rejected honest proofs";
  Icc_crypto.Batch.set_parallel_verify false;
  Icc_crypto.Batch.set_max_chunk 64;
  Icc_obs.Dpool.shutdown ();
  Printf.printf "parallel-verify smoke ok: %d domains x %d sigs + batch pool\n"
    domains sigs_per_domain
