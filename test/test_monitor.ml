(* Online invariant monitor: synthetic event streams pin each detection
   (kind, fatality, event index), live runs exercise the Byzantine
   double-notarization path and the liveness watchdog end to end. *)

let config ?(stall_factor = 8.) ?abort () =
  Icc_sim.Monitor.default_config ~stall_factor ?abort_on_violation:abort
    ~delta:0.02 ()

(* Feed a synthetic stream to a detached monitor, one second per event. *)
let feed ?(n = 4) events =
  let m = Icc_sim.Monitor.create (config ()) in
  Icc_sim.Monitor.observe m ~time:0.
    (Icc_sim.Trace.Run_start { n; label = "synthetic" });
  List.iteri
    (fun i ev -> Icc_sim.Monitor.observe m ~time:(float_of_int (i + 1)) ev)
    events;
  m

let whats l = List.map (fun v -> v.Icc_sim.Monitor.v_what) l

let test_clean_stream () =
  let m =
    feed
      [
        Icc_sim.Trace.Round_entry { party = 1; round = 1 };
        Propose { party = 1; round = 1 };
        Notarize { party = 2; round = 1; block = "aa" };
        Finalize { party = 2; round = 1; block = "aa" };
        Commit { party = 1; round = 1; block = "aa" };
        Commit { party = 2; round = 1; block = "aa" };
        Block_decided { round = 1; block = "aa" };
      ]
  in
  Alcotest.(check bool) "ok" true (Icc_sim.Monitor.ok m);
  Alcotest.(check int) "no violations" 0
    (List.length (Icc_sim.Monitor.violations m));
  Alcotest.(check int) "events counted" 8 (Icc_sim.Monitor.events_seen m)

(* P2: a notarization for a different digest than the round's finalization,
   in either arrival order, is fatal — with the index of the offending
   event. *)
let test_p2_finalize_then_notarize () =
  let m =
    feed
      [
        Icc_sim.Trace.Finalize { party = 1; round = 3; block = "aa" };
        Notarize { party = 2; round = 3; block = "bb" };
      ]
  in
  Alcotest.(check bool) "fatal" false (Icc_sim.Monitor.ok m);
  match Icc_sim.Monitor.fatal_violations m with
  | [ v ] ->
      Alcotest.(check string) "what" "conflicting-notarization"
        v.Icc_sim.Monitor.v_what;
      Alcotest.(check int) "round" 3 v.Icc_sim.Monitor.v_round;
      (* Run_start is event 0; the offending Notarize is event 2. *)
      Alcotest.(check int) "index points at the notarize" 2
        v.Icc_sim.Monitor.v_index
  | l -> Alcotest.failf "expected one fatal violation, got %d" (List.length l)

let test_p2_notarize_then_finalize () =
  let m =
    feed
      [
        Icc_sim.Trace.Notarize { party = 2; round = 3; block = "bb" };
        Finalize { party = 1; round = 3; block = "aa" };
      ]
  in
  Alcotest.(check (list string)) "caught at the finalize"
    [ "conflicting-notarization" ]
    (whats (Icc_sim.Monitor.fatal_violations m))

let test_conflicting_finalization () =
  let m =
    feed
      [
        Icc_sim.Trace.Finalize { party = 1; round = 2; block = "aa" };
        Finalize { party = 2; round = 2; block = "bb" };
      ]
  in
  (* the second digest also conflicts with the first notarization-wise *)
  Alcotest.(check bool) "fatal" false (Icc_sim.Monitor.ok m);
  Alcotest.(check bool) "conflicting-finalization reported" true
    (List.mem "conflicting-finalization"
       (whats (Icc_sim.Monitor.fatal_violations m)))

let test_fork_on_commit () =
  let m =
    feed
      [
        Icc_sim.Trace.Commit { party = 1; round = 1; block = "aa" };
        Commit { party = 2; round = 1; block = "bb" };
      ]
  in
  Alcotest.(check (list string)) "fork" [ "fork" ]
    (whats (Icc_sim.Monitor.fatal_violations m))

let test_commit_regression () =
  let m =
    feed
      [
        Icc_sim.Trace.Commit { party = 1; round = 2; block = "aa" };
        Commit { party = 1; round = 1; block = "bb" };
      ]
  in
  Alcotest.(check (list string)) "regression" [ "commit-regression" ]
    (whats (Icc_sim.Monitor.fatal_violations m))

(* Byzantine evidence the protocol tolerates stays non-fatal. *)
let test_warnings_not_fatal () =
  let m =
    feed
      [
        Icc_sim.Trace.Notarize { party = 2; round = 1; block = "aa" };
        Notarize { party = 2; round = 1; block = "aa" };
        Notarize { party = 3; round = 1; block = "bb" };
        Beacon_share { party = 1; round = 2 };
        Beacon_share { party = 1; round = 2 };
      ]
  in
  Alcotest.(check bool) "still ok" true (Icc_sim.Monitor.ok m);
  Alcotest.(check (list string)) "warnings, in order"
    [ "duplicate-notarize"; "double-notarization"; "duplicate-beacon-share" ]
    (whats (Icc_sim.Monitor.warnings m))

let test_notarize_overflow () =
  let m =
    feed ~n:2
      [
        Icc_sim.Trace.Notarize { party = 1; round = 1; block = "aa" };
        Notarize { party = 2; round = 1; block = "aa" };
        Notarize { party = 1; round = 1; block = "aa" };
      ]
  in
  Alcotest.(check bool) "overflow reported" true
    (List.mem "notarize-overflow"
       (whats (Icc_sim.Monitor.fatal_violations m)))

let test_party_out_of_range () =
  let m = feed [ Icc_sim.Trace.Propose { party = 9; round = 1 } ] in
  Alcotest.(check (list string)) "range" [ "party-out-of-range" ]
    (whats (Icc_sim.Monitor.fatal_violations m))

let test_abort_on_violation () =
  let m = Icc_sim.Monitor.create (config ~abort:true ()) in
  Icc_sim.Monitor.observe m ~time:0.
    (Icc_sim.Trace.Run_start { n = 4; label = "" });
  Icc_sim.Monitor.observe m ~time:1.
    (Icc_sim.Trace.Finalize { party = 1; round = 1; block = "aa" });
  match
    Icc_sim.Monitor.observe m ~time:2.
      (Icc_sim.Trace.Notarize { party = 2; round = 1; block = "bb" })
  with
  | () -> Alcotest.fail "expected Abort"
  | exception Icc_sim.Monitor.Abort v ->
      Alcotest.(check string) "diagnosis" "conflicting-notarization"
        v.Icc_sim.Monitor.v_what;
      Alcotest.(check int) "event index" 2 v.Icc_sim.Monitor.v_index

(* Announcements go back on the bus, after the offending event, so a JSONL
   sink subscribed before the monitor records them on the next lines. *)
let test_violation_announced_on_bus () =
  let tr = Icc_sim.Trace.create () in
  let log = ref [] in
  Icc_sim.Trace.subscribe tr (fun ~time:_ ev ->
      log := Icc_sim.Trace.kind_of ev :: !log);
  let m = Icc_sim.Monitor.attach ~config:(config ()) tr in
  (* timestamps inside the stall budget, so only the violation is announced *)
  Icc_sim.Trace.emit tr ~time:0. (Icc_sim.Trace.Run_start { n = 4; label = "" });
  Icc_sim.Trace.emit tr ~time:0.01
    (Icc_sim.Trace.Finalize { party = 1; round = 1; block = "aa" });
  Icc_sim.Trace.emit tr ~time:0.02
    (Icc_sim.Trace.Notarize { party = 2; round = 1; block = "bb" });
  Alcotest.(check (list string)) "violation follows the offending line"
    [ "run-start"; "finalize"; "notarize"; "monitor-violation" ]
    (List.rev !log);
  (* the monitor counted its own announcement too, keeping indices aligned
     with the JSONL line numbers *)
  Alcotest.(check int) "own announcement counted" 4
    (Icc_sim.Monitor.events_seen m);
  match Icc_sim.Monitor.fatal_violations m with
  | [ v ] -> Alcotest.(check int) "index = line of the notarize" 2 v.v_index
  | _ -> Alcotest.fail "expected one violation"

(* ------------------------------------------- live Byzantine detection *)

(* Over-threshold corruption: keys are generated for t = 2 of n = 7
   (quorum h = 5), but FOUR parties run the promiscuously-sharing
   equivocator — more than the bound the safety proof assumes.  An
   equivocating leader splits its two blocks between parties {1,2,3} and
   {4,5,6,7}; with the corrupt set {1,2,4,5} sharing both halves, block A
   collects {1,2,4,5} + honest 3 = 5 shares and block B collects
   {1,2,4,5} + honest {6,7} = 6 — both quorums, a real double
   notarization (and then conflicting finalizations, breaking P2) that
   the monitor must pin to its round and event index.  The post-hoc Check
   oracles must agree with the online verdict. *)
let byzantine_scenario ~seed ~monitor =
  let eq id = Icc_sim.Adversary.equivocate ~noisy:true id in
  {
    (Icc_core.Runner.default_scenario ~n:7 ~seed) with
    Icc_core.Runner.duration = 1e6;
    max_rounds = Some 8;
    delay = Icc_core.Runner.Fixed_delay 0.02;
    epsilon = 0.05;
    adversary = Some [ eq 1; eq 2; eq 4; eq 5 ];
    monitor;
  }

let test_live_double_notarization () =
  let r =
    Icc_core.Runner.run
      (byzantine_scenario ~seed:5 ~monitor:(Some (config ())))
  in
  match r.Icc_core.Runner.monitor with
  | None -> Alcotest.fail "monitor not attached"
  | Some m ->
      let doubles =
        List.filter
          (fun v -> v.Icc_sim.Monitor.v_what = "double-notarization")
          (Icc_sim.Monitor.warnings m)
      in
      Alcotest.(check bool) "double notarization detected online" true
        (doubles <> []);
      List.iter
        (fun v ->
          Alcotest.(check bool) "round reported" true
            (v.Icc_sim.Monitor.v_round >= 1);
          Alcotest.(check bool) "event index reported" true
            (v.Icc_sim.Monitor.v_index > 0))
        doubles;
      (* h = n - t = 2 < n/2: finalizations for conflicting blocks follow,
         so the online monitor and the post-hoc oracles both flag P2 *)
      Alcotest.(check bool) "online verdict matches post-hoc P2 oracle" true
        (Icc_sim.Monitor.ok m = r.Icc_core.Runner.p2_ok)

let test_live_abort_carries_diagnosis () =
  match
    Icc_core.Runner.run
      (byzantine_scenario ~seed:5 ~monitor:(Some (config ~abort:true ())))
  with
  | _ -> Alcotest.fail "expected the monitored run to abort"
  | exception Icc_sim.Monitor.Abort v ->
      Alcotest.(check bool) "fatal" true v.Icc_sim.Monitor.v_fatal;
      Alcotest.(check bool) "round pinned" true (v.Icc_sim.Monitor.v_round >= 1)

(* --------------------------------------------------- liveness watchdog *)

(* A start-of-run partition (the async_until hold machinery) starves round
   1's notarization pipeline past stall_factor * delta; the watchdog must
   flag the stall and clear it once the partition lifts. *)
let stall_scenario ~async_until ~monitor =
  {
    (Icc_core.Runner.default_scenario ~n:4 ~seed:7) with
    Icc_core.Runner.duration = 1e6;
    max_rounds = Some 4;
    delay = Icc_core.Runner.Fixed_delay 0.02;
    epsilon = 0.05;
    async_until;
    monitor;
  }

let test_stall_flagged_and_cleared () =
  let r =
    Icc_core.Runner.run
      (stall_scenario ~async_until:1.0 ~monitor:(Some (config ())))
  in
  let m = Option.get r.Icc_core.Runner.monitor in
  let stalls = Icc_sim.Monitor.stalls m in
  Alcotest.(check bool) "watchdog fired" true (stalls <> []);
  let round1 =
    List.filter (fun st -> st.Icc_sim.Monitor.st_round = 1) stalls
  in
  Alcotest.(check bool) "round 1 pipeline flagged" true (round1 <> []);
  List.iter
    (fun st ->
      Alcotest.(check bool)
        (Printf.sprintf "stall of round %d (%s) waited past the budget"
           st.Icc_sim.Monitor.st_round st.Icc_sim.Monitor.st_stage)
        true
        (st.Icc_sim.Monitor.st_flagged_at -. st.Icc_sim.Monitor.st_since
        >= 8. *. 0.02))
    stalls;
  (* the partition lifted: every stall recovered *)
  Alcotest.(check (list int)) "no unrecovered stall" []
    (Icc_sim.Monitor.stalled_rounds m);
  Alcotest.(check bool) "stalls are not violations" true
    (Icc_sim.Monitor.ok m && Icc_sim.Monitor.violations m = [])

let test_no_stall_without_partition () =
  let r =
    Icc_core.Runner.run
      (stall_scenario ~async_until:0. ~monitor:(Some (config ())))
  in
  let m = Option.get r.Icc_core.Runner.monitor in
  Alcotest.(check int) "quiet watchdog" 0
    (List.length (Icc_sim.Monitor.stalls m))

(* Baseline harnesses attach the same monitor. *)
let test_baseline_monitored () =
  let scenario =
    {
      (Icc_baselines.Harness.default_scenario ~n:4 ~seed:3) with
      Icc_baselines.Harness.duration = 5.;
      monitor = Some (Icc_sim.Monitor.default_config ~delta:1.0 ());
    }
  in
  let r = Icc_baselines.Pbft.run scenario in
  match r.Icc_baselines.Harness.monitor with
  | None -> Alcotest.fail "monitor not attached"
  | Some m ->
      Alcotest.(check bool) "clean pbft run" true (Icc_sim.Monitor.ok m);
      Alcotest.(check bool) "saw events" true
        (Icc_sim.Monitor.events_seen m > 0)

let suite =
  [
    Alcotest.test_case "clean stream stays clean" `Quick test_clean_stream;
    Alcotest.test_case "P2: finalize then conflicting notarize" `Quick
      test_p2_finalize_then_notarize;
    Alcotest.test_case "P2: notarize then conflicting finalize" `Quick
      test_p2_notarize_then_finalize;
    Alcotest.test_case "conflicting finalizations are fatal" `Quick
      test_conflicting_finalization;
    Alcotest.test_case "commit fork is fatal" `Quick test_fork_on_commit;
    Alcotest.test_case "commit regression is fatal" `Quick
      test_commit_regression;
    Alcotest.test_case "duplicates and double notarization warn only" `Quick
      test_warnings_not_fatal;
    Alcotest.test_case "more than n notarize events is fatal" `Quick
      test_notarize_overflow;
    Alcotest.test_case "party id out of range is fatal" `Quick
      test_party_out_of_range;
    Alcotest.test_case "abort_on_violation raises with diagnosis" `Quick
      test_abort_on_violation;
    Alcotest.test_case "violations announced on the bus, indices aligned"
      `Quick test_violation_announced_on_bus;
    Alcotest.test_case "live double notarization detected online" `Quick
      test_live_double_notarization;
    Alcotest.test_case "live abort carries an event-indexed diagnosis" `Quick
      test_live_abort_carries_diagnosis;
    Alcotest.test_case "watchdog flags and clears a partition stall" `Quick
      test_stall_flagged_and_cleared;
    Alcotest.test_case "watchdog quiet without a partition" `Quick
      test_no_stall_without_partition;
    Alcotest.test_case "baseline harness attaches the monitor" `Quick
      test_baseline_monitored;
  ]
