(* Clean domain safety: synchronized cells (Atomic), domain-local state
   (Icc_obs.Dls), lock-protected sections (Icc_obs.Lock) and function
   locals produce no findings. *)

let enabled = Atomic.make true
let cache_key = Icc_obs.Dls.new_key (fun () -> Hashtbl.create 8)
let stats_lock = Icc_obs.Lock.create ()

let verify x =
  if Atomic.get enabled then begin
    let t = Icc_obs.Dls.get cache_key in
    Hashtbl.replace t x true;
    Icc_obs.Lock.with_lock stats_lock (fun () -> x >= 0)
  end
  else begin
    let local = Hashtbl.create 4 in
    Hashtbl.mem local x
  end
[@@icc.domain_entry]
