(* D3: ambient nondeterminism — wall clocks, self-seeded RNGs,
   layout-dependent serialization — and float structural equality. *)
let seed () = Random.self_init ()
let now () = Sys.time ()
let blob x = Marshal.to_string x []
let close (a : float) (b : float) = a = b
