(* A valid [@icc.allow] — known rule id plus a justification after the
   colon — suppresses the finding it covers. *)
let cardinality (tbl : (int, string) Hashtbl.t) =
  (Hashtbl.fold (fun _ _ acc -> acc + 1) tbl 0
   [@icc.allow
     "d2-hashtbl-order: commutative count — the result is independent of \
      visit order"])
