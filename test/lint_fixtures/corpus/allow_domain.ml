(* Domain-safety escape hatches: [@@icc.domain_safe] on confined state
   (suppresses D5 and every use), a use-site [@icc.allow], and the two
   stale-hatch meta findings.  [scratch] keeps its D5 on purpose: the
   use-site allow covers the escape, not the declaration. *)

let seen : (int, unit) Hashtbl.t = Hashtbl.create 16
[@@icc.domain_safe
  "all writes happen during single-domain setup, before any spawn"]

let scratch = ref 0

let immutable = 42 [@@icc.domain_safe "stale: nothing mutable here"]

let check x =
  Hashtbl.mem seen x
  && (scratch := x;
      true)
     [@icc.allow
       "d6-domain-escape: scratch is re-seeded per call and never read \
        across domains"]
[@@icc.domain_entry]

let unused_hatch x = (x + 1) [@icc.allow "d8-nonatomic-rmw: nothing here"]
