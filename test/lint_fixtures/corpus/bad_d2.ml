(* D2: hashtable iteration order escaping into a result.  The fold's
   accumulation order depends on bucket layout, which depends on
   Hashtbl.hash and the insertion history. *)
let keys (tbl : (int, string) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let dump (tbl : (int, string) Hashtbl.t) =
  Hashtbl.iter (fun k v -> print_endline (string_of_int k ^ v)) tbl
