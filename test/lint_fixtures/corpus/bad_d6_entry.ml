(* D6: the entry's closure escapes into another module's mutable state;
   the findings land on Bad_d5_state's declarations and use sites. *)

let verify x =
  Bad_d5_state.record x;
  x >= 0
[@@icc.domain_entry]

(* The entry marker only makes sense on a function. *)
let not_a_function = 42 [@@icc.domain_entry]
