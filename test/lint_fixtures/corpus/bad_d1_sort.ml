(* D1: polymorphic [compare] at a protocol type.  Block.t is a protocol
   record; its field order is an implementation detail, so structural
   ordering is a determinism hazard — write a keyed comparator. *)
let sort_blocks (bs : Icc_core.Block.t list) = List.sort compare bs

(* Float compare spelled polymorphically: flagged with a Float.compare hint. *)
let sort_times (ts : float list) = List.sort compare ts
