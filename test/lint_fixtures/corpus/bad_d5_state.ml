(* D5/D6: shared mutable state in a module with no entry point of its
   own — it only becomes domain-sensitive because Bad_d6_entry's closure
   reaches [record]. *)

let table : (int, int) Hashtbl.t = Hashtbl.create 16
let log = Buffer.create 64

let record k =
  Buffer.add_string log "x";
  Hashtbl.replace table k 1
