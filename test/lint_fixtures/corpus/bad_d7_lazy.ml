(* D7: a shared lazy forced from the parallel closure — two domains can
   force concurrently. *)

let config : (int, int) Hashtbl.t lazy_t = lazy (Hashtbl.create 16)

let lookup k =
  let t = Lazy.force config in
  Hashtbl.mem t k
[@@icc.domain_entry]
