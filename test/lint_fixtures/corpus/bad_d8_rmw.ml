(* D8: non-atomic read-modify-write on shared refs (lost updates), next
   to plain shared reads/writes that are D6 instead. *)

let hits = ref 0
let total = ref 0
let peak = ref 0

let bump n =
  incr hits;
  total := !total + n;
  if n > !peak then peak := n
[@@icc.domain_entry]
