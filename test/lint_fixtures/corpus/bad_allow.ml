(* Misused [@icc.allow]: an unknown rule id is a finding in itself and
   suppresses nothing; an allow that never matches anything is flagged as
   dead weight. *)
let keys (tbl : (int, string) Hashtbl.t) =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
   [@icc.allow "no-such-rule: this id does not exist"])

let no_justification (tbl : (int, string) Hashtbl.t) =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] [@icc.allow "d2-hashtbl-order"])

let unused = (42 [@icc.allow "d2-hashtbl-order: nothing here triggers it"])
