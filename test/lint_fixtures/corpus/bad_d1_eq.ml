(* D1: structural [=] at protocol types — Block.t equality must go
   through its hash. *)
let same_block (a : Icc_core.Block.t) (b : Icc_core.Block.t) = a = b

(* Membership tests carry the same hazard through their element type. *)
let mem_block (b : Icc_core.Block.t) (bs : Icc_core.Block.t list) =
  List.mem b bs
