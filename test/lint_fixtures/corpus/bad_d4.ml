(* D4: catch-all exception handlers swallow Out_of_memory, Stack_overflow
   and programming errors alike. *)
let parse s = try int_of_string s with _ -> 0

let guarded f = try f () with _ -> ()
