(* Clean counterpart to bad_d2: the fold feeds a keyed sort, so the
   escaping value no longer depends on bucket order. *)
let keys (tbl : (int, string) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare

let dump (tbl : (int, string) Hashtbl.t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (k1, _) (k2, _) -> Int.compare k1 k2)
  |> List.iter (fun (k, v) -> print_endline (string_of_int k ^ v))
