(* Clean counterparts to bad_d1_*: keyed comparators and dedicated
   equality functions produce no findings. *)
let sort_rounds (rs : int list) = List.sort Int.compare rs
let sort_times (ts : float list) = List.sort Float.compare ts

let sort_blocks (bs : Icc_core.Block.t list) =
  List.sort
    (fun (a : Icc_core.Block.t) (b : Icc_core.Block.t) ->
      Int.compare a.Icc_core.Block.round b.Icc_core.Block.round)
    bs

let same_block (a : Icc_core.Block.t) (b : Icc_core.Block.t) =
  Icc_crypto.Sha256.equal (Icc_core.Block.hash a) (Icc_core.Block.hash b)

let mem_block (b : Icc_core.Block.t) (bs : Icc_core.Block.t list) =
  List.exists (same_block b) bs
