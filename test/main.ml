let () =
  Alcotest.run "icc"
    [
      ("fp", Test_fp.suite);
      ("primes", Test_primes.suite);
      ("sha256", Test_sha256.suite);
      ("group", Test_group.suite);
      ("schnorr", Test_schnorr.suite);
      ("shamir", Test_shamir.suite);
      ("dleq", Test_dleq.suite);
      ("vuf", Test_vuf.suite);
      ("multisig", Test_multisig.suite);
      ("dkg", Test_dkg.suite);
      ("merkle", Test_merkle.suite);
      ("sim", Test_sim.suite);
      ("trace", Test_trace.suite);
      ("obs", Test_obs.suite);
      ("domain", Test_domain.suite);
      ("monitor", Test_monitor.suite);
      ("replay", Test_replay.suite);
      ("erasure", Test_erasure.suite);
      ("block", Test_block.suite);
      ("pool", Test_pool.suite);
      ("codec", Test_codec.suite);
      ("pool-properties", Test_pool_properties.suite);
      ("check", Test_check.suite);
      ("beacon", Test_beacon.suite);
      ("icc0", Test_icc0.suite);
      ("party", Test_party.suite);
      ("extensions", Test_extensions.suite);
      ("gossip-unit", Test_gossip_unit.suite);
      ("rbc-unit", Test_rbc_unit.suite);
      ("icc1", Test_icc1.suite);
      ("icc2", Test_icc2.suite);
      ("adversary", Test_adversary.suite);
      ("fault", Test_fault.suite);
      ("baselines", Test_baselines.suite);
      ("tendermint", Test_tendermint.suite);
      ("smr", Test_smr.suite);
      (* last: its saturation case deliberately churns the process-global
         fixed-base cache past capacity *)
      ("batch", Test_batch.suite);
    ]
