(* Targeted protocol-mechanism tests: the echo rule, selective delivery by
   a faulty sender, and message-bound sanity.  Fault injection happens at
   the transport layer, wrapping ICC0's direct transport. *)

(* A transport that drops messages according to [drop ~src ~dst msg]. *)
let lossy_transport ~drop : Icc_core.Runner.transport =
 fun ctx ->
  let inner = Icc_core.Runner.direct_transport ctx in
  {
    Icc_core.Runner.tx_broadcast =
      (fun ~src msg ->
        (* emulate per-destination sending so the filter can apply *)
        for dst = 1 to ctx.Icc_core.Runner.tr_n do
          if not (drop ~src ~dst msg) then
            inner.Icc_core.Runner.tx_unicast ~src ~dst msg
        done);
    tx_unicast =
      (fun ~src ~dst msg ->
        if not (drop ~src ~dst msg) then
          inner.Icc_core.Runner.tx_unicast ~src ~dst msg);
  }

let base ?(n = 4) ?(seed = 5) () =
  {
    (Icc_core.Runner.default_scenario ~n ~seed) with
    Icc_core.Runner.duration = 20.;
    delay = Icc_core.Runner.Fixed_delay 0.05;
    epsilon = 0.2;
    delta_bnd = 0.3;
  }

let is_proposal = function Icc_core.Message.Proposal _ -> true | _ -> false

(* A transport that sends every message twice: with a fixed delay model both
   copies arrive back-to-back, so the run exercises duplicate delivery of
   every single protocol message. *)
let duplicating_transport : Icc_core.Runner.transport =
 fun ctx ->
  let inner = Icc_core.Runner.direct_transport ctx in
  {
    Icc_core.Runner.tx_broadcast =
      (fun ~src msg ->
        inner.Icc_core.Runner.tx_broadcast ~src msg;
        inner.Icc_core.Runner.tx_broadcast ~src msg);
    tx_unicast =
      (fun ~src ~dst msg ->
        inner.Icc_core.Runner.tx_unicast ~src ~dst msg;
        inner.Icc_core.Runner.tx_unicast ~src ~dst msg);
  }

let test_on_message_idempotent () =
  (* Party.on_message must be idempotent: replaying every message twice
     (second copy arriving immediately after the first, same content) leaves
     the committed chains byte-identical to the clean run.  The fixed delay
     model keeps the duplicate from perturbing any RNG stream, so any chain
     difference is a genuine idempotency failure. *)
  let once = Icc_core.Runner.run (base ()) in
  let twice =
    Icc_core.Runner.run
      { (base ()) with
        Icc_core.Runner.transport = Some duplicating_transport }
  in
  Alcotest.(check bool) "safety under duplication" true
    twice.Icc_core.Runner.safety_ok;
  Alcotest.(check int) "same rounds decided"
    once.Icc_core.Runner.rounds_decided twice.Icc_core.Runner.rounds_decided;
  Alcotest.(check int) "same parties reporting"
    (List.length once.Icc_core.Runner.outputs)
    (List.length twice.Icc_core.Runner.outputs);
  List.iter2
    (fun (id1, c1) (id2, c2) ->
      Alcotest.(check int) "same party id" id1 id2;
      Alcotest.(check bool)
        (Printf.sprintf "party %d chain identical under duplication" id1)
        true
        (c1 = c2))
    once.Icc_core.Runner.outputs twice.Icc_core.Runner.outputs

let test_echo_repairs_selective_proposals () =
  (* party 1's proposals never reach parties 3 and 4 directly; the echo
     step (condition (c)) must still disseminate them, so liveness and the
     usual latency hold *)
  let drop ~src ~dst msg = src = 1 && (dst = 3 || dst = 4) && is_proposal msg in
  let r =
    Icc_core.Runner.run
      { (base ()) with
        Icc_core.Runner.transport = Some (lossy_transport ~drop) }
  in
  Alcotest.(check bool) "safety" true r.Icc_core.Runner.safety_ok;
  Alcotest.(check bool)
    (Printf.sprintf "liveness (%d rounds)" r.Icc_core.Runner.rounds_decided)
    true
    (r.Icc_core.Runner.rounds_decided >= 50);
  (* party 1's blocks still get committed in the rounds it leads *)
  match r.Icc_core.Runner.outputs with
  | (_, chain) :: _ ->
      let by_one =
        List.length
          (List.filter (fun b -> b.Icc_core.Block.proposer = 1) chain)
      in
      Alcotest.(check bool)
        (Printf.sprintf "party 1 proposals committed (%d)" by_one)
        true (by_one > 5)
  | [] -> Alcotest.fail "no outputs"

let test_withheld_notarization_shares_tolerated () =
  (* one party's notarization shares are all lost: quorum n-t = 3 of the
     remaining parties still notarizes every round *)
  let drop ~src ~dst:_ msg =
    src = 2
    &&
    match msg with Icc_core.Message.Notarization_share _ -> true | _ -> false
  in
  let r =
    Icc_core.Runner.run
      { (base ()) with
        Icc_core.Runner.transport = Some (lossy_transport ~drop) }
  in
  Alcotest.(check bool) "safety" true r.Icc_core.Runner.safety_ok;
  Alcotest.(check bool) "liveness" true (r.Icc_core.Runner.rounds_decided >= 50)

let test_lost_finalization_shares_defer_decisions () =
  (* finalization shares from two parties are lost: no round reaches the
     n-t finalization quorum directly... with n=4, t=1 quorum 3 needs 3 of
     4; dropping 2 parties' shares leaves 2 < 3 — yet safety and chain
     growth must persist: blocks commit only when... in fact nothing can
     finalize, so nothing commits; P1 still holds (notarized every round).

     This documents that finalization — unlike notarization — is optional
     for tree growth (paper §3.3: the tree grows in every round). *)
  let drop ~src ~dst:_ msg =
    (src = 2 || src = 3)
    &&
    match msg with Icc_core.Message.Finalization_share _ -> true | _ -> false
  in
  let r =
    Icc_core.Runner.run
      { (base ()) with
        Icc_core.Runner.duration = 8.;
        Icc_core.Runner.transport = Some (lossy_transport ~drop) }
  in
  Alcotest.(check bool) "safety" true r.Icc_core.Runner.safety_ok;
  Alcotest.(check int) "nothing finalized" 0 r.Icc_core.Runner.rounds_decided;
  Alcotest.(check bool) "p1 (tree keeps growing)" true r.Icc_core.Runner.p1_ok

let test_proposal_broadcast_bound () =
  (* each honest party broadcasts O(1) proposals (own + echoes) per round in
     synchronous honest execution: kind-count proposal <= ~2 per party-round *)
  let r = Icc_core.Runner.run (base ~n:7 ()) in
  let proposals =
    Icc_sim.Metrics.msgs_of_kind r.Icc_core.Runner.metrics "proposal"
  in
  let rounds = r.Icc_core.Runner.rounds_decided in
  (* unicast transmissions: each broadcast counts n-1 *)
  let broadcasts = proposals / 6 in
  let per_party_round = float_of_int broadcasts /. float_of_int (7 * rounds) in
  Alcotest.(check bool)
    (Printf.sprintf "<= 2 proposal broadcasts per party-round (%.2f)"
       per_party_round)
    true
    (per_party_round <= 2.0)

let test_beacon_pipelining_is_one_round_ahead () =
  (* the adversary can know the beacon one round ahead (paper §3.5): after a
     run, party pools contain beacon shares for round rounds_finished + 1 *)
  let r = Icc_core.Runner.run { (base ()) with duration = 5. } in
  ignore r;
  (* indirect check: rounds complete at all implies pipelining worked, since
     round k+1's shares are broadcast during round k; verified directly in
     test_beacon.  Here we assert the run advanced well past round 1. *)
  Alcotest.(check bool) "advanced" true (r.Icc_core.Runner.rounds_decided > 10)

let test_vacuous_n_still_finalization_shares () =
  (* Paper §3.3 (Fig. 2): a party broadcasts a finalization share for round
     k iff N ⊆ {B}.  When the party finishes the round having shared
     NOTHING (N = ∅) — here, a fully notarized block arrives before its own
     notarization-share timer fires — the containment is vacuously true and
     it must still attest.  Pins the [List.for_all] semantics in
     [Party.condition_a]. *)
  let kit = Kit.make ~n:4 ~t:1 () in
  let engine = Icc_sim.Engine.create () in
  let sent = ref [] in
  let record msg = sent := msg :: !sent in
  let env =
    {
      Icc_core.Party.config =
        Icc_core.Config.recommended ~delta_bnd:1.0 ~epsilon:0.5 ~n:4 ~t:1 ();
      system = kit.Kit.system;
      engine;
      send_broadcast = (fun ~src:_ msg -> record msg);
      send_unicast = (fun ~src:_ ~dst:_ msg -> record msg);
      trace = Icc_sim.Trace.create ();
      get_payload =
        (fun ~pool:_ ~parent:_ ~round:_ ~proposer:_ ->
          Icc_core.Types.empty_payload);
      on_output = (fun ~party:_ _ -> ());
      adversary = None;
    }
  in
  let p =
    Icc_core.Party.create env ~id:1 ~keys:(Kit.key kit 1)
      ~behavior:Icc_core.Party.honest
  in
  Icc_core.Party.start p;
  (* t+1 = 2 peer shares make round 1's beacon computable (the party's own
     share is broadcast, not self-delivered) *)
  let beacon_msg =
    Icc_core.Types.beacon_text ~round:1
      ~prev_sigma:Icc_core.Types.beacon_genesis
  in
  List.iter
    (fun signer ->
      Icc_core.Party.on_message p
        (Icc_core.Message.Beacon_share
           {
             b_round = 1;
             b_signer = signer;
             b_share =
               Icc_crypto.Threshold_vuf.sign_share
                 kit.Kit.system.Icc_crypto.Keygen.beacon
                 (Kit.key kit signer).Icc_crypto.Keygen.beacon_key beacon_msg;
           }))
    [ 2; 3 ];
  Alcotest.(check int) "round 1 entered" 1 (Icc_core.Party.current_round p);
  (* party 2's block arrives already carrying a full notarization: condition
     (a) finishes the round before any timer could fire (time stands still —
     the engine never runs), so party 1 notarization-shared nothing *)
  let b = Kit.block ~round:1 ~proposer:2 ~parent:None () in
  Icc_core.Party.on_message p
    (Icc_core.Message.Proposal
       {
         Icc_core.Message.p_block = b;
         p_authenticator = Kit.authenticator kit b;
         p_parent_cert = None;
       });
  Icc_core.Party.on_message p
    (Icc_core.Message.Notarization (Kit.notarization kit b [ 2; 3; 4 ]));
  Alcotest.(check int) "finished round 1" 1 (Icc_core.Party.rounds_finished p);
  Alcotest.(check int) "shared nothing (N = empty)" 0
    (List.length
       (List.filter
          (function Icc_core.Message.Notarization_share _ -> true | _ -> false)
          !sent));
  let fin_shares_for_b =
    List.filter
      (function
        | Icc_core.Message.Finalization_share s ->
            Icc_crypto.Sha256.equal s.Icc_core.Types.s_block_hash
              (Icc_core.Block.hash b)
        | _ -> false)
      !sent
  in
  Alcotest.(check int) "finalization share broadcast vacuously" 1
    (List.length fin_shares_for_b)

let suite =
  [
    Alcotest.test_case "echo repairs selective proposals" `Quick
      test_echo_repairs_selective_proposals;
    Alcotest.test_case "withheld notarization shares" `Quick
      test_withheld_notarization_shares_tolerated;
    Alcotest.test_case "lost finalization shares" `Quick
      test_lost_finalization_shares_defer_decisions;
    Alcotest.test_case "proposal broadcast bound" `Quick
      test_proposal_broadcast_bound;
    Alcotest.test_case "beacon pipelining" `Quick
      test_beacon_pipelining_is_one_round_ahead;
    Alcotest.test_case "on_message idempotent under full duplication" `Quick
      test_on_message_idempotent;
    Alcotest.test_case "vacuous N still finalization-shares" `Quick
      test_vacuous_n_still_finalization_shares;
  ]
