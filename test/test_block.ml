(* Block, payload and config tests. *)

let test_hash_binds_fields () =
  let kit = Kit.make () in
  ignore kit;
  let b1 = Kit.block ~round:1 ~proposer:1 ~parent:None () in
  let b2 = Kit.block ~round:1 ~proposer:2 ~parent:None () in
  let b3 = Kit.block ~round:2 ~proposer:1 ~parent:(Some b1) () in
  let payload = { Icc_core.Types.commands = []; filler_size = 7 } in
  let b4 = Kit.block ~payload ~round:1 ~proposer:1 ~parent:None () in
  let hashes = List.map Icc_core.Block.hash [ b1; b2; b3; b4 ] in
  Alcotest.(check int)
    "all distinct" 4
    (List.length (List.sort_uniq compare (List.map Icc_crypto.Sha256.to_hex hashes)))

let test_hash_deterministic () =
  let b = Kit.block ~round:3 ~proposer:2 ~parent:None () in
  Alcotest.(check string) "stable"
    (Icc_crypto.Sha256.to_hex (Icc_core.Block.hash b))
    (Icc_crypto.Sha256.to_hex (Icc_core.Block.hash b))

let test_digest_memoization_equivalent () =
  (* The digest stored by [create] must equal what recomputation yields:
     [hash] answers identically with memoization on or off. *)
  let b1 = Kit.block ~round:5 ~proposer:3 ~parent:None () in
  let b2 = Kit.block ~round:6 ~proposer:1 ~parent:(Some b1) () in
  Alcotest.(check bool) "memoization on by default" true
    (Icc_core.Block.memoization_enabled ());
  let memoized = List.map Icc_core.Block.hash [ b1; b2 ] in
  Icc_core.Block.set_memoization false;
  let recomputed = List.map Icc_core.Block.hash [ b1; b2 ] in
  Icc_core.Block.set_memoization true;
  List.iter2
    (fun h h' ->
      Alcotest.(check string) "same digest"
        (Icc_crypto.Sha256.to_hex h)
        (Icc_crypto.Sha256.to_hex h'))
    memoized recomputed;
  Alcotest.(check string) "stored digest is the hash"
    (Icc_crypto.Sha256.to_hex (List.hd memoized))
    (Icc_crypto.Sha256.to_hex b1.Icc_core.Block.digest)

let test_round_zero_rejected () =
  Alcotest.check_raises "round 0" (Invalid_argument "Block.create: rounds start at 1")
    (fun () ->
      ignore
        (Icc_core.Block.create ~round:0 ~proposer:1
           ~parent_hash:Icc_core.Block.root_hash
           ~payload:Icc_core.Types.empty_payload))

let test_payload_size () =
  let commands =
    [
      Icc_core.Types.command ~cmd_id:1 ~cmd_size:100 ~submitted_at:0. ();
      Icc_core.Types.command ~cmd_id:2 ~cmd_size:50 ~submitted_at:0. ();
    ]
  in
  let p = { Icc_core.Types.commands; filler_size = 10 } in
  Alcotest.(check int) "sum" 160 (Icc_core.Types.payload_size p);
  Alcotest.(check int) "wire size" (64 + 160)
    (Icc_core.Block.wire_size
       (Kit.block ~payload:p ~round:1 ~proposer:1 ~parent:None ()))

let test_payload_digest_binds_tags () =
  let mk tag =
    {
      Icc_core.Types.commands =
        [ Icc_core.Types.command ~tag ~cmd_id:1 ~cmd_size:8 ~submitted_at:0. () ];
      filler_size = 0;
    }
  in
  Alcotest.(check bool) "tag changes digest" false
    (Icc_crypto.Sha256.equal
       (Icc_core.Types.payload_digest (mk "a"))
       (Icc_core.Types.payload_digest (mk "b")))

let test_config_recommended () =
  let c = Icc_core.Config.recommended ~delta_bnd:0.5 ~epsilon:0.1 ~n:7 ~t:2 () in
  Alcotest.(check (float 1e-9)) "prop 0" 0. (c.Icc_core.Config.delta_prop 0);
  Alcotest.(check (float 1e-9)) "prop 2" 2. (c.Icc_core.Config.delta_prop 2);
  Alcotest.(check (float 1e-9)) "ntry 0" 0.1 (c.Icc_core.Config.delta_ntry 0);
  Alcotest.(check (float 1e-9)) "ntry 1" 1.1 (c.Icc_core.Config.delta_ntry 1);
  Alcotest.(check int) "quorum" 5 (Icc_core.Config.quorum c);
  (* liveness requirement (paper): 2*delta + prop(0) <= ntry(1) *)
  Alcotest.(check bool) "liveness delta<=bnd" true
    (Icc_core.Config.liveness_requirement_holds c ~delta:0.5);
  Alcotest.(check bool) "liveness delta>bnd" false
    (Icc_core.Config.liveness_requirement_holds c ~delta:0.6)

let test_config_rejects_bad_t () =
  Alcotest.check_raises "3t >= n"
    (Invalid_argument "Config.recommended: need 3t < n") (fun () ->
      ignore (Icc_core.Config.recommended ~n:6 ~t:2 ()))

let test_non_responsive_waits () =
  let c = Icc_core.Config.non_responsive ~delta_bnd:1.0 ~n:4 ~t:1 () in
  Alcotest.(check (float 1e-9)) "ntry(0) = delta_bnd" 1.0
    (c.Icc_core.Config.delta_ntry 0)

let prop_delay_functions_nondecreasing =
  QCheck.Test.make ~name:"delay functions non-decreasing" ~count:50
    (QCheck.pair (QCheck.int_range 0 30) (QCheck.int_range 0 30))
    (fun (r1, r2) ->
      let c = Icc_core.Config.recommended ~delta_bnd:0.7 ~epsilon:0.2 ~n:100 ~t:33 () in
      let lo = min r1 r2 and hi = max r1 r2 in
      c.Icc_core.Config.delta_prop lo <= c.Icc_core.Config.delta_prop hi
      && c.Icc_core.Config.delta_ntry lo <= c.Icc_core.Config.delta_ntry hi)

let suite =
  [
    Alcotest.test_case "hash binds fields" `Quick test_hash_binds_fields;
    Alcotest.test_case "hash deterministic" `Quick test_hash_deterministic;
    Alcotest.test_case "digest memoization equivalent" `Quick
      test_digest_memoization_equivalent;
    Alcotest.test_case "round 0 rejected" `Quick test_round_zero_rejected;
    Alcotest.test_case "payload size" `Quick test_payload_size;
    Alcotest.test_case "payload digest tags" `Quick test_payload_digest_binds_tags;
    Alcotest.test_case "config recommended" `Quick test_config_recommended;
    Alcotest.test_case "config bad t" `Quick test_config_rejects_bad_t;
    Alcotest.test_case "non-responsive" `Quick test_non_responsive_waits;
    QCheck_alcotest.to_alcotest prop_delay_functions_nondecreasing;
  ]
