(* Simulator substrate tests: rng, heap, engine, network, metrics. *)

let test_rng_deterministic () =
  let a = Icc_sim.Rng.create 42 and b = Icc_sim.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Icc_sim.Rng.bits61 a) (Icc_sim.Rng.bits61 b)
  done

let test_rng_int_bounds () =
  let r = Icc_sim.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Icc_sim.Rng.int r 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_shuffle_permutes () =
  let r = Icc_sim.Rng.create 3 in
  let arr = Array.init 20 Fun.id in
  Icc_sim.Rng.shuffle_in_place r arr;
  Alcotest.(check (list int)) "same multiset"
    (List.init 20 Fun.id)
    (List.sort compare (Array.to_list arr))

let test_heap_orders () =
  let h = Heap_probe.make [ (3., 0); (1., 1); (2., 2); (1., 3); (0.5, 4) ] in
  Alcotest.(check (list int)) "pop order" [ 4; 1; 3; 2; 0 ] (Heap_probe.drain h)

let test_engine_runs_in_order () =
  let e = Icc_sim.Engine.create () in
  let log = ref [] in
  Icc_sim.Engine.schedule e ~delay:2. (fun () -> log := 2 :: !log);
  Icc_sim.Engine.schedule e ~delay:1. (fun () ->
      log := 1 :: !log;
      Icc_sim.Engine.schedule e ~delay:0.5 (fun () -> log := 15 :: !log));
  Icc_sim.Engine.run e;
  Alcotest.(check (list int)) "order" [ 1; 15; 2 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 2. (Icc_sim.Engine.now e)

let test_engine_until () =
  let e = Icc_sim.Engine.create () in
  let hits = ref 0 in
  for i = 1 to 10 do
    Icc_sim.Engine.schedule e ~delay:(float_of_int i) (fun () -> incr hits)
  done;
  Icc_sim.Engine.run ~until:5.5 e;
  Alcotest.(check int) "only first five" 5 !hits;
  Alcotest.(check (float 1e-9)) "clock parked at until" 5.5 (Icc_sim.Engine.now e);
  Icc_sim.Engine.run e;
  Alcotest.(check int) "rest after resume" 10 !hits

let test_engine_rejects_past () =
  let e = Icc_sim.Engine.create () in
  Icc_sim.Engine.schedule e ~delay:1. (fun () ->
      Alcotest.check_raises "past"
        (Invalid_argument
           "Engine.schedule_at: time 0.500000 is in the past (now 1.000000)")
        (fun () -> Icc_sim.Engine.schedule_at e ~time:0.5 (fun () -> ())));
  Icc_sim.Engine.run e

let make_net ?(n = 4) ?(delay = 0.1) () =
  let env = Icc_sim.Transport.env ~n () in
  let net = Icc_sim.Transport.network_of env ~delay_model:(Fixed delay) () in
  (env.Icc_sim.Transport.engine, env.Icc_sim.Transport.metrics, net)

let test_network_broadcast_delivery () =
  let e, m, net = make_net () in
  let got : (int * string) list ref = ref [] in
  Icc_sim.Network.set_handler net (fun ~dst ~src:_ msg ->
      got := (dst, msg) :: !got);
  Icc_sim.Network.broadcast net ~src:1 ~size:100 ~kind:"blk" "hello";
  Icc_sim.Engine.run e;
  Alcotest.(check int) "all four got it" 4 (List.length !got);
  (* traffic counts only the 3 remote copies *)
  Alcotest.(check int) "bytes" 300 (Icc_sim.Metrics.total_bytes m);
  Alcotest.(check int) "msgs" 3 (Icc_sim.Metrics.total_msgs m);
  Alcotest.(check int) "kind" 3 (Icc_sim.Metrics.msgs_of_kind m "blk")

let test_network_self_delivery_immediate () =
  let e, _, net = make_net ~delay:5. () in
  let at = ref nan in
  Icc_sim.Network.set_handler net (fun ~dst ~src:_ _ ->
      if dst = 2 then at := Icc_sim.Engine.now e);
  Icc_sim.Network.unicast net ~src:2 ~dst:2 ~size:10 ~kind:"x" "m";
  Icc_sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "immediate" 0. !at

let test_network_hold_until () =
  let e, _, net = make_net ~delay:0.1 () in
  let at = ref nan in
  Icc_sim.Network.set_handler net (fun ~dst ~src:_ _ ->
      if dst = 2 then at := Icc_sim.Engine.now e);
  Icc_sim.Network.hold_all_until net 10.;
  Icc_sim.Network.unicast net ~src:1 ~dst:2 ~size:10 ~kind:"x" "m";
  Icc_sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "released at 10 + delay" 10.1 !at

let test_network_link_hold () =
  let e, _, net = make_net ~delay:0.1 () in
  let times = ref [] in
  Icc_sim.Network.set_handler net (fun ~dst ~src:_ _ ->
      times := (dst, Icc_sim.Engine.now e) :: !times);
  (* partition: messages into party 3 held until t=5 *)
  Icc_sim.Network.set_link_hold net (fun _src dst -> if dst = 3 then 5. else 0.);
  Icc_sim.Network.broadcast net ~src:1 ~size:1 ~kind:"x" "m";
  Icc_sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "into 3 held" 5.1 (List.assoc 3 !times);
  Alcotest.(check (float 1e-9)) "into 2 normal" 0.1 (List.assoc 2 !times)

let test_network_send_time_pricing () =
  (* Regression pin for the release semantics documented on
     Network.set_delay_model: every transmission is priced at send time —
     the delay comes from the model installed at the moment of unicast and
     the release floor is read at that same moment.  Swapping the model,
     shortening a hold or extending one afterwards never re-prices a
     message already in flight or already held. *)
  let e, _, net = make_net ~delay:0.1 () in
  let times = ref [] in
  Icc_sim.Network.set_handler net (fun ~dst:_ ~src:_ msg ->
      times := (msg, Icc_sim.Engine.now e) :: !times);
  let at msg = List.assoc msg !times in
  (* 1. model swap does not move an in-flight message *)
  Icc_sim.Network.unicast net ~src:1 ~dst:2 ~size:1 ~kind:"x" "before-swap";
  Icc_sim.Network.set_delay_model net (Icc_sim.Network.Fixed 3.);
  Icc_sim.Network.unicast net ~src:1 ~dst:2 ~size:1 ~kind:"x" "after-swap";
  (* 2. held message keeps its original release even if the hold is
     shortened later; messages sent after the shortening use the new
     hold state *)
  Icc_sim.Network.hold_all_until net 10.;
  Icc_sim.Network.unicast net ~src:1 ~dst:2 ~size:1 ~kind:"x" "held";
  Icc_sim.Engine.schedule_at e ~time:4. (fun () ->
      Icc_sim.Network.hold_all_until net 0.;
      Icc_sim.Network.unicast net ~src:1 ~dst:2 ~size:1 ~kind:"x" "post-heal";
      (* 3. extending the hold after a send does not recapture it *)
      Icc_sim.Network.unicast net ~src:1 ~dst:2 ~size:1 ~kind:"x" "escaped";
      Icc_sim.Network.hold_all_until net 50.);
  Icc_sim.Engine.run ~until:60. e;
  Alcotest.(check (float 1e-9)) "in-flight message not re-priced" 0.1
    (at "before-swap");
  Alcotest.(check (float 1e-9)) "later send uses the new model" 3.
    (at "after-swap");
  Alcotest.(check (float 1e-9)) "held message keeps original release" 13.
    (at "held");
  Alcotest.(check (float 1e-9)) "send after heal is unheld" 7.
    (at "post-heal");
  Alcotest.(check (float 1e-9)) "extending a hold does not recapture" 7.
    (at "escaped")

let test_wan_matrix_symmetric () =
  let r = Icc_sim.Rng.create 1 in
  let m = Icc_sim.Network.wan_matrix r ~n:13 ~rtt_lo:0.006 ~rtt_hi:0.110 in
  for i = 1 to 13 do
    for j = 1 to 13 do
      Alcotest.(check (float 1e-12)) "symmetric" m.(i).(j) m.(j).(i);
      if i <> j then
        Alcotest.(check bool) "in range" true
          (m.(i).(j) >= 0.003 && m.(i).(j) <= 0.055)
    done
  done

let test_metrics_percentile () =
  let l = [ 5.; 1.; 3.; 2.; 4. ] in
  Alcotest.(check (float 1e-9)) "p50" 3. (Icc_sim.Metrics.percentile 50. l);
  Alcotest.(check (float 1e-9)) "p100" 5. (Icc_sim.Metrics.percentile 100. l);
  Alcotest.(check (float 1e-9)) "mean" 3. (Icc_sim.Metrics.mean l)

let prop_engine_fifo_at_same_time =
  QCheck.Test.make ~name:"engine preserves insertion order at equal times"
    ~count:50 (QCheck.int_range 2 30) (fun k ->
      let e = Icc_sim.Engine.create () in
      let log = ref [] in
      for i = 0 to k - 1 do
        Icc_sim.Engine.schedule e ~delay:1. (fun () -> log := i :: !log)
      done;
      Icc_sim.Engine.run e;
      List.rev !log = List.init k Fun.id)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "heap order" `Quick test_heap_orders;
    Alcotest.test_case "engine order" `Quick test_engine_runs_in_order;
    Alcotest.test_case "engine until" `Quick test_engine_until;
    Alcotest.test_case "engine rejects past" `Quick test_engine_rejects_past;
    Alcotest.test_case "broadcast delivery" `Quick test_network_broadcast_delivery;
    Alcotest.test_case "self delivery" `Quick test_network_self_delivery_immediate;
    Alcotest.test_case "hold until" `Quick test_network_hold_until;
    Alcotest.test_case "link hold" `Quick test_network_link_hold;
    Alcotest.test_case "send-time pricing of delay and holds" `Quick
      test_network_send_time_pricing;
    Alcotest.test_case "wan matrix" `Quick test_wan_matrix_symmetric;
    Alcotest.test_case "metrics percentile" `Quick test_metrics_percentile;
    QCheck_alcotest.to_alcotest prop_engine_fifo_at_same_time;
  ]
