(* Icc_obs — metrics registry and span profiler.

   The registry is process-global, so every test uses its own metric
   names; profiler tests run under [with_profiler], which guarantees the
   toggle ends up off and the recorded data dropped whatever happens. *)

module Registry = Icc_obs.Registry
module Profile = Icc_obs.Profile

let with_profiler f =
  Fun.protect
    ~finally:(fun () ->
      Profile.set_enabled false;
      Profile.reset ())
    (fun () ->
      Profile.reset ();
      Profile.set_enabled true;
      f ())

(* ------------------------------------------------------------ registry *)

let test_counter_basics () =
  let c = Registry.counter "t_obs_counter_basics" in
  Alcotest.(check int) "starts at zero" 0 (Registry.value c);
  Registry.inc c;
  Registry.inc c;
  Registry.add c 40;
  Alcotest.(check int) "inc/add accumulate" 42 (Registry.value c);
  (* registration is idempotent: same name yields the same cell *)
  let c' = Registry.counter "t_obs_counter_basics" in
  Registry.inc c';
  Alcotest.(check int) "same name, same counter" 43 (Registry.value c)

let test_cross_kind_registration_rejected () =
  let _ = Registry.counter "t_obs_kind_clash" in
  Alcotest.check_raises "counter name reused as gauge"
    (Invalid_argument
       "Registry.gauge: t_obs_kind_clash registered as another kind")
    (fun () -> ignore (Registry.gauge "t_obs_kind_clash"));
  Alcotest.check_raises "counter name reused as histogram"
    (Invalid_argument
       "Registry.histogram: t_obs_kind_clash registered as another kind")
    (fun () -> ignore (Registry.histogram "t_obs_kind_clash"))

let test_gauge () =
  let g = Registry.gauge "t_obs_gauge" in
  Registry.set_gauge g 2.5;
  Alcotest.(check (float 0.)) "set/read" 2.5 (Registry.gauge_value g)

(* Bucket boundaries are half-open (lo, bound]: a value equal to a bound
   lands in that bound's bucket, one epsilon above spills into the next. *)
let test_histogram_bucket_boundaries () =
  let h = Registry.histogram ~lo:1.0 ~ratio:2.0 ~buckets:3 "t_obs_hist_bounds" in
  Alcotest.(check (array (float 1e-12)))
    "bounds are lo * ratio^i" [| 1.0; 2.0; 4.0 |] (Registry.bucket_bounds h);
  Registry.observe h 0.5 (* below lo: first bucket *);
  Registry.observe h 1.0 (* exactly bound 0: first bucket *);
  Registry.observe h 1.0001 (* just above: second bucket *);
  Registry.observe h 4.0 (* exactly last bound: third bucket *);
  Registry.observe h 7.0 (* above every bound: overflow *);
  let s = Registry.hist_stats h in
  Alcotest.(check int) "count" 5 s.Registry.hs_count;
  Alcotest.(check (float 1e-9)) "sum" 13.5001 s.Registry.hs_sum;
  Alcotest.(check (float 0.)) "min" 0.5 s.Registry.hs_min;
  Alcotest.(check (float 0.)) "max" 7.0 s.Registry.hs_max;
  Alcotest.(check (list (pair (float 0.) int)))
    "per-bucket counts (upper bound, count); empty buckets omitted"
    [ (1.0, 2); (2.0, 1); (4.0, 1); (infinity, 1) ]
    s.Registry.hs_buckets

let test_histogram_empty_snapshot () =
  let h = Registry.histogram "t_obs_hist_empty" in
  let s = Registry.hist_stats h in
  Alcotest.(check int) "count" 0 s.Registry.hs_count;
  Alcotest.(check (float 0.)) "sum" 0. s.Registry.hs_sum;
  Alcotest.(check bool) "min is nan" true (Float.is_nan s.Registry.hs_min);
  Alcotest.(check bool) "max is nan" true (Float.is_nan s.Registry.hs_max);
  Alcotest.(check bool) "p50 is nan" true (Float.is_nan s.Registry.hs_p50);
  Alcotest.(check bool) "p99 is nan" true (Float.is_nan s.Registry.hs_p99);
  Alcotest.(check (list (pair (float 0.) int)))
    "no buckets" [] s.Registry.hs_buckets

let test_histogram_percentiles () =
  let h = Registry.histogram ~lo:1.0 ~ratio:2.0 ~buckets:8 "t_obs_hist_pct" in
  (* 90 observations in the (1,2] bucket, 10 in the (8,16] bucket *)
  for _ = 1 to 90 do Registry.observe h 1.5 done;
  for _ = 1 to 10 do Registry.observe h 12.0 done;
  let s = Registry.hist_stats h in
  Alcotest.(check (float 0.)) "p50 in the low bucket" 2.0 s.Registry.hs_p50;
  (* p95 crosses into the sparse tail; the bucket bound (16) is clamped to
     the observed maximum *)
  Alcotest.(check (float 0.)) "p95 clamped to max" 12.0 s.Registry.hs_p95;
  Alcotest.(check (float 0.)) "p99 clamped to max" 12.0 s.Registry.hs_p99;
  (* a single observation reports itself, not its bucket ceiling *)
  let h1 = Registry.histogram ~lo:1.0 "t_obs_hist_single" in
  Registry.observe h1 3.3;
  let s1 = Registry.hist_stats h1 in
  Alcotest.(check (float 0.)) "one-sample p50 = the sample" 3.3
    s1.Registry.hs_p50

let test_registry_snapshot_and_reset () =
  let c = Registry.counter "t_obs_reset_c" in
  let h = Registry.histogram "t_obs_reset_h" in
  Registry.add c 7;
  Registry.observe h 0.5;
  (match List.assoc_opt "t_obs_reset_c" (Registry.snapshot ()) with
  | Some (Registry.Counter 7) -> ()
  | _ -> Alcotest.fail "snapshot missing counter value");
  Alcotest.(check (list (pair string int)))
    "counters () lists it"
    [ ("t_obs_reset_c", 7) ]
    (List.filter
       (fun (name, _) -> String.equal name "t_obs_reset_c")
       (Registry.counters ()));
  Registry.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Registry.value c);
  let s = Registry.hist_stats h in
  Alcotest.(check int) "histogram emptied" 0 s.Registry.hs_count;
  Alcotest.(check bool) "histogram min back to nan" true
    (Float.is_nan s.Registry.hs_min)

let test_prometheus_exposition () =
  let c = Registry.counter "t_obs_prom-c" (* '-' must be sanitized *) in
  let h = Registry.histogram ~lo:1.0 ~ratio:2.0 ~buckets:2 "t_obs_prom_h" in
  Registry.add c 3;
  Registry.observe h 1.0;
  Registry.observe h 1.5;
  Registry.observe h 100.0;
  let text = Registry.to_prometheus () in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec go i =
      i + n <= m && (String.equal (String.sub text i n) needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "counter line" true (contains "t_obs_prom_c 3");
  Alcotest.(check bool) "counter TYPE" true
    (contains "# TYPE t_obs_prom_c counter");
  Alcotest.(check bool) "histogram buckets are cumulative" true
    (contains "t_obs_prom_h_bucket{le=\"2\"} 2");
  Alcotest.(check bool) "+Inf bucket = count" true
    (contains "t_obs_prom_h_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "histogram count" true (contains "t_obs_prom_h_count 3")

(* ------------------------------------------------------------ profiler *)

let test_span_disabled_is_transparent () =
  Profile.set_enabled false;
  Profile.reset ();
  let r = Profile.span "t_obs.off" (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk result returned" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Profile.stats ()))

let test_span_nesting_and_folding () =
  with_profiler (fun () ->
      let r =
        Profile.span "t_obs.outer" (fun () ->
            Profile.span "t_obs.inner" (fun () -> ());
            Profile.span "t_obs.inner" (fun () -> ());
            "done")
      in
      Alcotest.(check string) "result flows through" "done" r;
      let stat name =
        match
          List.find_opt (fun s -> String.equal s.Profile.sp_name name)
            (Profile.stats ())
        with
        | Some s -> s
        | None -> Alcotest.failf "span %s not recorded" name
      in
      let outer = stat "t_obs.outer" and inner = stat "t_obs.inner" in
      Alcotest.(check int) "outer count" 1 outer.Profile.sp_count;
      Alcotest.(check int) "inner count" 2 inner.Profile.sp_count;
      Alcotest.(check bool) "outer total covers inner" true
        (outer.Profile.sp_total_s >= inner.Profile.sp_total_s);
      Alcotest.(check bool) "self excludes children" true
        (outer.Profile.sp_self_s <= outer.Profile.sp_total_s);
      (* folded view has the stacked path, not just leaf names *)
      let paths = List.map (fun (p, _, _) -> p) (Profile.folded ()) in
      Alcotest.(check bool) "folded path outer;inner" true
        (List.mem "t_obs.outer;t_obs.inner" paths);
      Alcotest.(check bool) "folded path outer" true
        (List.mem "t_obs.outer" paths);
      (* folded_lines is 'path space integer' per line *)
      String.split_on_char '\n' (Profile.folded_lines ())
      |> List.iter (fun line ->
             if String.length line > 0 then
               match String.rindex_opt line ' ' with
               | None -> Alcotest.failf "no separator in %S" line
               | Some i ->
                   let count =
                     String.sub line (i + 1) (String.length line - i - 1)
                   in
                   Alcotest.(check bool)
                     (Printf.sprintf "numeric self-us in %S" line)
                     true
                     (Option.is_some (int_of_string_opt count))))

let test_span_exception_unwinds () =
  with_profiler (fun () ->
      (try
         Profile.span "t_obs.raiser" (fun () -> failwith "boom")
       with Failure _ -> ());
      (* the stack unwound: a new top-level span nests under nothing *)
      Profile.span "t_obs.after" (fun () -> ());
      let paths = List.map (fun (p, _, _) -> p) (Profile.folded ()) in
      Alcotest.(check bool) "raising span recorded" true
        (List.mem "t_obs.raiser" paths);
      Alcotest.(check bool) "next span is top-level" true
        (List.mem "t_obs.after" paths);
      Alcotest.(check bool) "not nested under the raiser" false
        (List.mem "t_obs.raiser;t_obs.after" paths))

let test_context_attribution () =
  with_profiler (fun () ->
      Profile.set_round 3;
      Profile.set_party 7;
      Profile.span "t_obs.ctx" (fun () -> ());
      Profile.set_round 4;
      Profile.span "t_obs.ctx" (fun () -> ());
      let rounds = List.map fst (Profile.by_round ()) in
      Alcotest.(check (list int)) "rounds charged" [ 3; 4 ] rounds;
      let parties = List.map fst (Profile.by_party ()) in
      Alcotest.(check (list int)) "party charged" [ 7 ] parties;
      match List.assoc_opt 3 (Profile.by_round ()) with
      | Some [ (name, self) ] ->
          Alcotest.(check string) "span name in context" "t_obs.ctx" name;
          Alcotest.(check bool) "self-time non-negative" true (self >= 0.)
      | _ -> Alcotest.fail "round 3 should hold exactly the one span")

(* ------------------------------- Metrics memoized percentile view ------ *)

let test_latency_percentile_invalidation () =
  let m = Icc_sim.Metrics.create 4 in
  Alcotest.(check bool) "empty distribution is nan" true
    (Float.is_nan (Icc_sim.Metrics.latency_percentile m 50.));
  Icc_sim.Metrics.record_latency m 3.0;
  Icc_sim.Metrics.record_latency m 1.0;
  Icc_sim.Metrics.record_latency m 2.0;
  Alcotest.(check (float 0.)) "p50 of {1,2,3}" 2.0
    (Icc_sim.Metrics.latency_percentile m 50.);
  Alcotest.(check (float 0.)) "p100 of {1,2,3}" 3.0
    (Icc_sim.Metrics.latency_percentile m 100.);
  (* the second query hit the memoized view; recording must invalidate it *)
  Icc_sim.Metrics.record_latency m 10.0;
  Icc_sim.Metrics.record_latency m 11.0;
  Alcotest.(check (float 0.)) "p100 sees the new maximum" 11.0
    (Icc_sim.Metrics.latency_percentile m 100.);
  Alcotest.(check (float 0.)) "p50 re-sorted over 5 samples" 3.0
    (Icc_sim.Metrics.latency_percentile m 50.)

let suite =
  [
    Alcotest.test_case "registry: counter basics" `Quick test_counter_basics;
    Alcotest.test_case "registry: cross-kind registration rejected" `Quick
      test_cross_kind_registration_rejected;
    Alcotest.test_case "registry: gauge" `Quick test_gauge;
    Alcotest.test_case "registry: histogram bucket boundaries" `Quick
      test_histogram_bucket_boundaries;
    Alcotest.test_case "registry: empty histogram snapshot" `Quick
      test_histogram_empty_snapshot;
    Alcotest.test_case "registry: histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "registry: snapshot and reset" `Quick
      test_registry_snapshot_and_reset;
    Alcotest.test_case "registry: prometheus exposition" `Quick
      test_prometheus_exposition;
    Alcotest.test_case "profiler: disabled span is transparent" `Quick
      test_span_disabled_is_transparent;
    Alcotest.test_case "profiler: nesting and folded stacks" `Quick
      test_span_nesting_and_folding;
    Alcotest.test_case "profiler: exception unwinds the stack" `Quick
      test_span_exception_unwinds;
    Alcotest.test_case "profiler: per-round/per-party attribution" `Quick
      test_context_attribution;
    Alcotest.test_case "metrics: latency percentile memo invalidation" `Quick
      test_latency_percentile_invalidation;
  ]
