(* Unit tests for the erasure-coded reliable broadcast, driven directly
   (outside the ICC round logic): honest dissemination, totality via
   fragment echo, and the inconsistent-proposer attack. *)

let kit = Kit.make ~n:7 ~t:2 ()

type world = {
  engine : Icc_sim.Engine.t;
  metrics : Icc_sim.Metrics.t;
  rbc : Icc_rbc.Rbc.t;
  delivered : (int, Icc_core.Message.t list ref) Hashtbl.t;
  active : (int, bool) Hashtbl.t;
}

let make_world ?(delay = 0.01) () =
  let env = Icc_sim.Transport.env ~n:7 () in
  let engine = env.Icc_sim.Transport.engine in
  let metrics = env.Icc_sim.Transport.metrics in
  let delivered = Hashtbl.create 8 in
  let active = Hashtbl.create 8 in
  for i = 1 to 7 do
    Hashtbl.add delivered i (ref []);
    Hashtbl.add active i true
  done;
  let rbc =
    Icc_rbc.Rbc.create ~engine ~trace:env.Icc_sim.Transport.trace ~n:7 ~t:2
      ~delay_model:(Icc_sim.Network.Fixed delay) ~async_until:0.
      ~is_active:(fun i -> Hashtbl.find active i)
      ~deliver_up:(fun ~dst msg ->
        let l = Hashtbl.find delivered dst in
        l := msg :: !l)
      ~system:kit.Kit.system ~keys:kit.Kit.keys ()
  in
  { engine; metrics; rbc; delivered; active }

let proposal ?(filler = 9000) ~proposer () =
  let payload = { Icc_core.Types.commands = []; filler_size = filler } in
  let block = Kit.block ~payload ~round:1 ~proposer ~parent:None () in
  Icc_core.Message.Proposal
    {
      p_block = block;
      p_authenticator = Kit.authenticator kit block;
      p_parent_cert = None;
    }

let count_deliveries w =
  Hashtbl.fold (fun _ l acc -> acc + List.length !l) w.delivered 0

let test_honest_dissemination_total () =
  let w = make_world () in
  let msg = proposal ~proposer:3 () in
  Icc_rbc.Rbc.tx_broadcast w.rbc ~src:3 msg;
  Icc_sim.Engine.run w.engine;
  (* every party (including the proposer) delivers exactly once *)
  Hashtbl.iter
    (fun party l ->
      Alcotest.(check int)
        (Printf.sprintf "party %d delivered once" party)
        1 (List.length !l))
    w.delivered;
  Alcotest.(check int) "seven total" 7 (count_deliveries w)

let test_reconstruction_with_crashed_parties () =
  let w = make_world () in
  Hashtbl.replace w.active 2 false;
  Hashtbl.replace w.active 5 false;
  Icc_rbc.Rbc.tx_broadcast w.rbc ~src:1 (proposal ~proposer:1 ());
  Icc_sim.Engine.run w.engine;
  List.iter
    (fun party ->
      Alcotest.(check int)
        (Printf.sprintf "live party %d delivered" party)
        1
        (List.length !(Hashtbl.find w.delivered party)))
    [ 1; 3; 4; 6; 7 ]

let test_non_proposer_cannot_open_instance () =
  (* party 4 broadcasting a block it did not propose (the echo case for a
     block obtained outside the RBC) must not open an RBC instance in party
     3's name: the bundle travels as a full Core broadcast instead *)
  let w = make_world () in
  Icc_rbc.Rbc.tx_broadcast w.rbc ~src:4 (proposal ~proposer:3 ());
  Icc_sim.Engine.run w.engine;
  Alcotest.(check int) "everyone gets the echoed bundle" 7 (count_deliveries w);
  Alcotest.(check int) "but no fragments circulate" 0
    (Icc_sim.Metrics.msgs_of_kind w.metrics "rbc-fragment")

let test_inconsistent_fragments_rejected () =
  (* A Byzantine proposer could sign a Merkle root over fragments that are
     not a Reed–Solomon codeword; the RBC's defence is the re-encoding
     check after reconstruction.  The malicious Send step cannot be forged
     through the public transport API (it always encodes honestly), so this
     exercises the defence primitive directly: garbage fragments decode to
     *something*, but re-encoding that never reproduces them. *)
  let garbage_frags =
    List.init 7 (fun i ->
        String.init 64 (fun j -> Char.chr ((i + (3 * j)) land 0xff)))
  in
  let some_decoding =
    Icc_erasure.Reed_solomon.decode ~k:3 ~n:7 ~data_size:192
      (List.filteri (fun i _ -> i < 3)
         (List.mapi (fun i f -> (i, f)) garbage_frags))
  in
  match some_decoding with
  | None -> Alcotest.fail "k fragments always decode to something"
  | Some data ->
      Alcotest.(check bool) "reencode rejects" false
        (Icc_erasure.Reed_solomon.reencode_matches ~k:3 ~n:7 ~data
           (List.mapi (fun i f -> (i, f)) garbage_frags))

let test_echo_budget_bounds_equivocating_proposer () =
  (* an equivocating proposer opens many distinct instances for the same
     round; honest parties echo at most two of them *)
  let w = make_world () in
  (* four different blocks from the same proposer in round 1 *)
  List.iter
    (fun filler -> Icc_rbc.Rbc.tx_broadcast w.rbc ~src:2 (proposal ~proposer:2 ~filler ()))
    [ 1000; 2000; 3000; 4000 ];
  Icc_sim.Engine.run w.engine;
  (* parties deliver at most the two instances they echoed plus any where
     they collected enough foreign fragments; proposer self-delivers all 4 *)
  Hashtbl.iter
    (fun party l ->
      if party <> 2 then
        Alcotest.(check bool)
          (Printf.sprintf "party %d bounded (%d)" party (List.length !l))
          true
          (List.length !l <= 4))
    w.delivered;
  Alcotest.(check int) "proposer delivered all" 4
    (List.length !(Hashtbl.find w.delivered 2))

let test_core_messages_pass_through () =
  let w = make_world () in
  let share =
    Icc_core.Message.Notarization_share
      (Kit.notarization_share kit ~signer:1
         (Kit.block ~round:1 ~proposer:1 ~parent:None ()))
  in
  Icc_rbc.Rbc.tx_broadcast w.rbc ~src:1 share;
  Icc_sim.Engine.run w.engine;
  Alcotest.(check int) "all seven got the share" 7 (count_deliveries w)

let suite =
  [
    Alcotest.test_case "honest dissemination" `Quick test_honest_dissemination_total;
    Alcotest.test_case "crashed parties" `Quick test_reconstruction_with_crashed_parties;
    Alcotest.test_case "non-proposer instance" `Quick
      test_non_proposer_cannot_open_instance;
    Alcotest.test_case "inconsistent fragments" `Quick
      test_inconsistent_fragments_rejected;
    Alcotest.test_case "echo budget" `Quick
      test_echo_budget_bounds_equivocating_proposer;
    Alcotest.test_case "core pass-through" `Quick test_core_messages_pass_through;
  ]
