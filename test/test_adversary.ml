(* Unit tests for the composable Byzantine adversary layer (DESIGN.md
   §3.8): script constructors, static analysis, JSON parsing, directive
   activation and budgets, both interposition surfaces, and stream
   determinism. *)

module A = Icc_sim.Adversary

let collect_trace () =
  let tr = Icc_sim.Trace.create () in
  let events = ref [] in
  Icc_sim.Trace.subscribe ~all:true tr (fun ~time:_ ev -> events := ev :: !events);
  (tr, fun () -> List.rev !events)

let make ?classify ?(seed = 7) ?(n = 7) script =
  let tr, events = collect_trace () in
  let adv =
    A.create ~rng:(Icc_sim.Rng.create seed) ~trace:tr ~n ?classify script
  in
  (adv, events)

(* ------------------------------------------------ script constructors *)

let test_constructors () =
  (match (A.equivocate 3).A.action with
  | A.Equivocate { noisy } -> Alcotest.(check bool) "quiet default" false noisy
  | _ -> Alcotest.fail "expected Equivocate");
  (match (A.withhold 2).A.action with
  | A.Withhold { beacon; notar; final; p } ->
      Alcotest.(check bool) "no flag: beacon" true beacon;
      Alcotest.(check bool) "no flag: notar" true notar;
      Alcotest.(check bool) "no flag: final" true final;
      Alcotest.(check (float 0.)) "p defaults to 1" 1.0 p
  | _ -> Alcotest.fail "expected Withhold");
  (match (A.withhold ~notar:true 2).A.action with
  | A.Withhold { beacon; notar; final; _ } ->
      Alcotest.(check bool) "flagged: beacon off" false beacon;
      Alcotest.(check bool) "flagged: notar on" true notar;
      Alcotest.(check bool) "flagged: final off" false final
  | _ -> Alcotest.fail "expected Withhold");
  let d = A.adaptive ~on_round:5 ~rank:0 ~max_corrupt:2 (A.Equivocate { noisy = true }) in
  Alcotest.(check bool) "rank wins over on_round" true (d.A.trigger = A.On_rank 0);
  Alcotest.(check bool) "adaptive targets Any" true (d.A.who = A.Any);
  Alcotest.(check int) "budget" 2 d.A.max_corrupt

let test_static_analysis () =
  let script =
    [
      A.equivocate 5;
      A.withhold 2;
      A.equivocate 2;
      A.crash_window ~from_:3. ~until:8. 4;
      A.crash_window ~from_:10. ~until:12. 1;
      A.adaptive ~rank:0 ~max_corrupt:2 (A.Equivocate { noisy = true });
    ]
  in
  Alcotest.(check (list int))
    "static corrupt: named parties, deduped, ascending (Any excluded)"
    [ 1; 2; 4; 5 ] (A.static_corrupt script);
  Alcotest.(check (list (pair (float 0.) int)))
    "crash wakes: (until, party) sorted by time"
    [ (8., 4); (12., 1) ]
    (A.static_crash_wakes script)

(* ------------------------------------------------------- JSON scripts *)

let test_script_of_json () =
  let src =
    {|[
      {"adversary":"equivocate","party":3,"noisy":true},
      {"adversary":"withhold","party":2,"notar":true,"p":0.5},
      {"adversary":"censor","party":2,"dsts":[1,4]},
      {"adversary":"delay","party":1,"by":0.4,"from":10,"until":20},
      {"adversary":"crash","party":2,"from":5,"until":10},
      {"adversary":"straggle","party":4,"p":0.3},
      {"adversary":"equivocate","rank":0,"max":2}
    ]|}
  in
  match A.script_of_json src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok script ->
      Alcotest.(check int) "seven directives" 7 (List.length script);
      (match List.nth script 0 with
      | { A.who = A.Party 3; action = A.Equivocate { noisy = true }; _ } -> ()
      | _ -> Alcotest.fail "directive 0");
      (match List.nth script 1 with
      | {
       A.who = A.Party 2;
       action = A.Withhold { beacon = false; notar = true; final = false; p };
       _;
      } ->
          Alcotest.(check (float 0.)) "withhold p" 0.5 p
      | _ -> Alcotest.fail "directive 1");
      (match List.nth script 3 with
      | { A.who = A.Party 1; from_ = 10.; until = 20.; action = A.Delay { by }; _ }
        ->
          Alcotest.(check (float 0.)) "delay by" 0.4 by
      | _ -> Alcotest.fail "directive 3");
      (match List.nth script 6 with
      | { A.who = A.Any; trigger = A.On_rank 0; max_corrupt = 2; _ } -> ()
      | _ -> Alcotest.fail "directive 6");
      Alcotest.(check (list int)) "statics from json" [ 1; 2; 3; 4 ]
        (A.static_corrupt script)

let test_script_of_json_rejects () =
  let bad s =
    match A.script_of_json s with Error _ -> true | Ok _ -> false
  in
  List.iter
    (fun s -> Alcotest.(check bool) ("rejects " ^ s) true (bad s))
    [
      {|[{"adversary":"no-such-strategy","party":1}]|};
      {|[{"adversary":"crash","party":1}]|};
      {|[{"adversary":"equivocate","rank":0}]|};
      {|not json|};
    ]

(* --------------------------------------------- activation and budgets *)

let test_static_activation_and_withholding () =
  let adv, events = make [ A.withhold ~notar:true 2 ] in
  Alcotest.(check bool) "party 2 withholds notar" true
    (A.withholds adv ~now:1. ~party:2 ~round:1 A.Notar);
  Alcotest.(check bool) "party 2 keeps final" false
    (A.withholds adv ~now:1. ~party:2 ~round:1 A.Final);
  Alcotest.(check bool) "party 3 untouched" false
    (A.withholds adv ~now:1. ~party:3 ~round:1 A.Notar);
  Alcotest.(check (list int)) "corrupted = static" [ 2 ] (A.corrupted adv);
  let withheld =
    List.filter_map
      (function
        | Icc_sim.Trace.Adv_withhold { party; round; kind } ->
            Some (party, round, kind)
        | _ -> None)
      (events ())
  in
  Alcotest.(check (list (triple int int string)))
    "one adv-withhold event" [ (2, 1, "notarization-share") ] withheld

let test_equivocation_query () =
  let adv, _ = make [ A.equivocate ~noisy:true 4 ] in
  Alcotest.(check (option bool)) "party 4 noisy" (Some true)
    (A.equivocation adv ~now:0. ~party:4);
  Alcotest.(check (option bool)) "party 1 honest" None
    (A.equivocation adv ~now:0. ~party:1)

let test_adaptive_budget () =
  let adv, events =
    make [ A.adaptive ~rank:0 ~max_corrupt:1 (A.Equivocate { noisy = false }) ]
  in
  (* party 5 is the first rank-0 leader seen: the budget of one goes to it *)
  A.note_round adv ~now:0. ~party:3 ~round:1 ~rank:2;
  A.note_round adv ~now:0. ~party:5 ~round:1 ~rank:0;
  A.note_round adv ~now:1. ~party:6 ~round:2 ~rank:0;
  Alcotest.(check (option bool)) "leader 5 corrupted" (Some false)
    (A.equivocation adv ~now:1. ~party:5);
  Alcotest.(check (option bool)) "leader 6 spared (budget spent)" None
    (A.equivocation adv ~now:1. ~party:6);
  Alcotest.(check (list int)) "corrupted tracks activation" [ 5 ]
    (A.corrupted adv);
  let announced =
    List.filter_map
      (function
        | Icc_sim.Trace.Adv_corrupt { party; round; _ } -> Some (party, round)
        | _ -> None)
      (events ())
  in
  Alcotest.(check (list (pair int int))) "one adv-corrupt" [ (5, 1) ] announced

(* ------------------------------------------------------ network surface *)

let test_on_send_censor_delay () =
  let adv, events =
    make [ A.censor ~dsts:[ 1; 4 ] 2; A.delay ~by:0.25 3 ] in
  let v = A.on_send adv ~now:1. ~src:2 ~dst:1 ~kind:"blk" in
  Alcotest.(check bool) "censored dst dropped" true v.A.av_drop;
  let v = A.on_send adv ~now:1. ~src:2 ~dst:5 ~kind:"blk" in
  Alcotest.(check bool) "other dst passes" false v.A.av_drop;
  let v = A.on_send adv ~now:1. ~src:3 ~dst:1 ~kind:"prop" in
  Alcotest.(check (float 0.)) "stealthy delay" 0.25 v.A.av_delay;
  let v = A.on_send adv ~now:1. ~src:5 ~dst:1 ~kind:"prop" in
  Alcotest.(check (float 0.)) "honest src undelayed" 0. v.A.av_delay;
  let censored =
    List.exists
      (function Icc_sim.Trace.Adv_censor _ -> true | _ -> false)
      (events ())
  in
  Alcotest.(check bool) "adv-censor emitted" true censored

let test_crash_window () =
  let adv, _ = make [ A.crash_window ~from_:5. ~until:10. 3 ] in
  Alcotest.(check bool) "before window" false (A.crashed_now adv ~now:4.9 ~party:3);
  Alcotest.(check bool) "inside window" true (A.crashed_now adv ~now:7. ~party:3);
  Alcotest.(check bool) "after window" false (A.crashed_now adv ~now:10. ~party:3);
  Alcotest.(check bool) "other party" false (A.crashed_now adv ~now:7. ~party:2);
  let v = A.on_send adv ~now:7. ~src:3 ~dst:1 ~kind:"blk" in
  Alcotest.(check bool) "sends dropped while crashed" true v.A.av_drop

let test_straggle_extremes () =
  let adv, _ = make [ A.straggle ~p:1.0 2; A.straggle ~p:0.0 3 ] in
  for i = 1 to 20 do
    let v = A.on_send adv ~now:(float_of_int i) ~src:2 ~dst:1 ~kind:"share" in
    Alcotest.(check bool) "p=1 always drops" true v.A.av_drop;
    let v = A.on_send adv ~now:(float_of_int i) ~src:3 ~dst:1 ~kind:"share" in
    Alcotest.(check bool) "p=0 never drops" false v.A.av_drop
  done

let test_classify_withholding () =
  (* the baseline surface: no party hooks, shares suppressed at the wire *)
  let classify = function
    | "prepare" -> Some A.Notar
    | "commit" -> Some A.Final
    | _ -> None
  in
  let adv, _ = make ~classify [ A.withhold ~notar:true 2 ] in
  let v = A.on_send adv ~now:1. ~src:2 ~dst:3 ~kind:"prepare" in
  Alcotest.(check bool) "classified notar dropped" true v.A.av_drop;
  let v = A.on_send adv ~now:1. ~src:2 ~dst:3 ~kind:"commit" in
  Alcotest.(check bool) "final class not withheld" false v.A.av_drop;
  let v = A.on_send adv ~now:1. ~src:2 ~dst:3 ~kind:"pre-prepare" in
  Alcotest.(check bool) "unclassified passes" false v.A.av_drop

(* --------------------------------------------------------- determinism *)

let test_probabilistic_stream_determinism () =
  let run seed =
    let adv, _ =
      make ~seed [ A.withhold ~p:0.5 2; A.straggle ~p:0.4 3 ] in
    let draws = ref [] in
    for round = 1 to 30 do
      List.iter
        (fun cls ->
          draws := A.withholds adv ~now:(float_of_int round) ~party:2 ~round cls
                   :: !draws)
        [ A.Beacon; A.Notar; A.Final ];
      let v =
        A.on_send adv ~now:(float_of_int round) ~src:3 ~dst:1 ~kind:"blk"
      in
      draws := v.A.av_drop :: !draws
    done;
    !draws
  in
  Alcotest.(check (list bool)) "same seed, same stream" (run 11) (run 11);
  Alcotest.(check bool) "different seed diverges" true (run 11 <> run 12);
  Alcotest.(check bool) "p=0.5 actually mixes" true
    (List.exists (fun b -> b) (run 11) && List.exists not (run 11))

let suite =
  [
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "static analysis" `Quick test_static_analysis;
    Alcotest.test_case "json scripts" `Quick test_script_of_json;
    Alcotest.test_case "json rejects" `Quick test_script_of_json_rejects;
    Alcotest.test_case "static withholding" `Quick
      test_static_activation_and_withholding;
    Alcotest.test_case "equivocation query" `Quick test_equivocation_query;
    Alcotest.test_case "adaptive budget" `Quick test_adaptive_budget;
    Alcotest.test_case "censor + delay" `Quick test_on_send_censor_delay;
    Alcotest.test_case "crash window" `Quick test_crash_window;
    Alcotest.test_case "straggle extremes" `Quick test_straggle_extremes;
    Alcotest.test_case "classify withholding" `Quick test_classify_withholding;
    Alcotest.test_case "stream determinism" `Quick
      test_probabilistic_stream_determinism;
  ]
