(* Shared machinery for random-linear-combination batch verification
   (contract in batch.mli): the two §3.5-style toggles, the
   deterministic 32-bit batch coefficients, and the chunked dispatcher
   that optionally fans chunks out over the {!Icc_obs.Dpool} worker
   domains.

   Domain safety (DESIGN.md §3.9): both toggles and the chunk knob are
   [Atomic.t]s, flipped only while single-domain (snapshot-at-spawn);
   [dispatch] itself holds no state — chunk results live in arrays
   owned by the pool's coordinator. *)

let batching = Atomic.make true
let set_batch_verify on = Atomic.set batching on
let batch_verify_enabled () = Atomic.get batching

let parallel = Atomic.make false
let set_parallel_verify on = Atomic.set parallel on
let parallel_verify_enabled () = Atomic.get parallel

(* Default 64: past that size the Pippenger bucket sweep stops gaining
   per signature (see the `batch_sweep` rows of BENCH_perf.json) and
   chunking bounds both worst-case fallback cost and parallel grain. *)
let max_chunk_v = Atomic.make 64

let set_max_chunk n = Atomic.set max_chunk_v (max 2 n)
let max_chunk () = Atomic.get max_chunk_v

(* splitmix64-style avalanche mixing, truncated to OCaml's 63-bit
   native ints (the multiplies wrap mod 2^63, which is fine for
   mixing).  Deterministic in the item data — re-running a batch draws
   identical coefficients, so batch verdicts are reproducible and no
   RNG state is consumed (traces can't shift). *)
let mix h v =
  let h = h lxor ((v * 0x9E3779B97F4A7C1) land max_int) in
  let h = (h lxor (h lsr 29)) * 0x1F85EBCA6BB4393 in
  let h = (h lxor (h lsr 32)) * 0x1D049BB133111EB in
  (h lxor (h lsr 31)) land max_int

let coeff ~salt vs =
  let h = Array.fold_left mix (mix 0x1CC0BA7C4 salt) vs in
  (* Non-zero 32-bit weight: a zero coefficient would erase its item
     from the combined equation, letting a forgery through. *)
  let z = h land 0xFFFFFFFF in
  if z = 0 then 1 else z

let dispatch (f : 'a array -> 'b array) (arr : 'a array) : 'b array =
  let n = Array.length arr in
  let cz = max_chunk () in
  if n <= cz then f arr
  else begin
    let nchunks = (n + cz - 1) / cz in
    let chunks =
      Array.init nchunks (fun k ->
          Array.sub arr (k * cz) (min cz (n - (k * cz))))
    in
    let mapped =
      if Atomic.get parallel && Icc_obs.Dpool.available then
        Icc_obs.Profile.span "pool.parallel_join" (fun () ->
            Icc_obs.Dpool.map f chunks)
      else Array.map f chunks
    in
    Array.concat (Array.to_list mapped)
  end
[@@icc.domain_entry]
