(** (t, t+1, n)-threshold unique signatures backing the random beacon
    ([S_beacon], paper §2.3 approach (iii) / §3.2): the DDH-based threshold
    coin of Cachin–Kursawe–Shoup, a pairing-free analogue of threshold BLS.

    The signature on [m] is the unique group element [H2G(m)^s] for the
    Shamir-shared secret [s]; shares carry Chaum–Pedersen proofs. *)

type params = {
  threshold_t : int;
  n : int;
  global_pk : Group.elt;
  verification_keys : Group.elt array;
}

type secret_share = {
  owner : int;  (** 1-based party index. *)
  sk_i : Group.scalar;
}

type signature_share = {
  signer : int;
  value : Group.elt;
  proof : Dleq.proof;
}

type signature = {
  sigma : Group.elt;
  certificate : signature_share list;
}

val setup : threshold_t:int -> n:int -> (unit -> int) -> params * secret_share list
(** Trusted-dealer key generation. *)

val sign_share : params -> secret_share -> string -> signature_share
val verify_share : params -> string -> signature_share -> bool

val verify_shares : params -> string -> signature_share list -> bool list
(** Per-share verdicts, identical to mapping {!verify_share}, but
    routed through {!Dleq.verify_batch} (all shares of a round prove
    against the same base pair) so one combined equation per chunk
    covers the whole set when batching is enabled.  The beacon pool
    passes this as its [verify_batch] admission callback. *)

val combine : params -> string -> signature_share list -> signature option
(** Returns [None] when fewer than [t+1] distinct valid shares are given;
    invalid or duplicate shares are filtered, not fatal. *)

val combine_preverified : params -> signature_share list -> signature option
(** Like {!combine}, but trusts the caller to have already checked every
    share with {!verify_share} (e.g. at pool admission) and skips
    re-verification.  Applies the identical signer-dedup/selection rule,
    so it yields the same [sigma] as {!combine} over the same shares. *)

val verify : params -> string -> signature -> bool
(** Full verification: checks the (t+1)-share certificate and that the
    claimed value equals its interpolation.  Uniqueness: any two signatures
    on the same message that verify have equal [sigma]. *)

val randomness : string -> signature -> Sha256.t
(** The beacon output: a hash binding message and unique signature. *)

val share_wire_size : int
val signature_wire_size : int
