(* The cyclic group used by every signature scheme in this library: the
   subgroup of quadratic residues of Z_p^* for a safe prime p = 2q + 1.
   The subgroup has prime order q, so every non-identity element (such as
   g = 4 = 2^2) generates it.

   Parameters are fixed, simulation-scale (61-bit) values; see DESIGN.md
   §1.3 for why production-scale curves are substituted. *)

let p = 2305843009213691579
let q = (p - 1) / 2
let g = 4

let () =
  (* Cheap self-checks at module initialisation. *)
  Fp.check_modulus p;
  assert (p = (2 * q) + 1);
  assert (Fp.pow g q p = 1)

type elt = int (* canonical representative in [1, p), member of QR(p) *)
type scalar = int (* canonical representative in [0, q) *)

let one = 1
let generator = g

let elt_equal = Int.equal
let scalar_equal = Int.equal

let is_element x = x > 0 && x < p && Fp.pow x q p = 1

let mul a b = Fp.mul a b p
let elt_inv a = Fp.inv a p

let pow base e =
  Counters.bump Counters.pow_generic;
  Fp.pow base (Fp.reduce e q) p
[@@icc.domain_entry]

(* --- fixed-base windowed exponentiation -------------------------------- *)

(* For bases that recur across many exponentiations — the generator, party
   public keys, VUF verification keys — precompute a radix-16 table
   rows.(i).(j) = base^(j * 16^i) for the 16 four-bit windows of a 61-bit
   exponent.  An exponentiation then costs at most 15 group mults (one per
   non-zero window) instead of ~91 for square-and-multiply.  Building a
   table costs ~300 mults, amortised after four exponentiations.

   Tables live in a domain-local cache keyed by base element: each domain
   builds its own tables (a table is a pure function of the base, so
   per-domain rebuilds cost only the ~300-mult construction), which keeps
   the lookup path lock-free and race-free under a parallel verify pool
   (DESIGN.md §3.9).  All cache access is by exact key (never iteration),
   so cache state can never perturb protocol determinism; a size cap
   bounds memory against adversarial inputs (full cache => compute
   generic, don't cache). *)
module Fixed_base = struct
  let windows = 16 (* ceil(61 / 4) *)
  let radix = 16

  type table = elt array array

  let make (base : elt) : table =
    Counters.bump Counters.fixed_base_tables;
    let rows = Array.make_matrix windows radix one in
    let b = ref base in
    for i = 0 to windows - 1 do
      let row = rows.(i) in
      for j = 1 to radix - 1 do
        row.(j) <- mul row.(j - 1) !b
      done;
      (* advance to base^(16^(i+1)) via four squarings *)
      for _ = 1 to 4 do
        b := mul !b !b
      done
    done;
    rows

  let pow (rows : table) (e : int) : elt =
    let e = Fp.reduce e q in
    let acc = ref one in
    let e = ref e in
    let i = ref 0 in
    while !e <> 0 do
      let d = !e land (radix - 1) in
      if d <> 0 then acc := mul !acc rows.(!i).(d);
      e := !e lsr 4;
      incr i
    done;
    !acc

  (* Cache policy: below [cache_cap] every new base gets a table
     immediately (the historical behaviour).  At cap, a new base first
     sits in a bounded probation book: only after [probation_hits]
     misses does it evict the oldest evictable resident (FIFO) and get
     a table of its own.  This fixes the saturation starvation bug
     where a full cache silently sent every later base — e.g. post-DKG
     re-keys — to generic pow forever.  The generator's table is built
     at domain init and never enters the eviction ring, so [base_pow]
     can't lose its table to adversarial base churn. *)
  type cache = {
    tbl : (elt, table) Hashtbl.t;
    ring : elt Queue.t; (* insertion-ordered evictable residents *)
    probation : (elt, int) Hashtbl.t; (* miss counts at cap *)
  }

  let cache_cap = 4096
  let probation_cap = 1024
  let probation_hits = 3

  let cache_key : cache Icc_obs.Dls.key =
    Icc_obs.Dls.new_key (fun () ->
        let tbl = Hashtbl.create 64 in
        (* Pin the generator: built eagerly, never enqueued on [ring]. *)
        Hashtbl.replace tbl g (make g);
        { tbl; ring = Queue.create (); probation = Hashtbl.create 64 })

  let evict_one c =
    (* FIFO over evictable residents; entries are unique (a base is
       enqueued only when installed, and removed only here), so the
       membership check is purely defensive. *)
    let rec go () =
      match Queue.take_opt c.ring with
      | None -> false
      | Some b ->
          if Hashtbl.mem c.tbl b then begin
            Hashtbl.remove c.tbl b;
            Counters.bump Counters.fixed_base_evictions;
            true
          end
          else go ()
    in
    go ()

  let install c base =
    let t = make base in
    Hashtbl.replace c.tbl base t;
    Queue.push base c.ring;
    Some t

  let find (base : elt) : table option =
    let c = Icc_obs.Dls.get cache_key in
    match Hashtbl.find_opt c.tbl base with
    | Some t -> Some t
    | None ->
        if Hashtbl.length c.tbl < cache_cap then install c base
        else begin
          let hits =
            1
            + (match Hashtbl.find_opt c.probation base with
              | Some n -> n
              | None -> 0)
          in
          if hits >= probation_hits then begin
            Hashtbl.remove c.probation base;
            if evict_one c then install c base else None
          end
          else begin
            (* Bounded book: reset wholesale when full rather than
               tracking recency — a cold restart only delays promotion
               by at most [probation_hits] extra misses. *)
            if Hashtbl.length c.probation >= probation_cap then
              Hashtbl.reset c.probation;
            Hashtbl.replace c.probation base hits;
            None
          end
        end
end

(* §3.5 toggle, Atomic so concurrent verify domains read it race-free;
   discipline: flip only while single-domain (snapshot-at-spawn,
   DESIGN.md §3.9). *)
let fixed_base = Atomic.make true
let set_fixed_base on = Atomic.set fixed_base on
let fixed_base_enabled () = Atomic.get fixed_base

let pow_cached base e =
  if Atomic.get fixed_base then
    match Fixed_base.find base with
    | Some table ->
        Counters.bump Counters.pow_fixed_base;
        Fixed_base.pow table e
    | None -> pow base e
  else pow base e
[@@icc.domain_entry]

let base_pow e = pow_cached g e

(* --- multi-exponentiation (Pippenger bucket method) --------------------- *)

(* One pass of the bucket method per c-bit window, high window first:
   square the accumulator c times, drop each base into the bucket of its
   window digit, then fold the buckets with the running-product trick
   (sum_j bucket_j^j in 2*(2^c - 1) mults).  Total cost is roughly
   ceil(ebits/c) * (n + 2^c) mults + ebits squarings, vs. ~1.5*ebits*n
   for n independent square-and-multiply exponentiations — the win that
   makes random-linear-combination batch verification pay.  The window
   width adapts to the batch size, and the window count to the widest
   exponent, so 32-bit batch coefficients cost half the windows of full
   61-bit scalars. *)
let multi_exp (pairs : (elt * scalar) array) : elt =
  Counters.bump Counters.multi_exps;
  let n = Array.length pairs in
  if n = 0 then one
  else begin
    let es = Array.map (fun (_, e) -> Fp.reduce e q) pairs in
    let ebits =
      Array.fold_left
        (fun m e ->
          let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
          max m (bits 0 e))
        1 es
    in
    let c =
      if n <= 4 then 3 else if n <= 16 then 4 else if n <= 96 then 6 else 8
    in
    let mask = (1 lsl c) - 1 in
    let nwin = (ebits + c - 1) / c in
    let buckets = Array.make (mask + 1) one in
    let acc = ref one in
    for w = nwin - 1 downto 0 do
      if w < nwin - 1 then
        for _ = 1 to c do
          acc := mul !acc !acc
        done;
      Array.fill buckets 0 (mask + 1) one;
      let shift = w * c in
      for i = 0 to n - 1 do
        let d = (es.(i) lsr shift) land mask in
        if d <> 0 then buckets.(d) <- mul buckets.(d) (fst pairs.(i))
      done;
      let run = ref one and sum = ref one in
      for j = mask downto 1 do
        run := mul !run buckets.(j);
        sum := mul !sum !run
      done;
      acc := mul !acc !sum
    done;
    !acc
  end
[@@icc.domain_entry]

(* Scalar field Z_q helpers. *)
let scalar_add a b = Fp.add a b q
let scalar_sub a b = Fp.sub a b q
let scalar_mul a b = Fp.mul a b q
let scalar_inv a = Fp.inv a q
let scalar_reduce a = Fp.reduce a q

let scalar_of_hash (d : Sha256.t) = Fp.reduce (Sha256.to_int61 d) q

(* Hash a message into the group: square the hash-derived residue.  Squaring
   maps Z_p^* onto the QR subgroup, giving a proper hash-to-group for the
   threshold-VUF beacon (the CKS-style coin needs H2G with unknown dlog). *)

let residue_to_group (x : int) : elt =
  (* x = p - 1 would square to the identity; remap it to 3, whose class
     {3, p - 3} is disjoint from every other nudge target — the old
     remap to 2 collapsed it onto the {2, p - 2} preimage class of
     x = 2, silently merging two hash preimages.  The branch is
     defensive: [hash_to_group] below only produces x in [2, p - 2]. *)
  let x = if x = p - 1 then 3 else x in
  Fp.mul x x p

let hash_to_group (d : Sha256.t) : elt =
  (* x in [2, p - 2]: never 0, never 1, and never the degenerate p - 1. *)
  residue_to_group (2 + (Sha256.to_int61 d mod (p - 3)))

let random_scalar rand_bits : scalar =
  (* rand_bits yields uniformly random 61-bit non-negative ints. *)
  let rec draw () =
    let v = rand_bits () in
    if v >= 0 && v < q then v else draw ()
  in
  draw ()

let random_scalar_nonzero rand_bits : scalar =
  (* Rejection resampling keeps the distribution uniform on [1, q);
     the historical 0 -> 1 remap gave scalar 1 double mass. *)
  let rec draw () =
    let v = random_scalar rand_bits in
    if v = 0 then begin
      Counters.bump Counters.zero_rederives;
      draw ()
    end
    else v
  in
  draw ()

let scalar_of_hash_nonzero ~tag (d : Sha256.t) : scalar =
  (* First derivation is byte-identical to [scalar_of_hash] — the
     rederive chain only engages on the ~2^-61 zero draw (the
     historical code remapped that draw to 1, doubling its mass), so
     committed scenarios never see it: [Counters.zero_rederives] stays
     0 on every golden run, asserted in the tests. *)
  let s = scalar_of_hash d in
  if s <> 0 then s
  else
    let rec rederive i =
      Counters.bump Counters.zero_rederives;
      let d' =
        Sha256.digest_string
          (Printf.sprintf "%s|rederive|%d|%s" tag i (Sha256.to_hex d))
      in
      let s = scalar_of_hash d' in
      if s <> 0 then s else rederive (i + 1)
    in
    rederive 0

let elt_to_string (e : elt) = string_of_int e
let pp_elt fmt (e : elt) = Format.pp_print_int fmt e
