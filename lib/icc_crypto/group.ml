(* The cyclic group used by every signature scheme in this library: the
   subgroup of quadratic residues of Z_p^* for a safe prime p = 2q + 1.
   The subgroup has prime order q, so every non-identity element (such as
   g = 4 = 2^2) generates it.

   Parameters are fixed, simulation-scale (61-bit) values; see DESIGN.md
   §1.3 for why production-scale curves are substituted. *)

let p = 2305843009213691579
let q = (p - 1) / 2
let g = 4

let () =
  (* Cheap self-checks at module initialisation. *)
  Fp.check_modulus p;
  assert (p = (2 * q) + 1);
  assert (Fp.pow g q p = 1)

type elt = int (* canonical representative in [1, p), member of QR(p) *)
type scalar = int (* canonical representative in [0, q) *)

let one = 1
let generator = g

let elt_equal = Int.equal
let scalar_equal = Int.equal

let is_element x = x > 0 && x < p && Fp.pow x q p = 1

let mul a b = Fp.mul a b p
let elt_inv a = Fp.inv a p

let pow base e =
  Counters.bump Counters.pow_generic;
  Fp.pow base (Fp.reduce e q) p
[@@icc.domain_entry]

(* --- fixed-base windowed exponentiation -------------------------------- *)

(* For bases that recur across many exponentiations — the generator, party
   public keys, VUF verification keys — precompute a radix-16 table
   rows.(i).(j) = base^(j * 16^i) for the 16 four-bit windows of a 61-bit
   exponent.  An exponentiation then costs at most 15 group mults (one per
   non-zero window) instead of ~91 for square-and-multiply.  Building a
   table costs ~300 mults, amortised after four exponentiations.

   Tables live in a domain-local cache keyed by base element: each domain
   builds its own tables (a table is a pure function of the base, so
   per-domain rebuilds cost only the ~300-mult construction), which keeps
   the lookup path lock-free and race-free under a parallel verify pool
   (DESIGN.md §3.9).  All cache access is by exact key (never iteration),
   so cache state can never perturb protocol determinism; a size cap
   bounds memory against adversarial inputs (full cache => compute
   generic, don't cache). *)
module Fixed_base = struct
  let windows = 16 (* ceil(61 / 4) *)
  let radix = 16

  type table = elt array array

  let make (base : elt) : table =
    Counters.bump Counters.fixed_base_tables;
    let rows = Array.make_matrix windows radix one in
    let b = ref base in
    for i = 0 to windows - 1 do
      let row = rows.(i) in
      for j = 1 to radix - 1 do
        row.(j) <- mul row.(j - 1) !b
      done;
      (* advance to base^(16^(i+1)) via four squarings *)
      for _ = 1 to 4 do
        b := mul !b !b
      done
    done;
    rows

  let pow (rows : table) (e : int) : elt =
    let e = Fp.reduce e q in
    let acc = ref one in
    let e = ref e in
    let i = ref 0 in
    while !e <> 0 do
      let d = !e land (radix - 1) in
      if d <> 0 then acc := mul !acc rows.(!i).(d);
      e := !e lsr 4;
      incr i
    done;
    !acc

  let cache_key : (elt, table) Hashtbl.t Icc_obs.Dls.key =
    Icc_obs.Dls.new_key (fun () -> Hashtbl.create 64)

  let cache_cap = 4096

  let find (base : elt) : table option =
    let cache = Icc_obs.Dls.get cache_key in
    match Hashtbl.find_opt cache base with
    | Some t -> Some t
    | None ->
        if Hashtbl.length cache >= cache_cap then None
        else begin
          let t = make base in
          Hashtbl.replace cache base t;
          Some t
        end
end

(* §3.5 toggle, Atomic so concurrent verify domains read it race-free;
   discipline: flip only while single-domain (snapshot-at-spawn,
   DESIGN.md §3.9). *)
let fixed_base = Atomic.make true
let set_fixed_base on = Atomic.set fixed_base on
let fixed_base_enabled () = Atomic.get fixed_base

let pow_cached base e =
  if Atomic.get fixed_base then
    match Fixed_base.find base with
    | Some table ->
        Counters.bump Counters.pow_fixed_base;
        Fixed_base.pow table e
    | None -> pow base e
  else pow base e
[@@icc.domain_entry]

let base_pow e = pow_cached g e

(* Scalar field Z_q helpers. *)
let scalar_add a b = Fp.add a b q
let scalar_sub a b = Fp.sub a b q
let scalar_mul a b = Fp.mul a b q
let scalar_inv a = Fp.inv a q
let scalar_reduce a = Fp.reduce a q

let scalar_of_hash (d : Sha256.t) = Fp.reduce (Sha256.to_int61 d) q

(* Hash a message into the group: square the hash-derived residue.  Squaring
   maps Z_p^* onto the QR subgroup, giving a proper hash-to-group for the
   threshold-VUF beacon (the CKS-style coin needs H2G with unknown dlog). *)
let hash_to_group (d : Sha256.t) : elt =
  let x = 2 + (Sha256.to_int61 d mod (p - 3)) in
  (* x in [2, p-1]: never 0, never 1, so x^2 is a non-identity QR unless
     x = p - 1; nudge that single bad case. *)
  let x = if x = p - 1 then 2 else x in
  Fp.mul x x p

let random_scalar rand_bits : scalar =
  (* rand_bits yields uniformly random 61-bit non-negative ints. *)
  let rec draw () =
    let v = rand_bits () in
    if v >= 0 && v < q then v else draw ()
  in
  draw ()

let elt_to_string (e : elt) = string_of_int e
let pp_elt fmt (e : elt) = Format.pp_print_int fmt e
