(* (t, h, n)-threshold signatures via aggregation of individual signatures —
   the schemes S_notary and S_final of the paper (§2.3 approaches (i)/(ii),
   §3.2), instantiated with h = n - t by the protocols.

   A signature share is an ordinary Schnorr signature by one party; a
   combined signature is a set of >= h shares from distinct parties together
   with the signer set.  This is exactly approach (i) of the paper, which
   also matches the verification semantics of BLS multi-signatures
   (approach (ii)): the combined object identifies the signatories.
   Wire sizes are modeled at BLS-multisignature scale. *)

type params = {
  n : int;
  threshold_h : int; (* shares needed to combine; protocols use n - t *)
  public_keys : Schnorr.public_key array; (* index 0 = party 1 *)
}

type secret = {
  owner : int; (* 1-based *)
  key : Schnorr.secret_key;
}

type share = {
  signer : int; (* 1-based *)
  signature : Schnorr.signature;
}

type signature = {
  signers : int list; (* sorted, distinct, length >= threshold_h *)
  signatures : Schnorr.signature list; (* aligned with signers *)
}

let setup ~threshold_h ~n rand_bits =
  if not (threshold_h >= 1 && threshold_h <= n) then
    invalid_arg "Multisig.setup: need 1 <= h <= n";
  let pairs = List.init n (fun _ -> Schnorr.keygen rand_bits) in
  let params =
    {
      n;
      threshold_h;
      public_keys = Array.of_list (List.map snd pairs);
    }
  in
  let secrets =
    List.mapi (fun i (sk, _) -> { owner = i + 1; key = sk }) pairs
  in
  (params, secrets)

let sign_share _params { owner; key } msg =
  { signer = owner; signature = Schnorr.sign key msg }

let verify_share params msg { signer; signature } =
  signer >= 1 && signer <= params.n
  && Schnorr.verify params.public_keys.(signer - 1) msg signature

(* Per-share verdicts through {!Schnorr.verify_batch}: a combine or
   certificate check hands all its shares to one batch call (one
   combined equation per chunk when batching is on) instead of h
   independent verifies.  Out-of-range signers are exact rejects that
   never reach the signature check, mirroring {!verify_share}. *)
let verify_shares params msg shares : bool list =
  let in_range s = s.signer >= 1 && s.signer <= params.n in
  let verdicts =
    Schnorr.verify_batch
      (List.filter_map
         (fun s ->
           if in_range s then
             Some (params.public_keys.(s.signer - 1), msg, s.signature)
           else None)
         shares)
  in
  let rec stitch shares verdicts =
    match shares with
    | [] -> []
    | s :: rest ->
        if in_range s then
          match verdicts with
          | v :: vs -> v :: stitch rest vs
          | [] -> assert false
        else false :: stitch rest verdicts
  in
  stitch shares verdicts

let combine params msg shares : signature option =
  Icc_obs.Profile.span "crypto.multisig_combine" @@ fun () ->
  (* Filter before deduplicating so a forged share cannot evict a genuine
     one bearing the same signer index. *)
  let valid =
    List.combine shares (verify_shares params msg shares)
    |> List.filter_map (fun (s, ok) -> if ok then Some s else None)
    |> List.sort_uniq (fun a b -> compare a.signer b.signer)
  in
  if List.length valid < params.threshold_h then None
  else
    Some
      {
        signers = List.map (fun s -> s.signer) valid;
        signatures = List.map (fun s -> s.signature) valid;
      }

let verify params msg { signers; signatures } =
  List.length signers >= params.threshold_h
  && List.length signers = List.length signatures
  && List.sort_uniq compare signers = signers
  && List.for_all Fun.id
       (verify_shares params msg
          (List.map2
             (fun signer signature -> { signer; signature })
             signers signatures))
[@@icc.domain_entry]

(* Modeled wire sizes (BLS multi-signature scale): a share is one 48-byte
   signature; a combined signature is 48 bytes plus an n-bit signer map. *)
let share_wire_size = 48
let signature_wire_size params = 48 + ((params.n + 7) / 8)
