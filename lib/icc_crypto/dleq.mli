(** Chaum–Pedersen non-interactive discrete-log-equality proofs, used to
    verify random-beacon signature shares. *)

type proof = {
  challenge : Group.scalar;
  response : Group.scalar;
  commit1 : Group.elt;
  commit2 : Group.elt;
      (** The prover's commitments [base1^nonce] / [base2^nonce].
          Redundant given [(challenge, response)] — the classic form
          recomputes them — but carrying them makes proofs
          batch-verifiable ({!verify_batch}) and single verification
          inversion-free.  Modeled wire sizes are unchanged. *)
}

val prove :
  base1:Group.elt ->
  base2:Group.elt ->
  exponent:int ->
  msg_tag:string ->
  proof
(** [prove ~base1 ~base2 ~exponent ~msg_tag] proves that
    [base1^exponent] and [base2^exponent] share the exponent.  [msg_tag]
    only seeds the deterministic nonce. *)

val verify :
  base1:Group.elt -> base2:Group.elt -> a:Group.elt -> b:Group.elt ->
  proof -> bool
(** [verify ~base1 ~base2 ~a ~b proof] checks that [a = base1^x] and
    [b = base2^x] for a common (unknown) [x]. *)

val verify_batch :
  base1:Group.elt ->
  base2:Group.elt ->
  (Group.elt * Group.elt * proof) list ->
  bool list
(** [verify_batch ~base1 ~base2 \[(a1, b1, p1); ...\]] returns per-item
    verdicts identical to mapping {!verify} (up to the ~2^-32 RLC
    false-accept bound) for proofs sharing a base pair — exactly the
    shape of one beacon round's share set.  With batching enabled the
    chunked combined equation amortises the group work; a failing chunk
    falls back to per-item equations, so culprits are identified
    exactly.  Chunks fan out over the {!Icc_obs.Dpool} domains when
    {!Batch.set_parallel_verify} is on. *)
