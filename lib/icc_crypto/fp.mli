(** Modular arithmetic on native ints for odd moduli below [2^61].

    All functions expect and return canonical representatives in [\[0, m)],
    except {!reduce} which canonicalises an arbitrary int. *)

val max_modulus_bits : int

val check_modulus : int -> unit
(** Raises [Invalid_argument] if the modulus is even, too small or ≥ 2^61. *)

val reduce : int -> int -> int
(** [reduce a m] is the canonical representative of [a] modulo [m]. *)

val add : int -> int -> int -> int
val sub : int -> int -> int -> int
val neg : int -> int -> int

val mul : int -> int -> int -> int
(** Modular product.  Uses a 31-bit-split fast path when enabled (the
    default) and the modulus admits it; otherwise falls back to the
    reference double-and-add.  Both compute the identical canonical
    result. *)

val mul_generic : int -> int -> int -> int
(** Reference double-and-add product; always available, used by property
    tests to cross-check the fast path. *)

val set_fast_mul : bool -> unit
(** Toggle the fast multiplication path (on by default).  Only affects
    speed, never results; exposed so the benchmark harness can measure
    before/after. *)

val fast_mul_enabled : unit -> bool

val pow : int -> int -> int -> int
(** [pow base e m] is [base^e mod m]; [e] must be non-negative. *)

val inv : int -> int -> int
(** Modular inverse; raises [Invalid_argument] when not invertible. *)

val divide : int -> int -> int -> int
(** [divide a b m = mul a (inv b m) m]. *)
