(** Shared machinery for random-linear-combination batch verification:
    toggles, deterministic batch coefficients, and chunked (optionally
    domain-parallel) dispatch.  Used by {!Schnorr.verify_batch} and
    {!Dleq.verify_batch}; see DESIGN.md §3.10.

    Both toggles follow the §3.5 discipline: Atomic-backed, flipped
    only while single-domain, and trace-preserving — batch and
    parallel verification return verdicts identical to the one-by-one
    path (up to the standard ~2^-32 RLC false-accept bound, which no
    committed scenario can hit), so only wall-clock changes. *)

val set_batch_verify : bool -> unit
(** Toggle random-linear-combination batching (on by default). *)

val batch_verify_enabled : unit -> bool

val set_parallel_verify : bool -> unit
(** Toggle fan-out of verification chunks over the {!Icc_obs.Dpool}
    worker domains (off by default; a no-op on 4.14 builds, where
    {!Icc_obs.Dpool.available} is [false]). *)

val parallel_verify_enabled : unit -> bool

val set_max_chunk : int -> unit
(** Batch chunk size (clamped to [>= 2]; default 64): verification
    batches larger than this are split into chunks of at most this
    size — the unit of both the combined RLC equation and of parallel
    dispatch.  The `bench perf` batch-size sweep varies this knob. *)

val max_chunk : unit -> int

val coeff : salt:int -> int array -> int
(** [coeff ~salt vs] derives a deterministic batch coefficient in
    [\[1, 2^32)] by avalanche-mixing the given ints — no RNG state is
    consumed, so equal items always draw equal weights and batching
    can never perturb trace determinism.  Distinct [salt]s yield
    independent weight streams (DLEQ batching needs two per item). *)

val dispatch : ('a array -> 'b array) -> 'a array -> 'b array
(** [dispatch f arr] splits [arr] into chunks of at most
    {!max_chunk} elements, maps [f] over the chunks — in parallel via
    {!Icc_obs.Dpool.map} under the [pool.parallel_join] span when
    {!parallel_verify_enabled} — and concatenates the results in input
    order.  [f] must be pure per chunk (verification predicates are). *)
