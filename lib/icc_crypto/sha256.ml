(* SHA-256 (FIPS 180-4), pure OCaml over Int32 words. *)

type t = string (* 32-byte digest *)

let digest_length = 32

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
     0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
     0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
     0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
     0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
     0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
     0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
     0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
     0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]
[@@icc.domain_safe
  "FIPS 180-4 round constants: written by nobody after initialisation, \
   read-only in every domain"]

let initial_state () =
  [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
     0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |]

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let ( &% ) = Int32.logand
let lnot32 = Int32.lognot

(* Process one 64-byte block starting at [off] in [msg] into state [h]. *)
let process_block h msg off =
  let w = Array.make 64 0l in
  for i = 0 to 15 do
    let b j = Int32.of_int (Char.code (Bytes.get msg (off + (4 * i) + j))) in
    w.(i) <-
      Int32.logor
        (Int32.shift_left (b 0) 24)
        (Int32.logor
           (Int32.shift_left (b 1) 16)
           (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  done;
  for i = 16 to 63 do
    let s0 =
      rotr w.(i - 15) 7 ^% rotr w.(i - 15) 18
      ^% Int32.shift_right_logical w.(i - 15) 3
    and s1 =
      rotr w.(i - 2) 17 ^% rotr w.(i - 2) 19
      ^% Int32.shift_right_logical w.(i - 2) 10
    in
    w.(i) <- w.(i - 16) +% s0 +% w.(i - 7) +% s1
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 ^% rotr !e 11 ^% rotr !e 25 in
    let ch = (!e &% !f) ^% (lnot32 !e &% !g) in
    let temp1 = !hh +% s1 +% ch +% k.(i) +% w.(i) in
    let s0 = rotr !a 2 ^% rotr !a 13 ^% rotr !a 22 in
    let maj = (!a &% !b) ^% (!a &% !c) ^% (!b &% !c) in
    let temp2 = s0 +% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +% temp1;
    d := !c;
    c := !b;
    b := !a;
    a := temp1 +% temp2
  done;
  h.(0) <- h.(0) +% !a;
  h.(1) <- h.(1) +% !b;
  h.(2) <- h.(2) +% !c;
  h.(3) <- h.(3) +% !d;
  h.(4) <- h.(4) +% !e;
  h.(5) <- h.(5) +% !f;
  h.(6) <- h.(6) +% !g;
  h.(7) <- h.(7) +% !hh

let digest_bytes (input : Bytes.t) : t =
  Counters.bump Counters.sha256_digests;
  let len = Bytes.length input in
  (* padded length: message ++ 0x80 ++ zeros ++ 8-byte big-endian bit length *)
  let rem = (len + 9) mod 64 in
  let padded_len = len + 9 + if rem = 0 then 0 else 64 - rem in
  let msg = Bytes.make padded_len '\000' in
  Bytes.blit input 0 msg 0 len;
  Bytes.set msg len '\x80';
  let bitlen = len * 8 in
  for j = 0 to 7 do
    Bytes.set msg
      (padded_len - 1 - j)
      (Char.chr ((bitlen lsr (8 * j)) land 0xff))
  done;
  let h = initial_state () in
  let nblocks = padded_len / 64 in
  for b = 0 to nblocks - 1 do
    process_block h msg (b * 64)
  done;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let word = h.(i) in
    for j = 0 to 3 do
      let byte =
        Int32.to_int (Int32.shift_right_logical word (8 * (3 - j))) land 0xff
      in
      Bytes.set out ((4 * i) + j) (Char.chr byte)
    done
  done;
  Bytes.unsafe_to_string out

let digest_string s = digest_bytes (Bytes.unsafe_of_string s)

let to_hex (d : t) =
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

(* First 12 hex chars: the abbreviated digest form used on the trace bus,
   where full 64-char digests would dominate line size. *)
let short_hex (d : t) =
  let buf = Buffer.create 12 in
  (try
     String.iter
       (fun c ->
         if Buffer.length buf >= 12 then raise Exit;
         Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
       d
   with Exit -> ());
  Buffer.contents buf

let equal = String.equal
let compare = String.compare

let of_raw s =
  if String.length s <> digest_length then
    invalid_arg "Sha256.of_raw: digests are 32 bytes"
  else s

(* First 61 bits of the digest as a non-negative int; used to derive field
   elements and PRNG seeds from digests. *)
let to_int61 (d : t) =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land ((1 lsl 61) - 1)

let pp fmt d = Format.pp_print_string fmt (to_hex d)
