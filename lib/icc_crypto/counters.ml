(* Crypto-operation counters, backed by the {!Icc_obs.Registry}.

   The counters keep their historical names and ordering — they are the
   ["ops_before"]/["ops_after"] keys of BENCH_perf.json — but live in the
   process-global registry, so `icc profile`, the Prometheus exposition
   and the trace-bus [prof-counter] snapshots all see them too.  They
   remain write-only inside lib/ (nothing reads them back into protocol
   decisions), so they cannot affect scheduling or determinism. *)

let sha256_digests = Icc_obs.Registry.counter "sha256_digests"
let schnorr_signs = Icc_obs.Registry.counter "schnorr_signs"
let schnorr_verifies = Icc_obs.Registry.counter "schnorr_verifies"
let dleq_proves = Icc_obs.Registry.counter "dleq_proves"
let dleq_verifies = Icc_obs.Registry.counter "dleq_verifies"
let pow_generic = Icc_obs.Registry.counter "pow_generic"
let pow_fixed_base = Icc_obs.Registry.counter "pow_fixed_base"
let fixed_base_tables = Icc_obs.Registry.counter "fixed_base_tables"
let fixed_base_evictions = Icc_obs.Registry.counter "fixed_base_evictions"
let multi_exps = Icc_obs.Registry.counter "multi_exps"
let schnorr_batched = Icc_obs.Registry.counter "schnorr_batched"
let dleq_batched = Icc_obs.Registry.counter "dleq_batched"
let batch_fallbacks = Icc_obs.Registry.counter "batch_fallbacks"
let zero_rederives = Icc_obs.Registry.counter "zero_rederives"

let all =
  [
    ("sha256_digests", sha256_digests);
    ("schnorr_signs", schnorr_signs);
    ("schnorr_verifies", schnorr_verifies);
    ("dleq_proves", dleq_proves);
    ("dleq_verifies", dleq_verifies);
    ("pow_generic", pow_generic);
    ("pow_fixed_base", pow_fixed_base);
    ("fixed_base_tables", fixed_base_tables);
    ("fixed_base_evictions", fixed_base_evictions);
    ("multi_exps", multi_exps);
    ("schnorr_batched", schnorr_batched);
    ("dleq_batched", dleq_batched);
    ("batch_fallbacks", batch_fallbacks);
    ("zero_rederives", zero_rederives);
  ]

let bump = Icc_obs.Registry.inc
let reset () = List.iter (fun (_, c) -> Icc_obs.Registry.add c (- Icc_obs.Registry.value c)) all
let snapshot () = List.map (fun (name, c) -> (name, Icc_obs.Registry.value c)) all
