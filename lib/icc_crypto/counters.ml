(* Crypto-operation counters for the bench harness (bench perf mode).

   Plain monotone counters bumped on the hot paths; they carry no
   information back into the protocol (nothing reads them inside lib/), so
   they cannot affect scheduling or determinism.  [reset]/[snapshot] are
   only called by the benchmark driver between runs. *)

let sha256_digests = ref 0
let schnorr_signs = ref 0
let schnorr_verifies = ref 0
let dleq_proves = ref 0
let dleq_verifies = ref 0
let pow_generic = ref 0
let pow_fixed_base = ref 0
let fixed_base_tables = ref 0

let all =
  [
    ("sha256_digests", sha256_digests);
    ("schnorr_signs", schnorr_signs);
    ("schnorr_verifies", schnorr_verifies);
    ("dleq_proves", dleq_proves);
    ("dleq_verifies", dleq_verifies);
    ("pow_generic", pow_generic);
    ("pow_fixed_base", pow_fixed_base);
    ("fixed_base_tables", fixed_base_tables);
  ]

let reset () = List.iter (fun (_, r) -> r := 0) all
let snapshot () = List.map (fun (name, r) -> (name, !r)) all
