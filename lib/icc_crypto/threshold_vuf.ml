(* (t, t+1, n)-threshold unique signatures — the scheme S_beacon backing the
   random beacon (paper §2.3, approach (iii), and §3.2).

   Construction: the DDH-based threshold "coin" of Cachin–Kursawe–Shoup
   (the paper's reference [10]), which is the pairing-free analogue of
   threshold BLS:

     - a dealer Shamir-shares a secret s; party i holds sk_i = f(i) and
       publishes vk_i = g^{f(i)}; the global key is pk = g^s;
     - the signature on message m is the unique value sigma = H2G(m)^s;
     - party i's signature share is H2G(m)^{sk_i} together with a
       Chaum–Pedersen DLEQ proof that it matches vk_i;
     - any t+1 valid shares combine by Lagrange interpolation in the
       exponent.

   Uniqueness: sigma is a deterministic function of (pk, m), which is what
   the random beacon requires.  Since verifying the combined value without
   pairings requires the shares, combined signatures carry a (t+1)-share
   certificate; wire sizes are modeled at BLS scale separately. *)

type params = {
  threshold_t : int; (* t: max corruptions; t+1 shares reconstruct *)
  n : int;
  global_pk : Group.elt; (* g^s *)
  verification_keys : Group.elt array; (* vk_i = g^{f(i)}, index 0 = party 1 *)
}

type secret_share = {
  owner : int; (* 1-based *)
  sk_i : Group.scalar;
}

type signature_share = {
  signer : int; (* 1-based *)
  value : Group.elt; (* H2G(m)^{sk_i} *)
  proof : Dleq.proof;
}

type signature = {
  sigma : Group.elt; (* H2G(m)^s *)
  certificate : signature_share list; (* exactly t+1 verified shares *)
}

let setup ~threshold_t ~n rand_bits =
  if not (threshold_t >= 0 && threshold_t < n) then
    invalid_arg "Threshold_vuf.setup: need 0 <= t < n";
  let secret = Group.random_scalar_nonzero rand_bits in
  let _, shares = Shamir.deal ~threshold_t ~n ~secret rand_bits in
  let params =
    {
      threshold_t;
      n;
      global_pk = Group.base_pow secret;
      verification_keys =
        Array.of_list
          (List.map (fun (s : Shamir.share) -> Group.base_pow s.value) shares);
    }
  in
  let secrets =
    List.map
      (fun (s : Shamir.share) -> { owner = s.index; sk_i = s.value })
      shares
  in
  (params, secrets)

let message_point msg = Group.hash_to_group (Sha256.digest_string msg)

let sign_share _params { owner; sk_i } msg : signature_share =
  let base = message_point msg in
  {
    signer = owner;
    (* The message point recurs for every share of the round, so it
       rides the fixed-base cache like the proof's base2 pows. *)
    value = Group.pow_cached base sk_i;
    proof = Dleq.prove ~base1:Group.generator ~base2:base ~exponent:sk_i ~msg_tag:msg;
  }

let verify_share params msg (share : signature_share) =
  share.signer >= 1 && share.signer <= params.n
  &&
  let base = message_point msg in
  Dleq.verify ~base1:Group.generator ~base2:base
    ~a:params.verification_keys.(share.signer - 1)
    ~b:share.value share.proof

(* Per-share verdicts through {!Dleq.verify_batch}: every share of a
   beacon round proves against the same (generator, H2G(m)) base pair,
   which is exactly the shape the combined equation needs.
   Out-of-range signers are exact rejects that never reach the proof
   check, mirroring {!verify_share}. *)
let verify_shares params msg (shares : signature_share list) : bool list =
  let base = message_point msg in
  let in_range s = s.signer >= 1 && s.signer <= params.n in
  let verdicts =
    Dleq.verify_batch ~base1:Group.generator ~base2:base
      (List.filter_map
         (fun s ->
           if in_range s then
             Some (params.verification_keys.(s.signer - 1), s.value, s.proof)
           else None)
         shares)
  in
  let rec stitch shares verdicts =
    match shares with
    | [] -> []
    | s :: rest ->
        if in_range s then
          match verdicts with
          | v :: vs -> v :: stitch rest vs
          | [] -> assert false
        else false :: stitch rest verdicts
  in
  stitch shares verdicts

(* Lagrange interpolation at 0 in the exponent. *)
let interpolate shares =
  let idxs = List.map (fun s -> s.signer) shares in
  List.fold_left
    (fun acc s ->
      Group.mul acc (Group.pow s.value (Shamir.lagrange_coeff_at_zero idxs s.signer)))
    Group.one shares

(* Shared selection rule: dedupe by signer, keep the t+1 lowest signer
   indices.  [combine] and [combine_preverified] must pick the identical
   subset from the same share multiset, or the interpolated sigma (and
   every trace byte derived from it) would differ between the verified and
   pre-verified paths. *)
let select params shares : signature option =
  let uniq = List.sort_uniq (fun a b -> compare a.signer b.signer) shares in
  if List.length uniq < params.threshold_t + 1 then None
  else
    let chosen = List.filteri (fun i _ -> i <= params.threshold_t) uniq in
    Some { sigma = interpolate chosen; certificate = chosen }

let combine params msg shares : signature option =
  Icc_obs.Profile.span "crypto.vuf_combine" @@ fun () ->
  (* Filter before deduplicating so a forged share cannot evict a genuine
     one bearing the same signer index; one batch call covers the set. *)
  select params
    (List.combine shares (verify_shares params msg shares)
    |> List.filter_map (fun (s, ok) -> if ok then Some s else None))

let combine_preverified params shares : signature option =
  Icc_obs.Profile.span "crypto.vuf_combine" @@ fun () ->
  (* Shares must already have passed {!verify_share} (the pool verifies at
     admission); skipping re-verification makes combining O(t) group ops
     instead of O(t) DLEQ checks per attempt. *)
  select params shares

let verify params msg { sigma; certificate } =
  List.length certificate = params.threshold_t + 1
  && List.for_all Fun.id (verify_shares params msg certificate)
  && List.length (List.sort_uniq (fun a b -> compare a.signer b.signer) certificate)
     = params.threshold_t + 1
  && Group.elt_equal sigma (interpolate certificate)

let randomness msg { sigma; _ } =
  Sha256.digest_string (Printf.sprintf "vuf-out|%s|%d" msg sigma)

(* Modeled wire sizes (production BLS scale): a share is a 48-byte group
   element plus a 96-byte proof; a combined signature is 48 bytes. *)
let share_wire_size = 144
let signature_wire_size = 48
