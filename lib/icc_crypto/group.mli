(** Prime-order group for all signature schemes: the quadratic-residue
    subgroup of [Z_p^*] for the fixed 61-bit safe prime [p], with
    generator [g = 4] and order [q = (p-1)/2]. *)

type elt = int
(** Canonical representative in [\[1, p)], member of the QR subgroup. *)

type scalar = int
(** Canonical representative in [\[0, q)]. *)

val p : int
val q : int

val one : elt
val generator : elt

val elt_equal : elt -> elt -> bool
val scalar_equal : scalar -> scalar -> bool
val is_element : int -> bool

val mul : elt -> elt -> elt
val elt_inv : elt -> elt

val pow : elt -> int -> elt
(** Generic square-and-multiply exponentiation (exponent reduced mod [q]). *)

val pow_cached : elt -> int -> elt
(** Like {!pow}, but serves the exponentiation from a precomputed
    fixed-base window table when the optimisation is enabled (the
    default), building and caching the table on first use.  Intended for
    long-lived bases — the generator, public keys, verification keys;
    never call it with per-message points.  Results are always identical
    to {!pow}. *)

val base_pow : int -> elt
(** [base_pow e = pow_cached generator e]. *)

val set_fixed_base : bool -> unit
(** Toggle fixed-base tables (on by default).  Only affects speed, never
    results; exposed so the benchmark harness can measure before/after. *)

val fixed_base_enabled : unit -> bool

val scalar_add : scalar -> scalar -> scalar
val scalar_sub : scalar -> scalar -> scalar
val scalar_mul : scalar -> scalar -> scalar
val scalar_inv : scalar -> scalar
val scalar_reduce : int -> scalar

val scalar_of_hash : Sha256.t -> scalar
val hash_to_group : Sha256.t -> elt

val random_scalar : (unit -> int) -> scalar
(** [random_scalar rand_bits] draws a uniform scalar given a source of
    uniform 61-bit non-negative ints. *)

val elt_to_string : elt -> string
val pp_elt : Format.formatter -> elt -> unit
