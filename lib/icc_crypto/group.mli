(** Prime-order group for all signature schemes: the quadratic-residue
    subgroup of [Z_p^*] for the fixed 61-bit safe prime [p], with
    generator [g = 4] and order [q = (p-1)/2]. *)

type elt = int
(** Canonical representative in [\[1, p)], member of the QR subgroup. *)

type scalar = int
(** Canonical representative in [\[0, q)]. *)

val p : int
val q : int

val one : elt
val generator : elt

val elt_equal : elt -> elt -> bool
val scalar_equal : scalar -> scalar -> bool
val is_element : int -> bool

val mul : elt -> elt -> elt
val elt_inv : elt -> elt

val pow : elt -> int -> elt
(** Generic square-and-multiply exponentiation (exponent reduced mod [q]). *)

val pow_cached : elt -> int -> elt
(** Like {!pow}, but serves the exponentiation from a precomputed
    fixed-base window table when the optimisation is enabled (the
    default), building and caching the table on first use.  Intended for
    long-lived bases — the generator, public keys, verification keys;
    never call it with per-message points.  Results are always identical
    to {!pow}. *)

val base_pow : int -> elt
(** [base_pow e = pow_cached generator e]. *)

val multi_exp : (elt * scalar) array -> elt
(** [multi_exp \[| (b1, e1); ...; (bn, en) |\]] is the product
    [b1^e1 * ... * bn^en], computed with the Pippenger bucket method —
    roughly [ceil(bits/c) * (n + 2^c)] group mults for an adaptive
    window width [c], vs. [~1.5 * bits * n] for [n] independent
    {!pow}s.  Exponents are reduced mod [q]; narrow exponents (e.g.
    32-bit batch coefficients) cost proportionally fewer windows.
    [multi_exp \[||\] = one].  The workhorse of
    {!Schnorr.verify_batch} / {!Dleq.verify_batch}. *)

val set_fixed_base : bool -> unit
(** Toggle fixed-base tables (on by default).  Only affects speed, never
    results; exposed so the benchmark harness can measure before/after. *)

val fixed_base_enabled : unit -> bool

val scalar_add : scalar -> scalar -> scalar
val scalar_sub : scalar -> scalar -> scalar
val scalar_mul : scalar -> scalar -> scalar
val scalar_inv : scalar -> scalar
val scalar_reduce : int -> scalar

val scalar_of_hash : Sha256.t -> scalar

val scalar_of_hash_nonzero : tag:string -> Sha256.t -> scalar
(** Like {!scalar_of_hash}, but guarantees a non-zero result without
    biasing the distribution: the first derivation is byte-identical to
    [scalar_of_hash d], and the (probability ~2^-61) zero draw is
    re-derived through a [tag]-keyed hash counter chain instead of the
    historical 0 -> 1 remap (which gave scalar 1 double mass).  Each
    re-derivation bumps {!Counters.zero_rederives}. *)

val hash_to_group : Sha256.t -> elt

val residue_to_group : int -> elt
(** The squaring map underlying {!hash_to_group}, exposed for direct
    unit tests of its nudge classes: [x] in [\[2, p - 1\]] is squared
    into the QR subgroup, with the degenerate [x = p - 1] (whose square
    is the identity) remapped to the class of 3 — distinct from the
    class of 2, unlike the historical remap. *)

val random_scalar : (unit -> int) -> scalar
(** [random_scalar rand_bits] draws a uniform scalar given a source of
    uniform 61-bit non-negative ints. *)

val random_scalar_nonzero : (unit -> int) -> scalar
(** {!random_scalar} with zero rejected and redrawn (uniform on
    [\[1, q)]); each rejection bumps {!Counters.zero_rederives}. *)

val elt_to_string : elt -> string
val pp_elt : Format.formatter -> elt -> unit
