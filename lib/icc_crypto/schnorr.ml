(* Schnorr signatures over {!Group}; the digital signature scheme S_auth of
   the paper (§2.2).  Nonces are derived deterministically from the secret
   key and message (RFC 6979 style) so signing needs no randomness source.

   Signatures carry the commitment R = g^nonce alongside the classic
   (c, s) pair: the (c, s) form recomputes R during verification and so
   cannot be batch-verified (each challenge hash needs its R first),
   while carrying R makes the per-signature work a cheap hash check
   plus one group equation g^s = R * pk^c — and k such equations fold
   into a single random-linear-combination multi-exponentiation
   ({!verify_batch}, DESIGN.md §3.10).  R is redundant given (c, s), so
   modeled wire sizes are unchanged. *)

(* The secret key caches its public point: [sign] needs g^sk for the
   challenge hash on every call, and the type is abstract so the cache is
   invisible to clients. *)
type secret_key = { sk : Group.scalar; cached_pk : Group.elt }
type public_key = { pk : Group.elt }

type signature = {
  challenge : Group.scalar;
  response : Group.scalar;
  commitment : Group.elt; (* R = g^nonce; carried for batch verification *)
}

let make_secret sk = { sk; cached_pk = Group.base_pow sk }

let keygen rand_bits =
  let sk = Group.random_scalar_nonzero rand_bits in
  let key = make_secret sk in
  (key, { pk = key.cached_pk })

let public_key_of_secret { cached_pk; _ } = { pk = cached_pk }

let challenge_hash ~commitment ~pk ~msg =
  Group.scalar_of_hash
    (Sha256.digest_string
       (Printf.sprintf "schnorr|%d|%d|%s" commitment pk msg))

let sign { sk; cached_pk } (msg : string) : signature =
  Icc_obs.Profile.span "crypto.schnorr_sign" @@ fun () ->
  Counters.bump Counters.schnorr_signs;
  let nonce =
    let d = Sha256.digest_string (Printf.sprintf "nonce|%d|%s" sk msg) in
    Group.scalar_of_hash_nonzero ~tag:"schnorr-nonce" d
  in
  let commitment = Group.base_pow nonce in
  let challenge = challenge_hash ~commitment ~pk:cached_pk ~msg in
  let response = Group.scalar_add nonce (Group.scalar_mul challenge sk) in
  { challenge; response; commitment }

(* The group-equation half of verification: g^s = R * pk^c.  If it
   holds, R is forced into the QR subgroup (g^s and pk^c both are), so
   an attacker-supplied commitment needs no separate membership check.
   Both bases are long-lived (generator, a party public key), so both
   exponentiations go through the fixed-base cache; carrying R means no
   inversion is needed. *)
let verify_eq { pk } { challenge; response; commitment } =
  Group.elt_equal (Group.base_pow response)
    (Group.mul commitment (Group.pow_cached pk challenge))

let verify pk_r (msg : string) sg : bool =
  Icc_obs.Profile.span "crypto.schnorr_verify" @@ fun () ->
  Counters.bump Counters.schnorr_verifies;
  Group.scalar_equal sg.challenge
    (challenge_hash ~commitment:sg.commitment ~pk:pk_r.pk ~msg)
  && verify_eq pk_r sg
[@@icc.domain_entry]

(* --- batch verification ------------------------------------------------- *)

(* Check one chunk through the combined equation
     g^{sum_i z_i s_i} = prod_i pk_i^{z_i c_i} * prod_i R_i^{z_i}
   for deterministic weights z_i in [1, 2^32).  Items whose challenge
   hash already mismatches are exact rejects and are excluded from the
   equation; if the combined equation fails, the per-item equation pass
   identifies the culprits (and only then — [Counters.batch_fallbacks]).
   pk_i are long-lived, so their full-width exponentiations stay on the
   fixed-base cache; the fresh commitments R_i go through one Pippenger
   multi-exp whose exponents are only 32 bits wide. *)
let verify_chunk (chunk : (public_key * string * signature) array) :
    bool array =
  Icc_obs.Profile.span "crypto.batch_verify" @@ fun () ->
  let n = Array.length chunk in
  let ok = Array.make n false in
  Array.iteri
    (fun i (pk_r, msg, sg) ->
      Counters.bump Counters.schnorr_verifies;
      ok.(i) <-
        Group.scalar_equal sg.challenge
          (challenge_hash ~commitment:sg.commitment ~pk:pk_r.pk ~msg))
    chunk;
  let idx =
    Array.of_seq
      (Seq.filter (fun i -> ok.(i)) (Seq.init n (fun i -> i)))
  in
  let k = Array.length idx in
  if k = 0 then ok
  else begin
    let z =
      Array.map
        (fun i ->
          let (pk_r, _, sg) = chunk.(i) in
          Batch.coeff ~salt:0x5C40
            [| i; pk_r.pk; sg.challenge; sg.response; sg.commitment |])
        idx
    in
    let lhs_exp = ref 0 in
    Array.iteri
      (fun j i ->
        let (_, _, sg) = chunk.(i) in
        lhs_exp :=
          Group.scalar_add !lhs_exp (Group.scalar_mul z.(j) sg.response))
      idx;
    let rhs_keys = ref Group.one in
    Array.iteri
      (fun j i ->
        let (pk_r, _, sg) = chunk.(i) in
        rhs_keys :=
          Group.mul !rhs_keys
            (Group.pow_cached pk_r.pk (Group.scalar_mul z.(j) sg.challenge)))
      idx;
    let rhs_commits =
      Group.multi_exp
        (Array.mapi
           (fun j i ->
             let (_, _, sg) = chunk.(i) in
             (sg.commitment, z.(j)))
           idx)
    in
    if Group.elt_equal (Group.base_pow !lhs_exp) (Group.mul !rhs_keys rhs_commits)
    then begin
      Icc_obs.Registry.add Counters.schnorr_batched k;
      ok
    end
    else begin
      (* Combined equation failed: at least one hash-valid signature is
         forged; fall back to per-item equations for exact verdicts. *)
      Counters.bump Counters.batch_fallbacks;
      Array.iter
        (fun i ->
          let (pk_r, _, sg) = chunk.(i) in
          ok.(i) <- verify_eq pk_r sg)
        idx;
      ok
    end
  end

let verify_batch (items : (public_key * string * signature) list) : bool list =
  match items with
  | [] -> []
  | [ (pk_r, msg, sg) ] -> [ verify pk_r msg sg ]
  | _ ->
      let arr = Array.of_list items in
      let f =
        if Batch.batch_verify_enabled () then verify_chunk
        else Array.map (fun (pk_r, msg, sg) -> verify pk_r msg sg)
      in
      Array.to_list (Batch.dispatch f arr)
[@@icc.domain_entry]

(* Modeled wire size: production Schnorr/BLS signatures are 48–64 bytes
   (R is recomputable from (c, s), so carrying it is free on the modeled
   wire). *)
let signature_wire_size = 64
