(* Schnorr signatures over {!Group}; the digital signature scheme S_auth of
   the paper (§2.2).  Nonces are derived deterministically from the secret
   key and message (RFC 6979 style) so signing needs no randomness source. *)

(* The secret key caches its public point: [sign] needs g^sk for the
   challenge hash on every call, and the type is abstract so the cache is
   invisible to clients. *)
type secret_key = { sk : Group.scalar; cached_pk : Group.elt }
type public_key = { pk : Group.elt }

type signature = {
  challenge : Group.scalar;
  response : Group.scalar;
}

let make_secret sk = { sk; cached_pk = Group.base_pow sk }

let keygen rand_bits =
  let sk = Group.random_scalar rand_bits in
  let sk = if sk = 0 then 1 else sk in
  let key = make_secret sk in
  (key, { pk = key.cached_pk })

let public_key_of_secret { cached_pk; _ } = { pk = cached_pk }

let challenge_hash ~commitment ~pk ~msg =
  Group.scalar_of_hash
    (Sha256.digest_string
       (Printf.sprintf "schnorr|%d|%d|%s" commitment pk msg))

let sign { sk; cached_pk } (msg : string) : signature =
  Icc_obs.Profile.span "crypto.schnorr_sign" @@ fun () ->
  Counters.bump Counters.schnorr_signs;
  let nonce =
    let d = Sha256.digest_string (Printf.sprintf "nonce|%d|%s" sk msg) in
    let k = Group.scalar_of_hash d in
    if k = 0 then 1 else k
  in
  let commitment = Group.base_pow nonce in
  let challenge = challenge_hash ~commitment ~pk:cached_pk ~msg in
  let response = Group.scalar_add nonce (Group.scalar_mul challenge sk) in
  { challenge; response }

let verify { pk } (msg : string) { challenge; response } : bool =
  Icc_obs.Profile.span "crypto.schnorr_verify" @@ fun () ->
  Counters.bump Counters.schnorr_verifies;
  (* R' = g^s * pk^(-c); valid iff H(R', pk, msg) = c.  Both bases are
     long-lived (generator, a party public key), so both exponentiations
     go through the fixed-base cache. *)
  let commitment =
    Group.mul (Group.base_pow response)
      (Group.elt_inv (Group.pow_cached pk challenge))
  in
  Group.scalar_equal challenge (challenge_hash ~commitment ~pk ~msg)
[@@icc.domain_entry]

(* Modeled wire size: production Schnorr/BLS signatures are 48–64 bytes. *)
let signature_wire_size = 64
