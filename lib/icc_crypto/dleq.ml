(* Chaum–Pedersen non-interactive proofs of discrete-log equality:
   given (g, h, a, b), prove knowledge of x with a = g^x and b = h^x.

   Used to verify beacon signature shares: party i proves that its share
   H2G(m)^{sk_i} uses the same exponent as its public verification key
   g^{sk_i}.  This is the share-verification mechanism of the
   Cachin–Kursawe–Shoup threshold coin (paper reference [10]). *)

type proof = {
  challenge : Group.scalar;
  response : Group.scalar;
}

let challenge_hash ~base1 ~base2 ~a ~b ~commit1 ~commit2 =
  Group.scalar_of_hash
    (Sha256.digest_string
       (Printf.sprintf "dleq|%d|%d|%d|%d|%d|%d" base1 base2 a b commit1
          commit2))

let prove ~base1 ~base2 ~exponent ~msg_tag =
  Icc_obs.Profile.span "crypto.dleq_prove" @@ fun () ->
  Counters.bump Counters.dleq_proves;
  let x = Group.scalar_reduce exponent in
  (* base1 is the long-lived generator at every call site, so it goes
     through the fixed-base cache; base2 is a per-message point and must
     not be cached. *)
  let a = Group.pow_cached base1 x and b = Group.pow base2 x in
  (* Deterministic nonce (the prover holds x, so this is safe). *)
  let nonce =
    let d =
      Sha256.digest_string
        (Printf.sprintf "dleq-nonce|%d|%d|%d|%s" x base1 base2 msg_tag)
    in
    let k = Group.scalar_of_hash d in
    if k = 0 then 1 else k
  in
  let commit1 = Group.pow_cached base1 nonce
  and commit2 = Group.pow base2 nonce in
  let challenge = challenge_hash ~base1 ~base2 ~a ~b ~commit1 ~commit2 in
  let response = Group.scalar_add nonce (Group.scalar_mul challenge x) in
  { challenge; response }

let verify ~base1 ~base2 ~a ~b { challenge; response } =
  Icc_obs.Profile.span "crypto.dleq_verify" @@ fun () ->
  Counters.bump Counters.dleq_verifies;
  (* commit1' = base1^s * a^(-c), commit2' = base2^s * b^(-c).
     base1 (generator) and a (a verification key) are long-lived bases and
     use the fixed-base cache; base2/b depend on the message and don't. *)
  let commit1 =
    Group.mul
      (Group.pow_cached base1 response)
      (Group.elt_inv (Group.pow_cached a challenge))
  and commit2 =
    Group.mul (Group.pow base2 response) (Group.elt_inv (Group.pow b challenge))
  in
  Group.scalar_equal challenge
    (challenge_hash ~base1 ~base2 ~a ~b ~commit1 ~commit2)
[@@icc.domain_entry]
