(* Chaum–Pedersen non-interactive proofs of discrete-log equality:
   given (g, h, a, b), prove knowledge of x with a = g^x and b = h^x.

   Used to verify beacon signature shares: party i proves that its share
   H2G(m)^{sk_i} uses the same exponent as its public verification key
   g^{sk_i}.  This is the share-verification mechanism of the
   Cachin–Kursawe–Shoup threshold coin (paper reference [10]).

   Proofs carry the two commitments (k1, k2) = (base1^nonce,
   base2^nonce) alongside the classic (c, s) pair: the (c, s) form
   recomputes them during verification and so cannot be batch-verified
   (the challenge hash needs them first), while carrying them turns
   verification into a hash check plus two inversion-free group
   equations — and k proofs on a shared base pair fold into a single
   random-linear-combination multi-exponentiation ({!verify_batch},
   DESIGN.md §3.10).  The commitments are redundant given (c, s), so
   modeled wire sizes are unchanged. *)

type proof = {
  challenge : Group.scalar;
  response : Group.scalar;
  commit1 : Group.elt; (* base1^nonce; carried for batch verification *)
  commit2 : Group.elt; (* base2^nonce; carried for batch verification *)
}

let challenge_hash ~base1 ~base2 ~a ~b ~commit1 ~commit2 =
  Group.scalar_of_hash
    (Sha256.digest_string
       (Printf.sprintf "dleq|%d|%d|%d|%d|%d|%d" base1 base2 a b commit1
          commit2))

let prove ~base1 ~base2 ~exponent ~msg_tag =
  Icc_obs.Profile.span "crypto.dleq_prove" @@ fun () ->
  Counters.bump Counters.dleq_proves;
  let x = Group.scalar_reduce exponent in
  (* base1 is the long-lived generator at every call site; base2 is the
     round's message point, shared by every share of that round (n
     proofs and up to n verifications), so it earns a fixed-base table
     too — the probation/eviction cache absorbs the per-round churn. *)
  let a = Group.pow_cached base1 x and b = Group.pow_cached base2 x in
  (* Deterministic nonce (the prover holds x, so this is safe). *)
  let nonce =
    let d =
      Sha256.digest_string
        (Printf.sprintf "dleq-nonce|%d|%d|%d|%s" x base1 base2 msg_tag)
    in
    Group.scalar_of_hash_nonzero ~tag:"dleq-nonce" d
  in
  let commit1 = Group.pow_cached base1 nonce
  and commit2 = Group.pow_cached base2 nonce in
  let challenge = challenge_hash ~base1 ~base2 ~a ~b ~commit1 ~commit2 in
  let response = Group.scalar_add nonce (Group.scalar_mul challenge x) in
  { challenge; response; commit1; commit2 }

(* The group-equation half of verification:
     base1^s = k1 * a^c  and  base2^s = k2 * b^c.
   If they hold, k1/k2 are forced into the QR subgroup, so
   attacker-supplied commitments need no separate membership check.
   base1 (generator), base2 (the round's shared message point) and a (a
   verification key) ride the fixed-base cache; b is a per-share value
   seen at most twice and stays on generic pow. *)
let verify_eq ~base1 ~base2 ~a ~b { challenge; response; commit1; commit2 } =
  Group.elt_equal
    (Group.pow_cached base1 response)
    (Group.mul commit1 (Group.pow_cached a challenge))
  && Group.elt_equal
       (Group.pow_cached base2 response)
       (Group.mul commit2 (Group.pow b challenge))

let verify ~base1 ~base2 ~a ~b pf =
  Icc_obs.Profile.span "crypto.dleq_verify" @@ fun () ->
  Counters.bump Counters.dleq_verifies;
  Group.scalar_equal pf.challenge
    (challenge_hash ~base1 ~base2 ~a ~b ~commit1:pf.commit1
       ~commit2:pf.commit2)
  && verify_eq ~base1 ~base2 ~a ~b pf
[@@icc.domain_entry]

(* --- batch verification ------------------------------------------------- *)

(* Check one chunk of proofs sharing (base1, base2) through the combined
   equation
     base1^{sum_i z_i s_i} * base2^{sum_i z'_i s_i}
       = prod_i a_i^{z_i c_i} * prod_i k1_i^{z_i} k2_i^{z'_i} b_i^{z'_i c_i}
   for two independent deterministic weight streams z_i, z'_i in
   [1, 2^32) (one per proof equation).  Hash mismatches are exact
   rejects excluded up front; a failed combined equation falls back to
   per-item equations to identify culprits.  a_i (verification keys),
   base1 and base2 use the fixed-base cache; the fresh k1_i/k2_i/b_i
   fold into one Pippenger multi-exp. *)
let verify_chunk ~base1 ~base2
    (chunk : (Group.elt * Group.elt * proof) array) : bool array =
  Icc_obs.Profile.span "crypto.batch_verify" @@ fun () ->
  let n = Array.length chunk in
  let ok = Array.make n false in
  Array.iteri
    (fun i (a, b, pf) ->
      Counters.bump Counters.dleq_verifies;
      ok.(i) <-
        Group.scalar_equal pf.challenge
          (challenge_hash ~base1 ~base2 ~a ~b ~commit1:pf.commit1
             ~commit2:pf.commit2))
    chunk;
  let idx =
    Array.of_seq (Seq.filter (fun i -> ok.(i)) (Seq.init n (fun i -> i)))
  in
  let k = Array.length idx in
  if k = 0 then ok
  else begin
    let zs =
      Array.map
        (fun i ->
          let (a, b, pf) = chunk.(i) in
          let vs = [| i; a; b; pf.challenge; pf.response |] in
          (Batch.coeff ~salt:0xD1E0 vs, Batch.coeff ~salt:0xD1E1 vs))
        idx
    in
    let e1 = ref 0 and e2 = ref 0 in
    Array.iteri
      (fun j i ->
        let (_, _, pf) = chunk.(i) in
        let z, z' = zs.(j) in
        e1 := Group.scalar_add !e1 (Group.scalar_mul z pf.response);
        e2 := Group.scalar_add !e2 (Group.scalar_mul z' pf.response))
      idx;
    let lhs =
      Group.mul (Group.pow_cached base1 !e1) (Group.pow_cached base2 !e2)
    in
    let rhs_keys = ref Group.one in
    Array.iteri
      (fun j i ->
        let (a, _, pf) = chunk.(i) in
        let z, _ = zs.(j) in
        rhs_keys :=
          Group.mul !rhs_keys
            (Group.pow_cached a (Group.scalar_mul z pf.challenge)))
      idx;
    let fresh = Array.make (3 * k) (Group.one, 0) in
    Array.iteri
      (fun j i ->
        let (_, b, pf) = chunk.(i) in
        let z, z' = zs.(j) in
        fresh.(3 * j) <- (pf.commit1, z);
        fresh.((3 * j) + 1) <- (pf.commit2, z');
        fresh.((3 * j) + 2) <- (b, Group.scalar_mul z' pf.challenge))
      idx;
    let rhs = Group.mul !rhs_keys (Group.multi_exp fresh) in
    if Group.elt_equal lhs rhs then begin
      Icc_obs.Registry.add Counters.dleq_batched k;
      ok
    end
    else begin
      Counters.bump Counters.batch_fallbacks;
      Array.iter
        (fun i ->
          let (a, b, pf) = chunk.(i) in
          ok.(i) <- verify_eq ~base1 ~base2 ~a ~b pf)
        idx;
      ok
    end
  end

let verify_batch ~base1 ~base2
    (items : (Group.elt * Group.elt * proof) list) : bool list =
  match items with
  | [] -> []
  | [ (a, b, pf) ] -> [ verify ~base1 ~base2 ~a ~b pf ]
  | _ ->
      let arr = Array.of_list items in
      let f =
        if Batch.batch_verify_enabled () then verify_chunk ~base1 ~base2
        else Array.map (fun (a, b, pf) -> verify ~base1 ~base2 ~a ~b pf)
      in
      Array.to_list (Batch.dispatch f arr)
[@@icc.domain_entry]
