(** (t, h, n)-threshold signatures by aggregation of individual Schnorr
    signatures — the notarization ([S_notary]) and finalization ([S_final])
    schemes of the paper, used with [h = n - t].

    The paper's §2.3 lists this (approach (i)) as a valid instantiation;
    like BLS multi-signatures (approach (ii)) the combined signature
    identifies its [h] signatories. *)

type params = {
  n : int;
  threshold_h : int;
  public_keys : Schnorr.public_key array;
}

type secret = {
  owner : int;  (** 1-based party index. *)
  key : Schnorr.secret_key;
}

type share = {
  signer : int;
  signature : Schnorr.signature;
}

type signature = {
  signers : int list;
  signatures : Schnorr.signature list;
}

val setup : threshold_h:int -> n:int -> (unit -> int) -> params * secret list
val sign_share : params -> secret -> string -> share
val verify_share : params -> string -> share -> bool

val verify_shares : params -> string -> share list -> bool list
(** Per-share verdicts, identical to mapping {!verify_share}, but
    routed through {!Schnorr.verify_batch} so one combined equation per
    chunk covers the whole set when batching is enabled. *)

val combine : params -> string -> share list -> signature option
(** [None] when fewer than [threshold_h] distinct valid shares remain after
    filtering invalid and duplicate ones. *)

val verify : params -> string -> signature -> bool

val share_wire_size : int
val signature_wire_size : params -> int
