(** Schnorr signatures over {!Group}: the ordinary digital signature scheme
    [S_auth] used to authenticate block proposals (paper §2.2, §3.2).

    Deterministic (derandomised) signing: the nonce is derived from the
    secret key and the message, so equal inputs yield equal signatures. *)

type secret_key
type public_key = { pk : Group.elt }

type signature = {
  challenge : Group.scalar;
  response : Group.scalar;
  commitment : Group.elt;
      (** [R = g^nonce].  Redundant given [(challenge, response)] — the
          classic form recomputes it — but carrying it is what makes
          signatures batch-verifiable: k checks fold into one
          random-linear-combination multi-exponentiation
          ({!verify_batch}).  Modeled wire sizes are unchanged. *)
}

val keygen : (unit -> int) -> secret_key * public_key
(** [keygen rand_bits] draws a fresh key pair from a source of uniform
    61-bit non-negative ints. *)

val public_key_of_secret : secret_key -> public_key
val sign : secret_key -> string -> signature
val verify : public_key -> string -> signature -> bool

val verify_batch : (public_key * string * signature) list -> bool list
(** Per-item verdicts, identical to mapping {!verify} (up to the
    ~2^-32 RLC false-accept bound).  With batching enabled
    ({!Batch.set_batch_verify}, the default) the items are checked in
    chunks of {!Batch.max_chunk} through one combined group equation
    each — a hash check plus O(1) amortised group work per signature —
    falling back to per-item equations inside a chunk whose combined
    equation fails, so culprits are still identified exactly.  With
    {!Batch.set_parallel_verify} the chunks fan out over the
    {!Icc_obs.Dpool} worker domains, joined in input order. *)

val signature_wire_size : int
(** Modeled production wire size in bytes, used by traffic accounting. *)
