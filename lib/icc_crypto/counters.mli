(** Crypto-operation counters, registered in the process-global
    {!Icc_obs.Registry} under their historical names (the
    ["ops_before"]/["ops_after"] keys of BENCH_perf.json).

    Bumped on the crypto hot paths (hashing, signing/verification,
    exponentiation); write-only inside the library, so they cannot
    influence protocol behaviour.  The bench driver resets and snapshots
    them around measured runs; `icc run` prints a summary line from
    {!snapshot}; the runner mirrors them onto the trace bus as
    [prof-counter] events when profiling is enabled. *)

val sha256_digests : Icc_obs.Registry.counter
val schnorr_signs : Icc_obs.Registry.counter
val schnorr_verifies : Icc_obs.Registry.counter
val dleq_proves : Icc_obs.Registry.counter
val dleq_verifies : Icc_obs.Registry.counter

val pow_generic : Icc_obs.Registry.counter
(** Group exponentiations via generic square-and-multiply. *)

val pow_fixed_base : Icc_obs.Registry.counter
(** Group exponentiations served by a precomputed fixed-base table. *)

val fixed_base_tables : Icc_obs.Registry.counter
(** Fixed-base tables built (one-time cost per cached base). *)

val fixed_base_evictions : Icc_obs.Registry.counter
(** Resident fixed-base tables evicted to admit a probation-proven hot
    base once the cache is at capacity. *)

val multi_exps : Icc_obs.Registry.counter
(** Pippenger multi-exponentiations ({!Group.multi_exp} calls). *)

val schnorr_batched : Icc_obs.Registry.counter
(** Schnorr signatures checked through a random-linear-combination
    batch equation rather than one-by-one. *)

val dleq_batched : Icc_obs.Registry.counter
(** DLEQ proofs checked through a random-linear-combination batch
    equation rather than one-by-one. *)

val batch_fallbacks : Icc_obs.Registry.counter
(** Batches whose combined equation failed, forcing the per-item
    fallback pass that identifies the culprits. *)

val zero_rederives : Icc_obs.Registry.counter
(** Zero scalars hit during key/nonce derivation and re-derived (hash
    counter / rejection resample).  Asserted 0 on the golden runs. *)

val bump : Icc_obs.Registry.counter -> unit
(** Alias for {!Icc_obs.Registry.inc} — one mutable store. *)

val reset : unit -> unit
(** Zero the crypto counters only (the rest of the registry is left
    alone). *)

val snapshot : unit -> (string * int) list
(** Stable, ordered list of counter names and current values. *)
