(** Crypto-operation counters for the benchmark harness.

    Monotone counters bumped on the crypto hot paths (hashing,
    signing/verification, exponentiation).  Nothing inside the library
    reads them, so they cannot influence protocol behaviour; the bench
    driver resets and snapshots them around measured runs. *)

val sha256_digests : int ref
val schnorr_signs : int ref
val schnorr_verifies : int ref
val dleq_proves : int ref
val dleq_verifies : int ref

val pow_generic : int ref
(** Group exponentiations via generic square-and-multiply. *)

val pow_fixed_base : int ref
(** Group exponentiations served by a precomputed fixed-base table. *)

val fixed_base_tables : int ref
(** Fixed-base tables built (one-time cost per cached base). *)

val reset : unit -> unit

val snapshot : unit -> (string * int) list
(** Stable, ordered list of counter names and current values. *)
