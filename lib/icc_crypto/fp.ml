(* Modular arithmetic on native ints for odd moduli below 2^61.

   All values are canonical representatives in [0, m).  Since m < 2^61 and
   OCaml's native int has 63 bits, [a + b] for canonical a, b never wraps,
   so addition-based double-and-add multiplication is exact. *)

let max_modulus_bits = 61

let check_modulus m =
  if m < 3 || m land 1 = 0 || m >= 1 lsl max_modulus_bits then
    invalid_arg "Fp.check_modulus: modulus must be odd, in [3, 2^61)"

let reduce a m =
  let r = a mod m in
  if r < 0 then r + m else r

let add a b m =
  let s = a + b in
  if s >= m then s - m else s

let sub a b m =
  let d = a - b in
  if d < 0 then d + m else d

let neg a m = if a = 0 then 0 else m - a

(* Double-and-add product; O(log b) additions, exact for any m < 2^61.
   Kept as the reference implementation (property tests compare the fast
   path against it) and as the fallback for moduli the fast path cannot
   serve. *)
let mul_generic a b m =
  let rec go acc a b =
    if b = 0 then acc
    else
      let acc = if b land 1 = 1 then add acc a m else acc in
      go acc (add a a m) (b lsr 1)
  in
  if a = 0 || b = 0 then 0 else go 0 a b

(* Fast path: 31-bit-split schoolbook multiplication.

   Write a = a1*2^31 + a0 and b = b1*2^31 + b0.  Then

     a*b = (a1*b1)*2^62 + (a1*b0 + a0*b1)*2^31 + a0*b0

   Each partial product fits a 63-bit native int: a1, b1 < 2^30 and
   a0, b0 < 2^31, so a1*b1 < 2^60, a1*b0 + a0*b1 < 2^62, a0*b0 < 2^62.
   The 2^31 factors are folded in with [shift31], which needs
   d61 = 2^61 mod m to be < 2^29 so that (x >> 30) * d61 stays below
   2^61 for any x < 2^62.  Both protocol moduli qualify (d61 is 2373
   for p and 2374 for q); moduli that don't fall back to the generic
   double-and-add. *)
let mask30 = (1 lsl 30) - 1
let mask31 = (1 lsl 31) - 1

let mul_fast a b m d61 =
  (* x * 2^31 mod m, exact for any x < 2^62 given d61 < 2^29:
     x*2^31 = (x >> 30)*2^61 + (x land mask30)*2^31, and both summands
     stay below 2^61 so their sum never wraps. *)
  let shift31 x = (((x lsr 30) * d61) + ((x land mask30) lsl 31)) mod m in
  let a1 = a lsr 31 and a0 = a land mask31 in
  let b1 = b lsr 31 and b0 = b land mask31 in
  let hi = a1 * b1 in
  let mid = (a1 * b0) + (a0 * b1) in
  let lo = (a0 * b0) mod m in
  add (add (shift31 (shift31 hi)) (shift31 mid) m) lo m

(* §3.5 toggle, Atomic so concurrent verify domains read it race-free;
   discipline: flip only while single-domain (snapshot-at-spawn,
   DESIGN.md §3.9). *)
let fast_mul = Atomic.make true
let set_fast_mul on = Atomic.set fast_mul on
let fast_mul_enabled () = Atomic.get fast_mul

let mul a b m =
  if Atomic.get fast_mul then
    let d61 = (1 lsl 61) mod m in
    if d61 < 1 lsl 29 then mul_fast a b m d61 else mul_generic a b m
  else mul_generic a b m
[@@icc.domain_entry]

let pow base e m =
  if e < 0 then invalid_arg "Fp.pow: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc base m else acc in
      go acc (mul base base m) (e lsr 1)
  in
  go 1 (reduce base m) e

(* Extended Euclid; returns x with a*x = gcd(a,m) (mod m). *)
let inv a m =
  let rec go r0 r1 s0 s1 =
    if r1 = 0 then (r0, s0)
    else
      let q = r0 / r1 in
      go r1 (r0 - (q * r1)) s1 (s0 - (q * s1))
  in
  let a = reduce a m in
  if a = 0 then invalid_arg "Fp.inv: zero has no inverse";
  let g, x = go m a 0 1 in
  if g <> 1 then invalid_arg "Fp.inv: element not invertible";
  reduce x m

let divide a b m = mul a (inv b m) m
