(** SHA-256 (FIPS 180-4), pure OCaml.

    Used as the collision-resistant hash function [H] of the ICC protocols
    (paper §2.1). *)

type t = private string
(** A 32-byte digest. *)

val digest_length : int

val digest_bytes : Bytes.t -> t
val digest_string : string -> t

val to_hex : t -> string

val short_hex : t -> string
(** First 12 hex chars of {!to_hex} — the abbreviated digest form carried
    on the simulation trace bus. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val of_raw : string -> t
(** Reinterpret 32 raw bytes as a digest (wire decoding); raises
    [Invalid_argument] on any other length. *)

val to_int61 : t -> int
(** The first 61 bits of the digest as a non-negative int, for deriving
    field elements and deterministic seeds from digests. *)

val pp : Format.formatter -> t -> unit
