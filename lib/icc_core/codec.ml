(* Binary wire codec for {!Message.t}.

   A deterministic, explicit, *compact* format — this is what the
   erasure-coded reliable broadcast of ICC2 fragments and reassembles, so
   decoding must be safe on adversarial bytes: every read is bounds-checked
   and failures surface as [None], never as an exception or unsafe value.

   Layout: integers travel as LEB128 varints of their 64-bit two's
   complement (1 byte for values < 128 — rounds, party ids, counts, share
   signer ids — up to 10 bytes for huge or negative values, which honest
   encoders never produce); strings and lists are preceded by a varint
   length/count; digests are 32 raw bytes; floats are their raw IEEE-754
   bits in 8 fixed little-endian bytes (converting through the 63-bit
   native int would corrupt bit 63 by sign extension); each message starts
   with a one-byte interned variant tag.  Shared-prefix digests are elided:
   a proposal's parent certificate names the same digest as the block's
   parent hash, so a well-formed bundle writes it once (a distinct presence
   marker keeps the rare mismatched bundle encodable verbatim). *)

exception Malformed

(* --- writer ------------------------------------------------------------ *)

let w_byte buf b = Buffer.add_char buf (Char.chr (b land 0xff))

(* Unsigned LEB128 over the two's-complement bits. *)
let w_varint64 buf n =
  let v = ref n in
  let continue = ref true in
  while !continue do
    let low = Int64.to_int (Int64.logand !v 0x7fL) in
    v := Int64.shift_right_logical !v 7;
    if Int64.equal !v 0L then begin
      Buffer.add_char buf (Char.chr low);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (low lor 0x80))
  done

let w_int buf n = w_varint64 buf (Int64.of_int n)

(* Floats travel as raw IEEE-754 bits, fixed width: varint-packing the
   mantissa-heavy bit pattern would usually *grow* it. *)
let w_float buf f =
  let v = ref (Int64.bits_of_float f) in
  for _ = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.logand !v 0xffL)));
    v := Int64.shift_right_logical !v 8
  done

let w_str buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

let w_digest buf (d : Icc_crypto.Sha256.t) =
  Buffer.add_string buf (d :> string)

let w_list buf w l =
  w_int buf (List.length l);
  List.iter (w buf) l

(* --- reader ------------------------------------------------------------ *)

type cursor = { data : string; mutable pos : int }

let need c k = if c.pos + k > String.length c.data then raise Malformed

let r_byte c =
  need c 1;
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let r_varint64 c =
  let v = ref 0L in
  let shift = ref 0 in
  let continue = ref true in
  while !continue do
    if !shift > 63 then raise Malformed;
    let b = r_byte c in
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (b land 0x7f)) !shift);
    if b land 0x80 = 0 then begin
      (* reject non-canonical trailing zero groups ("0x80 0x00"-style
         padding), so every value has exactly one encoding *)
      if b = 0 && !shift > 0 then raise Malformed;
      continue := false
    end
    else shift := !shift + 7
  done;
  !v

let r_int c = Int64.to_int (r_varint64 c)

let r_float c =
  need c 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v :=
      Int64.logor
        (Int64.shift_left !v 8)
        (Int64.of_int (Char.code c.data.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  Int64.float_of_bits !v

let r_str c =
  let len = r_int c in
  if len < 0 then raise Malformed;
  need c len;
  let s = String.sub c.data c.pos len in
  c.pos <- c.pos + len;
  s

let r_digest c =
  need c 32;
  let s = String.sub c.data c.pos 32 in
  c.pos <- c.pos + 32;
  Icc_crypto.Sha256.of_raw s

let r_list c r =
  let count = r_int c in
  if count < 0 || count > 10_000_000 then raise Malformed;
  List.init count (fun _ -> r c)

(* --- domain encoders ---------------------------------------------------- *)

(* The commitment is carried on the simulated wire so receivers can
   batch-verify; the *modeled* wire size stays [signature_wire_size]
   (production verifiers recompute R from (c, s) when checking singly,
   and a batch-friendly encoding replaces c by R at equal size). *)
let w_schnorr buf (s : Icc_crypto.Schnorr.signature) =
  w_int buf s.Icc_crypto.Schnorr.challenge;
  w_int buf s.Icc_crypto.Schnorr.response;
  w_int buf s.Icc_crypto.Schnorr.commitment

let r_schnorr c : Icc_crypto.Schnorr.signature =
  let challenge = r_int c in
  let response = r_int c in
  let commitment = r_int c in
  { challenge; response; commitment }

let w_ms_share buf (s : Icc_crypto.Multisig.share) =
  w_int buf s.Icc_crypto.Multisig.signer;
  w_schnorr buf s.Icc_crypto.Multisig.signature

let r_ms_share c : Icc_crypto.Multisig.share =
  let signer = r_int c in
  let signature = r_schnorr c in
  { signer; signature }

let w_multisig buf (m : Icc_crypto.Multisig.signature) =
  w_list buf w_int m.Icc_crypto.Multisig.signers;
  w_list buf w_schnorr m.Icc_crypto.Multisig.signatures

let r_multisig c : Icc_crypto.Multisig.signature =
  let signers = r_list c r_int in
  let signatures = r_list c r_schnorr in
  { signers; signatures }

(* A certificate, with its digest optionally elided when the container
   already carries it (the proposal parent-certificate case). *)
let w_cert_body buf ~with_digest (cert : Types.cert) =
  w_int buf cert.Types.c_round;
  w_int buf cert.Types.c_proposer;
  if with_digest then w_digest buf cert.Types.c_block_hash;
  w_multisig buf cert.Types.c_multisig

let r_cert_body c ~digest : Types.cert =
  let c_round = r_int c in
  let c_proposer = r_int c in
  let c_block_hash = match digest with Some d -> d | None -> r_digest c in
  let c_multisig = r_multisig c in
  { c_round; c_proposer; c_block_hash; c_multisig }

let w_cert buf cert = w_cert_body buf ~with_digest:true cert
let r_cert c = r_cert_body c ~digest:None

let w_share_msg buf (s : Types.share_msg) =
  w_int buf s.Types.s_round;
  w_int buf s.Types.s_proposer;
  w_digest buf s.Types.s_block_hash;
  w_ms_share buf s.Types.s_share

let r_share_msg c : Types.share_msg =
  let s_round = r_int c in
  let s_proposer = r_int c in
  let s_block_hash = r_digest c in
  let s_share = r_ms_share c in
  { s_round; s_proposer; s_block_hash; s_share }

let w_command buf (cmd : Types.command) =
  w_int buf cmd.Types.cmd_id;
  w_int buf cmd.Types.cmd_size;
  w_float buf cmd.Types.submitted_at;
  w_str buf cmd.Types.tag

let r_command c : Types.command =
  let cmd_id = r_int c in
  let cmd_size = r_int c in
  let submitted_at = r_float c in
  let tag = r_str c in
  { cmd_id; cmd_size; submitted_at; tag }

let w_block buf (b : Block.t) =
  w_int buf b.Block.round;
  w_int buf b.Block.proposer;
  w_digest buf b.Block.parent_hash;
  w_int buf b.Block.payload.Types.filler_size;
  w_list buf w_command b.Block.payload.Types.commands

let r_block c : Block.t =
  let round = r_int c in
  let proposer = r_int c in
  let parent_hash = r_digest c in
  let filler_size = r_int c in
  let commands = r_list c r_command in
  if round < 1 then raise Malformed;
  Block.create ~round ~proposer ~parent_hash
    ~payload:{ Types.commands; filler_size }

let w_vuf_share buf (s : Icc_crypto.Threshold_vuf.signature_share) =
  w_int buf s.Icc_crypto.Threshold_vuf.signer;
  w_int buf s.Icc_crypto.Threshold_vuf.value;
  w_int buf s.Icc_crypto.Threshold_vuf.proof.Icc_crypto.Dleq.challenge;
  w_int buf s.Icc_crypto.Threshold_vuf.proof.Icc_crypto.Dleq.response;
  (* Commitments carried for batch verification, as with [w_schnorr];
     modeled share size is unchanged. *)
  w_int buf s.Icc_crypto.Threshold_vuf.proof.Icc_crypto.Dleq.commit1;
  w_int buf s.Icc_crypto.Threshold_vuf.proof.Icc_crypto.Dleq.commit2

let r_vuf_share c : Icc_crypto.Threshold_vuf.signature_share =
  let signer = r_int c in
  let value = r_int c in
  let challenge = r_int c in
  let response = r_int c in
  let commit1 = r_int c in
  let commit2 = r_int c in
  { signer; value; proof = { challenge; response; commit1; commit2 } }

(* --- top level ----------------------------------------------------------- *)

let tag_proposal = 1
let tag_notar_share = 2
let tag_notarization = 3
let tag_final_share = 4
let tag_finalization = 5
let tag_beacon_share = 6
let tag_pool_summary = 7
let tag_pool_request = 8

(* Parent-certificate presence markers inside a proposal. *)
let parent_none = 0
let parent_full = 1 (* digest differs from the block's parent hash *)
let parent_elided = 2 (* digest = block.parent_hash, written once *)

let encode (msg : Message.t) : string =
  Icc_obs.Profile.span "codec.encode" @@ fun () ->
  let buf = Buffer.create 256 in
  (match msg with
  | Message.Proposal p ->
      w_byte buf tag_proposal;
      w_block buf p.Message.p_block;
      w_schnorr buf p.Message.p_authenticator;
      (match p.Message.p_parent_cert with
      | None -> w_byte buf parent_none
      | Some cert ->
          if
            Icc_crypto.Sha256.equal cert.Types.c_block_hash
              p.Message.p_block.Block.parent_hash
          then begin
            (* the well-formed case: parent digest is a shared prefix *)
            w_byte buf parent_elided;
            w_cert_body buf ~with_digest:false cert
          end
          else begin
            w_byte buf parent_full;
            w_cert_body buf ~with_digest:true cert
          end)
  | Message.Notarization_share s ->
      w_byte buf tag_notar_share;
      w_share_msg buf s
  | Message.Notarization cert ->
      w_byte buf tag_notarization;
      w_cert buf cert
  | Message.Finalization_share s ->
      w_byte buf tag_final_share;
      w_share_msg buf s
  | Message.Finalization cert ->
      w_byte buf tag_finalization;
      w_cert buf cert
  | Message.Beacon_share { b_round; b_signer; b_share } ->
      w_byte buf tag_beacon_share;
      w_int buf b_round;
      w_int buf b_signer;
      w_vuf_share buf b_share
  | Message.Pool_summary { ps_party; ps_round; ps_kmax } ->
      w_byte buf tag_pool_summary;
      w_int buf ps_party;
      w_int buf ps_round;
      w_int buf ps_kmax
  | Message.Pool_request { pr_party; pr_from; pr_upto } ->
      w_byte buf tag_pool_request;
      w_int buf pr_party;
      w_int buf pr_from;
      w_int buf pr_upto);
  Buffer.contents buf

let decode (data : string) : Message.t option =
  Icc_obs.Profile.span "codec.decode" @@ fun () ->
  let c = { data; pos = 0 } in
  match
    let tag = r_byte c in
    let msg =
      if tag = tag_proposal then begin
        let p_block = r_block c in
        let p_authenticator = r_schnorr c in
        let marker = r_byte c in
        let p_parent_cert =
          if marker = parent_none then None
          else if marker = parent_full then Some (r_cert_body c ~digest:None)
          else if marker = parent_elided then
            Some (r_cert_body c ~digest:(Some p_block.Block.parent_hash))
          else raise Malformed
        in
        (* canonical form: an encoder must elide a matching digest *)
        (match p_parent_cert with
        | Some cert
          when marker = parent_full
               && Icc_crypto.Sha256.equal cert.Types.c_block_hash
                    p_block.Block.parent_hash ->
            raise Malformed
        | _ -> ());
        Message.Proposal { p_block; p_authenticator; p_parent_cert }
      end
      else if tag = tag_notar_share then Message.Notarization_share (r_share_msg c)
      else if tag = tag_notarization then Message.Notarization (r_cert c)
      else if tag = tag_final_share then Message.Finalization_share (r_share_msg c)
      else if tag = tag_finalization then Message.Finalization (r_cert c)
      else if tag = tag_beacon_share then begin
        let b_round = r_int c in
        let b_signer = r_int c in
        let b_share = r_vuf_share c in
        Message.Beacon_share { b_round; b_signer; b_share }
      end
      else if tag = tag_pool_summary then begin
        let ps_party = r_int c in
        let ps_round = r_int c in
        let ps_kmax = r_int c in
        Message.Pool_summary { ps_party; ps_round; ps_kmax }
      end
      else if tag = tag_pool_request then begin
        let pr_party = r_int c in
        let pr_from = r_int c in
        let pr_upto = r_int c in
        Message.Pool_request { pr_party; pr_from; pr_upto }
      end
      else raise Malformed
    in
    if c.pos <> String.length data then raise Malformed;
    msg
  with
  | msg -> Some msg
  | exception Malformed -> None
  | exception Invalid_argument _ -> None
