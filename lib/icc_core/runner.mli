(** Scenario runner for Protocol ICC0 (and, via pluggable transports, ICC1
    and ICC2): builds keys, network, workload and parties, runs the
    discrete-event simulation, and evaluates the global correctness
    oracles. *)

type delay_spec =
  | Fixed_delay of float
  | Uniform_delay of float * float
  | Wan of { rtt_lo : float; rtt_hi : float }
      (** Per-pair one-way delays from RTT ~ U[lo, hi] — the paper's
          observed 6–110 ms inter-datacenter range. *)

(** {1 Transports}

    The dissemination layer under the protocol.  [None] in a scenario means
    ICC0's direct broadcast; {!Icc_gossip.Icc1} and {!Icc_rbc.Icc2} supply
    their sub-layers through this hook. *)

type transport_ctx = {
  tr_engine : Icc_sim.Engine.t;
  tr_trace : Icc_sim.Trace.t;
      (** The run's trace bus; the transport's network must emit on it so
          the run's metrics see the traffic. *)
  tr_n : int;
  tr_t : int;
  tr_rng : Icc_sim.Rng.t;
  tr_delay_model : Icc_sim.Network.delay_model;
  tr_async_until : float;
  tr_fault : Icc_sim.Fault.t option;
      (** The scenario's nemesis, when present; a transport must install it
          on every {!Icc_sim.Network} it creates so link faults apply
          uniformly to direct, gossip and RBC traffic. *)
  tr_adversary : Icc_sim.Adversary.t option;
      (** The scenario's Byzantine adversary, when present; a transport must
          install it on every {!Icc_sim.Network} it creates so censorship,
          straggling and stealthy delays apply to all its traffic. *)
  tr_is_active : int -> bool;  (** False once a party has crashed. *)
  tr_deliver : dst:int -> Message.t -> unit;
  tr_system : Icc_crypto.Keygen.system;
  tr_keys : Icc_crypto.Keygen.party_keys array;
      (** A transport sub-layer conceptually runs inside each party's
          process and may use that party's keys. *)
}

type transport_impl = {
  tx_broadcast : src:int -> Message.t -> unit;
  tx_unicast : src:int -> dst:int -> Message.t -> unit;
}

type transport = transport_ctx -> transport_impl

val direct_transport : transport
(** ICC0: one broadcast network at modeled wire sizes. *)

(** {1 Scenarios} *)

type workload =
  | No_load  (** Management filler only (Table 1 scenario 1). *)
  | Load of { rate_per_s : float; cmd_size : int }
      (** Client commands (Table 1 scenario 2). *)
  | Fixed_block_size of int  (** Leader-bottleneck experiments. *)
  | Tagged_load of {
      rate_per_s : float;
      cmd_size : int;
      make_tag : int -> string;
    }  (** Commands carrying application data (the SMR layer). *)

type scenario = {
  n : int;
  t_corrupt : int;
  seed : int;
  delta_bnd : float;
  epsilon : float;
  delay : delay_spec;
  behaviors : (int * Party.behavior) list;  (** Unlisted parties are honest. *)
  kill_at : (int * float) list;  (** Crash a party mid-run. *)
  duration : float;  (** Simulated seconds. *)
  max_rounds : int option;  (** Stop once some party commits this round. *)
  workload : workload;
  non_responsive : bool;  (** Use the Tendermint-style delay functions. *)
  async_until : float;  (** Adversarial asynchrony at the start of the run. *)
  transport : transport option;
  adaptive : bool;  (** Adaptive delay-bound estimation (paper §1). *)
  prune_depth : int option;  (** Pool garbage collection below kmax. *)
  trace : Icc_sim.Trace.t option;
      (** Observe the run on an external trace bus (e.g. the [--trace]
          JSONL dump); [None] runs on a private bus feeding only metrics. *)
  monitor : Icc_sim.Monitor.config option;
      (** Attach the online invariant monitor to the run's bus.  With
          [abort_on_violation] set, the run raises {!Icc_sim.Monitor.Abort}
          at the first fatal violation instead of returning a bad result. *)
  nemesis : Icc_sim.Fault.script option;
      (** Deterministic fault injection: link loss / duplication /
          reordering / flaps, healing partitions, and timed crash–recover
          directives.  Parties the script crashes without recovering are
          treated like [kill_at] (excluded from the honest set);
          crash–recover cycles keep the party honest — it must rejoin and
          commit everything. *)
  adversary : Icc_sim.Adversary.script option;
      (** Byzantine strategy script ({!Icc_sim.Adversary}): equivocation,
          share withholding, censorship, stealthy-leader delays, crash
          windows, straggling, and adaptive corruption.  Statically
          targeted parties are excluded from the honest set upfront;
          adaptively corrupted ones are subtracted after the run.  [None]
          (or [Some []]) runs fully honest with the adversary layer
          inactive — and the RNG streams untouched, so traces are
          byte-identical to pre-adversary builds. *)
  resync : Config.resync option;
      (** Override the pool-resync parameters.  [None] means: off without a
          nemesis, {!Config.default_resync} with one. *)
}

val default_scenario : n:int -> seed:int -> scenario

val behavior_of : scenario -> int -> Party.behavior

type result = {
  metrics : Icc_sim.Metrics.t;
  monitor : Icc_sim.Monitor.t option;
      (** The attached monitor, for its online verdict and stall log. *)
  duration : float;  (** Simulated time actually elapsed. *)
  outputs : (int * Block.t list) list;
      (** Honest parties' committed chains. *)
  safety_ok : bool;  (** [prefix_ok && p2_ok]. *)
  prefix_ok : bool;  (** Committed chains pairwise prefix-consistent (§1). *)
  p2_ok : bool;  (** No conflicting notarization next to a finalization. *)
  p1_ok : bool;  (** Deadlock freeness up to the slowest honest party. *)
  rounds_decided : int;  (** Highest round committed by every honest party. *)
  directly_finalized : int list;
      (** Rounds holding a finalization certificate in some honest pool —
          decided in the round itself rather than by a descendant. *)
  blocks_per_s : float;
  mean_latency : float;  (** Propose → all-honest-commit. *)
  honest : int list;
  commands_committed : int;
  mean_command_latency : float;
}

val run : scenario -> result
