(* A party's view of the random beacon chain (paper §2.3, §3.2, §3.3).

   R_0 is a fixed genesis value; R_k is the unique threshold signature
   (under S_beacon) on a text binding k and R_{k-1}.  Once R_k is known it
   seeds a pseudo-random permutation of the parties: rank 0 is the round-k
   leader.  Because signatures are unique, every party derives the same
   permutation. *)

type t = {
  system : Icc_crypto.Keygen.system;
  my_key : Icc_crypto.Threshold_vuf.secret_share;
  sigmas : (Types.round, string) Hashtbl.t; (* round -> representation of R_k *)
  randomness : (Types.round, Icc_crypto.Sha256.t) Hashtbl.t;
  permutations : (Types.round, int array) Hashtbl.t; (* rank -> party id *)
}

let create system my_key =
  let t =
    {
      system;
      my_key;
      sigmas = Hashtbl.create 64;
      randomness = Hashtbl.create 64;
      permutations = Hashtbl.create 64;
    }
  in
  Hashtbl.replace t.sigmas 0 Types.beacon_genesis;
  t

let known t round = Hashtbl.mem t.sigmas round

let message_for_round t round =
  if round < 1 then invalid_arg "Beacon.message_for_round: rounds start at 1";
  Option.map
    (fun prev_sigma -> Types.beacon_text ~round ~prev_sigma)
    (Hashtbl.find_opt t.sigmas (round - 1))

let my_share t round =
  Option.map
    (fun msg ->
      Icc_crypto.Threshold_vuf.sign_share t.system.Icc_crypto.Keygen.beacon
        t.my_key msg)
    (message_for_round t round)

let permutation_of_randomness ~n rand =
  let arr = Array.init n (fun i -> i + 1) in
  let rng = Icc_sim.Rng.of_string_seed (rand : Icc_crypto.Sha256.t :> string) in
  Icc_sim.Rng.shuffle_in_place rng arr;
  arr

(* The share verifier for a round, available once R_{round-1} is known.
   Returns [None] for rounds below 1 (a Byzantine peer controls the wire
   round number) and while the previous beacon is unknown. *)
let share_verifier t round =
  if round < 1 then None
  else
    Option.map
      (fun msg share ->
        Icc_crypto.Threshold_vuf.verify_share t.system.Icc_crypto.Keygen.beacon
          msg share)
      (message_for_round t round)

(* Attempt to compute R_round from the pool's shares.  Each share is
   verified at most once (the pool marks survivors and evicts garbage, so
   a spoofed signer slot frees up for the genuine retransmission), and the
   combine step skips re-verification.  [combine_preverified] applies the
   same signer-dedup/selection rule as [combine] did over the unverified
   multiset, so the resulting sigma — and every trace byte derived from
   it — is unchanged. *)
let try_compute t pool round =
  if known t round then true
  else
    match message_for_round t round with
    | None -> false
    | Some msg -> (
        let params = t.system.Icc_crypto.Keygen.beacon in
        let shares =
          Pool.verified_beacon_shares
            ~verify_batch:(Icc_crypto.Threshold_vuf.verify_shares params msg)
            pool ~round
            ~verify:(Icc_crypto.Threshold_vuf.verify_share params msg)
        in
        if
          List.length shares
          < t.system.Icc_crypto.Keygen.t + 1
        then false
        else
          match Icc_crypto.Threshold_vuf.combine_preverified params shares with
          | None -> false
          | Some sig_ ->
              let rand = Icc_crypto.Threshold_vuf.randomness msg sig_ in
              Hashtbl.replace t.sigmas round
                (string_of_int sig_.Icc_crypto.Threshold_vuf.sigma);
              Hashtbl.replace t.randomness round rand;
              Hashtbl.replace t.permutations round
                (permutation_of_randomness ~n:t.system.Icc_crypto.Keygen.n rand);
              true)

let permutation t round = Hashtbl.find_opt t.permutations round

let rank_of t round party =
  match permutation t round with
  | None -> None
  | Some arr ->
      let rec find i = if arr.(i) = party then i else find (i + 1) in
      Some (find 0)

let leader t round =
  match permutation t round with None -> None | Some arr -> Some arr.(0)
