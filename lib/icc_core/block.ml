(* Blocks and the special root (paper §3.4).

   A round-k block is (block, k, alpha, phash, payload); its hash commits to
   all four fields.  The root is its own notarization and finalization.

   The hash is memoized: [create] computes the digest once and carries it in
   the record, so the ~15 [hash] call sites on the party/pool hot path cost
   a field read instead of an encode + SHA-256.  [set_memoization false]
   restores the recompute-every-call behaviour so the benchmark harness can
   measure the difference. *)

type t = {
  round : Types.round;
  proposer : Types.party_id;
  parent_hash : Icc_crypto.Sha256.t;
  payload : Types.payload;
  digest : Icc_crypto.Sha256.t;
}

let root_hash = Icc_crypto.Sha256.digest_string "icc-root"

let compute_digest ~round ~proposer ~parent_hash ~payload =
  Icc_crypto.Sha256.digest_string
    (Printf.sprintf "block|%d|%d|%s|%s" round proposer
       (Icc_crypto.Sha256.to_hex parent_hash)
       (Icc_crypto.Sha256.to_hex (Types.payload_digest payload)))

(* Â§3.5 toggle, Atomic so a parallel verify pool hashing blocks reads it
   race-free; flip only while single-domain (DESIGN.md Â§3.9). *)
let memoize = Atomic.make true
let set_memoization on = Atomic.set memoize on
let memoization_enabled () = Atomic.get memoize

let hash (b : t) =
  if Atomic.get memoize then b.digest
  else
    compute_digest ~round:b.round ~proposer:b.proposer
      ~parent_hash:b.parent_hash ~payload:b.payload

let create ~round ~proposer ~parent_hash ~payload =
  if round < 1 then invalid_arg "Block.create: rounds start at 1";
  {
    round;
    proposer;
    parent_hash;
    payload;
    digest = compute_digest ~round ~proposer ~parent_hash ~payload;
  }

let is_child_of_root (b : t) =
  b.round = 1 && Icc_crypto.Sha256.equal b.parent_hash root_hash

(* Modeled wire size: fixed header (round, proposer, parent hash, framing)
   plus declared payload bytes. *)
let header_wire_size = 64
let wire_size (b : t) = header_wire_size + Types.payload_size b.payload

let pp fmt (b : t) =
  Format.fprintf fmt "B(k=%d p=%d h=%s)" b.round b.proposer
    (String.sub (Icc_crypto.Sha256.to_hex (hash b)) 0 8)
