(** Wire messages of ICC0/ICC1 and their modeled sizes.

    A {!Proposal} bundles block + authenticator + parent notarization —
    exactly what Fig. 1 broadcasts when proposing or echoing.  Sizes are
    modeled at production scale (48-byte signatures, 32-byte hashes),
    independent of the in-memory representation. *)

type proposal = {
  p_block : Block.t;
  p_authenticator : Icc_crypto.Schnorr.signature;
  p_parent_cert : Types.cert option;  (** [None] iff round 1 (root parent). *)
}

type t =
  | Proposal of proposal
  | Notarization_share of Types.share_msg
  | Notarization of Types.cert
  | Finalization_share of Types.share_msg
  | Finalization of Types.cert
  | Beacon_share of {
      b_round : Types.round;
      b_signer : Types.party_id;
      b_share : Icc_crypto.Threshold_vuf.signature_share;
    }
  | Pool_summary of {
      ps_party : Types.party_id;
      ps_round : Types.round;
      ps_kmax : Types.round;
    }
      (** Resync sub-layer: a party's periodic frontier announcement
          (current round and finalization cursor), unicast to one rotating
          peer.  Unsigned — it only triggers retransmission of messages
          that are themselves verified on admission. *)
  | Pool_request of {
      pr_party : Types.party_id;
      pr_from : Types.round;
      pr_upto : Types.round;
    }
      (** Resync sub-layer: an explicit pull for the artifacts of rounds
          [\[pr_from, pr_upto\]], sent to a peer whose summary announced a
          higher frontier. *)

val share_msg_wire_size : int
val cert_wire_size : n:int -> int
val beacon_share_wire_size : int
val resync_wire_size : int

val wire_size : n:int -> t -> int
(** Modeled size in bytes for traffic accounting. *)

val kind : t -> string
(** Short label for per-kind metrics. *)

val is_resync : t -> bool
(** Resync control messages bypass gossip flooding and RBC dissemination:
    they are point-to-point and intentionally repeatable, so they must not
    enter any artifact dedup table. *)
