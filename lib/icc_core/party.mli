(** One ICC0 party: the Tree-Building Subprotocol (Fig. 1) and the
    Finalization Subprotocol (Fig. 2), translated from the paper's blocking
    "wait for" pseudocode into an event-driven state machine.

    The wait-for alternatives (a)/(b)/(c) become guards re-evaluated (to a
    fixpoint) on every pool change and delay-function timer edge.  All
    guards are monotone — rounds only advance, the sets N and D and the
    finalization cursor kmax only grow — so the fixpoint terminates.

    Byzantine behaviours are driven by the run's {!Icc_sim.Adversary}
    script: corrupt parties hold real keys and emit really-signed messages,
    and the adversary instance decides — per round, deterministically —
    whether this party equivocates, withholds shares, or sits inside a
    crash window. *)

(** Non-Byzantine deviations from the honest protocol.  (Byzantine
    strategies — equivocation, share withholding, censorship, delays,
    crash windows, straggling — live in {!Icc_sim.Adversary} scripts,
    wired through [env.adversary].) *)
type behavior = {
  crashed : bool;  (** Sends and processes nothing. *)
  never_propose : bool;  (** Consistent failure: participates, never proposes. *)
}

val honest : behavior
val crashed : behavior
val lazy_participant : behavior

(** Shared immutable context; the send functions abstract the transport
    (direct broadcast for ICC0, gossip for ICC1, erasure-coded reliable
    broadcast for ICC2). *)
type env = {
  config : Config.t;
  system : Icc_crypto.Keygen.system;
  engine : Icc_sim.Engine.t;
  send_broadcast : src:int -> Message.t -> unit;
  send_unicast : src:int -> dst:int -> Message.t -> unit;
  trace : Icc_sim.Trace.t;
      (** Protocol milestones (round entry, proposal, notarization,
          finalization, beacon shares) are announced here; the run's
          metrics consume them as a subscriber. *)
  get_payload :
    pool:Pool.t -> parent:Block.t option -> round:int -> proposer:int ->
    Types.payload;
  on_output : party:int -> Block.t -> unit;
      (** Called once per committed block, in order, as Fig. 2 outputs it. *)
  adversary : Icc_sim.Adversary.t option;
      (** Byzantine strategy driver; [None] means every party follows the
          honest code path (modulo [behavior]'s crash/never-propose). *)
}

type t

val create :
  env -> id:Types.party_id -> keys:Icc_crypto.Keygen.party_keys ->
  behavior:behavior -> t

val start : t -> unit
(** Broadcast the round-1 beacon share and begin evaluating guards. *)

val on_message : t -> Message.t -> unit
(** Deliver one message into the party's pool and re-run the guards.
    Idempotent under duplicate delivery: every pool admission deduplicates,
    so replaying a message changes nothing and triggers no re-send. *)

val recover : t -> unit
(** Crash–recovery: clear the crashed flag, restart the round clock (stale
    delay edges are measured from the recovery instant), re-release our
    beacon shares, announce our frontier so peers retransmit the gap (when
    [config.resync] is enabled), and re-run the guards.  The pool models
    persistent storage and survives the crash.  No-op if not crashed. *)

val wake : t -> unit
(** Crash-window wake-up: same rehydration as {!recover} without touching
    the behavior flag.  The runner schedules this at the end of each
    adversary crash window ({!Icc_sim.Adversary.static_crash_wakes});
    no-op while the party is still halted. *)

(** {1 Inspection} *)

val output_chain : t -> Block.t list
(** Committed blocks in commit order. *)

val pool : t -> Pool.t
val behavior : t -> behavior
val set_behavior : t -> behavior -> unit
val rounds_finished : t -> int
val current_round : t -> Types.round
val kmax : t -> Types.round
