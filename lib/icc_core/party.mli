(** One ICC0 party: the Tree-Building Subprotocol (Fig. 1) and the
    Finalization Subprotocol (Fig. 2), translated from the paper's blocking
    "wait for" pseudocode into an event-driven state machine.

    The wait-for alternatives (a)/(b)/(c) become guards re-evaluated (to a
    fixpoint) on every pool change and delay-function timer edge.  All
    guards are monotone — rounds only advance, the sets N and D and the
    finalization cursor kmax only grow — so the fixpoint terminates.

    Byzantine behaviours are composable deviations from the honest code
    path; corrupt parties hold real keys and emit really-signed messages. *)

(** Deviations from the honest protocol. *)
type behavior = {
  crashed : bool;  (** Sends and processes nothing. *)
  equivocate : bool;  (** Proposes two conflicting blocks, split delivery. *)
  promiscuous_shares : bool;
      (** Notarization-shares every valid block immediately. *)
  promiscuous_final : bool;  (** Finalization-shares every block it shared. *)
  silent_shares : bool;  (** Withholds all notarization/finalization shares. *)
  never_propose : bool;  (** Consistent failure: participates, never proposes. *)
}

val honest : behavior
val crashed : behavior

val byzantine_equivocator : behavior
(** Noisy equivocator: also shares everything — the strongest safety attack
    (tries to notarize and finalize conflicting blocks). *)

val stealthy_equivocator : behavior
(** Equivocates and withholds its own shares, splitting the honest quorum —
    the strongest liveness attack: rounds it leads decide only later. *)

val lazy_participant : behavior

(** Shared immutable context; the send functions abstract the transport
    (direct broadcast for ICC0, gossip for ICC1, erasure-coded reliable
    broadcast for ICC2). *)
type env = {
  config : Config.t;
  system : Icc_crypto.Keygen.system;
  engine : Icc_sim.Engine.t;
  send_broadcast : src:int -> Message.t -> unit;
  send_unicast : src:int -> dst:int -> Message.t -> unit;
  trace : Icc_sim.Trace.t;
      (** Protocol milestones (round entry, proposal, notarization,
          finalization, beacon shares) are announced here; the run's
          metrics consume them as a subscriber. *)
  get_payload :
    pool:Pool.t -> parent:Block.t option -> round:int -> proposer:int ->
    Types.payload;
  on_output : party:int -> Block.t -> unit;
      (** Called once per committed block, in order, as Fig. 2 outputs it. *)
}

type t

val create :
  env -> id:Types.party_id -> keys:Icc_crypto.Keygen.party_keys ->
  behavior:behavior -> t

val start : t -> unit
(** Broadcast the round-1 beacon share and begin evaluating guards. *)

val on_message : t -> Message.t -> unit
(** Deliver one message into the party's pool and re-run the guards.
    Idempotent under duplicate delivery: every pool admission deduplicates,
    so replaying a message changes nothing and triggers no re-send. *)

val recover : t -> unit
(** Crash–recovery: clear the crashed flag, restart the round clock (stale
    delay edges are measured from the recovery instant), re-release our
    beacon shares, announce our frontier so peers retransmit the gap (when
    [config.resync] is enabled), and re-run the guards.  The pool models
    persistent storage and survives the crash.  No-op if not crashed. *)

(** {1 Inspection} *)

val output_chain : t -> Block.t list
(** Committed blocks in commit order. *)

val pool : t -> Pool.t
val behavior : t -> behavior
val set_behavior : t -> behavior -> unit
val rounds_finished : t -> int
val current_round : t -> Types.round
val kmax : t -> Types.round
