(** Protocol parameters, including the delay functions of Fig. 1.

    The recommended instantiation (paper eq. (2)) is
    [delta_prop r = 2 * delta_bnd * r] and
    [delta_ntry r = 2 * delta_bnd * r + epsilon]; it satisfies the
    liveness requirement [2*delta + delta_prop 0 <= delta_ntry 1] whenever
    the actual network delay is at most [delta_bnd]. *)

(** Parameters of the pool-resync retransmission sub-layer: each party
    unicasts a {!Message.Pool_summary} to one rotating peer every
    [rs_period] seconds; the interval doubles up to [rs_backoff_cap] while
    its round makes no progress and resets on progress.  Replies retransmit
    at most [rs_chunk] rounds of artifacts. *)
type resync = {
  rs_period : float;
  rs_backoff_cap : float;
  rs_chunk : int;
}

val default_resync :
  ?period:float -> ?backoff_cap:float -> ?chunk:int -> unit -> resync
(** Defaults: period 0.5 s, cap 4 s, chunk 4 rounds.  Raises
    [Invalid_argument] unless [0 < period <= backoff_cap] and
    [chunk >= 1]. *)

type t = {
  n : int;
  t : int;  (** Maximum corrupt parties; [3t < n]. *)
  delta_bnd : float;  (** Partial-synchrony delay bound, seconds. *)
  epsilon : float;  (** The governor that paces the protocol. *)
  delta_prop : Types.rank -> float;  (** Proposal delay by own rank. *)
  delta_ntry : Types.rank -> float;  (** Notarization-share delay by rank. *)
  adaptive : bool;
      (** Adapt the delay bound to an unknown network delay (paper §1):
          parties scale [delta_bnd] up when a round's leader path failed
          and slowly back down otherwise.  Rank-0 behaviour — and hence
          the happy path — is unaffected. *)
  prune_depth : int option;
      (** Keep only this many rounds of pool state below the finalization
          cursor (paper §3.1's discard optimisation); [None] keeps all. *)
  resync : resync option;
      (** Enable the pool-resync retransmission sub-layer; required for
          liveness under lossy links and for crash–recovery rejoin. *)
}

val recommended :
  ?delta_bnd:float -> ?epsilon:float -> ?adaptive:bool -> ?prune_depth:int ->
  ?resync:resync -> n:int -> t:int -> unit -> t
(** The paper's recommended delay functions.  Raises [Invalid_argument]
    unless [3t < n]. *)

val non_responsive : ?delta_bnd:float -> n:int -> t:int -> unit -> t
(** A deliberately non-responsive (Tendermint-style) variant that waits the
    full [delta_bnd] before notarizing even the leader's block; used as the
    contrast in the optimistic-responsiveness experiment. *)

val quorum : t -> int
(** [n - t], the notarization and finalization quorum. *)

val liveness_requirement_holds : t -> delta:float -> bool
(** Whether [2*delta + delta_prop 0 <= delta_ntry 1] (paper §3.5). *)
