(** A party's message pool (paper §3.1, §3.4): all received messages,
    indexed for incremental evaluation of the block-classification
    predicates {e authentic}, {e valid}, {e notarized}, {e finalized}.

    Every signature is verified on admission; messages failing verification
    are dropped.  Classification is monotone and maintained by a promotion
    cascade (a block becomes valid when authentic with a notarized parent;
    promoting a block re-examines its children). *)

type key = Types.round * Icc_crypto.Sha256.t

type t

val create : ?payload_valid:(Block.t -> bool) -> Icc_crypto.Keygen.system -> t
(** [payload_valid] is the application-specific validity hook (default
    accepts everything). *)

(** {1 Admission} — each returns [true] when the pool gained information. *)

val add_block : t -> Block.t -> bool

val add_authenticator :
  t -> round:Types.round -> proposer:Types.party_id ->
  block_hash:Icc_crypto.Sha256.t -> Icc_crypto.Schnorr.signature -> bool

val add_notarization : t -> Types.cert -> bool
val add_finalization : t -> Types.cert -> bool
val add_notarization_share : t -> Types.share_msg -> bool
val add_finalization_share : t -> Types.share_msg -> bool

val add_beacon_share :
  t ->
  round:Types.round ->
  ?verify:(Icc_crypto.Threshold_vuf.signature_share -> bool) ->
  Icc_crypto.Threshold_vuf.signature_share ->
  bool
(** Beacon shares become verifiable only once the previous beacon value is
    known; pass [?verify] when one is available.  With a verifier, invalid
    shares are rejected at admission and an unverified spoofed occupant of
    a signer slot is evicted in favour of a verifying newcomer (the
    beacon-share spoofing fix).  Without one, shares are admitted
    unverified and deduplicated by signer; {!verified_beacon_shares}
    (called by [Beacon.try_compute]) later evicts any that fail. *)

val verified_beacon_shares :
  ?verify_batch:
    (Icc_crypto.Threshold_vuf.signature_share list -> bool list) ->
  t ->
  round:Types.round ->
  verify:(Icc_crypto.Threshold_vuf.signature_share -> bool) ->
  Icc_crypto.Threshold_vuf.signature_share list
(** The round's shares that pass [verify], marking them so each share is
    verified at most once; shares that fail are evicted so their signer
    slot can be re-filled by a genuine retransmission.  When
    [?verify_batch] is given (per-share verdicts in input order, e.g.
    {!Icc_crypto.Threshold_vuf.verify_shares}) all unverified occupants
    are settled through one batch call instead of per-share [verify]
    calls; verdict equivalence keeps the result — and the marking and
    eviction side effects — identical. *)

(** {1 Classification queries} *)

val find_block : t -> key -> Block.t option
val is_authentic : t -> key -> bool
val authenticator : t -> key -> Icc_crypto.Schnorr.signature option
val is_valid : t -> key -> bool

val is_notarized : t -> key -> bool
(** The root [(0, root_hash)] is always notarized. *)

val is_finalized : t -> key -> bool

val blocks_of_round : t -> Types.round -> Block.t list
val valid_blocks : t -> Types.round -> Block.t list
val notarized_blocks : t -> Types.round -> Block.t list

val notarization_cert : t -> key -> Types.cert option
val finalization_cert : t -> key -> Types.cert option
val notar_share_count : t -> key -> int
val notar_shares : t -> key -> Icc_crypto.Multisig.share list
val final_share_count : t -> key -> int
val final_shares : t -> key -> Icc_crypto.Multisig.share list
val beacon_shares : t -> Types.round -> Icc_crypto.Threshold_vuf.signature_share list
val max_round : t -> Types.round
val quorum : t -> int

(** {1 Resync retransmission} *)

val retransmit_set : t -> round:Types.round -> Message.t list
(** Everything this pool can re-send for [round], as the original wire
    messages, so a lagging peer admits them through the ordinary verified
    path: up to two proposal bundles (authenticator + parent certificate),
    notarization / finalization certificates, shares where no certificate
    subsumes them (and the block — hence the proposer the share text needs
    — is held), and the round's beacon shares. *)

val beacon_share_msgs : t -> round:Types.round -> Message.t list
(** Just the round's beacon shares, as wire messages; used to retransmit
    the pipelined shares of the round after a resync window. *)

(** {1 Garbage collection} *)

val stored_blocks : t -> int

val table_sizes : t -> (string * int) list
(** Entry counts of every internal table, for storage-leak regression
    tests. *)

val prune : t -> below:Types.round -> unit
(** Discard all per-round state for rounds below [below] (paper §3.1's
    message-discarding optimisation / PBFT-style checkpointing).  Only call
    with [below <= kmax]: every discarded round must already be finalized.
    Every table is swept, including entries whose block never arrived, and
    subsequent admissions below the horizon are rejected. *)

(** {1 Protocol-step queries} *)

(** A way to finish a round (Fig. 1 alternative (a)). *)
type completion =
  | Already_notarized of Block.t * Types.cert
  | Combinable of Block.t * Icc_crypto.Multisig.share list
      (** A valid, non-notarized block holding a full share set. *)

val round_completion : t -> Types.round -> completion option

(** A way to advance the finalization subprotocol (Fig. 2). *)
type finalization_step =
  | Final_cert of Block.t * Types.cert
  | Final_combinable of Block.t * Icc_crypto.Multisig.share list

val finalization_step : t -> kmax:Types.round -> finalization_step option
(** The smallest finishable round above [kmax]. *)

(** {1 Benchmark toggles} *)

val set_caching : bool -> unit
(** Toggle the per-round epoch caches behind {!valid_blocks},
    {!notarized_blocks}, {!round_completion} and {!finalization_step} (on
    by default).  Only affects speed, never results; exposed so the
    benchmark harness can measure before/after. *)

val caching_enabled : unit -> bool
