(** Blocks of the block-tree (paper §3.4): a round number, the proposer's
    index, the parent's hash, and an application payload.  The special
    root is represented only by {!root_hash}. *)

type t = {
  round : Types.round;
  proposer : Types.party_id;
  parent_hash : Icc_crypto.Sha256.t;
  payload : Types.payload;
  digest : Icc_crypto.Sha256.t;
      (** Memoized hash of the other four fields; filled by {!create}.
          Always construct blocks through {!create} so it stays
          consistent. *)
}

val root_hash : Icc_crypto.Sha256.t
(** Hash standing in for the round-0 root block. *)

val hash : t -> Icc_crypto.Sha256.t
(** Commits to all four fields.  Served from the memoized [digest] field
    unless memoization is disabled. *)

val set_memoization : bool -> unit
(** Toggle digest memoization (on by default).  With it off, {!hash}
    re-encodes and re-hashes on every call — the pre-optimization
    behaviour, kept so the benchmark harness can measure before/after. *)

val memoization_enabled : unit -> bool

val create :
  round:Types.round -> proposer:Types.party_id ->
  parent_hash:Icc_crypto.Sha256.t -> payload:Types.payload -> t
(** Raises [Invalid_argument] for rounds below 1. *)

val is_child_of_root : t -> bool

val header_wire_size : int

val wire_size : t -> int
(** Modeled bytes on the wire: header plus declared payload size. *)

val pp : Format.formatter -> t -> unit
