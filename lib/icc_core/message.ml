(* Wire messages of ICC0/ICC1 and their modeled sizes.

   A proposal bundles the block, its authenticator and the notarization of
   its parent — exactly what Fig. 1 broadcasts together when proposing or
   echoing.  Sizes are modeled at production scale (48-byte BLS signatures /
   multisignature cores, 32-byte hashes), independent of the simulation's
   in-memory representation. *)

type proposal = {
  p_block : Block.t;
  p_authenticator : Icc_crypto.Schnorr.signature;
  p_parent_cert : Types.cert option; (* None iff round 1 (root parent) *)
}

type t =
  | Proposal of proposal
  | Notarization_share of Types.share_msg
  | Notarization of Types.cert
  | Finalization_share of Types.share_msg
  | Finalization of Types.cert
  | Beacon_share of {
      b_round : Types.round;
      b_signer : Types.party_id;
      b_share : Icc_crypto.Threshold_vuf.signature_share;
    }
  (* Pool-resync sub-layer (not part of the paper's Fig. 1/2): a periodic
     frontier announcement and an explicit pull, both unicast.  They carry
     no signatures — they only trigger retransmission of messages that are
     themselves verified on admission. *)
  | Pool_summary of {
      ps_party : Types.party_id; (* sender, so the peer can answer *)
      ps_round : Types.round; (* sender's current tree-building round *)
      ps_kmax : Types.round; (* sender's finalization cursor *)
    }
  | Pool_request of {
      pr_party : Types.party_id;
      pr_from : Types.round;
      pr_upto : Types.round;
    }

let share_msg_wire_size = 12 + 32 + Icc_crypto.Multisig.share_wire_size

let cert_wire_size ~n = 12 + 32 + 48 + ((n + 7) / 8)

let beacon_share_wire_size = 12 + Icc_crypto.Threshold_vuf.share_wire_size

let resync_wire_size = 24 (* three varint-packed rounds/ids *)

let wire_size ~n = function
  | Proposal p ->
      Block.wire_size p.p_block + Icc_crypto.Schnorr.signature_wire_size
      + (match p.p_parent_cert with None -> 0 | Some _ -> cert_wire_size ~n)
  | Notarization_share _ | Finalization_share _ -> share_msg_wire_size
  | Notarization _ | Finalization _ -> cert_wire_size ~n
  | Beacon_share _ -> beacon_share_wire_size
  | Pool_summary _ | Pool_request _ -> resync_wire_size

let kind = function
  | Proposal _ -> "proposal"
  | Notarization_share _ -> "notarization-share"
  | Notarization _ -> "notarization"
  | Finalization_share _ -> "finalization-share"
  | Finalization _ -> "finalization"
  | Beacon_share _ -> "beacon-share"
  | Pool_summary _ -> "pool-summary"
  | Pool_request _ -> "pool-request"

let is_resync = function
  | Pool_summary _ | Pool_request _ -> true
  | Proposal _ | Notarization_share _ | Notarization _ | Finalization_share _
  | Finalization _ | Beacon_share _ ->
      false
