(* Scenario runner for Protocol ICC0: builds keys, network, workload and
   parties, runs the discrete-event simulation, and evaluates the global
   correctness oracles. *)

type delay_spec =
  | Fixed_delay of float
  | Uniform_delay of float * float
  | Wan of { rtt_lo : float; rtt_hi : float } (* paper: RTT 6–110 ms *)

(* The dissemination layer under the protocol.  ICC0 broadcasts directly;
   ICC1 (icc_gossip) and ICC2 (icc_rbc) plug in their sub-layers here. *)
type transport_ctx = {
  tr_engine : Icc_sim.Engine.t;
  tr_trace : Icc_sim.Trace.t;
  tr_n : int;
  tr_t : int;
  tr_rng : Icc_sim.Rng.t;
  tr_delay_model : Icc_sim.Network.delay_model;
  tr_async_until : float;
  tr_fault : Icc_sim.Fault.t option; (* nemesis, installed on every network *)
  tr_adversary : Icc_sim.Adversary.t option;
      (* Byzantine adversary, interposed on every network's sends *)
  tr_is_active : int -> bool; (* false once a party has crashed *)
  tr_deliver : dst:int -> Message.t -> unit;
  tr_system : Icc_crypto.Keygen.system;
  tr_keys : Icc_crypto.Keygen.party_keys array;
      (* index 0 = party 1; a transport sub-layer conceptually runs inside
         each party's process and may use that party's keys *)
}

type transport_impl = {
  tx_broadcast : src:int -> Message.t -> unit;
  tx_unicast : src:int -> dst:int -> Message.t -> unit;
}

type transport = transport_ctx -> transport_impl

type workload =
  | No_load (* management filler only, paper Table 1 scenario 1 *)
  | Load of { rate_per_s : float; cmd_size : int } (* Table 1 scenario 2 *)
  | Fixed_block_size of int (* leader-bottleneck experiments *)
  | Tagged_load of {
      rate_per_s : float;
      cmd_size : int;
      make_tag : int -> string; (* application payload per command id *)
    }

type scenario = {
  n : int;
  t_corrupt : int;
  seed : int;
  delta_bnd : float;
  epsilon : float;
  delay : delay_spec;
  behaviors : (int * Party.behavior) list; (* unlisted parties are honest *)
  kill_at : (int * float) list; (* (party, time): crash mid-run *)
  duration : float;
  max_rounds : int option; (* stop once some party commits this round *)
  workload : workload;
  non_responsive : bool;
  async_until : float; (* adversarial asynchrony at the start of the run *)
  transport : transport option; (* None = ICC0 direct broadcast *)
  adaptive : bool; (* adaptive delay-bound estimation (paper §1) *)
  prune_depth : int option; (* pool garbage collection below kmax *)
  trace : Icc_sim.Trace.t option; (* observe the run on an external bus *)
  monitor : Icc_sim.Monitor.config option; (* online invariant monitor *)
  nemesis : Icc_sim.Fault.script option; (* deterministic fault injection *)
  adversary : Icc_sim.Adversary.script option;
      (* Byzantine strategy script; None (or Some []) = all parties honest *)
  resync : Config.resync option;
      (* pool-resync retransmission; defaults on (with default parameters)
         whenever a nemesis script is present *)
}

let default_scenario ~n ~seed =
  {
    n;
    t_corrupt = Icc_crypto.Keygen.max_corrupt ~n;
    seed;
    delta_bnd = 1.0;
    epsilon = 0.2;
    delay = Fixed_delay 0.05;
    behaviors = [];
    kill_at = [];
    duration = 60.;
    max_rounds = None;
    workload = No_load;
    non_responsive = false;
    async_until = 0.;
    transport = None;
    adaptive = false;
    prune_depth = None;
    trace = None;
    monitor = None;
    nemesis = None;
    adversary = None;
    resync = None;
  }

(* ICC0's transport: one broadcast network, messages accounted at their
   modeled wire sizes. *)
let direct_transport ctx =
  let net =
    Icc_sim.Transport.network ~engine:ctx.tr_engine ~n:ctx.tr_n
      ~trace:ctx.tr_trace ~delay_model:ctx.tr_delay_model
      ~async_until:ctx.tr_async_until ?fault:ctx.tr_fault
      ?adversary:ctx.tr_adversary ()
  in
  Icc_sim.Network.set_handler net (fun ~dst ~src:_ msg -> ctx.tr_deliver ~dst msg);
  {
    tx_broadcast =
      (fun ~src msg ->
        Icc_sim.Network.broadcast net ~src
          ~size:(Message.wire_size ~n:ctx.tr_n msg)
          ~kind:(Message.kind msg) msg);
    tx_unicast =
      (fun ~src ~dst msg ->
        Icc_sim.Network.unicast net ~src ~dst
          ~size:(Message.wire_size ~n:ctx.tr_n msg)
          ~kind:(Message.kind msg) msg);
  }

type result = {
  metrics : Icc_sim.Metrics.t;
  monitor : Icc_sim.Monitor.t option; (* online verdict, when attached *)
  duration : float; (* simulated time actually elapsed *)
  outputs : (int * Block.t list) list; (* honest parties' committed chains *)
  safety_ok : bool; (* output consistency /\ P2 *)
  prefix_ok : bool; (* committed chains pairwise prefix-consistent *)
  p2_ok : bool; (* no conflicting notarization next to a finalization *)
  p1_ok : bool;
  rounds_decided : int; (* highest round committed by every honest party *)
  directly_finalized : int list;
      (* rounds for which some honest pool holds a finalization certificate:
         rounds decided in the round itself rather than by a descendant *)
  blocks_per_s : float;
  mean_latency : float; (* propose -> all-honest-commit, honest proposals *)
  honest : int list;
  commands_committed : int;
  mean_command_latency : float;
}

let management_filler = 120

module Int_set = Set.Make (Int)

(* Command ids already committed on the chain ending at [parent], memoised
   by block hash: payload deduplication for getPayload (paper §3.3).
   Persistent sets share structure along the chain, so the memo stays
   linear in the number of commands. *)
let make_dedup pool_cache =
  let rec ids_of pool (b : Block.t) =
    let h = Block.hash b in
    match Hashtbl.find_opt pool_cache h with
    | Some s -> s
    | None ->
        let parent_ids =
          if b.Block.round = 1 then Int_set.empty
          else
            match Pool.find_block pool (b.Block.round - 1, b.Block.parent_hash) with
            | Some p -> ids_of pool p
            | None -> Int_set.empty
        in
        let s =
          List.fold_left
            (fun acc c -> Int_set.add c.Types.cmd_id acc)
            parent_ids b.Block.payload.Types.commands
        in
        Hashtbl.replace pool_cache h s;
        s
  in
  ids_of

let behavior_of scenario id =
  match List.assoc_opt id scenario.behaviors with
  | Some b -> b
  | None -> Party.honest

let run scenario =
  let n = scenario.n and t = scenario.t_corrupt in
  let rng = Icc_sim.Rng.create scenario.seed in
  let key_rng = Icc_sim.Rng.split rng in
  let net_rng = Icc_sim.Rng.split rng in
  let load_rng = Icc_sim.Rng.split rng in
  let system, keys = Icc_crypto.Keygen.generate ~n ~t (fun () -> Icc_sim.Rng.bits61 key_rng) in
  let config =
    if scenario.non_responsive then
      Config.non_responsive ~delta_bnd:scenario.delta_bnd ~n ~t ()
    else
      Config.recommended ~delta_bnd:scenario.delta_bnd ~epsilon:scenario.epsilon
        ~adaptive:scenario.adaptive ?prune_depth:scenario.prune_depth ~n ~t ()
  in
  (* Lossy links and crash–recovery both need the resync sub-layer for
     liveness, so a nemesis script switches it on by default. *)
  let config =
    let resync =
      match scenario.resync with
      | Some _ as r -> r
      | None ->
          if scenario.nemesis = None then None
          else Some (Config.default_resync ())
    in
    { config with Config.resync }
  in
  let tenv = Icc_sim.Transport.env ?trace:scenario.trace ~n () in
  let engine = tenv.Icc_sim.Transport.engine in
  let metrics = tenv.Icc_sim.Transport.metrics in
  let trace = tenv.Icc_sim.Transport.trace in
  (* The monitor subscribes after any external sink (e.g. the JSONL dump),
     so its Monitor_* announcements land right after the offending line. *)
  let monitor =
    Option.map (fun config -> Icc_sim.Monitor.attach ~config trace)
      scenario.monitor
  in
  let run_label =
    match scenario.transport with None -> "icc0" | Some _ -> "icc"
  in
  Icc_sim.Trace.emit trace ~time:0.
    (Icc_sim.Trace.Run_start { n; label = run_label });
  let delay_model : Icc_sim.Network.delay_model =
    match scenario.delay with
    | Fixed_delay d -> Fixed d
    | Uniform_delay (lo, hi) -> Uniform { rng = net_rng; lo; hi }
    | Wan { rtt_lo; rtt_hi } ->
        Matrix (Icc_sim.Network.wan_matrix net_rng ~n ~rtt_lo ~rtt_hi)
  in
  (* The fault layer owns a private RNG stream, split only when a script is
     present so nemesis-free scenarios keep their exact historical streams. *)
  let fault =
    match scenario.nemesis with
    | None -> None
    | Some script ->
        Some (Icc_sim.Fault.create ~rng:(Icc_sim.Rng.split rng) ~trace script)
  in
  (* The adversary layer likewise owns a private stream, split only when a
     non-empty script is configured, so adversary-free scenarios keep their
     exact historical streams (pinned by the golden-trace test). *)
  let adv_script =
    match scenario.adversary with None | Some [] -> None | Some _ as s -> s
  in
  let adversary =
    match adv_script with
    | None -> None
    | Some script ->
        Some
          (Icc_sim.Adversary.create ~rng:(Icc_sim.Rng.split rng) ~trace ~n
             script)
  in
  (* Client workload: commands are submitted to every party (clients
     broadcast); client->replica traffic is not consensus traffic and is not
     accounted. *)
  let pending : Types.command list ref = ref [] in
  let next_cmd_id = ref 0 in
  let submit_command ?tag ~size ~time () =
    incr next_cmd_id;
    pending :=
      Types.command ?tag ~cmd_id:!next_cmd_id ~cmd_size:size ~submitted_at:time
        ()
      :: !pending
  in
  let arrivals ~rate_per_s ~submit =
    let dt = 1. /. rate_per_s in
    let rec arrival time =
      if time <= scenario.duration then
        Icc_sim.Engine.schedule_at engine ~time (fun () ->
            submit ~time;
            (* jittered next arrival around the nominal rate *)
            arrival (time +. (dt *. Icc_sim.Rng.float_range load_rng 0.5 1.5)))
    in
    arrival (dt *. Icc_sim.Rng.float load_rng 1.)
  in
  (match scenario.workload with
  | Load { rate_per_s; cmd_size } ->
      arrivals ~rate_per_s ~submit:(fun ~time ->
          submit_command ~size:cmd_size ~time ())
  | Tagged_load { rate_per_s; cmd_size; make_tag } ->
      arrivals ~rate_per_s ~submit:(fun ~time ->
          submit_command ~tag:(make_tag (!next_cmd_id + 1)) ~size:cmd_size
            ~time ())
  | No_load | Fixed_block_size _ -> ());

  let dedup_cache = Hashtbl.create 256 in
  let chain_ids = make_dedup dedup_cache in
  let get_payload ~pool ~parent ~round:_ ~proposer:_ =
    match scenario.workload with
    | No_load -> { Types.commands = []; filler_size = management_filler }
    | Fixed_block_size size -> { Types.commands = []; filler_size = size }
    | Load _ | Tagged_load _ ->
        let included =
          match parent with Some b -> chain_ids pool b | None -> Int_set.empty
        in
        let fresh =
          List.filter
            (fun c -> not (Int_set.mem c.Types.cmd_id included))
            !pending
        in
        { Types.commands = fresh; filler_size = management_filler }
  in

  (* Commit tracking: a block counts as decided when every honest party has
     output it; latency is measured from its proposal broadcast. *)
  (* Parties a nemesis script crashes without recovering are excluded from
     the honest set (like kill_at); crash–recover cycles keep a party
     honest — it is expected to rejoin and commit everything. *)
  let nemesis_down =
    match scenario.nemesis with
    | None -> []
    | Some script -> Icc_sim.Fault.finally_down script
  in
  (* Statically scripted corrupt parties are excluded from the honest set
     upfront; adaptively corrupted ones are subtracted after the run (the
     adversary only learns who it corrupted as triggers fire). *)
  let adv_static_corrupt =
    match adv_script with
    | None -> []
    | Some script -> Icc_sim.Adversary.static_corrupt script
  in
  let honest_ids =
    List.init n (fun i -> i + 1)
    |> List.filter (fun id -> behavior_of scenario id = Party.honest)
    |> List.filter (fun id -> not (List.mem_assoc id scenario.kill_at))
    |> List.filter (fun id -> not (List.mem id nemesis_down))
    |> List.filter (fun id -> not (List.mem id adv_static_corrupt))
  in
  let n_honest = List.length honest_ids in
  (* O(1) honest-set membership for the per-output hot path (the list scan
     was O(n) per committed block per party — O(n²) per round at scale). *)
  let is_honest = Array.make (n + 1) false in
  List.iter (fun id -> is_honest.(id) <- true) honest_ids;
  let commit_count : (Types.round * Icc_crypto.Sha256.t, int) Hashtbl.t =
    Hashtbl.create 256
  in
  let committed_cmds = ref 0 in
  let cmd_latencies = ref [] in
  let stop_requested = ref false in
  let on_output ~party (b : Block.t) =
    if party >= 1 && party <= n && is_honest.(party) then begin
      let block_hash = Block.hash b in
      let key = (b.Block.round, block_hash) in
      let c = 1 + Option.value ~default:0 (Hashtbl.find_opt commit_count key) in
      Hashtbl.replace commit_count key c;
      (* Per-party commit: detail-level (the monitor's prefix-consistency
         check and the analyzer consume it), so the digest string is only
         built when a full subscriber is present. *)
      if Icc_sim.Trace.detailed trace then
        Icc_sim.Trace.emit trace ~time:(Icc_sim.Engine.now engine)
          (Icc_sim.Trace.Commit
             {
               party;
               round = b.Block.round;
               block = Icc_crypto.Sha256.short_hex block_hash;
             });
      if c = n_honest then begin
        let nowt = Icc_sim.Engine.now engine in
        (* The metrics sink records the finalization and, when the round's
           proposal time is known, the propose -> all-honest-commit
           latency. *)
        Icc_sim.Trace.emit trace ~time:nowt
          (Icc_sim.Trace.Block_decided
             {
               round = b.Block.round;
               block = Icc_crypto.Sha256.short_hex block_hash;
             });
        List.iter
          (fun c ->
            incr committed_cmds;
            cmd_latencies := (nowt -. c.Types.submitted_at) :: !cmd_latencies)
          b.Block.payload.Types.commands;
        (* Committed commands leave the clients' pending set. *)
        (let committed =
           List.fold_left
             (fun acc c -> Int_set.add c.Types.cmd_id acc)
             Int_set.empty b.Block.payload.Types.commands
         in
         if not (Int_set.is_empty committed) then
           pending :=
             List.filter
               (fun c -> not (Int_set.mem c.Types.cmd_id committed))
               !pending);
        (match scenario.max_rounds with
        | Some r when b.Block.round >= r -> stop_requested := true
        | _ -> ())
      end
    end
  in

  (* Transport and parties are mutually referential (delivery dispatches to
     parties; parties send through the transport): tie the knot with a
     forward reference. *)
  let parties_ref = ref [||] in
  let deliver ~dst msg =
    let parties = !parties_ref in
    if dst >= 1 && dst <= Array.length parties then begin
      Party.on_message parties.(dst - 1) msg;
      if !stop_requested then Icc_sim.Engine.stop engine
    end
  in
  let ctx =
    {
      tr_engine = engine;
      tr_trace = trace;
      tr_n = n;
      tr_t = t;
      tr_rng = Icc_sim.Rng.split rng;
      tr_delay_model = delay_model;
      tr_async_until = scenario.async_until;
      tr_fault = fault;
      tr_adversary = adversary;
      tr_is_active =
        (fun id ->
          (not (Party.behavior (!parties_ref).(id - 1)).Party.crashed)
          &&
          match adversary with
          | None -> true
          | Some a ->
              not
                (Icc_sim.Adversary.crashed_now a
                   ~now:(Icc_sim.Engine.now engine) ~party:id));
      tr_deliver = deliver;
      tr_system = system;
      tr_keys = Array.of_list keys;
    }
  in
  let impl =
    (match scenario.transport with
    | None -> direct_transport
    | Some transport -> transport)
      ctx
  in
  let env =
    {
      Party.config;
      system;
      engine;
      send_broadcast = impl.tx_broadcast;
      send_unicast = impl.tx_unicast;
      trace;
      get_payload;
      on_output;
      adversary;
    }
  in
  let parties =
    Array.init n (fun i ->
        let id = i + 1 in
        Party.create env ~id
          ~keys:(List.nth keys i)
          ~behavior:(behavior_of scenario id))
  in
  parties_ref := parties;
  List.iter
    (fun (id, time) ->
      Icc_sim.Engine.schedule_at engine ~time (fun () ->
          Party.set_behavior parties.(id - 1) Party.crashed))
    scenario.kill_at;
  (* Nemesis crash/recover directives.  Crashing preserves the party's other
     behaviour flags; recovery goes through Party.recover so the party
     rehydrates via resync and rejoins at the current round. *)
  (match scenario.nemesis with
  | None -> ()
  | Some script ->
      List.iter
        (fun (time, what, party) ->
          if party >= 1 && party <= n then
            Icc_sim.Engine.schedule_at engine ~time (fun () ->
                let p = parties.(party - 1) in
                match what with
                | `Crash ->
                    if not (Party.behavior p).Party.crashed then begin
                      Icc_sim.Trace.emit trace
                        ~time:(Icc_sim.Engine.now engine)
                        (Icc_sim.Trace.Fault_crash { party });
                      Party.set_behavior p
                        { (Party.behavior p) with Party.crashed = true }
                    end
                | `Recover ->
                    if (Party.behavior p).Party.crashed then begin
                      Icc_sim.Trace.emit trace
                        ~time:(Icc_sim.Engine.now engine)
                        (Icc_sim.Trace.Fault_recover { party });
                      Party.recover p
                    end))
        (Icc_sim.Fault.crash_schedule script));
  (* Adversary crash windows end on the script's clock: kick the party at
     each window end so it rehydrates (the window silenced its timers). *)
  (match adv_script with
  | None -> ()
  | Some script ->
      List.iter
        (fun (time, party) ->
          if party >= 1 && party <= n then
            Icc_sim.Engine.schedule_at engine ~time (fun () ->
                Party.wake parties.(party - 1)))
        (Icc_sim.Adversary.static_crash_wakes script));
  Array.iter Party.start parties;
  Icc_sim.Engine.run ~until:scenario.duration engine;

  let elapsed = Icc_sim.Engine.now engine in
  (* Profiler snapshot onto the bus, just before run-end.  Gated on the
     profiling toggle, so unprofiled traces carry no prof-* lines and stay
     byte-identical (CI strips these lines and compares the remainder). *)
  if Icc_obs.Profile.enabled () && Icc_sim.Trace.active trace then begin
    let us s = int_of_float ((s *. 1e6) +. 0.5) in
    List.iter
      (fun st ->
        Icc_sim.Trace.emit trace ~time:elapsed
          (Icc_sim.Trace.Prof_span
             {
               name = st.Icc_obs.Profile.sp_name;
               count = st.Icc_obs.Profile.sp_count;
               total_us = us st.Icc_obs.Profile.sp_total_s;
               self_us = us st.Icc_obs.Profile.sp_self_s;
             }))
      (Icc_obs.Profile.stats ());
    List.iter
      (fun (name, value) ->
        Icc_sim.Trace.emit trace ~time:elapsed
          (Icc_sim.Trace.Prof_counter { name; value }))
      (Icc_obs.Registry.counters ())
  end;
  Icc_sim.Trace.emit trace ~time:elapsed
    (Icc_sim.Trace.Run_end { label = run_label });
  (* Parties the adversary corrupted adaptively during the run leave the
     honest set now — the correctness oracles judge honest parties only. *)
  let honest_ids =
    match adversary with
    | None -> honest_ids
    | Some a ->
        let corrupt = Icc_sim.Adversary.corrupted a in
        List.filter (fun id -> not (List.mem id corrupt)) honest_ids
  in
  let outputs =
    List.map (fun id -> (id, Party.output_chain parties.(id - 1))) honest_ids
  in
  let honest_pools =
    List.map (fun id -> Party.pool parties.(id - 1)) honest_ids
  in
  let rounds_decided =
    match outputs with
    | [] -> 0
    | _ ->
        List.fold_left
          (fun acc (_, chain) ->
            min acc
              (List.fold_left (fun m b -> max m b.Block.round) 0 chain))
          max_int outputs
  in
  let min_finished =
    List.fold_left
      (fun acc id ->
        min acc (Party.rounds_finished parties.(id - 1)))
      max_int honest_ids
  in
  let directly_finalized =
    let limit = if rounds_decided = max_int then 0 else rounds_decided in
    List.filter
      (fun round ->
        List.exists
          (fun pool ->
            List.exists
              (fun b ->
                Pool.is_finalized pool (round, Block.hash b))
              (Pool.blocks_of_round pool round))
          honest_pools)
      (List.init limit (fun i -> i + 1))
  in
  let prefix_ok = Check.outputs_consistent outputs in
  let p2_ok = Check.no_conflicting_notarization honest_pools in
  {
    metrics;
    monitor;
    duration = elapsed;
    outputs;
    safety_ok = prefix_ok && p2_ok;
    prefix_ok;
    p2_ok;
    p1_ok =
      Check.every_round_notarized honest_pools
        ~limit:(if min_finished = max_int then 0 else min_finished);
    rounds_decided;
    directly_finalized;
    blocks_per_s = Icc_sim.Metrics.blocks_per_second metrics ~window:elapsed;
    mean_latency = Icc_sim.Metrics.mean_latency metrics;
    honest = honest_ids;
    commands_committed = !committed_cmds;
    mean_command_latency = Icc_sim.Metrics.mean !cmd_latencies;
  }
