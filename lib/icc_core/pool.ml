(* A party's message pool (paper §3.1, §3.4): the set of all messages it has
   received, indexed so the block-classification predicates — authentic,
   valid, notarized, finalized — can be evaluated incrementally.

   Every signature is verified on admission; messages failing verification
   are dropped.  Classification is monotone, so the pool maintains it by a
   promotion cascade: a block becomes valid when it is authentic and its
   parent is notarized; it becomes notarized/finalized when additionally a
   certificate is present.  Promoting a block re-examines its children. *)

type key = Types.round * Icc_crypto.Sha256.t

type t = {
  system : Icc_crypto.Keygen.system;
  payload_valid : Block.t -> bool;
  blocks : (key, Block.t) Hashtbl.t;
  by_round : (Types.round, key list ref) Hashtbl.t;
  children : (Icc_crypto.Sha256.t, key list ref) Hashtbl.t;
  authentic : (key, Icc_crypto.Schnorr.signature) Hashtbl.t;
  notar_shares : (key, Icc_crypto.Multisig.share list ref) Hashtbl.t;
  notar_certs : (key, Types.cert) Hashtbl.t;
  final_shares : (key, Icc_crypto.Multisig.share list ref) Hashtbl.t;
  final_certs : (key, Types.cert) Hashtbl.t;
  beacon_shares :
    (Types.round, Icc_crypto.Threshold_vuf.signature_share list ref) Hashtbl.t;
  valid : (key, unit) Hashtbl.t;
  notarized : (key, unit) Hashtbl.t;
  finalized : (key, unit) Hashtbl.t;
  mutable max_round : Types.round;
}

let create ?(payload_valid = fun _ -> true) system =
  {
    system;
    payload_valid;
    blocks = Hashtbl.create 64;
    by_round = Hashtbl.create 64;
    children = Hashtbl.create 64;
    authentic = Hashtbl.create 64;
    notar_shares = Hashtbl.create 64;
    notar_certs = Hashtbl.create 64;
    final_shares = Hashtbl.create 64;
    final_certs = Hashtbl.create 64;
    beacon_shares = Hashtbl.create 64;
    valid = Hashtbl.create 64;
    notarized = Hashtbl.create 64;
    finalized = Hashtbl.create 64;
    max_round = 0;
  }

let multi_add tbl k v =
  match Hashtbl.find_opt tbl k with
  | Some l -> l := v :: !l
  | None -> Hashtbl.add tbl k (ref [ v ])

let multi_get tbl k =
  match Hashtbl.find_opt tbl k with Some l -> !l | None -> []

(* --- classification queries ------------------------------------------- *)

let find_block t key = Hashtbl.find_opt t.blocks key
let is_authentic t key = Hashtbl.mem t.authentic key
let authenticator t key = Hashtbl.find_opt t.authentic key
let is_valid t key = Hashtbl.mem t.valid key

let is_notarized t ((round, h) as key) =
  (round = 0 && Icc_crypto.Sha256.equal h Block.root_hash)
  || Hashtbl.mem t.notarized key

let is_finalized t ((round, h) as key) =
  (round = 0 && Icc_crypto.Sha256.equal h Block.root_hash)
  || Hashtbl.mem t.finalized key

let blocks_of_round t round =
  List.filter_map (find_block t) (multi_get t.by_round round)

let valid_blocks t round =
  List.filter_map
    (fun key -> if is_valid t key then find_block t key else None)
    (multi_get t.by_round round)

let notarized_blocks t round =
  List.filter_map
    (fun key -> if is_notarized t key then find_block t key else None)
    (multi_get t.by_round round)

let notarization_cert t key = Hashtbl.find_opt t.notar_certs key
let finalization_cert t key = Hashtbl.find_opt t.final_certs key
let notar_share_count t key = List.length (multi_get t.notar_shares key)
let notar_shares t key = multi_get t.notar_shares key
let final_share_count t key = List.length (multi_get t.final_shares key)
let final_shares t key = multi_get t.final_shares key
let beacon_shares t round = multi_get t.beacon_shares round
let max_round t = t.max_round

(* --- promotion cascade ------------------------------------------------ *)

let rec promote t ((round, _) as key) =
  match find_block t key with
  | None -> ()
  | Some b ->
      if
        (not (is_valid t key))
        && is_authentic t key
        && is_notarized t (round - 1, b.Block.parent_hash)
        && t.payload_valid b
      then Hashtbl.replace t.valid key ();
      if is_valid t key then begin
        let newly_notarized =
          (not (is_notarized t key)) && Hashtbl.mem t.notar_certs key
        in
        if newly_notarized then Hashtbl.replace t.notarized key ();
        if (not (is_finalized t key)) && Hashtbl.mem t.final_certs key then
          Hashtbl.replace t.finalized key ();
        if newly_notarized then
          List.iter (promote t)
            (multi_get t.children (Block.hash b))
      end

(* --- admission -------------------------------------------------------- *)
(* Each [add_*] returns true when the pool gained information. *)

let add_block t (b : Block.t) =
  let key = (b.Block.round, Block.hash b) in
  if Hashtbl.mem t.blocks key then false
  else begin
    Hashtbl.replace t.blocks key b;
    multi_add t.by_round b.Block.round key;
    multi_add t.children b.Block.parent_hash key;
    if b.Block.round > t.max_round then t.max_round <- b.Block.round;
    promote t key;
    true
  end

let add_authenticator t ~round ~proposer ~block_hash signature =
  let key = (round, block_hash) in
  if Hashtbl.mem t.authentic key then false
  else if
    proposer >= 1
    && proposer <= t.system.Icc_crypto.Keygen.n
    && Icc_crypto.Schnorr.verify
         t.system.Icc_crypto.Keygen.auth_pub.(proposer - 1)
         (Types.authenticator_text ~round ~proposer ~block_hash)
         signature
  then begin
    Hashtbl.replace t.authentic key signature;
    promote t key;
    true
  end
  else false

let verify_cert t ~text (c : Types.cert) =
  Icc_crypto.Multisig.verify
    (match text with
    | `Notarization ->
        t.system.Icc_crypto.Keygen.notary
    | `Finalization -> t.system.Icc_crypto.Keygen.final)
    (match text with
    | `Notarization ->
        Types.notarization_text ~round:c.Types.c_round ~proposer:c.Types.c_proposer
          ~block_hash:c.Types.c_block_hash
    | `Finalization ->
        Types.finalization_text ~round:c.Types.c_round ~proposer:c.Types.c_proposer
          ~block_hash:c.Types.c_block_hash)
    c.Types.c_multisig

let add_notarization t (c : Types.cert) =
  let key = (c.Types.c_round, c.Types.c_block_hash) in
  if Hashtbl.mem t.notar_certs key then false
  else if verify_cert t ~text:`Notarization c then begin
    Hashtbl.replace t.notar_certs key c;
    promote t key;
    true
  end
  else false

let add_finalization t (c : Types.cert) =
  let key = (c.Types.c_round, c.Types.c_block_hash) in
  if Hashtbl.mem t.final_certs key then false
  else if verify_cert t ~text:`Finalization c then begin
    Hashtbl.replace t.final_certs key c;
    promote t key;
    true
  end
  else false

let add_share t ~kind (s : Types.share_msg) =
  let key = (s.Types.s_round, s.Types.s_block_hash) in
  let table, params, text =
    match kind with
    | `Notarization ->
        ( t.notar_shares,
          t.system.Icc_crypto.Keygen.notary,
          Types.notarization_text ~round:s.Types.s_round
            ~proposer:s.Types.s_proposer ~block_hash:s.Types.s_block_hash )
    | `Finalization ->
        ( t.final_shares,
          t.system.Icc_crypto.Keygen.final,
          Types.finalization_text ~round:s.Types.s_round
            ~proposer:s.Types.s_proposer ~block_hash:s.Types.s_block_hash )
  in
  let share = s.Types.s_share in
  let already =
    List.exists
      (fun (sh : Icc_crypto.Multisig.share) ->
        sh.Icc_crypto.Multisig.signer = share.Icc_crypto.Multisig.signer)
      (multi_get table key)
  in
  if already then false
  else if Icc_crypto.Multisig.verify_share params text share then begin
    multi_add table key share;
    true
  end
  else false

let add_notarization_share t s = add_share t ~kind:`Notarization s
let add_finalization_share t s = add_share t ~kind:`Finalization s

let add_beacon_share t ~round (share : Icc_crypto.Threshold_vuf.signature_share) =
  (* Shares are verifiable only once the previous beacon value is known, so
     they are admitted unverified (deduplicated by signer) and checked by
     {!Beacon.try_compute}. *)
  let already =
    List.exists
      (fun (sh : Icc_crypto.Threshold_vuf.signature_share) ->
        sh.Icc_crypto.Threshold_vuf.signer = share.Icc_crypto.Threshold_vuf.signer)
      (multi_get t.beacon_shares round)
  in
  if already then false
  else begin
    multi_add t.beacon_shares round share;
    true
  end

(* --- garbage collection ------------------------------------------------ *)

let stored_blocks t = Hashtbl.length t.blocks

(* Discard all per-round state for rounds below [below] (paper §3.1: "the
   protocol can be optimized so that messages that are no longer relevant
   may [be] discarded", with checkpointing as in PBFT).  Safe once every
   round below the horizon is finalized: new blocks only ever extend
   notarized blocks at the current frontier, and Fig. 2 only outputs
   segments above kmax. *)
let prune t ~below =
  (* [by_round] is a multi-table (one binding per block), so the fold both
     repeats rounds and enumerates them in bucket order; sort_uniq by the
     round key so removal proceeds in one canonical order. *)
  let doomed_rounds =
    Hashtbl.fold
      (fun round _ acc -> if round < below then round :: acc else acc)
      t.by_round []
    |> List.sort_uniq Int.compare
  in
  List.iter
    (fun round ->
      let keys = multi_get t.by_round round in
      List.iter
        (fun ((_, h) as key) ->
          (match Hashtbl.find_opt t.blocks key with
          | Some b -> Hashtbl.remove t.children b.Block.parent_hash
          | None -> ());
          Hashtbl.remove t.children h;
          Hashtbl.remove t.blocks key;
          Hashtbl.remove t.authentic key;
          Hashtbl.remove t.notar_shares key;
          Hashtbl.remove t.notar_certs key;
          Hashtbl.remove t.final_shares key;
          Hashtbl.remove t.final_certs key;
          Hashtbl.remove t.valid key;
          Hashtbl.remove t.notarized key;
          Hashtbl.remove t.finalized key)
        keys;
      Hashtbl.remove t.by_round round;
      Hashtbl.remove t.beacon_shares round)
    doomed_rounds

(* --- resync retransmission --------------------------------------------- *)

let beacon_share_msgs t ~round =
  List.map
    (fun (sh : Icc_crypto.Threshold_vuf.signature_share) ->
      Message.Beacon_share
        {
          b_round = round;
          b_signer = sh.Icc_crypto.Threshold_vuf.signer;
          b_share = sh;
        })
    (multi_get t.beacon_shares round)

(* Everything this pool can re-send for one round, as the original wire
   messages, so a lagging peer admits them through the ordinary verified
   path.  Proposal bundles are capped at two per round (one honest block
   plus at most one equivocation suffices to unblock any peer); shares are
   resent only where no certificate subsumes them, and only for blocks we
   hold (the share text needs the proposer, which only the block names). *)
let retransmit_set t ~round =
  let keys = multi_get t.by_round round in
  let proposals =
    List.filteri
      (fun i _ -> i < 2)
      (List.filter_map
         (fun key ->
           match (find_block t key, authenticator t key) with
           | Some b, Some auth ->
               let parent = (round - 1, b.Block.parent_hash) in
               if round = 1 then
                 Some
                   (Message.Proposal
                      {
                        Message.p_block = b;
                        p_authenticator = auth;
                        p_parent_cert = None;
                      })
               else begin
                 match Hashtbl.find_opt t.notar_certs parent with
                 | Some cert ->
                     Some
                       (Message.Proposal
                          {
                            Message.p_block = b;
                            p_authenticator = auth;
                            p_parent_cert = Some cert;
                          })
                 | None -> None (* cannot form a well-formed bundle yet *)
               end
           | _ -> None)
         keys)
  in
  let certs_and_shares which_certs which_shares mk_cert mk_share =
    List.concat_map
      (fun ((_, h) as key) ->
        match Hashtbl.find_opt which_certs key with
        | Some cert -> [ mk_cert cert ]
        | None -> (
            match find_block t key with
            | None -> []
            | Some b ->
                List.map
                  (fun share ->
                    mk_share
                      {
                        Types.s_round = round;
                        s_proposer = b.Block.proposer;
                        s_block_hash = h;
                        s_share = share;
                      })
                  (multi_get which_shares key)))
      keys
  in
  let notar =
    certs_and_shares t.notar_certs t.notar_shares
      (fun c -> Message.Notarization c)
      (fun s -> Message.Notarization_share s)
  in
  let final =
    certs_and_shares t.final_certs t.final_shares
      (fun c -> Message.Finalization c)
      (fun s -> Message.Finalization_share s)
  in
  proposals @ notar @ final @ beacon_share_msgs t ~round

(* --- condition-(a) and finalization-subprotocol queries ---------------- *)

let quorum t = t.system.Icc_crypto.Keygen.n - t.system.Icc_crypto.Keygen.t

(* A way to finish round k: either a notarized block, or a valid
   non-notarized block holding a full set of notarization shares. *)
type completion =
  | Already_notarized of Block.t * Types.cert
  | Combinable of Block.t * Icc_crypto.Multisig.share list

let round_completion t round =
  let keys = multi_get t.by_round round in
  let notarized =
    List.find_map
      (fun key ->
        if is_notarized t key then
          match (find_block t key, notarization_cert t key) with
          | Some b, Some c -> Some (Already_notarized (b, c))
          | _ -> None
        else None)
      keys
  in
  match notarized with
  | Some _ as r -> r
  | None ->
      List.find_map
        (fun key ->
          if
            is_valid t key
            && (not (is_notarized t key))
            && notar_share_count t key >= quorum t
          then
            match find_block t key with
            | Some b -> Some (Combinable (b, notar_shares t key))
            | None -> None
          else None)
        keys

(* Finalization subprotocol (Fig. 2): the smallest round above [kmax] that
   can be finished, either via a finalization certificate on a valid block
   or via a full set of finalization shares on a valid block. *)
type finalization_step =
  | Final_cert of Block.t * Types.cert
  | Final_combinable of Block.t * Icc_crypto.Multisig.share list

let finalization_step t ~kmax =
  let rec scan round =
    if round > t.max_round then None
    else
      let keys = multi_get t.by_round round in
      let hit =
        List.find_map
          (fun key ->
            if not (is_valid t key) then None
            else if is_finalized t key then
              match (find_block t key, finalization_cert t key) with
              | Some b, Some c -> Some (Final_cert (b, c))
              | _ -> None
            else if final_share_count t key >= quorum t then
              match find_block t key with
              | Some b -> Some (Final_combinable (b, final_shares t key))
              | None -> None
            else None)
          keys
      in
      match hit with Some _ as r -> r | None -> scan (round + 1)
  in
  scan (kmax + 1)
