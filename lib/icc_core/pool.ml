(* A party's message pool (paper §3.1, §3.4): the set of all messages it has
   received, indexed so the block-classification predicates — authentic,
   valid, notarized, finalized — can be evaluated incrementally.

   Every signature is verified on admission; messages failing verification
   are dropped.  Classification is monotone, so the pool maintains it by a
   promotion cascade: a block becomes valid when it is authentic and its
   parent is notarized; it becomes notarized/finalized when additionally a
   certificate is present.  Promoting a block re-examines its children.

   Large-n layout: all per-round state lives in a *ring of round slots*
   indexed by [round mod capacity] — flat records reused across rounds —
   instead of a constellation of per-key Hashtbls.  Within a slot, each
   (round, block-hash) key owns one [entry] record holding its block,
   authenticator, certificates, classification bits and share multisets, so
   every admission is one short scan over the slot's few entries plus O(1)
   field updates; per-signer deduplication of shares and beacon shares is a
   bitset / signer-indexed array rather than a list scan.  The ring grows
   (rebuilding into a doubled array) only when the live round window —
   [pruned_below .. newest admitted round] — outgrows the capacity, so with
   pruning enabled memory is proportional to the window, not the run.

   The per-round epoch caches survive, re-keyed to slots: each slot carries
   an epoch counter bumped on every admission or promotion touching its
   round, and the classification views ([valid_blocks], [notarized_blocks],
   [round_completion], the finalization scan) are cached against it.  A
   cache hit returns the value the uncached scan would recompute from
   unchanged state, so caching can never alter results — only skip rescans.
   [set_caching false] disables the caches so the benchmark harness can
   measure before/after. *)

type key = Types.round * Icc_crypto.Sha256.t

(* Per-signer share multiset: the share list keeps the legacy newest-first
   order (it is handed verbatim to [Multisig.combine] and the resync
   retransmitter), while the bitset answers the per-admission duplicate
   check in O(1).  Admitted signers are always in [1..n] ([verify_share]
   enforces it), so the bitset is complete. *)
type shareset = {
  mutable ss_items : Icc_crypto.Multisig.share list; (* newest first *)
  mutable ss_count : int;
  ss_seen : Bytes.t; (* signer-indexed presence bits, 1-based *)
}

(* A beacon share slot.  Shares are only verifiable once the previous
   beacon value is known, so a slot may hold an as-yet-unverified share;
   [be_verified] is flipped (or the entry evicted) the first time a
   verifier is available.  See {!add_beacon_share}. *)
type beacon_entry = {
  mutable be_share : Icc_crypto.Threshold_vuf.signature_share;
  mutable be_verified : bool;
}

(* Everything the pool knows about one (round, block-hash) key. *)
type entry = {
  e_hash : Icc_crypto.Sha256.t;
  mutable e_block : Block.t option;
  mutable e_auth : Icc_crypto.Schnorr.signature option;
  mutable e_notar_cert : Types.cert option;
  mutable e_final_cert : Types.cert option;
  mutable e_notar_shares : shareset option; (* allocated on first share *)
  mutable e_final_shares : shareset option;
  mutable e_valid : bool;
  mutable e_notarized : bool;
  mutable e_finalized : bool;
}

(* A way to finish round k: either a notarized block, or a valid
   non-notarized block holding a full set of notarization shares. *)
type completion =
  | Already_notarized of Block.t * Types.cert
  | Combinable of Block.t * Icc_crypto.Multisig.share list

type finalization_step =
  | Final_cert of Block.t * Types.cert
  | Final_combinable of Block.t * Icc_crypto.Multisig.share list

(* One round's state.  [s_round = -1] marks a free slot.  [s_blocks] lists
   the entries holding blocks in admission order, newest first — exactly
   the enumeration order the old per-round key lists had, which the
   classification views, completion scan and resync retransmitter all
   inherit (so refactoring cannot reorder any observable list). *)
type slot = {
  mutable s_round : int;
  mutable s_entries : entry list; (* newest-created first *)
  mutable s_blocks : entry list; (* block admission order, newest first *)
  mutable s_beacon : beacon_entry option array; (* by signer; [||] until used *)
  mutable s_beacon_list : beacon_entry list; (* admission order, newest first *)
  mutable s_epoch : int;
  mutable s_valid_cache : (int * Block.t list) option;
  mutable s_notarized_cache : (int * Block.t list) option;
  mutable s_completion_cache : (int * completion option) option;
  mutable s_fin_cache : (int * finalization_step option) option;
}

type t = {
  system : Icc_crypto.Keygen.system;
  payload_valid : Block.t -> bool;
  mutable slots : slot array; (* the ring; length is the capacity *)
  mutable max_round : Types.round;
  mutable pruned_below : Types.round;
}

(* Â§3.5 toggle, Atomic so a parallel pool reader sees a coherent value;
   discipline: flip only while single-domain (snapshot-at-spawn,
   DESIGN.md Â§3.9). *)
let caching = Atomic.make true
let set_caching on = Atomic.set caching on
let caching_enabled () = Atomic.get caching

let fresh_slot () =
  {
    s_round = -1;
    s_entries = [];
    s_blocks = [];
    s_beacon = [||];
    s_beacon_list = [];
    s_epoch = 0;
    s_valid_cache = None;
    s_notarized_cache = None;
    s_completion_cache = None;
    s_fin_cache = None;
  }

let initial_capacity = 16

let create ?(payload_valid = fun _ -> true) system =
  {
    system;
    payload_valid;
    slots = Array.init initial_capacity (fun _ -> fresh_slot ());
    max_round = 0;
    pruned_below = 0;
  }

(* --- ring management ---------------------------------------------------- *)

let clear_slot s =
  s.s_round <- -1;
  s.s_entries <- [];
  s.s_blocks <- [];
  if Array.length s.s_beacon > 0 then
    Array.fill s.s_beacon 0 (Array.length s.s_beacon) None;
  s.s_beacon_list <- [];
  s.s_epoch <- 0;
  s.s_valid_cache <- None;
  s.s_notarized_cache <- None;
  s.s_completion_cache <- None;
  s.s_fin_cache <- None

let find_slot t round =
  if round < 0 then None
  else
    let s = t.slots.(round mod Array.length t.slots) in
    if s.s_round = round then Some s else None

(* Double the ring until every live round lands on a distinct index.  Live
   rounds are distinct integers, so any capacity larger than their span
   works; the loop terminates after O(log span) attempts. *)
let grow t =
  let live =
    Array.to_list t.slots |> List.filter (fun s -> s.s_round >= 0)
  in
  let rec build cap =
    let arr = Array.init cap (fun _ -> fresh_slot ()) in
    let ok =
      List.for_all
        (fun s ->
          let i = s.s_round mod cap in
          if arr.(i).s_round >= 0 then false
          else begin
            arr.(i) <- s;
            true
          end)
        live
    in
    if ok then arr else build (2 * cap)
  in
  t.slots <- build (2 * Array.length t.slots)

(* The slot for [round], claiming (or recycling a pruned) slot on demand.
   Callers guarantee [round >= t.pruned_below >= 0]. *)
let rec claim t round =
  let s = t.slots.(round mod Array.length t.slots) in
  if s.s_round = round then s
  else if s.s_round < t.pruned_below then begin
    (* free (-1) or holds only discardable pruned state *)
    clear_slot s;
    s.s_round <- round;
    s
  end
  else begin
    grow t;
    claim t round
  end

let bump s = s.s_epoch <- s.s_epoch + 1

(* --- per-slot lookups --------------------------------------------------- *)

let find_entry s h =
  List.find_opt (fun e -> Icc_crypto.Sha256.equal e.e_hash h) s.s_entries

let entry_of t (round, h) =
  match find_slot t round with None -> None | Some s -> find_entry s h

let find_or_create_entry s h =
  match find_entry s h with
  | Some e -> e
  | None ->
      let e =
        {
          e_hash = h;
          e_block = None;
          e_auth = None;
          e_notar_cert = None;
          e_final_cert = None;
          e_notar_shares = None;
          e_final_shares = None;
          e_valid = false;
          e_notarized = false;
          e_finalized = false;
        }
      in
      s.s_entries <- e :: s.s_entries;
      e

let new_shareset n = { ss_items = []; ss_count = 0; ss_seen = Bytes.make ((n lsr 3) + 1) '\000' }

let ss_mem ss signer =
  Char.code (Bytes.get ss.ss_seen (signer lsr 3)) land (1 lsl (signer land 7))
  <> 0

let ss_add ss signer share =
  Bytes.set ss.ss_seen (signer lsr 3)
    (Char.chr
       (Char.code (Bytes.get ss.ss_seen (signer lsr 3))
       lor (1 lsl (signer land 7))));
  ss.ss_items <- share :: ss.ss_items;
  ss.ss_count <- ss.ss_count + 1

(* --- classification queries ------------------------------------------- *)

let find_block t key =
  match entry_of t key with None -> None | Some e -> e.e_block

let is_authentic t key =
  match entry_of t key with None -> false | Some e -> Option.is_some e.e_auth

let authenticator t key =
  match entry_of t key with None -> None | Some e -> e.e_auth

let is_valid t key =
  match entry_of t key with None -> false | Some e -> e.e_valid

let is_notarized t ((round, h) as key) =
  (round = 0 && Icc_crypto.Sha256.equal h Block.root_hash)
  || match entry_of t key with None -> false | Some e -> e.e_notarized

let is_finalized t ((round, h) as key) =
  (round = 0 && Icc_crypto.Sha256.equal h Block.root_hash)
  || match entry_of t key with None -> false | Some e -> e.e_finalized

let blocks_of_round t round =
  match find_slot t round with
  | None -> []
  | Some s -> List.filter_map (fun e -> e.e_block) s.s_blocks

(* Epoch-stamped per-slot caches: the recompute path is the very same
   closure the uncached path runs, and a hit is only served while the
   slot's state is untouched, so cached and uncached answers are always
   identical. *)

let compute_valid s =
  List.filter_map
    (fun e -> if e.e_valid then e.e_block else None)
    s.s_blocks

let valid_blocks t round =
  match find_slot t round with
  | None -> []
  | Some s ->
      if not (Atomic.get caching) then compute_valid s
      else (
        match s.s_valid_cache with
        | Some (ep, v) when ep = s.s_epoch -> v
        | Some _ | None ->
            let v = compute_valid s in
            s.s_valid_cache <- Some (s.s_epoch, v);
            v)

let compute_notarized s =
  List.filter_map
    (fun e -> if e.e_notarized then e.e_block else None)
    s.s_blocks

let notarized_blocks t round =
  match find_slot t round with
  | None -> []
  | Some s ->
      if not (Atomic.get caching) then compute_notarized s
      else (
        match s.s_notarized_cache with
        | Some (ep, v) when ep = s.s_epoch -> v
        | Some _ | None ->
            let v = compute_notarized s in
            s.s_notarized_cache <- Some (s.s_epoch, v);
            v)

let notarization_cert t key =
  match entry_of t key with None -> None | Some e -> e.e_notar_cert

let finalization_cert t key =
  match entry_of t key with None -> None | Some e -> e.e_final_cert

let notar_share_count t key =
  match entry_of t key with
  | None -> 0
  | Some e -> ( match e.e_notar_shares with None -> 0 | Some ss -> ss.ss_count)

let notar_shares t key =
  match entry_of t key with
  | None -> []
  | Some e -> (
      match e.e_notar_shares with None -> [] | Some ss -> ss.ss_items)

let final_share_count t key =
  match entry_of t key with
  | None -> 0
  | Some e -> ( match e.e_final_shares with None -> 0 | Some ss -> ss.ss_count)

let final_shares t key =
  match entry_of t key with
  | None -> []
  | Some e -> (
      match e.e_final_shares with None -> [] | Some ss -> ss.ss_items)

let beacon_shares t round =
  match find_slot t round with
  | None -> []
  | Some s -> List.map (fun e -> e.be_share) s.s_beacon_list

let max_round t = t.max_round

(* --- promotion cascade ------------------------------------------------ *)

let rec promote_entry t ~round s e =
  match e.e_block with
  | None -> ()
  | Some b ->
      if
        (not e.e_valid)
        && Option.is_some e.e_auth
        && is_notarized t (round - 1, b.Block.parent_hash)
        && t.payload_valid b
      then begin
        e.e_valid <- true;
        bump s
      end;
      if e.e_valid then begin
        let newly_notarized =
          (not e.e_notarized) && Option.is_some e.e_notar_cert
        in
        if newly_notarized then begin
          e.e_notarized <- true;
          bump s
        end;
        if (not e.e_finalized) && Option.is_some e.e_final_cert then begin
          e.e_finalized <- true;
          bump s
        end;
        if newly_notarized then begin
          (* Children all live in round + 1 (validity pins a child to the
             round right above its parent), in that slot's block order. *)
          let h = Block.hash b in
          match find_slot t (round + 1) with
          | None -> ()
          | Some s' ->
              List.iter
                (fun ce ->
                  match ce.e_block with
                  | Some cb when Icc_crypto.Sha256.equal cb.Block.parent_hash h
                    ->
                      promote_entry t ~round:(round + 1) s' ce
                  | _ -> ())
                s'.s_blocks
        end
      end

(* --- admission -------------------------------------------------------- *)
(* Each [add_*] returns true when the pool gained information.  Admissions
   below the prune horizon are rejected: those rounds are finalized and
   discarded, and re-admitting them would leak storage forever (the GC
   never revisits a pruned round).  Nothing is allocated for a message
   that fails verification. *)

let add_block t (b : Block.t) =
  Icc_obs.Profile.span "pool.admit" @@ fun () ->
  let round = b.Block.round in
  if round < t.pruned_below || round < 0 then false
  else
    let s = claim t round in
    let h = Block.hash b in
    let e = find_or_create_entry s h in
    if Option.is_some e.e_block then false
    else begin
      e.e_block <- Some b;
      s.s_blocks <- e :: s.s_blocks;
      if round > t.max_round then t.max_round <- round;
      bump s;
      promote_entry t ~round s e;
      true
    end

let add_authenticator t ~round ~proposer ~block_hash signature =
  Icc_obs.Profile.span "pool.admit" @@ fun () ->
  if round < t.pruned_below || round < 0 then false
  else
    let existing = entry_of t (round, block_hash) in
    match existing with
    | Some e when Option.is_some e.e_auth -> false
    | _ ->
        if
          proposer >= 1
          && proposer <= t.system.Icc_crypto.Keygen.n
          && Icc_crypto.Schnorr.verify
               t.system.Icc_crypto.Keygen.auth_pub.(proposer - 1)
               (Types.authenticator_text ~round ~proposer ~block_hash)
               signature
        then begin
          let s = claim t round in
          let e = find_or_create_entry s block_hash in
          e.e_auth <- Some signature;
          bump s;
          promote_entry t ~round s e;
          true
        end
        else false

let verify_cert t ~text (c : Types.cert) =
  Icc_crypto.Multisig.verify
    (match text with
    | `Notarization ->
        t.system.Icc_crypto.Keygen.notary
    | `Finalization -> t.system.Icc_crypto.Keygen.final)
    (match text with
    | `Notarization ->
        Types.notarization_text ~round:c.Types.c_round ~proposer:c.Types.c_proposer
          ~block_hash:c.Types.c_block_hash
    | `Finalization ->
        Types.finalization_text ~round:c.Types.c_round ~proposer:c.Types.c_proposer
          ~block_hash:c.Types.c_block_hash)
    c.Types.c_multisig

let add_notarization t (c : Types.cert) =
  Icc_obs.Profile.span "pool.admit" @@ fun () ->
  let round = c.Types.c_round in
  if round < t.pruned_below || round < 0 then false
  else
    match entry_of t (round, c.Types.c_block_hash) with
    | Some e when Option.is_some e.e_notar_cert -> false
    | _ ->
        if verify_cert t ~text:`Notarization c then begin
          let s = claim t round in
          let e = find_or_create_entry s c.Types.c_block_hash in
          e.e_notar_cert <- Some c;
          bump s;
          promote_entry t ~round s e;
          true
        end
        else false

let add_finalization t (c : Types.cert) =
  Icc_obs.Profile.span "pool.admit" @@ fun () ->
  let round = c.Types.c_round in
  if round < t.pruned_below || round < 0 then false
  else
    match entry_of t (round, c.Types.c_block_hash) with
    | Some e when Option.is_some e.e_final_cert -> false
    | _ ->
        if verify_cert t ~text:`Finalization c then begin
          let s = claim t round in
          let e = find_or_create_entry s c.Types.c_block_hash in
          e.e_final_cert <- Some c;
          bump s;
          promote_entry t ~round s e;
          true
        end
        else false

let add_share t ~kind (s : Types.share_msg) =
  Icc_obs.Profile.span "pool.admit" @@ fun () ->
  let round = s.Types.s_round in
  let params, text =
    match kind with
    | `Notarization ->
        ( t.system.Icc_crypto.Keygen.notary,
          Types.notarization_text ~round ~proposer:s.Types.s_proposer
            ~block_hash:s.Types.s_block_hash )
    | `Finalization ->
        ( t.system.Icc_crypto.Keygen.final,
          Types.finalization_text ~round ~proposer:s.Types.s_proposer
            ~block_hash:s.Types.s_block_hash )
  in
  let share = s.Types.s_share in
  let signer = share.Icc_crypto.Multisig.signer in
  let sharesets e =
    match kind with
    | `Notarization -> e.e_notar_shares
    | `Finalization -> e.e_final_shares
  in
  let already =
    round < t.pruned_below || round < 0
    ||
    match entry_of t (round, s.Types.s_block_hash) with
    | None -> false
    | Some e -> (
        match sharesets e with
        | None -> false
        | Some ss ->
            signer >= 1
            && signer <= t.system.Icc_crypto.Keygen.n
            && ss_mem ss signer)
  in
  if already then false
  else if Icc_crypto.Multisig.verify_share params text share then begin
    let slot = claim t round in
    let e = find_or_create_entry slot s.Types.s_block_hash in
    let ss =
      match sharesets e with
      | Some ss -> ss
      | None ->
          let ss = new_shareset t.system.Icc_crypto.Keygen.n in
          (match kind with
          | `Notarization -> e.e_notar_shares <- Some ss
          | `Finalization -> e.e_final_shares <- Some ss);
          ss
    in
    ss_add ss signer share;
    bump slot;
    true
  end
  else false

let add_notarization_share t s = add_share t ~kind:`Notarization s
let add_finalization_share t s = add_share t ~kind:`Finalization s

(* Beacon-share storage: a signer-indexed array answers the slot-discipline
   lookup in O(1) for in-range signers; out-of-range signers (possible only
   on the unverified path) fall back to a scan of the admission list. *)

let beacon_lookup t s signer =
  let n = t.system.Icc_crypto.Keygen.n in
  if signer >= 1 && signer <= n then
    if Array.length s.s_beacon = 0 then None else s.s_beacon.(signer)
  else
    List.find_opt
      (fun e -> e.be_share.Icc_crypto.Threshold_vuf.signer = signer)
      s.s_beacon_list

let beacon_store t s signer entry =
  let n = t.system.Icc_crypto.Keygen.n in
  if signer >= 1 && signer <= n then begin
    if Array.length s.s_beacon = 0 then s.s_beacon <- Array.make (n + 1) None;
    s.s_beacon.(signer) <- Some entry
  end;
  s.s_beacon_list <- entry :: s.s_beacon_list

(* Beacon shares become verifiable only once the previous beacon value is
   known, so the caller passes [?verify] when it has one.  The signer slot
   discipline guards against spoofing (a Byzantine party replaying garbage
   under an honest signer id to block the genuine share):

   - verifier available, slot empty: admit iff the share verifies;
   - verifier available, slot holds an unverified share: re-check the
     occupant first — if it verifies, mark it and report no new
     information (the usual duplicate case); if it is garbage, evict it
     and admit the newcomer iff it verifies;
   - no verifier yet: admit unverified / dedup by signer as before;
     {!verified_beacon_shares} evicts any garbage as soon as a verifier
     exists, freeing the slot for a genuine retransmission. *)
let add_beacon_share t ~round ?verify
    (share : Icc_crypto.Threshold_vuf.signature_share) =
  Icc_obs.Profile.span "pool.admit" @@ fun () ->
  if round < t.pruned_below || round < 0 then false
  else
    let signer = share.Icc_crypto.Threshold_vuf.signer in
    let existing =
      match find_slot t round with
      | None -> None
      | Some s -> beacon_lookup t s signer
    in
    match (existing, verify) with
    | Some e, _ when e.be_verified -> false
    | Some e, Some verify ->
        if verify e.be_share then begin
          e.be_verified <- true;
          false
        end
        else if verify share then begin
          (* evict the spoofed occupant, in place *)
          e.be_share <- share;
          e.be_verified <- true;
          true
        end
        else false
    | Some _, None -> false
    | None, Some verify ->
        if verify share then begin
          let s = claim t round in
          beacon_store t s signer { be_share = share; be_verified = true };
          true
        end
        else false
    | None, None ->
        let s = claim t round in
        beacon_store t s signer { be_share = share; be_verified = false };
        true

let verified_beacon_shares ?verify_batch t ~round ~verify =
  match find_slot t round with
  | None -> []
  | Some s ->
      let n = t.system.Icc_crypto.Keygen.n in
      (* With a batch verifier, settle every unverified occupant in one
         call (in admission-list order) and mark the passes; the sweep
         below then evicts the failures without re-verifying.  Verdicts
         equal the per-share path's, so the kept list — and every trace
         byte downstream — is identical. *)
      let batched =
        match verify_batch with
        | None -> false
        | Some vb ->
            (match List.filter (fun e -> not e.be_verified) s.s_beacon_list with
            | [] -> ()
            | todo ->
                List.iter2
                  (fun e ok -> if ok then e.be_verified <- true)
                  todo
                  (vb (List.map (fun e -> e.be_share) todo)));
            true
      in
      let kept =
        List.filter
          (fun e ->
            if e.be_verified then true
            else if (not batched) && verify e.be_share then begin
              e.be_verified <- true;
              true
            end
            else begin
              (* evicted: free the signer slot for a genuine retransmission *)
              let signer = e.be_share.Icc_crypto.Threshold_vuf.signer in
              if signer >= 1 && signer <= n && Array.length s.s_beacon > 0 then
                s.s_beacon.(signer) <- None;
              false
            end)
          s.s_beacon_list
      in
      s.s_beacon_list <- kept;
      List.map (fun e -> e.be_share) kept

(* --- garbage collection ------------------------------------------------ *)

let fold_live t f acc =
  Array.fold_left (fun acc s -> if s.s_round >= 0 then f acc s else acc) acc t.slots

let stored_blocks t =
  fold_live t (fun acc s -> acc + List.length s.s_blocks) 0

let table_sizes t =
  let live = fold_live t (fun acc _ -> acc + 1) 0 in
  let entries = fold_live t (fun acc s -> acc + List.length s.s_entries) 0 in
  let count f = fold_live t (fun acc s -> acc + f s) 0 in
  let count_entries f =
    count (fun s ->
        List.fold_left (fun acc e -> if f e then acc + 1 else acc) 0 s.s_entries)
  in
  let sum_shares which =
    count (fun s ->
        List.fold_left
          (fun acc e ->
            match which e with None -> acc | Some ss -> acc + ss.ss_count)
          0 s.s_entries)
  in
  [
    ("ring_capacity", Array.length t.slots);
    ("live_slots", live);
    ("entries", entries);
    ("blocks", stored_blocks t);
    ("authentic", count_entries (fun e -> Option.is_some e.e_auth));
    ("notar_shares", sum_shares (fun e -> e.e_notar_shares));
    ("notar_certs", count_entries (fun e -> Option.is_some e.e_notar_cert));
    ("final_shares", sum_shares (fun e -> e.e_final_shares));
    ("final_certs", count_entries (fun e -> Option.is_some e.e_final_cert));
    ("beacon_shares", count (fun s -> List.length s.s_beacon_list));
    ("valid", count_entries (fun e -> e.e_valid));
    ("notarized", count_entries (fun e -> e.e_notarized));
    ("finalized", count_entries (fun e -> e.e_finalized));
  ]

(* Discard all per-round state for rounds below [below] (paper §3.1: "the
   protocol can be optimized so that messages that are no longer relevant
   may [be] discarded", with checkpointing as in PBFT).  Safe once every
   round below the horizon is finalized: new blocks only ever extend
   notarized blocks at the current frontier, and Fig. 2 only outputs
   segments above kmax.

   The sweep is one pass over the ring in index order — deterministic by
   construction, with no Hashtbl iteration anywhere — and clears whole
   slots, including entries whose block never arrived and beacon shares
   for rounds holding no blocks.  [pruned_below] then keeps pruned rounds
   from being re-admitted. *)
let prune t ~below =
  if below > t.pruned_below then t.pruned_below <- below;
  Array.iter
    (fun s -> if s.s_round >= 0 && s.s_round < below then clear_slot s)
    t.slots

(* --- resync retransmission --------------------------------------------- *)

let beacon_share_msgs t ~round =
  List.map
    (fun (sh : Icc_crypto.Threshold_vuf.signature_share) ->
      Message.Beacon_share
        {
          b_round = round;
          b_signer = sh.Icc_crypto.Threshold_vuf.signer;
          b_share = sh;
        })
    (beacon_shares t round)

(* Everything this pool can re-send for one round, as the original wire
   messages, so a lagging peer admits them through the ordinary verified
   path.  Proposal bundles are capped at two per round (one honest block
   plus at most one equivocation suffices to unblock any peer); shares are
   resent only where no certificate subsumes them, and only for blocks we
   hold (the share text needs the proposer, which only the block names). *)
let retransmit_set t ~round =
  let blocks = match find_slot t round with None -> [] | Some s -> s.s_blocks in
  let proposals =
    List.filteri
      (fun i _ -> i < 2)
      (List.filter_map
         (fun e ->
           match (e.e_block, e.e_auth) with
           | Some b, Some auth ->
               if round = 1 then
                 Some
                   (Message.Proposal
                      {
                        Message.p_block = b;
                        p_authenticator = auth;
                        p_parent_cert = None;
                      })
               else begin
                 match notarization_cert t (round - 1, b.Block.parent_hash) with
                 | Some cert ->
                     Some
                       (Message.Proposal
                          {
                            Message.p_block = b;
                            p_authenticator = auth;
                            p_parent_cert = Some cert;
                          })
                 | None -> None (* cannot form a well-formed bundle yet *)
               end
           | _ -> None)
         blocks)
  in
  let certs_and_shares which_cert which_shares mk_cert mk_share =
    List.concat_map
      (fun e ->
        match which_cert e with
        | Some cert -> [ mk_cert cert ]
        | None -> (
            match (e.e_block, which_shares e) with
            | Some b, Some ss ->
                List.map
                  (fun share ->
                    mk_share
                      {
                        Types.s_round = round;
                        s_proposer = b.Block.proposer;
                        s_block_hash = e.e_hash;
                        s_share = share;
                      })
                  ss.ss_items
            | _ -> []))
      blocks
  in
  let notar =
    certs_and_shares
      (fun e -> e.e_notar_cert)
      (fun e -> e.e_notar_shares)
      (fun c -> Message.Notarization c)
      (fun s -> Message.Notarization_share s)
  in
  let final =
    certs_and_shares
      (fun e -> e.e_final_cert)
      (fun e -> e.e_final_shares)
      (fun c -> Message.Finalization c)
      (fun s -> Message.Finalization_share s)
  in
  proposals @ notar @ final @ beacon_share_msgs t ~round

(* --- condition-(a) and finalization-subprotocol queries ---------------- *)

let quorum t = t.system.Icc_crypto.Keygen.n - t.system.Icc_crypto.Keygen.t

let compute_round_completion t s =
  let notarized =
    List.find_map
      (fun e ->
        if e.e_notarized then
          match (e.e_block, e.e_notar_cert) with
          | Some b, Some c -> Some (Already_notarized (b, c))
          | _ -> None
        else None)
      s.s_blocks
  in
  match notarized with
  | Some _ as r -> r
  | None ->
      List.find_map
        (fun e ->
          if
            e.e_valid
            && (not e.e_notarized)
            && (match e.e_notar_shares with
               | None -> false
               | Some ss -> ss.ss_count >= quorum t)
          then
            match e.e_block with
            | Some b ->
                let shares =
                  match e.e_notar_shares with
                  | Some ss -> ss.ss_items
                  | None -> []
                in
                Some (Combinable (b, shares))
            | None -> None
          else None)
        s.s_blocks

let round_completion t round =
  match find_slot t round with
  | None -> None
  | Some s ->
      if not (Atomic.get caching) then compute_round_completion t s
      else (
        match s.s_completion_cache with
        | Some (ep, v) when ep = s.s_epoch -> v
        | Some _ | None ->
            let v = compute_round_completion t s in
            s.s_completion_cache <- Some (s.s_epoch, v);
            v)

(* One round's contribution to the Fig. 2 scan, cacheable per round. *)
let compute_fin_hit t s =
  List.find_map
    (fun e ->
      if not e.e_valid then None
      else if e.e_finalized then
        match (e.e_block, e.e_final_cert) with
        | Some b, Some c -> Some (Final_cert (b, c))
        | _ -> None
      else if
        match e.e_final_shares with
        | None -> false
        | Some ss -> ss.ss_count >= quorum t
      then
        match e.e_block with
        | Some b ->
            let shares =
              match e.e_final_shares with Some ss -> ss.ss_items | None -> []
            in
            Some (Final_combinable (b, shares))
        | None -> None
      else None)
    s.s_blocks

let fin_hit t round =
  match find_slot t round with
  | None -> None
  | Some s ->
      if not (Atomic.get caching) then compute_fin_hit t s
      else (
        match s.s_fin_cache with
        | Some (ep, v) when ep = s.s_epoch -> v
        | Some _ | None ->
            let v = compute_fin_hit t s in
            s.s_fin_cache <- Some (s.s_epoch, v);
            v)

(* Finalization subprotocol (Fig. 2): the smallest round above [kmax] that
   can be finished, either via a finalization certificate on a valid block
   or via a full set of finalization shares on a valid block. *)
let finalization_step t ~kmax =
  let rec scan round =
    if round > t.max_round then None
    else
      match fin_hit t round with Some _ as r -> r | None -> scan (round + 1)
  in
  scan (kmax + 1)
