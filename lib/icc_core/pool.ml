(* A party's message pool (paper §3.1, §3.4): the set of all messages it has
   received, indexed so the block-classification predicates — authentic,
   valid, notarized, finalized — can be evaluated incrementally.

   Every signature is verified on admission; messages failing verification
   are dropped.  Classification is monotone, so the pool maintains it by a
   promotion cascade: a block becomes valid when it is authentic and its
   parent is notarized; it becomes notarized/finalized when additionally a
   certificate is present.  Promoting a block re-examines its children.

   Hot-path indexing: share multisets carry an incrementally maintained
   count (no [List.length] per query), and the per-round classification
   views ([valid_blocks], [notarized_blocks], [round_completion], the
   finalization scan) are cached against a per-round epoch counter that is
   bumped on every admission or promotion touching that round.  A cache
   hit returns the value the uncached scan would recompute from unchanged
   state, so caching can never alter results — only skip rescans.
   [set_caching false] disables the caches so the benchmark harness can
   measure before/after. *)

type key = Types.round * Icc_crypto.Sha256.t

let compare_key ((r1, h1) : key) ((r2, h2) : key) =
  match Int.compare r1 r2 with
  | 0 -> Icc_crypto.Sha256.compare h1 h2
  | c -> c

(* A list plus its length, maintained on insert. *)
type 'a counted = {
  mutable items : 'a list;
  mutable count : int;
}

(* A beacon share slot.  Shares are only verifiable once the previous
   beacon value is known, so a slot may hold an as-yet-unverified share;
   [be_verified] is flipped (or the entry evicted) the first time a
   verifier is available.  See {!add_beacon_share}. *)
type beacon_entry = {
  mutable be_share : Icc_crypto.Threshold_vuf.signature_share;
  mutable be_verified : bool;
}

(* A way to finish round k: either a notarized block, or a valid
   non-notarized block holding a full set of notarization shares. *)
type completion =
  | Already_notarized of Block.t * Types.cert
  | Combinable of Block.t * Icc_crypto.Multisig.share list

type finalization_step =
  | Final_cert of Block.t * Types.cert
  | Final_combinable of Block.t * Icc_crypto.Multisig.share list

type t = {
  system : Icc_crypto.Keygen.system;
  payload_valid : Block.t -> bool;
  blocks : (key, Block.t) Hashtbl.t;
  by_round : (Types.round, key list ref) Hashtbl.t;
  children : (Icc_crypto.Sha256.t, key list ref) Hashtbl.t;
  authentic : (key, Icc_crypto.Schnorr.signature) Hashtbl.t;
  notar_shares : (key, Icc_crypto.Multisig.share counted) Hashtbl.t;
  notar_certs : (key, Types.cert) Hashtbl.t;
  final_shares : (key, Icc_crypto.Multisig.share counted) Hashtbl.t;
  final_certs : (key, Types.cert) Hashtbl.t;
  beacon_shares : (Types.round, beacon_entry list ref) Hashtbl.t;
  valid : (key, unit) Hashtbl.t;
  notarized : (key, unit) Hashtbl.t;
  finalized : (key, unit) Hashtbl.t;
  mutable max_round : Types.round;
  mutable pruned_below : Types.round;
  (* per-round mutation epochs and epoch-stamped query caches *)
  epochs : (Types.round, int) Hashtbl.t;
  valid_cache : (Types.round, int * Block.t list) Hashtbl.t;
  notarized_cache : (Types.round, int * Block.t list) Hashtbl.t;
  completion_cache : (Types.round, int * completion option) Hashtbl.t;
  fin_cache : (Types.round, int * finalization_step option) Hashtbl.t;
}

let caching = ref true
let set_caching on = caching := on
let caching_enabled () = !caching

let create ?(payload_valid = fun _ -> true) system =
  {
    system;
    payload_valid;
    blocks = Hashtbl.create 64;
    by_round = Hashtbl.create 64;
    children = Hashtbl.create 64;
    authentic = Hashtbl.create 64;
    notar_shares = Hashtbl.create 64;
    notar_certs = Hashtbl.create 64;
    final_shares = Hashtbl.create 64;
    final_certs = Hashtbl.create 64;
    beacon_shares = Hashtbl.create 64;
    valid = Hashtbl.create 64;
    notarized = Hashtbl.create 64;
    finalized = Hashtbl.create 64;
    max_round = 0;
    pruned_below = 0;
    epochs = Hashtbl.create 64;
    valid_cache = Hashtbl.create 64;
    notarized_cache = Hashtbl.create 64;
    completion_cache = Hashtbl.create 64;
    fin_cache = Hashtbl.create 64;
  }

let multi_add tbl k v =
  match Hashtbl.find_opt tbl k with
  | Some l -> l := v :: !l
  | None -> Hashtbl.add tbl k (ref [ v ])

let multi_get tbl k =
  match Hashtbl.find_opt tbl k with Some l -> !l | None -> []

let counted_add tbl k v =
  match Hashtbl.find_opt tbl k with
  | Some c ->
      c.items <- v :: c.items;
      c.count <- c.count + 1
  | None -> Hashtbl.add tbl k { items = [ v ]; count = 1 }

let counted_get tbl k =
  match Hashtbl.find_opt tbl k with Some c -> c.items | None -> []

let counted_count tbl k =
  match Hashtbl.find_opt tbl k with Some c -> c.count | None -> 0

(* --- epochs and caches -------------------------------------------------- *)

let epoch t round =
  match Hashtbl.find_opt t.epochs round with Some e -> e | None -> 0

(* Bump a round's epoch, invalidating its cached views. *)
let touch t round = Hashtbl.replace t.epochs round (epoch t round + 1)

(* Serve [compute round] through an epoch-stamped per-round cache.  The
   recompute path is the very same closure the uncached path runs, and a
   hit is only served while the round's state is untouched, so cached and
   uncached answers are always identical. *)
let cached t cache round compute =
  if not !caching then compute round
  else
    let ep = epoch t round in
    match Hashtbl.find_opt cache round with
    | Some (e, v) when e = ep -> v
    | Some _ | None ->
        let v = compute round in
        Hashtbl.replace cache round (ep, v);
        v

(* --- classification queries ------------------------------------------- *)

let find_block t key = Hashtbl.find_opt t.blocks key
let is_authentic t key = Hashtbl.mem t.authentic key
let authenticator t key = Hashtbl.find_opt t.authentic key
let is_valid t key = Hashtbl.mem t.valid key

let is_notarized t ((round, h) as key) =
  (round = 0 && Icc_crypto.Sha256.equal h Block.root_hash)
  || Hashtbl.mem t.notarized key

let is_finalized t ((round, h) as key) =
  (round = 0 && Icc_crypto.Sha256.equal h Block.root_hash)
  || Hashtbl.mem t.finalized key

let blocks_of_round t round =
  List.filter_map (find_block t) (multi_get t.by_round round)

let valid_blocks t round =
  cached t t.valid_cache round (fun round ->
      List.filter_map
        (fun key -> if is_valid t key then find_block t key else None)
        (multi_get t.by_round round))

let notarized_blocks t round =
  cached t t.notarized_cache round (fun round ->
      List.filter_map
        (fun key -> if is_notarized t key then find_block t key else None)
        (multi_get t.by_round round))

let notarization_cert t key = Hashtbl.find_opt t.notar_certs key
let finalization_cert t key = Hashtbl.find_opt t.final_certs key
let notar_share_count t key = counted_count t.notar_shares key
let notar_shares t key = counted_get t.notar_shares key
let final_share_count t key = counted_count t.final_shares key
let final_shares t key = counted_get t.final_shares key

let beacon_shares t round =
  List.map (fun e -> e.be_share) (multi_get t.beacon_shares round)

let max_round t = t.max_round

(* --- promotion cascade ------------------------------------------------ *)

let rec promote t ((round, _) as key) =
  match find_block t key with
  | None -> ()
  | Some b ->
      if
        (not (is_valid t key))
        && is_authentic t key
        && is_notarized t (round - 1, b.Block.parent_hash)
        && t.payload_valid b
      then begin
        Hashtbl.replace t.valid key ();
        touch t round
      end;
      if is_valid t key then begin
        let newly_notarized =
          (not (is_notarized t key)) && Hashtbl.mem t.notar_certs key
        in
        if newly_notarized then begin
          Hashtbl.replace t.notarized key ();
          touch t round
        end;
        if (not (is_finalized t key)) && Hashtbl.mem t.final_certs key then begin
          Hashtbl.replace t.finalized key ();
          touch t round
        end;
        if newly_notarized then
          List.iter (promote t)
            (multi_get t.children (Block.hash b))
      end

(* --- admission -------------------------------------------------------- *)
(* Each [add_*] returns true when the pool gained information.  Admissions
   below the prune horizon are rejected: those rounds are finalized and
   discarded, and re-admitting them would leak storage forever (the GC
   never revisits a pruned round). *)

let add_block t (b : Block.t) =
  let key = (b.Block.round, Block.hash b) in
  if b.Block.round < t.pruned_below || Hashtbl.mem t.blocks key then false
  else begin
    Hashtbl.replace t.blocks key b;
    multi_add t.by_round b.Block.round key;
    multi_add t.children b.Block.parent_hash key;
    if b.Block.round > t.max_round then t.max_round <- b.Block.round;
    touch t b.Block.round;
    promote t key;
    true
  end

let add_authenticator t ~round ~proposer ~block_hash signature =
  let key = (round, block_hash) in
  if round < t.pruned_below || Hashtbl.mem t.authentic key then false
  else if
    proposer >= 1
    && proposer <= t.system.Icc_crypto.Keygen.n
    && Icc_crypto.Schnorr.verify
         t.system.Icc_crypto.Keygen.auth_pub.(proposer - 1)
         (Types.authenticator_text ~round ~proposer ~block_hash)
         signature
  then begin
    Hashtbl.replace t.authentic key signature;
    touch t round;
    promote t key;
    true
  end
  else false

let verify_cert t ~text (c : Types.cert) =
  Icc_crypto.Multisig.verify
    (match text with
    | `Notarization ->
        t.system.Icc_crypto.Keygen.notary
    | `Finalization -> t.system.Icc_crypto.Keygen.final)
    (match text with
    | `Notarization ->
        Types.notarization_text ~round:c.Types.c_round ~proposer:c.Types.c_proposer
          ~block_hash:c.Types.c_block_hash
    | `Finalization ->
        Types.finalization_text ~round:c.Types.c_round ~proposer:c.Types.c_proposer
          ~block_hash:c.Types.c_block_hash)
    c.Types.c_multisig

let add_notarization t (c : Types.cert) =
  let key = (c.Types.c_round, c.Types.c_block_hash) in
  if c.Types.c_round < t.pruned_below || Hashtbl.mem t.notar_certs key then
    false
  else if verify_cert t ~text:`Notarization c then begin
    Hashtbl.replace t.notar_certs key c;
    touch t c.Types.c_round;
    promote t key;
    true
  end
  else false

let add_finalization t (c : Types.cert) =
  let key = (c.Types.c_round, c.Types.c_block_hash) in
  if c.Types.c_round < t.pruned_below || Hashtbl.mem t.final_certs key then
    false
  else if verify_cert t ~text:`Finalization c then begin
    Hashtbl.replace t.final_certs key c;
    touch t c.Types.c_round;
    promote t key;
    true
  end
  else false

let add_share t ~kind (s : Types.share_msg) =
  let key = (s.Types.s_round, s.Types.s_block_hash) in
  let table, params, text =
    match kind with
    | `Notarization ->
        ( t.notar_shares,
          t.system.Icc_crypto.Keygen.notary,
          Types.notarization_text ~round:s.Types.s_round
            ~proposer:s.Types.s_proposer ~block_hash:s.Types.s_block_hash )
    | `Finalization ->
        ( t.final_shares,
          t.system.Icc_crypto.Keygen.final,
          Types.finalization_text ~round:s.Types.s_round
            ~proposer:s.Types.s_proposer ~block_hash:s.Types.s_block_hash )
  in
  let share = s.Types.s_share in
  let already =
    s.Types.s_round < t.pruned_below
    || List.exists
         (fun (sh : Icc_crypto.Multisig.share) ->
           sh.Icc_crypto.Multisig.signer = share.Icc_crypto.Multisig.signer)
         (counted_get table key)
  in
  if already then false
  else if Icc_crypto.Multisig.verify_share params text share then begin
    counted_add table key share;
    touch t s.Types.s_round;
    true
  end
  else false

let add_notarization_share t s = add_share t ~kind:`Notarization s
let add_finalization_share t s = add_share t ~kind:`Finalization s

(* Beacon shares become verifiable only once the previous beacon value is
   known, so the caller passes [?verify] when it has one.  The signer slot
   discipline guards against spoofing (a Byzantine party replaying garbage
   under an honest signer id to block the genuine share):

   - verifier available, slot empty: admit iff the share verifies;
   - verifier available, slot holds an unverified share: re-check the
     occupant first — if it verifies, mark it and report no new
     information (the usual duplicate case); if it is garbage, evict it
     and admit the newcomer iff it verifies;
   - no verifier yet: admit unverified / dedup by signer as before;
     {!verified_beacon_shares} evicts any garbage as soon as a verifier
     exists, freeing the slot for a genuine retransmission. *)
let add_beacon_share t ~round ?verify
    (share : Icc_crypto.Threshold_vuf.signature_share) =
  if round < t.pruned_below then false
  else
    let existing =
      List.find_opt
        (fun e ->
          e.be_share.Icc_crypto.Threshold_vuf.signer
          = share.Icc_crypto.Threshold_vuf.signer)
        (multi_get t.beacon_shares round)
    in
    match (existing, verify) with
    | Some e, _ when e.be_verified -> false
    | Some e, Some verify ->
        if verify e.be_share then begin
          e.be_verified <- true;
          false
        end
        else if verify share then begin
          (* evict the spoofed occupant, in place *)
          e.be_share <- share;
          e.be_verified <- true;
          true
        end
        else false
    | Some _, None -> false
    | None, Some verify ->
        if verify share then begin
          multi_add t.beacon_shares round { be_share = share; be_verified = true };
          true
        end
        else false
    | None, None ->
        multi_add t.beacon_shares round { be_share = share; be_verified = false };
        true

let verified_beacon_shares t ~round ~verify =
  match Hashtbl.find_opt t.beacon_shares round with
  | None -> []
  | Some l ->
      let kept =
        List.filter
          (fun e ->
            e.be_verified
            ||
            if verify e.be_share then begin
              e.be_verified <- true;
              true
            end
            else false)
          !l
      in
      l := kept;
      List.map (fun e -> e.be_share) kept

(* --- garbage collection ------------------------------------------------ *)

let stored_blocks t = Hashtbl.length t.blocks

let table_sizes t =
  [
    ("blocks", Hashtbl.length t.blocks);
    ("by_round", Hashtbl.length t.by_round);
    ("children", Hashtbl.length t.children);
    ("authentic", Hashtbl.length t.authentic);
    ("notar_shares", Hashtbl.length t.notar_shares);
    ("notar_certs", Hashtbl.length t.notar_certs);
    ("final_shares", Hashtbl.length t.final_shares);
    ("final_certs", Hashtbl.length t.final_certs);
    ("beacon_shares", Hashtbl.length t.beacon_shares);
    ("valid", Hashtbl.length t.valid);
    ("notarized", Hashtbl.length t.notarized);
    ("finalized", Hashtbl.length t.finalized);
    ("epochs", Hashtbl.length t.epochs);
    ("valid_cache", Hashtbl.length t.valid_cache);
    ("notarized_cache", Hashtbl.length t.notarized_cache);
    ("completion_cache", Hashtbl.length t.completion_cache);
    ("fin_cache", Hashtbl.length t.fin_cache);
  ]

(* Discard all per-round state for rounds below [below] (paper §3.1: "the
   protocol can be optimized so that messages that are no longer relevant
   may [be] discarded", with checkpointing as in PBFT).  Safe once every
   round below the horizon is finalized: new blocks only ever extend
   notarized blocks at the current frontier, and Fig. 2 only outputs
   segments above kmax.

   Every table is swept by its own keys, not via [by_round]: shares,
   certificates and authenticators can be admitted for block hashes whose
   block never arrived (so their keys never appear in [by_round]), and
   beacon shares can exist for rounds holding no blocks.  Sweeping only
   [by_round]-listed keys would leak all of those for the lifetime of the
   run.  [pruned_below] then keeps pruned rounds from being re-admitted. *)
let prune t ~below =
  if below > t.pruned_below then t.pruned_below <- below;
  (* Hashtbl.fold enumerates in bucket order; sort_uniq by the key so each
     sweep proceeds in one canonical order. *)
  let doomed_rounds tbl =
    Hashtbl.fold
      (fun round _ acc -> if round < below then round :: acc else acc)
      tbl []
    |> List.sort_uniq Int.compare
  in
  let doomed_keys tbl =
    Hashtbl.fold
      (fun ((round, _) as key) _ acc ->
        if round < below then key :: acc else acc)
      tbl []
    |> List.sort_uniq compare_key
  in
  let sweep_keys tbl = List.iter (Hashtbl.remove tbl) (doomed_keys tbl) in
  let sweep_rounds tbl = List.iter (Hashtbl.remove tbl) (doomed_rounds tbl) in
  (* children is keyed by parent hash: drop the entries rooted at each
     pruned block (its children) and the entry listing it as a child (its
     siblings — including lists keyed by a parent that never arrived). *)
  List.iter
    (fun ((_, h) as key) ->
      (match Hashtbl.find_opt t.blocks key with
      | Some b -> Hashtbl.remove t.children b.Block.parent_hash
      | None -> ());
      Hashtbl.remove t.children h)
    (doomed_keys t.blocks);
  sweep_keys t.blocks;
  sweep_keys t.authentic;
  sweep_keys t.notar_shares;
  sweep_keys t.notar_certs;
  sweep_keys t.final_shares;
  sweep_keys t.final_certs;
  sweep_keys t.valid;
  sweep_keys t.notarized;
  sweep_keys t.finalized;
  sweep_rounds t.by_round;
  sweep_rounds t.beacon_shares;
  sweep_rounds t.epochs;
  sweep_rounds t.valid_cache;
  sweep_rounds t.notarized_cache;
  sweep_rounds t.completion_cache;
  sweep_rounds t.fin_cache

(* --- resync retransmission --------------------------------------------- *)

let beacon_share_msgs t ~round =
  List.map
    (fun (sh : Icc_crypto.Threshold_vuf.signature_share) ->
      Message.Beacon_share
        {
          b_round = round;
          b_signer = sh.Icc_crypto.Threshold_vuf.signer;
          b_share = sh;
        })
    (beacon_shares t round)

(* Everything this pool can re-send for one round, as the original wire
   messages, so a lagging peer admits them through the ordinary verified
   path.  Proposal bundles are capped at two per round (one honest block
   plus at most one equivocation suffices to unblock any peer); shares are
   resent only where no certificate subsumes them, and only for blocks we
   hold (the share text needs the proposer, which only the block names). *)
let retransmit_set t ~round =
  let keys = multi_get t.by_round round in
  let proposals =
    List.filteri
      (fun i _ -> i < 2)
      (List.filter_map
         (fun key ->
           match (find_block t key, authenticator t key) with
           | Some b, Some auth ->
               let parent = (round - 1, b.Block.parent_hash) in
               if round = 1 then
                 Some
                   (Message.Proposal
                      {
                        Message.p_block = b;
                        p_authenticator = auth;
                        p_parent_cert = None;
                      })
               else begin
                 match Hashtbl.find_opt t.notar_certs parent with
                 | Some cert ->
                     Some
                       (Message.Proposal
                          {
                            Message.p_block = b;
                            p_authenticator = auth;
                            p_parent_cert = Some cert;
                          })
                 | None -> None (* cannot form a well-formed bundle yet *)
               end
           | _ -> None)
         keys)
  in
  let certs_and_shares which_certs which_shares mk_cert mk_share =
    List.concat_map
      (fun ((_, h) as key) ->
        match Hashtbl.find_opt which_certs key with
        | Some cert -> [ mk_cert cert ]
        | None -> (
            match find_block t key with
            | None -> []
            | Some b ->
                List.map
                  (fun share ->
                    mk_share
                      {
                        Types.s_round = round;
                        s_proposer = b.Block.proposer;
                        s_block_hash = h;
                        s_share = share;
                      })
                  (counted_get which_shares key)))
      keys
  in
  let notar =
    certs_and_shares t.notar_certs t.notar_shares
      (fun c -> Message.Notarization c)
      (fun s -> Message.Notarization_share s)
  in
  let final =
    certs_and_shares t.final_certs t.final_shares
      (fun c -> Message.Finalization c)
      (fun s -> Message.Finalization_share s)
  in
  proposals @ notar @ final @ beacon_share_msgs t ~round

(* --- condition-(a) and finalization-subprotocol queries ---------------- *)

let quorum t = t.system.Icc_crypto.Keygen.n - t.system.Icc_crypto.Keygen.t

let compute_round_completion t round =
  let keys = multi_get t.by_round round in
  let notarized =
    List.find_map
      (fun key ->
        if is_notarized t key then
          match (find_block t key, notarization_cert t key) with
          | Some b, Some c -> Some (Already_notarized (b, c))
          | _ -> None
        else None)
      keys
  in
  match notarized with
  | Some _ as r -> r
  | None ->
      List.find_map
        (fun key ->
          if
            is_valid t key
            && (not (is_notarized t key))
            && notar_share_count t key >= quorum t
          then
            match find_block t key with
            | Some b -> Some (Combinable (b, notar_shares t key))
            | None -> None
          else None)
        keys

let round_completion t round =
  cached t t.completion_cache round (compute_round_completion t)

(* One round's contribution to the Fig. 2 scan, cacheable per round. *)
let compute_fin_hit t round =
  let keys = multi_get t.by_round round in
  List.find_map
    (fun key ->
      if not (is_valid t key) then None
      else if is_finalized t key then
        match (find_block t key, finalization_cert t key) with
        | Some b, Some c -> Some (Final_cert (b, c))
        | _ -> None
      else if final_share_count t key >= quorum t then
        match find_block t key with
        | Some b -> Some (Final_combinable (b, final_shares t key))
        | None -> None
      else None)
    keys

let fin_hit t round = cached t t.fin_cache round (compute_fin_hit t)

(* Finalization subprotocol (Fig. 2): the smallest round above [kmax] that
   can be finished, either via a finalization certificate on a valid block
   or via a full set of finalization shares on a valid block. *)
let finalization_step t ~kmax =
  let rec scan round =
    if round > t.max_round then None
    else
      match fin_hit t round with Some _ as r -> r | None -> scan (round + 1)
  in
  scan (kmax + 1)
