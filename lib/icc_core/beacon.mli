(** A party's view of the random-beacon chain (paper §2.3, §3.2): R_0 is a
    fixed genesis value, R_k the unique threshold signature on a text
    binding k and R_{k-1}.  R_k seeds the round-k rank permutation; by
    uniqueness every party derives the same permutation. *)

type t

val create : Icc_crypto.Keygen.system -> Icc_crypto.Threshold_vuf.secret_share -> t

val known : t -> Types.round -> bool
(** Round 0 is always known. *)

val message_for_round : t -> Types.round -> string option
(** The text signed for round [k]; [None] while R_{k-1} is unknown. *)

val my_share : t -> Types.round -> Icc_crypto.Threshold_vuf.signature_share option
(** This party's beacon share for a round, when computable. *)

val share_verifier :
  t ->
  Types.round ->
  (Icc_crypto.Threshold_vuf.signature_share -> bool) option
(** The share verifier for a round, once R_{round-1} is known; [None] for
    out-of-range rounds or while the previous beacon is unknown.  Passed to
    [Pool.add_beacon_share] so spoofed shares are rejected at admission. *)

val try_compute : t -> Pool.t -> Types.round -> bool
(** Attempt to combine the round's beacon from the pool's shares.  Each
    share is verified at most once; shares that fail are evicted from the
    pool so their signer slot can be re-filled.  Returns whether the
    beacon for the round is (now) known. *)

val permutation : t -> Types.round -> int array option
(** [rank -> party] map; index 0 is the leader. *)

val rank_of : t -> Types.round -> Types.party_id -> Types.rank option
val leader : t -> Types.round -> Types.party_id option

val permutation_of_randomness : n:int -> Icc_crypto.Sha256.t -> int array
(** Exposed for testing: the Fisher–Yates permutation seeded by a beacon
    output. *)
