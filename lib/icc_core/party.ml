(* One ICC0 party: the Tree-Building Subprotocol (Fig. 1) and Finalization
   Subprotocol (Fig. 2), translated from the paper's blocking "wait for"
   style into an event-driven state machine.

   The translation: the guards of the wait-for alternatives (a)/(b)/(c) are
   re-evaluated (to a fixpoint) whenever the pool gains information or a
   delay-function timer edge passes.  All guard evaluations are monotone
   (rounds only advance; N, D, kmax only grow), so the fixpoint loop
   terminates.

   Byzantine behaviours are driven by the run's {!Icc_sim.Adversary}
   script: corrupt parties hold real keys and emit really-signed messages,
   and the adversary instance decides — per round, deterministically —
   whether this party equivocates, withholds shares, or sits inside a
   crash window. *)

type behavior = {
  crashed : bool; (* sends and processes nothing *)
  never_propose : bool; (* consistent failure: participates but never proposes *)
}

let honest = { crashed = false; never_propose = false }
let crashed = { honest with crashed = true }
let lazy_participant = { honest with never_propose = true }

type env = {
  config : Config.t;
  system : Icc_crypto.Keygen.system;
  engine : Icc_sim.Engine.t;
  send_broadcast : src:int -> Message.t -> unit;
      (* the paper's only communication primitive; the transport behind it
         is direct broadcast (ICC0), gossip (ICC1) or erasure-coded reliable
         broadcast (ICC2) *)
  send_unicast : src:int -> dst:int -> Message.t -> unit;
      (* used only by Byzantine behaviours for split delivery *)
  trace : Icc_sim.Trace.t;
      (* protocol milestones (round entry, proposal, notarization,
         finalization, beacon) are announced here; the run's metrics are a
         subscriber *)
  get_payload :
    pool:Pool.t -> parent:Block.t option -> round:int -> proposer:int ->
    Types.payload;
  on_output : party:int -> Block.t -> unit;
      (* called once per block, in commit order, as Fig. 2 outputs it *)
  adversary : Icc_sim.Adversary.t option;
      (* Byzantine strategy driver; None means every party follows the
         honest code path (modulo [behavior]'s crash/never-propose) *)
}

type t = {
  env : env;
  id : Types.party_id;
  keys : Icc_crypto.Keygen.party_keys;
  mutable behavior : behavior; (* mutable so runs can crash parties mid-way *)
  (* Adversary decisions latched at round entry (each drawn exactly once
     per round, so fixpoint re-evaluation never re-rolls them). *)
  mutable adv_equivocate : bool;
  mutable adv_noisy : bool;
  mutable adv_withhold_notar : bool;
  mutable adv_withhold_final : bool;
  pool : Pool.t;
  beacon : Beacon.t;
  mutable round : Types.round;
  mutable round_started : bool; (* beacon for [round] computed? *)
  mutable t0 : float;
  mutable n_shared : (Icc_crypto.Sha256.t * Types.rank) list; (* the set N *)
  mutable disqualified : Types.rank list; (* the set D *)
  mutable proposed : bool;
  mutable round_done : bool;
  mutable scheduled_ntry : Types.rank list; (* dedup for lazy timers *)
  mutable kmax : Types.round; (* finalization subprotocol cursor *)
  mutable output_log : Block.t list; (* committed blocks, newest first *)
  mutable rounds_finished : int;
  mutable delay_scale : float; (* adaptive delta_bnd multiplier (config.adaptive) *)
  mutable reported_errors : (Types.round * string) list;
      (* (round, what) pairs already announced as Protocol_error, so a
         condition re-evaluated every step reports each anomaly once *)
  (* Pool-resync sub-layer state (only used when config.resync is Some). *)
  mutable resync_peer : int; (* rotation cursor for summary targets *)
  mutable resync_interval : float; (* current (backed-off) summary interval *)
  mutable resync_last_round : Types.round; (* round seen at the last tick *)
}

let create env ~id ~keys ~behavior =
  {
    env;
    id;
    keys;
    behavior;
    adv_equivocate = false;
    adv_noisy = false;
    adv_withhold_notar = false;
    adv_withhold_final = false;
    pool = Pool.create env.system;
    beacon = Beacon.create env.system keys.Icc_crypto.Keygen.beacon_key;
    round = 1;
    round_started = false;
    t0 = 0.;
    n_shared = [];
    disqualified = [];
    proposed = false;
    round_done = false;
    scheduled_ntry = [];
    kmax = 0;
    output_log = [];
    rounds_finished = 0;
    delay_scale = 1.0;
    reported_errors = [];
    resync_peer = id;
    resync_interval = 0.;
    resync_last_round = 0;
  }

let output_chain p = List.rev p.output_log
let pool p = p.pool
let behavior p = p.behavior
let set_behavior p b = p.behavior <- b
let rounds_finished p = p.rounds_finished
let current_round p = p.round
let kmax p = p.kmax

(* --- sending helpers --------------------------------------------------- *)

let broadcast p msg = p.env.send_broadcast ~src:p.id msg
let unicast p ~dst msg = p.env.send_unicast ~src:p.id ~dst msg

let sign_notarization_share p ~(block : Block.t) =
  let block_hash = Block.hash block in
  let text =
    Types.notarization_text ~round:block.Block.round
      ~proposer:block.Block.proposer ~block_hash
  in
  Message.Notarization_share
    {
      Types.s_round = block.Block.round;
      s_proposer = block.Block.proposer;
      s_block_hash = block_hash;
      s_share =
        Icc_crypto.Multisig.sign_share p.env.system.Icc_crypto.Keygen.notary
          p.keys.Icc_crypto.Keygen.notary_key text;
    }

let sign_finalization_share p ~(block : Block.t) =
  let block_hash = Block.hash block in
  let text =
    Types.finalization_text ~round:block.Block.round
      ~proposer:block.Block.proposer ~block_hash
  in
  Message.Finalization_share
    {
      Types.s_round = block.Block.round;
      s_proposer = block.Block.proposer;
      s_block_hash = block_hash;
      s_share =
        Icc_crypto.Multisig.sign_share p.env.system.Icc_crypto.Keygen.final
          p.keys.Icc_crypto.Keygen.final_key text;
    }

let emit p ev =
  Icc_sim.Trace.emit p.env.trace ~time:(Icc_sim.Engine.now p.env.engine) ev

let now p = Icc_sim.Engine.now p.env.engine

(* A party is halted while its behavior says crashed or the adversary holds
   it inside a crash window (the crash-vs-Byzantine hybrid): it sends and
   processes nothing until the window ends and the runner's wake fires. *)
let halted p =
  p.behavior.crashed
  ||
  match p.env.adversary with
  | None -> false
  | Some a -> Icc_sim.Adversary.crashed_now a ~now:(now p) ~party:p.id

(* Announce a should-be-impossible protocol-layer condition as a traced,
   monitor-visible event (once per (round, what)) instead of asserting:
   a single adversarial edge case must not abort a whole simulation run. *)
let protocol_error p ~round ~what =
  if
    not
      (List.exists
         (fun (r, w) -> r = round && String.equal w what)
         p.reported_errors)
  then begin
    p.reported_errors <- (round, what) :: p.reported_errors;
    emit p (Icc_sim.Trace.Protocol_error { party = p.id; round; what })
  end

let broadcast_beacon_share p ~round =
  match Beacon.my_share p.beacon round with
  | None -> ()
  | Some share ->
      let withheld =
        match p.env.adversary with
        | None -> false
        | Some a ->
            Icc_sim.Adversary.withholds a ~now:(now p) ~party:p.id ~round
              Icc_sim.Adversary.Beacon
      in
      if withheld then
        (* Keep our own pipeline moving: a broadcast's self-copy is the
           sender's own pool admission, so a withheld share still lands
           there — it just never goes on the wire.  (Unicasting to self is
           NOT equivalent: under gossip, inject with dst = src re-publishes
           to the whole network.) *)
        ignore
          (Pool.add_beacon_share p.pool ~round
             ?verify:(Beacon.share_verifier p.beacon round)
             share)
      else begin
        emit p (Icc_sim.Trace.Beacon_share { party = p.id; round });
        broadcast p
          (Message.Beacon_share
             { b_round = round; b_signer = p.id; b_share = share })
      end

(* Bundle a block for (re)broadcast: block + authenticator + parent
   notarization, as Fig. 1's propose and echo steps require. *)
let proposal_bundle p (block : Block.t) ~authenticator =
  let parent_cert =
    if block.Block.round = 1 then None
    else
      Pool.notarization_cert p.pool
        (block.Block.round - 1, block.Block.parent_hash)
  in
  Message.Proposal
    { p_block = block; p_authenticator = authenticator; p_parent_cert = parent_cert }

(* --- round machinery --------------------------------------------------- *)

let in_n p block_hash =
  List.exists (fun (h, _) -> Icc_crypto.Sha256.equal h block_hash) p.n_shared

let n_has_rank p rank = List.exists (fun (_, r) -> r = rank) p.n_shared

(* Effective delay functions: with [config.adaptive], the delay bound is
   scaled by the party's current estimate multiplier (the paper's §1 note
   that the protocols "can be modified to adaptively adjust to an unknown
   communication-delay bound").  Rank 0 is unaffected in either case, so
   the happy path stays optimistically responsive. *)
let prop_delay p rank =
  if p.env.config.Config.adaptive then
    2. *. p.env.config.Config.delta_bnd *. p.delay_scale *. float_of_int rank
  else p.env.config.Config.delta_prop rank

let ntry_delay p rank =
  if p.env.config.Config.adaptive then
    (2. *. p.env.config.Config.delta_bnd *. p.delay_scale *. float_of_int rank)
    +. p.env.config.Config.epsilon
  else p.env.config.Config.delta_ntry rank

let adaptive_scale_limits = (0.05, 16.)

(* The adaptation signal is "did I notarization-share more than one block
   this round?" — exactly the N-is-a-singleton predicate that gates
   finalization shares.  A delay bound below the true network delay makes
   every party share its own block before hearing better-ranked ones, so N
   stops being a singleton and finalization starves; scaling the bound up
   restores it.  A crashed leader does NOT trigger the signal (N holds just
   the backup block), so crash-faults don't inflate the estimate; an
   equivocating leader does — the conflation the paper's "some care must be
   taken" alludes to, bounded here by the scale cap. *)
let update_delay_scale p =
  if p.env.config.Config.adaptive then begin
    let lo, hi = adaptive_scale_limits in
    let distinct_shared =
      List.sort_uniq compare
        (List.map (fun (h, _) -> Icc_crypto.Sha256.to_hex h) p.n_shared)
    in
    if List.length distinct_shared > 1 then
      p.delay_scale <- min hi (p.delay_scale *. 2.)
    else p.delay_scale <- max lo (p.delay_scale *. 0.9)
  end

let rank_of_block p (b : Block.t) =
  match Beacon.rank_of p.beacon p.round b.Block.proposer with
  | Some r -> r
  | None -> invalid_arg "Party.rank_of_block: beacon unknown"

let my_rank p =
  match Beacon.rank_of p.beacon p.round p.id with
  | Some r -> r
  | None -> invalid_arg "Party.my_rank: beacon unknown"

(* Forward declaration of the fixpoint driver so timers can call it. *)
let rec step p =
  if not (halted p) then begin
    Icc_obs.Profile.set_party p.id;
    Icc_obs.Profile.set_round p.round;
    Icc_obs.Profile.span "party.step" @@ fun () ->
    let progress = ref true in
    while !progress do
      progress := false;
      if finalization_pass p then progress := true;
      if (not p.round_started) && try_start_round p then progress := true;
      if p.round_started && not p.round_done then begin
        if condition_a p then progress := true
        else begin
          if condition_b p then progress := true;
          if (not p.adv_withhold_notar) && condition_c p then
            progress := true
        end
      end;
      if p.adv_noisy && p.round_started && byzantine_share_pass p then
        progress := true
    done
  end

(* Start round [p.round] once its beacon is computable (the preliminary
   wait-for of Fig. 1), then immediately release the share of the next
   round's beacon — the pipelining step. *)
and try_start_round p =
  if Beacon.try_compute p.beacon p.pool p.round then begin
    p.round_started <- true;
    p.t0 <- now p;
    p.n_shared <- [];
    p.disqualified <- [];
    p.proposed <- false;
    p.round_done <- false;
    p.scheduled_ntry <- [];
    (* Latch this round's adversary decisions (activation triggers see the
       freshly computed beacon rank; withhold draws roll once per round). *)
    (match p.env.adversary with
    | None -> ()
    | Some a ->
        let nowt = now p in
        Icc_sim.Adversary.note_round a ~now:nowt ~party:p.id ~round:p.round
          ~rank:(my_rank p);
        (match Icc_sim.Adversary.equivocation a ~now:nowt ~party:p.id with
        | Some noisy ->
            p.adv_equivocate <- true;
            p.adv_noisy <- noisy
        | None ->
            p.adv_equivocate <- false;
            p.adv_noisy <- false);
        p.adv_withhold_notar <-
          Icc_sim.Adversary.withholds a ~now:nowt ~party:p.id ~round:p.round
            Icc_sim.Adversary.Notar;
        p.adv_withhold_final <-
          Icc_sim.Adversary.withholds a ~now:nowt ~party:p.id ~round:p.round
            Icc_sim.Adversary.Final);
    emit p (Icc_sim.Trace.Round_entry { party = p.id; round = p.round });
    broadcast_beacon_share p ~round:(p.round + 1);
    (* Timer for our own proposal delay. *)
    (if not (p.behavior.never_propose || p.adv_equivocate) then
       let round = p.round in
       let delay = prop_delay p (my_rank p) in
       Icc_sim.Engine.schedule p.env.engine ~delay (fun () ->
           if p.round = round then step p));
    (if p.adv_equivocate then
       let round = p.round in
       let delay = prop_delay p (my_rank p) in
       Icc_sim.Engine.schedule p.env.engine ~delay (fun () ->
           if p.round = round then equivocating_propose p));
    true
  end
  else false

(* Wait-for alternative (a): finish the round on a notarized block or a full
   set of notarization shares. *)
and condition_a p =
  match Pool.round_completion p.pool p.round with
  | None -> false
  | Some completion -> (
      let resolved =
        match completion with
        | Pool.Already_notarized (b, c) -> Some (b, c)
        | Pool.Combinable (b, shares) -> (
            let block_hash = Block.hash b in
            let text =
              Types.notarization_text ~round:b.Block.round
                ~proposer:b.Block.proposer ~block_hash
            in
            match
              Icc_crypto.Multisig.combine p.env.system.Icc_crypto.Keygen.notary
                text shares
            with
            | None ->
                (* Shares were verified on admission, so combining at quorum
                   cannot fail; if it somehow does, report it and skip the
                   step instead of aborting the run. *)
                protocol_error p ~round:b.Block.round
                  ~what:"notarization-combine-failed";
                None
            | Some multisig ->
                let cert =
                  {
                    Types.c_round = b.Block.round;
                    c_proposer = b.Block.proposer;
                    c_block_hash = block_hash;
                    c_multisig = multisig;
                  }
                in
                ignore (Pool.add_notarization p.pool cert);
                Some (b, cert))
      in
      match resolved with
      | None -> false
      | Some (block, cert) ->
      let block_hash = Block.hash block in
      emit p
        (Icc_sim.Trace.Notarize
           {
             party = p.id;
             round = p.round;
             block = Icc_crypto.Sha256.short_hex block_hash;
           });
      broadcast p (Message.Notarization cert);
      p.round_done <- true;
      p.rounds_finished <- p.rounds_finished + 1;
      (* Paper §3.3 (Finalization Subprotocol): a party broadcasts a
         finalization share for round k iff N ⊆ {B} — every block it
         notarization-shared this round is the finished block.  The
         containment is vacuously true when N = ∅ (e.g. a silent-shares
         deviation, or finishing before any (c)-step fired): a party that
         shared nothing contradicts nothing, so it must still attest.
         Pinned by test_party.ml's vacuous-finalization test. *)
      let n_subset_of_b =
        List.for_all (fun (h, _) -> Icc_crypto.Sha256.equal h block_hash) p.n_shared
      in
      if n_subset_of_b && not p.adv_withhold_final then
        broadcast p (sign_finalization_share p ~block);
      update_delay_scale p;
      (* Proceed to the next round; its beacon shares are likely pooled
         already thanks to the pipelining. *)
      p.round <- p.round + 1;
      p.round_started <- false;
      true)

(* Wait-for alternative (b): propose our own block once delta_prop(r_me) has
   elapsed. *)
and condition_b p =
  if
    p.proposed || p.behavior.never_propose || p.adv_equivocate
    || now p < p.t0 +. prop_delay p (my_rank p) -. 1e-12
  then false
  else begin
    let parent =
      if p.round = 1 then None
      else
        match Pool.notarized_blocks p.pool (p.round - 1) with
        | b :: _ -> Some b
        | [] ->
            (* The previous round only ended with a notarized block. *)
            assert false
    in
    let payload =
      p.env.get_payload ~pool:p.pool ~parent ~round:p.round ~proposer:p.id
    in
    let parent_hash =
      match parent with Some b -> Block.hash b | None -> Block.root_hash
    in
    let block =
      Block.create ~round:p.round ~proposer:p.id ~parent_hash ~payload
    in
    let block_hash = Block.hash block in
    let authenticator =
      Icc_crypto.Schnorr.sign p.keys.Icc_crypto.Keygen.auth
        (Types.authenticator_text ~round:p.round ~proposer:p.id ~block_hash)
    in
    emit p (Icc_sim.Trace.Propose { party = p.id; round = p.round });
    broadcast p (proposal_bundle p block ~authenticator);
    p.proposed <- true;
    true
  end

(* Wait-for alternative (c): echo the best-ranked valid block and either
   notarization-share it or disqualify its rank. *)
and condition_c p =
  (* Valid round-k blocks annotated with ranks. *)
  let valids =
    List.map (fun b -> (rank_of_block p b, b)) (Pool.valid_blocks p.pool p.round)
  in
  let eligible =
    List.filter (fun (r, _) -> not (List.mem r p.disqualified)) valids
  in
  match eligible with
  | [] -> false
  | _ ->
      let best_rank =
        List.fold_left (fun acc (r, _) -> min acc r) max_int eligible
      in
      (* Candidate blocks at the best non-disqualified rank, not yet in N. *)
      let candidates =
        List.filter
          (fun (r, b) -> r = best_rank && not (in_n p (Block.hash b)))
          eligible
      in
      if candidates = [] then false
      else if now p < p.t0 +. ntry_delay p best_rank -. 1e-12 then begin
        (* Timer edge not reached: arm it (once per rank per round). *)
        if not (List.mem best_rank p.scheduled_ntry) then begin
          p.scheduled_ntry <- best_rank :: p.scheduled_ntry;
          let round = p.round in
          let time = p.t0 +. ntry_delay p best_rank in
          Icc_sim.Engine.schedule_at p.env.engine ~time (fun () ->
              if p.round = round then step p)
        end;
        false
      end
      else begin
        match candidates with
        | [] -> false
        | (rank, block) :: _ ->
            let block_hash = Block.hash block in
            (* Echo: rebroadcast block, authenticator, parent notarization —
               unless it is our own proposal, which we already broadcast. *)
            (if rank <> my_rank p then
               match Pool.authenticator p.pool (p.round, block_hash) with
               | Some authenticator ->
                   broadcast p (proposal_bundle p block ~authenticator)
               | None -> ());
            if n_has_rank p rank then
              p.disqualified <- rank :: p.disqualified
            else begin
              p.n_shared <- (block_hash, rank) :: p.n_shared;
              broadcast p (sign_notarization_share p ~block)
            end;
            true
      end

(* Finalization Subprotocol (Fig. 2): runs across all rounds, independent of
   the tree-building round. *)
and finalization_pass p =
  match Pool.finalization_step p.pool ~kmax:p.kmax with
  | None -> false
  | Some fstep -> (
      let resolved =
        match fstep with
        | Pool.Final_cert (b, c) -> Some (b, c)
        | Pool.Final_combinable (b, shares) -> (
            let block_hash = Block.hash b in
            let text =
              Types.finalization_text ~round:b.Block.round
                ~proposer:b.Block.proposer ~block_hash
            in
            match
              Icc_crypto.Multisig.combine p.env.system.Icc_crypto.Keygen.final
                text shares
            with
            | None ->
                (* As in condition (a): impossible over admission-verified
                   shares; trace it rather than killing the run. *)
                protocol_error p ~round:b.Block.round
                  ~what:"finalization-combine-failed";
                None
            | Some multisig ->
                let cert =
                  {
                    Types.c_round = b.Block.round;
                    c_proposer = b.Block.proposer;
                    c_block_hash = block_hash;
                    c_multisig = multisig;
                  }
                in
                ignore (Pool.add_finalization p.pool cert);
                Some (b, cert))
      in
      match resolved with
      | None -> false
      | Some (block, cert) ->
      emit p
        (Icc_sim.Trace.Finalize
           {
             party = p.id;
             round = block.Block.round;
             block = Icc_crypto.Sha256.short_hex (Block.hash block);
           });
      broadcast p (Message.Finalization cert);
      let segment = Chain.segment p.pool block ~from_round:p.kmax in
      List.iter
        (fun blk ->
          p.output_log <- blk :: p.output_log;
          p.env.on_output ~party:p.id blk)
        segment;
      p.kmax <- block.Block.round;
      (match p.env.config.Config.prune_depth with
      | Some depth when p.kmax - depth >= 1 ->
          Pool.prune p.pool ~below:(p.kmax - depth)
      | Some _ | None -> ());
      true)

(* Noisy equivocator's share pass: notarization- and finalization-share
   every valid current-round block immediately, ignoring delays, D and the
   best-rank rule — maximising the chance a conflicting block gathers a
   certificate (the strongest safety attack). *)
and byzantine_share_pass p =
  let fresh =
    List.filter
      (fun b -> not (in_n p (Block.hash b)))
      (Pool.valid_blocks p.pool p.round)
  in
  match fresh with
  | [] -> false
  | b :: _ ->
      p.n_shared <- (Block.hash b, rank_of_block p b) :: p.n_shared;
      broadcast p (sign_notarization_share p ~block:b);
      broadcast p (sign_finalization_share p ~block:b);
      true

(* Byzantine proposal: two conflicting blocks, each delivered to one half of
   the parties (both really signed — equivocation, not forgery). *)
and equivocating_propose p =
  if p.proposed || not p.round_started then ()
  else begin
    p.proposed <- true;
    let parent =
      if p.round = 1 then None
      else
        match Pool.notarized_blocks p.pool (p.round - 1) with
        | b :: _ -> Some b
        | [] -> None
    in
    match (parent, p.round) with
    | None, r when r > 1 -> ()
    | _ ->
        let parent_hash =
          match parent with Some b -> Block.hash b | None -> Block.root_hash
        in
        let make filler =
          let payload = { Types.commands = []; filler_size = filler } in
          let block =
            Block.create ~round:p.round ~proposer:p.id ~parent_hash ~payload
          in
          let authenticator =
            Icc_crypto.Schnorr.sign p.keys.Icc_crypto.Keygen.auth
              (Types.authenticator_text ~round:p.round ~proposer:p.id
                 ~block_hash:(Block.hash block))
          in
          (block, proposal_bundle p block ~authenticator)
        in
        let block_a, bundle_a = make 1 and block_b, bundle_b = make 2 in
        emit p (Icc_sim.Trace.Propose { party = p.id; round = p.round });
        emit p
          (Icc_sim.Trace.Adv_equivocate
             {
               party = p.id;
               round = p.round;
               block_a = Icc_crypto.Sha256.short_hex (Block.hash block_a);
               block_b = Icc_crypto.Sha256.short_hex (Block.hash block_b);
             });
        let n = p.env.config.Config.n in
        for dst = 1 to n do
          unicast p ~dst (if dst <= n / 2 then bundle_a else bundle_b)
        done;
        step p
  end

(* --- pool-resync sub-layer ---------------------------------------------- *)
(* Periodic summary/retransmit repair (config.resync): under lossy links the
   eventual-delivery assumption behind Fig. 1's "wait for" semantics breaks,
   so each party unicasts its frontier (round, kmax) to one rotating peer
   and the two sides retransmit whatever the other is missing.  All
   retransmissions are the original wire messages, re-admitted through the
   verified Pool paths, so the sub-layer cannot inject anything a direct
   broadcast could not. *)

let resync_config p = p.env.config.Config.resync

let emit_detail p ev =
  if Icc_sim.Trace.detailed p.env.trace then emit p ev

(* Unicast our frontier to the next peer in a deterministic rotation. *)
let send_summary p =
  let n = p.env.config.Config.n in
  if n > 1 then begin
    let next = (p.resync_peer mod n) + 1 in
    let next = if next = p.id then (next mod n) + 1 else next in
    p.resync_peer <- next;
    emit_detail p
      (Icc_sim.Trace.Resync_summary
         { party = p.id; peer = next; round = p.round; kmax = p.kmax });
    unicast p ~dst:next
      (Message.Pool_summary
         { ps_party = p.id; ps_round = p.round; ps_kmax = p.kmax })
  end

(* The tick reschedules itself unconditionally — including while crashed, so
   a recovered party resumes summaries without re-arming — and backs off
   exponentially (capped) while the round is stuck, resetting on progress. *)
let rec resync_tick p (rs : Config.resync) =
  if not (halted p) then begin
    if p.round > p.resync_last_round then begin
      p.resync_last_round <- p.round;
      p.resync_interval <- rs.Config.rs_period
    end
    else
      p.resync_interval <- min rs.Config.rs_backoff_cap (p.resync_interval *. 2.);
    send_summary p
  end;
  Icc_sim.Engine.schedule p.env.engine ~delay:p.resync_interval (fun () ->
      resync_tick p rs)

let start_resync p =
  match resync_config p with
  | None -> ()
  | Some rs ->
      (* Deterministic per-party stagger so summaries don't synchronise. *)
      let n = p.env.config.Config.n in
      let stagger =
        rs.Config.rs_period
        *. (1. +. (float_of_int p.id /. float_of_int (n + 1)))
      in
      p.resync_interval <- rs.Config.rs_period;
      Icc_sim.Engine.schedule p.env.engine ~delay:stagger (fun () ->
          resync_tick p rs)

(* Retransmit the artifacts of rounds [from_round, upto] — clamped to the
   chunk size, our own round, and the prune horizon — unicast to [dst]. *)
let retransmit p ~dst ~from_round ~upto =
  match resync_config p with
  | None -> ()
  | Some rs ->
      let horizon =
        match p.env.config.Config.prune_depth with
        | Some depth -> max 1 (p.kmax - depth + 1)
        | None -> 1
      in
      let from_round = max from_round horizon in
      let upto = min upto (min p.round (from_round + rs.Config.rs_chunk - 1)) in
      if upto >= from_round then begin
        let count = ref 0 in
        let send msg =
          incr count;
          unicast p ~dst msg
        in
        for r = from_round to upto do
          List.iter send (Pool.retransmit_set p.pool ~round:r)
        done;
        (* The pipelined beacon shares of the round after the window let the
           peer enter its next round without waiting for another cycle. *)
        List.iter send (Pool.beacon_share_msgs p.pool ~round:(upto + 1));
        emit_detail p
          (Icc_sim.Trace.Resync_reply
             { party = p.id; peer = dst; from_round; upto; count = !count })
      end

let resync_on_summary p ~ps_party ~ps_round ~ps_kmax =
  if
    resync_config p <> None
    && ps_party <> p.id
    && ps_party >= 1
    && ps_party <= p.env.config.Config.n
  then begin
    if ps_round > p.round then begin
      (* Peer is ahead: pull everything from just above our cursor. *)
      let from_round = max 1 (min (p.kmax + 1) p.round) in
      emit_detail p
        (Icc_sim.Trace.Resync_request
           { party = p.id; peer = ps_party; from_round; upto = ps_round });
      unicast p ~dst:ps_party
        (Message.Pool_request
           { pr_party = p.id; pr_from = from_round; pr_upto = ps_round })
    end
    else if ps_round < p.round || ps_kmax < p.kmax then
      (* Peer is behind: push from just above its cursor. *)
      retransmit p ~dst:ps_party
        ~from_round:(max 1 (min (ps_kmax + 1) ps_round))
        ~upto:p.round
    else
      (* Same frontier — possibly symmetrically stuck (each side holds
         shares the other lacks): swap the current round's artifacts. *)
      retransmit p ~dst:ps_party ~from_round:p.round ~upto:p.round
  end

let resync_on_request p ~pr_party ~pr_from ~pr_upto =
  if
    resync_config p <> None
    && pr_party <> p.id
    && pr_party >= 1
    && pr_party <= p.env.config.Config.n
  then retransmit p ~dst:pr_party ~from_round:(max 1 pr_from) ~upto:pr_upto

(* --- inbound ------------------------------------------------------------ *)

let on_message p (msg : Message.t) =
  if not (halted p) then begin
    let changed =
      match msg with
      | Message.Proposal { p_block; p_authenticator; p_parent_cert } ->
          let c1 =
            match p_parent_cert with
            | Some cert -> Pool.add_notarization p.pool cert
            | None -> false
          in
          let c2 = Pool.add_block p.pool p_block in
          let c3 =
            Pool.add_authenticator p.pool ~round:p_block.Block.round
              ~proposer:p_block.Block.proposer
              ~block_hash:(Block.hash p_block) p_authenticator
          in
          c1 || c2 || c3
      | Message.Notarization_share s -> Pool.add_notarization_share p.pool s
      | Message.Notarization c -> Pool.add_notarization p.pool c
      | Message.Finalization_share s -> Pool.add_finalization_share p.pool s
      | Message.Finalization c -> Pool.add_finalization p.pool c
      | Message.Beacon_share { b_round; b_share; _ } ->
          (* The wire round number is attacker-controlled: rounds below 1
             have no beacon message and are dropped outright.  When the
             previous beacon is already known, pass the verifier so spoofed
             shares are rejected (and evicted) at admission. *)
          if b_round < 1 then false
          else
            Pool.add_beacon_share p.pool ~round:b_round
              ?verify:(Beacon.share_verifier p.beacon b_round)
              b_share
      | Message.Pool_summary { ps_party; ps_round; ps_kmax } ->
          resync_on_summary p ~ps_party ~ps_round ~ps_kmax;
          false
      | Message.Pool_request { pr_party; pr_from; pr_upto } ->
          resync_on_request p ~pr_party ~pr_from ~pr_upto;
          false
    in
    if changed then step p
  end

(* Protocol start: release the round-1 beacon share, then run the guards.
   The resync tick loop is armed even for a party that starts crashed, so
   it begins summarising as soon as it recovers. *)
let start p =
  start_resync p;
  if not (halted p) then begin
    broadcast_beacon_share p ~round:1;
    step p
  end

(* Crash–recovery: the pool models persistent storage and survives the
   crash; what is lost is the in-flight state — pending timers and whatever
   peers sent while we were down.  Recovery restarts the round clock (so
   the (b)/(c) delay edges are measured from the recovery instant rather
   than a stale t0), re-releases our beacon shares, announces our frontier
   so peers retransmit the gap, and re-runs the guards. *)
let recover p =
  if p.behavior.crashed then begin
    p.behavior <- { p.behavior with crashed = false };
    if p.round_started then begin
      p.t0 <- now p;
      p.scheduled_ntry <- []
    end;
    broadcast_beacon_share p ~round:p.round;
    broadcast_beacon_share p ~round:(p.round + 1);
    (match resync_config p with
    | Some rs ->
        p.resync_interval <- rs.Config.rs_period;
        p.resync_last_round <- p.round;
        send_summary p
    | None -> ());
    step p
  end

(* Crash-window wake-up: an adversary crash window ends on the script's
   clock, not through a Fault_recover directive, so the runner schedules
   this at each window end.  Same rehydration as [recover] minus the
   behavior flag: restart the round clock, re-release our beacon shares,
   announce our frontier, re-run the guards. *)
let wake p =
  if not (halted p) then begin
    if p.round_started then begin
      p.t0 <- now p;
      p.scheduled_ntry <- []
    end;
    broadcast_beacon_share p ~round:p.round;
    broadcast_beacon_share p ~round:(p.round + 1);
    (match resync_config p with
    | Some rs ->
        p.resync_interval <- rs.Config.rs_period;
        p.resync_last_round <- p.round;
        send_summary p
    | None -> ());
    step p
  end
