(* Protocol parameters, including the delay functions of Fig. 1.

   The recommended instantiation (paper eq. (2)) is
     delta_prop(r) = 2 * delta_bnd * r
     delta_ntry(r) = 2 * delta_bnd * r + epsilon
   which satisfies the liveness requirement 2*delta + delta_prop(0) <=
   delta_ntry(1) whenever the network delay delta is at most delta_bnd.
   epsilon is the "governor" that keeps the protocol from running too
   fast. *)

(* The pool-resync sub-layer (not in the paper's Fig. 1/2): under lossy
   links the eventual-delivery assumption breaks, so parties periodically
   unicast a pool summary to one rotating peer and retransmit whatever the
   peer's frontier is missing.  The period backs off exponentially (capped)
   while the sender's round makes no progress and resets on progress, so a
   healthy network pays one small summary per period and a wedged one
   retransmits just often enough to heal. *)
type resync = {
  rs_period : float; (* base summary interval, seconds *)
  rs_backoff_cap : float; (* interval ceiling while the round is stuck *)
  rs_chunk : int; (* max rounds retransmitted per reply *)
}

let default_resync ?(period = 0.5) ?(backoff_cap = 4.0) ?(chunk = 4) () =
  if not (period > 0. && backoff_cap >= period && chunk >= 1) then
    invalid_arg "Config.default_resync";
  { rs_period = period; rs_backoff_cap = backoff_cap; rs_chunk = chunk }

type t = {
  n : int;
  t : int; (* maximum corrupt parties; 3t < n *)
  delta_bnd : float; (* partial-synchrony delay bound, seconds *)
  epsilon : float; (* governor, seconds *)
  delta_prop : Types.rank -> float;
  delta_ntry : Types.rank -> float;
  adaptive : bool; (* adapt delta_bnd to an unknown network delay (paper §1) *)
  prune_depth : int option; (* keep this many rounds below kmax; None = keep all *)
  resync : resync option; (* pool-resync retransmission; None = off *)
}

let recommended ?(delta_bnd = 1.0) ?(epsilon = 0.0) ?(adaptive = false)
    ?prune_depth ?resync ~n ~t () =
  if not (n >= 1 && t >= 0 && 3 * t < n) then
    invalid_arg "Config.recommended: need 3t < n";
  {
    n;
    t;
    delta_bnd;
    epsilon;
    delta_prop = (fun r -> 2. *. delta_bnd *. float_of_int r);
    delta_ntry = (fun r -> (2. *. delta_bnd *. float_of_int r) +. epsilon);
    adaptive;
    prune_depth;
    resync;
  }

(* A deliberately non-responsive variant (Tendermint-style): every party
   waits the full delta_bnd before notarizing even the leader's block.  Used
   by the optimistic-responsiveness experiment as a contrast. *)
let non_responsive ?(delta_bnd = 1.0) ~n ~t () =
  let c = recommended ~delta_bnd ~n ~t () in
  {
    c with
    delta_ntry = (fun r -> (2. *. delta_bnd *. float_of_int r) +. delta_bnd);
  }

let quorum c = c.n - c.t (* n - t: notarization and finalization quorum *)

let liveness_requirement_holds c ~delta =
  (2. *. delta) +. c.delta_prop 0 <= c.delta_ntry 1
