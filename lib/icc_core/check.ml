(* Global correctness oracles evaluated over the honest parties' state after
   a simulation: the paper's properties P1 (deadlock-freeness), P2 (safety)
   and output consistency (atomic-broadcast safety). *)

let block_key (b : Block.t) = (b.Block.round, Block.hash b)

(* Output consistency: for every pair of honest parties, one committed chain
   is a prefix of the other (§1 safety definition). *)
let outputs_consistent (outputs : (int * Block.t list) list) =
  let hashes chain = List.map (fun b -> Icc_crypto.Sha256.to_hex (Block.hash b)) chain in
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> String.equal x y && is_prefix xs ys
  in
  let rec pairs = function
    | [] -> true
    | (_, c1) :: rest ->
        List.for_all
          (fun (_, c2) ->
            let h1 = hashes c1 and h2 = hashes c2 in
            is_prefix h1 h2 || is_prefix h2 h1)
          rest
        && pairs rest
  in
  pairs outputs

(* P2 across all honest pools: if any party holds a finalization for a
   round-k block B, then no party holds a notarization for a different
   round-k block. *)
let no_conflicting_notarization (pools : Pool.t list) =
  let finalized : (int, Icc_crypto.Sha256.t) Hashtbl.t = Hashtbl.create 64 in
  let notarized : (int, Icc_crypto.Sha256.t list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun pool ->
      for round = 1 to Pool.max_round pool do
        List.iter
          (fun b ->
            let _, h = block_key b in
            if Pool.is_finalized pool (round, h) then Hashtbl.replace finalized round h;
            if Pool.is_notarized pool (round, h) then
              match Hashtbl.find_opt notarized round with
              | Some l ->
                  if not (List.exists (Icc_crypto.Sha256.equal h) !l) then
                    l := h :: !l
              | None -> Hashtbl.add notarized round (ref [ h ]))
          (Pool.blocks_of_round pool round)
      done)
    pools;
  (Hashtbl.fold
     (fun round fh acc ->
       acc
       &&
       match Hashtbl.find_opt notarized round with
       | None -> true
       | Some l -> List.for_all (Icc_crypto.Sha256.equal fh) !l)
     finalized true
   [@icc.allow
     "d2-hashtbl-order: conjunction over all bindings with no side effects \
      — the boolean result is the same in any visit order"])

(* P1 up to [limit]: every round some honest party finished has at least one
   notarized block in some honest pool. *)
let every_round_notarized (pools : Pool.t list) ~limit =
  let round_has_notarized round =
    List.exists
      (fun pool ->
        List.exists
          (fun b -> Pool.is_notarized pool (block_key b))
          (Pool.blocks_of_round pool round))
      pools
  in
  let rec go r = r > limit || (round_has_notarized r && go (r + 1)) in
  go 1
