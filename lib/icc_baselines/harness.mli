(** Shared scenario/result shapes for the baseline protocols (PBFT, chained
    HotStuff), mirroring [Icc_core.Runner] so experiments can compare the
    protocols on identical workloads and networks. *)

type scenario = {
  n : int;
  t : int;
  seed : int;
  delay : Icc_core.Runner.delay_spec;
  duration : float;
  block_size : int;  (** Modeled batch payload bytes. *)
  crashed : int list;
  kill_at : (int * float) list;
  timeout : float;  (** View-change / pacemaker timeout. *)
  pipeline_window : int;  (** PBFT: batches in flight. *)
  trace : Icc_sim.Trace.t option;  (** Observe the run; [None] = untraced. *)
  monitor : Icc_sim.Monitor.config option;
      (** Attach the online invariant monitor to the run's bus. *)
  nemesis : Icc_sim.Fault.script option;
      (** Link faults (drop / duplicate / reorder / flap / partition) on
          the baseline's network; crash/recover directives are ignored by
          the baselines — use [crashed] / [kill_at] instead. *)
  adversary : Icc_sim.Adversary.script option;
      (** Byzantine strategies on the baseline's network.  Only statically
          targeted directives apply (the baselines have no protocol-layer
          hooks): share withholding works at the wire via
          {!baseline_classify}; censorship, stealthy delays, straggling and
          crash windows apply as on any network; equivocation directives
          are inert. *)
}

val default_scenario : n:int -> seed:int -> scenario

val attach_monitor :
  scenario -> Icc_sim.Transport.env -> Icc_sim.Monitor.t option
(** Attach the scenario's monitor (if any) to a freshly built transport
    env, before any event flows. *)

val install_nemesis :
  scenario -> rng:Icc_sim.Rng.t -> trace:Icc_sim.Trace.t ->
  'msg Icc_sim.Network.t -> unit
(** Install the scenario's nemesis (if any) on a baseline's network; call
    right after building the network.  Splits [rng] only when a script is
    present, preserving historical streams. *)

val baseline_classify : string -> Icc_sim.Adversary.share_class option
(** Maps baseline wire kinds to share classes (PBFT [prepare]/[commit],
    HotStuff [hs-vote], Tendermint [tm-prevote]/[tm-precommit]) so
    withhold directives apply at the network level. *)

val install_adversary :
  scenario -> rng:Icc_sim.Rng.t -> trace:Icc_sim.Trace.t ->
  'msg Icc_sim.Network.t -> unit
(** Install the scenario's adversary (if any) on a baseline's network; call
    right after {!install_nemesis}.  Splits [rng] only when a non-empty
    script is present. *)

val adversary_corrupt : scenario -> int list
(** Replicas statically corrupted by the scenario's adversary script —
    excluded from honest-commit accounting, like [crashed]. *)

type result = {
  metrics : Icc_sim.Metrics.t;
  monitor : Icc_sim.Monitor.t option;
  duration : float;
  blocks_committed : int;  (** Decided by every honest replica. *)
  blocks_per_s : float;
  mean_latency : float;  (** Propose → all honest executed. *)
  safety_ok : bool;  (** Executed sequences prefix-consistent. *)
  outputs : (int * string list) list;
      (** Per honest replica, executed digests in order. *)
}

val delay_model :
  Icc_sim.Rng.t -> Icc_core.Runner.delay_spec -> n:int ->
  Icc_sim.Network.delay_model

val prefix_consistent : (int * string list) list -> bool

(** Commit tracking shared by the baselines: a batch counts as decided when
    every honest replica has executed it. *)
type tracker = {
  n_honest : int;
  trace : Icc_sim.Trace.t;
  counts : (string, int) Hashtbl.t;
  mutable decided : int;
  mutable latencies : float list;
  propose_times : (string, float) Hashtbl.t;
}

val tracker : n_honest:int -> trace:Icc_sim.Trace.t -> tracker
val note_proposal : tracker -> digest:string -> time:float -> unit
val note_execution : tracker -> digest:string -> time:float -> unit
