(* Tendermint [8] (simplified) on the shared simulator substrate: the
   related-work baseline the paper contrasts on optimistic responsiveness —
   "in Tendermint, every round takes time O(Delta_bnd), even when the
   leader is honest".

   Implemented: heights with rounds, round-robin proposers, the
   propose / prevote / precommit step ladder with 2t+1 quorums, value
   locking across rounds, nil votes on step timeouts, and the fixed
   commit wait before the next height begins — the structural source of
   Tendermint's non-responsiveness (the protocol paces on its timeout
   parameter, not on the actual network delay).

   Simplifications: proposals carry value digests rather than full
   proof-of-lock justifications (sound under the crash-fault scenarios the
   experiments use; Byzantine proposer equivocation would need POL checks),
   and block dissemination is direct broadcast rather than gossip — the
   dissemination layer is orthogonal to the responsiveness comparison. *)

type step = Propose | Prevote | Precommit

let nil = ""

type msg =
  | Proposal of { h : int; r : int; digest : string; size : int;
                  sig_ : Icc_crypto.Schnorr.signature }
  | Prevote of { h : int; r : int; v : string; replica : int;
                 sig_ : Icc_crypto.Schnorr.signature }
  | Precommit of { h : int; r : int; v : string; replica : int;
                   sig_ : Icc_crypto.Schnorr.signature }

let proposal_text ~h ~r ~digest = Printf.sprintf "tm-prop|%d|%d|%s" h r digest
let prevote_text ~h ~r ~v ~replica = Printf.sprintf "tm-pv|%d|%d|%s|%d" h r v replica
let precommit_text ~h ~r ~v ~replica = Printf.sprintf "tm-pc|%d|%d|%s|%d" h r v replica

let msg_wire_size ~n:_ = function
  | Proposal { size; _ } -> 96 + size
  | Prevote _ | Precommit _ -> 120

let msg_kind = function
  | Proposal _ -> "tm-proposal"
  | Prevote _ -> "tm-prevote"
  | Precommit _ -> "tm-precommit"

type replica = {
  id : int;
  n : int;
  t : int;
  auth : Icc_crypto.Schnorr.secret_key;
  auth_pub : Icc_crypto.Schnorr.public_key array;
  mutable crashed : bool;
  mutable height : int;
  mutable round : int;
  mutable step : step;
  mutable locked : (int * string) option; (* locked round, value *)
  mutable step_seq : int; (* invalidates stale step timeouts *)
  proposals : (int * int, string * int) Hashtbl.t; (* (h, r) -> digest, size *)
  votes_pv : (int * int * string, (int, unit) Hashtbl.t) Hashtbl.t;
  votes_pc : (int * int * string, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable decided : string list; (* newest first *)
  mutable deciding : bool; (* between decision and next-height start *)
}

type t = {
  engine : Icc_sim.Engine.t;
  net : msg Icc_sim.Network.t;
  replicas : replica array;
  scenario : Harness.scenario;
  tracker : Harness.tracker;
  honest : int list;
}

let proposer_of ~n ~h ~r = ((h + r - 1) mod n) + 1
let quorum r = r.n - r.t

let now t = Icc_sim.Engine.now t.engine

let broadcast t ~src msg =
  Icc_sim.Network.broadcast t.net ~src
    ~size:(msg_wire_size ~n:t.scenario.Harness.n msg)
    ~kind:(msg_kind msg) msg

let votes tbl key =
  match Hashtbl.find_opt tbl key with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.add tbl key h;
      h

let fresh_digest r ~h =
  Printf.sprintf "tm-block|%d|%d|%d" h r.id r.round

(* Enter a (height, round) and, if proposer, propose. *)
let rec start_round t r ~h ~round =
  if not r.crashed then begin
    r.height <- h;
    r.round <- round;
    r.step <- Propose;
    r.step_seq <- r.step_seq + 1;
    r.deciding <- false;
    let seq = r.step_seq in
    (if proposer_of ~n:r.n ~h ~r:round = r.id then begin
       let digest =
         match r.locked with Some (_, v) -> v | None -> fresh_digest r ~h
       in
       Harness.note_proposal t.tracker ~digest ~time:(now t);
       let sig_ =
         Icc_crypto.Schnorr.sign r.auth (proposal_text ~h ~r:round ~digest)
       in
       broadcast t ~src:r.id
         (Proposal { h; r = round; digest; size = t.scenario.Harness.block_size; sig_ })
     end);
    (* timeout: prevote nil if no proposal arrived *)
    Icc_sim.Engine.schedule t.engine ~delay:t.scenario.Harness.timeout (fun () ->
        if (not r.crashed) && r.step_seq = seq && r.step = Propose then
          cast_prevote t r ~v:nil)
  end

and cast_prevote t r ~v =
  if r.step = Propose then begin
    r.step <- Prevote;
    r.step_seq <- r.step_seq + 1;
    let seq = r.step_seq in
    let v =
      (* a locked replica prevotes its lock unless the proposal matches;
         timeouts (v = nil) prevote nil regardless *)
      match r.locked with
      | Some (_, lv) when (not (String.equal v nil)) && not (String.equal lv v)
        ->
          lv
      | _ -> v
    in
    let sig_ =
      Icc_crypto.Schnorr.sign r.auth
        (prevote_text ~h:r.height ~r:r.round ~v ~replica:r.id)
    in
    broadcast t ~src:r.id (Prevote { h = r.height; r = r.round; v; replica = r.id; sig_ });
    (* timeout: precommit nil if no prevote quorum on a value materialises *)
    Icc_sim.Engine.schedule t.engine ~delay:t.scenario.Harness.timeout (fun () ->
        if (not r.crashed) && r.step_seq = seq && r.step = Prevote then
          cast_precommit t r ~v:nil)
  end

and cast_precommit t r ~v =
  if r.step = Prevote then begin
    r.step <- Precommit;
    r.step_seq <- r.step_seq + 1;
    let seq = r.step_seq in
    if not (String.equal v nil) then r.locked <- Some (r.round, v);
    let sig_ =
      Icc_crypto.Schnorr.sign r.auth
        (precommit_text ~h:r.height ~r:r.round ~v ~replica:r.id)
    in
    broadcast t ~src:r.id
      (Precommit { h = r.height; r = r.round; v; replica = r.id; sig_ });
    (* timeout: move to the next round of the same height *)
    Icc_sim.Engine.schedule t.engine ~delay:t.scenario.Harness.timeout (fun () ->
        if (not r.crashed) && r.step_seq = seq && r.step = Precommit
           && not r.deciding
        then start_round t r ~h:r.height ~round:(r.round + 1))
  end

and decide t r ~v =
  if not r.deciding then begin
    r.deciding <- true;
    r.step_seq <- r.step_seq + 1;
    r.decided <- v :: r.decided;
    r.locked <- None;
    if List.mem r.id t.honest then
      Harness.note_execution t.tracker ~digest:v ~time:(now t);
    (* the fixed commit wait before the next height: Tendermint's
       non-responsiveness — pacing is timeout-driven, not delay-driven *)
    let h = r.height in
    Icc_sim.Engine.schedule t.engine ~delay:t.scenario.Harness.timeout (fun () ->
        if (not r.crashed) && r.height = h then start_round t r ~h:(h + 1) ~round:0)
  end

let on_message t r msg =
  if not r.crashed then
    match msg with
    | Proposal { h; r = round; digest; size = _; sig_ } ->
        let src = proposer_of ~n:r.n ~h ~r:round in
        if
          Icc_crypto.Schnorr.verify r.auth_pub.(src - 1)
            (proposal_text ~h ~r:round ~digest) sig_
        then begin
          Hashtbl.replace r.proposals (h, round) (digest, 0);
          if h = r.height && round = r.round && r.step = Propose then
            cast_prevote t r ~v:digest
        end
    | Prevote { h; r = round; v; replica; sig_ } ->
        if
          Icc_crypto.Schnorr.verify r.auth_pub.(replica - 1)
            (prevote_text ~h ~r:round ~v ~replica) sig_
        then begin
          Hashtbl.replace (votes r.votes_pv (h, round, v)) replica ();
          if
            h = r.height && round = r.round && r.step = Prevote
            && (not (String.equal v nil))
            && Hashtbl.length (votes r.votes_pv (h, round, v)) >= quorum r
          then cast_precommit t r ~v
        end
    | Precommit { h; r = round; v; replica; sig_ } ->
        if
          Icc_crypto.Schnorr.verify r.auth_pub.(replica - 1)
            (precommit_text ~h ~r:round ~v ~replica) sig_
        then begin
          Hashtbl.replace (votes r.votes_pc (h, round, v)) replica ();
          if
            h = r.height
            && (not (String.equal v nil))
            && Hashtbl.length (votes r.votes_pc (h, round, v)) >= quorum r
          then decide t r ~v
        end

let run (scenario : Harness.scenario) : Harness.result =
  let n = scenario.Harness.n in
  let rng = Icc_sim.Rng.create scenario.Harness.seed in
  let key_rng = Icc_sim.Rng.split rng in
  let net_rng = Icc_sim.Rng.split rng in
  let keys =
    Array.init n (fun _ -> Icc_crypto.Schnorr.keygen (fun () -> Icc_sim.Rng.bits61 key_rng))
  in
  let auth_pub = Array.map snd keys in
  let env = Icc_sim.Transport.env ?trace:scenario.Harness.trace ~n () in
  let engine = env.Icc_sim.Transport.engine in
  let metrics = env.Icc_sim.Transport.metrics in
  let trace = env.Icc_sim.Transport.trace in
  let monitor = Harness.attach_monitor scenario env in
  Icc_sim.Trace.emit trace ~time:0.
    (Icc_sim.Trace.Run_start { n; label = "tendermint" });
  let net =
    Icc_sim.Transport.network_of env
      ~delay_model:(Harness.delay_model net_rng scenario.Harness.delay ~n) ()
  in
  Harness.install_nemesis scenario ~rng ~trace net;
  Harness.install_adversary scenario ~rng ~trace net;
  let adv_corrupt = Harness.adversary_corrupt scenario in
  let honest =
    List.init n (fun i -> i + 1)
    |> List.filter (fun id -> not (List.mem id scenario.Harness.crashed))
    |> List.filter (fun id -> not (List.mem_assoc id scenario.Harness.kill_at))
    |> List.filter (fun id -> not (List.mem id adv_corrupt))
  in
  let tracker = Harness.tracker ~n_honest:(List.length honest) ~trace in
  let replicas =
    Array.init n (fun i ->
        {
          id = i + 1;
          n;
          t = scenario.Harness.t;
          auth = fst keys.(i);
          auth_pub;
          crashed = List.mem (i + 1) scenario.Harness.crashed;
          height = 1;
          round = 0;
          step = Propose;
          locked = None;
          step_seq = 0;
          proposals = Hashtbl.create 64;
          votes_pv = Hashtbl.create 64;
          votes_pc = Hashtbl.create 64;
          decided = [];
          deciding = false;
        })
  in
  let t = { engine; net; replicas; scenario; tracker; honest } in
  Icc_sim.Network.set_handler net (fun ~dst ~src:_ msg ->
      on_message t replicas.(dst - 1) msg);
  List.iter
    (fun (id, time) ->
      Icc_sim.Engine.schedule_at engine ~time (fun () ->
          replicas.(id - 1).crashed <- true))
    scenario.Harness.kill_at;
  Array.iter (fun r -> start_round t r ~h:1 ~round:0) replicas;
  Icc_sim.Engine.run ~until:scenario.Harness.duration engine;
  let elapsed = Icc_sim.Engine.now engine in
  Icc_sim.Trace.emit trace ~time:elapsed
    (Icc_sim.Trace.Run_end { label = "tendermint" });
  let outputs =
    List.map (fun id -> (id, List.rev replicas.(id - 1).decided)) honest
  in
  {
    Harness.metrics;
    monitor;
    duration = elapsed;
    blocks_committed = tracker.Harness.decided;
    blocks_per_s = float_of_int tracker.Harness.decided /. elapsed;
    mean_latency = Icc_sim.Metrics.mean tracker.Harness.latencies;
    safety_ok = Harness.prefix_consistent outputs;
    outputs;
  }
