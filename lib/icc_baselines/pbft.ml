(* PBFT (Castro–Liskov [13]) on the shared simulator substrate: the
   baseline the paper's related-work comparison is anchored on.

   Implemented: the three-phase happy path (pre-prepare, prepare, commit
   with quorums 2t and n-t), in-order execution, and a view-change
   subprotocol carrying prepared certificates (simplified: no checkpoints
   or watermark garbage collection — the log is unbounded, as in the ICC
   pools).  The leader of view v is replica ((v-1) mod n) + 1.

   Known baseline characteristics this reproduces: latency 3·delta; the
   leader transmits the full batch to all n-1 replicas (the bottleneck the
   ICC protocols attack); a crashed leader stalls progress for the full
   view-change timeout. *)

type batch = {
  seq : int;
  view : int;
  size : int; (* modeled payload bytes *)
  noop : bool;
}

let digest_of (b : batch) =
  Icc_crypto.Sha256.to_hex
    (Icc_crypto.Sha256.digest_string
       (Printf.sprintf "pbft-batch|%d|%d|%d|%b" b.seq b.view b.size b.noop))

type msg =
  | Pre_prepare of { view : int; batch : batch; digest : string;
                     sig_ : Icc_crypto.Schnorr.signature }
  | Prepare of { view : int; seq : int; digest : string; replica : int;
                 sig_ : Icc_crypto.Schnorr.signature }
  | Commit of { view : int; seq : int; digest : string; replica : int;
                sig_ : Icc_crypto.Schnorr.signature }
  | View_change of { new_view : int; replica : int; max_seq : int;
                     prepared : (int * string * int * int) list;
                     (* seq, digest, view, size *)
                     sig_ : Icc_crypto.Schnorr.signature }
  | New_view of { new_view : int; batches : (batch * string) list;
                  sig_ : Icc_crypto.Schnorr.signature }

let msg_wire_size ~n:_ = function
  | Pre_prepare { batch; _ } -> 48 + batch.size
  | Prepare _ | Commit _ -> 112
  | View_change { prepared; _ } -> 112 + (48 * List.length prepared)
  | New_view { batches; _ } ->
      112 + List.fold_left (fun acc (b, _) -> acc + 48 + b.size) 0 batches

let msg_kind = function
  | Pre_prepare _ -> "pre-prepare"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | View_change _ -> "view-change"
  | New_view _ -> "new-view"

(* Signed-text encodings. *)
let pp_text ~view ~digest = Printf.sprintf "pbft-pp|%d|%s" view digest
let prepare_text ~view ~seq ~digest = Printf.sprintf "pbft-p|%d|%d|%s" view seq digest
let commit_text ~view ~seq ~digest = Printf.sprintf "pbft-c|%d|%d|%s" view seq digest
let vc_text ~new_view ~replica ~max_seq =
  Printf.sprintf "pbft-vc|%d|%d|%d" new_view replica max_seq
let nv_text ~new_view ~count = Printf.sprintf "pbft-nv|%d|%d" new_view count

type entry = {
  mutable batch : batch option;
  mutable digest : string;
  mutable pp_view : int; (* view of the accepted pre-prepare; -1 = none *)
  prepares : (int * string, (int, unit) Hashtbl.t) Hashtbl.t;
      (* (view, digest) -> voting replicas; votes arriving before the
         pre-prepare are buffered under their own key *)
  commits : (int * string, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable prepared : bool; (* for the current (pp_view, digest) binding *)
  mutable executed : bool;
}

let votes_for tbl key =
  match Hashtbl.find_opt tbl key with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.add tbl key h;
      h

type replica = {
  id : int;
  n : int;
  t : int;
  auth : Icc_crypto.Schnorr.secret_key;
  auth_pub : Icc_crypto.Schnorr.public_key array;
  mutable crashed : bool;
  mutable view : int;
  mutable next_seq : int; (* leader: next sequence to assign *)
  mutable next_exec : int;
  mutable max_seq_seen : int;
  log : (int, entry) Hashtbl.t;
  vc_votes : (int, (int, (int * string * int * int) list) Hashtbl.t) Hashtbl.t;
  mutable last_progress : float;
  mutable executed_digests : string list; (* newest first *)
}

type t = {
  engine : Icc_sim.Engine.t;
  net : msg Icc_sim.Network.t;
  replicas : replica array;
  scenario : Harness.scenario;
  tracker : Harness.tracker;
  honest : int list;
}

let leader_of ~n view = ((view - 1) mod n) + 1
let quorum r = r.n - r.t (* n - t = 2t + 1 when n = 3t + 1 *)

let entry_of r seq =
  match Hashtbl.find_opt r.log seq with
  | Some e -> e
  | None ->
      let e =
        {
          batch = None;
          digest = "";
          pp_view = -1;
          prepares = Hashtbl.create 8;
          commits = Hashtbl.create 8;
          prepared = false;
          executed = false;
        }
      in
      Hashtbl.add r.log seq e;
      e

let broadcast t ~src msg =
  Icc_sim.Network.broadcast t.net ~src ~size:(msg_wire_size ~n:t.scenario.Harness.n msg)
    ~kind:(msg_kind msg) msg

let now t = Icc_sim.Engine.now t.engine

(* Leader: assign sequence numbers to fresh batches while the pipeline
   window allows. *)
let rec try_propose t r =
  if (not r.crashed) && leader_of ~n:r.n r.view = r.id then begin
    let in_flight = r.next_seq - r.next_exec in
    if in_flight < t.scenario.Harness.pipeline_window then begin
      let batch =
        { seq = r.next_seq; view = r.view; size = t.scenario.Harness.block_size;
          noop = false }
      in
      r.next_seq <- r.next_seq + 1;
      let digest = digest_of batch in
      Harness.note_proposal t.tracker ~digest ~time:(now t);
      let sig_ =
        Icc_crypto.Schnorr.sign r.auth (pp_text ~view:r.view ~digest)
      in
      broadcast t ~src:r.id (Pre_prepare { view = r.view; batch; digest; sig_ });
      try_propose t r
    end
  end

and execute_ready t r =
  let rec go () =
    let e = Hashtbl.find_opt r.log r.next_exec in
    match e with
    | Some e
      when (not e.executed)
           && e.batch <> None
           && Hashtbl.length (votes_for e.commits (e.pp_view, e.digest))
              >= quorum r ->
        e.executed <- true;
        r.executed_digests <- e.digest :: r.executed_digests;
        r.last_progress <- now t;
        if List.mem r.id t.honest then
          Harness.note_execution t.tracker ~digest:e.digest ~time:(now t);
        r.next_exec <- r.next_exec + 1;
        go ()
    | _ -> ()
  in
  go ();
  try_propose t r

(* Accept a pre-prepare (from a leader's broadcast or a new-view message). *)
and accept_preprepare t r ~view ~(batch : batch) ~digest =
  let e = entry_of r batch.seq in
  if batch.seq > r.max_seq_seen then r.max_seq_seen <- batch.seq;
  if batch.seq >= r.next_seq then r.next_seq <- batch.seq + 1;
  (* Within one view a slot binds to at most one digest; a later view may
     rebind it (new-view re-proposals). *)
  if view > e.pp_view || (view = e.pp_view && String.equal digest e.digest)
  then begin
    if view > e.pp_view then e.prepared <- false;
    e.pp_view <- view;
    e.batch <- Some batch;
    e.digest <- digest;
    (* Backups broadcast Prepare; the primary's pre-prepare stands in for
       its prepare (canonical PBFT), giving the 3-delta commit latency. *)
    if leader_of ~n:r.n view <> r.id then begin
      let sig_ =
        Icc_crypto.Schnorr.sign r.auth
          (prepare_text ~view ~seq:batch.seq ~digest)
      in
      broadcast t ~src:r.id
        (Prepare { view; seq = batch.seq; digest; replica = r.id; sig_ })
    end;
    check_prepared t r e ~view ~seq:batch.seq
  end

and check_prepared t r (e : entry) ~view ~seq =
  if
    (not e.prepared) && e.pp_view = view && e.batch <> None
    && Hashtbl.length (votes_for e.prepares (view, e.digest)) >= 2 * r.t
  then begin
    e.prepared <- true;
    let sig_ =
      Icc_crypto.Schnorr.sign r.auth (commit_text ~view ~seq ~digest:e.digest)
    in
    broadcast t ~src:r.id
      (Commit { view; seq; digest = e.digest; replica = r.id; sig_ })
  end

(* View change: triggered by the progress timer. *)
and start_view_change t r ~new_view =
  if new_view > r.view then begin
    r.view <- new_view;
    (* canonical ascending-seq order: this list is emitted on the wire in
       the View_change message, so log bucket order must not leak (D2) *)
    let prepared =
      Hashtbl.fold
        (fun seq (e : entry) acc ->
          if e.prepared && not e.executed then
            match e.batch with
            | Some b -> (seq, e.digest, e.pp_view, b.size) :: acc
            | None -> acc
          else acc)
        r.log []
      |> List.sort (fun (s1, _, _, _) (s2, _, _, _) -> Int.compare s1 s2)
    in
    let sig_ =
      Icc_crypto.Schnorr.sign r.auth
        (vc_text ~new_view ~replica:r.id ~max_seq:r.max_seq_seen)
    in
    broadcast t ~src:r.id
      (View_change { new_view; replica = r.id; max_seq = r.max_seq_seen; prepared; sig_ })
  end

and on_view_change t r ~new_view ~replica ~max_seq ~prepared =
  if new_view >= r.view then begin
    let per_view =
      match Hashtbl.find_opt r.vc_votes new_view with
      | Some h -> h
      | None ->
          let h = Hashtbl.create 8 in
          Hashtbl.add r.vc_votes new_view h;
          h
    in
    if not (Hashtbl.mem per_view replica) then begin
      Hashtbl.replace per_view replica prepared;
      if max_seq > r.max_seq_seen then r.max_seq_seen <- max_seq;
      (* Join a view change once t+1 replicas support it. *)
      if Hashtbl.length per_view >= r.t + 1 && new_view > r.view then
        start_view_change t r ~new_view;
      (* The new leader installs the view at n-t support. *)
      if
        Hashtbl.length per_view >= quorum r
        && leader_of ~n:r.n new_view = r.id
        && r.view <= new_view
      then begin
        r.view <- new_view;
        (* Re-propose prepared batches (highest pre-prepare view wins per
           slot) and fill unprepared gaps with no-ops. *)
        let best : (int, string * int * int) Hashtbl.t = Hashtbl.create 16 in
        (* visit votes in ascending replica order: a Byzantine pair of
           equal-view, different-digest claims would otherwise be resolved
           by bucket order (D2) *)
        Hashtbl.fold (fun replica prep acc -> (replica, prep) :: acc) per_view []
        |> List.sort (fun (r1, _) (r2, _) -> Int.compare r1 r2)
        |> List.iter (fun (_, prep) ->
               List.iter
                 (fun (seq, digest, view, size) ->
                   match Hashtbl.find_opt best seq with
                   | Some (_, v, _) when v >= view -> ()
                   | _ -> Hashtbl.replace best seq (digest, view, size))
                 prep);
        let batches = ref [] in
        for seq = r.max_seq_seen downto r.next_exec do
          let batch, digest =
            match Hashtbl.find_opt best seq with
            | Some (digest, _, size) ->
                ({ seq; view = new_view; size; noop = false }, digest)
            | None ->
                let b = { seq; view = new_view; size = 0; noop = true } in
                (b, digest_of b)
          in
          batches := (batch, digest) :: !batches
        done;
        let sig_ =
          Icc_crypto.Schnorr.sign r.auth
            (nv_text ~new_view ~count:(List.length !batches))
        in
        broadcast t ~src:r.id (New_view { new_view; batches = !batches; sig_ });
        r.next_seq <- max r.next_seq (r.max_seq_seen + 1);
        r.last_progress <- now t;
        try_propose t r
      end
    end
  end

let on_message t r msg =
  if not r.crashed then
    match msg with
    | Pre_prepare { view; batch; digest; sig_ } ->
        let src = leader_of ~n:r.n view in
        if
          view = r.view
          && String.equal digest (digest_of batch)
          && Icc_crypto.Schnorr.verify r.auth_pub.(src - 1)
               (pp_text ~view ~digest) sig_
        then accept_preprepare t r ~view ~batch ~digest
    | Prepare { view; seq; digest; replica; sig_ } ->
        if
          Icc_crypto.Schnorr.verify r.auth_pub.(replica - 1)
            (prepare_text ~view ~seq ~digest) sig_
        then begin
          let e = entry_of r seq in
          Hashtbl.replace (votes_for e.prepares (view, digest)) replica ();
          check_prepared t r e ~view ~seq
        end
    | Commit { view; seq; digest; replica; sig_ } ->
        if
          Icc_crypto.Schnorr.verify r.auth_pub.(replica - 1)
            (commit_text ~view ~seq ~digest) sig_
        then begin
          let e = entry_of r seq in
          Hashtbl.replace (votes_for e.commits (view, digest)) replica ();
          execute_ready t r
        end
    | View_change { new_view; replica; max_seq; prepared; sig_ } ->
        if
          Icc_crypto.Schnorr.verify r.auth_pub.(replica - 1)
            (vc_text ~new_view ~replica ~max_seq) sig_
        then on_view_change t r ~new_view ~replica ~max_seq ~prepared
    | New_view { new_view; batches; sig_ } ->
        let src = leader_of ~n:r.n new_view in
        if
          new_view >= r.view
          && Icc_crypto.Schnorr.verify r.auth_pub.(src - 1)
               (nv_text ~new_view ~count:(List.length batches)) sig_
        then begin
          r.view <- new_view;
          r.last_progress <- now t;
          List.iter
            (fun (batch, digest) ->
              accept_preprepare t r ~view:new_view ~batch ~digest)
            batches
        end

let run (scenario : Harness.scenario) : Harness.result =
  let n = scenario.Harness.n in
  let rng = Icc_sim.Rng.create scenario.Harness.seed in
  let key_rng = Icc_sim.Rng.split rng in
  let net_rng = Icc_sim.Rng.split rng in
  let keys = Array.init n (fun _ -> Icc_crypto.Schnorr.keygen (fun () -> Icc_sim.Rng.bits61 key_rng)) in
  let auth_pub = Array.map snd keys in
  let env = Icc_sim.Transport.env ?trace:scenario.Harness.trace ~n () in
  let engine = env.Icc_sim.Transport.engine in
  let metrics = env.Icc_sim.Transport.metrics in
  let trace = env.Icc_sim.Transport.trace in
  let monitor = Harness.attach_monitor scenario env in
  Icc_sim.Trace.emit trace ~time:0.
    (Icc_sim.Trace.Run_start { n; label = "pbft" });
  let net =
    Icc_sim.Transport.network_of env
      ~delay_model:(Harness.delay_model net_rng scenario.Harness.delay ~n) ()
  in
  Harness.install_nemesis scenario ~rng ~trace net;
  Harness.install_adversary scenario ~rng ~trace net;
  let adv_corrupt = Harness.adversary_corrupt scenario in
  let honest =
    List.init n (fun i -> i + 1)
    |> List.filter (fun id -> not (List.mem id scenario.Harness.crashed))
    |> List.filter (fun id -> not (List.mem_assoc id scenario.Harness.kill_at))
    |> List.filter (fun id -> not (List.mem id adv_corrupt))
  in
  let tracker = Harness.tracker ~n_honest:(List.length honest) ~trace in
  let replicas =
    Array.init n (fun i ->
        {
          id = i + 1;
          n;
          t = scenario.Harness.t;
          auth = fst keys.(i);
          auth_pub;
          crashed = List.mem (i + 1) scenario.Harness.crashed;
          view = 1;
          next_seq = 1;
          next_exec = 1;
          max_seq_seen = 0;
          log = Hashtbl.create 64;
          vc_votes = Hashtbl.create 8;
          last_progress = 0.;
          executed_digests = [];
        })
  in
  let t = { engine; net; replicas; scenario; tracker; honest } in
  Icc_sim.Network.set_handler net (fun ~dst ~src:_ msg ->
      on_message t replicas.(dst - 1) msg);
  List.iter
    (fun (id, time) ->
      Icc_sim.Engine.schedule_at engine ~time (fun () ->
          replicas.(id - 1).crashed <- true))
    scenario.Harness.kill_at;
  (* Progress timers drive view changes. *)
  let rec watchdog id time =
    if time <= scenario.Harness.duration then
      Icc_sim.Engine.schedule_at engine ~time (fun () ->
          let r = replicas.(id - 1) in
          if
            (not r.crashed)
            && Icc_sim.Engine.now engine -. r.last_progress
               > scenario.Harness.timeout
          then begin
            r.last_progress <- Icc_sim.Engine.now engine;
            start_view_change t r ~new_view:(r.view + 1)
          end;
          watchdog id (time +. (scenario.Harness.timeout /. 2.)))
  in
  for id = 1 to n do
    watchdog id (scenario.Harness.timeout *. (1. +. (0.01 *. float_of_int id)))
  done;
  (* Kick off view 1. *)
  Array.iter (fun r -> try_propose t r) replicas;
  Icc_sim.Engine.run ~until:scenario.Harness.duration engine;
  let elapsed = Icc_sim.Engine.now engine in
  Icc_sim.Trace.emit trace ~time:elapsed
    (Icc_sim.Trace.Run_end { label = "pbft" });
  let outputs =
    List.map
      (fun id -> (id, List.rev replicas.(id - 1).executed_digests))
      honest
  in
  {
    Harness.metrics;
    monitor;
    duration = elapsed;
    blocks_committed = tracker.Harness.decided;
    blocks_per_s = float_of_int tracker.Harness.decided /. elapsed;
    mean_latency = Icc_sim.Metrics.mean tracker.Harness.latencies;
    safety_ok = Harness.prefix_consistent outputs;
    outputs;
  }
