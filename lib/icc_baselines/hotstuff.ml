(* Chained (pipelined) HotStuff [36] on the shared simulator substrate.

   One view per block: the leader of view v proposes a node justified by the
   highest QC it knows; replicas vote (multisignature shares) to the leader
   of view v+1, who aggregates the QC and proposes the next node.  A node
   commits when it heads a three-chain of consecutive views (the chained
   commit rule); the safeNode predicate uses the two-chain lock.

   Known baseline characteristics this reproduces: reciprocal throughput
   2·delta (one block per view, a view is propose + vote), commit latency
   ≈ 6–7·delta (three further chained views), linear happy-path message
   complexity but leader-borne block dissemination, and a pacemaker that
   stalls for the view timeout when a leader has crashed. *)

type node = {
  view : int;
  parent : string; (* hash of parent node *)
  size : int; (* modeled payload bytes *)
  proposer : int;
}

let hash_of (nd : node) =
  Icc_crypto.Sha256.to_hex
    (Icc_crypto.Sha256.digest_string
       (Printf.sprintf "hs|%d|%s|%d|%d" nd.view nd.parent nd.size nd.proposer))

let genesis_hash = "hs-genesis"

type qc =
  | Genesis_qc
  | Qc of { qc_view : int; qc_hash : string; agg : Icc_crypto.Multisig.signature }

let qc_view = function Genesis_qc -> 0 | Qc { qc_view; _ } -> qc_view
let qc_hash = function Genesis_qc -> genesis_hash | Qc { qc_hash; _ } -> qc_hash

let vote_text ~view ~hash = Printf.sprintf "hs-vote|%d|%s" view hash
let proposal_text ~view ~hash = Printf.sprintf "hs-prop|%d|%s" view hash
let newview_text ~view ~replica = Printf.sprintf "hs-nv|%d|%d" view replica

type msg =
  | Proposal of { node : node; justify : qc; sig_ : Icc_crypto.Schnorr.signature }
  | Vote of { view : int; hash : string; share : Icc_crypto.Multisig.share }
  | New_view of { view : int; justify : qc; replica : int;
                  sig_ : Icc_crypto.Schnorr.signature }

let msg_wire_size ~n = function
  | Proposal { node; _ } -> 24 + node.size + 64 + 48 + ((n + 7) / 8)
  | Vote _ -> 92
  | New_view _ -> 64 + 48 + ((n + 7) / 8)

let msg_kind = function
  | Proposal _ -> "hs-proposal"
  | Vote _ -> "hs-vote"
  | New_view _ -> "hs-new-view"

type replica = {
  id : int;
  n : int;
  t : int;
  auth : Icc_crypto.Schnorr.secret_key;
  auth_pub : Icc_crypto.Schnorr.public_key array;
  notary : Icc_crypto.Multisig.params;
  notary_key : Icc_crypto.Multisig.secret;
  mutable crashed : bool;
  mutable view : int;
  mutable voted_view : int;
  mutable locked : qc;
  mutable high : qc;
  nodes : (string, node) Hashtbl.t;
  justifies : (string, qc) Hashtbl.t; (* node hash -> QC it carried *)
  votes : (int * string, Icc_crypto.Multisig.share list ref) Hashtbl.t;
  nv_votes : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable proposed_view : int; (* last view this replica proposed in *)
  executed : (string, unit) Hashtbl.t;
  mutable executed_order : string list; (* newest first *)
  mutable last_progress : float;
}

type t = {
  engine : Icc_sim.Engine.t;
  net : msg Icc_sim.Network.t;
  replicas : replica array;
  scenario : Harness.scenario;
  tracker : Harness.tracker;
  honest : int list;
}

let leader_of ~n view = ((view - 1) mod n) + 1
let quorum r = r.n - r.t

let now t = Icc_sim.Engine.now t.engine

let broadcast t ~src msg =
  Icc_sim.Network.broadcast t.net ~src
    ~size:(msg_wire_size ~n:t.scenario.Harness.n msg)
    ~kind:(msg_kind msg) msg

let unicast t ~src ~dst msg =
  Icc_sim.Network.unicast t.net ~src ~dst
    ~size:(msg_wire_size ~n:t.scenario.Harness.n msg)
    ~kind:(msg_kind msg) msg

let qc_valid r = function
  | Genesis_qc -> true
  | Qc { qc_view; qc_hash; agg } ->
      Icc_crypto.Multisig.verify r.notary (vote_text ~view:qc_view ~hash:qc_hash) agg

(* Does the branch of [h] contain [ancestor]? *)
let extends r ~h ~ancestor =
  let rec walk h fuel =
    fuel > 0
    && (String.equal h ancestor
       ||
       match Hashtbl.find_opt r.nodes h with
       | Some nd -> walk nd.parent (fuel - 1)
       | None -> false)
  in
  String.equal h ancestor || walk h 10_000

let rec propose t r ~view =
  if
    (not r.crashed) && leader_of ~n:r.n view = r.id && r.proposed_view < view
    && r.view = view
  then begin
    r.proposed_view <- view;
    let node =
      { view; parent = qc_hash r.high; size = t.scenario.Harness.block_size;
        proposer = r.id }
    in
    let h = hash_of node in
    Harness.note_proposal t.tracker ~digest:h ~time:(now t);
    let sig_ = Icc_crypto.Schnorr.sign r.auth (proposal_text ~view ~hash:h) in
    broadcast t ~src:r.id (Proposal { node; justify = r.high; sig_ })
  end

and enter_view t r view =
  (* Advancing views does not by itself trigger a proposal: the leader of
     view v proposes only once it holds a QC for v-1 (vote aggregation,
     update_high) or a New_view quorum — proposing on entry would fork from
     a stale high-QC. *)
  if view > r.view then begin
    r.view <- view;
    r.last_progress <- now t
  end

and update_high t r (q : qc) =
  if qc_view q > qc_view r.high then r.high <- q;
  (* Seeing a QC for view v moves us to view v+1; if we already advanced
     there by voting, the QC is still our cue to propose. *)
  let next = qc_view q + 1 in
  enter_view t r next;
  if r.view = next then propose t r ~view:next

(* Execute [h] and its unexecuted ancestors, oldest first.  If an ancestor
   was never delivered (lossy links, straggling sender) the whole chain
   stays unexecuted: executing across the gap would fork this replica's
   executed prefix.  Real HotStuff fetches the missing node first; the
   model simply waits, trading liveness for safety. *)
and execute t r h =
  let rec collect h acc =
    if String.equal h genesis_hash || Hashtbl.mem r.executed h then Some acc
    else
      match Hashtbl.find_opt r.nodes h with
      | Some nd -> collect nd.parent (h :: acc)
      | None -> None
  in
  match collect h [] with
  | None -> ()
  | Some chain ->
      List.iter
        (fun h ->
          Hashtbl.replace r.executed h ();
          r.executed_order <- h :: r.executed_order;
          if List.mem r.id t.honest then
            Harness.note_execution t.tracker ~digest:h ~time:(now t))
        chain

(* The chained commit rule: a proposal's justify closes a potential
   three-chain b0 <- b1 <- b2 with consecutive views; b0 commits. *)
and try_commit t r (justify : qc) =
  match justify with
  | Genesis_qc -> ()
  | Qc { qc_hash = h2; _ } -> (
      match (Hashtbl.find_opt r.nodes h2, Hashtbl.find_opt r.justifies h2) with
      | Some b2, Some qc1 -> (
          (* two-chain: lock on b1 *)
          if qc_view qc1 > qc_view r.locked then r.locked <- qc1;
          let h1 = qc_hash qc1 in
          match (Hashtbl.find_opt r.nodes h1, Hashtbl.find_opt r.justifies h1) with
          | Some b1, Some qc0 ->
              let h0 = qc_hash qc0 in
              if
                (not (String.equal h0 genesis_hash))
                && b2.view = b1.view + 1
                &&
                match Hashtbl.find_opt r.nodes h0 with
                | Some b0 -> b1.view = b0.view + 1
                | None -> false
              then execute t r h0
          | _ -> ())
      | _ -> ())

and on_message t r msg =
  if not r.crashed then
    match msg with
    | Proposal { node; justify; sig_ } ->
        let h = hash_of node in
        if
          node.proposer = leader_of ~n:r.n node.view
          && Icc_crypto.Schnorr.verify r.auth_pub.(node.proposer - 1)
               (proposal_text ~view:node.view ~hash:h) sig_
          && qc_valid r justify
          && String.equal node.parent (qc_hash justify)
        then begin
          Hashtbl.replace r.nodes h node;
          Hashtbl.replace r.justifies h justify;
          r.last_progress <- now t;
          update_high t r justify;
          try_commit t r justify;
          (* safeNode: extends the locked branch, or carries a newer QC *)
          let safe =
            extends r ~h ~ancestor:(qc_hash r.locked)
            || qc_view justify > qc_view r.locked
          in
          if node.view >= r.view && r.voted_view < node.view && safe then begin
            r.voted_view <- node.view;
            let share =
              Icc_crypto.Multisig.sign_share r.notary r.notary_key
                (vote_text ~view:node.view ~hash:h)
            in
            unicast t ~src:r.id
              ~dst:(leader_of ~n:r.n (node.view + 1))
              (Vote { view = node.view; hash = h; share });
            (* a voting replica moves to the next view *)
            enter_view t r (node.view + 1)
          end
        end
    | Vote { view; hash; share } ->
        if
          leader_of ~n:r.n (view + 1) = r.id
          && Icc_crypto.Multisig.verify_share r.notary
               (vote_text ~view ~hash) share
        then begin
          let key = (view, hash) in
          let l =
            match Hashtbl.find_opt r.votes key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add r.votes key l;
                l
          in
          if
            not
              (List.exists
                 (fun (s : Icc_crypto.Multisig.share) ->
                   s.Icc_crypto.Multisig.signer
                   = share.Icc_crypto.Multisig.signer)
                 !l)
          then begin
            l := share :: !l;
            if List.length !l >= quorum r then
              match
                Icc_crypto.Multisig.combine r.notary (vote_text ~view ~hash) !l
              with
              | Some agg ->
                  update_high t r (Qc { qc_view = view; qc_hash = hash; agg })
              | None -> ()
          end
        end
    | New_view { view; justify; replica; sig_ } ->
        if
          Icc_crypto.Schnorr.verify r.auth_pub.(replica - 1)
            (newview_text ~view ~replica) sig_
          && qc_valid r justify
        then begin
          if qc_view justify > qc_view r.high then r.high <- justify;
          let per_view =
            match Hashtbl.find_opt r.nv_votes view with
            | Some h -> h
            | None ->
                let h = Hashtbl.create 8 in
                Hashtbl.add r.nv_votes view h;
                h
          in
          Hashtbl.replace per_view replica ();
          if Hashtbl.length per_view >= quorum r && leader_of ~n:r.n view = r.id
          then begin
            enter_view t r view;
            propose t r ~view
          end
        end

let run (scenario : Harness.scenario) : Harness.result =
  let n = scenario.Harness.n in
  let rng = Icc_sim.Rng.create scenario.Harness.seed in
  let key_rng = Icc_sim.Rng.split rng in
  let net_rng = Icc_sim.Rng.split rng in
  let bits () = Icc_sim.Rng.bits61 key_rng in
  let keys = Array.init n (fun _ -> Icc_crypto.Schnorr.keygen bits) in
  let auth_pub = Array.map snd keys in
  let notary, notary_secrets =
    Icc_crypto.Multisig.setup ~threshold_h:(n - scenario.Harness.t) ~n bits
  in
  let env = Icc_sim.Transport.env ?trace:scenario.Harness.trace ~n () in
  let engine = env.Icc_sim.Transport.engine in
  let metrics = env.Icc_sim.Transport.metrics in
  let trace = env.Icc_sim.Transport.trace in
  let monitor = Harness.attach_monitor scenario env in
  Icc_sim.Trace.emit trace ~time:0.
    (Icc_sim.Trace.Run_start { n; label = "hotstuff" });
  let net =
    Icc_sim.Transport.network_of env
      ~delay_model:(Harness.delay_model net_rng scenario.Harness.delay ~n) ()
  in
  Harness.install_nemesis scenario ~rng ~trace net;
  Harness.install_adversary scenario ~rng ~trace net;
  let adv_corrupt = Harness.adversary_corrupt scenario in
  let honest =
    List.init n (fun i -> i + 1)
    |> List.filter (fun id -> not (List.mem id scenario.Harness.crashed))
    |> List.filter (fun id -> not (List.mem_assoc id scenario.Harness.kill_at))
    |> List.filter (fun id -> not (List.mem id adv_corrupt))
  in
  let tracker = Harness.tracker ~n_honest:(List.length honest) ~trace in
  let replicas =
    Array.init n (fun i ->
        {
          id = i + 1;
          n;
          t = scenario.Harness.t;
          auth = fst keys.(i);
          auth_pub;
          notary;
          notary_key = List.nth notary_secrets i;
          crashed = List.mem (i + 1) scenario.Harness.crashed;
          view = 1;
          voted_view = 0;
          locked = Genesis_qc;
          high = Genesis_qc;
          nodes = Hashtbl.create 64;
          justifies = Hashtbl.create 64;
          votes = Hashtbl.create 64;
          nv_votes = Hashtbl.create 8;
          proposed_view = 0;
          executed = Hashtbl.create 64;
          executed_order = [];
          last_progress = 0.;
        })
  in
  let t = { engine; net; replicas; scenario; tracker; honest } in
  Icc_sim.Network.set_handler net (fun ~dst ~src:_ msg ->
      on_message t replicas.(dst - 1) msg);
  List.iter
    (fun (id, time) ->
      Icc_sim.Engine.schedule_at engine ~time (fun () ->
          replicas.(id - 1).crashed <- true))
    scenario.Harness.kill_at;
  (* Pacemaker: on a stalled view, advance and send New_view to its leader. *)
  let rec watchdog id time =
    if time <= scenario.Harness.duration then
      Icc_sim.Engine.schedule_at engine ~time (fun () ->
          let r = replicas.(id - 1) in
          if
            (not r.crashed)
            && Icc_sim.Engine.now engine -. r.last_progress
               > scenario.Harness.timeout
          then begin
            r.last_progress <- Icc_sim.Engine.now engine;
            let next = r.view + 1 in
            r.view <- next;
            let sig_ =
              Icc_crypto.Schnorr.sign r.auth (newview_text ~view:next ~replica:r.id)
            in
            unicast t ~src:r.id ~dst:(leader_of ~n:r.n next)
              (New_view { view = next; justify = r.high; replica = r.id; sig_ })
          end;
          watchdog id (time +. (scenario.Harness.timeout /. 2.)))
  in
  for id = 1 to n do
    watchdog id (scenario.Harness.timeout *. (1. +. (0.01 *. float_of_int id)))
  done;
  propose t replicas.(leader_of ~n 1 - 1) ~view:1;
  Icc_sim.Engine.run ~until:scenario.Harness.duration engine;
  let elapsed = Icc_sim.Engine.now engine in
  Icc_sim.Trace.emit trace ~time:elapsed
    (Icc_sim.Trace.Run_end { label = "hotstuff" });
  let outputs =
    List.map (fun id -> (id, List.rev replicas.(id - 1).executed_order)) honest
  in
  {
    Harness.metrics;
    monitor;
    duration = elapsed;
    blocks_committed = tracker.Harness.decided;
    blocks_per_s = float_of_int tracker.Harness.decided /. elapsed;
    mean_latency = Icc_sim.Metrics.mean tracker.Harness.latencies;
    safety_ok = Harness.prefix_consistent outputs;
    outputs;
  }
