(* Shared scenario/result shapes for the baseline protocols (PBFT, chained
   HotStuff), mirroring Icc_core.Runner so experiment code can compare the
   protocols on identical workloads and networks. *)

type scenario = {
  n : int;
  t : int;
  seed : int;
  delay : Icc_core.Runner.delay_spec;
  duration : float;
  block_size : int; (* modeled batch payload bytes *)
  crashed : int list;
  kill_at : (int * float) list;
  timeout : float; (* view-change / pacemaker timeout *)
  pipeline_window : int; (* PBFT: batches in flight *)
  trace : Icc_sim.Trace.t option; (* observe the run; None = untraced *)
  monitor : Icc_sim.Monitor.config option; (* online invariant monitor *)
  nemesis : Icc_sim.Fault.script option; (* link faults on the baseline's net *)
  adversary : Icc_sim.Adversary.script option; (* Byzantine strategies *)
}

let default_scenario ~n ~seed =
  {
    n;
    t = Icc_crypto.Keygen.max_corrupt ~n;
    seed;
    delay = Icc_core.Runner.Fixed_delay 0.05;
    duration = 30.;
    block_size = 512;
    crashed = [];
    kill_at = [];
    timeout = 1.0;
    pipeline_window = 1;
    trace = None;
    monitor = None;
    nemesis = None;
    adversary = None;
  }

(* Attach the scenario's monitor to a freshly built transport env; called
   by each baseline right after [Transport.env], before any event flows. *)
let attach_monitor scenario (env : Icc_sim.Transport.env) =
  Option.map
    (fun config -> Icc_sim.Monitor.attach ~config env.Icc_sim.Transport.trace)
    scenario.monitor

(* Install the scenario's nemesis (if any) on a baseline's network.  The
   baselines honour only the link faults (drop / duplicate / reorder /
   flap / partition); crash and recover directives are ignored — use
   [crashed] / [kill_at] for baseline crash faults.  The fault RNG is split
   only when a script is present, preserving historical streams. *)
let install_nemesis scenario ~rng ~trace net =
  match scenario.nemesis with
  | None -> ()
  | Some script ->
      let fault =
        Icc_sim.Fault.create ~rng:(Icc_sim.Rng.split rng) ~trace script
      in
      Icc_sim.Network.set_fault net fault

(* Wire-kind classifier enabling network-level share withholding for the
   baselines: they have no protocol-layer adversary hooks, so a corrupt
   replica's "shares" (votes) are suppressed as they hit the network.  The
   kind strings are disjoint across the three baselines, so one classifier
   serves all.  Equivocation directives are inert here (the baselines'
   proposers are not scriptable); censor/delay/straggle/crash apply as on
   any network. *)
let baseline_classify kind =
  match kind with
  | "prepare" | "hs-vote" | "tm-prevote" -> Some Icc_sim.Adversary.Notar
  | "commit" | "tm-precommit" -> Some Icc_sim.Adversary.Final
  | _ -> None

(* Install the scenario's adversary (if any) on a baseline's network; the
   RNG is split only when a non-empty script is present, preserving
   historical streams.  Only statically targeted directives apply — the
   baselines never call note_round, so adaptive (Any-targeted) directives
   stay dormant. *)
let install_adversary scenario ~rng ~trace net =
  match scenario.adversary with
  | None | Some [] -> ()
  | Some script ->
      let adv =
        Icc_sim.Adversary.create ~rng:(Icc_sim.Rng.split rng) ~trace
          ~n:scenario.n ~classify:baseline_classify script
      in
      Icc_sim.Network.set_adversary net adv

(* Statically corrupt replicas leave the honest set, like [crashed]. *)
let adversary_corrupt scenario =
  match scenario.adversary with
  | None -> []
  | Some script -> Icc_sim.Adversary.static_corrupt script

type result = {
  metrics : Icc_sim.Metrics.t;
  monitor : Icc_sim.Monitor.t option;
  duration : float;
  blocks_committed : int; (* decided by every honest replica *)
  blocks_per_s : float;
  mean_latency : float; (* propose -> all honest executed *)
  safety_ok : bool; (* executed sequences prefix-consistent *)
  outputs : (int * string list) list; (* replica, executed digests in order *)
}

let delay_model rng (spec : Icc_core.Runner.delay_spec) ~n :
    Icc_sim.Network.delay_model =
  match spec with
  | Icc_core.Runner.Fixed_delay d -> Fixed d
  | Icc_core.Runner.Uniform_delay (lo, hi) -> Uniform { rng; lo; hi }
  | Icc_core.Runner.Wan { rtt_lo; rtt_hi } ->
      Matrix (Icc_sim.Network.wan_matrix rng ~n ~rtt_lo ~rtt_hi)

let prefix_consistent outputs =
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> String.equal x y && is_prefix xs ys
  in
  let rec pairs = function
    | [] -> true
    | (_, c1) :: rest ->
        List.for_all
          (fun (_, c2) -> is_prefix c1 c2 || is_prefix c2 c1)
          rest
        && pairs rest
  in
  pairs outputs

(* Commit tracker shared by the baselines: a batch counts as decided when
   every honest replica has executed it. *)
type tracker = {
  n_honest : int;
  trace : Icc_sim.Trace.t;
  counts : (string, int) Hashtbl.t;
  mutable decided : int;
  mutable latencies : float list;
  propose_times : (string, float) Hashtbl.t;
}

let tracker ~n_honest ~trace =
  {
    n_honest;
    trace;
    counts = Hashtbl.create 256;
    decided = 0;
    latencies = [];
    propose_times = Hashtbl.create 256;
  }

let note_proposal tr ~digest ~time =
  if not (Hashtbl.mem tr.propose_times digest) then
    Hashtbl.add tr.propose_times digest time

let note_execution tr ~digest ~time =
  let c = 1 + Option.value ~default:0 (Hashtbl.find_opt tr.counts digest) in
  Hashtbl.replace tr.counts digest c;
  if c = tr.n_honest then begin
    tr.decided <- tr.decided + 1;
    let block =
      if String.length digest > 12 then String.sub digest 0 12 else digest
    in
    Icc_sim.Trace.emit tr.trace ~time
      (Icc_sim.Trace.Block_decided { round = tr.decided; block });
    match Hashtbl.find_opt tr.propose_times digest with
    | Some t0 -> tr.latencies <- (time -. t0) :: tr.latencies
    | None -> ()
  end
