(* Erasure-coded reliable broadcast — the block-dissemination subprotocol of
   Protocol ICC2 (paper §1: "a low-communication reliable broadcast
   subprotocol ... based on erasure codes", in the lineage of
   Cachin–Tessaro [11] with one less round of latency).

   To broadcast a block bundle of modeled size S among n parties with at
   most t corruptions:

     1. Send: the proposer Reed–Solomon-encodes the serialized bundle with
        k = t+1 data fragments out of n total, builds a Merkle tree over
        the fragments, signs the root, and sends party i its fragment i
        with an inclusion proof.
     2. Echo: on first receipt of its own valid fragment, each party
        forwards that fragment (with proof) to all parties.
     3. Reconstruct: holding k root-consistent fragments, a party decodes,
        re-encodes, and compares the recomputed Merkle root to the signed
        root; on success the bundle is delivered to the ICC round logic.
        A mismatch marks the instance bad and nothing is delivered.

   Per-party cost: n fragments of ~S/(t+1) ≈ 3S/n bytes in each direction,
   i.e. O(S) bits per party once S = Ω(n λ log n) — the paper's ICC2 bound.
   The ICC notarization share plays the role of the usual "ready" phase,
   which is where the integration with the consensus layer saves latency.

   Each party echoes at most two instances per (round, proposer), the
   RBC analogue of Fig. 1's at-most-two-echoes-per-rank rule, so equivocating
   proposers cannot inflate traffic.

   Small messages (shares, certificates, beacon shares) bypass the RBC and
   are broadcast directly. *)

type frag = {
  f_round : int;
  f_proposer : int;
  f_root : Icc_crypto.Sha256.t;
  f_index : int; (* 0-based fragment index; party i holds index i-1 *)
  f_data_size : int; (* real serialized byte length *)
  f_modeled_total : int; (* modeled bundle wire size, for traffic accounting *)
  f_bytes : string;
  f_proof : Icc_crypto.Merkle.proof;
  f_sig : Icc_crypto.Schnorr.signature; (* proposer's signature binding the root *)
}

type wire = Core of Icc_core.Message.t | Frag of frag

type instance_key = int * int * string (* round, proposer, root hex *)

type instance = {
  mutable fragments : (int * string) list; (* index, bytes; proof-verified *)
  mutable echoed : bool;
  mutable delivered : bool;
  mutable bad : bool;
}

type t = {
  n : int;
  k : int; (* t + 1 data fragments *)
  system : Icc_crypto.Keygen.system;
  keys : Icc_crypto.Keygen.party_keys array;
  engine : Icc_sim.Engine.t;
  trace : Icc_sim.Trace.t;
  net : wire Icc_sim.Network.t;
  instances : (int * instance_key, instance) Hashtbl.t; (* keyed by party *)
  echo_budget : (int * int * int, int) Hashtbl.t;
      (* (party, round, proposer) -> instances echoed so far (max 2) *)
  rbc_delivered : (int * int * string, unit) Hashtbl.t;
      (* (party, round, block hash hex): blocks this party obtained through
         the RBC, whose totality the fragment echo already guarantees *)
  is_active : int -> bool;
  deliver_up : dst:int -> Icc_core.Message.t -> unit;
}

let root_text ~round ~proposer root =
  Printf.sprintf "rbc|%d|%d|%s" round proposer (Icc_crypto.Sha256.to_hex root)

let serialize = Icc_core.Codec.encode
let deserialize = Icc_core.Codec.decode

(* Modeled wire size of one fragment: header + data slice + Merkle proof +
   root signature. *)
let frag_wire_size t (f : frag) =
  24
  + ((f.f_modeled_total + t.k - 1) / t.k)
  + Icc_crypto.Merkle.proof_wire_size ~n_leaves:t.n
  + Icc_crypto.Schnorr.signature_wire_size

let wire_size t = function
  | Core m -> Icc_core.Message.wire_size ~n:t.n m
  | Frag f -> frag_wire_size t f

let wire_kind = function
  | Core m -> Icc_core.Message.kind m
  | Frag _ -> "rbc-fragment"

(* RBC-layer events are detail-level: constructed only when a full trace
   subscriber is present. *)
let emit_detail t ev =
  if Icc_sim.Trace.detailed t.trace then
    Icc_sim.Trace.emit t.trace ~time:(Icc_sim.Engine.now t.engine) (ev ())

let send t ~src ~dst w =
  Icc_sim.Network.unicast t.net ~src ~dst ~size:(wire_size t w)
    ~kind:(wire_kind w) w

let broadcast_wire t ~src w =
  Icc_sim.Network.broadcast t.net ~src ~size:(wire_size t w)
    ~kind:(wire_kind w) w

let instance_of t ~party key =
  match Hashtbl.find_opt t.instances (party, key) with
  | Some i -> i
  | None ->
      let i = { fragments = []; echoed = false; delivered = false; bad = false } in
      Hashtbl.add t.instances (party, key) i;
      i

(* The proposer's Send step (and self-delivery of the full bundle). *)
let disseminate t ~src (msg : Icc_core.Message.t) =
  Icc_obs.Profile.span "rbc.disseminate" @@ fun () ->
  let data = serialize msg in
  let coded = Icc_erasure.Reed_solomon.encode ~k:t.k ~n:t.n data in
  let leaves = Array.to_list coded.Icc_erasure.Reed_solomon.fragments in
  let root = Icc_crypto.Merkle.root_of_leaves leaves in
  let round, proposer =
    match msg with
    | Icc_core.Message.Proposal p ->
        (p.p_block.Icc_core.Block.round, p.p_block.Icc_core.Block.proposer)
    | Icc_core.Message.Notarization_share _ | Icc_core.Message.Notarization _
    | Icc_core.Message.Finalization_share _ | Icc_core.Message.Finalization _
    | Icc_core.Message.Beacon_share _ | Icc_core.Message.Pool_summary _
    | Icc_core.Message.Pool_request _ ->
        invalid_arg "Rbc.disseminate: only proposals use the RBC"
  in
  (* Signed with the sender's key over (round, proposer, root): receivers
     verify against the *proposer's* public key, so only the real proposer
     can open an RBC instance in its name. *)
  let f_sig =
    Icc_crypto.Schnorr.sign
      t.keys.(src - 1).Icc_crypto.Keygen.auth
      (root_text ~round ~proposer root)
  in
  let modeled_total = Icc_core.Message.wire_size ~n:t.n msg in
  (* Self-delivery; mark the instance so echoes can't deliver it twice. *)
  let key = (round, proposer, Icc_crypto.Sha256.to_hex root) in
  let inst = instance_of t ~party:src key in
  inst.delivered <- true;
  (match msg with
  | Icc_core.Message.Proposal p ->
      Hashtbl.replace t.rbc_delivered
        ( src,
          p.p_block.Icc_core.Block.round,
          Icc_crypto.Sha256.to_hex (Icc_core.Block.hash p.p_block) )
        ()
  | Icc_core.Message.Notarization_share _ | Icc_core.Message.Notarization _
  | Icc_core.Message.Finalization_share _ | Icc_core.Message.Finalization _
  | Icc_core.Message.Beacon_share _ | Icc_core.Message.Pool_summary _
  | Icc_core.Message.Pool_request _ -> ());
  t.deliver_up ~dst:src msg;
  for dst = 1 to t.n do
    if dst <> src then
      send t ~src ~dst
        (Frag
           {
             f_round = round;
             f_proposer = proposer;
             f_root = root;
             f_index = dst - 1;
             f_data_size = coded.Icc_erasure.Reed_solomon.data_size;
             f_modeled_total = modeled_total;
             f_bytes = coded.Icc_erasure.Reed_solomon.fragments.(dst - 1);
             f_proof = Icc_crypto.Merkle.prove leaves (dst - 1);
             f_sig;
           })
  done

let frag_valid t (f : frag) =
  f.f_proposer >= 1 && f.f_proposer <= t.n
  && f.f_index >= 0 && f.f_index < t.n
  && Icc_crypto.Schnorr.verify
       t.system.Icc_crypto.Keygen.auth_pub.(f.f_proposer - 1)
       (root_text ~round:f.f_round ~proposer:f.f_proposer f.f_root)
       f.f_sig
  && Icc_crypto.Merkle.verify ~root:f.f_root ~leaf:f.f_bytes f.f_proof

let try_reconstruct t ~party key (inst : instance) (f : frag) =
  Icc_obs.Profile.span "rbc.reconstruct" @@ fun () ->
  if (not inst.delivered) && (not inst.bad)
     && List.length inst.fragments >= t.k
  then begin
    match
      Icc_erasure.Reed_solomon.decode ~k:t.k ~n:t.n
        ~data_size:f.f_data_size inst.fragments
    with
    | None -> ()
    | Some data -> (
        (* Full consistency check: the reconstructed data must re-encode to
           a fragment set with the signed Merkle root. *)
        let coded = Icc_erasure.Reed_solomon.encode ~k:t.k ~n:t.n data in
        let root' =
          Icc_crypto.Merkle.root_of_leaves
            (Array.to_list coded.Icc_erasure.Reed_solomon.fragments)
        in
        if not (Icc_crypto.Sha256.equal root' f.f_root) then begin
          inst.bad <- true;
          emit_detail t (fun () ->
              Icc_sim.Trace.Rbc_inconsistent
                { party; round = f.f_round; proposer = f.f_proposer })
        end
        else
          match deserialize data with
          | None ->
              inst.bad <- true;
              emit_detail t (fun () ->
                  Icc_sim.Trace.Rbc_inconsistent
                    { party; round = f.f_round; proposer = f.f_proposer })
          | Some msg ->
              inst.delivered <- true;
              ignore key;
              emit_detail t (fun () ->
                  Icc_sim.Trace.Rbc_reconstruct
                    { party; round = f.f_round; proposer = f.f_proposer });
              (match msg with
              | Icc_core.Message.Proposal p ->
                  Hashtbl.replace t.rbc_delivered
                    ( party,
                      p.p_block.Icc_core.Block.round,
                      Icc_crypto.Sha256.to_hex
                        (Icc_core.Block.hash p.p_block) )
                    ()
              | Icc_core.Message.Notarization_share _
              | Icc_core.Message.Notarization _
              | Icc_core.Message.Finalization_share _
              | Icc_core.Message.Finalization _
              | Icc_core.Message.Beacon_share _
              | Icc_core.Message.Pool_summary _
              | Icc_core.Message.Pool_request _ -> ());
              t.deliver_up ~dst:party msg)
  end

let on_frag t ~dst (f : frag) =
  if t.is_active dst && frag_valid t f then begin
    let key =
      (f.f_round, f.f_proposer, Icc_crypto.Sha256.to_hex f.f_root)
    in
    let inst = instance_of t ~party:dst key in
    if not (List.mem_assoc f.f_index inst.fragments) then begin
      inst.fragments <- (f.f_index, f.f_bytes) :: inst.fragments;
      emit_detail t (fun () ->
          Icc_sim.Trace.Rbc_fragment
            {
              party = dst;
              round = f.f_round;
              proposer = f.f_proposer;
              index = f.f_index;
            });
      (* Echo step: forward our own fragment once, within the per-proposer
         budget of two instances. *)
      if f.f_index = dst - 1 && not inst.echoed then begin
        let bkey = (dst, f.f_round, f.f_proposer) in
        let used = Option.value ~default:0 (Hashtbl.find_opt t.echo_budget bkey) in
        if used < 2 then begin
          Hashtbl.replace t.echo_budget bkey (used + 1);
          inst.echoed <- true;
          emit_detail t (fun () ->
              Icc_sim.Trace.Rbc_echo
                { party = dst; round = f.f_round; proposer = f.f_proposer });
          broadcast_wire t ~src:dst (Frag f)
        end
      end;
      try_reconstruct t ~party:dst key inst f
    end
  end

let create ~engine ~trace ~n ~t:t_corrupt ~delay_model ~async_until ?fault
    ?adversary ~is_active ~deliver_up ~system ~keys () =
  let net =
    Icc_sim.Transport.network ~engine ~n ~trace ~delay_model ~async_until
      ?fault ?adversary ()
  in
  let t =
    {
      n;
      k = t_corrupt + 1;
      system;
      keys;
      engine;
      trace;
      net;
      instances = Hashtbl.create 256;
      echo_budget = Hashtbl.create 256;
      rbc_delivered = Hashtbl.create 256;
      is_active;
      deliver_up;
    }
  in
  Icc_sim.Network.set_handler net (fun ~dst ~src:_ w ->
      match w with
      | Core msg -> t.deliver_up ~dst msg
      | Frag f -> on_frag t ~dst f);
  t

(* The transport interface: a proposer's own proposal flows through the RBC;
   everything else is broadcast directly.

   The round logic's echo (Fig. 1 condition (c)) of a block that arrived
   through the RBC is a no-op: the fragment-echo step already guarantees
   totality (if any honest party reconstructed, every honest party holds
   enough fragments to).  A block that arrived *outside* the RBC — a
   Byzantine proposer's direct split delivery — still needs the classical
   full echo for deadlock-freeness. *)
let tx_broadcast t ~src msg =
  match msg with
  | Icc_core.Message.Proposal p ->
      let b = p.Icc_core.Message.p_block in
      if b.Icc_core.Block.proposer = src then disseminate t ~src msg
      else if
        Hashtbl.mem t.rbc_delivered
          ( src,
            b.Icc_core.Block.round,
            Icc_crypto.Sha256.to_hex (Icc_core.Block.hash b) )
      then () (* totality already ensured by the fragment echo *)
      else broadcast_wire t ~src (Core msg)
  | Icc_core.Message.Notarization_share _ | Icc_core.Message.Notarization _
  | Icc_core.Message.Finalization_share _ | Icc_core.Message.Finalization _
  | Icc_core.Message.Beacon_share _ | Icc_core.Message.Pool_summary _
  | Icc_core.Message.Pool_request _ ->
      broadcast_wire t ~src (Core msg)

(* Byzantine split delivery: ship the full bundle directly (accounted at
   full size); the receiver's round logic takes it from there. *)
let tx_unicast t ~src ~dst msg =
  if dst = src then t.deliver_up ~dst msg
  else send t ~src ~dst (Core msg)
