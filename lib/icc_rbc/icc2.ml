(* Protocol ICC2: the ICC0/ICC1 round logic over the erasure-coded reliable
   broadcast of {!Rbc} instead of a gossip sub-layer (paper §1).

   Expected figures versus ICC0 (honest leader, synchrony, network delay
   delta): reciprocal throughput 3·delta (one extra delta for the fragment
   echo) and latency 4·delta; per-party dissemination bits O(S) for blocks
   of size S = Ω(n·lambda·log n). *)

let transport () : Icc_core.Runner.transport =
 fun ctx ->
  let rbc =
    Rbc.create ~engine:ctx.Icc_core.Runner.tr_engine
      ~trace:ctx.Icc_core.Runner.tr_trace ~n:ctx.Icc_core.Runner.tr_n
      ~t:ctx.Icc_core.Runner.tr_t
      ~delay_model:ctx.Icc_core.Runner.tr_delay_model
      ~async_until:ctx.Icc_core.Runner.tr_async_until
      ?fault:ctx.Icc_core.Runner.tr_fault
      ?adversary:ctx.Icc_core.Runner.tr_adversary
      ~is_active:ctx.Icc_core.Runner.tr_is_active
      ~deliver_up:ctx.Icc_core.Runner.tr_deliver
      ~system:ctx.Icc_core.Runner.tr_system ~keys:ctx.Icc_core.Runner.tr_keys
      ()
  in
  {
    Icc_core.Runner.tx_broadcast = (fun ~src msg -> Rbc.tx_broadcast rbc ~src msg);
    tx_unicast = (fun ~src ~dst msg -> Rbc.tx_unicast rbc ~src ~dst msg);
  }

let run (scenario : Icc_core.Runner.scenario) =
  Icc_core.Runner.run
    { scenario with Icc_core.Runner.transport = Some (transport ()) }
