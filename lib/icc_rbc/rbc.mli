(** Erasure-coded reliable broadcast — the block-dissemination subprotocol
    of Protocol ICC2 (paper §1), in the lineage of Cachin–Tessaro [11] with
    one less round of latency.

    Send: the proposer Reed–Solomon-encodes the serialized bundle
    (k = t+1 of n fragments), Merkle-authenticates the fragments, signs the
    root, and sends party i its fragment.  Echo: each party forwards its
    own valid fragment to all (at most two instances per proposer and
    round).  Reconstruct: k root-consistent fragments decode, re-encode and
    re-check the signed root before delivery.  Per-party cost is
    ~3S per block of size S; the ICC notarization share plays the usual
    "ready" role, which is where the integration saves a phase. *)

type frag = {
  f_round : int;
  f_proposer : int;
  f_root : Icc_crypto.Sha256.t;
  f_index : int;
  f_data_size : int;
  f_modeled_total : int;
  f_bytes : string;
  f_proof : Icc_crypto.Merkle.proof;
  f_sig : Icc_crypto.Schnorr.signature;
}

type wire = Core of Icc_core.Message.t | Frag of frag

type t

val serialize : Icc_core.Message.t -> string
val deserialize : string -> Icc_core.Message.t option

val create :
  engine:Icc_sim.Engine.t ->
  trace:Icc_sim.Trace.t ->
  n:int ->
  t:int ->
  delay_model:Icc_sim.Network.delay_model ->
  async_until:float ->
  ?fault:Icc_sim.Fault.t ->
  ?adversary:Icc_sim.Adversary.t ->
  is_active:(int -> bool) ->
  deliver_up:(dst:int -> Icc_core.Message.t -> unit) ->
  system:Icc_crypto.Keygen.system ->
  keys:Icc_crypto.Keygen.party_keys array ->
  unit ->
  t

val tx_broadcast : t -> src:int -> Icc_core.Message.t -> unit
(** A proposer's own proposal is disseminated through the RBC; an echo of a
    block obtained through the RBC is a no-op (the fragment echo already
    guarantees totality); a block obtained outside the RBC (Byzantine
    direct delivery) is echoed in full; small messages broadcast directly. *)

val tx_unicast : t -> src:int -> dst:int -> Icc_core.Message.t -> unit
(** Byzantine split delivery of a full bundle, accounted at full size. *)
