(** Structured trace bus: one typed, replayable event stream shared by the
    engine, the network, the gossip and RBC sub-layers, the protocol layer
    and the baselines.

    {!Metrics.attach} subscribes at the [core] level (traffic accounting and
    per-round milestones); external observers — the [--trace] JSONL dump,
    the bench timeline, the online {!Monitor} — subscribe to everything.
    Detail events are only constructed when {!detailed} is true, so an
    unobserved run pays nothing for them, and sinks never influence
    scheduling, so traced and untraced runs of the same seed are
    byte-identical.

    The JSONL schema is bidirectional: {!to_json} serialises one event per
    line and {!of_json} parses it back, round-tripping every constructor
    (property-tested in test/test_trace.ml). *)

type event =
  | Run_start of { n : int; label : string }
  | Run_end of { label : string }
  | Engine_dispatch of { seq : int }  (** One handled simulation event. *)
  | Net_send of { src : int; dst : int; kind : string; size : int; copies : int }
      (** [dst = 0] means broadcast ([copies] unicast transmissions). *)
  | Net_deliver of { src : int; dst : int; kind : string; size : int }
  | Net_hold of { src : int; dst : int; kind : string; release : float }
      (** Message caught by an asynchronous interval or partition. *)
  | Gossip_publish of { party : int; artifact : string }
  | Gossip_request of { party : int; peer : int; artifact : string }
  | Gossip_acquire of { party : int; peer : int; artifact : string }
  | Rbc_fragment of { party : int; round : int; proposer : int; index : int }
  | Rbc_echo of { party : int; round : int; proposer : int }
  | Rbc_reconstruct of { party : int; round : int; proposer : int }
  | Rbc_inconsistent of { party : int; round : int; proposer : int }
  | Round_entry of { party : int; round : int }
  | Propose of { party : int; round : int }
  | Notarize of { party : int; round : int; block : string }
      (** A party assembled a notarization certificate for [block] (short
          hex digest). *)
  | Finalize of { party : int; round : int; block : string }
      (** A party assembled a finalization certificate. *)
  | Beacon_share of { party : int; round : int }
  | Commit of { party : int; round : int; block : string }
      (** One party appended [block] to its committed chain. *)
  | Block_decided of { round : int; block : string }
      (** Every honest party committed the round's block. *)
  | Protocol_error of { party : int; round : int; what : string }
      (** A party hit a should-be-impossible protocol-layer condition (e.g.
          a certificate combine failing over admission-verified shares) and
          skipped the step instead of aborting the run; the {!Monitor}
          records it as a non-fatal violation. *)
  | Monitor_violation of { round : int; what : string; detail : string }
      (** {!Monitor} caught an invariant violation or Byzantine evidence. *)
  | Monitor_stall of { round : int; stage : string; waited : float }
      (** {!Monitor}'s liveness watchdog: [stage] of [round] has made no
          progress for [waited] simulated seconds. *)
  | Monitor_clear of { round : int; stage : string; waited : float }
      (** A previously flagged stall recovered after [waited] seconds. *)
  | Fault_drop of { src : int; dst : int; kind : string }
      (** {!Fault} nemesis dropped a transmission. *)
  | Fault_duplicate of { src : int; dst : int; kind : string; copies : int }
      (** Nemesis delivered [copies] total copies ([copies >= 2]). *)
  | Fault_reorder of { src : int; dst : int; kind : string; extra : float }
      (** Nemesis delayed a delivery by [extra] seconds out of order. *)
  | Fault_link_down of { src : int; dst : int; kind : string; release : float }
      (** Nemesis link flap or partition: held until [release]. *)
  | Fault_crash of { party : int }
      (** Nemesis crash directive took a party down mid-run. *)
  | Fault_recover of { party : int }
      (** A crashed party rejoined (it resyncs its pool from peers). *)
  | Adv_corrupt of { party : int; round : int; strategy : string }
      (** {!Adversary} directive became active for [party] at [round]
          (adaptive corruptions announce here the first time they fire). *)
  | Adv_equivocate of {
      party : int;
      round : int;
      block_a : string;
      block_b : string;
    }
      (** A corrupt proposer sent conflicting proposals (short hex digests)
          to disjoint halves of the network. *)
  | Adv_withhold of { party : int; round : int; kind : string }
      (** A corrupt party suppressed one of its own shares; [kind] is
          ["beacon-share"], ["notarization-share"] or
          ["finalization-share"]. *)
  | Adv_censor of { src : int; dst : int; kind : string }
      (** A corrupt sender silently dropped a message to a censored peer. *)
  | Adv_delay of { src : int; dst : int; kind : string; by : float }
      (** A corrupt sender (stealthy leader) held a message back [by]
          seconds before transmitting. *)
  | Adv_straggle of { src : int; dst : int; kind : string }
      (** Unknown-participation straggler: a corrupt sender probabilistically
          failed to transmit this copy (Losa–Gafni message adversary). *)
  | Resync_summary of { party : int; peer : int; round : int; kmax : int }
      (** Periodic pool summary ([round], finalization cursor [kmax])
          unicast to one rotating peer. *)
  | Resync_request of { party : int; peer : int; from_round : int; upto : int }
      (** Pull request for rounds [\[from_round, upto\]] from a peer that
          announced a higher frontier. *)
  | Resync_reply of {
      party : int;
      peer : int;
      from_round : int;
      upto : int;
      count : int;
    }  (** [count] pool artifacts retransmitted for the window. *)
  | Prof_span of { name : string; count : int; total_us : int; self_us : int }
      (** Profiler snapshot: aggregate wall-clock for one span name
          ([total_us] includes children, [self_us] excludes them), emitted
          once per span name just before [Run_end] when profiling is on.
          Integer microseconds, so the JSON round-trip is exact. *)
  | Prof_counter of { name : string; value : int }
      (** Registry counter value at end of run (profiling runs only). *)

type level = Core | Detail

val level_of : event -> level
(** [Core] events drive {!Metrics} and {!Monitor} safety checks; [Detail]
    events exist for observability only and are skipped entirely (not even
    constructed, at guarded call sites) unless a full subscriber is
    present. *)

type t

val create : unit -> t

val subscribe : ?all:bool -> t -> (time:float -> event -> unit) -> unit
(** Register a sink, called synchronously in subscription order.  With
    [all:false] the sink receives only [Core] events.  Sinks must not
    mutate simulation state; they may re-enter {!emit} (the monitor
    announces violations this way). *)

val active : t -> bool
(** Some sink is subscribed. *)

val detailed : t -> bool
(** Some sink wants [Detail] events; emitting layers use this to skip
    constructing them otherwise. *)

val emit : t -> time:float -> event -> unit
(** No-op without subscribers; [Detail] events go only to [all] sinks. *)

val kind_of : event -> string
(** Stable kebab-case tag, e.g. ["net-send"] — the ["ev"] field of
    {!to_json}. *)

val to_json : time:float -> event -> string
(** One JSON object (no trailing newline):
    [{"t":<time>,"ev":"<kind>",...payload fields}]. *)

val of_json : string -> (float * event, string) result
(** Parse one line produced by {!to_json} back into [(time, event)].
    Exact inverse over every constructor; [Error] carries a message with
    the offending byte offset for malformed input. *)
