(* Structured trace bus: one typed event stream for everything the
   simulation does, shared by the engine, the network, the dissemination
   sub-layers (gossip, erasure-coded RBC) and the protocol layer.

   Two subscription levels keep the bus free when nobody is watching:

     - [core] events are the ones {!Metrics} and {!Monitor} consume
       (traffic accounting and the per-round protocol milestones).  Their
       payloads are values the emitting layer has already computed, so
       emitting them costs one allocation plus a list dispatch.
     - detail events (deliveries, holds, gossip/RBC internals, engine
       dispatch, per-party commits) exist only for observability.  Layers
       guard their construction with {!detailed}, so an untraced run never
       builds them — this is the zero-cost-when-off contract.

   Sinks run synchronously in subscription order and must not mutate
   simulation state; nothing about scheduling or randomness depends on who
   is listening, which is what keeps traced and untraced runs of the same
   seed byte-identical.  A sink may re-enter [emit] (the {!Monitor} does,
   to announce violations); the re-emitted event reaches every sink after
   the event being processed, preserving file order in JSONL dumps. *)

type event =
  (* run framing *)
  | Run_start of { n : int; label : string }
  | Run_end of { label : string }
  (* engine *)
  | Engine_dispatch of { seq : int }
  (* network: dst = 0 means broadcast (copies = n - 1) *)
  | Net_send of { src : int; dst : int; kind : string; size : int; copies : int }
  | Net_deliver of { src : int; dst : int; kind : string; size : int }
  | Net_hold of { src : int; dst : int; kind : string; release : float }
  (* gossip sub-layer *)
  | Gossip_publish of { party : int; artifact : string }
  | Gossip_request of { party : int; peer : int; artifact : string }
  | Gossip_acquire of { party : int; peer : int; artifact : string }
  (* erasure-coded reliable broadcast sub-layer *)
  | Rbc_fragment of { party : int; round : int; proposer : int; index : int }
  | Rbc_echo of { party : int; round : int; proposer : int }
  | Rbc_reconstruct of { party : int; round : int; proposer : int }
  | Rbc_inconsistent of { party : int; round : int; proposer : int }
  (* protocol layer; [block] is a short hex digest of the block involved *)
  | Round_entry of { party : int; round : int }
  | Propose of { party : int; round : int }
  | Notarize of { party : int; round : int; block : string }
  | Finalize of { party : int; round : int; block : string }
  | Beacon_share of { party : int; round : int }
  | Commit of { party : int; round : int; block : string }
  | Block_decided of { round : int; block : string }
  (* protocol-layer anomaly that would otherwise abort the run (e.g. a
     certificate combine failing on admission-verified shares) *)
  | Protocol_error of { party : int; round : int; what : string }
  (* online invariant monitor *)
  | Monitor_violation of { round : int; what : string; detail : string }
  | Monitor_stall of { round : int; stage : string; waited : float }
  | Monitor_clear of { round : int; stage : string; waited : float }
  (* fault injection (the {!Fault} nemesis layer) *)
  | Fault_drop of { src : int; dst : int; kind : string }
  | Fault_duplicate of { src : int; dst : int; kind : string; copies : int }
  | Fault_reorder of { src : int; dst : int; kind : string; extra : float }
  | Fault_link_down of { src : int; dst : int; kind : string; release : float }
  | Fault_crash of { party : int }
  | Fault_recover of { party : int }
  (* Byzantine adversary (the {!Adversary} strategy layer) *)
  | Adv_corrupt of { party : int; round : int; strategy : string }
  | Adv_equivocate of {
      party : int;
      round : int;
      block_a : string;
      block_b : string;
    }
  | Adv_withhold of { party : int; round : int; kind : string }
  | Adv_censor of { src : int; dst : int; kind : string }
  | Adv_delay of { src : int; dst : int; kind : string; by : float }
  | Adv_straggle of { src : int; dst : int; kind : string }
  (* pool resync (retransmission/recovery sub-layer) *)
  | Resync_summary of { party : int; peer : int; round : int; kmax : int }
  | Resync_request of { party : int; peer : int; from_round : int; upto : int }
  | Resync_reply of {
      party : int;
      peer : int;
      from_round : int;
      upto : int;
      count : int;
    }
  (* profiler snapshots (emitted once before run-end when profiling is on;
     times are integer microseconds so JSON round-trips are exact) *)
  | Prof_span of { name : string; count : int; total_us : int; self_us : int }
  | Prof_counter of { name : string; value : int }

type level = Core | Detail

let level_of = function
  | Run_start _ | Run_end _ | Net_send _ | Round_entry _ | Propose _
  | Notarize _ | Block_decided _ | Protocol_error _ | Monitor_violation _
  | Monitor_stall _ | Monitor_clear _ | Fault_crash _ | Fault_recover _
  | Adv_corrupt _ | Adv_equivocate _ ->
      Core
  | Engine_dispatch _ | Net_deliver _ | Net_hold _ | Gossip_publish _
  | Gossip_request _ | Gossip_acquire _ | Rbc_fragment _ | Rbc_echo _
  | Rbc_reconstruct _ | Rbc_inconsistent _ | Finalize _ | Beacon_share _
  | Commit _ | Fault_drop _ | Fault_duplicate _ | Fault_reorder _
  | Fault_link_down _ | Adv_withhold _ | Adv_censor _ | Adv_delay _
  | Adv_straggle _ | Resync_summary _ | Resync_request _ | Resync_reply _
  | Prof_span _ | Prof_counter _ ->
      Detail

type sink = { all : bool; fn : time:float -> event -> unit }

type t = {
  mutable sinks : sink list; (* subscription order *)
  mutable detailed : bool; (* some sink wants detail events *)
}

let create () = { sinks = []; detailed = false }

let subscribe ?(all = true) t fn =
  t.sinks <- t.sinks @ [ { all; fn } ];
  if all then t.detailed <- true

let active t = t.sinks <> []
let detailed t = t.detailed

let emit t ~time ev =
  match t.sinks with
  | [] -> ()
  | sinks ->
      let detail = level_of ev = Detail in
      List.iter (fun s -> if s.all || not detail then s.fn ~time ev) sinks

(* --- rendering --------------------------------------------------------- *)

let kind_of = function
  | Run_start _ -> "run-start"
  | Run_end _ -> "run-end"
  | Engine_dispatch _ -> "engine-dispatch"
  | Net_send _ -> "net-send"
  | Net_deliver _ -> "net-deliver"
  | Net_hold _ -> "net-hold"
  | Gossip_publish _ -> "gossip-publish"
  | Gossip_request _ -> "gossip-request"
  | Gossip_acquire _ -> "gossip-acquire"
  | Rbc_fragment _ -> "rbc-fragment"
  | Rbc_echo _ -> "rbc-echo"
  | Rbc_reconstruct _ -> "rbc-reconstruct"
  | Rbc_inconsistent _ -> "rbc-inconsistent"
  | Round_entry _ -> "round-entry"
  | Propose _ -> "propose"
  | Notarize _ -> "notarize"
  | Finalize _ -> "finalize"
  | Beacon_share _ -> "beacon-share"
  | Commit _ -> "commit"
  | Block_decided _ -> "block-decided"
  | Protocol_error _ -> "protocol-error"
  | Monitor_violation _ -> "monitor-violation"
  | Monitor_stall _ -> "monitor-stall"
  | Monitor_clear _ -> "monitor-clear"
  | Fault_drop _ -> "fault-drop"
  | Fault_duplicate _ -> "fault-duplicate"
  | Fault_reorder _ -> "fault-reorder"
  | Fault_link_down _ -> "fault-link-down"
  | Fault_crash _ -> "fault-crash"
  | Fault_recover _ -> "fault-recover"
  | Adv_corrupt _ -> "adv-corrupt"
  | Adv_equivocate _ -> "adv-equivocate"
  | Adv_withhold _ -> "adv-withhold"
  | Adv_censor _ -> "adv-censor"
  | Adv_delay _ -> "adv-delay"
  | Adv_straggle _ -> "adv-straggle"
  | Resync_summary _ -> "resync-summary"
  | Resync_request _ -> "resync-request"
  | Resync_reply _ -> "resync-reply"
  | Prof_span _ -> "prof-span"
  | Prof_counter _ -> "prof-counter"

(* Strings on the bus are message kinds and artifact ids (printable ASCII),
   but escape defensively so every emitted line is valid JSON. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ~time ev =
  let p = Printf.sprintf in
  let fields =
    match ev with
    | Run_start { n; label } -> p {|"n":%d,"label":"%s"|} n (json_escape label)
    | Run_end { label } -> p {|"label":"%s"|} (json_escape label)
    | Engine_dispatch { seq } -> p {|"seq":%d|} seq
    | Net_send { src; dst; kind; size; copies } ->
        p {|"src":%d,"dst":%d,"kind":"%s","size":%d,"copies":%d|} src dst
          (json_escape kind) size copies
    | Net_deliver { src; dst; kind; size } ->
        p {|"src":%d,"dst":%d,"kind":"%s","size":%d|} src dst
          (json_escape kind) size
    | Net_hold { src; dst; kind; release } ->
        p {|"src":%d,"dst":%d,"kind":"%s","release":%.6f|} src dst
          (json_escape kind) release
    | Gossip_publish { party; artifact } ->
        p {|"party":%d,"artifact":"%s"|} party (json_escape artifact)
    | Gossip_request { party; peer; artifact }
    | Gossip_acquire { party; peer; artifact } ->
        p {|"party":%d,"peer":%d,"artifact":"%s"|} party peer
          (json_escape artifact)
    | Rbc_fragment { party; round; proposer; index } ->
        p {|"party":%d,"round":%d,"proposer":%d,"index":%d|} party round
          proposer index
    | Rbc_echo { party; round; proposer }
    | Rbc_reconstruct { party; round; proposer }
    | Rbc_inconsistent { party; round; proposer } ->
        p {|"party":%d,"round":%d,"proposer":%d|} party round proposer
    | Round_entry { party; round }
    | Propose { party; round }
    | Beacon_share { party; round } ->
        p {|"party":%d,"round":%d|} party round
    | Notarize { party; round; block }
    | Finalize { party; round; block }
    | Commit { party; round; block } ->
        p {|"party":%d,"round":%d,"block":"%s"|} party round
          (json_escape block)
    | Block_decided { round; block } ->
        p {|"round":%d,"block":"%s"|} round (json_escape block)
    | Protocol_error { party; round; what } ->
        p {|"party":%d,"round":%d,"what":"%s"|} party round (json_escape what)
    | Monitor_violation { round; what; detail } ->
        p {|"round":%d,"what":"%s","detail":"%s"|} round (json_escape what)
          (json_escape detail)
    | Monitor_stall { round; stage; waited } ->
        p {|"round":%d,"stage":"%s","waited":%.6f|} round (json_escape stage)
          waited
    | Monitor_clear { round; stage; waited } ->
        p {|"round":%d,"stage":"%s","waited":%.6f|} round (json_escape stage)
          waited
    | Fault_drop { src; dst; kind } ->
        p {|"src":%d,"dst":%d,"kind":"%s"|} src dst (json_escape kind)
    | Fault_duplicate { src; dst; kind; copies } ->
        p {|"src":%d,"dst":%d,"kind":"%s","copies":%d|} src dst
          (json_escape kind) copies
    | Fault_reorder { src; dst; kind; extra } ->
        p {|"src":%d,"dst":%d,"kind":"%s","extra":%.6f|} src dst
          (json_escape kind) extra
    | Fault_link_down { src; dst; kind; release } ->
        p {|"src":%d,"dst":%d,"kind":"%s","release":%.6f|} src dst
          (json_escape kind) release
    | Fault_crash { party } | Fault_recover { party } ->
        p {|"party":%d|} party
    | Adv_corrupt { party; round; strategy } ->
        p {|"party":%d,"round":%d,"strategy":"%s"|} party round
          (json_escape strategy)
    | Adv_equivocate { party; round; block_a; block_b } ->
        p {|"party":%d,"round":%d,"block_a":"%s","block_b":"%s"|} party round
          (json_escape block_a) (json_escape block_b)
    | Adv_withhold { party; round; kind } ->
        p {|"party":%d,"round":%d,"kind":"%s"|} party round (json_escape kind)
    | Adv_censor { src; dst; kind } ->
        p {|"src":%d,"dst":%d,"kind":"%s"|} src dst (json_escape kind)
    | Adv_delay { src; dst; kind; by } ->
        p {|"src":%d,"dst":%d,"kind":"%s","by":%.6f|} src dst
          (json_escape kind) by
    | Adv_straggle { src; dst; kind } ->
        p {|"src":%d,"dst":%d,"kind":"%s"|} src dst (json_escape kind)
    | Resync_summary { party; peer; round; kmax } ->
        p {|"party":%d,"peer":%d,"round":%d,"kmax":%d|} party peer round kmax
    | Resync_request { party; peer; from_round; upto } ->
        p {|"party":%d,"peer":%d,"from":%d,"upto":%d|} party peer from_round
          upto
    | Resync_reply { party; peer; from_round; upto; count } ->
        p {|"party":%d,"peer":%d,"from":%d,"upto":%d,"count":%d|} party peer
          from_round upto count
    | Prof_span { name; count; total_us; self_us } ->
        p {|"name":"%s","count":%d,"total_us":%d,"self_us":%d|}
          (json_escape name) count total_us self_us
    | Prof_counter { name; value } ->
        p {|"name":"%s","value":%d|} (json_escape name) value
  in
  p {|{"t":%.6f,"ev":"%s",%s}|} time (kind_of ev) fields

(* --- parsing (the inverse of [to_json]) -------------------------------- *)

(* [to_json] only ever produces flat objects whose values are integers,
   floats and escaped strings, so the parser below covers exactly that
   grammar (plus standard JSON escapes, defensively).  Keeping it inverse-
   exact is what locks the JSONL schema: the round-trip property test in
   test/test_trace.ml fails on any drift between the two. *)

type jvalue = Jint of int | Jfloat of float | Jstring of string

exception Parse_error of string

let parse_flat_object line =
  let len = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < len then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < len && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let expect c =
    if !pos < len && line.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let h = String.sub line !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= len then fail "truncated escape";
          let c = line.[!pos] in
          incr pos;
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              let c = hex4 () in
              if c > 0xff then fail "non-ASCII \\u escape"
              else Buffer.add_char b (Char.chr c)
          | _ -> fail "unknown escape");
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while !pos < len && numchar line.[!pos] do incr pos done;
    if !pos = start then fail "expected number";
    let s = String.sub line start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s
    in
    if is_float then
      match float_of_string_opt s with
      | Some f -> Jfloat f
      | None -> fail "bad float"
    else
      match int_of_string_opt s with
      | Some i -> Jint i
      | None -> fail "bad integer"
  in
  skip_ws ();
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = Some '}' then incr pos
  else begin
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      skip_ws ();
      expect ':';
      skip_ws ();
      let v =
        match peek () with
        | Some '"' -> Jstring (parse_string ())
        | _ -> parse_number ()
      in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' ->
          incr pos;
          members ()
      | Some '}' -> incr pos
      | _ -> fail "expected ',' or '}'"
    in
    members ()
  end;
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  List.rev !fields

let of_json line =
  match parse_flat_object line with
  | exception Parse_error msg -> Error msg
  | fields -> (
      let find name =
        match List.assoc_opt name fields with
        | Some v -> v
        | None -> raise (Parse_error (Printf.sprintf "missing field %S" name))
      in
      let int name =
        match find name with
        | Jint i -> i
        | Jfloat _ | Jstring _ ->
            raise (Parse_error (Printf.sprintf "field %S: expected int" name))
      in
      let str name =
        match find name with
        | Jstring s -> s
        | Jint _ | Jfloat _ ->
            raise (Parse_error (Printf.sprintf "field %S: expected string" name))
      in
      let flt name =
        match find name with
        | Jfloat f -> f
        | Jint i -> float_of_int i
        | Jstring _ ->
            raise (Parse_error (Printf.sprintf "field %S: expected number" name))
      in
      match
        let time = flt "t" in
        let ev =
          match str "ev" with
          | "run-start" -> Run_start { n = int "n"; label = str "label" }
          | "run-end" -> Run_end { label = str "label" }
          | "engine-dispatch" -> Engine_dispatch { seq = int "seq" }
          | "net-send" ->
              Net_send
                {
                  src = int "src";
                  dst = int "dst";
                  kind = str "kind";
                  size = int "size";
                  copies = int "copies";
                }
          | "net-deliver" ->
              Net_deliver
                {
                  src = int "src";
                  dst = int "dst";
                  kind = str "kind";
                  size = int "size";
                }
          | "net-hold" ->
              Net_hold
                {
                  src = int "src";
                  dst = int "dst";
                  kind = str "kind";
                  release = flt "release";
                }
          | "gossip-publish" ->
              Gossip_publish { party = int "party"; artifact = str "artifact" }
          | "gossip-request" ->
              Gossip_request
                {
                  party = int "party";
                  peer = int "peer";
                  artifact = str "artifact";
                }
          | "gossip-acquire" ->
              Gossip_acquire
                {
                  party = int "party";
                  peer = int "peer";
                  artifact = str "artifact";
                }
          | "rbc-fragment" ->
              Rbc_fragment
                {
                  party = int "party";
                  round = int "round";
                  proposer = int "proposer";
                  index = int "index";
                }
          | "rbc-echo" ->
              Rbc_echo
                {
                  party = int "party";
                  round = int "round";
                  proposer = int "proposer";
                }
          | "rbc-reconstruct" ->
              Rbc_reconstruct
                {
                  party = int "party";
                  round = int "round";
                  proposer = int "proposer";
                }
          | "rbc-inconsistent" ->
              Rbc_inconsistent
                {
                  party = int "party";
                  round = int "round";
                  proposer = int "proposer";
                }
          | "round-entry" ->
              Round_entry { party = int "party"; round = int "round" }
          | "propose" -> Propose { party = int "party"; round = int "round" }
          | "notarize" ->
              Notarize
                { party = int "party"; round = int "round"; block = str "block" }
          | "finalize" ->
              Finalize
                { party = int "party"; round = int "round"; block = str "block" }
          | "beacon-share" ->
              Beacon_share { party = int "party"; round = int "round" }
          | "commit" ->
              Commit
                { party = int "party"; round = int "round"; block = str "block" }
          | "block-decided" ->
              Block_decided { round = int "round"; block = str "block" }
          | "protocol-error" ->
              Protocol_error
                { party = int "party"; round = int "round"; what = str "what" }
          | "monitor-violation" ->
              Monitor_violation
                { round = int "round"; what = str "what"; detail = str "detail" }
          | "monitor-stall" ->
              Monitor_stall
                {
                  round = int "round";
                  stage = str "stage";
                  waited = flt "waited";
                }
          | "monitor-clear" ->
              Monitor_clear
                {
                  round = int "round";
                  stage = str "stage";
                  waited = flt "waited";
                }
          | "fault-drop" ->
              Fault_drop { src = int "src"; dst = int "dst"; kind = str "kind" }
          | "fault-duplicate" ->
              Fault_duplicate
                {
                  src = int "src";
                  dst = int "dst";
                  kind = str "kind";
                  copies = int "copies";
                }
          | "fault-reorder" ->
              Fault_reorder
                {
                  src = int "src";
                  dst = int "dst";
                  kind = str "kind";
                  extra = flt "extra";
                }
          | "fault-link-down" ->
              Fault_link_down
                {
                  src = int "src";
                  dst = int "dst";
                  kind = str "kind";
                  release = flt "release";
                }
          | "fault-crash" -> Fault_crash { party = int "party" }
          | "fault-recover" -> Fault_recover { party = int "party" }
          | "adv-corrupt" ->
              Adv_corrupt
                {
                  party = int "party";
                  round = int "round";
                  strategy = str "strategy";
                }
          | "adv-equivocate" ->
              Adv_equivocate
                {
                  party = int "party";
                  round = int "round";
                  block_a = str "block_a";
                  block_b = str "block_b";
                }
          | "adv-withhold" ->
              Adv_withhold
                { party = int "party"; round = int "round"; kind = str "kind" }
          | "adv-censor" ->
              Adv_censor { src = int "src"; dst = int "dst"; kind = str "kind" }
          | "adv-delay" ->
              Adv_delay
                {
                  src = int "src";
                  dst = int "dst";
                  kind = str "kind";
                  by = flt "by";
                }
          | "adv-straggle" ->
              Adv_straggle
                { src = int "src"; dst = int "dst"; kind = str "kind" }
          | "resync-summary" ->
              Resync_summary
                {
                  party = int "party";
                  peer = int "peer";
                  round = int "round";
                  kmax = int "kmax";
                }
          | "resync-request" ->
              Resync_request
                {
                  party = int "party";
                  peer = int "peer";
                  from_round = int "from";
                  upto = int "upto";
                }
          | "resync-reply" ->
              Resync_reply
                {
                  party = int "party";
                  peer = int "peer";
                  from_round = int "from";
                  upto = int "upto";
                  count = int "count";
                }
          | "prof-span" ->
              Prof_span
                {
                  name = str "name";
                  count = int "count";
                  total_us = int "total_us";
                  self_us = int "self_us";
                }
          | "prof-counter" ->
              Prof_counter { name = str "name"; value = int "value" }
          | other ->
              raise (Parse_error (Printf.sprintf "unknown event kind %S" other))
        in
        (time, ev)
      with
      | exception Parse_error msg -> Error msg
      | parsed -> Ok parsed)
