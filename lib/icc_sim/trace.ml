(* Structured trace bus: one typed event stream for everything the
   simulation does, shared by the engine, the network, the dissemination
   sub-layers (gossip, erasure-coded RBC) and the protocol layer.

   Two subscription levels keep the bus free when nobody is watching:

     - [core] events are the ones {!Metrics} consumes (traffic accounting
       and the per-round protocol milestones).  Their payloads are values
       the emitting layer has already computed, so emitting them costs one
       allocation plus a list dispatch.
     - detail events (deliveries, holds, gossip/RBC internals, engine
       dispatch) exist only for observability.  Layers guard their
       construction with {!detailed}, so an untraced run never builds
       them — this is the zero-cost-when-off contract.

   Sinks run synchronously in subscription order and must not mutate
   simulation state; nothing about scheduling or randomness depends on who
   is listening, which is what keeps traced and untraced runs of the same
   seed byte-identical. *)

type event =
  (* run framing *)
  | Run_start of { n : int; label : string }
  | Run_end of { label : string }
  (* engine *)
  | Engine_dispatch of { seq : int }
  (* network: dst = 0 means broadcast (copies = n - 1) *)
  | Net_send of { src : int; dst : int; kind : string; size : int; copies : int }
  | Net_deliver of { src : int; dst : int; kind : string; size : int }
  | Net_hold of { src : int; dst : int; kind : string; release : float }
  (* gossip sub-layer *)
  | Gossip_publish of { party : int; artifact : string }
  | Gossip_request of { party : int; peer : int; artifact : string }
  | Gossip_acquire of { party : int; peer : int; artifact : string }
  (* erasure-coded reliable broadcast sub-layer *)
  | Rbc_fragment of { party : int; round : int; proposer : int; index : int }
  | Rbc_echo of { party : int; round : int; proposer : int }
  | Rbc_reconstruct of { party : int; round : int; proposer : int }
  | Rbc_inconsistent of { party : int; round : int; proposer : int }
  (* protocol layer *)
  | Round_entry of { party : int; round : int }
  | Propose of { party : int; round : int }
  | Notarize of { party : int; round : int }
  | Finalize of { party : int; round : int }
  | Beacon_share of { party : int; round : int }
  | Block_decided of { round : int }

type level = Core | Detail

let level_of = function
  | Run_start _ | Run_end _ | Net_send _ | Round_entry _ | Propose _
  | Notarize _ | Block_decided _ ->
      Core
  | Engine_dispatch _ | Net_deliver _ | Net_hold _ | Gossip_publish _
  | Gossip_request _ | Gossip_acquire _ | Rbc_fragment _ | Rbc_echo _
  | Rbc_reconstruct _ | Rbc_inconsistent _ | Finalize _ | Beacon_share _ ->
      Detail

type sink = { all : bool; fn : time:float -> event -> unit }

type t = {
  mutable sinks : sink list; (* subscription order *)
  mutable detailed : bool; (* some sink wants detail events *)
}

let create () = { sinks = []; detailed = false }

let subscribe ?(all = true) t fn =
  t.sinks <- t.sinks @ [ { all; fn } ];
  if all then t.detailed <- true

let active t = t.sinks <> []
let detailed t = t.detailed

let emit t ~time ev =
  match t.sinks with
  | [] -> ()
  | sinks ->
      let detail = level_of ev = Detail in
      List.iter (fun s -> if s.all || not detail then s.fn ~time ev) sinks

(* --- rendering --------------------------------------------------------- *)

let kind_of = function
  | Run_start _ -> "run-start"
  | Run_end _ -> "run-end"
  | Engine_dispatch _ -> "engine-dispatch"
  | Net_send _ -> "net-send"
  | Net_deliver _ -> "net-deliver"
  | Net_hold _ -> "net-hold"
  | Gossip_publish _ -> "gossip-publish"
  | Gossip_request _ -> "gossip-request"
  | Gossip_acquire _ -> "gossip-acquire"
  | Rbc_fragment _ -> "rbc-fragment"
  | Rbc_echo _ -> "rbc-echo"
  | Rbc_reconstruct _ -> "rbc-reconstruct"
  | Rbc_inconsistent _ -> "rbc-inconsistent"
  | Round_entry _ -> "round-entry"
  | Propose _ -> "propose"
  | Notarize _ -> "notarize"
  | Finalize _ -> "finalize"
  | Beacon_share _ -> "beacon-share"
  | Block_decided _ -> "block-decided"

(* Strings on the bus are message kinds and artifact ids (printable ASCII),
   but escape defensively so every emitted line is valid JSON. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ~time ev =
  let p = Printf.sprintf in
  let fields =
    match ev with
    | Run_start { n; label } -> p {|"n":%d,"label":"%s"|} n (json_escape label)
    | Run_end { label } -> p {|"label":"%s"|} (json_escape label)
    | Engine_dispatch { seq } -> p {|"seq":%d|} seq
    | Net_send { src; dst; kind; size; copies } ->
        p {|"src":%d,"dst":%d,"kind":"%s","size":%d,"copies":%d|} src dst
          (json_escape kind) size copies
    | Net_deliver { src; dst; kind; size } ->
        p {|"src":%d,"dst":%d,"kind":"%s","size":%d|} src dst
          (json_escape kind) size
    | Net_hold { src; dst; kind; release } ->
        p {|"src":%d,"dst":%d,"kind":"%s","release":%.6f|} src dst
          (json_escape kind) release
    | Gossip_publish { party; artifact } ->
        p {|"party":%d,"artifact":"%s"|} party (json_escape artifact)
    | Gossip_request { party; peer; artifact }
    | Gossip_acquire { party; peer; artifact } ->
        p {|"party":%d,"peer":%d,"artifact":"%s"|} party peer
          (json_escape artifact)
    | Rbc_fragment { party; round; proposer; index } ->
        p {|"party":%d,"round":%d,"proposer":%d,"index":%d|} party round
          proposer index
    | Rbc_echo { party; round; proposer }
    | Rbc_reconstruct { party; round; proposer }
    | Rbc_inconsistent { party; round; proposer } ->
        p {|"party":%d,"round":%d,"proposer":%d|} party round proposer
    | Round_entry { party; round }
    | Propose { party; round }
    | Notarize { party; round }
    | Finalize { party; round }
    | Beacon_share { party; round } ->
        p {|"party":%d,"round":%d|} party round
    | Block_decided { round } -> p {|"round":%d|} round
  in
  p {|{"t":%.6f,"ev":"%s",%s}|} time (kind_of ev) fields
