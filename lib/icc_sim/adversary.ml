(* Composable Byzantine adversary strategies.

   One instance serves two interposition surfaces: the protocol layer
   (Icc_core.Party queries equivocation/withholding/crash windows per
   round) and the network (on_send applies censorship, straggling, delay
   and — via an optional kind classifier — share withholding for baseline
   protocols without party hooks).

   Determinism discipline (same as Fault): the instance owns a private Rng
   stream; probabilistic draws happen unconditionally for every matching
   rule in script order, never gated by tracing or by an earlier rule's
   outcome, so the draw sequence is a pure function of the deterministic
   call order and one seed + script reproduces the same attack whether or
   not anyone watches the bus. *)

type share_class = Beacon | Notar | Final

type action =
  | Equivocate of { noisy : bool }
  | Withhold of { beacon : bool; notar : bool; final : bool; p : float }
  | Censor of { dsts : int list }
  | Delay of { by : float }
  | Crash_window
  | Straggle of { p : float }

type target = Party of int | Any
type trigger = Always | On_round of int | On_rank of int

type directive = {
  who : target;
  from_ : float;
  until : float;
  trigger : trigger;
  action : action;
  max_corrupt : int;
}

type script = directive list

(* --- script constructors ------------------------------------------------ *)

let mk ?(from_ = 0.) ?(until = infinity) who action =
  { who; from_; until; trigger = Always; action; max_corrupt = max_int }

let equivocate ?(noisy = false) ?from_ ?until party =
  mk ?from_ ?until (Party party) (Equivocate { noisy })

let withhold ?beacon ?notar ?final ?(p = 1.) ?from_ ?until party =
  (* no flag given = withhold everything; any flag given = only those *)
  let all_default = beacon = None && notar = None && final = None in
  let flag v = Option.value v ~default:all_default in
  mk ?from_ ?until (Party party)
    (Withhold { beacon = flag beacon; notar = flag notar; final = flag final; p })

let censor ~dsts ?from_ ?until party = mk ?from_ ?until (Party party) (Censor { dsts })
let delay ~by ?from_ ?until party = mk ?from_ ?until (Party party) (Delay { by })

let crash_window ~from_ ~until party =
  mk ~from_ ~until (Party party) Crash_window

let straggle ~p ?from_ ?until party =
  mk ?from_ ?until (Party party) (Straggle { p })

let adaptive ?from_ ?until ?on_round ?rank ~max_corrupt action =
  let trigger =
    match (rank, on_round) with
    | Some k, _ -> On_rank k
    | None, Some r -> On_round r
    | None, None -> Always
  in
  { (mk ?from_ ?until Any action) with trigger; max_corrupt }

(* --- static analysis ---------------------------------------------------- *)

let static_corrupt script =
  List.filter_map
    (fun d -> match d.who with Party p -> Some p | Any -> None)
    script
  |> List.sort_uniq Int.compare

let static_crash_wakes script =
  List.filter_map
    (fun d ->
      match (d.who, d.action) with
      | Party p, Crash_window when Float.is_finite d.until ->
          Some (d.until, p)
      | ( (Party _ | Any),
          ( Equivocate _ | Withhold _ | Censor _ | Delay _ | Crash_window
          | Straggle _ ) ) ->
          None)
    script
  |> List.stable_sort (fun (a, pa) (b, pb) ->
         match Float.compare a b with 0 -> Int.compare pa pb | c -> c)

(* --- instance ----------------------------------------------------------- *)

type t = {
  rng : Rng.t;
  trace : Trace.t;
  n : int;
  classify : (string -> share_class option) option;
  script : directive array;
  active : (int * int, unit) Hashtbl.t; (* (directive index, party) *)
  counts : int array; (* per-directive distinct parties corrupted *)
  corrupt : (int, unit) Hashtbl.t;
}

let create ~rng ~trace ~n ?classify script =
  ignore n;
  {
    rng;
    trace;
    n;
    classify;
    script = Array.of_list script;
    active = Hashtbl.create 8;
    counts = Array.make (List.length script) 0;
    corrupt = Hashtbl.create 8;
  }

let script t = Array.to_list t.script

let strategy_name = function
  | Equivocate { noisy } -> if noisy then "equivocate-noisy" else "equivocate"
  | Withhold _ -> "withhold"
  | Censor _ -> "censor"
  | Delay _ -> "delay"
  | Crash_window -> "crash"
  | Straggle _ -> "straggle"

let emit_detail t ~now ev =
  if Trace.detailed t.trace then Trace.emit t.trace ~time:now (ev ())

let in_window d now = now >= d.from_ && now < d.until

let activate t ~now ~party ~round i d =
  if not (Hashtbl.mem t.active (i, party)) && t.counts.(i) < d.max_corrupt
  then begin
    Hashtbl.replace t.active (i, party) ();
    t.counts.(i) <- t.counts.(i) + 1;
    Hashtbl.replace t.corrupt party ();
    Trace.emit t.trace ~time:now
      (Trace.Adv_corrupt { party; round; strategy = strategy_name d.action })
  end

let note_round t ~now ~party ~round ~rank =
  Array.iteri
    (fun i d ->
      let who_ok = match d.who with Party p -> p = party | Any -> true in
      let trig_ok =
        match d.trigger with
        | Always -> true
        | On_round r -> round >= r
        | On_rank k -> rank = k
      in
      if who_ok && trig_ok && in_window d now then
        activate t ~now ~party ~round i d)
    t.script

(* A directive applies to [party] at [now] once activated.  Statically
   targeted Always directives are also live without a note_round call —
   the baseline protocols have no party hooks, so their activation (and
   the Adv_corrupt announcement) happens at the first matching send. *)
let iter_applying t ~now ~party f =
  Array.iteri
    (fun i d ->
      let live =
        Hashtbl.mem t.active (i, party)
        ||
        match (d.who, d.trigger) with
        | Party p, Always when p = party ->
            activate t ~now ~party ~round:0 i d;
            Hashtbl.mem t.active (i, party)
        | (Party _ | Any), (Always | On_round _ | On_rank _) -> false
      in
      if live && in_window d now then f d)
    t.script

let equivocation t ~now ~party =
  let r = ref None in
  iter_applying t ~now ~party (fun d ->
      match d.action with
      | Equivocate { noisy } ->
          r := Some (noisy || !r = Some true)
      | Withhold _ | Censor _ | Delay _ | Crash_window | Straggle _ -> ());
  !r

let class_kind = function
  | Beacon -> "beacon-share"
  | Notar -> "notarization-share"
  | Final -> "finalization-share"

let withholds t ~now ~party ~round cls =
  let hit = ref false in
  iter_applying t ~now ~party (fun d ->
      match d.action with
      | Withhold w ->
          let flagged =
            match cls with
            | Beacon -> w.beacon
            | Notar -> w.notar
            | Final -> w.final
          in
          if flagged && Rng.float t.rng 1.0 < w.p then hit := true
      | Equivocate _ | Censor _ | Delay _ | Crash_window | Straggle _ -> ());
  if !hit then
    emit_detail t ~now (fun () ->
        Trace.Adv_withhold { party; round; kind = class_kind cls });
  !hit

let crashed_now t ~now ~party =
  let r = ref false in
  iter_applying t ~now ~party (fun d ->
      match d.action with
      | Crash_window -> r := true
      | Equivocate _ | Withhold _ | Censor _ | Delay _ | Straggle _ -> ());
  !r

type send_verdict = { av_drop : bool; av_delay : float }

let on_send t ~now ~src ~dst ~kind =
  let drop = ref false and extra = ref 0. in
  iter_applying t ~now ~party:src (fun d ->
      match d.action with
      | Censor { dsts } ->
          if List.mem dst dsts then begin
            drop := true;
            emit_detail t ~now (fun () -> Trace.Adv_censor { src; dst; kind })
          end
      | Straggle { p } ->
          (* draw always: stream shape independent of the outcome *)
          let hit = Rng.float t.rng 1.0 < p in
          if hit then begin
            drop := true;
            emit_detail t ~now (fun () -> Trace.Adv_straggle { src; dst; kind })
          end
      | Delay { by } ->
          extra := !extra +. by;
          emit_detail t ~now (fun () -> Trace.Adv_delay { src; dst; kind; by })
      | Crash_window ->
          (* party-level interposition already silences crashed senders;
             this catches baseline protocols without party hooks *)
          drop := true
      | Withhold w -> (
          match t.classify with
          | None -> () (* protocol layer withholds before the send *)
          | Some classify -> (
              match classify kind with
              | None -> ()
              | Some cls ->
                  let flagged =
                    match cls with
                    | Beacon -> w.beacon
                    | Notar -> w.notar
                    | Final -> w.final
                  in
                  if flagged && Rng.float t.rng 1.0 < w.p then begin
                    drop := true;
                    emit_detail t ~now (fun () ->
                        Trace.Adv_withhold { party = src; round = 0; kind })
                  end))
      | Equivocate _ -> ());
  { av_drop = !drop; av_delay = !extra }

let corrupted t =
  Hashtbl.fold (fun p () acc -> p :: acc) t.corrupt []
  |> List.sort Int.compare

(* --- JSON scripts ------------------------------------------------------- *)

exception Script_error of string

let directive_of_obj fields =
  let find name = List.assoc_opt name fields in
  let num ?default name =
    match find name with
    | Some (Fault.Jnum f) -> f
    | Some (Fault.Jnull | Jbool _ | Jstr _ | Jarr _ | Jobj _) ->
        raise (Script_error (name ^ ": expected number"))
    | None -> (
        match default with
        | Some d -> d
        | None -> raise (Script_error ("missing field " ^ name)))
  in
  let int_opt name =
    match find name with
    | Some (Fault.Jnum f) -> Some (int_of_float f)
    | Some (Fault.Jnull | Jbool _ | Jstr _ | Jarr _ | Jobj _) ->
        raise (Script_error (name ^ ": expected number"))
    | None -> None
  in
  let bool_opt name =
    match find name with
    | Some (Fault.Jbool b) -> Some b
    | Some (Fault.Jnull | Jnum _ | Jstr _ | Jarr _ | Jobj _) ->
        raise (Script_error (name ^ ": expected bool"))
    | None -> None
  in
  let window () = (num ~default:0. "from", num ~default:infinity "until") in
  let kind =
    match find "adversary" with
    | Some (Fault.Jstr s) -> s
    | Some (Fault.Jnull | Jbool _ | Jnum _ | Jarr _ | Jobj _) | None ->
        raise (Script_error "directive needs an \"adversary\" string field")
  in
  let action =
    match kind with
    | "equivocate" ->
        Equivocate { noisy = Option.value ~default:false (bool_opt "noisy") }
    | "withhold" ->
        let beacon = bool_opt "beacon"
        and notar = bool_opt "notar"
        and final = bool_opt "final" in
        let all_default = beacon = None && notar = None && final = None in
        let flag v = Option.value v ~default:all_default in
        Withhold
          {
            beacon = flag beacon;
            notar = flag notar;
            final = flag final;
            p = num ~default:1. "p";
          }
    | "censor" ->
        let dsts =
          match find "dsts" with
          | Some (Fault.Jarr ids) ->
              List.map
                (function
                  | Fault.Jnum f -> int_of_float f
                  | Fault.Jnull | Jbool _ | Jstr _ | Jarr _ | Jobj _ ->
                      raise (Script_error "dsts: expected party id"))
                ids
          | Some (Fault.Jnull | Jbool _ | Jnum _ | Jstr _ | Jobj _) | None ->
              raise (Script_error "censor needs a \"dsts\" array")
        in
        Censor { dsts }
    | "delay" -> Delay { by = num "by" }
    | "crash" -> Crash_window
    | "straggle" -> Straggle { p = num "p" }
    | other ->
        raise (Script_error (Printf.sprintf "unknown adversary kind %S" other))
  in
  let from_, until = window () in
  (if action = Crash_window && not (Float.is_finite until) then
     raise (Script_error "crash window needs a finite \"until\""));
  match int_opt "party" with
  | Some party ->
      { who = Party party; from_; until; trigger = Always; action;
        max_corrupt = max_int }
  | None ->
      let trigger =
        match (int_opt "rank", int_opt "on_round") with
        | Some k, _ -> On_rank k
        | None, Some r -> On_round r
        | None, None -> Always
      in
      let max_corrupt =
        match int_opt "max" with
        | Some m -> m
        | None ->
            raise
              (Script_error
                 "adaptive directive (no \"party\") needs a \"max\" budget")
      in
      { who = Any; from_; until; trigger; action; max_corrupt }

let script_of_json text =
  match Fault.parse_json text with
  | exception Fault.Script_error msg -> Error msg
  | Jarr items -> (
      match
        List.map
          (function
            | Fault.Jobj fields -> directive_of_obj fields
            | Fault.Jnull | Jbool _ | Jnum _ | Jstr _ | Jarr _ ->
                raise (Script_error "expected an array of objects"))
          items
      with
      | script -> Ok script
      | exception Script_error msg -> Error msg)
  | Jnull | Jbool _ | Jnum _ | Jstr _ | Jobj _ ->
      Error "expected a top-level array of directives"
