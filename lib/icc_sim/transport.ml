(* The shared instrumented transport substrate.

   Every run — ICC0/1/2 through Icc_core.Runner, and each baseline through
   Icc_baselines.Harness — used to wire its own engine + metrics + network
   by hand, each slightly differently.  This module is the one constructor
   they all go through now, so every protocol runs on the same observable
   substrate: one trace bus, one metrics consumer attached to it, and
   networks that announce sends/holds/deliveries on that bus. *)

type env = {
  engine : Engine.t;
  trace : Trace.t;
  metrics : Metrics.t;
  n : int;
}

let env ?trace ~n () =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  let metrics = Metrics.create n in
  Metrics.attach metrics trace;
  let engine = Engine.create () in
  (* Engine dispatch is the noisiest layer; only observe it when someone is
     listening for detail events. *)
  if Trace.detailed trace then
    Engine.set_observer engine (fun ~time ~seq ->
        Trace.emit trace ~time (Trace.Engine_dispatch { seq }));
  { engine; trace; metrics; n }

let network ~engine ~n ~trace ~delay_model ?(async_until = 0.) ?fault
    ?adversary () =
  let net = Network.create engine ~n ~trace ~delay_model in
  if async_until > 0. then Network.hold_all_until net async_until;
  (match fault with Some f -> Network.set_fault net f | None -> ());
  (match adversary with Some a -> Network.set_adversary net a | None -> ());
  net

let network_of e ~delay_model ?async_until ?fault ?adversary () =
  network ~engine:e.engine ~n:e.n ~trace:e.trace ~delay_model ?async_until
    ?fault ?adversary ()
