(** Deterministic discrete-event simulation engine. *)

type t

val create : unit -> t
val now : t -> float
val pending : t -> int
val processed : t -> int

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Raises [Invalid_argument] if [time] is before the current clock. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit

val stop : t -> 'a
(** Abort the run from inside a handler. *)

val set_observer : t -> (time:float -> seq:int -> unit) -> unit
(** Instrumentation hook called before each dispatched handler with the
    dispatch time and the event's insertion sequence number.  The observer
    must not mutate simulation state. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Process events in [(time, insertion)] order until the queue drains, the
    clock would pass [until] (the clock is then set to [until]), or
    [max_events] handlers have run. *)
