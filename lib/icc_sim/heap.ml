(* Binary min-heap keyed by (time, sequence number): the event queue of the
   discrete-event engine.  Ties in time break by insertion order, which keeps
   executions deterministic. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let before a b =
  a.time < b.time || (Float.equal a.time b.time && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap h.data.(0) in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let push h ~time ~seq payload =
  let e = { time; seq; payload } in
  if Array.length h.data = 0 then h.data <- Array.make 16 e;
  grow h;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  (* sift up *)
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before h.data.(!i) h.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = h.data.(!i) in
    h.data.(!i) <- h.data.(parent);
    h.data.(parent) <- tmp;
    i := parent
  done

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && before h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && before h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some top
  end
