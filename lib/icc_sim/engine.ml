(* Discrete-event simulation engine: a clock plus an ordered queue of
   thunks.  Handlers run strictly in (time, insertion) order; a handler may
   schedule further events at or after the current time. *)

type t = {
  mutable now : float;
  queue : (unit -> unit) Heap.t;
  mutable seq : int;
  mutable processed : int;
  mutable observer : (time:float -> seq:int -> unit) option;
      (* instrumentation hook, called before each dispatched handler *)
}

let create () =
  { now = 0.; queue = Heap.create (); seq = 0; processed = 0; observer = None }

let set_observer t f = t.observer <- Some f

let now t = t.now
let pending t = Heap.length t.queue
let processed t = t.processed

let schedule_at t ~time action =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %.6f is in the past (now %.6f)"
         time t.now);
  Heap.push t.queue ~time ~seq:t.seq action;
  t.seq <- t.seq + 1

let schedule t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) action

exception Stopped

let stop _t = raise Stopped

let run ?(until = infinity) ?(max_events = max_int) t =
  try
    let continue = ref true in
    while !continue do
      if t.processed >= max_events then continue := false
      else
        match Heap.peek t.queue with
        | None -> continue := false
        | Some e when e.time > until ->
            t.now <- until;
            continue := false
        | Some _ ->
            (match Heap.pop t.queue with
            | None -> assert false
            | Some e ->
                t.now <- e.time;
                t.processed <- t.processed + 1;
                (match t.observer with
                | Some f -> f ~time:e.time ~seq:e.seq
                | None -> ());
                e.payload ())
    done
  with Stopped -> ()
