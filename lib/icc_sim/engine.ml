(* Discrete-event simulation engine: a clock plus an ordered queue of
   thunks.  Handlers run strictly in (time, insertion) order; a handler may
   schedule further events at or after the current time.

   Large-n scale-out: the queue is a calendar of *time buckets* — one heap
   entry per distinct timestamp, holding a FIFO of (seq, handler) pairs —
   instead of one heap entry per event.  A broadcast burst of n² same-time
   deliveries then costs one O(log B) heap operation plus n² O(1) appends
   (B = number of distinct pending times), and dispatch pops the heap only
   once per timestamp.  Sequence numbers are assigned globally at insertion
   and appended in order, so within a bucket the FIFO *is* seq order and
   the dispatch order (time, then insertion seq) is byte-identical to the
   one-entry-per-event queue.  Timestamps are bucketed by their IEEE-754
   bit pattern (injective on the engine's non-negative clock once -0 is
   normalized), which avoids float equality on the hot path. *)

type bucket = {
  mutable b_time : float;
  mutable b_key : int; (* bits_of_float b_time, the calendar key *)
  mutable b_seqs : int array; (* insertion seqs, parallel to b_fns *)
  mutable b_fns : (unit -> unit) array;
  mutable b_head : int; (* next index to dispatch *)
  mutable b_len : int; (* number of filled entries *)
}

type t = {
  mutable now : float;
  calendar : bucket Heap.t; (* keyed (b_time, seq of first event) *)
  by_time : (int, bucket) Hashtbl.t; (* b_key -> live bucket *)
  mutable free : bucket list; (* retired buckets kept for reuse *)
  mutable free_len : int;
  mutable seq : int;
  mutable pending : int;
  mutable processed : int;
  mutable observer : (time:float -> seq:int -> unit) option;
      (* instrumentation hook, called before each dispatched handler *)
}

let no_op () = ()

let create () =
  {
    now = 0.;
    calendar = Heap.create ();
    by_time = Hashtbl.create 64;
    free = [];
    free_len = 0;
    seq = 0;
    processed = 0;
    pending = 0;
    observer = None;
  }

let set_observer t f = t.observer <- Some f

let now t = t.now
let pending t = t.pending
let processed t = t.processed

let fresh_bucket () =
  {
    b_time = 0.;
    b_key = 0;
    b_seqs = Array.make 8 0;
    b_fns = Array.make 8 no_op;
    b_head = 0;
    b_len = 0;
  }

let bucket_add b ~seq fn =
  let cap = Array.length b.b_seqs in
  if b.b_len = cap then begin
    let ncap = 2 * cap in
    let ns = Array.make ncap 0 and nf = Array.make ncap no_op in
    Array.blit b.b_seqs 0 ns 0 cap;
    Array.blit b.b_fns 0 nf 0 cap;
    b.b_seqs <- ns;
    b.b_fns <- nf
  end;
  b.b_seqs.(b.b_len) <- seq;
  b.b_fns.(b.b_len) <- fn;
  b.b_len <- b.b_len + 1

(* Retire a drained bucket: forget its calendar key and recycle the
   storage (burst-sized arrays are worth keeping around). *)
let retire t b =
  Hashtbl.remove t.by_time b.b_key;
  Array.fill b.b_fns 0 b.b_len no_op;
  b.b_head <- 0;
  b.b_len <- 0;
  if t.free_len < 64 then begin
    t.free <- b :: t.free;
    t.free_len <- t.free_len + 1
  end

let schedule_at t ~time action =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %.6f is in the past (now %.6f)"
         time t.now);
  (* +. 0. collapses -0 onto +0 so bit-pattern bucketing matches float
     equality on the queue's time domain. *)
  let time = time +. 0. in
  let key = Int64.to_int (Int64.bits_of_float time) in
  let b =
    match Hashtbl.find_opt t.by_time key with
    | Some b -> b
    | None ->
        let b =
          match t.free with
          | b :: rest ->
              t.free <- rest;
              t.free_len <- t.free_len - 1;
              b
          | [] -> fresh_bucket ()
        in
        b.b_time <- time;
        b.b_key <- key;
        Hashtbl.add t.by_time key b;
        Heap.push t.calendar ~time ~seq:t.seq b;
        b
  in
  bucket_add b ~seq:t.seq action;
  t.seq <- t.seq + 1;
  t.pending <- t.pending + 1

let schedule t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) action

exception Stopped

let stop _t = raise Stopped

let run ?(until = infinity) ?(max_events = max_int) t =
  try
    let continue = ref true in
    while !continue do
      if t.processed >= max_events then continue := false
      else
        match Heap.peek t.calendar with
        | None -> continue := false
        | Some e ->
            let b = e.Heap.payload in
            if b.b_head >= b.b_len then begin
              (* Drained: only the running bucket can be empty, and nothing
                 can be appended to it once the clock is about to move on. *)
              ignore (Heap.pop t.calendar);
              retire t b
            end
            else if b.b_time > until then begin
              t.now <- until;
              continue := false
            end
            else begin
              let i = b.b_head in
              b.b_head <- i + 1;
              let seq = b.b_seqs.(i) in
              let fn = b.b_fns.(i) in
              b.b_fns.(i) <- no_op;
              (* release the closure for GC *)
              t.now <- b.b_time;
              t.processed <- t.processed + 1;
              t.pending <- t.pending - 1;
              (match t.observer with
              | Some f -> f ~time:b.b_time ~seq
              | None -> ());
              Icc_obs.Profile.span "engine.dispatch" fn
            end
    done
  with Stopped -> ()
