(** Deterministic fault injection — a Jepsen-style "nemesis" for the
    simulated network.

    A {!script} is a list of timed directives: probabilistic per-link rules
    (drop, duplicate, reorder, flap) plus healing partitions and crash /
    recover directives for whole parties.  {!Network} consults
    {!on_transmit} for every remote transmission; the verdict says how many
    copies to deliver, with what extra delay, and until when the link is
    administratively down.  Every injected fault is announced on the
    {!Trace} bus as a [fault-*] event (detail level for per-message faults,
    core level for crash/recover), so the {!Monitor} and the offline
    analyzer see exactly what the nemesis did.

    Determinism: a fault instance owns a private {!Rng} stream and draws in
    transmission order, which is itself deterministic, so the same seed and
    script reproduce the same faults byte-for-byte — and the delay-model's
    own RNG stream is never touched, so enabling tracing or monitoring does
    not shift any fault decision. *)

(** A probabilistic per-link rule, evaluated per transmission. *)
type action =
  | Drop of { p : float }  (** Lose the message with probability [p]. *)
  | Duplicate of { p : float; spread : float }
      (** With probability [p], deliver one extra copy, the duplicate
          delayed by an additional U[0, [spread]] seconds. *)
  | Reorder of { p : float; max_extra : float }
      (** With probability [p], delay the delivery by U[0, [max_extra]]
          extra seconds — enough to overtake later sends (a burst
          reorder). *)
  | Flap of { period : float; up : float }
      (** Deterministic link flapping: within each [period], the link is up
          for the first [up] fraction and down for the rest; messages sent
          while down are held until the next up-phase. *)

type directive =
  | Rule of {
      from_ : float;
      until : float;
      src : int option;  (** [None] = any sender. *)
      dst : int option;  (** [None] = any receiver. *)
      action : action;
    }  (** [action] applies to matching transmissions in [[from_, until)]. *)
  | Partition of { from_ : float; until : float; groups : int list list }
      (** Parties in different groups cannot exchange messages during
          [[from_, until)]; messages are held and released at [until] (a
          healing partition).  Unlisted parties reach everyone. *)
  | Crash of { party : int; at : float }
      (** Crash [party] at time [at]: it sends and processes nothing.  Its
          pool survives (persistent storage); a later {!Recover} directive
          brings it back. *)
  | Recover of { party : int; at : float }
      (** Restart a crashed [party]: it rejoins with its pre-crash pool and
          catches up via the resync sub-layer. *)

type script = directive list

(** {1 Script constructors} *)

val drop :
  ?from_:float -> ?until:float -> ?src:int -> ?dst:int -> float -> directive

val duplicate :
  ?from_:float -> ?until:float -> ?src:int -> ?dst:int -> ?spread:float ->
  float -> directive

val reorder :
  ?from_:float -> ?until:float -> ?src:int -> ?dst:int -> ?max_extra:float ->
  float -> directive

val flap :
  ?from_:float -> ?until:float -> ?src:int -> ?dst:int -> period:float ->
  ?up:float -> unit -> directive

val partition : from_:float -> until:float -> int list list -> directive

val crash_recover : party:int -> down:float -> up:float -> script
(** [[Crash {party; at = down}; Recover {party; at = up}]]. *)

(** {1 The interposition hook} *)

type t

val create : rng:Rng.t -> trace:Trace.t -> script -> t
(** One nemesis instance for one run.  [rng] must be a dedicated stream
    (e.g. {!Rng.split} of the scenario RNG). *)

val script : t -> script

type verdict = {
  deliveries : float list;
      (** One element per copy to deliver, each the extra delay added on
          top of the sampled network delay; [[]] means dropped.  A fault-
          free transmission is [[0.]]. *)
  release_floor : float;
      (** Absolute time before which the link is administratively down
          (flap or partition); [neg_infinity] when open. *)
}

val on_transmit : t -> now:float -> src:int -> dst:int -> kind:string -> verdict
(** Evaluate every matching directive for one transmission, draw the
    probabilistic outcomes, announce the injected faults on the trace bus,
    and return the verdict.  Must be called exactly once per remote
    transmission, in transmission order. *)

(** {1 Crash/recover extraction} — scheduled by the runner, not the network. *)

val crash_schedule : script -> (float * [ `Crash | `Recover ] * int) list
(** Crash/recover directives as [(time, what, party)], sorted by time. *)

val finally_down : script -> int list
(** Parties whose last crash/recover directive is a crash: down at the end
    of the run, hence excluded from the honest commit quorum. *)

(** {1 Script files} *)

(** Generic JSON value, shared with {!Adversary} script parsing. *)
type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Script_error of string

val parse_json : string -> json
(** Parse arbitrary (nesting) JSON text; raises {!Script_error} with a
    byte offset on malformed input.  Exposed so sibling script formats
    ({!Adversary}) reuse one reader. *)

val script_of_json : string -> (script, string) result
(** Parse a JSON script: an array of objects selected by their ["fault"]
    field — [{"fault":"drop","p":0.2,"from":0,"until":30,"src":1,"dst":2}],
    ["dup"] ([p], optional [spread]), ["reorder"] ([p], optional
    [max_extra]), ["flap"] ([period], optional [up]), ["partition"]
    ([from], [until], [groups] as an array of id arrays), ["crash"] /
    ["recover"] ([party], [at]).  Times default to the whole run, link
    filters to any. *)
