(* Offline trace analysis: read a [--trace] JSONL dump back into typed
   events ({!Trace.of_json}) and aggregate what the online consumers
   compute incrementally — plus the matrices and causal views that are too
   expensive to maintain during a run.

   This module is pure aggregation; the [icc analyze] report printer lives
   in Icc_experiments.Analyze. *)

type entry = { time : float; event : Trace.event; line : int } (* 0-based *)

type load_result = {
  entries : entry array;
  errors : (int * string) list; (* (0-based line, message), in file order *)
}

let parse_lines lines =
  let entries = ref [] and errors = ref [] and line_no = ref (-1) in
  List.iter
    (fun line ->
      incr line_no;
      if String.trim line <> "" then
        match Trace.of_json line with
        | Ok (time, event) ->
            entries := { time; event; line = !line_no } :: !entries
        | Error msg -> errors := (!line_no, msg) :: !errors)
    lines;
  { entries = Array.of_list (List.rev !entries); errors = List.rev !errors }

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      parse_lines (List.rev !lines))

(* Re-run the online monitor over a recorded stream.  Monitor_* events
   already present in the dump are fed through too (the monitor counts but
   ignores them), so reported event indices keep matching file lines. *)
let monitor ?(config = Monitor.default_config ~delta:1.0 ()) entries =
  let m = Monitor.create config in
  Array.iter (fun e -> Monitor.observe m ~time:e.time e.event) entries;
  m

(* --- traffic ----------------------------------------------------------- *)

let parties entries =
  let n = ref 0 in
  Array.iter
    (fun e ->
      match e.event with
      | Trace.Run_start { n = rn; _ } -> n := max !n rn
      | Trace.Net_send { src; dst; _ } | Trace.Net_deliver { src; dst; _ } ->
          n := max !n (max src dst)
      | Trace.Run_end _ | Trace.Engine_dispatch _ | Trace.Net_hold _
      | Trace.Gossip_publish _ | Trace.Gossip_request _ | Trace.Gossip_acquire _
      | Trace.Rbc_fragment _ | Trace.Rbc_echo _ | Trace.Rbc_reconstruct _
      | Trace.Rbc_inconsistent _ | Trace.Round_entry _ | Trace.Propose _
      | Trace.Notarize _ | Trace.Finalize _ | Trace.Beacon_share _
      | Trace.Commit _ | Trace.Block_decided _ | Trace.Protocol_error _ | Trace.Monitor_violation _
      | Trace.Monitor_stall _ | Trace.Monitor_clear _ | Trace.Fault_drop _
      | Trace.Fault_duplicate _ | Trace.Fault_reorder _ | Trace.Fault_link_down _
      | Trace.Fault_crash _ | Trace.Fault_recover _ | Trace.Adv_corrupt _ | Trace.Adv_equivocate _
      | Trace.Adv_withhold _ | Trace.Adv_censor _ | Trace.Adv_delay _
      | Trace.Adv_straggle _ | Trace.Resync_summary _
      | Trace.Resync_request _ | Trace.Resync_reply _ | Trace.Prof_span _
      | Trace.Prof_counter _ -> ())
    entries;
  !n

type bandwidth = {
  bw_n : int;
  bw_msgs : int array array; (* [src][dst] transmissions, indices 1..n *)
  bw_bytes : int array array;
  bw_sent_bytes : int array; (* per src, row totals *)
  bw_recv_bytes : int array; (* per dst, column totals *)
  bw_by_kind : (string * int * int) list; (* kind, msgs, bytes — sorted *)
  bw_total_msgs : int;
  bw_total_bytes : int;
}

(* Broadcast convention (pinned by test/test_monitor.ml): a [Net_send] with
   [dst = 0] models [copies] unicast transmissions from [src] — one to each
   of the [copies] lowest-numbered parties other than [src].  The network
   layer always emits broadcasts with [copies = n - 1], so this attributes
   exactly one copy to every other party; the round-robin rule keeps the
   row/column totals right even for foreign traces with partial fanout. *)
let bandwidth entries =
  let n = parties entries in
  let msgs = Array.make_matrix (n + 1) (n + 1) 0 in
  let bytes = Array.make_matrix (n + 1) (n + 1) 0 in
  let by_kind_msgs = Hashtbl.create 16 and by_kind_bytes = Hashtbl.create 16 in
  let bump tbl key v =
    Hashtbl.replace tbl key (v + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let record ~src ~dst ~size =
    if src >= 0 && src <= n && dst >= 1 && dst <= n then begin
      msgs.(src).(dst) <- msgs.(src).(dst) + 1;
      bytes.(src).(dst) <- bytes.(src).(dst) + size
    end
  in
  Array.iter
    (fun e ->
      match e.event with
      | Trace.Net_send { src; dst; kind; size; copies } ->
          if dst = 0 then begin
            (* copies transmissions, spread over the other parties *)
            let sent = ref 0 and d = ref 1 in
            while !sent < copies && !d <= n do
              if !d <> src then begin
                record ~src ~dst:!d ~size;
                incr sent
              end;
              incr d
            done;
            bump by_kind_msgs kind copies;
            bump by_kind_bytes kind (size * copies)
          end
          else begin
            record ~src ~dst ~size;
            bump by_kind_msgs kind copies;
            bump by_kind_bytes kind (size * copies)
          end
      | Trace.Run_start _ | Trace.Run_end _ | Trace.Engine_dispatch _
      | Trace.Net_deliver _ | Trace.Net_hold _ | Trace.Gossip_publish _
      | Trace.Gossip_request _ | Trace.Gossip_acquire _ | Trace.Rbc_fragment _
      | Trace.Rbc_echo _ | Trace.Rbc_reconstruct _ | Trace.Rbc_inconsistent _
      | Trace.Round_entry _ | Trace.Propose _ | Trace.Notarize _
      | Trace.Finalize _ | Trace.Beacon_share _ | Trace.Commit _
      | Trace.Block_decided _ | Trace.Protocol_error _ | Trace.Monitor_violation _ | Trace.Monitor_stall _
      | Trace.Monitor_clear _ | Trace.Fault_drop _ | Trace.Fault_duplicate _
      | Trace.Fault_reorder _ | Trace.Fault_link_down _ | Trace.Fault_crash _
      | Trace.Fault_recover _ | Trace.Adv_corrupt _ | Trace.Adv_equivocate _
      | Trace.Adv_withhold _ | Trace.Adv_censor _ | Trace.Adv_delay _
      | Trace.Adv_straggle _ | Trace.Resync_summary _ | Trace.Resync_request _
      | Trace.Resync_reply _ | Trace.Prof_span _ | Trace.Prof_counter _ -> ())
    entries;
  let row_sum m i = Array.fold_left ( + ) 0 m.(i) in
  let col_sum m j =
    let s = ref 0 in
    for i = 0 to n do
      s := !s + m.(i).(j)
    done;
    !s
  in
  let by_kind =
    Hashtbl.fold
      (fun kind m acc ->
        (kind, m, Option.value ~default:0 (Hashtbl.find_opt by_kind_bytes kind))
        :: acc)
      by_kind_msgs []
    |> List.sort (fun (ka, _, _) (kb, _, _) -> String.compare ka kb)
  in
  {
    bw_n = n;
    bw_msgs = msgs;
    bw_bytes = bytes;
    bw_sent_bytes = Array.init (n + 1) (fun i -> row_sum bytes i);
    bw_recv_bytes = Array.init (n + 1) (fun j -> col_sum bytes j);
    bw_by_kind = by_kind;
    bw_total_msgs = List.fold_left (fun a (_, m, _) -> a + m) 0 by_kind;
    bw_total_bytes = List.fold_left (fun a (_, _, b) -> a + b) 0 by_kind;
  }

(* --- per-round pipeline ------------------------------------------------ *)

type round_row = {
  r_round : int;
  r_entry : float option; (* first Round_entry *)
  r_propose : float option;
  r_notarize : float option;
  r_finalize : float option;
  r_decided : float option;
}

let rounds entries =
  let tbl : (int, round_row ref) Hashtbl.t = Hashtbl.create 64 in
  let row round =
    match Hashtbl.find_opt tbl round with
    | Some r -> r
    | None ->
        let r =
          ref
            {
              r_round = round;
              r_entry = None;
              r_propose = None;
              r_notarize = None;
              r_finalize = None;
              r_decided = None;
            }
        in
        Hashtbl.add tbl round r;
        r
  in
  let first field time = match field with None -> Some time | some -> some in
  Array.iter
    (fun e ->
      match e.event with
      | Trace.Round_entry { round; _ } ->
          let r = row round in
          r := { !r with r_entry = first !r.r_entry e.time }
      | Trace.Propose { round; _ } ->
          let r = row round in
          r := { !r with r_propose = first !r.r_propose e.time }
      | Trace.Notarize { round; _ } ->
          let r = row round in
          r := { !r with r_notarize = first !r.r_notarize e.time }
      | Trace.Finalize { round; _ } ->
          let r = row round in
          r := { !r with r_finalize = first !r.r_finalize e.time }
      | Trace.Block_decided { round; _ } ->
          let r = row round in
          r := { !r with r_decided = first !r.r_decided e.time }
      | Trace.Run_start _ | Trace.Run_end _ | Trace.Engine_dispatch _
      | Trace.Net_send _ | Trace.Net_deliver _ | Trace.Net_hold _
      | Trace.Gossip_publish _ | Trace.Gossip_request _ | Trace.Gossip_acquire _
      | Trace.Rbc_fragment _ | Trace.Rbc_echo _ | Trace.Rbc_reconstruct _
      | Trace.Rbc_inconsistent _ | Trace.Beacon_share _ | Trace.Commit _
      | Trace.Protocol_error _ | Trace.Monitor_violation _ | Trace.Monitor_stall _ | Trace.Monitor_clear _
      | Trace.Fault_drop _ | Trace.Fault_duplicate _ | Trace.Fault_reorder _
      | Trace.Fault_link_down _ | Trace.Fault_crash _ | Trace.Fault_recover _ | Trace.Adv_corrupt _ | Trace.Adv_equivocate _
      | Trace.Adv_withhold _ | Trace.Adv_censor _ | Trace.Adv_delay _
      | Trace.Adv_straggle _
      | Trace.Resync_summary _ | Trace.Resync_request _ | Trace.Resync_reply _
      | Trace.Prof_span _ | Trace.Prof_counter _ ->
          ())
    entries;
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> Int.compare a.r_round b.r_round)

(* --- dissemination amplification --------------------------------------- *)

type amplification = {
  amp_decided : int; (* Block_decided count *)
  amp_msgs_per_block : float;
  amp_bytes_per_block : float;
  amp_gossip_publish : int;
  amp_gossip_request : int;
  amp_gossip_acquire : int;
  amp_acquire_per_publish : float; (* artifact fan-out over the peer graph *)
  amp_rbc_fragments : int;
  amp_rbc_echoes : int;
  amp_rbc_reconstructs : int;
  amp_rbc_inconsistent : int;
}

let amplification entries =
  let decided = ref 0
  and publish = ref 0
  and request = ref 0
  and acquire = ref 0
  and fragments = ref 0
  and echoes = ref 0
  and reconstructs = ref 0
  and inconsistent = ref 0
  and msgs = ref 0
  and bytes = ref 0 in
  Array.iter
    (fun e ->
      match e.event with
      | Trace.Block_decided _ -> incr decided
      | Trace.Gossip_publish _ -> incr publish
      | Trace.Gossip_request _ -> incr request
      | Trace.Gossip_acquire _ -> incr acquire
      | Trace.Rbc_fragment _ -> incr fragments
      | Trace.Rbc_echo _ -> incr echoes
      | Trace.Rbc_reconstruct _ -> incr reconstructs
      | Trace.Rbc_inconsistent _ -> incr inconsistent
      | Trace.Net_send { size; copies; _ } ->
          msgs := !msgs + copies;
          bytes := !bytes + (size * copies)
      | Trace.Run_start _ | Trace.Run_end _ | Trace.Engine_dispatch _
      | Trace.Net_deliver _ | Trace.Net_hold _ | Trace.Round_entry _
      | Trace.Propose _ | Trace.Notarize _ | Trace.Finalize _
      | Trace.Beacon_share _ | Trace.Commit _ | Trace.Protocol_error _ | Trace.Monitor_violation _
      | Trace.Monitor_stall _ | Trace.Monitor_clear _ | Trace.Fault_drop _
      | Trace.Fault_duplicate _ | Trace.Fault_reorder _ | Trace.Fault_link_down _
      | Trace.Fault_crash _ | Trace.Fault_recover _ | Trace.Adv_corrupt _ | Trace.Adv_equivocate _
      | Trace.Adv_withhold _ | Trace.Adv_censor _ | Trace.Adv_delay _
      | Trace.Adv_straggle _ | Trace.Resync_summary _
      | Trace.Resync_request _ | Trace.Resync_reply _ | Trace.Prof_span _
      | Trace.Prof_counter _ -> ())
    entries;
  let per_block v =
    if !decided = 0 then nan else float_of_int v /. float_of_int !decided
  in
  {
    amp_decided = !decided;
    amp_msgs_per_block = per_block !msgs;
    amp_bytes_per_block = per_block !bytes;
    amp_gossip_publish = !publish;
    amp_gossip_request = !request;
    amp_gossip_acquire = !acquire;
    amp_acquire_per_publish =
      (if !publish = 0 then nan
       else float_of_int !acquire /. float_of_int !publish);
    amp_rbc_fragments = !fragments;
    amp_rbc_echoes = !echoes;
    amp_rbc_reconstructs = !reconstructs;
    amp_rbc_inconsistent = !inconsistent;
  }

(* --- causal critical path ---------------------------------------------- *)

type path_step = { ps_label : string; ps_time : float; ps_delta : float }

(* Milestone-level critical path of one round: entry, the proposal, the
   first/median/last notarization (the last honest notarizer is what gates
   the next round), the finalization certificate and the decision.  The
   slowest link is the chain's bottleneck. *)
let critical_path entries ~round =
  let entry = ref None
  and propose = ref None
  and notarizes = ref []
  and finalize = ref None
  and decided = ref None in
  Array.iter
    (fun e ->
      match e.event with
      | Trace.Round_entry { round = r; _ } when r = round ->
          if !entry = None then entry := Some e.time
      | Trace.Propose { round = r; party } when r = round ->
          if !propose = None then propose := Some (e.time, party)
      | Trace.Notarize { round = r; party; _ } when r = round ->
          notarizes := (e.time, party) :: !notarizes
      | Trace.Finalize { round = r; _ } when r = round ->
          if !finalize = None then finalize := Some e.time
      | Trace.Block_decided { round = r; _ } when r = round ->
          if !decided = None then decided := Some e.time
      (* every handled arm above is guarded, so each constructor must also
         appear here for the off-round fall-through *)
      | Trace.Run_start _ | Trace.Run_end _ | Trace.Engine_dispatch _
      | Trace.Net_send _ | Trace.Net_deliver _ | Trace.Net_hold _
      | Trace.Gossip_publish _ | Trace.Gossip_request _ | Trace.Gossip_acquire _
      | Trace.Rbc_fragment _ | Trace.Rbc_echo _ | Trace.Rbc_reconstruct _
      | Trace.Rbc_inconsistent _ | Trace.Round_entry _ | Trace.Propose _
      | Trace.Notarize _ | Trace.Finalize _ | Trace.Beacon_share _
      | Trace.Commit _ | Trace.Block_decided _ | Trace.Protocol_error _ | Trace.Monitor_violation _
      | Trace.Monitor_stall _ | Trace.Monitor_clear _ | Trace.Fault_drop _
      | Trace.Fault_duplicate _ | Trace.Fault_reorder _ | Trace.Fault_link_down _
      | Trace.Fault_crash _ | Trace.Fault_recover _ | Trace.Adv_corrupt _ | Trace.Adv_equivocate _
      | Trace.Adv_withhold _ | Trace.Adv_censor _ | Trace.Adv_delay _
      | Trace.Adv_straggle _ | Trace.Resync_summary _
      | Trace.Resync_request _ | Trace.Resync_reply _ | Trace.Prof_span _
      | Trace.Prof_counter _ -> ())
    entries;
  (* keyed (time, then party) order: the trace's (float, int) pairs must
     not go through polymorphic compare (D1) *)
  let by_time_party (t1, p1) (t2, p2) =
    match Float.compare t1 t2 with 0 -> Int.compare p1 p2 | c -> c
  in
  let notarizes = List.sort by_time_party (List.rev !notarizes) in
  let steps = ref [] in
  let prev = ref None in
  let add label time =
    let delta = match !prev with None -> 0. | Some p -> time -. p in
    prev := Some time;
    steps := { ps_label = label; ps_time = time; ps_delta = delta } :: !steps
  in
  Option.iter (fun t -> add "round-entry" t) !entry;
  Option.iter
    (fun (t, party) -> add (Printf.sprintf "propose (party %d)" party) t)
    !propose;
  (match notarizes with
  | [] -> ()
  | l ->
      let arr = Array.of_list l in
      let len = Array.length arr in
      let t0, p0 = arr.(0) in
      add (Printf.sprintf "first notarize (party %d)" p0) t0;
      if len > 2 then begin
        let tm, pm = arr.(len / 2) in
        add (Printf.sprintf "median notarize (party %d)" pm) tm
      end;
      if len > 1 then begin
        let tl, pl = arr.(len - 1) in
        add (Printf.sprintf "last notarize (party %d)" pl) tl
      end);
  Option.iter (fun t -> add "finalize cert" t) !finalize;
  Option.iter (fun t -> add "block decided" t) !decided;
  List.rev !steps
