(* Per-party traffic and protocol metrics for one simulation run,
   maintained incrementally from the {!Trace} bus (see [attach]).

   Traffic is accounted at modeled wire sizes (see DESIGN.md): the network
   layer carries the byte size of each message on its [Net_send] events.
   Per-round milestone tables (entry / proposal / notarization /
   finalization) are Hashtbl-backed, so recording is O(1) per event rather
   than a scan over all rounds seen so far.

   The per-kind traffic counters sit on the hottest path of all — one
   update per [Net_send], i.e. per broadcast — so they are interned
   arrays, not string-keyed Hashtbls: each distinct kind string is mapped
   to a dense index once, and the common case (the same static kind
   string as the previous event) is a physical-equality hit that touches
   no hash function at all. *)

type t = {
  n : int;
  msgs_sent : int array; (* per party, network messages (unicast count) *)
  bytes_sent : int array;
  (* interned per-kind counters *)
  mutable kind_names : string array;
  mutable kind_msgs : int array;
  mutable kind_bytes : int array;
  mutable kind_count : int;
  mutable last_kind : string; (* memoized last lookup *)
  mutable last_kind_idx : int;
  mutable finalized_blocks : int;
  mutable finalization_log : (int * float) list; (* (round, time), newest first *)
  finalization_by_round : (int, float) Hashtbl.t; (* first decision per round *)
  proposal_by_round : (int, float) Hashtbl.t; (* first proposal per round *)
  notarization_by_round : (int, float) Hashtbl.t; (* first notarization *)
  round_entry_by_round : (int, float) Hashtbl.t; (* first party entry *)
  mutable latencies : float list; (* propose -> finalize, per finalized block *)
  mutable latencies_sorted : float array option; (* memoized sorted view *)
  mutable max_round : int; (* highest round seen in any milestone *)
}

let create n =
  {
    n;
    msgs_sent = Array.make (n + 1) 0;
    bytes_sent = Array.make (n + 1) 0;
    kind_names = Array.make 16 "";
    kind_msgs = Array.make 16 0;
    kind_bytes = Array.make 16 0;
    kind_count = 0;
    last_kind = "";
    last_kind_idx = -1;
    finalized_blocks = 0;
    finalization_log = [];
    finalization_by_round = Hashtbl.create 64;
    proposal_by_round = Hashtbl.create 64;
    notarization_by_round = Hashtbl.create 64;
    round_entry_by_round = Hashtbl.create 64;
    latencies = [];
    latencies_sorted = None;
    max_round = 0;
  }

let n t = t.n

(* --- recording --------------------------------------------------------- *)

(* Intern [kind], with a fast path for repeat senders: kind strings are
   static literals from [Message.kind] and friends, so physical equality
   with the previous event's kind almost always hits.  The fallback scan
   is over the handful of distinct kinds a run produces. *)
let kind_index t kind =
  if kind == t.last_kind then t.last_kind_idx
  else begin
    let idx = ref (-1) in
    (try
       for i = 0 to t.kind_count - 1 do
         if String.equal t.kind_names.(i) kind then begin
           idx := i;
           raise_notrace Exit
         end
       done
     with Exit -> ());
    if !idx < 0 then begin
      if t.kind_count = Array.length t.kind_names then begin
        let cap = 2 * t.kind_count in
        let names = Array.make cap "" in
        let msgs = Array.make cap 0 in
        let bytes = Array.make cap 0 in
        Array.blit t.kind_names 0 names 0 t.kind_count;
        Array.blit t.kind_msgs 0 msgs 0 t.kind_count;
        Array.blit t.kind_bytes 0 bytes 0 t.kind_count;
        t.kind_names <- names;
        t.kind_msgs <- msgs;
        t.kind_bytes <- bytes
      end;
      t.kind_names.(t.kind_count) <- kind;
      idx := t.kind_count;
      t.kind_count <- t.kind_count + 1
    end;
    t.last_kind <- kind;
    t.last_kind_idx <- !idx;
    !idx
  end

let record_send t ~src ~size ~kind ~copies =
  if src >= 1 && src <= t.n then begin
    t.msgs_sent.(src) <- t.msgs_sent.(src) + copies;
    t.bytes_sent.(src) <- t.bytes_sent.(src) + (size * copies)
  end;
  let i = kind_index t kind in
  t.kind_msgs.(i) <- t.kind_msgs.(i) + copies;
  t.kind_bytes.(i) <- t.kind_bytes.(i) + (size * copies)

let seen_round t round = if round > t.max_round then t.max_round <- round

(* First-event-wins per round: O(1) membership via the Hashtbl, replacing
   the old List.mem_assoc scan over every round recorded so far. *)
let record_first tbl t ~round ~time =
  if not (Hashtbl.mem tbl round) then begin
    Hashtbl.add tbl round time;
    seen_round t round
  end

let record_proposal t ~round ~time = record_first t.proposal_by_round t ~round ~time
let record_round_entry t ~round ~time = record_first t.round_entry_by_round t ~round ~time
let record_notarization t ~round ~time = record_first t.notarization_by_round t ~round ~time

let record_finalization t ~round ~time =
  t.finalized_blocks <- t.finalized_blocks + 1;
  t.finalization_log <- (round, time) :: t.finalization_log;
  record_first t.finalization_by_round t ~round ~time

let record_latency t dt =
  t.latencies <- dt :: t.latencies;
  t.latencies_sorted <- None

(* --- the trace-bus consumer -------------------------------------------- *)

let attach t trace =
  Trace.subscribe ~all:false trace (fun ~time ev ->
      match ev with
      | Trace.Net_send { src; kind; size; copies; _ } ->
          record_send t ~src ~size ~kind ~copies
      | Trace.Round_entry { round; _ } -> record_round_entry t ~round ~time
      | Trace.Propose { round; _ } -> record_proposal t ~round ~time
      | Trace.Notarize { round; _ } -> record_notarization t ~round ~time
      | Trace.Block_decided { round; _ } -> (
          record_finalization t ~round ~time;
          match Hashtbl.find_opt t.proposal_by_round round with
          | Some t0 -> record_latency t (time -. t0)
          | None -> ())
      | Trace.Run_start _ | Trace.Run_end _ | Trace.Engine_dispatch _
      | Trace.Net_deliver _ | Trace.Net_hold _ | Trace.Gossip_publish _
      | Trace.Gossip_request _ | Trace.Gossip_acquire _ | Trace.Rbc_fragment _
      | Trace.Rbc_echo _ | Trace.Rbc_reconstruct _ | Trace.Rbc_inconsistent _
      | Trace.Finalize _ | Trace.Beacon_share _ | Trace.Commit _
      | Trace.Protocol_error _ | Trace.Monitor_violation _
      | Trace.Monitor_stall _ | Trace.Monitor_clear _
      | Trace.Fault_drop _ | Trace.Fault_duplicate _ | Trace.Fault_reorder _
      | Trace.Fault_link_down _ | Trace.Fault_crash _ | Trace.Fault_recover _ | Trace.Adv_corrupt _ | Trace.Adv_equivocate _
      | Trace.Adv_withhold _ | Trace.Adv_censor _ | Trace.Adv_delay _
      | Trace.Adv_straggle _
      | Trace.Resync_summary _ | Trace.Resync_request _ | Trace.Resync_reply _
      | Trace.Prof_span _ | Trace.Prof_counter _ ->
          ())

(* --- queries ----------------------------------------------------------- *)

let total_msgs t = Array.fold_left ( + ) 0 t.msgs_sent
let total_bytes t = Array.fold_left ( + ) 0 t.bytes_sent

let max_bytes_per_party t = Array.fold_left max 0 t.bytes_sent

let find_kind t kind =
  let idx = ref (-1) in
  (try
     for i = 0 to t.kind_count - 1 do
       if String.equal t.kind_names.(i) kind then begin
         idx := i;
         raise_notrace Exit
       end
     done
   with Exit -> ());
  !idx

let msgs_of_kind t kind =
  let i = find_kind t kind in
  if i < 0 then 0 else t.kind_msgs.(i)

let bytes_of_kind t kind =
  let i = find_kind t kind in
  if i < 0 then 0 else t.kind_bytes.(i)

let kinds t =
  let rec collect i acc =
    if i < 0 then acc
    else
      collect (i - 1)
        ((t.kind_names.(i), t.kind_msgs.(i), t.kind_bytes.(i)) :: acc)
  in
  collect (t.kind_count - 1) []
  |> List.sort (fun (ka, _, _) (kb, _, _) -> String.compare ka kb)

let finalized_blocks t = t.finalized_blocks
let finalizations t = List.rev t.finalization_log
let latencies t = List.rev t.latencies
let max_round t = t.max_round

let round_entry_time t round = Hashtbl.find_opt t.round_entry_by_round round
let proposal_time t round = Hashtbl.find_opt t.proposal_by_round round
let notarization_time t round = Hashtbl.find_opt t.notarization_by_round round
let finalization_time t round = Hashtbl.find_opt t.finalization_by_round round

let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(* [nan]s are dropped before sorting (the polymorphic [compare] mis-sorts
   them, and they would poison any rank they landed on). *)
let sorted_samples l =
  let a =
    Array.of_list (List.filter (fun x -> not (Float.is_nan x)) l)
  in
  Array.sort Float.compare a;
  a

(* Nearest-rank percentile over an already-sorted sample array. *)
let percentile_of_sorted p a =
  let len = Array.length a in
  if len = 0 then nan
  else
    let idx = int_of_float (ceil (p /. 100. *. float_of_int len)) - 1 in
    a.(max 0 (min (len - 1) idx))

let percentile p l = percentile_of_sorted p (sorted_samples l)

(* The run's latency distribution, sorted once and memoized;
   [record_latency] invalidates the view, so repeated percentile queries
   over a finished (or quiescent) run are O(1) after the first. *)
let latency_percentile t p =
  let a =
    match t.latencies_sorted with
    | Some a -> a
    | None ->
        let a = sorted_samples t.latencies in
        t.latencies_sorted <- Some a;
        a
  in
  percentile_of_sorted p a

let mean_latency t = mean t.latencies

let blocks_per_second t ~window =
  if window <= 0. then nan else float_of_int t.finalized_blocks /. window

let mean_bytes_per_party_per_second t ~window =
  if window <= 0. || t.n = 0 then nan
  else float_of_int (total_bytes t) /. float_of_int t.n /. window
