(** The shared instrumented transport substrate: the one place that wires an
    engine, a {!Trace} bus and a {!Metrics} consumer together, and builds
    trace-announcing networks on top.  ICC0, ICC1, ICC2 and the baselines
    all construct their runs through this module, so every protocol emits
    the same event stream. *)

type env = {
  engine : Engine.t;
  trace : Trace.t;
  metrics : Metrics.t;
  n : int;
}

val env : ?trace:Trace.t -> n:int -> unit -> env
(** Fresh engine and metrics for one run.  [metrics] is attached to the
    bus ([trace] if given, else a private one); if the bus already has a
    detail subscriber, engine dispatch is observed onto it as well. *)

val network :
  engine:Engine.t ->
  n:int ->
  trace:Trace.t ->
  delay_model:Network.delay_model ->
  ?async_until:float ->
  ?fault:Fault.t ->
  ?adversary:Adversary.t ->
  unit ->
  'msg Network.t
(** An instrumented network; [async_until > 0] installs the adversarial
    hold ({!Network.hold_all_until}) before any message is sent, [fault]
    interposes a {!Fault} nemesis ({!Network.set_fault}) and [adversary]
    interposes a Byzantine {!Adversary} ({!Network.set_adversary}). *)

val network_of :
  env -> delay_model:Network.delay_model -> ?async_until:float ->
  ?fault:Fault.t -> ?adversary:Adversary.t -> unit -> 'msg Network.t
(** {!network} with the environment's engine, size and bus. *)
