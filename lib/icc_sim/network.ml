(* Simulated message-passing network between n parties (1-based ids).

   The model follows the paper's assumptions (§1, §3.1):
     - the only primitive is broadcast (unicast is exposed for the gossip
       and erasure-RBC sub-layers, which the paper's ICC1/ICC2 use);
     - every message from an honest party is eventually delivered;
     - the adversary schedules delivery: per-link delays are sampled from a
       pluggable model, and asynchronous intervals hold messages (released
       when the interval ends), modeling partial synchrony.

   A party's broadcast is delivered to itself with zero delay (its own pool
   holds its own messages) and is not counted as network traffic.

   Every transmission is announced on the {!Trace} bus: [Net_send] (core,
   drives {!Metrics}), and — only when a detail subscriber is present —
   [Net_hold] for messages caught by an asynchronous interval and
   [Net_deliver] at the moment the handler runs. *)

type delay_model =
  | Fixed of float
  | Uniform of { rng : Rng.t; lo : float; hi : float }
  | Matrix of float array array (* one-way delay, indices 1..n *)
  | Jitter of { rng : Rng.t; base : float; jitter : float }

type 'msg t = {
  engine : Engine.t;
  n : int;
  trace : Trace.t;
  mutable delay_model : delay_model;
  mutable hold_until : float; (* global asynchronous interval end *)
  mutable link_hold : (int -> int -> float) option; (* partition model *)
  mutable fault : Fault.t option; (* nemesis interposition *)
  mutable adversary : Adversary.t option; (* corrupt-sender interposition *)
  mutable handler : dst:int -> src:int -> 'msg -> unit;
  mutable delivered : int;
}

let create engine ~n ~trace ~delay_model =
  {
    engine;
    n;
    trace;
    delay_model;
    hold_until = neg_infinity;
    link_hold = None;
    fault = None;
    adversary = None;
    handler = (fun ~dst:_ ~src:_ _ -> ());
    delivered = 0;
  }

let set_handler t handler = t.handler <- handler
let set_delay_model t m = t.delay_model <- m
let set_fault t f = t.fault <- Some f
let set_adversary t a = t.adversary <- Some a

let hold_all_until t time = t.hold_until <- time
let set_link_hold t f = t.link_hold <- Some f
let clear_link_hold t = t.link_hold <- None

let sample_delay t ~src ~dst =
  match t.delay_model with
  | Fixed d -> d
  | Uniform { rng; lo; hi } -> Rng.float_range rng lo hi
  | Matrix m -> m.(src).(dst)
  | Jitter { rng; base; jitter } -> base +. Rng.float rng jitter

(* Deliver without traffic accounting: self-delivery path. *)
let deliver_self t ~src msg =
  Engine.schedule t.engine ~delay:0. (fun () -> t.handler ~dst:src ~src msg)

(* Schedule one remote transmission.  The delay is sampled before anything
   else so the RNG stream is independent of hold state, fault state and
   tracing; the nemesis (when installed) is consulted exactly once per
   transmission, also independent of hold state.

   Event batching happens below this layer: the engine's queue is a
   calendar of per-timestamp buckets, so the n-1 same-release deliveries
   of a broadcast under a fixed-delay model cost one heap entry total —
   each call here is an O(1) bucket append, not an O(log events) push. *)
let transmit t ~src ~dst ~size ~kind msg =
  Icc_obs.Profile.span "net.transmit" @@ fun () ->
  let now = Engine.now t.engine in
  let d = sample_delay t ~src ~dst in
  (* The adversary rules a corrupt sender's copy before the nemesis sees
     it: a censored/straggled/withheld transmission never reaches the
     fault layer (the corrupt party "never sent it").  Each layer draws
     from its own stream, so installing one never shifts the other. *)
  let adv_drop, adv_delay =
    match t.adversary with
    | None -> (false, 0.)
    | Some a ->
        let v = Adversary.on_send a ~now ~src ~dst ~kind in
        (v.Adversary.av_drop, v.Adversary.av_delay)
  in
  let deliveries, fault_floor =
    if adv_drop then ([], neg_infinity)
    else
      match t.fault with
      | None -> ([ 0. ], neg_infinity)
      | Some f ->
          let v = Fault.on_transmit f ~now ~src ~dst ~kind in
          (v.Fault.deliveries, v.Fault.release_floor)
  in
  let d = d +. adv_delay in
  let release =
    let global = max now t.hold_until in
    let global = max global fault_floor in
    match t.link_hold with
    | None -> global
    | Some f -> max global (f src dst)
  in
  if deliveries <> [] && release > now && Trace.detailed t.trace then
    Trace.emit t.trace ~time:now (Trace.Net_hold { src; dst; kind; release });
  let deliver () =
    t.delivered <- t.delivered + 1;
    if Trace.detailed t.trace then
      Trace.emit t.trace ~time:(Engine.now t.engine)
        (Trace.Net_deliver { src; dst; kind; size });
    t.handler ~dst ~src msg
  in
  match deliveries with
  | [ extra ] ->
      (* fault-free / single-delivery fast path: one closure, no list walk *)
      Engine.schedule_at t.engine ~time:(release +. d +. extra) deliver
  | deliveries ->
      List.iter
        (fun extra ->
          Engine.schedule_at t.engine ~time:(release +. d +. extra) deliver)
        deliveries

let unicast t ~src ~dst ~size ~kind msg =
  if dst < 1 || dst > t.n then invalid_arg "Network.unicast: bad destination";
  if dst = src then deliver_self t ~src msg
  else begin
    Trace.emit t.trace ~time:(Engine.now t.engine)
      (Trace.Net_send { src; dst; kind; size; copies = 1 });
    transmit t ~src ~dst ~size ~kind msg
  end

let broadcast t ~src ~size ~kind msg =
  (* Same message to all parties; self copy is free and immediate. *)
  Trace.emit t.trace ~time:(Engine.now t.engine)
    (Trace.Net_send { src; dst = 0; kind; size; copies = t.n - 1 });
  for dst = 1 to t.n do
    if dst = src then deliver_self t ~src msg
    else transmit t ~src ~dst ~size ~kind msg
  done

let delivered t = t.delivered

(* An RTT matrix in the paper's observed range (6–110 ms ping RTT between
   data centers): one-way delay = RTT/2, symmetric, diagonal ~0.2 ms. *)
let wan_matrix rng ~n ~rtt_lo ~rtt_hi =
  let m = Array.make_matrix (n + 1) (n + 1) 0. in
  for i = 1 to n do
    for j = i + 1 to n do
      let d = Rng.float_range rng (rtt_lo /. 2.) (rtt_hi /. 2.) in
      m.(i).(j) <- d;
      m.(j).(i) <- d
    done;
    m.(i).(i) <- 0.0002
  done;
  m
