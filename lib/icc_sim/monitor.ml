(* Online invariant monitor: a trace-bus consumer that incrementally
   verifies the paper's safety statements while the simulation runs,
   instead of waiting for Icc_core.Check's post-hoc oracles.

   Safety checks (each maps to a paper property, see DESIGN.md §3.2):
     - P2 / conflicting notarization: once any Finalize for round k names
       digest B, every Notarize for round k must also name B (and dually,
       a Finalize arriving after a conflicting Notarize is caught too);
     - prefix consistency: all Commit events for round k name one digest,
       and each party's commits arrive in strictly increasing round order;
     - quorum-count sanity: at most one Notarize / Beacon_share per party
       per round, never more than n per round, party ids within 1..n.

   Violations are split into fatal ones (safety actually broken) and
   warnings (Byzantine evidence the protocol tolerates, e.g. two distinct
   digests notarized in one round with no finalization — legal under
   equivocation, but worth surfacing with its round and event index).

   The liveness watchdog tracks each round's entry -> notarize -> decide
   pipeline and flags a stage once it has waited longer than
   [stall_factor * delta] (Δ being the partial-synchrony bound).  It is
   purely event-driven: deadlines are checked lazily when an event's
   timestamp passes the earliest open deadline, so the monitor never
   schedules engine work and a monitored run stays byte-identical to an
   unmonitored one.  A flagged stall clears when its milestone finally
   arrives ([Monitor_clear]); stalls still open at [Run_end] remain in
   {!stalled_rounds}.

   Idle cost: one counter bump and one pattern match per event; all state
   is Hashtbl-backed, so nothing is allocated for rounds that behave. *)

type config = {
  delta : float; (* the delay bound Δ the watchdog scales by *)
  stall_factor : float; (* flag a stage after stall_factor * delta *)
  abort_on_violation : bool; (* raise Abort on the first fatal violation *)
}

let default_config ?(stall_factor = 8.) ?(abort_on_violation = false) ~delta ()
    =
  { delta; stall_factor; abort_on_violation }

type violation = {
  v_index : int; (* bus event index at detection (JSONL line, 0-based) *)
  v_time : float;
  v_round : int;
  v_what : string;
  v_detail : string;
  v_fatal : bool;
}

type stall = {
  st_round : int;
  st_stage : string; (* "entry" | "notarize" | "decide" *)
  st_since : float; (* when the stage started waiting *)
  st_flagged_at : float;
  mutable st_cleared_at : float option;
}

exception Abort of violation

let violation_message v =
  Printf.sprintf "monitor: %s violation in round %d at t=%.6f (event %d): %s"
    v.v_what v.v_round v.v_time v.v_index v.v_detail

let () =
  Printexc.register_printer (function
    | Abort v -> Some (violation_message v)
    | _ -> None)

(* Per-round milestone and certificate-digest state.  [notarized] and
   [finalized] stay tiny (one digest each in honest runs), so assoc lists
   beat hash tables here. *)
type round_state = {
  mutable rs_entry : float option;
  mutable rs_propose : float option;
  mutable rs_notarize : float option;
  mutable rs_decided : float option;
  mutable rs_notarized : string list; (* distinct digests with a cert *)
  mutable rs_finalized : string list;
  mutable rs_commit : string option; (* the digest honest parties commit *)
  mutable rs_entry_flagged : bool;
  mutable rs_notarize_flagged : bool;
  mutable rs_decide_flagged : bool;
}

type t = {
  config : config;
  trace : Trace.t option; (* where Monitor_* events are announced *)
  mutable n : int; (* parties, from Run_start (0 = unknown) *)
  mutable index : int; (* events observed so far *)
  mutable started_at : float;
  mutable ended : bool;
  rounds : (int, round_state) Hashtbl.t;
  open_rounds : (int, unit) Hashtbl.t; (* rounds the watchdog still sweeps *)
  mutable max_entered : int; (* highest round with an entry event *)
  mutable next_deadline : float; (* earliest open watchdog deadline *)
  per_party_notarize : (int * int, int) Hashtbl.t; (* (round, party) count *)
  per_party_beacon : (int * int, int) Hashtbl.t;
  per_round_notarize : (int, int) Hashtbl.t; (* total Notarize events *)
  last_commit_round : (int, int) Hashtbl.t; (* party -> last committed round *)
  corrupt : (int, unit) Hashtbl.t; (* parties announced by Adv_corrupt *)
  mutable violations : violation list; (* newest first *)
  mutable stalls : stall list; (* newest first *)
}

let create ?trace config =
  {
    config;
    trace;
    n = 0;
    index = 0;
    started_at = 0.;
    ended = false;
    rounds = Hashtbl.create 64;
    open_rounds = Hashtbl.create 16;
    max_entered = 0;
    next_deadline = infinity;
    per_party_notarize = Hashtbl.create 64;
    per_party_beacon = Hashtbl.create 64;
    per_round_notarize = Hashtbl.create 64;
    last_commit_round = Hashtbl.create 16;
    corrupt = Hashtbl.create 8;
    violations = [];
    stalls = [];
  }

let round_state t round =
  match Hashtbl.find_opt t.rounds round with
  | Some rs -> rs
  | None ->
      let rs =
        {
          rs_entry = None;
          rs_propose = None;
          rs_notarize = None;
          rs_decided = None;
          rs_notarized = [];
          rs_finalized = [];
          rs_commit = None;
          rs_entry_flagged = false;
          rs_notarize_flagged = false;
          rs_decide_flagged = false;
        }
      in
      Hashtbl.add t.rounds round rs;
      Hashtbl.replace t.open_rounds round ();
      (* a fresh round opens a watchdog stage: pull the sweep horizon in *)
      t.next_deadline <- min t.next_deadline 0.;
      rs

let announce t ~time ev =
  match t.trace with Some tr -> Trace.emit tr ~time ev | None -> ()

let violate t ~time ~round ~what ~detail ~fatal =
  let v =
    {
      v_index = t.index - 1;
      v_time = time;
      v_round = round;
      v_what = what;
      v_detail = detail;
      v_fatal = fatal;
    }
  in
  t.violations <- v :: t.violations;
  announce t ~time (Trace.Monitor_violation { round; what; detail });
  if fatal && t.config.abort_on_violation then raise (Abort v)

let bump tbl key =
  let c = 1 + Option.value ~default:0 (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key c;
  c

let check_party t ~time ~round party =
  if t.n > 0 && (party < 1 || party > t.n) then
    violate t ~time ~round ~what:"party-out-of-range"
      ~detail:(Printf.sprintf "party %d outside 1..%d" party t.n)
      ~fatal:true

(* --- the liveness watchdog --------------------------------------------- *)

let stall_budget t = t.config.stall_factor *. t.config.delta

(* The three per-round stages, each (name, waiting-since, done?, flagged
   accessor).  Stage "entry" of round r starts when round r-1 notarizes
   (round 1: at run start); "notarize" when r is entered; "decide" when r
   is notarized. *)
let stage_start t round rs = function
  | "entry" ->
      if round = 1 then Some t.started_at
      else
        Option.bind (Hashtbl.find_opt t.rounds (round - 1)) (fun prev ->
            prev.rs_notarize)
  | "notarize" -> rs.rs_entry
  | "decide" -> rs.rs_notarize
  | _ -> None

let stage_done rs = function
  | "entry" -> rs.rs_entry <> None
  | "notarize" -> rs.rs_notarize <> None
  | "decide" -> rs.rs_decided <> None
  | _ -> true

let stage_flagged rs = function
  | "entry" -> rs.rs_entry_flagged
  | "notarize" -> rs.rs_notarize_flagged
  | "decide" -> rs.rs_decide_flagged
  | _ -> false

let set_stage_flagged rs = function
  | "entry" -> rs.rs_entry_flagged <- true
  | "notarize" -> rs.rs_notarize_flagged <- true
  | "decide" -> rs.rs_decide_flagged <- true
  | _ -> ()

let stages = [ "entry"; "notarize"; "decide" ]

(* Sweep every open round's open stages: flag those past their deadline,
   and recompute the earliest remaining deadline.  [next_deadline] is
   updated before any event is announced so a re-entrant observe of our
   own Monitor_stall cannot recurse into another sweep. *)
let sweep t ~time =
  let flagged = ref [] in
  let horizon = ref infinity in
  (* Fix a canonical (ascending round) sweep order: flagged stages are
     announced on the trace bus, so bucket order must not leak (D2). *)
  let open_rounds =
    Hashtbl.fold (fun round () acc -> round :: acc) t.open_rounds []
    |> List.sort Int.compare
  in
  List.iter
    (fun round ->
      match Hashtbl.find_opt t.rounds round with
      | None -> ()
      | Some rs ->
          List.iter
            (fun stage ->
              if not (stage_done rs stage || stage_flagged rs stage) then
                match stage_start t round rs stage with
                | None -> ()
                | Some since ->
                    let deadline = since +. stall_budget t in
                    if time >= deadline then begin
                      set_stage_flagged rs stage;
                      let st =
                        {
                          st_round = round;
                          st_stage = stage;
                          st_since = since;
                          st_flagged_at = time;
                          st_cleared_at = None;
                        }
                      in
                      t.stalls <- st :: t.stalls;
                      flagged := (round, stage, time -. since) :: !flagged
                    end
                    else horizon := min !horizon deadline)
            stages)
    open_rounds;
  t.next_deadline <- !horizon;
  List.iter
    (fun (round, stage, waited) ->
      announce t ~time (Trace.Monitor_stall { round; stage; waited }))
    (List.rev !flagged)

(* A milestone arrived for a stage the watchdog had flagged: record the
   recovery and re-arm the sweep horizon (the next stage just opened). *)
let clear_stage t ~time ~round rs stage =
  if stage_flagged rs stage then begin
    (match
       List.find_opt
         (fun st ->
           st.st_round = round && st.st_stage = stage
           && st.st_cleared_at = None)
         t.stalls
     with
    | Some st ->
        st.st_cleared_at <- Some time;
        announce t ~time
          (Trace.Monitor_clear { round; stage; waited = time -. st.st_since })
    | None -> ());
    match stage with
    | "entry" -> rs.rs_entry_flagged <- false
    | "notarize" -> rs.rs_notarize_flagged <- false
    | "decide" -> rs.rs_decide_flagged <- false
    | _ -> ()
  end;
  t.next_deadline <- min t.next_deadline (time +. stall_budget t)

(* --- per-event safety checks ------------------------------------------- *)

let on_round_entry t ~time ~party ~round =
  check_party t ~time ~round party;
  let rs = round_state t round in
  if rs.rs_entry = None then begin
    rs.rs_entry <- Some time;
    clear_stage t ~time ~round rs "entry"
  end;
  if round > t.max_entered then t.max_entered <- round

let on_notarize t ~time ~party ~round ~block =
  check_party t ~time ~round party;
  let rs = round_state t round in
  if rs.rs_notarize = None then begin
    rs.rs_notarize <- Some time;
    clear_stage t ~time ~round rs "notarize";
    (* round + 1's "entry" stage just started waiting *)
    t.next_deadline <- min t.next_deadline (time +. stall_budget t);
    ignore (round_state t (round + 1))
  end;
  if bump t.per_party_notarize (round, party) > 1 then
    violate t ~time ~round ~what:"duplicate-notarize"
      ~detail:(Printf.sprintf "party %d notarized round %d more than once" party round)
      ~fatal:false;
  if t.n > 0 && bump t.per_round_notarize round > t.n then
    violate t ~time ~round ~what:"notarize-overflow"
      ~detail:
        (Printf.sprintf "more than n=%d notarization events in round %d" t.n
           round)
      ~fatal:true;
  if not (List.mem block rs.rs_notarized) then begin
    rs.rs_notarized <- block :: rs.rs_notarized;
    (match rs.rs_notarized with
    | _ :: _ :: _ ->
        violate t ~time ~round ~what:"double-notarization"
          ~detail:
            (Printf.sprintf "round %d notarized distinct blocks {%s}" round
               (String.concat " " (List.rev rs.rs_notarized)))
          ~fatal:false
    | _ -> ());
    List.iter
      (fun f ->
        if f <> block then
          violate t ~time ~round ~what:"conflicting-notarization"
            ~detail:
              (Printf.sprintf
                 "round %d: block %s notarized but %s is finalized (P2)" round
                 block f)
            ~fatal:true)
      rs.rs_finalized
  end

let on_finalize t ~time ~party ~round ~block =
  check_party t ~time ~round party;
  let rs = round_state t round in
  if not (List.mem block rs.rs_finalized) then begin
    (match rs.rs_finalized with
    | f :: _ ->
        violate t ~time ~round ~what:"conflicting-finalization"
          ~detail:
            (Printf.sprintf "round %d finalized both %s and %s" round f block)
          ~fatal:true
    | [] -> ());
    rs.rs_finalized <- block :: rs.rs_finalized;
    List.iter
      (fun nz ->
        if nz <> block then
          violate t ~time ~round ~what:"conflicting-notarization"
            ~detail:
              (Printf.sprintf
                 "round %d: block %s finalized but %s is notarized (P2)" round
                 block nz)
            ~fatal:true)
      rs.rs_notarized
  end

let on_commit t ~time ~party ~round ~block =
  check_party t ~time ~round party;
  let rs = round_state t round in
  (match rs.rs_commit with
  | None -> rs.rs_commit <- Some block
  | Some c when c <> block ->
      violate t ~time ~round ~what:"fork"
        ~detail:
          (Printf.sprintf "round %d: party %d committed %s, others committed %s"
             round party block c)
        ~fatal:true
  | Some _ -> ());
  match Hashtbl.find_opt t.last_commit_round party with
  | Some last when round <= last ->
      violate t ~time ~round ~what:"commit-regression"
        ~detail:
          (Printf.sprintf
             "party %d committed round %d after already committing round %d"
             party round last)
        ~fatal:true
  | _ -> Hashtbl.replace t.last_commit_round party round

let on_decided t ~time ~round ~block =
  let rs = round_state t round in
  (match rs.rs_commit with
  | Some c when c <> block ->
      violate t ~time ~round ~what:"fork"
        ~detail:
          (Printf.sprintf "round %d decided %s but parties committed %s" round
             block c)
        ~fatal:true
  | _ -> rs.rs_commit <- Some block);
  (if rs.rs_notarized <> [] && not (List.mem block rs.rs_notarized) then
     violate t ~time ~round ~what:"unnotarized-decide"
       ~detail:
         (Printf.sprintf "round %d decided %s without an observed notarization"
            round block)
       ~fatal:false);
  if rs.rs_decided = None then begin
    rs.rs_decided <- Some time;
    clear_stage t ~time ~round rs "decide"
  end;
  (* the round is fully resolved: stop sweeping it *)
  Hashtbl.remove t.open_rounds round

let on_beacon_share t ~time ~party ~round =
  check_party t ~time ~round party;
  if bump t.per_party_beacon (round, party) > 1 then
    violate t ~time ~round ~what:"duplicate-beacon-share"
      ~detail:
        (Printf.sprintf "party %d released its round-%d beacon share twice"
           party round)
      ~fatal:false

(* --- the consumer ------------------------------------------------------ *)

let observe t ~time ev =
  t.index <- t.index + 1;
  match ev with
  | Trace.Monitor_violation _ | Trace.Monitor_stall _ | Trace.Monitor_clear _
    ->
      (* our own announcements, observed re-entrantly: count them so
         v_index matches the JSONL line number, change no state *)
      ()
  | ( Trace.Run_start _ | Trace.Run_end _ | Trace.Engine_dispatch _
    | Trace.Net_send _ | Trace.Net_deliver _ | Trace.Net_hold _
    | Trace.Gossip_publish _ | Trace.Gossip_request _ | Trace.Gossip_acquire _
    | Trace.Rbc_fragment _ | Trace.Rbc_echo _ | Trace.Rbc_reconstruct _
    | Trace.Rbc_inconsistent _ | Trace.Round_entry _ | Trace.Propose _
    | Trace.Notarize _ | Trace.Finalize _ | Trace.Beacon_share _
    | Trace.Commit _ | Trace.Block_decided _ | Trace.Protocol_error _
    | Trace.Fault_drop _
    | Trace.Fault_duplicate _ | Trace.Fault_reorder _ | Trace.Fault_link_down _
    | Trace.Fault_crash _ | Trace.Fault_recover _ | Trace.Adv_corrupt _
    | Trace.Adv_equivocate _ | Trace.Adv_withhold _ | Trace.Adv_censor _
    | Trace.Adv_delay _ | Trace.Adv_straggle _ | Trace.Resync_summary _
    | Trace.Resync_request _ | Trace.Resync_reply _ | Trace.Prof_span _
    | Trace.Prof_counter _ ) as ev ->
      (match ev with
      | Trace.Run_start { n; _ } ->
          t.n <- n;
          t.started_at <- time;
          ignore (round_state t 1)
      | Trace.Run_end _ ->
          t.ended <- true;
          sweep t ~time
      | Trace.Round_entry { party; round } -> on_round_entry t ~time ~party ~round
      | Trace.Propose { party; round } ->
          check_party t ~time ~round party;
          let rs = round_state t round in
          if rs.rs_propose = None then rs.rs_propose <- Some time
      | Trace.Notarize { party; round; block } ->
          on_notarize t ~time ~party ~round ~block
      | Trace.Finalize { party; round; block } ->
          on_finalize t ~time ~party ~round ~block
      | Trace.Beacon_share { party; round } -> on_beacon_share t ~time ~party ~round
      | Trace.Commit { party; round; block } ->
          on_commit t ~time ~party ~round ~block
      | Trace.Block_decided { round; block } -> on_decided t ~time ~round ~block
      | Trace.Protocol_error { party; round; what } ->
          (* a party reported an internal should-be-impossible condition and
             skipped the step; surface it as a recorded, non-fatal violation *)
          violate t ~time ~round ~what:"protocol-error"
            ~detail:(Printf.sprintf "party %d: %s" party what)
            ~fatal:false
      | Trace.Fault_recover { party } ->
          (* a recovered party legitimately re-releases the beacon shares
             for its current rounds; forget its counters so the rebroadcast
             is not flagged as equivocation *)
          let stale =
            Hashtbl.fold
              (fun ((_, p) as key) _ acc -> if p = party then key :: acc else acc)
              t.per_party_beacon []
            |> List.sort (fun (r1, p1) (r2, p2) ->
                   match Int.compare r1 r2 with
                   | 0 -> Int.compare p1 p2
                   | c -> c)
          in
          List.iter (Hashtbl.remove t.per_party_beacon) stale
      | Trace.Adv_corrupt { party; _ } ->
          (* a declared corruption: remember the party so duplicate-share
             warnings it causes can be attributed (see corrupt_parties) *)
          Hashtbl.replace t.corrupt party ()
      | Trace.Adv_equivocate _ | Trace.Adv_withhold _ | Trace.Adv_censor _
      | Trace.Adv_delay _ | Trace.Adv_straggle _
      | Trace.Engine_dispatch _ | Trace.Net_send _ | Trace.Net_deliver _
      | Trace.Net_hold _ | Trace.Gossip_publish _ | Trace.Gossip_request _
      | Trace.Gossip_acquire _ | Trace.Rbc_fragment _ | Trace.Rbc_echo _
      | Trace.Rbc_reconstruct _ | Trace.Rbc_inconsistent _
      | Trace.Monitor_violation _ | Trace.Monitor_stall _
      | Trace.Monitor_clear _ | Trace.Fault_drop _ | Trace.Fault_duplicate _
      | Trace.Fault_reorder _ | Trace.Fault_link_down _ | Trace.Fault_crash _
      | Trace.Resync_summary _ | Trace.Resync_request _
      | Trace.Resync_reply _ | Trace.Prof_span _ | Trace.Prof_counter _ ->
          ());
      if time >= t.next_deadline && not t.ended then sweep t ~time

let attach ?(config = default_config ~delta:1.0 ()) trace =
  let t = create ~trace config in
  Trace.subscribe ~all:true trace (observe t);
  t

(* --- queries ----------------------------------------------------------- *)

let events_seen t = t.index
let violations t = List.rev t.violations
let fatal_violations t = List.filter (fun v -> v.v_fatal) (violations t)
let warnings t = List.filter (fun v -> not v.v_fatal) (violations t)
let stalls t = List.rev t.stalls

let corrupt_parties t =
  Hashtbl.fold (fun p () acc -> p :: acc) t.corrupt []
  |> List.sort Int.compare

let stalled_rounds t =
  List.sort_uniq compare
    (List.filter_map
       (fun st -> if st.st_cleared_at = None then Some st.st_round else None)
       t.stalls)

let ok t = not (List.exists (fun v -> v.v_fatal) t.violations)

let summary t =
  let fatal = List.length (fatal_violations t) in
  let warn = List.length (warnings t) in
  let stalls_n = List.length t.stalls in
  let open_n = List.length (stalled_rounds t) in
  if fatal = 0 && warn = 0 && stalls_n = 0 then
    Printf.sprintf "monitor: clean (%d events)" t.index
  else
    Printf.sprintf
      "monitor: %d fatal violation%s, %d warning%s, %d stall%s (%d unrecovered)"
      fatal
      (if fatal = 1 then "" else "s")
      warn
      (if warn = 1 then "" else "s")
      stalls_n
      (if stalls_n = 1 then "" else "s")
      open_n

let report t =
  let b = Buffer.create 256 in
  Buffer.add_string b (summary t);
  Buffer.add_char b '\n';
  List.iter
    (fun v ->
      Buffer.add_string b
        (Printf.sprintf "  %s %-26s round %-4d t=%-10.4f event %-7d %s\n"
           (if v.v_fatal then "FATAL" else "warn ")
           v.v_what v.v_round v.v_time v.v_index v.v_detail))
    (violations t);
  List.iter
    (fun st ->
      Buffer.add_string b
        (Printf.sprintf "  stall %-10s round %-4d waited %.4fs since t=%.4f %s\n"
           st.st_stage st.st_round
           (st.st_flagged_at -. st.st_since)
           st.st_since
           (match st.st_cleared_at with
           | Some c -> Printf.sprintf "(recovered at t=%.4f)" c
           | None -> "(unrecovered)")))
    (stalls t);
  Buffer.contents b
