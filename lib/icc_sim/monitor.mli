(** Online invariant monitor over the {!Trace} bus.

    Incrementally verifies the paper's safety statements as events arrive —
    P2 (a finalized round-k block excludes conflicting round-k
    notarizations), committed-prefix consistency across parties, and
    quorum-count sanity — and runs a liveness watchdog that flags rounds
    whose entry → notarize → decide pipeline exceeds a configurable
    multiple of the delay bound Δ.

    The monitor is a pure bus consumer: it never mutates simulation state
    or schedules engine work, so a monitored run of a given seed is
    byte-identical to an unmonitored one.  Detections are announced back
    on the bus as [Monitor_violation] / [Monitor_stall] / [Monitor_clear]
    events (subscribe the JSONL sink before attaching the monitor and the
    announcements land right after the offending line). *)

type config = {
  delta : float;  (** The delay bound Δ the watchdog scales by. *)
  stall_factor : float;
      (** A pipeline stage stalls after [stall_factor *. delta] without
          progress. *)
  abort_on_violation : bool;
      (** Raise {!Abort} on the first fatal violation instead of
          recording it. *)
}

val default_config :
  ?stall_factor:float -> ?abort_on_violation:bool -> delta:float -> unit ->
  config
(** Defaults: [stall_factor = 8.], [abort_on_violation = false]. *)

type violation = {
  v_index : int;
      (** 0-based bus event index at detection — the line number in a
          JSONL dump written by a sink subscribed alongside the monitor. *)
  v_time : float;
  v_round : int;
  v_what : string;  (** Stable tag, e.g. ["conflicting-notarization"]. *)
  v_detail : string;
  v_fatal : bool;
      (** Fatal: safety actually broken (P2 conflict, fork, commit
          regression, counting overflow).  Non-fatal: Byzantine evidence
          the protocol tolerates (double notarization without a
          finalization, duplicate shares). *)
}

type stall = {
  st_round : int;
  st_stage : string;  (** ["entry"], ["notarize"] or ["decide"]. *)
  st_since : float;  (** When the stage started waiting. *)
  st_flagged_at : float;
  mutable st_cleared_at : float option;
      (** Set when the awaited milestone finally arrived. *)
}

exception Abort of violation
(** Raised mid-run (from inside the emitting layer's call stack) when
    [abort_on_violation] is set, carrying the event-indexed diagnosis. *)

val violation_message : violation -> string

type t

val create : ?trace:Trace.t -> config -> t
(** A detached monitor; feed it with {!observe} (the offline replay path).
    [trace] is where [Monitor_*] announcements are emitted, if given. *)

val attach : ?config:config -> Trace.t -> t
(** [create] + subscribe to every event of [trace]; announcements go back
    on the same bus.  Default config: [delta = 1.0]. *)

val observe : t -> time:float -> Trace.event -> unit
(** Consume one event.  [Monitor_*] events are counted (so indices keep
    matching file lines) but change no state. *)

val events_seen : t -> int
val violations : t -> violation list  (** In detection order. *)

val fatal_violations : t -> violation list
val warnings : t -> violation list
val stalls : t -> stall list  (** In flag order, recovered or not. *)

val stalled_rounds : t -> int list
(** Rounds with an unrecovered stall, ascending. *)

val corrupt_parties : t -> int list
(** Parties announced corrupt by [Adv_corrupt] events, ascending — the
    adversary's footprint as visible from the trace alone. *)

val ok : t -> bool
(** No fatal violation recorded. *)

val summary : t -> string  (** One line. *)

val report : t -> string
(** Multi-line: the summary plus one line per violation and stall. *)
