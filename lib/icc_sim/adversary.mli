(** Composable, deterministic Byzantine adversary strategies.

    Where the {!Fault} nemesis attacks the *network* (drops, duplicates,
    partitions), an adversary corrupts *parties*: it interposes on a
    corrupt party's sends and internal protocol steps.  A {!script} is a
    list of {!directive}s, each pairing a target (one named party, or
    "any party" for adaptive corruption up to a budget), an activation
    trigger (always / from a round / when the party's beacon rank matches)
    and an {!action} — equivocation, share withholding, per-peer
    censorship, stealthy-leader delay, crash windows, or Losa–Gafni
    unknown-participation straggling.

    Two interposition surfaces consume one instance:

    - the protocol layer ({!Icc_core.Party}) asks {!note_round} /
      {!equivocation} / {!withholds} / {!crashed_now} to drive corrupt
      behavior from inside the party (conflicting proposals, suppressed
      shares, crash windows);
    - the network ({!Network}) asks {!on_send} for every remote
      transmission, which applies censorship, straggling, delay and —
      when a [classify] function maps message kinds to share classes —
      network-level withholding for the baseline protocols that have no
      party hooks.

    Determinism mirrors {!Fault}: the instance owns a private {!Rng}
    stream, draws happen unconditionally for every matching rule in
    script order, and nothing depends on who is subscribed to the bus, so
    one seed + script reproduces the same attack byte-for-byte.  Every
    adversary decision is announced as a round-trippable [adv-*] trace
    event ([Adv_corrupt] and [Adv_equivocate] at core level; the
    per-message ones at detail level). *)

(** The three share kinds a corrupt party can suppress. *)
type share_class = Beacon | Notar | Final

type action =
  | Equivocate of { noisy : bool }
      (** As proposer, send conflicting proposals to disjoint halves of
          the network; with [noisy], also notarization-share every valid
          block seen (and finalization-share promiscuously), maximising
          the chance a conflicting block gathers a certificate. *)
  | Withhold of { beacon : bool; notar : bool; final : bool; p : float }
      (** Suppress own shares of the flagged classes, each round
          independently with probability [p] ([p = 1.] = always). *)
  | Censor of { dsts : int list }
      (** Silently drop every message to the listed peers. *)
  | Delay of { by : float }
      (** Stealthy leader: hold every outgoing message back [by] seconds
          (just under the timeout keeps the party in the protocol while
          slowing every round it leads). *)
  | Crash_window
      (** Behave as crashed inside the directive's time window (send and
          process nothing), resuming afterwards — the crash-vs-Byzantine
          hybrid. *)
  | Straggle of { p : float }
      (** Drop each outgoing copy independently with probability [p]:
          the unknown-participation message adversary (Losa–Gafni). *)

type target =
  | Party of int  (** One statically corrupt party. *)
  | Any
      (** Adaptive: any party satisfying the trigger may be corrupted,
          up to the directive's [max_corrupt] budget. *)

type trigger =
  | Always
  | On_round of int  (** Activates when the party enters round >= r. *)
  | On_rank of int
      (** Activates when the party's beacon rank for an entered round
          equals the given rank (0 = leader) — "corrupt the leader". *)

type directive = {
  who : target;
  from_ : float;
  until : float;  (** The action applies during [[from_, until)]. *)
  trigger : trigger;
  action : action;
  max_corrupt : int;
      (** Distinct parties this directive may corrupt ([max_int] for
          statically targeted ones). *)
}

type script = directive list

(** {1 Script constructors} *)

val equivocate : ?noisy:bool -> ?from_:float -> ?until:float -> int -> directive

val withhold :
  ?beacon:bool -> ?notar:bool -> ?final:bool -> ?p:float -> ?from_:float ->
  ?until:float -> int -> directive
(** Flags default to withholding all three share classes, [p] to [1.]. *)

val censor : dsts:int list -> ?from_:float -> ?until:float -> int -> directive
val delay : by:float -> ?from_:float -> ?until:float -> int -> directive
val crash_window : from_:float -> until:float -> int -> directive
val straggle : p:float -> ?from_:float -> ?until:float -> int -> directive

val adaptive :
  ?from_:float -> ?until:float -> ?on_round:int -> ?rank:int ->
  max_corrupt:int -> action -> directive
(** An [Any]-targeted directive; [rank] wins over [on_round] when both are
    given, no predicate means [Always]. *)

(** {1 Static script analysis} — used by the runner before the run. *)

val static_corrupt : script -> int list
(** Parties named by a [Party _] target, ascending and deduplicated: the
    statically corrupt set, excluded from honest-commit accounting. *)

val static_crash_wakes : script -> (float * int) list
(** [(until, party)] for statically targeted crash windows with a finite
    end, sorted by time: the runner schedules a wake-up step for the party
    at each window end. *)

(** {1 Instance} *)

type t

val create :
  rng:Rng.t -> trace:Trace.t -> n:int ->
  ?classify:(string -> share_class option) -> script -> t
(** One adversary for one run.  [rng] must be a dedicated stream (a
    {!Rng.split} of the scenario RNG, taken only when a non-empty script
    is configured, so runs without an adversary keep their historical
    streams).  [classify] maps wire message kinds to share classes and
    enables network-level withholding — the baseline harness passes it;
    the ICC stack leaves it [None] because parties withhold at the
    protocol layer. *)

val script : t -> script

val note_round : t -> now:float -> party:int -> round:int -> rank:int -> unit
(** Evaluate activation triggers for [party] entering [round] with beacon
    rank [rank].  First activation of a (directive, party) pair announces
    [Adv_corrupt] and counts against the directive's budget.  Must be
    called once per round entry, before any same-round query. *)

val equivocation : t -> now:float -> party:int -> bool option
(** [Some noisy] when an active equivocation directive applies. *)

val withholds :
  t -> now:float -> party:int -> round:int -> share_class -> bool
(** Draw the round's withholding decision for one share class.  Call once
    per (party, round, class) — the draw is part of the deterministic
    stream.  Announces [Adv_withhold] when true. *)

val crashed_now : t -> now:float -> party:int -> bool
(** An active crash window covers [now] (pure; no draws). *)

type send_verdict = {
  av_drop : bool;  (** Suppress the transmission entirely. *)
  av_delay : float;  (** Extra seconds added before the network delay. *)
}

val on_send : t -> now:float -> src:int -> dst:int -> kind:string -> send_verdict
(** Network-level interposition, called once per remote transmission in
    transmission order (draws are stream-positional).  Applies censor /
    straggle / delay / crash-window directives active for [src], plus
    withholding via [classify] when configured. *)

val corrupted : t -> int list
(** Every party corrupted so far (static and adaptively activated),
    ascending — the runner subtracts these from the honest set. *)

(** {1 Script files} *)

exception Script_error of string

val script_of_json : string -> (script, string) result
(** Parse a JSON script: an array of objects selected by their
    ["adversary"] field.  Directives name a ["party"] or are adaptive
    (["rank"] / ["on_round"] plus ["max"]); times default to the whole
    run.
    {v
    [
      {"adversary":"equivocate","party":3,"noisy":true},
      {"adversary":"withhold","party":2,"notar":true,"p":0.5},
      {"adversary":"censor","party":2,"dsts":[1,4]},
      {"adversary":"delay","party":1,"by":0.4,"from":10,"until":20},
      {"adversary":"crash","party":2,"from":5,"until":10},
      {"adversary":"straggle","party":4,"p":0.3},
      {"adversary":"equivocate","rank":0,"max":2}
    ]
    v} *)
