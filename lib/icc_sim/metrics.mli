(** Per-party traffic and protocol metrics for one simulation run, kept
    incrementally as a [core]-level consumer of the {!Trace} bus.  Traffic
    is accounted at the modeled wire sizes carried by [Net_send] events;
    per-round milestone tables are Hashtbl-backed (O(1) per event). *)

type t

val create : int -> t
(** [create n] for [n] parties (1-based ids). *)

val attach : t -> Trace.t -> unit
(** Subscribe as a [core] sink: [Net_send] drives traffic accounting,
    [Round_entry]/[Propose]/[Notarize] the per-round milestone tables, and
    [Block_decided] finalization counts and propose→decide latencies. *)

val n : t -> int

(** {1 Direct recording}

    The trace sink uses these; tests and custom harnesses may call them
    directly.  The per-round recorders keep the first event per round. *)

val record_send : t -> src:int -> size:int -> kind:string -> copies:int -> unit
(** [copies] is the number of unicast transmissions (e.g. [n-1] for a
    broadcast). *)

val record_finalization : t -> round:int -> time:float -> unit
val record_proposal : t -> round:int -> time:float -> unit
val record_notarization : t -> round:int -> time:float -> unit
val record_round_entry : t -> round:int -> time:float -> unit
val record_latency : t -> float -> unit

(** {1 Traffic} *)

val total_msgs : t -> int
val total_bytes : t -> int
val max_bytes_per_party : t -> int
val msgs_of_kind : t -> string -> int
val bytes_of_kind : t -> string -> int

val kinds : t -> (string * int * int) list
(** [(kind, msgs, bytes)] per message kind, sorted by kind. *)

(** {1 Per-round timeline} *)

val round_entry_time : t -> int -> float option
val proposal_time : t -> int -> float option
val notarization_time : t -> int -> float option
val finalization_time : t -> int -> float option

val max_round : t -> int
(** Highest round seen in any milestone. *)

val finalized_blocks : t -> int

val finalizations : t -> (int * float) list
(** Every finalization [(round, time)] in recording order. *)

val latencies : t -> float list
(** Propose → all-honest-commit latencies in recording order. *)

(** {1 Statistics} *)

val mean : float list -> float

val percentile : float -> float list -> float
(** Nearest-rank percentile; [nan] values are dropped, empty input yields
    [nan]. *)

val sorted_samples : float list -> float array
(** Drop [nan]s and sort ascending — the one-time half of {!percentile},
    for callers querying several ranks of the same samples. *)

val percentile_of_sorted : float -> float array -> float
(** Nearest-rank percentile over a {!sorted_samples} array, O(1). *)

val latency_percentile : t -> float -> float
(** Percentile of the run's propose→commit latencies, served from a
    memoized sorted view that is invalidated by {!record_latency} — so
    analyzers querying many ranks of a finished run sort once, not per
    query. *)

val mean_latency : t -> float
val blocks_per_second : t -> window:float -> float
val mean_bytes_per_party_per_second : t -> window:float -> float
