(** Simulated message-passing network between [n] parties (1-based ids),
    with pluggable delay models and adversary-controlled asynchronous
    intervals (partial synchrony, paper §1/§3.1).

    Self-delivery is immediate and free (a party's pool holds its own
    broadcasts); all other transmissions are announced on the {!Trace} bus
    at the caller's modeled wire size ([Net_send] always; [Net_hold] and
    [Net_deliver] when a detail subscriber is present). *)

type delay_model =
  | Fixed of float
  | Uniform of { rng : Rng.t; lo : float; hi : float }
  | Matrix of float array array
  | Jitter of { rng : Rng.t; base : float; jitter : float }

type 'msg t

val create :
  Engine.t -> n:int -> trace:Trace.t -> delay_model:delay_model -> 'msg t

val set_handler : 'msg t -> (dst:int -> src:int -> 'msg -> unit) -> unit

val set_delay_model : 'msg t -> delay_model -> unit
(** Swap the delay model mid-run.

    Release semantics (pinned by a regression test in test/test_sim.ml):
    every transmission is priced {e at send time} — the delay is sampled
    from the model installed at the moment of [unicast]/[broadcast], and
    the release floor (the max of {!hold_all_until}, {!set_link_hold} and
    the nemesis floor) is read at that same moment.  A message already in
    flight or already held is therefore {e never} re-priced: changing the
    delay model, shortening a hold or clearing a link hold after the send
    does not move its scheduled delivery at [release + delay], and
    extending a hold does not recapture it.  Only messages sent after the
    change observe the new model or hold state. *)

val hold_all_until : 'msg t -> float -> unit
(** Adversarial asynchrony: messages sent while [now < time] are released at
    [time] (plus their sampled delay, per the send-time pricing above). *)

val set_link_hold : 'msg t -> (int -> int -> float) -> unit
(** Per-link release floor (absolute time), e.g. for partitions.  Consulted
    at send time only, like the global hold. *)

val clear_link_hold : 'msg t -> unit

val set_fault : 'msg t -> Fault.t -> unit
(** Interpose a {!Fault} nemesis: from now on every remote transmission is
    submitted to {!Fault.on_transmit}, which may drop it, duplicate it,
    delay copies out of order, or declare the link administratively down
    (its floor joins the hold maximum).  Self-delivery is never subject to
    faults.  The delay-model RNG stream is sampled before the nemesis is
    consulted, so installing a fault never shifts the delay sequence. *)

val set_adversary : 'msg t -> Adversary.t -> unit
(** Interpose a Byzantine {!Adversary}: every remote transmission is
    submitted to {!Adversary.on_send} {e before} the nemesis — a copy the
    corrupt sender suppresses (censorship, straggling, network-level
    withholding, crash window) never reaches the fault layer, and a
    stealthy-leader delay adds to the sampled network delay.  Self-delivery
    is never interposed.  The adversary draws from its own RNG stream after
    the delay model's, so installing it never shifts delay sampling. *)

val unicast : 'msg t -> src:int -> dst:int -> size:int -> kind:string -> 'msg -> unit
val broadcast : 'msg t -> src:int -> size:int -> kind:string -> 'msg -> unit
val delivered : 'msg t -> int

val wan_matrix : Rng.t -> n:int -> rtt_lo:float -> rtt_hi:float -> float array array
(** Symmetric one-way delay matrix sampled from RTT ~ U[[rtt_lo], [rtt_hi]]
    (the paper's observed 6–110 ms inter-datacenter range). *)
