(** Simulated message-passing network between [n] parties (1-based ids),
    with pluggable delay models and adversary-controlled asynchronous
    intervals (partial synchrony, paper §1/§3.1).

    Self-delivery is immediate and free (a party's pool holds its own
    broadcasts); all other transmissions are announced on the {!Trace} bus
    at the caller's modeled wire size ([Net_send] always; [Net_hold] and
    [Net_deliver] when a detail subscriber is present). *)

type delay_model =
  | Fixed of float
  | Uniform of { rng : Rng.t; lo : float; hi : float }
  | Matrix of float array array
  | Jitter of { rng : Rng.t; base : float; jitter : float }

type 'msg t

val create :
  Engine.t -> n:int -> trace:Trace.t -> delay_model:delay_model -> 'msg t

val set_handler : 'msg t -> (dst:int -> src:int -> 'msg -> unit) -> unit
val set_delay_model : 'msg t -> delay_model -> unit

val hold_all_until : 'msg t -> float -> unit
(** Adversarial asynchrony: messages sent while [now < time] are released at
    [time] (plus their sampled delay). *)

val set_link_hold : 'msg t -> (int -> int -> float) -> unit
(** Per-link release floor (absolute time), e.g. for partitions. *)

val clear_link_hold : 'msg t -> unit

val unicast : 'msg t -> src:int -> dst:int -> size:int -> kind:string -> 'msg -> unit
val broadcast : 'msg t -> src:int -> size:int -> kind:string -> 'msg -> unit
val delivered : 'msg t -> int

val wan_matrix : Rng.t -> n:int -> rtt_lo:float -> rtt_hi:float -> float array array
(** Symmetric one-way delay matrix sampled from RTT ~ U[[rtt_lo], [rtt_hi]]
    (the paper's observed 6–110 ms inter-datacenter range). *)
