(* Deterministic fault injection (a Jepsen-style "nemesis").

   The network consults [on_transmit] once per remote transmission; the
   verdict carries the copies to deliver (with extra per-copy delay) and an
   administrative release floor for down links.  Probabilistic draws come
   from a private RNG stream and happen unconditionally for every matching
   rule — never short-circuited by tracing, hold state or an earlier drop —
   so the draw sequence is a pure function of the (deterministic)
   transmission order and the same seed + script reproduce the same faults
   whether or not anyone is watching the bus. *)

type action =
  | Drop of { p : float }
  | Duplicate of { p : float; spread : float }
  | Reorder of { p : float; max_extra : float }
  | Flap of { period : float; up : float }

type directive =
  | Rule of {
      from_ : float;
      until : float;
      src : int option;
      dst : int option;
      action : action;
    }
  | Partition of { from_ : float; until : float; groups : int list list }
  | Crash of { party : int; at : float }
  | Recover of { party : int; at : float }

type script = directive list

(* --- script constructors ------------------------------------------------ *)

let rule ?(from_ = 0.) ?(until = infinity) ?src ?dst action =
  Rule { from_; until; src; dst; action }

let drop ?from_ ?until ?src ?dst p = rule ?from_ ?until ?src ?dst (Drop { p })

let duplicate ?from_ ?until ?src ?dst ?(spread = 0.05) p =
  rule ?from_ ?until ?src ?dst (Duplicate { p; spread })

let reorder ?from_ ?until ?src ?dst ?(max_extra = 0.25) p =
  rule ?from_ ?until ?src ?dst (Reorder { p; max_extra })

let flap ?from_ ?until ?src ?dst ~period ?(up = 0.5) () =
  rule ?from_ ?until ?src ?dst (Flap { period; up })

let partition ~from_ ~until groups = Partition { from_; until; groups }

let crash_recover ~party ~down ~up =
  [ Crash { party; at = down }; Recover { party; at = up } ]

(* --- instance ----------------------------------------------------------- *)

type t = { rng : Rng.t; trace : Trace.t; script : script }

let create ~rng ~trace script = { rng; trace; script }
let script t = t.script

type verdict = { deliveries : float list; release_floor : float }

let emit_detail t ~now ev =
  if Trace.detailed t.trace then Trace.emit t.trace ~time:now (ev ())

(* Index of the partition group containing [id]; None when unlisted. *)
let group_of (groups : int list list) id =
  let rec go i = function
    | [] -> None
    | g :: rest -> if List.mem id g then Some i else go (i + 1) rest
  in
  go 0 groups

let severed groups a b =
  match (group_of groups a, group_of groups b) with
  | Some ga, Some gb -> ga <> gb
  | _ -> false

let on_transmit t ~now ~src ~dst ~kind =
  let dropped = ref false in
  let extra = ref 0. in
  let dups = ref [] in
  let floor_ = ref neg_infinity in
  let matches from_ until s d =
    now >= from_ && now < until
    && (match s with None -> true | Some id -> id = src)
    && match d with None -> true | Some id -> id = dst
  in
  List.iter
    (fun directive ->
      match directive with
      | Rule r when matches r.from_ r.until r.src r.dst -> (
          match r.action with
          | Drop { p } -> if Rng.float t.rng 1.0 < p then dropped := true
          | Duplicate { p; spread } ->
              (* Two draws always: the decision and the duplicate's offset,
                 keeping the stream shape independent of the outcome. *)
              let hit = Rng.float t.rng 1.0 < p in
              let offset = Rng.float t.rng spread in
              if hit then dups := offset :: !dups
          | Reorder { p; max_extra } ->
              let hit = Rng.float t.rng 1.0 < p in
              let offset = Rng.float t.rng max_extra in
              if hit then extra := !extra +. offset
          | Flap { period; up } ->
              let phase = Float.rem (now -. r.from_) period in
              if phase >= up *. period then begin
                (* Down-phase: the link reopens at the next cycle start. *)
                let cycle = Float.of_int (int_of_float ((now -. r.from_) /. period)) in
                floor_ := Float.max !floor_ (r.from_ +. ((cycle +. 1.) *. period))
              end)
      | Partition { from_; until; groups } when now >= from_ && now < until ->
          if severed groups src dst then floor_ := Float.max !floor_ until
      | Rule _ | Partition _ | Crash _ | Recover _ -> ())
    t.script;
  if !dropped then begin
    emit_detail t ~now (fun () -> Trace.Fault_drop { src; dst; kind });
    { deliveries = []; release_floor = !floor_ }
  end
  else begin
    if !dups <> [] then
      emit_detail t ~now (fun () ->
          Trace.Fault_duplicate
            { src; dst; kind; copies = 1 + List.length !dups });
    if !extra > 0. then
      emit_detail t ~now (fun () ->
          Trace.Fault_reorder { src; dst; kind; extra = !extra });
    if !floor_ > now then
      emit_detail t ~now (fun () ->
          Trace.Fault_link_down { src; dst; kind; release = !floor_ });
    (* Duplicates inherit the primary copy's reorder delay plus their own
       spread offset, so a duplicate never overtakes its original. *)
    let deliveries = !extra :: List.map (fun o -> !extra +. o) !dups in
    { deliveries; release_floor = !floor_ }
  end

(* --- crash/recover extraction ------------------------------------------ *)

let crash_schedule script =
  List.filter_map
    (function
      | Crash { party; at } -> Some (at, `Crash, party)
      | Recover { party; at } -> Some (at, `Recover, party)
      | Rule _ | Partition _ -> None)
    script
  |> List.stable_sort (fun (a, _, _) (b, _, _) -> Float.compare a b)

let finally_down script =
  let last : (int, float * bool) Hashtbl.t = Hashtbl.create 8 in
  let note party at is_down =
    match Hashtbl.find_opt last party with
    | Some (t, _) when t > at -> ()
    | _ -> Hashtbl.replace last party (at, is_down)
  in
  List.iter
    (function
      | Crash { party; at } -> note party at true
      | Recover { party; at } -> note party at false
      | Rule _ | Partition _ -> ())
    script;
  (* canonical ascending-party order: this list reaches the runner's honest
     set and from there the oracle verdicts, so flap-state bucket order
     must not leak (D2) *)
  Hashtbl.fold
    (fun party (_, is_down) acc -> if is_down then party :: acc else acc)
    last []
  |> List.sort Int.compare

(* --- JSON scripts ------------------------------------------------------- *)

(* A minimal recursive JSON reader for nemesis script files.  Unlike the
   flat-object parser in {!Trace}, scripts nest (partition groups), so this
   one handles arrays and objects generically.  It accepts standard JSON
   minus exotic escapes; errors carry a byte offset. *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Script_error of string

let parse_json text =
  let len = String.length text in
  let pos = ref 0 in
  let fail msg =
    raise (Script_error (Printf.sprintf "%s at byte %d" msg !pos))
  in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let skip_ws () =
    while
      !pos < len
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < len && text.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if
      !pos + String.length word <= len
      && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match text.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= len then fail "truncated escape";
          let c = text.[!pos] in
          incr pos;
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | _ -> fail "unsupported escape");
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while !pos < len && numchar text.[!pos] do incr pos done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Jarr []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items := parse_value () :: !items;
                more ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          more ();
          Jarr (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Jobj []
        end
        else begin
          let member () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            (key, parse_value ())
          in
          let fields = ref [ member () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields := member () :: !fields;
                more ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          more ();
          Jobj (List.rev !fields)
        end
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let directive_of_obj fields =
  let find name = List.assoc_opt name fields in
  let num ?default name =
    match find name with
    | Some (Jnum f) -> f
    | Some (Jnull | Jbool _ | Jstr _ | Jarr _ | Jobj _) ->
        raise (Script_error (name ^ ": expected number"))
    | None -> (
        match default with
        | Some d -> d
        | None -> raise (Script_error ("missing field " ^ name)))
  in
  let int_opt name =
    match find name with
    | Some (Jnum f) -> Some (int_of_float f)
    | Some (Jnull | Jbool _ | Jstr _ | Jarr _ | Jobj _) ->
        raise (Script_error (name ^ ": expected number"))
    | None -> None
  in
  let window () = (num ~default:0. "from", num ~default:infinity "until") in
  let kind =
    match find "fault" with
    | Some (Jstr s) -> s
    | Some (Jnull | Jbool _ | Jnum _ | Jarr _ | Jobj _) | None ->
        raise (Script_error "directive needs a \"fault\" string field")
  in
  match kind with
  | "drop" ->
      let from_, until = window () in
      Rule
        {
          from_;
          until;
          src = int_opt "src";
          dst = int_opt "dst";
          action = Drop { p = num "p" };
        }
  | "dup" | "duplicate" ->
      let from_, until = window () in
      Rule
        {
          from_;
          until;
          src = int_opt "src";
          dst = int_opt "dst";
          action = Duplicate { p = num "p"; spread = num ~default:0.05 "spread" };
        }
  | "reorder" ->
      let from_, until = window () in
      Rule
        {
          from_;
          until;
          src = int_opt "src";
          dst = int_opt "dst";
          action =
            Reorder { p = num "p"; max_extra = num ~default:0.25 "max_extra" };
        }
  | "flap" ->
      let from_, until = window () in
      Rule
        {
          from_;
          until;
          src = int_opt "src";
          dst = int_opt "dst";
          action = Flap { period = num "period"; up = num ~default:0.5 "up" };
        }
  | "partition" ->
      let from_, until = window () in
      let groups =
        match find "groups" with
        | Some (Jarr gs) ->
            List.map
              (function
                | Jarr ids ->
                    List.map
                      (function
                        | Jnum f -> int_of_float f
                        | Jnull | Jbool _ | Jstr _ | Jarr _ | Jobj _ ->
                            raise (Script_error "groups: expected party id"))
                      ids
                | Jnull | Jbool _ | Jnum _ | Jstr _ | Jobj _ ->
                    raise (Script_error "groups: expected array of arrays"))
              gs
        | Some (Jnull | Jbool _ | Jnum _ | Jstr _ | Jobj _) | None ->
            raise (Script_error "partition needs a \"groups\" array")
      in
      Partition { from_; until; groups }
  | "crash" ->
      Crash { party = int_of_float (num "party"); at = num "at" }
  | "recover" ->
      Recover { party = int_of_float (num "party"); at = num "at" }
  | other -> raise (Script_error (Printf.sprintf "unknown fault kind %S" other))

let script_of_json text =
  match parse_json text with
  | exception Script_error msg -> Error msg
  | Jarr items -> (
      match
        List.map
          (function
            | Jobj fields -> directive_of_obj fields
            | Jnull | Jbool _ | Jnum _ | Jstr _ | Jarr _ ->
                raise (Script_error "expected an array of objects"))
          items
      with
      | script -> Ok script
      | exception Script_error msg -> Error msg)
  | Jnull | Jbool _ | Jnum _ | Jstr _ | Jobj _ ->
      Error "expected a top-level array of directives"
