(** Offline trace analysis: parse a [--trace] JSONL dump back into typed
    events and aggregate per-round pipelines, bandwidth matrices,
    dissemination amplification and causal critical paths.  Pure
    aggregation — the [icc analyze] printer lives in
    [Icc_experiments.Analyze]. *)

type entry = {
  time : float;
  event : Trace.event;
  line : int;  (** 0-based line in the source file. *)
}

type load_result = {
  entries : entry array;  (** Parsed events, in file order. *)
  errors : (int * string) list;  (** Unparseable lines: (line, message). *)
}

val parse_lines : string list -> load_result
val load_file : string -> load_result

val monitor : ?config:Monitor.config -> entry array -> Monitor.t
(** Re-run the online {!Monitor} over a recorded stream.  [Monitor_*]
    events already in the dump are counted but ignored, so reported
    indices keep matching file lines. *)

val parties : entry array -> int
(** [n] from [Run_start], widened by any party id seen in traffic. *)

(** {1 Bandwidth} *)

type bandwidth = {
  bw_n : int;
  bw_msgs : int array array;
      (** Transmissions, indexed [src][dst] over 1..n.  A broadcast
          ([Net_send] with [dst = 0]) counts as [copies] transmissions:
          one to each of the [copies] lowest-numbered parties other than
          [src] (the network always emits [copies = n - 1], i.e. one per
          other party). *)
  bw_bytes : int array array;
  bw_sent_bytes : int array;  (** Row totals per src. *)
  bw_recv_bytes : int array;  (** Column totals per dst. *)
  bw_by_kind : (string * int * int) list;  (** kind, msgs, bytes; sorted. *)
  bw_total_msgs : int;
  bw_total_bytes : int;
}

val bandwidth : entry array -> bandwidth

(** {1 Per-round pipeline} *)

type round_row = {
  r_round : int;
  r_entry : float option;  (** First [Round_entry]. *)
  r_propose : float option;
  r_notarize : float option;
  r_finalize : float option;
  r_decided : float option;
}

val rounds : entry array -> round_row list  (** Ascending by round. *)

(** {1 Dissemination amplification} *)

type amplification = {
  amp_decided : int;
  amp_msgs_per_block : float;
  amp_bytes_per_block : float;
  amp_gossip_publish : int;
  amp_gossip_request : int;
  amp_gossip_acquire : int;
  amp_acquire_per_publish : float;
  amp_rbc_fragments : int;
  amp_rbc_echoes : int;
  amp_rbc_reconstructs : int;
  amp_rbc_inconsistent : int;
}

val amplification : entry array -> amplification

(** {1 Causal critical path} *)

type path_step = {
  ps_label : string;
  ps_time : float;
  ps_delta : float;  (** Seconds since the previous step. *)
}

val critical_path : entry array -> round:int -> path_step list
(** Milestone chain from a round's entry through its proposal, its
    first/median/last notarizations, the finalization certificate and the
    decision; empty if the round never appears. *)
