(** Peer-to-peer gossip sub-layer (paper §1 and [17]) — the dissemination
    substrate of Protocol ICC1.

    Large artifacts (block proposals) travel by advert → request → deliver
    over a bounded-degree peer graph, so each node transmits a block to at
    most [fanout] peers; small artifacts (shares, certificates) are flooded.
    The known/requested/store state is kept per party, so it remains
    logically distributed. *)

type artifact_id = string

type wire =
  | Advert of { id : artifact_id }
  | Request of { id : artifact_id }
  | Deliver of { id : artifact_id; msg : Icc_core.Message.t }
  | Push of { id : artifact_id; msg : Icc_core.Message.t }

type t

val build_peer_graph : Icc_sim.Rng.t -> n:int -> fanout:int -> int list array
(** A connected graph: ring plus [fanout - 2] random chords per node,
    symmetrised.  Index 0 is unused; exposed for testing. *)

val artifact_id_of : Icc_core.Message.t -> artifact_id

val create :
  engine:Icc_sim.Engine.t ->
  trace:Icc_sim.Trace.t ->
  n:int ->
  rng:Icc_sim.Rng.t ->
  delay_model:Icc_sim.Network.delay_model ->
  ?async_until:float ->
  ?fault:Icc_sim.Fault.t ->
  ?adversary:Icc_sim.Adversary.t ->
  fanout:int ->
  is_active:(int -> bool) ->
  deliver_up:(dst:int -> Icc_core.Message.t -> unit) ->
  unit ->
  t
(** The underlying network announces every wire message on [trace];
    gossip-layer publish/request/acquire events (with artifact ids) are
    emitted when a detail subscriber is present.  [async_until > 0] holds
    all traffic until that simulated time. *)

val publish : t -> src:int -> Icc_core.Message.t -> unit
(** The protocol's "broadcast": inject an artifact at [src].  The publisher
    delivers to itself immediately; duplicates are no-ops (which is exactly
    how gossip absorbs the protocol's echo re-broadcasts). *)

val inject : t -> src:int -> dst:int -> Icc_core.Message.t -> unit
(** Byzantine split delivery: hand an artifact directly to one party,
    outside the advert/request discipline; the receiver re-gossips.
    Resync control messages ({!Icc_core.Message.is_resync}) also travel
    through here and bypass the known/store dedup tables on both ends —
    they are point-to-point and intentionally repeatable. *)

val peers : t -> int -> int list
