(* Peer-to-peer gossip sub-layer (paper §1 and [17]), the dissemination
   substrate of Protocol ICC1.

   Artifacts travel over a bounded-degree peer graph:
     - large artifacts (block proposals) use advert -> request -> deliver,
       so each node transmits a block to at most [fanout] peers instead of
       the proposer unicasting it to all n-1 — this is what relieves the
       leader bottleneck;
     - small artifacts (signature shares, certificates, beacon shares) are
       flooded: pushed to all peers, re-pushed on first receipt.

   The known/requested sets are per party: one table per party id, so the
   state remains logically distributed and the per-hop dedup check hashes
   a short artifact id instead of allocating a (party, id) tuple key. *)

type artifact_id = string

type wire =
  | Advert of { id : artifact_id }
  | Request of { id : artifact_id }
  | Deliver of { id : artifact_id; msg : Icc_core.Message.t }
  | Push of { id : artifact_id; msg : Icc_core.Message.t }

let advert_wire_size = 48
let request_wire_size = 48
let header_wire_size = 16

type t = {
  n : int;
  fanout : int;
  engine : Icc_sim.Engine.t;
  trace : Icc_sim.Trace.t;
  net : wire Icc_sim.Network.t;
  peers : int list array; (* 1-based; peers.(0) unused *)
  known : (artifact_id, unit) Hashtbl.t array; (* per party; index 0 unused *)
  requested : (artifact_id, unit) Hashtbl.t array;
  store : (artifact_id, Icc_core.Message.t) Hashtbl.t array;
  is_active : int -> bool;
  deliver_up : dst:int -> Icc_core.Message.t -> unit;
}

(* A connected random graph: ring + [fanout - 2] random chords per node,
   symmetrised. *)
let build_peer_graph rng ~n ~fanout =
  let adj = Array.make (n + 1) [] in
  let add a b =
    if a <> b && not (List.mem b adj.(a)) then begin
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b)
    end
  in
  for i = 1 to n do
    add i ((i mod n) + 1)
  done;
  for i = 1 to n do
    for _ = 1 to max 0 (fanout - 2) do
      add i (1 + Icc_sim.Rng.int rng n)
    done
  done;
  adj

let artifact_id_of (msg : Icc_core.Message.t) =
  match msg with
  | Icc_core.Message.Proposal p ->
      let b = p.Icc_core.Message.p_block in
      Printf.sprintf "prop|%d|%s" b.Icc_core.Block.round
        (Icc_crypto.Sha256.to_hex (Icc_core.Block.hash b))
  | Icc_core.Message.Notarization_share s ->
      Printf.sprintf "ns|%d|%s|%d" s.Icc_core.Types.s_round
        (Icc_crypto.Sha256.to_hex s.Icc_core.Types.s_block_hash)
        s.Icc_core.Types.s_share.Icc_crypto.Multisig.signer
  | Icc_core.Message.Notarization c ->
      Printf.sprintf "nz|%d|%s" c.Icc_core.Types.c_round
        (Icc_crypto.Sha256.to_hex c.Icc_core.Types.c_block_hash)
  | Icc_core.Message.Finalization_share s ->
      Printf.sprintf "fs|%d|%s|%d" s.Icc_core.Types.s_round
        (Icc_crypto.Sha256.to_hex s.Icc_core.Types.s_block_hash)
        s.Icc_core.Types.s_share.Icc_crypto.Multisig.signer
  | Icc_core.Message.Finalization c ->
      Printf.sprintf "fz|%d|%s" c.Icc_core.Types.c_round
        (Icc_crypto.Sha256.to_hex c.Icc_core.Types.c_block_hash)
  | Icc_core.Message.Beacon_share { b_round; b_signer; _ } ->
      Printf.sprintf "bs|%d|%d" b_round b_signer
  | Icc_core.Message.Pool_summary { ps_party; ps_round; ps_kmax } ->
      Printf.sprintf "sum|%d|%d|%d" ps_party ps_round ps_kmax
  | Icc_core.Message.Pool_request { pr_party; pr_from; pr_upto } ->
      Printf.sprintf "req|%d|%d|%d" pr_party pr_from pr_upto

let is_large = function
  | Icc_core.Message.Proposal _ -> true
  | Icc_core.Message.Notarization_share _ | Icc_core.Message.Notarization _
  | Icc_core.Message.Finalization_share _ | Icc_core.Message.Finalization _
  | Icc_core.Message.Beacon_share _ | Icc_core.Message.Pool_summary _
  | Icc_core.Message.Pool_request _ ->
      false

let wire_size t = function
  | Advert _ -> advert_wire_size
  | Request _ -> request_wire_size
  | Deliver { msg; _ } | Push { msg; _ } ->
      header_wire_size + Icc_core.Message.wire_size ~n:t.n msg

let wire_kind = function
  | Advert _ -> "gossip-advert"
  | Request _ -> "gossip-request"
  | Deliver _ -> "gossip-deliver"
  | Push _ -> "gossip-push"

let send t ~src ~dst w =
  Icc_sim.Network.unicast t.net ~src ~dst ~size:(wire_size t w)
    ~kind:(wire_kind w) w

let mark_known t party id = Hashtbl.replace t.known.(party) id ()
let knows t party id = Hashtbl.mem t.known.(party) id

(* Gossip-layer events carry the artifact id; they are detail-level, so an
   unobserved run never reaches the emit. *)
let emit_detail t ev =
  if Icc_sim.Trace.detailed t.trace then
    Icc_sim.Trace.emit t.trace ~time:(Icc_sim.Engine.now t.engine) (ev ())

(* First acquisition of an artifact at [party]: hand it to the protocol
   layer and propagate. *)
let acquire t ~party ~from_peer id msg =
  if not (knows t party id) then begin
    mark_known t party id;
    Hashtbl.replace t.store.(party) id msg;
    emit_detail t (fun () ->
        Icc_sim.Trace.Gossip_acquire { party; peer = from_peer; artifact = id });
    t.deliver_up ~dst:party msg;
    if t.is_active party then
      List.iter
        (fun peer ->
          if peer <> from_peer then
            if is_large msg then send t ~src:party ~dst:peer (Advert { id })
            else send t ~src:party ~dst:peer (Push { id; msg }))
        t.peers.(party)
  end

let on_wire t ~dst ~src w =
  Icc_obs.Profile.span "gossip.relay" @@ fun () ->
  if t.is_active dst then
    match w with
    | Advert { id } ->
        if (not (knows t dst id)) && not (Hashtbl.mem t.requested.(dst) id)
        then begin
          Hashtbl.replace t.requested.(dst) id ();
          emit_detail t (fun () ->
              Icc_sim.Trace.Gossip_request { party = dst; peer = src; artifact = id });
          send t ~src:dst ~dst:src (Request { id })
        end
    | Request { id } -> (
        match Hashtbl.find_opt t.store.(dst) id with
        | Some msg -> send t ~src:dst ~dst:src (Deliver { id; msg })
        | None -> ())
    | Deliver { id; msg } | Push { id; msg } ->
        (* Resync control is point-to-point and intentionally repeatable:
           it must never enter the known/store dedup tables, or repeated
           identical summaries would be swallowed. *)
        if Icc_core.Message.is_resync msg then t.deliver_up ~dst msg
        else acquire t ~party:dst ~from_peer:src id msg

let create ~engine ~trace ~n ~rng ~delay_model ?(async_until = 0.) ?fault
    ?adversary ~fanout ~is_active ~deliver_up () =
  let net =
    Icc_sim.Transport.network ~engine ~n ~trace ~delay_model ~async_until
      ?fault ?adversary ()
  in
  let t =
    {
      n;
      fanout;
      engine;
      trace;
      net;
      peers = build_peer_graph rng ~n ~fanout;
      known = Array.init (n + 1) (fun _ -> Hashtbl.create 64);
      requested = Array.init (n + 1) (fun _ -> Hashtbl.create 64);
      store = Array.init (n + 1) (fun _ -> Hashtbl.create 64);
      is_active;
      deliver_up;
    }
  in
  Icc_sim.Network.set_handler net (fun ~dst ~src w -> on_wire t ~dst ~src w);
  t

(* The protocol's "broadcast": publish into the gossip network.  The
   publisher delivers to itself immediately (its pool holds its own
   messages). *)
let publish t ~src msg =
  Icc_obs.Profile.span "gossip.publish" @@ fun () ->
  let id = artifact_id_of msg in
  if not (knows t src id) then begin
    mark_known t src id;
    Hashtbl.replace t.store.(src) id msg;
    emit_detail t (fun () ->
        Icc_sim.Trace.Gossip_publish { party = src; artifact = id });
    t.deliver_up ~dst:src msg;
    List.iter
      (fun peer ->
        if is_large msg then send t ~src ~dst:peer (Advert { id })
        else send t ~src ~dst:peer (Push { id; msg }))
      t.peers.(src)
  end

(* Byzantine split delivery: hand an artifact directly to one party, outside
   the advert/request discipline.  The receiver re-gossips as usual. *)
let inject t ~src ~dst msg =
  let id = artifact_id_of msg in
  if Icc_core.Message.is_resync msg then
    (* Point-to-point resync control: skip the dedup tables on the send
       side too (see on_wire) so every retransmission actually travels. *)
    send t ~src ~dst (Deliver { id; msg })
  else if dst = src then publish t ~src msg
  else begin
    (* sender remembers its own artifact *)
    mark_known t src id;
    Hashtbl.replace t.store.(src) id msg;
    send t ~src ~dst (Deliver { id; msg })
  end

let peers t party = t.peers.(party)
