(* Protocol ICC1: the ICC0 round logic (unchanged — the paper notes the
   protocol logic "can be easily understood independent of this sub-layer")
   running over the peer-to-peer gossip sub-layer of {!Gossip}.

   The proposer no longer unicasts its block to all n-1 parties; blocks
   spread by advert/request over the peer graph, trading one-hop latency
   for a bounded per-node dissemination cost. *)

let default_fanout = 4

let transport ?(fanout = default_fanout) () : Icc_core.Runner.transport =
 fun ctx ->
  let gossip =
    Gossip.create ~engine:ctx.Icc_core.Runner.tr_engine
      ~trace:ctx.Icc_core.Runner.tr_trace ~n:ctx.Icc_core.Runner.tr_n
      ~rng:ctx.Icc_core.Runner.tr_rng
      ~delay_model:ctx.Icc_core.Runner.tr_delay_model
      ~async_until:ctx.Icc_core.Runner.tr_async_until
      ?fault:ctx.Icc_core.Runner.tr_fault
      ?adversary:ctx.Icc_core.Runner.tr_adversary ~fanout
      ~is_active:ctx.Icc_core.Runner.tr_is_active
      ~deliver_up:ctx.Icc_core.Runner.tr_deliver ()
  in
  {
    Icc_core.Runner.tx_broadcast = (fun ~src msg -> Gossip.publish gossip ~src msg);
    tx_unicast = (fun ~src ~dst msg -> Gossip.inject gossip ~src ~dst msg);
  }

(* Run an ICC1 scenario: an ICC0 scenario whose transport is gossip.  The
   delay bound should account for multi-hop dissemination. *)
let run ?(fanout = default_fanout) (scenario : Icc_core.Runner.scenario) =
  Icc_core.Runner.run
    { scenario with Icc_core.Runner.transport = Some (transport ~fanout ()) }
