(* OCaml >= 5.0 implementation of Dls: real domain-local storage.  See
   dls.mli; selected by the dune [enabled_if] copy rule. *)

type 'a key = 'a Domain.DLS.key

let new_key init = Domain.DLS.new_key init
let get k = Domain.DLS.get k
let set k v = Domain.DLS.set k v
