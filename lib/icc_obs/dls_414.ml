(* OCaml 4.14 implementation of Dls: a single runtime domain exists, so
   "domain-local" is just a lazily-initialised global cell.  See dls.mli;
   selected by the dune [enabled_if] copy rule. *)

type 'a key = { init : unit -> 'a; mutable cell : 'a option }

let new_key init = { init; cell = None }

let get k =
  match k.cell with
  | Some v -> v
  | None ->
      let v = k.init () in
      k.cell <- Some v;
      v

let set k v = k.cell <- Some v
