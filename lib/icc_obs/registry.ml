(* Process-global metrics registry (see registry.mli for the contract).

   Everything here is plain mutable state behind O(1) update operations:
   a counter bump is one field store, a histogram observation is one
   bounded scan over ~36 bucket bounds plus three stores.  All ordering-
   sensitive output (snapshots, exposition) is sorted by name with keyed
   comparators, so nothing about Hashtbl bucket order ever escapes. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_bounds : float array; (* upper bounds, ascending *)
  h_counts : int array; (* length = length h_bounds + 1; last = overflow *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric = M_counter of counter | M_gauge of gauge | M_histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (M_counter c) -> c
  | Some (M_gauge _ | M_histogram _) ->
      invalid_arg ("Registry.counter: " ^ name ^ " registered as another kind")
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.add registry name (M_counter c);
      c

let inc c = c.c_value <- c.c_value + 1
let add c k = c.c_value <- c.c_value + k
let value c = c.c_value

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (M_gauge g) -> g
  | Some (M_counter _ | M_histogram _) ->
      invalid_arg ("Registry.gauge: " ^ name ^ " registered as another kind")
  | None ->
      let g = { g_name = name; g_value = 0. } in
      Hashtbl.add registry name (M_gauge g);
      g

let set_gauge g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram ?(lo = 1e-6) ?(ratio = 2.) ?(buckets = 36) name =
  match Hashtbl.find_opt registry name with
  | Some (M_histogram h) -> h
  | Some (M_counter _ | M_gauge _) ->
      invalid_arg
        ("Registry.histogram: " ^ name ^ " registered as another kind")
  | None ->
      if not (lo > 0. && ratio > 1. && buckets >= 1) then
        invalid_arg "Registry.histogram: need lo > 0, ratio > 1, buckets >= 1";
      let h_bounds = Array.init buckets (fun i -> lo *. (ratio ** float_of_int i)) in
      let h =
        {
          h_name = name;
          h_bounds;
          h_counts = Array.make (buckets + 1) 0;
          h_count = 0;
          h_sum = 0.;
          h_min = nan;
          h_max = nan;
        }
      in
      Hashtbl.add registry name (M_histogram h);
      h

(* Smallest bucket whose upper bound covers [v]; the scan is over ~36
   floats, and observations overwhelmingly land in the first few buckets
   for sub-millisecond spans. *)
let bucket_index h v =
  let n = Array.length h.h_bounds in
  let i = ref 0 in
  while !i < n && v > h.h_bounds.(!i) do incr i done;
  !i

let observe h v =
  h.h_counts.(bucket_index h v) <- h.h_counts.(bucket_index h v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if Float.is_nan h.h_min || v < h.h_min then h.h_min <- v;
  if Float.is_nan h.h_max || v > h.h_max then h.h_max <- v

let bucket_bounds h = Array.copy h.h_bounds

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
  hs_buckets : (float * int) list;
}

(* Nearest-rank percentile over the bucketed distribution: walk buckets
   until the cumulative count reaches the rank, report that bucket's upper
   bound clamped to the exact observed maximum (so a one-sample histogram
   reports the sample, not its bucket ceiling). *)
let hist_percentile h p =
  if h.h_count = 0 then nan
  else begin
    let rank =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int h.h_count)))
    in
    let n = Array.length h.h_bounds in
    let cum = ref 0 and i = ref 0 and result = ref h.h_max in
    (try
       while !i <= n do
         cum := !cum + h.h_counts.(!i);
         if !cum >= rank then begin
           result := (if !i < n then Float.min h.h_bounds.(!i) h.h_max else h.h_max);
           raise_notrace Exit
         end;
         incr i
       done
     with Exit -> ());
    !result
  end

let hist_stats h =
  let buckets = ref [] in
  let n = Array.length h.h_bounds in
  for i = n downto 0 do
    if h.h_counts.(i) > 0 then
      let bound = if i < n then h.h_bounds.(i) else infinity in
      buckets := (bound, h.h_counts.(i)) :: !buckets
  done;
  {
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_min = h.h_min;
    hs_max = h.h_max;
    hs_p50 = hist_percentile h 50.;
    hs_p95 = hist_percentile h 95.;
    hs_p99 = hist_percentile h 99.;
    hs_buckets = !buckets;
  }

(* --- registry-wide ------------------------------------------------------ *)

let all_sorted () =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () =
  List.filter_map
    (fun (name, m) ->
      match m with
      | M_counter c -> Some (name, c.c_value)
      | M_gauge _ | M_histogram _ -> None)
    (all_sorted ())

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

let snapshot () =
  List.map
    (fun (name, m) ->
      match m with
      | M_counter c -> (name, Counter c.c_value)
      | M_gauge g -> (name, Gauge g.g_value)
      | M_histogram h -> (name, Histogram (hist_stats h)))
    (all_sorted ())

let reset () =
  (Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> c.c_value <- 0
      | M_gauge g -> g.g_value <- 0.
      | M_histogram h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_count <- 0;
          h.h_sum <- 0.;
          h.h_min <- nan;
          h.h_max <- nan)
    registry
  [@icc.allow
    "d2-hashtbl-order: zeroing every metric in place — order-insensitive \
     and no iteration order escapes"])

(* --- Prometheus text exposition ----------------------------------------- *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let to_prometheus () =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, m) ->
      let pname = sanitize name in
      match m with
      | M_counter c ->
          line "# TYPE %s counter" pname;
          line "%s %d" pname c.c_value
      | M_gauge g ->
          line "# TYPE %s gauge" pname;
          line "%s %g" pname g.g_value
      | M_histogram h ->
          line "# TYPE %s histogram" pname;
          let cum = ref 0 in
          Array.iteri
            (fun i bound ->
              cum := !cum + h.h_counts.(i);
              line "%s_bucket{le=\"%g\"} %d" pname bound !cum)
            h.h_bounds;
          line "%s_bucket{le=\"+Inf\"} %d" pname h.h_count;
          line "%s_sum %g" pname h.h_sum;
          line "%s_count %d" pname h.h_count)
    (all_sorted ());
  Buffer.contents b
