(* Process-global metrics registry (see registry.mli for the contract).

   Counters and gauges are [Atomic.t]-backed cells: a bump is one atomic
   fetch-and-add, so the hot instrumentation paths (crypto verifies, pool
   admissions) stay race-free when executed from several domains at once
   — the precondition for the ROADMAP item 3 parallel verify pool, and
   what the d6-domain-escape lint certifies (DESIGN.md §3.9).  [Atomic]
   is stdlib since 4.12, so the 4.14 leg of the CI matrix needs no shim.

   Histogram observation remains plain mutable state: observations come
   only from the self-profiler, which keeps its mutable state domain-
   local and serialises aggregation behind a lock (profile.ml), so a
   histogram is only ever touched under that discipline.

   Registration mutates the global name table and is serialised by
   [registry_lock]; it is idempotent, so load-time registration races
   from concurrently-initialised domains resolve to the same metric.
   All ordering-sensitive output (snapshots, exposition) is sorted by
   name with keyed comparators, so nothing about Hashtbl bucket order
   ever escapes. *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

type histogram = {
  h_name : string;
  h_bounds : float array; (* upper bounds, ascending *)
  h_counts : int array; (* length = length h_bounds + 1; last = overflow *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric = M_counter of counter | M_gauge of gauge | M_histogram of histogram

let registry_lock = Lock.create ()

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
[@@icc.domain_safe
  "every lookup/insert goes through [register] under registry_lock; \
   metric cells handed out are Atomic-backed"]

(* Find-or-insert under the lock; [make] runs inside the critical
   section so two domains registering the same name get the same cell. *)
let register name ~make ~cast ~kind =
  Lock.with_lock registry_lock @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m -> (
      match cast m with
      | Some v -> v
      | None ->
          invalid_arg
            ("Registry." ^ kind ^ ": " ^ name ^ " registered as another kind"))
  | None ->
      let m, v = make () in
      Hashtbl.add registry name m;
      v

let counter name =
  register name ~kind:"counter"
    ~cast:(function M_counter c -> Some c | M_gauge _ | M_histogram _ -> None)
    ~make:(fun () ->
      let c = { c_name = name; c_value = Atomic.make 0 } in
      (M_counter c, c))

let inc c = ignore (Atomic.fetch_and_add c.c_value 1)
let add c k = ignore (Atomic.fetch_and_add c.c_value k)
let value c = Atomic.get c.c_value

let gauge name =
  register name ~kind:"gauge"
    ~cast:(function M_gauge g -> Some g | M_counter _ | M_histogram _ -> None)
    ~make:(fun () ->
      let g = { g_name = name; g_value = Atomic.make 0. } in
      (M_gauge g, g))

let set_gauge g v = Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

let histogram ?(lo = 1e-6) ?(ratio = 2.) ?(buckets = 36) name =
  if not (lo > 0. && ratio > 1. && buckets >= 1) then
    invalid_arg "Registry.histogram: need lo > 0, ratio > 1, buckets >= 1";
  register name ~kind:"histogram"
    ~cast:(function
      | M_histogram h -> Some h | M_counter _ | M_gauge _ -> None)
    ~make:(fun () ->
      let h_bounds =
        Array.init buckets (fun i -> lo *. (ratio ** float_of_int i))
      in
      let h =
        {
          h_name = name;
          h_bounds;
          h_counts = Array.make (buckets + 1) 0;
          h_count = 0;
          h_sum = 0.;
          h_min = nan;
          h_max = nan;
        }
      in
      (M_histogram h, h))

(* Smallest bucket whose upper bound covers [v]; the scan is over ~36
   floats, and observations overwhelmingly land in the first few buckets
   for sub-millisecond spans. *)
let bucket_index h v =
  let n = Array.length h.h_bounds in
  let i = ref 0 in
  while !i < n && v > h.h_bounds.(!i) do incr i done;
  !i

let observe h v =
  h.h_counts.(bucket_index h v) <- h.h_counts.(bucket_index h v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if Float.is_nan h.h_min || v < h.h_min then h.h_min <- v;
  if Float.is_nan h.h_max || v > h.h_max then h.h_max <- v

let bucket_bounds h = Array.copy h.h_bounds

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
  hs_buckets : (float * int) list;
}

(* Nearest-rank percentile over the bucketed distribution: walk buckets
   until the cumulative count reaches the rank, report that bucket's upper
   bound clamped to the exact observed maximum (so a one-sample histogram
   reports the sample, not its bucket ceiling). *)
let hist_percentile h p =
  if h.h_count = 0 then nan
  else begin
    let rank =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int h.h_count)))
    in
    let n = Array.length h.h_bounds in
    let cum = ref 0 and i = ref 0 and result = ref h.h_max in
    (try
       while !i <= n do
         cum := !cum + h.h_counts.(!i);
         if !cum >= rank then begin
           result := (if !i < n then Float.min h.h_bounds.(!i) h.h_max else h.h_max);
           raise_notrace Exit
         end;
         incr i
       done
     with Exit -> ());
    !result
  end

let hist_stats h =
  let buckets = ref [] in
  let n = Array.length h.h_bounds in
  for i = n downto 0 do
    if h.h_counts.(i) > 0 then
      let bound = if i < n then h.h_bounds.(i) else infinity in
      buckets := (bound, h.h_counts.(i)) :: !buckets
  done;
  {
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_min = h.h_min;
    hs_max = h.h_max;
    hs_p50 = hist_percentile h 50.;
    hs_p95 = hist_percentile h 95.;
    hs_p99 = hist_percentile h 99.;
    hs_buckets = !buckets;
  }

(* --- registry-wide ------------------------------------------------------ *)

let all_sorted () =
  Lock.with_lock registry_lock (fun () ->
      (Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
       [@icc.allow
         "d2-hashtbl-order: unordered (name, metric) pairs collected under \
          the lock feed the keyed List.sort below"]))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () =
  List.filter_map
    (fun (name, m) ->
      match m with
      | M_counter c -> Some (name, Atomic.get c.c_value)
      | M_gauge _ | M_histogram _ -> None)
    (all_sorted ())

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

let snapshot () =
  List.map
    (fun (name, m) ->
      match m with
      | M_counter c -> (name, Counter (Atomic.get c.c_value))
      | M_gauge g -> (name, Gauge (Atomic.get g.g_value))
      | M_histogram h -> (name, Histogram (hist_stats h)))
    (all_sorted ())

let reset () =
  List.iter
    (fun (_, m) ->
      match m with
      | M_counter c -> Atomic.set c.c_value 0
      | M_gauge g -> Atomic.set g.g_value 0.
      | M_histogram h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_count <- 0;
          h.h_sum <- 0.;
          h.h_min <- nan;
          h.h_max <- nan)
    (all_sorted ())

(* --- Prometheus text exposition ----------------------------------------- *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let to_prometheus () =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, m) ->
      let pname = sanitize name in
      match m with
      | M_counter c ->
          line "# TYPE %s counter" pname;
          line "%s %d" pname (Atomic.get c.c_value)
      | M_gauge g ->
          line "# TYPE %s gauge" pname;
          line "%s %g" pname (Atomic.get g.g_value)
      | M_histogram h ->
          line "# TYPE %s histogram" pname;
          let cum = ref 0 in
          Array.iteri
            (fun i bound ->
              cum := !cum + h.h_counts.(i);
              line "%s_bucket{le=\"%g\"} %d" pname bound !cum)
            h.h_bounds;
          line "%s_bucket{le=\"+Inf\"} %d" pname h.h_count;
          line "%s_sum %g" pname h.h_sum;
          line "%s_count %d" pname h.h_count)
    (all_sorted ());
  Buffer.contents b
