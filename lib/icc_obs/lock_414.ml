(* OCaml 4.14 implementation of Lock: the runtime is single-domain and
   these libraries spawn no threads, so the lock is a no-op token.  See
   lock.mli; selected by the dune [enabled_if] copy rule. *)

type t = unit

let create () = ()
let with_lock () f = f ()
