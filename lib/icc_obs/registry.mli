(** Process-global metrics registry: named monotonic counters, gauges and
    log-bucketed histograms, with stable snapshots and a Prometheus-style
    text exposition.

    The registry sits below every other library (its only dependency is
    [unix], pulled in by {!Profile}), so the crypto, simulator and protocol
    layers can all register metrics without dependency cycles.  Metrics are
    write-only from inside [lib/]: nothing in the protocol reads them back,
    so they cannot influence scheduling or trace bytes (the same contract
    the old [Icc_crypto.Counters] had, now enforced in one place).

    Registration is idempotent: asking for an existing name of the same
    metric kind returns the already-registered metric, so modules can
    declare their metrics at load time without coordination.  Registering
    an existing name as a *different* kind raises [Invalid_argument].

    Domain safety (DESIGN.md §3.9): counters and gauges are [Atomic.t]
    cells, registration is serialised behind a process lock, and the
    name table never leaks iteration order — so the registry may be
    updated concurrently from a [Domain.spawn] worker pool.  Histograms
    keep plain mutable buckets; they are only written by the
    self-profiler, whose aggregation is itself serialised. *)

type counter
type gauge
type histogram

(** {1 Counters} *)

val counter : string -> counter
(** Register (or fetch) the monotonic counter [name]. *)

val inc : counter -> unit
(** O(1) increment — one [Atomic.fetch_and_add], safe on hot paths and
    race-free when bumped from several domains at once. *)

val add : counter -> int -> unit
val value : counter -> int

(** {1 Gauges} *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

val histogram : ?lo:float -> ?ratio:float -> ?buckets:int -> string -> histogram
(** Register a log-bucketed histogram: bucket [i] covers
    [(lo * ratio^(i-1), lo * ratio^i]], with a first bucket [(-inf, lo]]
    and an implicit overflow bucket above the last bound.  Defaults:
    [lo = 1e-6], [ratio = 2.], [buckets = 36] — 1 µs to ~68 s when
    observing seconds.  The geometry arguments matter only on first
    registration (idempotent fetches ignore them). *)

val observe : histogram -> float -> unit

val bucket_bounds : histogram -> float array
(** The upper bounds, ascending; length = [buckets]. *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;  (** [nan] when empty *)
  hs_max : float;  (** [nan] when empty *)
  hs_p50 : float;  (** [nan] when empty *)
  hs_p95 : float;
  hs_p99 : float;
  hs_buckets : (float * int) list;
      (** (upper bound, count) per non-empty bucket, ascending; the
          overflow bucket reports [infinity] as its bound. *)
}

val hist_stats : histogram -> hist_snapshot
(** Percentiles are nearest-rank over the bucket histogram: the reported
    quantile is the upper bound of the bucket holding that rank, clamped
    to the exact observed maximum. *)

(** {1 Registry-wide operations} *)

val counters : unit -> (string * int) list
(** All registered counters with current values, sorted by name. *)

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

val snapshot : unit -> (string * value) list
(** Every registered metric, sorted by name. *)

val reset : unit -> unit
(** Zero every counter and gauge and clear every histogram (metrics stay
    registered).  Benchmark drivers call this between measured runs. *)

val to_prometheus : unit -> string
(** Prometheus text exposition (metric names sanitised to
    [\[a-zA-Z0-9_\]]): counters and gauges as single samples, histograms
    as cumulative [_bucket{le="..."}] series plus [_sum] and [_count] —
    ready for a real-process backend to serve over HTTP. *)
