(* OCaml >= 5.0 implementation of Lock over the stdlib Mutex.  See
   lock.mli; selected by the dune [enabled_if] copy rule. *)

type t = Mutex.t

let create () = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
      Mutex.unlock m;
      v
  | exception e ->
      Mutex.unlock m;
      raise e
