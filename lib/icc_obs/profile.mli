(** Span-based self-profiler: nestable named spans with wall-clock timing,
    per-phase total/self aggregation, per-party and per-round attribution,
    and folded-stack (flamegraph-compatible) output.

    The profiler is a speed toggle in the §3.5 style — OFF by default and
    forbidden from changing behaviour.  When disabled, {!span} is one
    atomic load and a branch before calling the thunk: no clock is read,
    nothing is recorded, and traced runs stay byte-identical to
    unprofiled ones.

    Domain safety (DESIGN.md §3.9): the span stack and attribution
    context are domain-local, the toggle is atomic, and aggregation is
    serialised behind a lock, so spans may run concurrently in a
    [Domain.spawn] worker pool; each domain profiles its own call tree
    and the tables merge race-free.
    When enabled, a span costs two [Unix.gettimeofday] reads plus O(1)
    hashtable updates at exit.  Either way the profiler writes no trace
    events itself and feeds nothing back into the simulation, so enabling
    it never perturbs scheduling (the runner asserts this in CI by
    stripping [prof-*] lines and comparing traces byte-for-byte).

    Span names are dot-separated [layer.operation] labels
    ([crypto.schnorr_verify], [pool.admit], [engine.dispatch], ...); the
    nesting stack is joined with [";"] into folded-stack paths
    ([engine.dispatch;party.step;pool.admit;crypto.schnorr_verify]) that
    flamegraph tooling consumes directly.

    Attribution context: the protocol layer calls {!set_party}/{!set_round}
    as it switches between parties and rounds; a span's self-time is
    charged to the context current when it *exits*.  The context is
    best-effort (an engine-level span spanning a context switch lands on
    the newer context) — right for heatmaps, not for accounting audits. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop all recorded data and the current span stack (the enabled flag is
    left as-is). *)

val now : unit -> float
(** The profiler's wall clock, in seconds.  Exposed so front ends measure
    wall time with the same clock the spans use. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside a span.  Exceptions propagate and
    still close the span. *)

val set_party : int -> unit
val set_round : int -> unit

type stat = {
  sp_name : string;
  sp_count : int;
  sp_total_s : float;
      (** Wall-clock including children.  Recursive re-entry of the same
          span name is counted at every level, so totals across names can
          exceed wall time; self-times never double-count. *)
  sp_self_s : float;  (** Wall-clock excluding child spans. *)
}

val stats : unit -> stat list
(** Per-span-name aggregation, sorted by name. *)

val folded : unit -> (string * int * float) list
(** [(path, count, self seconds)] per distinct stack path, sorted by
    path — the flamegraph view. *)

val folded_lines : unit -> string
(** The folded list in Brendan Gregg's folded-stack format, one
    ["path self-microseconds"] line per path — feed to
    [flamegraph.pl] / [inferno-flamegraph]. *)

val by_round : unit -> (int * (string * float) list) list
(** Self-seconds per (round, span name), rounds ascending, names sorted
    within each round.  Round 0 collects work outside any round context
    (setup, keygen). *)

val by_party : unit -> (int * (string * float) list) list
(** Same, keyed by the party context; party 0 is outside-any-party work. *)
