(** Domain-local storage, portable across the CI compiler matrix.

    On OCaml 5.x this is a thin wrapper over [Domain.DLS]: each domain
    (including the initial one) gets its own slot, initialised on first
    access, so state kept behind a [Dls.key] can never be shared between
    domains — the domain-safety linter (DESIGN.md §3.9) classifies such
    bindings as confined.  On 4.14, where only one domain can exist, the
    key degrades to a lazily-initialised process-global cell with
    identical single-domain semantics.

    The two implementations are selected at build time by dune
    [enabled_if] copy rules ([dls_50.ml] / [dls_414.ml]); behaviour on
    the initial domain is the same everywhere, which is what keeps the
    golden n=16 traces byte-identical across the matrix. *)

type 'a key

val new_key : (unit -> 'a) -> 'a key
(** [new_key init] registers a fresh slot; [init] runs once per domain,
    on that domain's first [get]. *)

val get : 'a key -> 'a
(** The calling domain's value, initialising it if needed. *)

val set : 'a key -> 'a -> unit
(** Replace the calling domain's value. *)
