(** A mutual-exclusion lock, portable across the CI compiler matrix.

    On OCaml 5.x this wraps the stdlib [Mutex] (part of the standard
    library since 5.0), making cross-domain critical sections real.  On
    4.14 — a single-domain runtime where these libraries never spawn
    threads — it is a no-op token with the same API, so callers pay
    nothing and need no conditional code.

    Shared mutable state whose every access goes through [with_lock] is
    classified as confined by the domain-safety linter via an
    [@icc.domain_safe] annotation naming the lock (DESIGN.md §3.9). *)

type t

val create : unit -> t

val with_lock : t -> (unit -> 'a) -> 'a
(** Run the thunk holding the lock; always releases, also on raise. *)
