(* OCaml 4.14 implementation of Dpool: a single runtime domain exists,
   so the "pool" is sequential [Array.map] with the same index-order
   result and first-failure exception semantics.  See dpool.mli;
   selected by the dune [enabled_if] copy rule. *)

let available = false

let target = ref 1
[@@icc.domain_safe "4.14 build: the runtime is single-domain"]

let set_workers n = target := max 1 (min 64 n)
let workers () = !target
let map f arr = Array.map f arr
let shutdown () = ()
