(** A persistent pool of worker domains with deterministic join order,
    portable across the CI compiler matrix.

    On OCaml 5.x [map f arr] fans the element evaluations out over a
    lazily-spawned pool of worker domains (the calling domain
    participates too), then joins the results back **in index order** —
    the output array is exactly what sequential [Array.map f arr] would
    produce, regardless of interleaving.  Exceptions raised by [f] are
    captured per index and the lowest-index one is re-raised after the
    job drains, matching the sequential first-failure.  On 4.14 (or
    with the worker count at 1) the call degrades to sequential
    [Array.map] with identical semantics.

    Determinism contract: callers must pass an [f] whose per-element
    result depends only on that element (verification predicates do).
    Under that contract the toggle that routes work through this pool
    is trace-preserving in the §3.5 sense — only wall-clock changes.

    Nested use from inside a worker runs sequentially (no deadlock, no
    pool-in-pool fan-out).  Concurrent coordinators serialise on an
    internal lock; the pool shuts its workers down via [at_exit].

    The two implementations are selected at build time by dune
    [enabled_if] copy rules ([dpool_50.ml] / [dpool_414.ml]), following
    the [Dls]/[Lock] shim pattern. *)

val available : bool
(** [true] iff real worker domains can be spawned (OCaml 5.x build). *)

val set_workers : int -> unit
(** Target total parallelism (coordinator included), clamped to
    [\[1; 64\]].  Workers are spawned lazily on the next [map]; on 4.14
    this records the value but everything stays sequential. *)

val workers : unit -> int
(** Current target parallelism (>= 1). *)

val map : ('a -> 'b) -> 'a array -> 'b array
(** Deterministic parallel map; see the module description. *)

val shutdown : unit -> unit
(** Join all worker domains.  The pool respawns them lazily on the next
    [map], so this is safe to call between bursts of parallel work —
    and worth calling: an *idle* worker domain still participates (via
    its backup thread) in every stop-the-world minor collection, taxing
    allocation-heavy sequential phases by 2-4x.  Runs automatically via
    [at_exit]; a no-op on 4.14 builds. *)
