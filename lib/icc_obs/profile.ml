(* Span-based self-profiler (contract in profile.mli).

   Hot-path discipline: with the toggle off, [span] costs one atomic
   load and a branch.  With it on, entry reads the clock and pushes a
   reusable stack frame (the frame array is grown geometrically and
   never shrunk, so steady-state entry allocates only the folded-path
   string); exit reads the clock and folds the frame into the
   aggregation tables.

   Domain safety (DESIGN.md §3.9): the span stack and the round/party
   attribution context are domain-local ([Dls] — every domain profiles
   its own call tree), the enable toggle is an [Atomic.t], and the
   four aggregation tables are only touched under [profile_lock], so a
   parallel verify pool can run with profiling on without racing the
   main domain.  On 4.14 the shims degrade to plain cells and no-op
   locks with identical single-domain behaviour.

   All query output is sorted with keyed comparators — Hashtbl iteration
   order never escapes. *)

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b

let now () =
  (Unix.gettimeofday ()
  [@icc.allow
    "d3-banned-fn: the profiler's whole purpose is reading host wall-clock; \
     it is default-off, write-only, and feeds nothing back into the \
     simulation"])

(* --- domain-local span stack -------------------------------------------- *)

type frame = {
  mutable fr_name : string;
  mutable fr_path : string; (* ";"-joined stack including this frame *)
  mutable fr_start : float;
  mutable fr_child : float; (* accumulated child wall-clock *)
}

let fresh_frame () = { fr_name = ""; fr_path = ""; fr_start = 0.; fr_child = 0. }

(* Per-domain profiler state: the span stack plus the round/party
   attribution context of whatever that domain is executing. *)
type pstate = {
  mutable frames : frame array;
  mutable depth : int;
  mutable round : int;
  mutable party : int;
}

let pstate_key : pstate Dls.key =
  Dls.new_key (fun () ->
      {
        frames = Array.init 64 (fun _ -> fresh_frame ());
        depth = 0;
        round = 0;
        party = 0;
      })

let grow st =
  let old = st.frames in
  let n = Array.length old in
  st.frames <-
    Array.init (2 * n) (fun i -> if i < n then old.(i) else fresh_frame ())

let set_round r = (Dls.get pstate_key).round <- r
let set_party p = (Dls.get pstate_key).party <- p

(* --- aggregation (shared across domains, guarded by profile_lock) ------- *)

type agg = { mutable a_count : int; mutable a_total : float; mutable a_self : float }
type cell = { mutable cl_count : int; mutable cl_self : float }

let profile_lock = Lock.create ()

let agg_tbl : (string, agg) Hashtbl.t = Hashtbl.create 64
[@@icc.domain_safe "written only inside [record]/[reset] under profile_lock"]

let folded_tbl : (string, cell) Hashtbl.t = Hashtbl.create 256
[@@icc.domain_safe "written only inside [record]/[reset] under profile_lock"]

(* context -> (span name -> self seconds); two-level so the leaf tables
   stay small and keyed by the same interned name strings. *)
let round_tbl : (int, (string, float ref) Hashtbl.t) Hashtbl.t = Hashtbl.create 64
[@@icc.domain_safe "written only inside [record]/[reset] under profile_lock"]

let party_tbl : (int, (string, float ref) Hashtbl.t) Hashtbl.t = Hashtbl.create 64
[@@icc.domain_safe "written only inside [record]/[reset] under profile_lock"]

let reset () =
  Lock.with_lock profile_lock (fun () ->
      Hashtbl.reset agg_tbl;
      Hashtbl.reset folded_tbl;
      Hashtbl.reset round_tbl;
      Hashtbl.reset party_tbl);
  let st = Dls.get pstate_key in
  st.round <- 0;
  st.party <- 0;
  st.depth <- 0

let charge tbl key name self =
  let leaf =
    match Hashtbl.find_opt tbl key with
    | Some leaf -> leaf
    | None ->
        let leaf = Hashtbl.create 16 in
        Hashtbl.add tbl key leaf;
        leaf
  in
  match Hashtbl.find_opt leaf name with
  | Some r -> r := !r +. self
  | None -> Hashtbl.add leaf name (ref self)

let record st fr total self =
  Lock.with_lock profile_lock @@ fun () ->
  (match Hashtbl.find_opt agg_tbl fr.fr_name with
  | Some a ->
      a.a_count <- a.a_count + 1;
      a.a_total <- a.a_total +. total;
      a.a_self <- a.a_self +. self
  | None ->
      Hashtbl.add agg_tbl fr.fr_name
        { a_count = 1; a_total = total; a_self = self });
  (match Hashtbl.find_opt folded_tbl fr.fr_path with
  | Some c ->
      c.cl_count <- c.cl_count + 1;
      c.cl_self <- c.cl_self +. self
  | None ->
      Hashtbl.add folded_tbl fr.fr_path { cl_count = 1; cl_self = self });
  charge round_tbl st.round fr.fr_name self;
  charge party_tbl st.party fr.fr_name self

let enter st name =
  let d = st.depth in
  if d >= Array.length st.frames then grow st;
  let fr = st.frames.(d) in
  fr.fr_name <- name;
  fr.fr_path <-
    (if d = 0 then name else st.frames.(d - 1).fr_path ^ ";" ^ name);
  fr.fr_start <- now ();
  fr.fr_child <- 0.;
  st.depth <- d + 1

let leave st =
  let t = now () in
  let d = st.depth - 1 in
  st.depth <- d;
  let fr = st.frames.(d) in
  let total = t -. fr.fr_start in
  let self = Float.max 0. (total -. fr.fr_child) in
  if d > 0 then begin
    let parent = st.frames.(d - 1) in
    parent.fr_child <- parent.fr_child +. total
  end;
  record st fr total self

let span name f =
  if not (Atomic.get on) then f ()
  else begin
    let st = Dls.get pstate_key in
    enter st name;
    match f () with
    | v ->
        leave st;
        v
    | exception e ->
        leave st;
        raise e
  end

(* --- queries ------------------------------------------------------------ *)

type stat = {
  sp_name : string;
  sp_count : int;
  sp_total_s : float;
  sp_self_s : float;
}

let stats () =
  Lock.with_lock profile_lock (fun () ->
      (Hashtbl.fold
         (fun name a acc ->
           {
             sp_name = name;
             sp_count = a.a_count;
             sp_total_s = a.a_total;
             sp_self_s = a.a_self;
           }
           :: acc)
         agg_tbl []
       [@icc.allow
         "d2-hashtbl-order: unordered stats collected under the lock feed \
          the keyed List.sort below"]))
  |> List.sort (fun a b -> String.compare a.sp_name b.sp_name)

let folded () =
  Lock.with_lock profile_lock (fun () ->
      (Hashtbl.fold
         (fun path c acc -> (path, c.cl_count, c.cl_self) :: acc)
         folded_tbl []
       [@icc.allow
         "d2-hashtbl-order: unordered folded paths collected under the lock \
          feed the keyed List.sort below"]))
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let folded_lines () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (path, _count, self) ->
      Buffer.add_string b path;
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int (int_of_float ((self *. 1e6) +. 0.5)));
      Buffer.add_char b '\n')
    (folded ());
  Buffer.contents b

let contexts tbl =
  Lock.with_lock profile_lock (fun () ->
      (Hashtbl.fold
         (fun key leaf acc ->
           let cells =
             Hashtbl.fold (fun name r acc -> (name, !r) :: acc) leaf []
             |> List.sort (fun (a, _) (b, _) -> String.compare a b)
           in
           (key, cells) :: acc)
         tbl []
       [@icc.allow
         "d2-hashtbl-order: unordered contexts collected under the lock \
          feed the keyed List.sort below"]))
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let by_round () = contexts round_tbl
let by_party () = contexts party_tbl
