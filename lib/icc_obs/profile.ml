(* Span-based self-profiler (contract in profile.mli).

   Hot-path discipline: with the toggle off, [span] costs one ref read and
   a branch.  With it on, entry reads the clock and pushes a reusable
   stack frame (the frame array is grown geometrically and never shrunk,
   so steady-state entry allocates only the folded-path string); exit
   reads the clock and folds the frame into the aggregation tables.

   All query output is sorted with keyed comparators — Hashtbl iteration
   order never escapes. *)

let on = ref false
let enabled () = !on
let set_enabled b = on := b

let now () =
  (Unix.gettimeofday ()
  [@icc.allow
    "d3-banned-fn: the profiler's whole purpose is reading host wall-clock; \
     it is default-off, write-only, and feeds nothing back into the \
     simulation"])

(* --- span stack --------------------------------------------------------- *)

type frame = {
  mutable fr_name : string;
  mutable fr_path : string; (* ";"-joined stack including this frame *)
  mutable fr_start : float;
  mutable fr_child : float; (* accumulated child wall-clock *)
}

let fresh_frame () = { fr_name = ""; fr_path = ""; fr_start = 0.; fr_child = 0. }
let stack = ref (Array.init 64 (fun _ -> fresh_frame ()))
let depth = ref 0

let grow () =
  let old = !stack in
  let n = Array.length old in
  let bigger = Array.init (2 * n) (fun i -> if i < n then old.(i) else fresh_frame ()) in
  stack := bigger

(* --- aggregation -------------------------------------------------------- *)

type agg = { mutable a_count : int; mutable a_total : float; mutable a_self : float }
type cell = { mutable cl_count : int; mutable cl_self : float }

let agg_tbl : (string, agg) Hashtbl.t = Hashtbl.create 64
let folded_tbl : (string, cell) Hashtbl.t = Hashtbl.create 256

(* context -> (span name -> self seconds); two-level so the leaf tables
   stay small and keyed by the same interned name strings. *)
let round_tbl : (int, (string, float ref) Hashtbl.t) Hashtbl.t = Hashtbl.create 64
let party_tbl : (int, (string, float ref) Hashtbl.t) Hashtbl.t = Hashtbl.create 64

let cur_round = ref 0
let cur_party = ref 0
let set_round r = cur_round := r
let set_party p = cur_party := p

let reset () =
  Hashtbl.reset agg_tbl;
  Hashtbl.reset folded_tbl;
  Hashtbl.reset round_tbl;
  Hashtbl.reset party_tbl;
  cur_round := 0;
  cur_party := 0;
  depth := 0

let charge tbl key name self =
  let leaf =
    match Hashtbl.find_opt tbl key with
    | Some leaf -> leaf
    | None ->
        let leaf = Hashtbl.create 16 in
        Hashtbl.add tbl key leaf;
        leaf
  in
  match Hashtbl.find_opt leaf name with
  | Some r -> r := !r +. self
  | None -> Hashtbl.add leaf name (ref self)

let record fr total self =
  (match Hashtbl.find_opt agg_tbl fr.fr_name with
  | Some a ->
      a.a_count <- a.a_count + 1;
      a.a_total <- a.a_total +. total;
      a.a_self <- a.a_self +. self
  | None ->
      Hashtbl.add agg_tbl fr.fr_name
        { a_count = 1; a_total = total; a_self = self });
  (match Hashtbl.find_opt folded_tbl fr.fr_path with
  | Some c ->
      c.cl_count <- c.cl_count + 1;
      c.cl_self <- c.cl_self +. self
  | None ->
      Hashtbl.add folded_tbl fr.fr_path { cl_count = 1; cl_self = self });
  charge round_tbl !cur_round fr.fr_name self;
  charge party_tbl !cur_party fr.fr_name self

let enter name =
  let d = !depth in
  if d >= Array.length !stack then grow ();
  let fr = (!stack).(d) in
  fr.fr_name <- name;
  fr.fr_path <- (if d = 0 then name else (!stack).(d - 1).fr_path ^ ";" ^ name);
  fr.fr_start <- now ();
  fr.fr_child <- 0.;
  depth := d + 1

let leave () =
  let t = now () in
  let d = !depth - 1 in
  depth := d;
  let fr = (!stack).(d) in
  let total = t -. fr.fr_start in
  let self = Float.max 0. (total -. fr.fr_child) in
  if d > 0 then begin
    let parent = (!stack).(d - 1) in
    parent.fr_child <- parent.fr_child +. total
  end;
  record fr total self

let span name f =
  if not !on then f ()
  else begin
    enter name;
    match f () with
    | v ->
        leave ();
        v
    | exception e ->
        leave ();
        raise e
  end

(* --- queries ------------------------------------------------------------ *)

type stat = {
  sp_name : string;
  sp_count : int;
  sp_total_s : float;
  sp_self_s : float;
}

let stats () =
  Hashtbl.fold
    (fun name a acc ->
      {
        sp_name = name;
        sp_count = a.a_count;
        sp_total_s = a.a_total;
        sp_self_s = a.a_self;
      }
      :: acc)
    agg_tbl []
  |> List.sort (fun a b -> String.compare a.sp_name b.sp_name)

let folded () =
  Hashtbl.fold
    (fun path c acc -> (path, c.cl_count, c.cl_self) :: acc)
    folded_tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let folded_lines () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (path, _count, self) ->
      Buffer.add_string b path;
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int (int_of_float ((self *. 1e6) +. 0.5)));
      Buffer.add_char b '\n')
    (folded ());
  Buffer.contents b

let contexts tbl =
  Hashtbl.fold
    (fun key leaf acc ->
      let cells =
        Hashtbl.fold (fun name r acc -> (name, !r) :: acc) leaf []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      (key, cells) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let by_round () = contexts round_tbl
let by_party () = contexts party_tbl
