(* OCaml >= 5.0 implementation of Dpool: a persistent Domain pool with a
   shared-counter work queue.  See dpool.mli; selected by the dune
   [enabled_if] copy rule.

   Domain safety (DESIGN.md §3.9): all pool state — the current job, the
   spawned-domain list, the stop flag — is mutated only while holding
   [pool_mu]; result and error slots are written by exactly one domain
   each (disjoint indices) and read by the coordinator only after the
   job has drained under the same mutex, so every write happens-before
   its read.  The worker-count target is an [Atomic.t]; the in-worker
   flag is domain-local. *)

let available = true

let target = Atomic.make 1

let set_workers n = Atomic.set target (max 1 (min 64 n))
let workers () = Atomic.get target

(* Workers (and nested coordinators) must not try to coordinate a
   sub-job of their own: the flag routes nested [map]s to the
   sequential path. *)
let in_worker : bool Dls.key = Dls.new_key (fun () -> false)

type job = {
  run : int -> unit; (* evaluate slot i; never raises *)
  size : int;
  mutable next : int; (* next unclaimed index, under pool_mu *)
  mutable unfinished : int; (* slots not yet completed, under pool_mu *)
}

let pool_mu = Mutex.create ()
let pool_cv = Condition.create ()

let current_job : job option ref = ref None
[@@icc.domain_safe "read and written only while holding pool_mu"]

let stopping = ref false
[@@icc.domain_safe "read and written only while holding pool_mu"]

let spawned : unit Domain.t list ref = ref []
[@@icc.domain_safe "read and written only while holding pool_mu"]

let exit_hooked = ref false
[@@icc.domain_safe "read and written only while holding pool_mu"]

(* Claim one index of [j] and run it outside the lock; the caller holds
   pool_mu on entry and on return.  Returns false when nothing was left
   to claim. *)
let claim_and_run j =
  if j.next >= j.size then false
  else begin
    let i = j.next in
    j.next <- i + 1;
    Mutex.unlock pool_mu;
    j.run i;
    Mutex.lock pool_mu;
    j.unfinished <- j.unfinished - 1;
    if j.unfinished = 0 then Condition.broadcast pool_cv;
    true
  end

let worker_loop () =
  Dls.set in_worker true;
  Mutex.lock pool_mu;
  let live = ref true in
  while !live do
    match !current_job with
    | Some j when j.next < j.size -> ignore (claim_and_run j)
    | _ -> if !stopping then live := false else Condition.wait pool_cv pool_mu
  done;
  Mutex.unlock pool_mu

(* Serialises coordinators: only one [map] job is in flight at a time,
   so [current_job] is a single slot rather than a queue. *)
let coord_mu = Mutex.create ()

(* Joining the workers matters beyond hygiene: an idle domain's backup
   thread still takes part in every stop-the-world minor collection, so
   a parked pool taxes allocation-heavy sequential phases by 2-4x.
   [stopping] is reset after the join so the next [map] can respawn. *)
let shutdown () =
  Mutex.lock coord_mu;
  Mutex.lock pool_mu;
  stopping := true;
  Condition.broadcast pool_cv;
  let ds = !spawned in
  spawned := [];
  Mutex.unlock pool_mu;
  List.iter Domain.join ds;
  Mutex.lock pool_mu;
  stopping := false;
  Mutex.unlock pool_mu;
  Mutex.unlock coord_mu

(* Ensure [extra] worker domains exist; caller holds pool_mu. *)
let ensure_workers extra =
  if not !exit_hooked then begin
    exit_hooked := true;
    at_exit shutdown
  end;
  let have = List.length !spawned in
  for _ = have + 1 to extra do
    spawned := Domain.spawn worker_loop :: !spawned
  done

let map_parallel f arr =
  let n = Array.length arr in
  let results = Array.make n None in
  let errors = Array.make n None in
  let run i =
    match f arr.(i) with
    | v -> results.(i) <- Some v
    | exception e -> errors.(i) <- Some e
  in
  let j = { run; size = n; next = 0; unfinished = n } in
  Mutex.lock coord_mu;
  Mutex.lock pool_mu;
  ensure_workers (Atomic.get target - 1);
  current_job := Some j;
  Condition.broadcast pool_cv;
  (* The coordinator participates until the queue is empty, then waits
     for the stragglers.  While it runs slots it counts as a worker:
     [f] re-entering [map] on the coordinator's own slot must take the
     sequential path like any worker's, not re-lock [coord_mu]. *)
  Dls.set in_worker true;
  while claim_and_run j do
    ()
  done;
  Dls.set in_worker false;
  while j.unfinished > 0 do
    Condition.wait pool_cv pool_mu
  done;
  current_job := None;
  Mutex.unlock pool_mu;
  Mutex.unlock coord_mu;
  (match Array.to_seq errors |> Seq.find_map Fun.id with
  | Some e -> raise e
  | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

let map f arr =
  if Array.length arr <= 1 || Atomic.get target <= 1 || Dls.get in_worker then
    Array.map f arr
  else map_parallel f arr
