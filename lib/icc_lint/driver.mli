(** Linter orchestration: artifact discovery, the two passes, reporting. *)

type config = {
  paths : string list;  (** linted (and contributing type info) *)
  dep_paths : string list;  (** type info only *)
  json : bool;
  protocol_modules : string list;
}

val default_protocol_modules : string list

val default : ?json:bool -> ?dep_paths:string list -> string list -> config

type result = {
  findings : Diag.t list;
  errors : string list;
  modules : int;
}

val collect : config -> result
(** Run both passes; findings arrive sorted and de-duplicated. *)

val run : config -> int
(** [collect] + print findings (stdout) and summary (stderr).  Returns the
    intended exit code: 0 clean, 1 findings, 2 unreadable artifacts. *)

val config_of_args : string list -> (config, string) Result.t
(** Parse [--json] [--deps DIR]... [PATH]... (shared by the standalone
    binary and the [icc lint] subcommand). *)
