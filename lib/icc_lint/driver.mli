(** Linter orchestration: artifact discovery, the passes, reporting. *)

type config = {
  paths : string list;  (** linted (and contributing type info) *)
  dep_paths : string list;  (** type info only *)
  json : bool;
  inventory : bool;  (** dump the mutable-state inventory first *)
  protocol_modules : string list;
}

val default_protocol_modules : string list

val default :
  ?json:bool -> ?inventory:bool -> ?dep_paths:string list -> string list -> config

type result = {
  findings : Diag.t list;
  errors : string list;
  modules : int;
  inventory : Domain.inv list;
}

val collect : config -> result
(** Run all passes (D1-D4 per module, D5-D8 cross-module); findings
    arrive sorted and de-duplicated. *)

val run : config -> int
(** [collect] + print findings (stdout) and summary (stderr); with
    [json] a final ["lint-summary"] object carries per-rule counts.
    Returns the intended exit code: 0 clean, 1 findings, 2 unreadable
    artifacts. *)

val config_of_args : string list -> (config, string) Result.t
(** Parse [--json] [--inventory] [--deps DIR]... [PATH]... (shared by
    the standalone binary and the [icc lint] subcommand). *)
