(** [@icc.allow "rule-id: justification"] scope tracking.  Malformed and
    unused allows are reported through the [report] callback as
    [allow-bad] / [allow-unused] findings. *)

type t

val create : report:(Diag.t -> unit) -> t

val attribute_name : string

val string_payload : Parsetree.attribute -> string option
(** The single string-literal payload of an attribute, if it has that
    shape.  Shared with the Domain pass, which reads the same attribute
    grammar. *)

val parse_payload : string -> (string, string) result
(** Split ["rule-id: justification"]; [Ok rule] iff the rule id is
    suppressible and the justification is non-empty. *)

val push : t -> Parsetree.attributes -> bool
(** Open a scope for the allows in [attrs].  Returns [true] iff a frame
    was pushed; the caller must {!pop} after visiting the subtree. *)

val pop : t -> unit

val permits : t -> string -> bool
(** [permits t rule] is [true] when an enclosing allow names [rule]; the
    innermost match is marked used. *)
