(** The determinism & protocol-invariant rules (D1-D4), run as one
    [Tast_iterator] pass over a typed structure.  Findings (and any
    allow-attribute misuse) are delivered through [report]. *)

val lint_structure :
  table:Typeinfo.table ->
  protocol:(string -> bool) ->
  report:(Diag.t -> unit) ->
  Typedtree.structure ->
  unit
